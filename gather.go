// Package gridgather is a simulation library for local gathering of robot
// swarms on the two-dimensional grid, reproducing
//
//	Cord-Landwehr, Fischer, Jung, Meyer auf der Heide:
//	"Asymptotically Optimal Gathering on a Grid" (SPAA 2016,
//	arXiv:1602.03303)
//
// The paper's algorithm gathers n indistinguishable robots — connected by
// horizontal/vertical adjacency, with no compass, no IDs, no global
// communication and only constant-radius vision — into a 2×2 square in
// O(n) fully synchronous rounds, which is asymptotically optimal.
//
// The public surface is the Simulation session: a resumable, observable,
// checkpointable simulation created with New (or Restore, from a
// Snapshot) and driven incrementally with Step/StepN or to completion
// with Run. Gather remains as a one-call convenience over it.
//
// Quick start:
//
//	cells, _ := gridgather.Workload("hollow", 100)
//	sim, _ := gridgather.New(cells)
//	res := sim.Run(context.Background())
//	fmt.Printf("gathered in %d rounds\n", res.Rounds)
//
// The algorithm itself and its substrates (grid geometry, swarm state,
// the FSYNC engine, local views, baselines) live in the internal
// packages.
//
//gather:deterministic
package gridgather

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gridgather/internal/fault"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/scenario"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// Point is a grid cell. Robots occupy points; two robots are connected when
// their points are horizontal or vertical neighbors.
type Point struct {
	X, Y int
}

// Options is the legacy all-in-one configuration struct for Gather. The
// zero value uses the paper's constants and safe defaults.
//
// Deprecated: new code should create a Simulation with New and functional
// options; each field maps onto one option (WithRadius, WithL,
// WithMaxRounds, WithNoMergeLimit, WithScheduler, WithSchedulerSeed,
// WithAlgorithm, WithConnectivityCheck, WithStrictLocality, WithWorkers,
// WithObserver). Options and Gather keep working unchanged.
type Options struct {
	// Radius is the viewing radius (L1). Default 20 (the paper's value).
	Radius int
	// L is the run-start period. Default 22 (the paper's value).
	L int
	// MaxRounds aborts the simulation if gathering takes longer. 0 selects
	// the canonical budget 80·n + 1000 (scaled by the scheduler's fairness
	// bound); negative values are rejected with an error.
	MaxRounds int
	// NoMergeLimit aborts the simulation when this many consecutive rounds
	// pass without a merge — a stuck watchdog. 0 selects the canonical
	// window 40·n + 500 (scaled like MaxRounds); negative disables the
	// watchdog.
	NoMergeLimit int
	// Scheduler selects the time model (see WithScheduler for the spec
	// grammar).
	Scheduler string
	// SchedulerSeed seeds the randomized schedulers (ssync-rand,
	// ssync-lazy); 0 means 1. Deterministic schedulers ignore it.
	SchedulerSeed int64
	// Algorithm selects the robot program: "" or "paper" (default) or
	// "greedy" (the scheduler-robust local strategy).
	Algorithm string
	// CheckConnectivity validates swarm connectivity after every round.
	CheckConnectivity bool
	// StrictLocality makes the simulation panic if the algorithm reads any
	// cell outside the viewing radius (a proof of locality).
	StrictLocality bool
	// Workers is the number of goroutines the engine shards each round
	// across; 0 uses all available CPUs, 1 forces the serial path. Results
	// are bit-identical for every worker count.
	Workers int
	// OnRound, if non-nil, receives a snapshot after every round. Unlike
	// the Event payloads of the session API, RoundInfo slices are freshly
	// allocated per call and may be retained.
	OnRound func(RoundInfo)
}

// RoundInfo is the per-round snapshot passed to Options.OnRound.
type RoundInfo struct {
	// Round is the number of completed rounds.
	Round int
	// Robots are the current robot positions.
	Robots []Point
	// Runners are the positions of robots holding run states.
	Runners []Point
	// Merges is the cumulative number of removed robots.
	Merges int
}

// Result summarizes a simulation.
type Result struct {
	// Gathered reports whether all robots ended within one 2×2 square.
	Gathered bool
	// Rounds is the number of FSYNC rounds executed.
	Rounds int
	// Merges is the number of robots removed by merge operations.
	Merges int
	// RunsStarted counts the run states created (§3.2 reshapement).
	RunsStarted int
	// Moves counts individual robot hops.
	Moves int
	// InitialRobots and FinalRobots give the population before and after.
	InitialRobots, FinalRobots int
	// Crashes counts the robots that crash-stopped (WithFaults; 0 in a
	// clean run) and Degraded reports whether a fault disconnected the
	// swarm and the run continued on the largest surviving component.
	Crashes  int
	Degraded bool
	// Err reports an aborted or cancelled simulation (round limit,
	// disconnection, stuck watchdog, or context cancellation) and is nil
	// on success.
	Err error
}

// ErrNotConnected is returned when the input cells do not form a connected
// swarm — the algorithm's precondition ("given an arbitrarily distributed
// (yet connected) swarm").
var ErrNotConnected = errors.New("gridgather: input swarm is not connected")

// ErrEmpty is returned for an empty input.
var ErrEmpty = errors.New("gridgather: input swarm is empty")

// ErrNegativeMaxRounds is returned for a negative MaxRounds, which is
// reserved (0 already selects the default budget; there is no "unlimited"
// knob in the public API — a broken configuration should abort, not spin).
var ErrNegativeMaxRounds = errors.New("gridgather: negative MaxRounds (0 selects the default budget)")

// buildSwarm converts public points into a swarm. It is the single
// swarm-construction loop behind New, Gather, Connected and Render.
func buildSwarm(cells []Point) *swarm.Swarm {
	s := swarm.NewSized(len(cells))
	for _, c := range cells {
		s.Add(grid.Pt(c.X, c.Y))
	}
	return s
}

func fromSwarm(s *swarm.Swarm) []Point {
	cells := s.Cells()
	out := make([]Point, len(cells))
	for i, c := range cells {
		out[i] = Point{X: c.X, Y: c.Y}
	}
	return out
}

// options translates the legacy struct into the equivalent option list.
func (o Options) options() []Option {
	opts := []Option{
		WithRadius(o.Radius),
		WithL(o.L),
		WithMaxRounds(o.MaxRounds),
		WithNoMergeLimit(o.NoMergeLimit),
		WithScheduler(o.Scheduler),
		WithSchedulerSeed(o.SchedulerSeed),
		WithAlgorithm(o.Algorithm),
		WithConnectivityCheck(o.CheckConnectivity),
		WithStrictLocality(o.StrictLocality),
		WithWorkers(o.Workers),
	}
	if o.OnRound != nil {
		opts = append(opts, WithObserver(RoundEvents, func(ev Event) {
			// The legacy hook's contract lets callers retain the slices, so
			// the shim copies the borrowed event payload.
			o.OnRound(RoundInfo{
				Round:   ev.Round,
				Robots:  append([]Point(nil), ev.Robots...),
				Runners: append([]Point(nil), ev.Runners...),
				Merges:  ev.Merges,
			})
		}))
	}
	return opts
}

// Gather runs the selected gathering algorithm (the paper's by default) on
// the given connected swarm under the selected time model (FSYNC by
// default) until it gathers (all robots within a 2×2 square) and returns
// the result. The input slice is not modified. It is a convenience over
// the Simulation session: New + Run with no cancellation.
func Gather(cells []Point, opt Options) Result {
	sim, err := New(cells, opt.options()...)
	if err != nil {
		return Result{Err: err, InitialRobots: len(cells)}
	}
	return sim.Run(context.Background())
}

// catalog indexes the workload families once; Workload and Workloads are
// called per lookup (some per round in observer tooling) and must not
// re-walk gen.Catalog linearly every time.
var catalog = sync.OnceValue(func() (c struct {
	byName map[string]gen.Workload
	names  []string
}) {
	all := gen.Catalog()
	c.byName = make(map[string]gen.Workload, len(all))
	c.names = make([]string, 0, len(all))
	for _, w := range all {
		c.byName[w.Name] = w
		c.names = append(c.names, w.Name)
	}
	return c
})

// Workload builds one of the named workload families at (approximately)
// the requested robot count. See Workloads for the available names.
func Workload(name string, n int) ([]Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("gridgather: workload size %d", n)
	}
	w, ok := catalog().byName[name]
	if !ok {
		return nil, fmt.Errorf("gridgather: unknown workload %q (have %v)", name, Workloads())
	}
	return fromSwarm(w.Build(n)), nil
}

// Workloads lists the available workload family names.
func Workloads() []string {
	return append([]string(nil), catalog().names...)
}

// Schedulers lists the accepted scheduler spec grammars (see
// WithScheduler).
func Schedulers() []string { return sched.Specs() }

// FaultSpecs lists the accepted fault clause grammars (see WithFaults).
func FaultSpecs() []string { return fault.Specs() }

// Algorithms lists the available robot program names (see WithAlgorithm).
func Algorithms() []string { return scenario.Algorithms() }

// Connected reports whether the cells form a connected swarm under the
// paper's horizontal/vertical adjacency.
func Connected(cells []Point) bool {
	if len(cells) == 0 {
		return false
	}
	return buildSwarm(cells).Connected()
}

// Render draws the cells as ASCII art ('#' robots, '·' free), highest y
// first — a convenience for demos and debugging.
func Render(cells []Point) string {
	return buildSwarm(cells).String()
}
