// Package gridgather is a simulation library for local gathering of robot
// swarms on the two-dimensional grid, reproducing
//
//	Cord-Landwehr, Fischer, Jung, Meyer auf der Heide:
//	"Asymptotically Optimal Gathering on a Grid" (SPAA 2016,
//	arXiv:1602.03303)
//
// The paper's algorithm gathers n indistinguishable robots — connected by
// horizontal/vertical adjacency, with no compass, no IDs, no global
// communication and only constant-radius vision — into a 2×2 square in
// O(n) fully synchronous rounds, which is asymptotically optimal.
//
// The package exposes the high-level simulation API; the algorithm itself
// and its substrates (grid geometry, swarm state, FSYNC engine, local
// views, baselines) live in the internal packages.
//
// Quick start:
//
//	cells, _ := gridgather.Workload("hollow", 100)
//	res := gridgather.Gather(cells, gridgather.Options{})
//	fmt.Printf("gathered in %d rounds\n", res.Rounds)
package gridgather

import (
	"errors"
	"fmt"

	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/scenario"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// Point is a grid cell. Robots occupy points; two robots are connected when
// their points are horizontal or vertical neighbors.
type Point struct {
	X, Y int
}

// Options configure a simulation. The zero value uses the paper's
// constants and safe defaults.
type Options struct {
	// Radius is the viewing radius (L1). Default 20 (the paper's value).
	Radius int
	// L is the run-start period. Default 22 (the paper's value).
	L int
	// MaxRounds aborts the simulation if gathering takes longer. 0 selects
	// the canonical budget 80·n + 1000 (scaled by the scheduler's fairness
	// bound); negative values are rejected with an error.
	MaxRounds int
	// NoMergeLimit aborts the simulation when this many consecutive rounds
	// pass without a merge — a stuck watchdog. 0 selects the canonical
	// window 40·n + 500 (scaled like MaxRounds); negative disables the
	// watchdog.
	NoMergeLimit int
	// Scheduler selects the time model: "" or "fsync" (the paper's fully
	// synchronous model, default), "ssync"/"ssync-rr:k" (round-robin
	// subsets), "ssync-rand:k" (random subsets), "ssync-lazy:k" (lazy
	// adversarial subsets), "async:w" (a sequential wavefront of width w).
	// The paper's algorithm is proved for FSYNC only — under relaxed
	// schedulers its merge operations can disconnect the swarm (reported
	// via Result.Err); pair them with Algorithm "greedy" for runs that are
	// safe under every scheduler.
	Scheduler string
	// SchedulerSeed seeds the randomized schedulers (ssync-rand,
	// ssync-lazy); 0 means 1. Deterministic schedulers ignore it.
	SchedulerSeed int64
	// Algorithm selects the robot program: "" or "paper" (the paper's
	// algorithm, default) or "greedy" (the scheduler-robust local strategy;
	// it ignores Radius and L).
	Algorithm string
	// CheckConnectivity validates swarm connectivity after every round.
	CheckConnectivity bool
	// StrictLocality makes the simulation panic if the algorithm reads any
	// cell outside the viewing radius (a proof of locality; small
	// overhead).
	StrictLocality bool
	// Workers is the number of goroutines the engine shards each round
	// across — the Look+Compute phase and the move/merge/commit write
	// phase alike (the latter by chunk ownership with a serial seam pass).
	// 0 uses all available CPUs (runtime.GOMAXPROCS); 1 forces the serial
	// path. Results are bit-identical for every worker count — all actions
	// are computed from the same immutable pre-round snapshot and every
	// stage combines worker results in deterministic cell order.
	Workers int
	// OnRound, if non-nil, receives a snapshot after every round.
	OnRound func(RoundInfo)
}

// RoundInfo is the per-round snapshot passed to Options.OnRound.
type RoundInfo struct {
	// Round is the number of completed rounds.
	Round int
	// Robots are the current robot positions.
	Robots []Point
	// Runners are the positions of robots holding run states.
	Runners []Point
	// Merges is the cumulative number of removed robots.
	Merges int
}

// Result summarizes a simulation.
type Result struct {
	// Gathered reports whether all robots ended within one 2×2 square.
	Gathered bool
	// Rounds is the number of FSYNC rounds executed.
	Rounds int
	// Merges is the number of robots removed by merge operations.
	Merges int
	// RunsStarted counts the run states created (§3.2 reshapement).
	RunsStarted int
	// Moves counts individual robot hops.
	Moves int
	// InitialRobots and FinalRobots give the population before and after.
	InitialRobots, FinalRobots int
	// Err reports an aborted simulation (round limit, disconnection, or a
	// stuck watchdog) and is nil on success.
	Err error
}

// ErrNotConnected is returned when the input cells do not form a connected
// swarm — the algorithm's precondition ("given an arbitrarily distributed
// (yet connected) swarm").
var ErrNotConnected = errors.New("gridgather: input swarm is not connected")

// ErrEmpty is returned for an empty input.
var ErrEmpty = errors.New("gridgather: input swarm is empty")

// ErrNegativeMaxRounds is returned for Options.MaxRounds < 0, which is
// reserved (0 already selects the default budget; there is no "unlimited"
// knob in the public API — a broken configuration should abort, not spin).
var ErrNegativeMaxRounds = errors.New("gridgather: negative MaxRounds (0 selects the default budget)")

// toSwarm validates and converts public points.
func toSwarm(cells []Point) (*swarm.Swarm, error) {
	if len(cells) == 0 {
		return nil, ErrEmpty
	}
	s := swarm.New()
	for _, c := range cells {
		s.Add(grid.Pt(c.X, c.Y))
	}
	if !s.Connected() {
		return nil, ErrNotConnected
	}
	return s, nil
}

func fromSwarm(s *swarm.Swarm) []Point {
	cells := s.Cells()
	out := make([]Point, len(cells))
	for i, c := range cells {
		out[i] = Point{X: c.X, Y: c.Y}
	}
	return out
}

func toPoints(cells []grid.Point) []Point {
	out := make([]Point, len(cells))
	for i, c := range cells {
		out[i] = Point{X: c.X, Y: c.Y}
	}
	return out
}

// params builds the core parameters from Options.
func (o Options) params() core.Params {
	return core.WithConstants(o.Radius, o.L)
}

// Gather runs the selected gathering algorithm (the paper's by default) on
// the given connected swarm under the selected time model (FSYNC by
// default) until it gathers (all robots within a 2×2 square) and returns
// the result. The input slice is not modified.
func Gather(cells []Point, opt Options) Result {
	s, err := toSwarm(cells)
	if err != nil {
		return Result{Err: err, InitialRobots: len(cells)}
	}
	p := opt.params()
	if err := p.Validate(); err != nil {
		return Result{Err: err, InitialRobots: s.Len()}
	}
	if opt.MaxRounds < 0 {
		return Result{Err: ErrNegativeMaxRounds, InitialRobots: s.Len()}
	}
	seed := opt.SchedulerSeed
	if seed == 0 {
		seed = 1
	}
	sc, err := scenario.Resolve(opt.Algorithm, opt.Scheduler, seed, p, s.Len())
	if err != nil {
		return Result{Err: fmt.Errorf("gridgather: %w", err), InitialRobots: s.Len()}
	}
	budget := sc.Budget.WithOverrides(opt.MaxRounds, opt.NoMergeLimit)
	var hook func(*fsync.Engine)
	if opt.OnRound != nil {
		hook = func(e *fsync.Engine) {
			opt.OnRound(RoundInfo{
				Round:   e.Round(),
				Robots:  toPoints(e.World().Cells()),
				Runners: toPoints(e.Runners()),
				Merges:  e.Merges(),
			})
		}
	}
	eng := fsync.New(s, sc.Algorithm, fsync.Config{
		MaxRounds:         budget.MaxRounds,
		NoMergeLimit:      budget.NoMergeLimit,
		CheckConnectivity: opt.CheckConnectivity,
		StrictViews:       opt.StrictLocality,
		Workers:           opt.Workers,
		Scheduler:         sc.Scheduler,
		OnRound:           hook,
	})
	r := eng.Run()
	return Result{
		Gathered:      r.Gathered,
		Rounds:        r.Rounds,
		Merges:        r.Merges,
		RunsStarted:   r.RunsStarted,
		Moves:         r.Moves,
		InitialRobots: r.InitialRobots,
		FinalRobots:   r.FinalRobots,
		Err:           r.Err,
	}
}

// Workload builds one of the named workload families at (approximately)
// the requested robot count. See Workloads for the available names.
func Workload(name string, n int) ([]Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("gridgather: workload size %d", n)
	}
	for _, w := range gen.Catalog() {
		if w.Name == name {
			return fromSwarm(w.Build(n)), nil
		}
	}
	return nil, fmt.Errorf("gridgather: unknown workload %q (have %v)", name, Workloads())
}

// Workloads lists the available workload family names.
func Workloads() []string {
	var out []string
	for _, w := range gen.Catalog() {
		out = append(out, w.Name)
	}
	return out
}

// Schedulers lists the accepted Options.Scheduler spec grammars.
func Schedulers() []string { return sched.Specs() }

// Algorithms lists the available Options.Algorithm names.
func Algorithms() []string { return scenario.Algorithms() }

// Connected reports whether the cells form a connected swarm under the
// paper's horizontal/vertical adjacency.
func Connected(cells []Point) bool {
	if len(cells) == 0 {
		return false
	}
	s := swarm.New()
	for _, c := range cells {
		s.Add(grid.Pt(c.X, c.Y))
	}
	return s.Connected()
}

// Render draws the cells as ASCII art ('#' robots, '·' free), highest y
// first — a convenience for demos and debugging.
func Render(cells []Point) string {
	s := swarm.New()
	for _, c := range cells {
		s.Add(grid.Pt(c.X, c.Y))
	}
	return s.String()
}
