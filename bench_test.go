package gridgather_test

import (
	"fmt"
	"runtime"
	"testing"

	"gridgather"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/baseline/gtc"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
	"gridgather/internal/sweep"
	"gridgather/internal/view"
)

// The benchmarks regenerate the experiment suite under `go test -bench`.
// Each reports, besides ns/op, the domain metrics that the paper's claims
// are about: FSYNC rounds and rounds per robot. Table E* numbers in
// EXPERIMENTS.md come from these and from cmd/gatherbench.

// benchGather runs one full gathering simulation per iteration.
func benchGather(b *testing.B, build func() *swarm.Swarm, p core.Params) {
	b.Helper()
	var rounds, robots int
	for i := 0; i < b.N; i++ {
		s := build()
		g := core.NewGatherer(p)
		eng := fsync.New(s, g, fsync.Config{MaxRounds: fsync.DefaultBudget(s.Len()).MaxRounds})
		res := eng.Run()
		if res.Err != nil || !res.Gathered {
			b.Fatalf("simulation failed: %+v", res)
		}
		rounds = res.Rounds
		robots = res.InitialRobots
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(rounds)/float64(robots), "rounds/robot")
}

// BenchmarkTheorem1 is experiment E1: linear-round gathering per workload
// family and size (the paper's headline O(n) result).
func BenchmarkTheorem1(b *testing.B) {
	for _, w := range gen.Catalog() {
		for _, n := range []int{64, 128, 256} {
			w := w
			b.Run(fmt.Sprintf("%s/n=%d", w.Name, n), func(b *testing.B) {
				benchGather(b, func() *swarm.Swarm { return w.Build(n) }, core.Defaults())
			})
		}
	}
}

// BenchmarkEuclideanBaseline is experiment E2: the Θ(n²) plane comparator
// [DKL+11] on circle instances.
func BenchmarkEuclideanBaseline(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("circle/n=%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				sim := gtc.NewSim(gtc.CircleInstance(n, 1.0), gtc.DefaultParams())
				res := sim.Run(2_000_000)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/float64(n), "rounds/robot")
		})
	}
}

// BenchmarkAsyncBaseline is experiment E3: the fair-sequential ASYNC
// strategy of the paper's introduction (O(n) rounds trivially).
func BenchmarkAsyncBaseline(b *testing.B) {
	for _, n := range []int{100, 300} {
		b.Run(fmt.Sprintf("blob/n=%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				s := gen.RandomBlob(n, 42)
				res := asyncseq.Run(s, 10*n+100)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkMergeDetection is experiment E5: the per-robot cost of checking
// the Fig. 2 merge configurations — the inner loop of every round.
func BenchmarkMergeDetection(b *testing.B) {
	s := gen.RandomBlob(400, 7)
	p := core.Defaults()
	cells := s.Cells()
	cfg := view.Config{
		Radius: p.Radius,
		Occ:    s.Has,
		State:  func(grid.Point) robot.State { return robot.State{} },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cells[i%len(cells)]
		v := view.New(cfg, c, 0)
		core.MergeMove(v, p)
	}
}

// BenchmarkEngineRound measures the cost of a single FSYNC round on a
// large mergeless ring (all robots compute, none can merge — worst case
// for rule evaluation).
func BenchmarkEngineRound(b *testing.B) {
	for _, side := range []int{64, 128} {
		b.Run(fmt.Sprintf("ring/%dx%d", side, side), func(b *testing.B) {
			s := gen.Hollow(side, side)
			g := core.Default()
			eng := fsync.New(s, g, fsync.Config{MaxRounds: 0})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Step(); err != nil {
					b.Fatal(err)
				}
				if eng.Gathered() {
					b.StopTimer()
					eng = fsync.New(s, core.Default(), fsync.Config{})
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkEngineStepWorkers measures the cost of one full FSYNC round on
// large instances (n ≥ 2000) for the serial pipeline (Workers=1) against
// the chunk-owned sharded pipeline (Workers=4 and GOMAXPROCS) — the whole
// round now shards, not just Look+Compute: Resolve buckets arrivals by
// target-chunk ownership and Commit repairs the arrival lanes
// concurrently. Outcomes are bit-identical across worker counts (see the
// internal/fsync parallel and pipeline differential tests); this benchmark
// quantifies the round cost and the per-round allocations — the sharding
// shows up as ns/op on multi-core machines. CI's serial-vs-parallel
// regression guard re-measures via gatherbench -bench-guard.
func BenchmarkEngineStepWorkers(b *testing.B) {
	families := []struct {
		name  string
		build func() *swarm.Swarm
	}{
		{"hollow", func() *swarm.Swarm { return gen.Hollow(513, 513) }},
		{"solid", func() *swarm.Swarm { return gen.Solid(46, 46) }},
		{"line", func() *swarm.Swarm { return gen.Line(2048) }},
		{"blob", func() *swarm.Swarm { return gen.RandomBlob(2000, 42) }},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, f := range families {
		s := f.build()
		for _, workers := range workerCounts {
			cfg := fsync.Config{Workers: workers}
			b.Run(fmt.Sprintf("%s/n=%d/workers=%d", f.name, s.Len(), workers), func(b *testing.B) {
				eng := fsync.New(s, core.Default(), cfg)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Step(); err != nil {
						b.Fatal(err)
					}
					if eng.Gathered() {
						b.StopTimer()
						eng = fsync.New(s, core.Default(), cfg)
						b.StartTimer()
					}
				}
			})
		}
	}
}

// BenchmarkSweep measures the experiment-sweep subsystem end to end: a
// small grid fanned out across the runner's worker pool. Per-op time is the
// wall-clock of the whole grid, so it shrinks with available CPUs.
func BenchmarkSweep(b *testing.B) {
	jobs, err := sweep.Spec{
		Workloads: []string{"line", "hollow", "blob"},
		Sizes:     []int{64, 128},
		Seeds:     []int64{1, 2},
	}.Jobs()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := sweep.Runner{}.Run(jobs)
		for _, r := range results {
			if r.Err != "" {
				b.Fatalf("job %+v failed: %s", r.Job, r.Err)
			}
		}
	}
}

// BenchmarkContourTracing measures the outer-boundary tracing substrate
// used by the analysis tooling (Fig. 18 vector chains).
func BenchmarkContourTracing(b *testing.B) {
	s := gen.RandomBlob(600, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OuterContour()
	}
}

// BenchmarkAblation is experiment E18: the paper's constants (R=20, L=22)
// against the §5.3 "easy case" constants (R=11, L=13) — smaller constants
// still gather, with different round constants.
func BenchmarkAblation(b *testing.B) {
	configs := []struct{ r, l int }{{20, 22}, {11, 13}}
	for _, cfg := range configs {
		p := core.Defaults()
		p.Radius, p.L = cfg.r, cfg.l
		if p.MergeMax > p.Radius-1 {
			p.MergeMax = p.Radius - 1
		}
		if p.SeqStop > p.Radius-2 {
			p.SeqStop = p.Radius - 2
		}
		if p.SeqStop >= p.L-1 {
			p.SeqStop = p.L - 2
		}
		b.Run(fmt.Sprintf("R=%d,L=%d/hollow-160", cfg.r, cfg.l), func(b *testing.B) {
			benchGather(b, func() *swarm.Swarm { return gen.Hollow(41, 41) }, p)
		})
	}
}

// BenchmarkPipelining is experiment E15: gathering a large ring where the
// linear bound depends on run pipelining.
func BenchmarkPipelining(b *testing.B) {
	benchGather(b, func() *swarm.Swarm { return gen.Hollow(56, 56) }, core.Defaults())
}

// BenchmarkLowerBound is experiment E20: the line workload that meets the
// diameter lower bound exactly.
func BenchmarkLowerBound(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("line/n=%d", n), func(b *testing.B) {
			benchGather(b, func() *swarm.Swarm { return gen.Line(n) }, core.Defaults())
		})
	}
}

// BenchmarkSessionObserver measures one observed engine round through the
// session event API against the bare unobserved round. The event payload
// borrows session-owned scratch (see gridgather.Event), so the observer
// path must report the same allocs/op as the bare path — zero in steady
// state; the legacy Options.OnRound hook rebuilt two slices per round.
// TestObserverPathAllocationFree asserts the same bound; this benchmark
// quantifies the time cost.
func BenchmarkSessionObserver(b *testing.B) {
	for _, observed := range []bool{false, true} {
		name := "bare"
		if observed {
			name = "observed"
		}
		b.Run(name, func(b *testing.B) {
			cells, err := gridgather.Workload("hollow", 2048)
			if err != nil {
				b.Fatal(err)
			}
			newSim := func() *gridgather.Simulation {
				opts := []gridgather.Option{gridgather.WithWorkers(1)}
				if observed {
					opts = append(opts, gridgather.WithObserver(gridgather.AllEvents, func(ev gridgather.Event) {
						if len(ev.Robots) == 0 {
							b.Fatal("empty event payload")
						}
					}))
				}
				sim, err := gridgather.New(cells, opts...)
				if err != nil {
					b.Fatal(err)
				}
				return sim
			}
			sim := newSim()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.Step(); err != nil {
					b.Fatal(err)
				}
				if sim.Status().Gathered {
					b.StopTimer()
					sim = newSim()
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkPublicAPI measures the end-to-end public entry point.
func BenchmarkPublicAPI(b *testing.B) {
	cells, err := gridgather.Workload("blob", 150)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gridgather.Gather(cells, gridgather.Options{})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
