package gridgather

import (
	"context"
	"errors"
	"fmt"

	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/scenario"
	"gridgather/internal/swarm"
)

// ErrDone is returned by Step and StepN when the simulation has already
// finished successfully (the swarm is gathered) and there is nothing left
// to execute. An aborted simulation returns its abort error instead.
var ErrDone = errors.New("gridgather: simulation has finished")

// Simulation is a running gathering simulation: a session object that can
// be stepped incrementally, run to completion under a context, observed
// through typed events, and checkpointed to bytes that resume
// bit-identically. Create one with New or Restore.
//
// A Simulation is deterministic: the same input and structural options
// produce the identical round sequence, for any worker count and across
// any number of checkpoint/restore cycles. It is not safe for concurrent
// use; drive it from one goroutine at a time.
type Simulation struct {
	eng *fsync.Engine

	// Resolved simulation budget (fairness-scaled at construction from the
	// initial population; carried verbatim through snapshots).
	maxRounds    int
	noMergeLimit int

	initial int   // initial robot count
	err     error // sticky abort error; nil while running or gathered

	// Structural configuration, retained for Snapshot.
	radius, l     int
	scheduler     string
	schedulerSeed int64
	algorithm     string
	faults        string
	checkConn     bool
	strict        bool
	workers       int
	fullBFS       bool
	fullRecompute bool

	// Event plumbing.
	subs       []subscription
	subIDs     []int
	subSeq     int
	emitting   bool // an emit is iterating subs: defer compaction
	roundRuns  int  // run states started in the most recent round
	robotsBuf  []Point
	runnersBuf []Point
}

// New creates a simulation session over the given connected swarm. The
// input slice is not retained or modified. With no options it simulates
// the paper's setting; see Option for the available knobs. The returned
// session has executed zero rounds: drive it with Step, StepN or Run.
func New(cells []Point, opts ...Option) (*Simulation, error) {
	s := buildSwarm(cells)
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	if !s.Connected() {
		return nil, ErrNotConnected
	}
	var cfg settings
	if err := cfg.apply(opts); err != nil {
		return nil, err
	}
	return newSession(s, cfg)
}

// newSession resolves the scenario and builds the session over a validated
// swarm. Shared by New and the Options-struct shim.
func newSession(sw *swarm.Swarm, cfg settings) (*Simulation, error) {
	params := core.WithConstants(cfg.radius, cfg.l)
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("gridgather: %w", err)
	}
	sc, err := scenario.Resolve(cfg.algorithm, cfg.scheduler, cfg.faults, cfg.schedulerSeed, params, sw.Len())
	if err != nil {
		return nil, fmt.Errorf("gridgather: %w", err)
	}
	budget := sc.Budget.WithOverrides(cfg.maxRounds, cfg.noMergeLimit)
	sim := &Simulation{
		maxRounds:     budget.MaxRounds,
		noMergeLimit:  budget.NoMergeLimit,
		initial:       sw.Len(),
		radius:        cfg.radius,
		l:             cfg.l,
		scheduler:     cfg.scheduler,
		schedulerSeed: cfg.schedulerSeed,
		algorithm:     cfg.algorithm,
		faults:        cfg.faults,
		checkConn:     cfg.checkConn,
		strict:        cfg.strict,
		workers:       cfg.workers,
		fullBFS:       cfg.fullBFS,
		fullRecompute: cfg.fullRecompute,
		subs:          cfg.subs,
	}
	sim.seedSubIDs()
	sim.eng = fsync.New(sw, sc.Algorithm, sim.engineConfig(sc))
	return sim, nil
}

// seedSubIDs assigns IDs to subscriptions installed via options (the same
// unique-increasing scheme Subscribe uses), so their cancel semantics
// match run-time subscriptions.
func (s *Simulation) seedSubIDs() {
	s.subIDs = make([]int, len(s.subs))
	for i := range s.subIDs {
		s.subSeq++
		s.subIDs[i] = s.subSeq
	}
}

// engineConfig assembles the engine configuration from the session's
// resolved settings. The round limit stays with the session (the engine's
// Step has no budget); the stuck watchdog and safety checks run inside the
// engine.
func (s *Simulation) engineConfig(sc scenario.Scenario) fsync.Config {
	return fsync.Config{
		NoMergeLimit:        s.noMergeLimit,
		CheckConnectivity:   s.checkConn,
		StrictViews:         s.strict,
		Workers:             s.workers,
		Scheduler:           sc.Scheduler,
		Faults:              sc.Faults,
		FullBFSConnectivity: s.fullBFS,
		FullRecompute:       s.fullRecompute,
	}
}

// Step executes one round. It returns nil when a round was executed
// (including the round that gathers the swarm), ErrDone when the
// simulation had already gathered, and the abort error when the round
// limit is exceeded or an invariant breaks (disconnection, stuck
// watchdog). Abort errors are sticky: every later Step returns the same
// error. A context-cancelled Run does NOT mark the session aborted — a
// cancelled session steps onward normally.
func (s *Simulation) Step() error {
	if s.err != nil {
		return s.err
	}
	if s.eng.Gathered() {
		return ErrDone
	}
	if s.maxRounds > 0 && s.eng.Round() >= s.maxRounds {
		return s.abort(fsync.ErrRoundLimit{Rounds: s.eng.Round()})
	}
	runsBefore := s.eng.RunsStarted()
	err := s.eng.Step()
	s.roundRuns = s.eng.RunsStarted() - runsBefore
	if err != nil {
		return s.abort(err)
	}
	// Refresh the borrowed payload scratch only when an event that fires
	// this round actually has a listener — a session subscribed only to
	// gathered/abort events pays nothing per ordinary round.
	round := s.wants(EventRound)
	merge := s.eng.RoundMerges() > 0 && s.wants(EventMerge)
	runs := s.roundRuns > 0 && s.wants(EventRunStart)
	crash := s.eng.RoundCrashes() > 0 && s.wants(EventCrash)
	degraded := s.eng.Degraded() && s.eng.DegradedRound() == s.eng.Round() && s.wants(EventDegraded)
	gathered := s.eng.Gathered() && s.wants(EventGathered)
	if round || merge || runs || crash || degraded || gathered {
		s.fillEventBuffers()
		if round {
			s.emit(EventRound, nil)
		}
		if merge {
			s.emit(EventMerge, nil)
		}
		if runs {
			s.emit(EventRunStart, nil)
		}
		if crash {
			s.emit(EventCrash, nil)
		}
		if degraded {
			s.emit(EventDegraded, nil)
		}
		if gathered {
			s.emit(EventGathered, nil)
		}
	}
	return nil
}

// abort records the sticky abort error and notifies abort subscribers.
func (s *Simulation) abort(err error) error {
	s.err = err
	if s.wants(EventAbort) {
		s.fillEventBuffers()
		s.emit(EventAbort, err)
	}
	return err
}

// StepN executes up to k rounds and returns how many were executed. It
// stops early — with a nil error — when the swarm gathers, and with the
// abort error when the simulation aborts. Calling it on an already
// finished session returns (0, ErrDone) or (0, the abort error); k ≤ 0
// executes nothing and returns (0, nil).
func (s *Simulation) StepN(k int) (int, error) {
	if k <= 0 {
		return 0, nil
	}
	for n := 0; n < k; n++ {
		if err := s.Step(); err != nil {
			return n, err
		}
		if s.eng.Gathered() {
			// The round just executed gathered the swarm: a successful
			// stop, not an error.
			return n + 1, nil
		}
	}
	return k, nil
}

// Run executes rounds until the swarm gathers, the simulation aborts, or
// ctx is cancelled, and returns the result so far. Cancellation is checked
// between rounds: the returned Result carries the context's error, but the
// session itself stays healthy — it can Step onward or Run again with a
// fresh context, and a later uninterrupted continuation produces exactly
// the rounds an uncancelled run would have.
func (s *Simulation) Run(ctx context.Context) Result {
	for s.err == nil && !s.eng.Gathered() {
		if err := ctx.Err(); err != nil {
			res := s.Result()
			res.Err = err
			return res
		}
		if err := s.Step(); err != nil {
			break
		}
	}
	return s.Result()
}

// Status is a point-in-time view of a session's progress.
type Status struct {
	// Round is the number of completed rounds.
	Round int
	// Robots is the current population (occupied cells, crashed included).
	Robots int
	// Alive is the number of robots still executing their program; Crashed
	// counts the crash-stopped robots still occupying a cell. Without
	// WithFaults, Alive == Robots and Crashed == 0.
	Alive, Crashed int
	// Gathered reports whether the gathering condition currently holds
	// (all robots in a 2×2 square; under faults, the live robots — of the
	// largest surviving component once degraded).
	Gathered bool
	// Degraded reports whether a fault disconnected the swarm and the run
	// continues on the largest surviving component; DegradedRound is the
	// round that happened (0 otherwise).
	Degraded      bool
	DegradedRound int
	// QuiescentRatio is the fraction of activations so far whose Compute
	// call the quiescence fast path skipped (0 when the fast path is
	// disabled — see WithFullRecompute — or before the first round).
	QuiescentRatio float64
	// Done reports whether the simulation has finished: gathered or
	// aborted. A done session never executes further rounds.
	Done bool
	// Reason is a stable label for the session's condition — one of the
	// Reason* constants. Aborts win over ReasonGathered, which wins over
	// ReasonDegraded. The strings are wire format (gatherd serializes them
	// verbatim); they never change meaning and new ones are only added.
	Reason string
	// Err is the abort error (nil unless the simulation aborted).
	Err error
}

// The Status.Reason vocabulary. These strings are a stable, documented
// enum: network clients (the gatherd wire format), the sweep CSV and any
// log scrapers may match on them verbatim. Existing values never change;
// a future condition adds a new constant instead of repurposing one.
// TestStatusReasonExhaustive pins statusReason to exactly this set.
const (
	// ReasonRunning labels a session still executing rounds (the empty
	// string, so a zero Status reads as running).
	ReasonRunning = ""
	// ReasonGathered labels a successfully finished session: all (live)
	// robots inside one 2×2 square.
	ReasonGathered = "gathered"
	// ReasonDegraded labels a running session that latched graceful
	// degradation after a fault disconnection (WithFaults) and is still
	// gathering the largest surviving component.
	ReasonDegraded = "degraded"
	// ReasonRoundLimit labels a session aborted by the round budget
	// (fsync.ErrRoundLimit; see WithMaxRounds).
	ReasonRoundLimit = "round-limit"
	// ReasonDisconnected labels a session aborted because a movement
	// disconnected the swarm (fsync.ErrDisconnected; fault-free runs with
	// WithConnectivityCheck).
	ReasonDisconnected = "disconnected"
	// ReasonStuck labels a session aborted by the no-merge watchdog
	// (fsync.ErrStuck; see WithNoMergeLimit).
	ReasonStuck = "stuck"
	// ReasonError labels a session aborted by any other error.
	ReasonError = "error"
)

// Status returns the session's current progress.
func (s *Simulation) Status() Status {
	gathered := s.eng.Gathered()
	st := Status{
		Round:          s.eng.Round(),
		Robots:         s.eng.World().Len(),
		Crashed:        s.eng.CrashedLive(),
		Gathered:       gathered,
		Degraded:       s.eng.Degraded(),
		DegradedRound:  s.eng.DegradedRound(),
		QuiescentRatio: s.eng.QuiesceStats().Ratio(),
		Done:           s.err != nil || gathered,
		Err:            s.err,
	}
	st.Alive = st.Robots - st.Crashed
	st.Reason = statusReason(s.err, gathered, st.Degraded)
	return st
}

// statusReason derives the Status.Reason label from the Reason* enum; see
// the constants block for the contract.
func statusReason(err error, gathered, degraded bool) string {
	switch err.(type) {
	case nil:
	case fsync.ErrRoundLimit:
		return ReasonRoundLimit
	case fsync.ErrDisconnected:
		return ReasonDisconnected
	case fsync.ErrStuck:
		return ReasonStuck
	default:
		return ReasonError
	}
	switch {
	case gathered:
		return ReasonGathered
	case degraded:
		return ReasonDegraded
	default:
		return ReasonRunning
	}
}

// Metrics are the live simulation counters.
type Metrics struct {
	// Rounds is the number of completed rounds.
	Rounds int
	// InitialRobots and Robots give the population at construction and now.
	InitialRobots, Robots int
	// Merges is the number of robots removed by merge operations.
	Merges int
	// RunsStarted counts the run states created (§3.2 reshapement).
	RunsStarted int
	// Moves counts individual robot hops.
	Moves int
	// Crashes counts the robots that crash-stopped so far (including
	// crashed robots later absorbed by a merge). 0 without WithFaults.
	Crashes int
	// QuiesceComputed and QuiesceSkipped count the activations whose
	// Compute ran versus were replayed from the quiescence verdict cache;
	// QuiescentRatio is Skipped/(Computed+Skipped). All zero when the fast
	// path is disabled (WithFullRecompute, WithStrictLocality, or an
	// algorithm without a declared round period). Unlike every other
	// counter these describe the execution strategy, not the simulation:
	// they are not snapshot state, and a session restored mid-run counts
	// from a cold cache.
	QuiesceComputed, QuiesceSkipped int
	QuiescentRatio                  float64
}

// Metrics returns the session's current counters.
func (s *Simulation) Metrics() Metrics {
	qs := s.eng.QuiesceStats()
	return Metrics{
		Rounds:          s.eng.Round(),
		InitialRobots:   s.initial,
		Robots:          s.eng.World().Len(),
		Merges:          s.eng.Merges(),
		RunsStarted:     s.eng.RunsStarted(),
		Moves:           s.eng.Moves(),
		Crashes:         s.eng.Crashes(),
		QuiesceComputed: qs.Computed,
		QuiesceSkipped:  qs.Skipped,
		QuiescentRatio:  qs.Ratio(),
	}
}

// Result assembles the session's state into the summary Gather returns.
// It can be called at any time; on a still-running session it describes
// the rounds executed so far.
func (s *Simulation) Result() Result {
	return Result{
		Gathered:      s.eng.Gathered(),
		Rounds:        s.eng.Round(),
		Merges:        s.eng.Merges(),
		RunsStarted:   s.eng.RunsStarted(),
		Moves:         s.eng.Moves(),
		InitialRobots: s.initial,
		FinalRobots:   s.eng.World().Len(),
		Crashes:       s.eng.Crashes(),
		Degraded:      s.eng.Degraded(),
		Err:           s.err,
	}
}
