// Package robot defines the per-robot state of the gathering algorithm: the
// run states of §3.2 of the paper. Robots are anonymous and carry only "a
// fixed small amount of memory to store a constant number of states"; a
// robot can hold at most two run states at a time (the Start-B case of
// Fig. 7 starts two runs at once).
package robot

import (
	"fmt"

	"gridgather/internal/grid"
)

// MaxRuns is the maximum number of run states a robot can store, per the
// paper: "A robot can start and store up to two run states at the same
// time."
const MaxRuns = 2

// Phase describes what a run state is currently doing.
type Phase int

const (
	// PhaseRoll is normal operation: the runner performs the reshapement
	// operation OP-A (diagonal hop) whenever the local shape allows it and
	// glides (OP-B/OP-C tail, i.e. moves the state without hopping)
	// otherwise.
	PhaseRoll Phase = iota
	// PhasePassing is the run passing operation of Fig. 9b/§6: the run keeps
	// moving along the boundary but the runners perform no diagonal hops
	// until the passing completes.
	PhasePassing
)

func (p Phase) String() string {
	switch p {
	case PhaseRoll:
		return "roll"
	case PhasePassing:
		return "passing"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Run is a run state S (§3.2). Its moving direction is fixed when the run is
// started ("its initially set moving direction always remains unchanged")
// and is stored as a pair of perpendicular unit vectors: Dir, the direction
// of travel along the quasi line, and Inside, pointing from the line toward
// the swarm side that reshapement hops move robots to.
//
// The simulator stores the vectors in world coordinates. A physical robot
// has no compass, but it sees the states and relative positions of all
// robots in its viewing range (§1, "Our Local Grid Model"), from which the
// travel direction is recovered relative to its own skewed coordinate
// system; the world-frame representation is equivalent bookkeeping.
type Run struct {
	// ID identifies the run for tracing and metrics. It is assigned by the
	// engine when the run is first transferred and plays no role in any
	// decision (robots are anonymous; runs are too).
	ID int
	// Dir is the travel direction along the boundary (axis unit vector).
	Dir grid.Point
	// Inside points from the quasi line toward the reshapement side.
	Inside grid.Point
	// Phase is the current operation mode.
	Phase Phase
	// StepsLeft counts remaining forced-glide steps while Phase ==
	// PhasePassing.
	StepsLeft int
	// Age is the number of rounds since the run started.
	Age int
}

// Valid reports whether the run's geometry fields are well-formed.
func (r Run) Valid() bool {
	return r.Dir.IsUnit() && r.Inside.IsUnit() &&
		r.Dir.X*r.Inside.X+r.Dir.Y*r.Inside.Y == 0
}

// Outside returns the direction opposite Inside: from the quasi line toward
// the empty side.
func (r Run) Outside() grid.Point { return r.Inside.Neg() }

// Oncoming reports whether other travels in the opposite direction, i.e.
// the two runs are moving towards each other.
func (r Run) Oncoming(other Run) bool { return other.Dir == r.Dir.Neg() }

// Sequent reports whether other travels in the same direction (the paper's
// "sequent runs", Fig. 10).
func (r Run) Sequent(other Run) bool { return other.Dir == r.Dir }

func (r Run) String() string {
	return fmt.Sprintf("run#%d dir=%v in=%v %v age=%d", r.ID, r.Dir, r.Inside, r.Phase, r.Age)
}

// State is the complete mutable state a robot carries between rounds.
type State struct {
	Runs []Run
}

// HasRuns reports whether the robot currently is a runner.
func (s State) HasRuns() bool { return len(s.Runs) > 0 }

// Clone returns a deep copy.
func (s State) Clone() State {
	if s.Runs == nil {
		return State{}
	}
	out := State{Runs: make([]Run, len(s.Runs))}
	copy(out.Runs, s.Runs)
	return out
}
