package robot

import (
	"testing"

	"gridgather/internal/grid"
)

func TestRunValid(t *testing.T) {
	good := Run{Dir: grid.East, Inside: grid.South}
	if !good.Valid() {
		t.Error("perpendicular unit vectors must be valid")
	}
	bad := []Run{
		{Dir: grid.East, Inside: grid.East},      // parallel
		{Dir: grid.East, Inside: grid.West},      // antiparallel
		{Dir: grid.Pt(1, 1), Inside: grid.South}, // diagonal dir
		{Dir: grid.East, Inside: grid.Pt(0, 2)},  // non-unit
		{Dir: grid.Pt(0, 0), Inside: grid.South}, // zero
	}
	for i, r := range bad {
		if r.Valid() {
			t.Errorf("bad[%d] = %+v considered valid", i, r)
		}
	}
}

func TestRunGeometryHelpers(t *testing.T) {
	r := Run{Dir: grid.East, Inside: grid.South}
	if r.Outside() != grid.North {
		t.Errorf("outside = %v", r.Outside())
	}
	oncoming := Run{Dir: grid.West, Inside: grid.South}
	sequent := Run{Dir: grid.East, Inside: grid.North}
	perp := Run{Dir: grid.North, Inside: grid.East}
	if !r.Oncoming(oncoming) || r.Oncoming(sequent) || r.Oncoming(perp) {
		t.Error("Oncoming wrong")
	}
	if !r.Sequent(sequent) || r.Sequent(oncoming) || r.Sequent(perp) {
		t.Error("Sequent wrong")
	}
}

func TestStateClone(t *testing.T) {
	s := State{Runs: []Run{{ID: 1, Dir: grid.East, Inside: grid.South}}}
	c := s.Clone()
	c.Runs[0].ID = 99
	if s.Runs[0].ID != 1 {
		t.Error("clone shares backing array")
	}
	empty := State{}
	if ec := empty.Clone(); ec.HasRuns() {
		t.Error("empty clone has runs")
	}
}

func TestHasRuns(t *testing.T) {
	if (State{}).HasRuns() {
		t.Error("zero state has runs")
	}
	if !(State{Runs: []Run{{}}}).HasRuns() {
		t.Error("non-empty state reports no runs")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseRoll.String() != "roll" || PhasePassing.String() != "passing" {
		t.Error("phase names wrong")
	}
	if Phase(42).String() == "" {
		t.Error("unknown phase should render")
	}
}

func TestRunString(t *testing.T) {
	r := Run{ID: 3, Dir: grid.East, Inside: grid.South, Age: 7}
	if r.String() == "" {
		t.Error("empty render")
	}
}
