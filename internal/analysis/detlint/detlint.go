// Package detlint enforces the engine's determinism contract: in packages
// opted in with a //gather:deterministic package directive, it forbids the
// constructs whose observable order or value varies between runs — ranging
// over maps, reading the wall clock, math/rand (the seeded splitmix64
// stream in internal/sched is the only sanctioned RNG), maps.Keys/Values,
// and goroutine spawns outside the worker pool. A finding is suppressed by
// a //gather:nondet-ok <reason> escape on the same line or the line above;
// the reason is mandatory (an escape without one does not suppress).
//
// detlint also validates the //gather: directive vocabulary itself, in
// every package: unknown directive names and reason-less escapes are
// diagnosed so a typo like //gather:nodet-ok cannot silently disable a
// check.
package detlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gridgather/internal/analysis"
)

// Analyzer is the detlint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc:  "forbid nondeterministic constructs in //gather:deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.CollectDirectives(pass)
	checkDirectives(pass, dirs)
	if _, ok := analysis.PackageDirective(pass, "deterministic"); !ok {
		return nil, nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, dirs, n)
			case *ast.GoStmt:
				report(pass, dirs, n.Pos(), "goroutine spawn in deterministic package (use the fsync worker pool)")
			case *ast.SelectorExpr:
				checkSelector(pass, dirs, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkDirectives validates the //gather: vocabulary in every package.
func checkDirectives(pass *analysis.Pass, dirs *analysis.Directives) {
	for _, d := range dirs.All() {
		known, needsArgs := d.Known()
		switch {
		case !known:
			pass.Reportf(d.Pos, "unknown directive //gather:%s", d.Name)
		case needsArgs && d.Args == "":
			pass.Reportf(d.Pos, "//gather:%s requires a reason", d.Name)
		}
	}
}

func checkMapRange(pass *analysis.Pass, dirs *analysis.Directives, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		report(pass, dirs, rng.Pos(), "map iteration order is nondeterministic; iterate a sorted or insertion-ordered slice instead")
	}
}

// checkSelector flags uses of wall-clock time, unseeded RNG, and map-order
// iterators, resolved through the type info so local identifiers named
// "rand" or "time" are not misflagged.
func checkSelector(pass *analysis.Pass, dirs *analysis.Directives, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch path := pkgName.Imported().Path(); path {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until" {
			report(pass, dirs, sel.Pos(), "wall-clock reads are nondeterministic; thread logical time through the round counter")
		}
	case "math/rand", "math/rand/v2":
		report(pass, dirs, sel.Pos(), "math/rand is unseeded or globally shared; use the scheduler's splitmix64 stream")
	case "maps":
		if sel.Sel.Name == "Keys" || sel.Sel.Name == "Values" {
			report(pass, dirs, sel.Pos(), "maps.%s yields map order; iterate a sorted or insertion-ordered slice instead", sel.Sel.Name)
		}
	}
}

func report(pass *analysis.Pass, dirs *analysis.Directives, pos token.Pos, format string, args ...any) {
	if pass.IsTestFile(pos) || dirs.Escaped(pos, "nondet-ok") {
		return
	}
	pass.Reportf(pos, format, args...)
}
