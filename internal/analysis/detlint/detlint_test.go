package detlint_test

import (
	"testing"

	"gridgather/internal/analysis/analyzertest"
	"gridgather/internal/analysis/detlint"
)

// TestDeterministicPackage covers every forbidden construct plus the
// reason-carrying escapes in an opted-in package.
func TestDeterministicPackage(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "det", detlint.Analyzer)
}

// TestDirectiveVocabulary proves directive validation runs even in
// packages that are not //gather:deterministic.
func TestDirectiveVocabulary(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "baddir", detlint.Analyzer)
}

// TestReasonlessEscapeDoesNotSuppress proves an escape without a reason is
// both diagnosed and ignored.
func TestReasonlessEscapeDoesNotSuppress(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "noreason", detlint.Analyzer)
}
