// Package det seeds every detlint violation class plus the escapes.
//
//gather:deterministic
package det

import (
	"maps"
	"math/rand"
	"time"
)

func mapRange(m map[int]int) int {
	s := 0
	for k := range m { // want `map iteration order is nondeterministic`
		s += k
	}
	return s
}

func clock() time.Time {
	return time.Now() // want `wall-clock reads are nondeterministic`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock reads are nondeterministic`
}

func rng() int {
	return rand.Int() // want `math/rand is unseeded or globally shared`
}

func keyOrder(m map[int]int) {
	for range maps.Keys(m) { // want `maps.Keys yields map order`
	}
}

func spawn(done chan struct{}) {
	go close(done) // want `goroutine spawn in deterministic package`
}

func escapedRange(m map[int]int) int {
	s := 0
	//gather:nondet-ok summation is order-independent
	for k := range m {
		s += k
	}
	return s
}

func escapedSpawn(done chan struct{}) {
	go close(done) //gather:nondet-ok sanctioned pool spawn site
}

// durations stay fine: only clock reads are flagged.
const tick = 10 * time.Millisecond

func sorted(xs []int) []int { // slices are order-stable: no findings
	return xs
}
