// Package noreason proves a reason-less escape does not suppress the
// underlying finding in a deterministic package.
//
//gather:deterministic
package noreason

func unsuppressed(m map[int]int) int {
	s := 0
	for k := range m { //gather:nondet-ok
		// want `//gather:nondet-ok requires a reason` `map iteration order is nondeterministic`
		s += k
	}
	return s
}
