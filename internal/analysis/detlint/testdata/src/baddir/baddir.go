// Package baddir seeds directive-vocabulary violations, which detlint
// reports even though the package is not //gather:deterministic.
package baddir

func mistyped() int {
	x := 0
	//gather:nodet-ok typo for nondet-ok
	// want `unknown directive //gather:nodet-ok`
	x++
	return x
}

func reasonless(m map[int]int) int {
	s := 0
	//gather:nondet-ok
	// want `//gather:nondet-ok requires a reason`
	for k := range m { // no finding: package is not deterministic
		s += k
	}
	return s
}
