package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //gather: directive vocabulary. Directives are magic comments (no
// space after //, like //go:noinline) read by the analyzers:
//
//	//gather:deterministic          package marker (doc comment): detlint active
//	//gather:nondet-ok <reason>     line escape for detlint
//	//gather:hotpath                func marker: hotalloc active for this func
//	//gather:alloc-ok <reason>      line escape for hotalloc
//	//gather:lane-confined          func marker: lanesafe active (also *Shard names)
//	//gather:serial <reason>        func marker: disclaims a *Shard-named func
//	//gather:lane-owned             struct field marker: shards may write it
//	//gather:shared-state           func marker: serial-only; lanesafe flags callers
//	//gather:lane-ok <reason>       line escape for lanesafe
//	//gather:oneway <reason>        func marker: Append* with no decoder, on purpose
//	//gather:codec-ok <reason>      line escape for codecpair's reader-error rule
//	//gather:snapshot-format version=<ident> hash=<16 hex>
//	                                package marker: codecpair format fingerprint
//
// A line escape suppresses diagnostics on its own line, or — when the
// comment stands alone — on the next source line. Escapes and the reason-
// carrying markers require a non-empty reason; detlint validates the
// vocabulary itself (unknown //gather: names, missing reasons) everywhere.
const directivePrefix = "//gather:"

// knownDirectives maps each directive name to whether it requires a
// trailing argument (reason or key=value list).
var knownDirectives = map[string]bool{
	"deterministic":   false,
	"nondet-ok":       true,
	"hotpath":         false,
	"alloc-ok":        true,
	"lane-confined":   false,
	"serial":          true,
	"lane-owned":      false,
	"shared-state":    false,
	"lane-ok":         true,
	"oneway":          true,
	"codec-ok":        true,
	"snapshot-format": true,
}

// Directive is one parsed //gather: comment.
type Directive struct {
	Pos  token.Pos
	Name string // e.g. "nondet-ok"
	Args string // trimmed text after the name; "" if none
}

// ParseDirective parses one comment; ok is false for non-directive comments.
// Malformed directives (unknown name, missing required args) still parse —
// detlint reports them — with Known/NeedsArgs exposed via Lookup.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return Directive{}, false
	}
	name, args, _ := strings.Cut(text, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Pos: c.Pos(), Name: name, Args: strings.TrimSpace(args)}, true
}

// Known reports whether d names a defined directive, and whether that
// directive requires an argument.
func (d Directive) Known() (known, needsArgs bool) {
	needsArgs, known = knownDirectives[d.Name]
	return known, needsArgs
}

// Directives indexes every //gather: comment in a package for position and
// declaration lookups. Build one per pass with CollectDirectives.
type Directives struct {
	fset *token.FileSet
	all  []Directive
	// escape directives indexed by the source line they cover: the line
	// they appear on and, for standalone comment lines, the next line.
	byLine map[string]map[int][]Directive
}

// CollectDirectives scans the pass's non-test files.
func CollectDirectives(pass *Pass) *Directives {
	d := &Directives{fset: pass.Fset, byLine: make(map[string]map[int][]Directive)}
	for _, f := range pass.SourceFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := ParseDirective(c)
				if !ok {
					continue
				}
				d.all = append(d.all, dir)
				pos := pass.Fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], dir)
				if isOwnLine(pass.Fset, f, c) {
					lines[pos.Line+1] = append(lines[pos.Line+1], dir)
				}
			}
		}
	}
	return d
}

// isOwnLine reports whether comment c is the first token on its line, i.e.
// a standalone comment whose escape should cover the following line.
func isOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// A trailing comment shares its line with code; the cheapest reliable
	// test is the column — standalone directive comments in this codebase
	// are never preceded by code at lower columns on the same line. Walk
	// the file's decls for any node ending on the comment's line.
	shares := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || shares {
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == pos.Line {
			switch n.(type) {
			case *ast.File, *ast.GenDecl, *ast.FuncDecl, *ast.BlockStmt:
				// Containers can end on any line; only leaf-ish nodes
				// indicate code sharing the line.
			default:
				shares = true
			}
		}
		return n.Pos() < c.Pos() // prune subtrees past the comment
	})
	return !shares
}

// All returns every directive collected, in file order.
func (d *Directives) All() []Directive { return d.all }

// Escaped reports whether a diagnostic at pos is suppressed by an escape
// directive with the given name (on the same line, or on a standalone
// comment line directly above). Escapes with empty Args do not suppress —
// detlint separately reports them as malformed, and an authorless escape
// must not silence the underlying finding.
func (d *Directives) Escaped(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	for _, dir := range d.byLine[p.Filename][p.Line] {
		if dir.Name == name && dir.Args != "" {
			return true
		}
	}
	return false
}

// FuncDirective returns the named directive from fn's doc comment, if any.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	return groupDirective(fn.Doc, name)
}

// PackageDirective returns the named directive from any file's package doc
// comment or floating comment groups before the package clause.
func PackageDirective(pass *Pass, name string) (Directive, bool) {
	for _, f := range pass.SourceFiles() {
		if dir, ok := groupDirective(f.Doc, name); ok {
			return dir, ok
		}
		// Directives may sit in a detached comment block above the package
		// clause (separated by a blank line from the doc comment).
		for _, cg := range f.Comments {
			if cg.End() > f.Package {
				break
			}
			if dir, ok := groupDirective(cg, name); ok {
				return dir, ok
			}
		}
	}
	return Directive{}, false
}

// FieldDirective returns the named directive attached to a struct field
// (doc comment or trailing line comment).
func FieldDirective(field *ast.Field, name string) (Directive, bool) {
	if dir, ok := groupDirective(field.Doc, name); ok {
		return dir, ok
	}
	return groupDirective(field.Comment, name)
}

func groupDirective(cg *ast.CommentGroup, name string) (Directive, bool) {
	if cg == nil {
		return Directive{}, false
	}
	for _, c := range cg.List {
		if dir, ok := ParseDirective(c); ok && dir.Name == name {
			return dir, ok
		}
	}
	return Directive{}, false
}
