// Package analysis is the repo's static-analysis substrate: a minimal,
// dependency-free mirror of the golang.org/x/tools/go/analysis API plus the
// //gather: directive vocabulary the analyzers share. The engine's
// correctness story rests on invariants — no nondeterministic iteration in
// outcome-reaching code, no allocations on the round hot path, symmetric
// snapshot codec pairs, lane-confined shard writes — that the differential
// suites check dynamically and late; the analyzers in the subpackages
// (detlint, hotalloc, codecpair, lanesafe) check them at compile time, over
// every function, on every build.
//
// The API shape deliberately matches x/tools so the suite could migrate to
// the real framework wholesale if the dependency ever lands in the build
// environment: an Analyzer is a named Run function over a Pass holding the
// type-checked package, and diagnostics are (position, message) pairs. The
// drivers are internal/analysis/unit (the `go vet -vettool` protocol) and
// internal/analysis/analyzertest (the `// want`-comment test harness).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check: a name for diagnostics and reports, a doc
// string, and the Run function applied once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and the multichecker's
	// usage output. Lower-case, no spaces.
	Name string
	// Doc is the analyzer's documentation: first line a summary, the rest
	// the full invariant description.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. The returned value is unused (it exists to keep the
	// signature migration-compatible with x/tools).
	Run func(pass *Pass) (any, error)
}

// Pass holds everything Run needs about one type-checked package.
type Pass struct {
	// Analyzer is the analyzer this pass executes.
	Analyzer *Analyzer
	// Fset maps token positions for all of Files.
	Fset *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier facts.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The engine invariants bind production code; tests range over maps, spawn
// goroutines and format freely, so every analyzer skips test files.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// SourceFiles yields the package's non-test files.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.IsTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// Run executes the analyzers over one type-checked package and returns
// their diagnostics in source order (file, then offset, then analyzer
// registration order for ties). Shared by the vet driver and the test
// harness so both see identical findings.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	stableSortDiags(fset, diags)
	return diags, nil
}

// stableSortDiags orders diagnostics by position (insertion order breaks
// ties, keeping analyzer registration order deterministic).
func stableSortDiags(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort: diagnostic counts are small and the slice is nearly
	// sorted already (analyzers walk files in order).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && diagLess(fset, ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}
