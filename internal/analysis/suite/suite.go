// Package suite registers the gatherlint analyzers in their canonical
// order. cmd/gatherlint and the test drivers both consume this list so a
// new analyzer lands everywhere by being appended here.
package suite

import (
	"gridgather/internal/analysis"
	"gridgather/internal/analysis/codecpair"
	"gridgather/internal/analysis/detlint"
	"gridgather/internal/analysis/hotalloc"
	"gridgather/internal/analysis/lanesafe"
)

// Analyzers is the full gatherlint suite, in diagnostic tie-break order.
var Analyzers = []*analysis.Analyzer{
	detlint.Analyzer,
	hotalloc.Analyzer,
	codecpair.Analyzer,
	lanesafe.Analyzer,
}
