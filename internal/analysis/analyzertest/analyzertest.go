// Package analyzertest is the test driver for the gatherlint analyzers:
// the stdlib-only counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory under the calling test's testdata/src, laid out
// as one package per directory; imports between fixture packages resolve
// by path relative to testdata/src (so a fixture named codec satisfies
// `import "codec"`), and standard-library imports are type-checked from
// GOROOT source. Expected diagnostics are declared in the fixture itself
// with want comments:
//
//	for k := range m { // want `map iteration order`
//
// Each backquoted or double-quoted string after "want" is a regexp that
// must match a diagnostic reported on that line; diagnostics with no
// matching want, and wants with no matching diagnostic, fail the test. A
// want comment standing alone on its line applies to the line above it —
// the form used to assert on diagnostics whose position is itself a
// comment line (directive validation, snapshot-format markers).
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"gridgather/internal/analysis"
)

// Run loads the fixture package at srcRoot/pkgpath, runs the analyzers
// over it, and asserts the diagnostics against the fixture's want
// comments. It returns the diagnostics for any further assertions.
func Run(t *testing.T, srcRoot, pkgpath string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	imp := &fixtureImporter{
		fset:    token.NewFileSet(),
		srcRoot: srcRoot,
		pkgs:    make(map[string]*types.Package),
		infos:   make(map[string]*pkgFiles),
	}
	if _, err := imp.Import(pkgpath); err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	target := imp.infos[pkgpath]

	diags, err := analysis.Run(imp.fset, target.files, target.pkg, target.info, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgpath, err)
	}
	checkWants(t, imp.fset, target.files, diags)
	return diags
}

type pkgFiles struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureImporter resolves fixture-local import paths from testdata/src
// and everything else from the standard library's source.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	pkgs    map[string]*types.Package
	infos   map[string]*pkgFiles
}

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.pkgs[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(imp.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		if imp.std == nil {
			imp.std = importer.ForCompiler(imp.fset, "source", nil)
		}
		return imp.std.Import(path)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []string
	tc := &types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err.Error()) },
	}
	pkg, err := tc.Check(path, imp.fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("typechecking fixture %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	if err != nil {
		return nil, err
	}
	imp.pkgs[path] = pkg
	imp.infos[path] = &pkgFiles{pkg: pkg, files: files, info: info}
	return pkg, nil
}

// want holds one expectation: a regexp bound to a file line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// wantRx extracts the quoted patterns of a want comment: backquoted or
// double-quoted strings after the word "want".
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, found := strings.CutPrefix(text, "want ")
				if !found {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if standalone(fset, f, c) {
					line-- // standalone want: asserts on the line above
				}
				for _, q := range wantRx.FindAllString(rest, -1) {
					pat := q[1 : len(q)-1]
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: line, rx: rx, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching want %q", w.file, w.line, w.raw)
		}
	}
}

// standalone reports whether comment c is the only thing on its line (no
// code and no earlier comment before it).
func standalone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	// An earlier comment in the same file ending on this line means c is a
	// trailing annotation of that comment's line.
	for _, cg := range f.Comments {
		for _, other := range cg.List {
			if other != c && other.Pos() < c.Pos() && fset.Position(other.End()).Line == line {
				return false
			}
		}
	}
	shares := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || shares {
			return false
		}
		switch n.(type) {
		case *ast.File, *ast.GenDecl, *ast.FuncDecl, *ast.BlockStmt:
		default:
			if n.End() <= c.Pos() && fset.Position(n.End()).Line == line {
				shares = true
			}
		}
		return n.Pos() < c.Pos()
	})
	return !shares
}
