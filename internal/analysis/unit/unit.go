// Package unit implements the `go vet -vettool` driver protocol for the
// gatherlint analyzers: the stdlib-only counterpart of
// golang.org/x/tools/go/analysis/unitchecker.
//
// cmd/go invokes the vet tool once per package in the build graph with a
// single argument, the path to a JSON config file (*.cfg) describing the
// compilation unit: source files, import map, and the export-data files of
// every dependency already produced by the build cache. Before that it
// probes the tool twice — `-flags` must print a JSON array of the tool's
// flags (ours: none, `[]`), and `-V=full` must print a version line whose
// format cmd/go parses for build caching. Dependency packages arrive with
// VetxOnly set: the tool must write the (empty, for us — no cross-package
// facts) .vetx output file and exit without analyzing. For the target
// packages the driver parses the unit's Go files, type-checks them against
// the gc export data via the stdlib importer, runs the analyzers, and
// prints findings to stderr as file:line:col: prefixed lines; exit status 2
// reports findings, 1 driver errors, 0 a clean unit.
package unit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"path/filepath"

	"gridgather/internal/analysis"
)

// Config mirrors the JSON vet config written by cmd/go (the fields this
// driver consumes; unknown fields are ignored by encoding/json).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one .cfg file: the single-package entry point cmd/go
// drives. It returns the number of diagnostics printed to stderr; the
// caller maps that to the exit status.
func Run(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// Always satisfy the facts protocol first: cmd/go caches the .vetx
	// file per package and feeds it to dependents. Our analyzers exchange
	// no cross-package facts, so the file is a constant placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("gatherlint.vetx\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return len(diags), nil
}

// typecheck builds the unit's types.Package against the gc export data of
// its dependencies, resolving import paths through the unit's ImportMap
// (vendoring/canonical names) to PackageFile entries from the build cache.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compilerImporter := importer.ForCompiler(fset, compiler(cfg), lookup)

	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
		// cmd/go writes "go1.24" for module packages but the full
		// "go1.24.0" toolchain version for std; go/types wants a lang
		// version.
		GoVersion: version.Lang(cfg.GoVersion),
		Sizes:     types.SizesFor(compiler(cfg), "amd64"),
		Error:     func(error) {}, // collect via the returned error only
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

func compiler(cfg *Config) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PrintFlags answers cmd/go's `-flags` probe: a JSON array describing the
// tool's flags. gatherlint takes none.
func PrintFlags(w io.Writer) { fmt.Fprintln(w, "[]") }

// PrintVersion answers cmd/go's `-V=full` probe. cmd/go parses this line —
// `<name> version <ver>` optionally followed by `buildID=<id>` — and folds
// the build ID into its action cache key, so the ID must change when the
// tool's behavior does. The caller passes a content hash of the executable.
func PrintVersion(w io.Writer, progname, buildID string) {
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%s\n", progname, buildID)
}
