package hotalloc_test

import (
	"testing"

	"gridgather/internal/analysis/analyzertest"
	"gridgather/internal/analysis/hotalloc"
)

// TestHotPath covers closures, fmt, map allocation, interface boxing, the
// append capacity-hint dataflow, and both escape forms.
func TestHotPath(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "hot", hotalloc.Analyzer)
}
