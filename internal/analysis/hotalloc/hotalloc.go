// Package hotalloc guards the steady-state zero-allocation property of the
// round pipeline. Functions annotated //gather:hotpath in their doc comment
// are checked for allocation-introducing constructs:
//
//   - function literals (closures capture their environment on the heap
//     when passed to another function; hoist them to persistent fields or
//     package-level funcs)
//   - calls into package fmt (every verb boxes its operand)
//   - map composite literals and make(map[...]...)
//   - interface boxing: passing or converting a non-pointer-shaped concrete
//     value where an interface is expected (pointer, chan, map, func and
//     unsafe.Pointer values fit in the interface word and do not allocate)
//   - un-hinted append growth: append whose destination is not visibly
//     length-reset ([:0] reslice, 3-arg make) in this function and is not a
//     parameter (caller-owned capacity contract)
//
// A finding is suppressed by //gather:alloc-ok <reason> on the same line or
// the line above — used for sanctioned cold paths (capacity growth on first
// touch, error construction on the failure path).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"gridgather/internal/analysis"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation-introducing constructs in //gather:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.CollectDirectives(pass)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, hot := analysis.FuncDirective(fn, "hotpath"); hot {
				checkFunc(pass, dirs, fn)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	dirs *analysis.Directives
	// hinted holds destination expressions (by printed form) whose backing
	// capacity was visibly established in this function: assigned from a
	// [:0]-style reslice, a 3-arg make, or an append to an already-hinted
	// destination. Appends to these reuse capacity in the steady state.
	hinted map[string]bool
	params map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, dirs *analysis.Directives, fn *ast.FuncDecl) {
	c := &checker{
		pass:   pass,
		dirs:   dirs,
		hinted: make(map[string]bool),
		params: make(map[types.Object]bool),
	}
	// Parameters (including the receiver) carry a caller-owned capacity
	// contract: append(dst, ...) where dst is a parameter is the caller's
	// allocation to manage, not this function's.
	for _, field := range fieldLists(fn) {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				c.params[obj] = true
			}
		}
	}
	// ast.Inspect visits in source order, so hint-establishing assignments
	// are seen before the appends they cover.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "closure allocates on the hot path; hoist it to a persistent field or package-level func")
			return false // the literal's body is not this function's hot path
		case *ast.AssignStmt:
			c.recordHints(n)
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.report(n.Pos(), "map literal allocates on the hot path")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

func fieldLists(fn *ast.FuncDecl) []*ast.Field {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	return fields
}

// recordHints marks assignment destinations whose right-hand side visibly
// establishes reusable capacity, and un-marks destinations reassigned from
// anything else.
func (c *checker) recordHints(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		key := types.ExprString(lhs)
		if c.establishesCapacity(assign.Rhs[i]) {
			c.hinted[key] = true
		} else {
			delete(c.hinted, key)
		}
	}
}

func (c *checker) establishesCapacity(rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.SliceExpr:
		return true // x[:0] and friends: capacity retained
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
			switch {
			case id.Name == "make" && len(rhs.Args) == 3:
				return true // explicit capacity
			case id.Name == "append" && len(rhs.Args) > 0:
				return c.appendHinted(rhs.Args[0])
			}
		}
	}
	return false
}

func (c *checker) appendHinted(dst ast.Expr) bool {
	dst = ast.Unparen(dst)
	if _, ok := dst.(*ast.SliceExpr); ok {
		return true // append(x[:0], ...) inline reslice
	}
	if id, ok := dst.(*ast.Ident); ok && c.params[c.pass.TypesInfo.Uses[id]] {
		return true // caller-owned destination
	}
	return c.hinted[types.ExprString(dst)]
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins and conversions first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "append":
			if len(call.Args) > 0 && !c.appendHinted(call.Args[0]) {
				c.report(call.Pos(), "append without a visible capacity hint may grow on the hot path; reslice the destination with [:0] first")
			}
			return
		case "make":
			if tv, ok := c.pass.TypesInfo.Types[call]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.report(call.Pos(), "make(map) allocates on the hot path")
				}
			}
			return
		}
	}
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: T(x) boxes when T is an interface.
		if isInterface(tv.Type) && len(call.Args) == 1 {
			c.checkBoxing(call.Args[0])
		}
		return
	}
	if fromFmt(c.pass, call.Fun) {
		c.report(call.Pos(), "fmt call allocates on the hot path (boxes every operand)")
		return
	}
	c.checkArgs(call)
}

// checkArgs flags arguments boxed into interface parameters.
func (c *checker) checkArgs(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramType(sig, i, call.Ellipsis != token.NoPos)
		if param == nil || !isInterface(param) {
			continue
		}
		c.checkBoxing(arg)
	}
}

func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if ellipsis {
			return last // f(xs...) passes the slice itself
		}
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func (c *checker) checkBoxing(arg ast.Expr) {
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if isInterface(tv.Type) || tv.IsNil() || pointerShaped(tv.Type) {
		return
	}
	c.report(arg.Pos(), "interface boxing allocates on the hot path (non-pointer value %s)", tv.Type)
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether values of t fit in the interface data word
// without allocating: pointers, channels, maps, funcs, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func fromFmt(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "fmt"
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.IsTestFile(pos) || c.dirs.Escaped(pos, "alloc-ok") {
		return
	}
	c.pass.Reportf(pos, format, args...)
}
