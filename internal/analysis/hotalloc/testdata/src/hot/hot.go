// Package hot seeds every hotalloc violation class, the capacity-hint
// forms that must pass, and the alloc-ok escape.
package hot

import (
	"fmt"
	"sort"
)

type engine struct {
	buf   []int
	outs  []int
	order sort.IntSlice
}

//gather:hotpath
func (e *engine) closure() {
	f := func() {} // want `closure allocates on the hot path`
	f()
}

//gather:hotpath
func (e *engine) format(x int) {
	fmt.Println(x) // want `fmt call allocates on the hot path`
}

//gather:hotpath
func (e *engine) maps() {
	_ = map[int]int{1: 1}  // want `map literal allocates on the hot path`
	_ = make(map[int]int)  // want `make\(map\) allocates on the hot path`
	_ = make([]int, 0, 16) // slice make: fine
}

func box(v any) {}

//gather:hotpath
func (e *engine) boxing(x int, s sort.Interface) {
	box(x)      // want `interface boxing allocates on the hot path`
	box(s)      // interface to interface: fine
	box(&e.buf) // pointer-shaped: fine
	sort.Sort(&e.order)
	_ = any(x) // want `interface boxing allocates on the hot path`
	_ = any(&e.buf)
}

//gather:hotpath
func (e *engine) appends(dst []int, x int) []int {
	e.buf = append(e.buf, x) // want `append without a visible capacity hint`
	e.outs = e.outs[:0]
	e.outs = append(e.outs, x)    // hinted: reslice above
	e.outs = append(e.outs, x, x) // still hinted: append chain
	dst = append(dst, x)          // parameter: caller-owned
	tmp := make([]int, 0, 8)      // hinted: explicit capacity
	tmp = append(tmp, x)
	e.buf = append(e.buf[:0], tmp...) // hinted: inline reslice
	e.buf = append(e.buf, x)          // hinted: re-established above
	tmp = nil
	tmp = append(tmp, x) // want `append without a visible capacity hint`
	return dst
}

//gather:hotpath
func (e *engine) escaped() {
	//gather:alloc-ok capacity growth on first touch only
	e.buf = append(e.buf, 1)
	e.buf = append(e.buf, 2) //gather:alloc-ok same-line escape form
}

// cold is unannotated: nothing below is checked.
func cold() map[int]int {
	m := map[int]int{}
	fmt.Println(len(m))
	return m
}
