// Package pairs seeds the encoder-symmetry and sticky-error violations.
package pairs

import "codec"

type state struct{ n uint64 }

// AppendState pairs with NewRestored below.
func (s *state) AppendState(b []byte) []byte {
	return codec.AppendUvarint(b, s.n)
}

func NewRestored(b []byte) (*state, error) {
	r := codec.NewReader(b)
	s := &state{n: r.Uvarint()}
	return s, r.Err()
}

// appendCursor pairs with restoreCursor: lower-case and Restore-prefix forms.
func appendCursor(b []byte, pos uint64) []byte {
	return codec.AppendUvarint(b, pos)
}

func restoreCursor(r *codec.Reader) uint64 {
	return r.Uvarint()
}

func AppendOrphan(b []byte, v uint64) []byte { // want `encoder AppendOrphan has no decoding counterpart`
	return codec.AppendUvarint(b, v)
}

//gather:oneway debug dump, never read back
func AppendTraceDump(b []byte, v uint64) []byte {
	return codec.AppendUvarint(b, v)
}

// appendLinks is an ordinary slice helper, not a codec encoder: it does
// not return []byte, so the pairing rule must ignore it.
func appendLinks(links []int, l int) []int {
	return append(links, l)
}

func dropsErr(b []byte) uint64 {
	r := codec.NewReader(b) // want `sticky Err\(\) is never checked`
	return r.Uvarint()
}

func checksErr(b []byte) (uint64, error) {
	r := codec.NewReader(b)
	v := r.Uvarint()
	return v, r.Err()
}

func handsOff(b []byte) *codec.Reader {
	return codec.NewReader(b) // returning the reader delegates the check
}

func escapedDrop(b []byte) uint64 {
	r := codec.NewReader(b) //gather:codec-ok fixture-sanctioned drop
	return r.Uvarint()
}
