// Package codec is a miniature stand-in for gridgather/internal/codec:
// just enough surface (NewReader, the sticky Err, one Append primitive)
// for the codecpair fixtures to type-check. Its import path ends in
// "codec", which is both what activates codecpair in importing fixtures
// and what makes the analyzer skip this package itself.
package codec

// Reader is a sticky-error decoder over a byte slice.
type Reader struct {
	buf []byte
	err error
}

func NewReader(b []byte) *Reader { return &Reader{buf: b} }

func (r *Reader) Uvarint() uint64 { return 0 }

func (r *Reader) Err() error { return r.err }

func AppendUvarint(b []byte, v uint64) []byte { return append(b, byte(v)) }
