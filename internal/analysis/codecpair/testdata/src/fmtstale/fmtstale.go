// Package fmtstale carries a snapshot-format marker whose recorded hash no
// longer matches the declarations — the diagnostic every codec edit
// triggers until the author restates the marker.

//gather:snapshot-format version=fmtVersion hash=ffffffffffffffff
// want `snapshot format changed`

package fmtstale

import "codec"

const fmtVersion = 3

func AppendRow(b []byte, v uint64) []byte {
	return codec.AppendUvarint(b, v)
}

func DecodeRow(r *codec.Reader) uint64 {
	return r.Uvarint()
}
