// Package fmtbad carries malformed snapshot-format markers.

//gather:snapshot-format version=missingConst hash=0123456789abcdef
// want `snapshot-format version constant missingConst is not declared`

package fmtbad

import "codec"

func AppendCell(b []byte, v uint64) []byte {
	return codec.AppendUvarint(b, v)
}

func DecodeCell(r *codec.Reader) uint64 {
	return r.Uvarint()
}
