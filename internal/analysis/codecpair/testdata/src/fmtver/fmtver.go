// Package fmtver carries a snapshot-format marker whose hash matches its
// format-bearing declarations, and pairs its method encoder through a
// Decode<Type> constructor. No diagnostics expected.
//
//gather:snapshot-format version=fmtVersion hash=875c7d2bc5547c38
package fmtver

import "codec"

const fmtVersion = 1

type grid struct{ n uint64 }

func (g *grid) AppendState(b []byte) []byte {
	b = codec.AppendUvarint(b, fmtVersion)
	return codec.AppendUvarint(b, g.n)
}

func DecodeGrid(b []byte) (*grid, error) {
	r := codec.NewReader(b)
	_ = r.Uvarint()
	g := &grid{n: r.Uvarint()}
	return g, r.Err()
}
