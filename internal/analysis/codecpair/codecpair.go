// Package codecpair enforces the snapshot codec's structural invariants in
// packages that consume internal/codec (or carry a //gather:snapshot-format
// marker):
//
//   - Symmetry: every encoder Append<X>/append<X> declared in the package
//     must have a decoding counterpart — Decode<X>, Restore<X>, NewRestored,
//     or Decode<ReceiverType> (case-insensitive prefixes) — so a writer
//     cannot ship bytes no reader understands. A deliberately asymmetric
//     encoder is disclaimed with //gather:oneway <reason>.
//   - Sticky errors: every function that constructs a codec.Reader must
//     either consult its Err() method or hand the reader to its caller by
//     returning it; silently dropping the sticky error turns truncated
//     input into garbage state. Escape: //gather:codec-ok <reason>.
//   - Versioning: a package carrying
//     //gather:snapshot-format version=<const> hash=<16 hex digits>
//     has its format fingerprint — an FNV-1a hash over the printed bodies
//     of all format-bearing declarations — checked against the recorded
//     hash. Changing any encoder or decoder changes the fingerprint, and
//     the resulting diagnostic (which prints the new hash) forces the
//     author to restate the marker and, per its instructions, decide
//     whether <const> must be bumped.
package codecpair

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"hash/fnv"
	"sort"
	"strings"

	"gridgather/internal/analysis"
)

// Analyzer is the codecpair analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "codecpair",
	Doc:  "enforce Append/Decode symmetry, sticky-error checks, and snapshot-format fingerprints",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if path == "codec" || strings.HasSuffix(path, "/codec") {
		return nil, nil // the codec package itself defines the primitives
	}
	dirs := analysis.CollectDirectives(pass)
	marker, hasMarker := analysis.PackageDirective(pass, "snapshot-format")
	if !importsCodec(pass) && !hasMarker {
		return nil, nil
	}

	decls := collectFuncs(pass)
	checkPairs(pass, decls)
	checkReaders(pass, dirs, decls)
	if hasMarker {
		checkFingerprint(pass, marker, decls)
	}
	return nil, nil
}

func importsCodec(pass *analysis.Pass) bool {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "codec" || strings.HasSuffix(imp.Path(), "/codec") {
			return true
		}
	}
	return false
}

// collectFuncs gathers the package's non-test function declarations in
// source order.
func collectFuncs(pass *analysis.Pass) []*ast.FuncDecl {
	var decls []*ast.FuncDecl
	for _, f := range pass.SourceFiles() {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				decls = append(decls, fn)
			}
		}
	}
	return decls
}

// checkPairs verifies every Append<X> encoder has a decoding counterpart.
func checkPairs(pass *analysis.Pass, decls []*ast.FuncDecl) {
	names := make(map[string]bool, len(decls))
	for _, fn := range decls {
		names[fn.Name.Name] = true
	}
	for _, fn := range decls {
		base, ok := encoderBase(fn.Name.Name)
		if !ok || pass.IsTestFile(fn.Pos()) || !returnsByteSlice(pass, fn) {
			continue
		}
		if _, oneway := analysis.FuncDirective(fn, "oneway"); oneway {
			continue
		}
		if hasCounterpart(names, base, receiverTypeName(fn)) {
			continue
		}
		pass.Reportf(fn.Name.Pos(),
			"encoder %s has no decoding counterpart (Decode%s, Restore%s, NewRestored, or a Decode<Type> constructor); mark deliberate asymmetry //gather:oneway <reason>",
			fn.Name.Name, base, base)
	}
}

// returnsByteSlice distinguishes codec encoders from ordinary append-style
// slice helpers: an encoder extends and returns a []byte buffer.
func returnsByteSlice(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	results := obj.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		if s, ok := results.At(i).Type().Underlying().(*types.Slice); ok {
			if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// encoderBase extracts X from Append<X>/append<X>; ok is false for names
// that are not encoders (including bare "Append"/"append").
func encoderBase(name string) (string, bool) {
	for _, prefix := range []string{"Append", "append"} {
		if rest, found := strings.CutPrefix(name, prefix); found && rest != "" {
			return rest, true
		}
	}
	return "", false
}

func hasCounterpart(names map[string]bool, base, recvType string) bool {
	candidates := []string{
		"Decode" + base, "decode" + base,
		"Restore" + base, "restore" + base,
	}
	if recvType != "" {
		// A method encoder may decode through a constructor: NewRestored
		// (fsync.Engine.AppendState) or Decode<Type> (world.Dense.AppendState
		// → DecodeDense). Plain-function encoders get no such credit — a
		// package-level NewRestored must not excuse unrelated orphans.
		candidates = append(candidates,
			"NewRestored",
			"Decode"+exported(recvType), "decode"+exported(recvType))
	}
	for _, c := range candidates {
		if names[c] {
			return true
		}
	}
	return false
}

// exported upper-cases the first byte so receiver type "grid" matches a
// DecodeGrid constructor (ASCII type names only, which holds repo-wide).
func exported(name string) string {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return name
	}
	return string(name[0]-'a'+'A') + name[1:]
}

func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkReaders verifies each function constructing a codec.Reader consults
// the sticky error or returns the reader for its caller to check.
func checkReaders(pass *analysis.Pass, dirs *analysis.Directives, decls []*ast.FuncDecl) {
	for _, fn := range decls {
		if fn.Body == nil || pass.IsTestFile(fn.Pos()) {
			continue
		}
		newReaderPos := token.NoPos
		checksErr := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "NewReader":
				if isCodecPkgSelector(pass, sel) && newReaderPos == token.NoPos {
					newReaderPos = call.Pos()
				}
			case "Err":
				checksErr = true
			}
			return true
		})
		if newReaderPos == token.NoPos || checksErr || returnsReader(fn) {
			continue
		}
		if dirs.Escaped(newReaderPos, "codec-ok") {
			continue
		}
		pass.Reportf(newReaderPos,
			"codec.Reader constructed but its sticky Err() is never checked in %s; check Err() or return the reader", fn.Name.Name)
	}
}

func isCodecPkgSelector(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pkgName.Imported().Path()
	return p == "codec" || strings.HasSuffix(p, "/codec")
}

// returnsReader reports whether fn's results include a *codec.Reader-ish
// type (selector ending in Reader), delegating the Err check to callers.
func returnsReader(fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if sel, ok := t.(*ast.SelectorExpr); ok && sel.Sel.Name == "Reader" {
			return true
		}
	}
	return false
}

// checkFingerprint recomputes the package's snapshot-format hash and
// compares it to the marker.
func checkFingerprint(pass *analysis.Pass, marker analysis.Directive, decls []*ast.FuncDecl) {
	fields := parseKeyValues(marker.Args)
	versionConst, hash := fields["version"], fields["hash"]
	if versionConst == "" || len(hash) != 16 {
		pass.Reportf(marker.Pos, "malformed //gather:snapshot-format: need version=<const> hash=<16 hex digits>")
		return
	}
	if pass.Pkg.Scope().Lookup(versionConst) == nil {
		pass.Reportf(marker.Pos, "snapshot-format version constant %s is not declared in this package", versionConst)
		return
	}
	got := fingerprint(pass, versionConst, decls)
	if got != hash {
		pass.Reportf(marker.Pos,
			"snapshot format changed: fingerprint %s, marker records %s; if the byte layout changed, bump %s, then update the marker hash",
			got, hash, versionConst)
	}
}

func parseKeyValues(args string) map[string]string {
	out := make(map[string]string)
	for _, field := range strings.Fields(args) {
		if k, v, ok := strings.Cut(field, "="); ok {
			out[k] = v
		}
	}
	return out
}

// fingerprint hashes the printed form of every format-bearing declaration:
// encoders and decoders (append/decode/restore prefixes), Snapshot,
// NewRestored, and the version constant's declaration. Declarations are
// hashed in name order so moving code between files does not churn the
// fingerprint.
func fingerprint(pass *analysis.Pass, versionConst string, decls []*ast.FuncDecl) string {
	var parts []*printable
	for _, fn := range decls {
		if pass.IsTestFile(fn.Pos()) || !formatBearing(fn.Name.Name) {
			continue
		}
		parts = append(parts, &printable{key: declKey(fn), node: fn})
	}
	if spec := findConstSpec(pass, versionConst); spec != nil {
		parts = append(parts, &printable{key: "const " + versionConst, node: spec})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].key < parts[j].key })

	h := fnv.New64a()
	var buf bytes.Buffer
	for _, p := range parts {
		buf.Reset()
		printer.Fprint(&buf, pass.Fset, p.node)
		h.Write([]byte(p.key))
		h.Write([]byte{0})
		h.Write(buf.Bytes())
		h.Write([]byte{0})
	}
	const hexdigits = "0123456789abcdef"
	sum := h.Sum64()
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = hexdigits[sum&0xf]
		sum >>= 4
	}
	return string(out)
}

type printable struct {
	key  string
	node ast.Node
}

func formatBearing(name string) bool {
	lower := strings.ToLower(name)
	for _, prefix := range []string{"append", "decode", "restore"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return name == "Snapshot" || name == "NewRestored"
}

// declKey disambiguates same-named methods on different receivers.
func declKey(fn *ast.FuncDecl) string {
	if recv := receiverTypeName(fn); recv != "" {
		return recv + "." + fn.Name.Name
	}
	return fn.Name.Name
}

func findConstSpec(pass *analysis.Pass, name string) *ast.ValueSpec {
	for _, f := range pass.SourceFiles() {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.CONST {
				continue
			}
			for _, spec := range gen.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, id := range vs.Names {
					if id.Name == name {
						return vs
					}
				}
			}
		}
	}
	return nil
}
