package codecpair_test

import (
	"testing"

	"gridgather/internal/analysis/analyzertest"
	"gridgather/internal/analysis/codecpair"
)

// TestPairsAndReaders covers encoder symmetry (all counterpart spellings,
// the []byte-return filter, the oneway disclaimer) and the sticky-error
// rule (check, return, escape).
func TestPairsAndReaders(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "pairs", codecpair.Analyzer)
}

// TestFingerprintFresh expects no diagnostics: the marker hash matches the
// fixture's declarations, and the method encoder pairs via DecodeGrid.
func TestFingerprintFresh(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "fmtver", codecpair.Analyzer)
}

// TestFingerprintStale expects the format-changed diagnostic.
func TestFingerprintStale(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "fmtstale", codecpair.Analyzer)
}

// TestFingerprintMalformed expects the missing-constant diagnostic.
func TestFingerprintMalformed(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "fmtbad", codecpair.Analyzer)
}
