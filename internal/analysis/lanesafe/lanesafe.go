// Package lanesafe enforces the shard lane protocol: methods named *Shard
// (or annotated //gather:lane-confined) run concurrently, one goroutine per
// lane, and may only write receiver state the lane owns. The allowlist is
// declared at the data: struct fields marked //gather:lane-owned are
// indexed-by-lane and safe to write from shard methods; everything else on
// the receiver is serial-phase state. Shard methods also must not write
// package-level variables, and must not call receiver methods marked
// //gather:shared-state (serial-phase mutators like ensureTile).
//
// This is the class of seam bug the race detector only finds under lucky
// schedules: a shard method touching shared state races with its siblings
// on a different lane count or interleaving. The check is syntactic and
// per-receiver — writes through a lane pointer obtained from a lane-owned
// field are fine by construction.
//
// A *Shard-named method that is actually serial (called only from the
// serial phase) is disclaimed with //gather:serial <reason>. A sanctioned
// cold-path exception (e.g. single-lane fallback) is escaped per line with
// //gather:lane-ok <reason>.
package lanesafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gridgather/internal/analysis"
)

// Analyzer is the lanesafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lanesafe",
	Doc:  "restrict *Shard lane-protocol methods to lane-owned receiver state",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.CollectDirectives(pass)
	owned := collectLaneOwned(pass)
	shared := collectSharedState(pass)

	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !laneConfined(fn) {
				continue
			}
			checkShardMethod(pass, dirs, fn, owned, shared)
		}
	}
	return nil, nil
}

// laneConfined reports whether fn participates in the lane protocol: a
// method whose name ends in Shard (exactly — BeginRoundShards, the serial
// fan-out entry point, does not match), or one annotated
// //gather:lane-confined; //gather:serial disclaims either.
func laneConfined(fn *ast.FuncDecl) bool {
	if _, serial := analysis.FuncDirective(fn, "serial"); serial {
		return false
	}
	if _, confined := analysis.FuncDirective(fn, "lane-confined"); confined {
		return true
	}
	return fn.Recv != nil && strings.HasSuffix(fn.Name.Name, "Shard")
}

// collectLaneOwned maps receiver type name → set of fields marked
// //gather:lane-owned.
func collectLaneOwned(pass *analysis.Pass) map[string]map[string]bool {
	owned := make(map[string]map[string]bool)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, spec := range gen.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if _, ok := analysis.FieldDirective(field, "lane-owned"); !ok {
						continue
					}
					set := owned[ts.Name.Name]
					if set == nil {
						set = make(map[string]bool)
						owned[ts.Name.Name] = set
					}
					for _, name := range field.Names {
						set[name.Name] = true
					}
				}
			}
		}
	}
	return owned
}

// collectSharedState maps receiver type name → set of methods marked
// //gather:shared-state (serial-phase mutators shard methods must not call).
func collectSharedState(pass *analysis.Pass) map[string]map[string]bool {
	shared := make(map[string]map[string]bool)
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "shared-state"); !ok {
				continue
			}
			recv := receiverTypeName(fn)
			set := shared[recv]
			if set == nil {
				set = make(map[string]bool)
				shared[recv] = set
			}
			set[fn.Name.Name] = true
		}
	}
	return shared
}

func checkShardMethod(pass *analysis.Pass, dirs *analysis.Directives, fn *ast.FuncDecl, owned, shared map[string]map[string]bool) {
	recvType := receiverTypeName(fn)
	recvObj := receiverObject(pass, fn)
	ownedFields := owned[recvType]
	sharedMethods := shared[recvType]

	report := func(pos token.Pos, format string, args ...any) {
		if pass.IsTestFile(pos) || dirs.Escaped(pos, "lane-ok") {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	checkWrite := func(lhs ast.Expr) {
		root, firstField := rootAndFirstField(lhs)
		if root == nil {
			return
		}
		obj := pass.TypesInfo.Uses[root]
		switch {
		case obj != nil && obj == recvObj:
			if firstField == "" || ownedFields[firstField] {
				return
			}
			report(lhs.Pos(), "%s writes receiver field %q, which is not //gather:lane-owned; shard methods may only touch lane-owned state", fn.Name.Name, firstField)
		case isPackageLevelVar(pass, obj):
			report(lhs.Pos(), "%s writes package-level variable %q from a shard method", fn.Name.Name, root.Name)
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != recvObj {
				return true
			}
			if sharedMethods[sel.Sel.Name] {
				report(n.Pos(), "%s calls //gather:shared-state method %s from a shard method; shared mutators are serial-phase only", fn.Name.Name, sel.Sel.Name)
			}
		}
		return true
	})
}

// rootAndFirstField unwraps selector/index/star chains on an assignment
// target: for d.lanes[ln].occ it returns (d, "lanes"); for a plain local it
// returns (local, ""). A nil root means the target is not rooted at an
// identifier (e.g. a map index on a call result) and is skipped.
func rootAndFirstField(e ast.Expr) (*ast.Ident, string) {
	firstField := ""
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, firstField
		case *ast.SelectorExpr:
			firstField = x.Sel.Name
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, ""
		}
	}
}

func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func receiverObject(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

func isPackageLevelVar(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}
