// Package lane seeds the shard-protocol violations: non-owned receiver
// writes, package-level writes, shared-state calls, plus every opt-out.
package lane

var sequence int

type laneState struct{ occ []int }

type grid struct {
	serialCtr int
	capacity  int
	//gather:lane-owned
	lanes  []laneState
	clocks []int //gather:lane-owned
}

func (g *grid) ArriveShard(ln, x int) {
	g.lanes[ln].occ = append(g.lanes[ln].occ, x) // lane-owned: fine
	g.clocks[ln]++                               // lane-owned: fine
	g.serialCtr++                                // want `writes receiver field "serialCtr"`
	g.capacity = x                               // want `writes receiver field "capacity"`
	sequence = x                                 // want `writes package-level variable "sequence"`
	g.grow()                                     // want `calls //gather:shared-state method grow`
	g.grow()                                     //gather:lane-ok single-lane cold path, fixture-sanctioned
	local := x                                   // locals are fine
	local++
	_ = local
}

//gather:shared-state
func (g *grid) grow() { g.capacity *= 2 }

// BeginRoundShards ends in "Shards", not "Shard": the serial fan-out entry
// point is not lane-confined.
func (g *grid) BeginRoundShards() { g.serialCtr = 0 }

//gather:serial runs before the shards start
func (g *grid) PrepShard() { g.serialCtr++ }

//gather:lane-confined
func (g *grid) resolveLane(ln int) {
	g.clocks[ln]++
	g.serialCtr++ // want `writes receiver field "serialCtr"`
}

// free functions named *Shard are not methods and are not lane-confined.
func countShard(xs []int) int { sequence++; return len(xs) }
