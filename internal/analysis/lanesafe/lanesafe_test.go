package lanesafe_test

import (
	"testing"

	"gridgather/internal/analysis/analyzertest"
	"gridgather/internal/analysis/lanesafe"
)

// TestLaneProtocol covers lane-owned writes, the three violation classes,
// the Shards/serial opt-outs, lane-confined opt-in, and the lane-ok escape.
func TestLaneProtocol(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "lane", lanesafe.Analyzer)
}
