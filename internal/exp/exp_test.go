package exp

import (
	"strings"
	"testing"
)

func TestE1Small(t *testing.T) {
	var b strings.Builder
	E1GridScaling(&b, []int{24, 48})
	out := b.String()
	if !strings.Contains(out, "line") || !strings.Contains(out, "exponent") {
		t.Errorf("E1 output:\n%s", out)
	}
	if strings.Contains(out, "ERR") {
		t.Errorf("E1 contains errors:\n%s", out)
	}
}

func TestE2Small(t *testing.T) {
	var b strings.Builder
	E2PlaneComparison(&b, []int{12, 24})
	out := b.String()
	if !strings.Contains(out, "plane/grid") || !strings.Contains(out, "growth exponents") {
		t.Errorf("E2 output:\n%s", out)
	}
}

func TestE1bSmall(t *testing.T) {
	var b strings.Builder
	E1bHollowDetail(&b, []int{15, 21})
	if !strings.Contains(b.String(), "Δrounds/Δw") {
		t.Errorf("E1b output:\n%s", b.String())
	}
}

func TestE3Small(t *testing.T) {
	var b strings.Builder
	E3AsyncBaseline(&b, []int{40})
	if strings.Contains(b.String(), "ERR") {
		t.Errorf("E3 contains errors:\n%s", b.String())
	}
}

func TestE15Small(t *testing.T) {
	var b strings.Builder
	E15Pipelining(&b, 30)
	if !strings.Contains(b.String(), "max concurrent runners") {
		t.Errorf("E15 output:\n%s", b.String())
	}
}

func TestE18Small(t *testing.T) {
	var b strings.Builder
	E18Ablation(&b, 60)
	out := b.String()
	if strings.Contains(out, "NO") {
		t.Errorf("ablation config failed to gather:\n%s", out)
	}
}

func TestE20Small(t *testing.T) {
	var b strings.Builder
	E20LowerBound(&b, []int{30, 60})
	if !strings.Contains(b.String(), "lower bound") {
		t.Errorf("E20 output:\n%s", b.String())
	}
}

func TestE21Small(t *testing.T) {
	var b strings.Builder
	E21Movements(&b, []int{40})
	out := b.String()
	if !strings.Contains(out, "moves/robot") || strings.Contains(out, "ERR") {
		t.Errorf("E21 output:\n%s", out)
	}
}
