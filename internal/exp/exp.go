// Package exp is the experiment harness: it regenerates the quantitative
// results of the reproduction (the experiment index E1–E20 in DESIGN.md)
// as plain-text tables. The cmd/gatherbench tool prints them; the recorded
// outputs live in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/baseline/gtc"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/metrics"
	"gridgather/internal/sweep"
)

// Concurrency is the number of simulations the harness runs at once when an
// experiment fans a batch out through the sweep runner (0 = all CPUs).
// cmd/gatherbench sets it from its -jobs flag.
var Concurrency = 0

// gridBatch fans a batch of jobs out across Concurrency-many goroutines and
// returns results in job order.
func gridBatch(jobs []sweep.Job) []sweep.Result {
	return sweep.Runner{Concurrency: Concurrency}.Run(jobs)
}

// E1GridScaling regenerates the headline result (Theorem 1): rounds grow
// linearly in n for every workload family.
func E1GridScaling(w io.Writer, sizes []int) {
	fmt.Fprintln(w, "E1 — Theorem 1: rounds vs n on the grid (paper: O(n), optimal)")
	tab := metrics.Table{Header: append([]string{"workload"}, func() []string {
		var h []string
		for _, n := range sizes {
			h = append(h, fmt.Sprintf("n=%d", n))
		}
		return append(h, "rounds/n", "exponent")
	}()...)}
	p := core.Defaults()
	catalog := gen.Catalog()
	var jobs []sweep.Job
	for _, wl := range catalog {
		for _, n := range sizes {
			jobs = append(jobs, sweep.Job{Workload: wl.Name, N: n, Seed: 42, Params: p})
		}
	}
	results := gridBatch(jobs)
	for i, wl := range catalog {
		row := []string{wl.Name}
		var series metrics.Series
		for j := range sizes {
			res := results[i*len(sizes)+j]
			if res.Err != "" {
				row = append(row, "ERR")
				continue
			}
			row = append(row, fmt.Sprint(res.Rounds))
			series.Append(float64(res.Robots), float64(res.Rounds))
		}
		last := series.Len() - 1
		row = append(row,
			fmt.Sprintf("%.2f", series.Y[last]/series.X[last]),
			fmt.Sprintf("%.2f", series.Exponent()))
		tab.AddRow(row...)
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w)
}

// E2PlaneComparison regenerates the comparison against the Euclidean
// baseline [DKL+11]: the grid's worst cases gather in O(n) rounds, the
// plane's worst cases need Θ(n²) — "our runtime of O(n) ... beats the best
// known algorithm, which requires time O(n²)". The grid line meets the
// Ω(n) diameter bound exactly; the plane circle realizes the quadratic
// behaviour (per-round progress is the chord sagitta Θ(1/n)); the grid
// ring is the shape-matched instance (linear with a large constant — its
// incremental slope is constant, see E1b).
func E2PlaneComparison(w io.Writer, sizes []int) {
	fmt.Fprintln(w, "E2 — grid O(n) vs Euclidean-plane go-to-center O(n²) [DKL+11]")
	tab := metrics.Table{Header: []string{"n", "grid line", "grid ring", "plane circle", "plane/grid-line"}}
	var lineSeries, ringSeries, planeSeries metrics.Series
	p := core.Defaults()
	for _, n := range sizes {
		lineRes := func() fsync.Result {
			s := gen.Line(n)
			eng := fsync.New(s, core.NewGatherer(p), fsync.Config{MaxRounds: fsync.DefaultBudget(n).MaxRounds})
			return eng.Run()
		}()

		ringSide := n/4 + 1
		s := gen.Hollow(ringSide, ringSide)
		actual := s.Len()
		eng := fsync.New(s, core.NewGatherer(p), fsync.Config{MaxRounds: fsync.DefaultBudget(actual).MaxRounds})
		ringRes := eng.Run()

		sim := gtc.NewSim(gtc.CircleInstance(n, 1.0), gtc.DefaultParams())
		planeRes := sim.Run(2_000_000)

		ratio := float64(planeRes.Rounds) / float64(max(1, lineRes.Rounds))
		tab.AddRowf(n, lineRes.Rounds, ringRes.Rounds, planeRes.Rounds, ratio)
		lineSeries.Append(float64(n), float64(lineRes.Rounds))
		ringSeries.Append(float64(actual), float64(ringRes.Rounds))
		planeSeries.Append(float64(n), float64(planeRes.Rounds))
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintf(w, "growth exponents: grid line %.2f (linear, meets the diameter bound),\n",
		lineSeries.Exponent())
	fmt.Fprintf(w, "  plane circle %.2f (quadratic); grid ring %.2f — inflated by a negative\n",
		planeSeries.Exponent(), ringSeries.Exponent())
	fmt.Fprintln(w, "  intercept; its incremental slope is constant (E1b), i.e. linear.")
	fmt.Fprintln(w)
}

// E1bHollowDetail demonstrates that the hollow ring family — whose power
// exponent over small sizes looks super-linear — is exactly linear: the
// measured rounds follow 11·w + c, with constant incremental slope.
func E1bHollowDetail(w io.Writer, sides []int) {
	fmt.Fprintln(w, "E1b — hollow ring detail: rounds are linear in the side length w")
	tab := metrics.Table{Header: []string{"w", "n", "rounds", "Δrounds/Δw"}}
	p := core.Defaults()
	prevW, prevRounds := 0, 0
	for _, side := range sides {
		s := gen.Hollow(side, side)
		actual := s.Len()
		eng := fsync.New(s, core.NewGatherer(p), fsync.Config{MaxRounds: fsync.DefaultBudget(actual).MaxRounds})
		res := eng.Run()
		slope := "-"
		if prevW > 0 {
			slope = fmt.Sprintf("%.1f", float64(res.Rounds-prevRounds)/float64(side-prevW))
		}
		tab.AddRow(fmt.Sprint(side), fmt.Sprint(actual), fmt.Sprint(res.Rounds), slope)
		prevW, prevRounds = side, res.Rounds
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w)
}

// E3AsyncBaseline regenerates the introduction's remark: a fair sequential
// ASYNC scheduler admits a simple O(n)-round strategy.
func E3AsyncBaseline(w io.Writer, sizes []int) {
	fmt.Fprintln(w, "E3 — ASYNC fair-scheduler simple strategy (paper §1: O(n) rounds)")
	tab := metrics.Table{Header: []string{"workload", "n", "rounds", "rounds/n"}}
	for _, wl := range gen.Catalog() {
		for _, n := range sizes {
			s := wl.Build(n)
			actual := s.Len()
			res := asyncseq.Run(s, 10*actual+100)
			if res.Err != nil {
				tab.AddRow(wl.Name, fmt.Sprint(actual), "ERR", "-")
				continue
			}
			tab.AddRowf(wl.Name, actual, res.Rounds, float64(res.Rounds)/float64(actual))
		}
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w)
}

// E15Pipelining regenerates the §4.2 observation: on large mergeless rings,
// runs pipeline — many are active concurrently and merges arrive at a
// steady rate ≈ one batch per L rounds.
func E15Pipelining(w io.Writer, side int) {
	fmt.Fprintf(w, "E15 — pipelining on a %dx%d mergeless ring (L=22)\n", side, side)
	s := gen.Hollow(side, side)
	g := core.Default()
	maxConcurrent, mergeRounds := 0, 0
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds: 100000,
		OnRound: func(e *fsync.Engine) {
			if c := len(e.Runners()); c > maxConcurrent {
				maxConcurrent = c
			}
			if e.RoundMerges() > 0 {
				mergeRounds++
			}
		},
	})
	res := eng.Run()
	tab := metrics.Table{Header: []string{"n", "rounds", "runs started", "max concurrent runners", "rounds with merges"}}
	tab.AddRowf(res.InitialRobots, res.Rounds, res.RunsStarted, maxConcurrent, mergeRounds)
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w)
}

// E18Ablation regenerates the §5.3 constants discussion: the paper proves
// L = 22 / radius 20 sufficient and notes radius 11 / L ≥ 13 suffice in the
// easy passing case; smaller radii change constants, not the linear shape.
func E18Ablation(w io.Writer, n int) {
	fmt.Fprintf(w, "E18 — ablation of the constants (viewing radius R, start period L) at n≈%d\n", n)
	tab := metrics.Table{Header: []string{"R", "L", "workload", "rounds", "runs", "gathered"}}
	configs := []struct{ r, l int }{{20, 22}, {11, 13}, {20, 13}, {11, 22}, {8, 9}}
	var jobs []sweep.Job
	for _, cfg := range configs {
		p := core.WithConstants(cfg.r, cfg.l)
		for _, name := range []string{"hollow", "blob"} {
			jobs = append(jobs, sweep.Job{Workload: name, N: n, Seed: 42, Params: p})
		}
	}
	for _, res := range gridBatch(jobs) {
		gathered := "yes"
		if res.Err != "" || !res.Gathered {
			gathered = "NO"
		}
		tab.AddRowf(res.Job.Params.Radius, res.Job.Params.L, res.Job.Workload,
			res.Rounds, res.RunsStarted, gathered)
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w)
}

// E20LowerBound regenerates the Ω(n) direction of Theorem 1: the diameter
// argument — a line of n robots cannot gather faster than (diam-1)/2
// rounds, and the algorithm meets the bound exactly.
func E20LowerBound(w io.Writer, sizes []int) {
	fmt.Fprintln(w, "E20 — Ω(n) lower bound: line workload vs diameter bound")
	tab := metrics.Table{Header: []string{"n", "diameter", "lower bound", "measured rounds"}}
	p := core.Defaults()
	for _, n := range sizes {
		s := gen.Line(n)
		diam := s.Diameter()
		g := core.NewGatherer(p)
		eng := fsync.New(s, g, fsync.Config{MaxRounds: 80 * n})
		res := eng.Run()
		tab.AddRowf(n, diam, (diam-1)/2, res.Rounds)
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w)
}

// E21Movements records the total number of robot movements per workload —
// the cost measure of the [SN14] line of work (§2: gathering "optimal
// concerning the total number of movements" under global vision). The
// paper's local algorithm optimizes rounds, not movements; this table
// shows its movement cost stays modest (O(n) per family, a few hops per
// robot) even though no movement optimality is claimed.
func E21Movements(w io.Writer, sizes []int) {
	fmt.Fprintln(w, "E21 — total robot movements (the [SN14] cost measure; informational)")
	tab := metrics.Table{Header: []string{"workload", "n", "rounds", "moves", "moves/robot"}}
	p := core.Defaults()
	var jobs []sweep.Job
	for _, wl := range gen.Catalog() {
		for _, n := range sizes {
			jobs = append(jobs, sweep.Job{Workload: wl.Name, N: n, Seed: 42, Params: p})
		}
	}
	for _, res := range gridBatch(jobs) {
		if res.Err != "" {
			tab.AddRow(res.Job.Workload, fmt.Sprint(res.Job.N), "ERR", "-", "-")
			continue
		}
		tab.AddRowf(res.Job.Workload, res.Robots, res.Rounds, res.Moves,
			float64(res.Moves)/float64(res.Robots))
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w)
}

// Sizes are the default sweep sizes of the suite.
var Sizes = []int{40, 80, 160, 320}

// PlaneSizes are smaller (the plane baseline is quadratic — large sizes
// take minutes by design).
var PlaneSizes = []int{32, 64, 128, 256}

// All regenerates every experiment with the default sweep sizes.
func All(w io.Writer) {
	E1GridScaling(w, Sizes)
	E1bHollowDetail(w, []int{25, 41, 61, 81, 121})
	E2PlaneComparison(w, PlaneSizes)
	E3AsyncBaseline(w, []int{100, 300})
	E15Pipelining(w, 56)
	E18Ablation(w, 160)
	E20LowerBound(w, []int{50, 100, 200, 400})
	E21Movements(w, []int{160})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
