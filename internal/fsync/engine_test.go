package fsync

import (
	"errors"
	"testing"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
	"gridgather/internal/view"
)

// scripted is a test algorithm driven by a per-position action table.
type scripted struct {
	radius  int
	actions map[grid.Point]Action
}

func (s *scripted) Radius() int { return s.radius }
func (s *scripted) Compute(v *view.View) Action {
	// Views do not expose the origin; the scripted algorithm marks each
	// robot by probing its surroundings is overkill — instead we look the
	// action up via a closure-bound position channel. Simplest: actions
	// keyed by a unique local signature is fragile, so scripted tests use
	// one action for all robots unless the position key matches.
	return s.actions[s.originOf(v)]
}

// originOf recovers the origin by probing Occ over a small neighborhood —
// not possible in general. Instead tests plant distinct state IDs.
func (s *scripted) originOf(v *view.View) grid.Point {
	// Identify the robot by its run ID planted by the test.
	if runs := v.Self().Runs; len(runs) > 0 {
		return grid.Pt(runs[0].ID, 0) // tests encode the key in the ID
	}
	return grid.Point{}
}

func TestEngineCollisionMerges(t *testing.T) {
	// Three robots in a row; the outer two hop onto the middle.
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.East), // robot with run ID 1 (planted at (0,0)) hops east
		grid.Pt(2, 0): MoveTo(grid.West), // robot with run ID 2 (planted at (2,0)) hops west
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	eng.SetState(grid.Pt(2, 0), robot.State{Runs: []robot.Run{{ID: 2, Dir: grid.West, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Swarm().Len() != 1 {
		t.Errorf("robots = %d, want 1 (two merges)", eng.Swarm().Len())
	}
	if eng.Merges() != 2 {
		t.Errorf("merges = %d", eng.Merges())
	}
	// The survivor of a collision loses all run states (Table 1.3).
	if st := eng.StateAt(grid.Pt(1, 0)); st.HasRuns() {
		t.Error("collision survivor kept run states")
	}
}

func TestEngineRejectsFastMoves(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.Pt(2, 0)),
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err == nil {
		t.Fatal("expected speed-limit error")
	}
}

func TestEngineDetectsDisconnection(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	// The middle robot walks away north, splitting the line.
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.North),
	}}
	eng := New(s, alg, Config{CheckConnectivity: true})
	eng.SetState(grid.Pt(1, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	err := eng.Step()
	var dis ErrDisconnected
	if !errors.As(err, &dis) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestEngineTransferDelivery(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0))
	run := robot.Run{ID: 1, Dir: grid.East, Inside: grid.North}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): {Transfers: []Transfer{{To: grid.East, Run: run}}},
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if st := eng.StateAt(grid.Pt(1, 0)); !st.HasRuns() {
		t.Fatal("transfer not delivered")
	}
	if st := eng.StateAt(grid.Pt(0, 0)); st.HasRuns() {
		t.Error("sender kept the run")
	}
}

func TestEngineTransferToVacatedCellDies(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(1, 1))
	run := robot.Run{ID: 1, Dir: grid.East, Inside: grid.North}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): {Transfers: []Transfer{{To: grid.East, Run: run}}},
		grid.Pt(2, 0): MoveTo(grid.North), // the target robot hops away onto (1,1): merge
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	eng.SetState(grid.Pt(1, 0), robot.State{Runs: []robot.Run{{ID: 2, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	for _, p := range eng.Runners() {
		t.Errorf("unexpected runner at %v", p)
	}
}

func TestEngineRunCapRespected(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0), grid.Pt(1, 1))
	// Two senders transfer to the same target that already keeps one run:
	// the cap of two runs per robot must hold.
	mk := func(id int) robot.Run { return robot.Run{ID: id, Dir: grid.East, Inside: grid.North} }
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): {Transfers: []Transfer{{To: grid.East, Run: mk(1)}}},      // from (0,0) to (1,0)
		grid.Pt(2, 0): {Keep: []robot.Run{mk(2)}},                                // (1,0) keeps its run
		grid.Pt(3, 0): {Transfers: []Transfer{{To: grid.West, Run: mk(3)}}},      // from (2,0) to (1,0)
		grid.Pt(4, 0): {Transfers: []Transfer{{To: grid.SouthEast, Run: mk(4)}}}, // from (1,1)... wait SouthEast of (1,1) is (2,0)
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{mk(1)}})
	eng.SetState(grid.Pt(1, 0), robot.State{Runs: []robot.Run{mk(2)}})
	eng.SetState(grid.Pt(2, 0), robot.State{Runs: []robot.Run{mk(3)}})
	eng.SetState(grid.Pt(1, 1), robot.State{Runs: []robot.Run{mk(4)}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	st := eng.StateAt(grid.Pt(1, 0))
	if len(st.Runs) > robot.MaxRuns {
		t.Errorf("robot holds %d runs, cap is %d", len(st.Runs), robot.MaxRuns)
	}
}

func TestEngineGatheredStopsRun(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1), grid.Pt(1, 1))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}}
	eng := New(s, alg, Config{MaxRounds: 10})
	res := eng.Run()
	if !res.Gathered || res.Rounds != 0 {
		t.Errorf("2x2 block: %+v", res)
	}
}

func TestEngineRoundLimit(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}} // nobody moves
	eng := New(s, alg, Config{MaxRounds: 7})
	res := eng.Run()
	var lim ErrRoundLimit
	if !errors.As(res.Err, &lim) {
		t.Fatalf("err = %v", res.Err)
	}
	if res.Rounds != 7 || res.Gathered {
		t.Errorf("res = %+v", res)
	}
}

func TestEngineWatchdog(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}}
	eng := New(s, alg, Config{MaxRounds: 100, NoMergeLimit: 5})
	res := eng.Run()
	var stuck ErrStuck
	if !errors.As(res.Err, &stuck) {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestEngineDoesNotMutateInput(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.East),
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || !s.Has(grid.Pt(0, 0)) {
		t.Error("input swarm mutated")
	}
}

func TestEngineOnRoundHook(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	calls := 0
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}}
	eng := New(s, alg, Config{MaxRounds: 3, OnRound: func(e *Engine) { calls++ }})
	eng.Run()
	if calls != 3 {
		t.Errorf("hook calls = %d", calls)
	}
}

func TestSetStatePanicsOnFreeCell(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0))
	eng := New(s, &scripted{radius: 5}, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	eng.SetState(grid.Pt(5, 5), robot.State{Runs: []robot.Run{{Dir: grid.East, Inside: grid.North}}})
}
