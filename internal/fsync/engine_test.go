package fsync

import (
	"errors"
	"testing"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
	"gridgather/internal/view"
)

// scripted is a test algorithm driven by a per-position action table.
type scripted struct {
	radius  int
	actions map[grid.Point]Action
}

func (s *scripted) Radius() int { return s.radius }
func (s *scripted) Compute(v *view.View) Action {
	// Views do not expose the origin; the scripted algorithm marks each
	// robot by probing its surroundings is overkill — instead we look the
	// action up via a closure-bound position channel. Simplest: actions
	// keyed by a unique local signature is fragile, so scripted tests use
	// one action for all robots unless the position key matches.
	return s.actions[s.originOf(v)]
}

// originOf recovers the origin by probing Occ over a small neighborhood —
// not possible in general. Instead tests plant distinct state IDs.
func (s *scripted) originOf(v *view.View) grid.Point {
	// Identify the robot by its run ID planted by the test.
	if runs := v.Self().Runs; len(runs) > 0 {
		return grid.Pt(runs[0].ID, 0) // tests encode the key in the ID
	}
	return grid.Point{}
}

// xfer builds an action that moves by move and hands off the given runs —
// the literal-style construction that Action's inline storage replaced.
func xfer(move grid.Point, trs ...Transfer) Action {
	a := Action{Move: move}
	for _, t := range trs {
		a.AddTransfer(t.To, t.Run)
	}
	return a
}

// keep builds a stay action retaining the given runs.
func keep(runs ...robot.Run) Action {
	var a Action
	for _, r := range runs {
		a.AddKeep(r)
	}
	return a
}

func TestEngineCollisionMerges(t *testing.T) {
	// Three robots in a row; the outer two hop onto the middle.
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.East), // robot with run ID 1 (planted at (0,0)) hops east
		grid.Pt(2, 0): MoveTo(grid.West), // robot with run ID 2 (planted at (2,0)) hops west
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	eng.SetState(grid.Pt(2, 0), robot.State{Runs: []robot.Run{{ID: 2, Dir: grid.West, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Swarm().Len() != 1 {
		t.Errorf("robots = %d, want 1 (two merges)", eng.Swarm().Len())
	}
	if eng.Merges() != 2 {
		t.Errorf("merges = %d", eng.Merges())
	}
	// The survivor of a collision loses all run states (Table 1.3).
	if st := eng.StateAt(grid.Pt(1, 0)); st.HasRuns() {
		t.Error("collision survivor kept run states")
	}
}

func TestEngineRejectsFastMoves(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.Pt(2, 0)),
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err == nil {
		t.Fatal("expected speed-limit error")
	}
}

func TestEngineDetectsDisconnection(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	// The middle robot walks away north, splitting the line.
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.North),
	}}
	eng := New(s, alg, Config{CheckConnectivity: true})
	eng.SetState(grid.Pt(1, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	err := eng.Step()
	var dis ErrDisconnected
	if !errors.As(err, &dis) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestEngineTransferDelivery(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0))
	run := robot.Run{ID: 1, Dir: grid.East, Inside: grid.North}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): xfer(grid.Zero, Transfer{To: grid.East, Run: run}),
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if st := eng.StateAt(grid.Pt(1, 0)); !st.HasRuns() {
		t.Fatal("transfer not delivered")
	}
	if st := eng.StateAt(grid.Pt(0, 0)); st.HasRuns() {
		t.Error("sender kept the run")
	}
}

func TestEngineTransferToVacatedCellDies(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(1, 1))
	run := robot.Run{ID: 1, Dir: grid.East, Inside: grid.North}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): xfer(grid.Zero, Transfer{To: grid.East, Run: run}),
		grid.Pt(2, 0): MoveTo(grid.North), // the target robot hops away onto (1,1): merge
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	eng.SetState(grid.Pt(1, 0), robot.State{Runs: []robot.Run{{ID: 2, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	for _, p := range eng.Runners() {
		t.Errorf("unexpected runner at %v", p)
	}
}

func TestEngineRunCapRespected(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0), grid.Pt(1, 1))
	// Two senders transfer to the same target that already keeps one run:
	// the cap of two runs per robot must hold.
	mk := func(id int) robot.Run { return robot.Run{ID: id, Dir: grid.East, Inside: grid.North} }
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): xfer(grid.Zero, Transfer{To: grid.East, Run: mk(1)}),      // from (0,0) to (1,0)
		grid.Pt(2, 0): keep(mk(2)),                                               // (1,0) keeps its run
		grid.Pt(3, 0): xfer(grid.Zero, Transfer{To: grid.West, Run: mk(3)}),      // from (2,0) to (1,0)
		grid.Pt(4, 0): xfer(grid.Zero, Transfer{To: grid.SouthEast, Run: mk(4)}), // from (1,1)... wait SouthEast of (1,1) is (2,0)
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{mk(1)}})
	eng.SetState(grid.Pt(1, 0), robot.State{Runs: []robot.Run{mk(2)}})
	eng.SetState(grid.Pt(2, 0), robot.State{Runs: []robot.Run{mk(3)}})
	eng.SetState(grid.Pt(1, 1), robot.State{Runs: []robot.Run{mk(4)}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	st := eng.StateAt(grid.Pt(1, 0))
	if len(st.Runs) > robot.MaxRuns {
		t.Errorf("robot holds %d runs, cap is %d", len(st.Runs), robot.MaxRuns)
	}
}

func TestEngineGatheredStopsRun(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1), grid.Pt(1, 1))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}}
	eng := New(s, alg, Config{MaxRounds: 10})
	res := eng.Run()
	if !res.Gathered || res.Rounds != 0 {
		t.Errorf("2x2 block: %+v", res)
	}
}

func TestEngineRoundLimit(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}} // nobody moves
	eng := New(s, alg, Config{MaxRounds: 7})
	res := eng.Run()
	var lim ErrRoundLimit
	if !errors.As(res.Err, &lim) {
		t.Fatalf("err = %v", res.Err)
	}
	if res.Rounds != 7 || res.Gathered {
		t.Errorf("res = %+v", res)
	}
}

func TestEngineWatchdog(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}}
	eng := New(s, alg, Config{MaxRounds: 100, NoMergeLimit: 5})
	res := eng.Run()
	var stuck ErrStuck
	if !errors.As(res.Err, &stuck) {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestEngineDoesNotMutateInput(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): MoveTo(grid.East),
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 1, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || !s.Has(grid.Pt(0, 0)) {
		t.Error("input swarm mutated")
	}
}

func TestEngineOnRoundHook(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	calls := 0
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}}
	eng := New(s, alg, Config{MaxRounds: 3, OnRound: func(e *Engine) { calls++ }})
	eng.Run()
	if calls != 3 {
		t.Errorf("hook calls = %d", calls)
	}
}

// TestEngineTransferFromMergingSenderDies pins the Table 1 semantics for
// the round in which a runner both hands off a run and merges: "it was part
// of a merge operation" stops ALL of the robot's runs, including states in
// flight to a neighbor. The engine used to deliver such transfers
// unconditionally; the hand-off must die with the sender.
func TestEngineTransferFromMergingSenderDies(t *testing.T) {
	// Sender (0,0) stays and transfers its run east to (1,0); robot (0,1)
	// drops onto the sender's cell, merging the sender.
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1))
	run := robot.Run{ID: 1, Dir: grid.East, Inside: grid.North}
	// The sender hands off a brand-new run (ID 0) alongside: it must not be
	// delivered NOR counted as started, since it dies in the same round.
	fresh := robot.Run{Dir: grid.East, Inside: grid.North}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): xfer(grid.Zero,
			Transfer{To: grid.East, Run: run},
			Transfer{To: grid.East, Run: fresh},
		),
		grid.Pt(2, 0): MoveTo(grid.South), // robot with run ID 2, at (0,1)
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	eng.SetState(grid.Pt(0, 1), robot.State{Runs: []robot.Run{{ID: 2, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Merges() != 1 {
		t.Fatalf("merges = %d, want 1", eng.Merges())
	}
	if st := eng.StateAt(grid.Pt(1, 0)); st.HasRuns() {
		t.Errorf("transfer from merging sender was delivered: %v", st.Runs)
	}
	if eng.RunsStarted() != 0 {
		t.Errorf("RunsStarted = %d, want 0 (dropped hand-off of a new run must not count)", eng.RunsStarted())
	}
}

// TestEngineTransferFromRollingMergerDies covers the OP-A flavor of the
// same rule: a runner that hops onto an occupied cell (Table 1.6) merges,
// so a second run it was gliding to a neighbor in the same round must die
// too.
func TestEngineTransferFromRollingMergerDies(t *testing.T) {
	// Sender (0,0) hops east onto the occupied (1,0) while handing a run
	// north to (0,1).
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1))
	run := robot.Run{ID: 1, Dir: grid.North, Inside: grid.East}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): xfer(grid.East, Transfer{To: grid.North, Run: run}),
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Merges() != 1 {
		t.Fatalf("merges = %d, want 1", eng.Merges())
	}
	if st := eng.StateAt(grid.Pt(0, 1)); st.HasRuns() {
		t.Errorf("transfer from merging sender was delivered: %v", st.Runs)
	}
}

// staticSched is a test scheduler with a fixed per-round activation rule.
type staticSched struct {
	active func(round int, p grid.Point) bool
}

func (s staticSched) Activate(round int, cells []grid.Point, _ []int32, active []bool) {
	for i, p := range cells {
		active[i] = s.active(round, p)
	}
}
func (staticSched) Fairness(int) int { return 1 }
func (staticSched) String() string   { return "static" }

// TestEngineSleepersKeepStateAndClock checks the relaxed-scheduler
// semantics: robots outside the activation set stay put, keep their run
// states frozen, and their logical clocks do not tick.
func TestEngineSleepersKeepStateAndClock(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	run := robot.Run{ID: 1, Dir: grid.East, Inside: grid.North, Age: 3}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{}}
	// Only (2,0) is ever activated.
	eng := New(s, alg, Config{Scheduler: staticSched{
		active: func(_ int, p grid.Point) bool { return p == grid.Pt(2, 0) },
	}})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	for r := 0; r < 3; r++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.StateAt(grid.Pt(0, 0))
	if len(st.Runs) != 1 || st.Runs[0] != run {
		t.Errorf("sleeping runner's state changed: %v", st.Runs)
	}
	if got := eng.LocalRound(grid.Pt(0, 0)); got != 0 {
		t.Errorf("sleeping robot's clock = %d, want 0", got)
	}
	if got := eng.LocalRound(grid.Pt(2, 0)); got != 3 {
		t.Errorf("activated robot's clock = %d, want 3", got)
	}
	if eng.Round() != 3 {
		t.Errorf("global round = %d, want 3", eng.Round())
	}
}

// TestEngineSleeperReceivesTransfer: a sleeping robot can still be handed a
// run state — the hand-off is the sender's action, not the recipient's.
func TestEngineSleeperReceivesTransfer(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0))
	run := robot.Run{ID: 1, Dir: grid.East, Inside: grid.North}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(1, 0): xfer(grid.Zero, Transfer{To: grid.East, Run: run}),
	}}
	eng := New(s, alg, Config{Scheduler: staticSched{
		active: func(_ int, p grid.Point) bool { return p == grid.Pt(0, 0) },
	}})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{run}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if st := eng.StateAt(grid.Pt(1, 0)); !st.HasRuns() {
		t.Error("sleeping recipient did not receive the transfer")
	}
	if st := eng.StateAt(grid.Pt(0, 0)); st.HasRuns() {
		t.Error("sender kept the run")
	}
}

// TestEngineNegativeMaxRoundsNormalized: negative limits are reserved and
// normalized to "unlimited" (the public API rejects them before they reach
// the engine).
func TestEngineNegativeMaxRoundsNormalized(t *testing.T) {
	eng := New(swarm.New(grid.Pt(0, 0)), &scripted{radius: 5}, Config{MaxRounds: -7})
	if eng.cfg.MaxRounds != 0 {
		t.Errorf("MaxRounds = %d, want 0", eng.cfg.MaxRounds)
	}
}

func TestSetStatePanicsOnFreeCell(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0))
	eng := New(s, &scripted{radius: 5}, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	eng.SetState(grid.Pt(5, 5), robot.State{Runs: []robot.Run{{Dir: grid.East, Inside: grid.North}}})
}

// TestEngineKeepFromMergedRobotNotStarted pins the keep-path analogue of
// the transfer-death rule: a robot that keeps a brand-new run (ID 0) and
// is merged onto in the same round never started it — no ID is consumed
// and RunsStarted stays zero, exactly as for an undelivered hand-off.
func TestEngineKeepFromMergedRobotNotStarted(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(0, 1))
	fresh := robot.Run{Dir: grid.East, Inside: grid.North}
	// Robots are addressed through planted marker runs (scripted keys on
	// the first run ID); the keeper drops its marker and keeps only the
	// fresh ID-0 run.
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(7, 0): keep(fresh),
		grid.Pt(9, 0): MoveTo(grid.South), // drops onto the keeper
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 7, Dir: grid.East, Inside: grid.North}}})
	eng.SetState(grid.Pt(0, 1), robot.State{Runs: []robot.Run{{ID: 9, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Merges() != 1 {
		t.Fatalf("merges = %d, want 1", eng.Merges())
	}
	if got := eng.RunsStarted(); got != 0 {
		t.Errorf("fresh keep of a merged robot was counted as started: RunsStarted = %d", got)
	}
	if st := eng.StateAt(grid.Pt(0, 0)); st.HasRuns() {
		t.Errorf("merged cell retained the kept run: %v", st.Runs)
	}
}

// TestEngineFreshKeepSurvivesAndAdopts is the positive counterpart: a
// surviving keeper's fresh run is adopted — assigned a nonzero ID and
// counted — in the same round.
func TestEngineFreshKeepSurvivesAndAdopts(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0))
	fresh := robot.Run{Dir: grid.East, Inside: grid.North}
	alg := &scripted{radius: 5, actions: map[grid.Point]Action{
		grid.Pt(7, 0): keep(fresh),
	}}
	eng := New(s, alg, Config{})
	eng.SetState(grid.Pt(0, 0), robot.State{Runs: []robot.Run{{ID: 7, Dir: grid.East, Inside: grid.North}}})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if got := eng.RunsStarted(); got != 1 {
		t.Fatalf("RunsStarted = %d, want 1", got)
	}
	st := eng.StateAt(grid.Pt(0, 0))
	if len(st.Runs) != 1 || st.Runs[0].ID == 0 {
		t.Fatalf("kept run not adopted: %v", st.Runs)
	}
}
