// Differential oracle suite for the quiescence layer: an engine replaying
// cached quiescent actions for robots whose dirty-region tracking proves
// their views unchanged must be BIT-IDENTICAL — cells, slots, run states +
// IDs, logical clocks, counters, and the final Result — to an engine
// pinned to full recomputation (Config.FullRecompute), across the seeded
// workload corpus, every scheduler family, several worker counts, fault
// plans (crashes and sensor noise), and a mid-run snapshot/restore. The
// comparison is the engines' own canonical snapshot encoding, so any state
// the codec can see diverging fails the round it diverges.
package fsync_test

import (
	"bytes"
	"fmt"
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fault"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// qEngines builds two engines over the same swarm, scheduler spec, fault
// spec and worker count: one on the quiescence fast path, one pinned to
// full recomputation. Each engine gets its own freshly parsed scheduler
// and fault plan (both carry consumable RNG cursors).
func qEngines(t *testing.T, s *swarm.Swarm, spec, faults string, workers int) (quick, oracle *fsync.Engine, maxRounds int) {
	t.Helper()
	build := func(fullRecompute bool) *fsync.Engine {
		var alg fsync.Algorithm = core.Default()
		var sch sched.Scheduler
		if spec != "fsync" {
			alg = asyncseq.Algorithm{}
			var err error
			if sch, err = sched.Parse(spec, 42); err != nil {
				t.Fatal(err)
			}
		}
		var plan *fault.Plan
		if faults != "" {
			var err error
			if plan, err = fault.Parse(faults, 42); err != nil {
				t.Fatal(err)
			}
		}
		budget := fsync.DefaultBudget(s.Len())
		if sch != nil {
			budget = budget.Scale(sch.Fairness(s.Len()))
		}
		maxRounds = budget.MaxRounds
		return fsync.New(s, alg, fsync.Config{
			MaxRounds:         budget.MaxRounds,
			NoMergeLimit:      budget.NoMergeLimit,
			CheckConnectivity: true,
			Workers:           workers,
			Scheduler:         sch,
			Faults:            plan,
			FullRecompute:     fullRecompute,
		})
	}
	return build(false), build(true), maxRounds
}

// qStepBoth advances both engines one round and fails on any divergence:
// abort behaviour, full canonical state, or the gathered verdict. Returns
// true when the run is over (both gathered or both aborted identically).
func qStepBoth(t *testing.T, quick, oracle *fsync.Engine) bool {
	t.Helper()
	errQ, errO := quick.Step(), oracle.Step()
	if (errQ == nil) != (errO == nil) || (errQ != nil && errQ.Error() != errO.Error()) {
		t.Fatalf("round %d: abort diverged: quiescent %v, full-recompute %v",
			quick.Round(), errQ, errO)
	}
	if errQ != nil {
		return true
	}
	if !bytes.Equal(quick.AppendState(nil), oracle.AppendState(nil)) {
		t.Fatalf("round %d: canonical state diverged between quiescent and full-recompute engines",
			quick.Round())
	}
	if g, o := quick.Gathered(), oracle.Gathered(); g != o {
		t.Fatalf("round %d: gathered diverged: quiescent %v, full-recompute %v", quick.Round(), g, o)
	}
	return quick.Gathered()
}

// TestQuiescenceDifferential is the headline suite: seeded catalog ×
// scheduler families × worker counts, quiescent vs full-recompute engines
// in lockstep until both gather. It also asserts the fast path actually
// engaged (skips happened somewhere across the grid — a suite that never
// skips proves nothing).
func TestQuiescenceDifferential(t *testing.T) {
	const n = 56
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	totalSkipped := 0
	for _, w := range gen.SeededCatalog() {
		for _, spec := range specs {
			for _, workers := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", w.Name, spec, workers), func(t *testing.T) {
					s := w.Build(n, 42)
					quick, oracle, maxRounds := qEngines(t, s, spec, "", workers)
					for r := 0; r < maxRounds; r++ {
						if qStepBoth(t, quick, oracle) {
							break
						}
					}
					if !quick.Gathered() || !oracle.Gathered() {
						t.Fatalf("round budget exhausted: quiescent gathered=%v, full-recompute gathered=%v",
							quick.Gathered(), oracle.Gathered())
					}
					st := quick.QuiesceStats()
					if !st.Enabled {
						t.Fatal("quiescence never enabled on the fast-path engine")
					}
					if ost := oracle.QuiesceStats(); ost.Enabled || ost.Skipped != 0 {
						t.Fatalf("oracle engine ran the fast path: %+v", ost)
					}
					totalSkipped += st.Skipped
				})
			}
		}
	}
	if totalSkipped == 0 {
		t.Fatal("no activation was ever skipped across the whole grid — the fast path never engaged")
	}
}

// TestQuiescenceDifferentialFaults drives the fault axis: sensor noise
// (noise-flipped activations must always recompute and never poison the
// verdict cache) and crash-stop faults (a crash flips the failure detector
// with no occupancy change — the dirty marks must cover it), plus their
// combination, over scheduler families and worker counts.
func TestQuiescenceDifferentialFaults(t *testing.T) {
	const n = 56
	faults := []string{
		"noise:p=0.05",
		"crash:p=0.002",
		"crash-at:r=12,k=6+noise:p=0.03",
	}
	for _, fspec := range faults {
		for _, spec := range []string{"fsync", "ssync-rr:3", "async:8"} {
			for _, workers := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", fspec, spec, workers), func(t *testing.T) {
					s := gen.SeededCatalog()[0].Build(n, 42)
					quick, oracle, maxRounds := qEngines(t, s, spec, fspec, workers)
					for r := 0; r < maxRounds; r++ {
						if qStepBoth(t, quick, oracle) {
							break
						}
					}
					if g, o := quick.Gathered(), oracle.Gathered(); g != o {
						t.Fatalf("gather diverged: quiescent %v, full-recompute %v", g, o)
					}
				})
			}
		}
	}
}

// TestQuiescenceSnapshotRestore cuts a quiescent run mid-flight, snapshots
// it, and restores the snapshot twice — once per recompute mode. All three
// engines must stay in lockstep to the end: the verdict masks are not
// snapshot state, so a restored engine must converge bit-identically from
// a cold cache.
func TestQuiescenceSnapshotRestore(t *testing.T) {
	s := gen.SeededCatalog()[0].Build(56, 42)
	quick, _, maxRounds := qEngines(t, s, "fsync", "", 4)
	for r := 0; r < 40 && !quick.Gathered(); r++ {
		if err := quick.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := quick.AppendState(nil)

	restore := func(fullRecompute bool) *fsync.Engine {
		t.Helper()
		eng, rest, err := fsync.NewRestored(core.Default(), fsync.Config{
			MaxRounds:         maxRounds,
			CheckConnectivity: true,
			Workers:           4,
			FullRecompute:     fullRecompute,
		}, snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d bytes left after restore", len(rest))
		}
		return eng
	}
	rQuick, rFull := restore(false), restore(true)
	for r := 0; r < maxRounds && !quick.Gathered(); r++ {
		if qStepBoth(t, quick, rFull) {
			break
		}
		if err := rQuick.Step(); err != nil {
			t.Fatalf("restored quiescent engine aborted: %v", err)
		}
		if !bytes.Equal(quick.AppendState(nil), rQuick.AppendState(nil)) {
			t.Fatalf("round %d: restored quiescent engine diverged from the original", quick.Round())
		}
	}
	if !quick.Gathered() || !rQuick.Gathered() || !rFull.Gathered() {
		t.Fatalf("gather diverged: original=%v restored-quiescent=%v restored-full=%v",
			quick.Gathered(), rQuick.Gathered(), rFull.Gathered())
	}
}

// TestQuiescenceScaffoldingReset covers the conservative invalidation on
// out-of-protocol edits: SetRound and SetState drop every cached verdict,
// so an engine mutated mid-run by test scaffolding still matches a
// full-recompute engine mutated identically.
func TestQuiescenceScaffoldingReset(t *testing.T) {
	s := gen.SeededCatalog()[0].Build(120, 42)
	quick, oracle, maxRounds := qEngines(t, s, "fsync", "", 4)
	for r := 0; r < 10; r++ {
		if qStepBoth(t, quick, oracle) {
			t.Fatal("run ended before the scaffolding edit")
		}
	}
	// Jump both engines to a round phase their caches never saw.
	quick.SetRound(quick.Round() + 7)
	oracle.SetRound(oracle.Round() + 7)
	for r := 0; r < maxRounds; r++ {
		if qStepBoth(t, quick, oracle) {
			break
		}
	}
	if !quick.Gathered() || !oracle.Gathered() {
		t.Fatalf("round budget exhausted: quiescent gathered=%v, full-recompute gathered=%v",
			quick.Gathered(), oracle.Gathered())
	}
}

// FuzzQuiescenceDifferential fuzzes the workload/scheduler/fault/worker
// axes jointly: whatever combination the bytes pick, the quiescent and
// full-recompute engines must agree round by round on the canonical state
// encoding for a bounded prefix of the run.
func FuzzQuiescenceDifferential(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(1), uint8(40), uint16(42))
	f.Add(uint8(3), uint8(2), uint8(4), uint8(60), uint16(7))
	f.Add(uint8(5), uint8(4), uint8(16), uint8(80), uint16(99))
	f.Add(uint8(1), uint8(1), uint8(3), uint8(50), uint16(1000))
	catalog := gen.SeededCatalog()
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	faults := []string{"", "", "noise:p=0.05", "crash:p=0.004", "crash-at:r=9,k=4+noise:p=0.02"}
	f.Fuzz(func(t *testing.T, wi, si, workers, rounds uint8, seed uint16) {
		w := catalog[int(wi)%len(catalog)]
		spec := specs[int(si)%len(specs)]
		fspec := faults[int(seed)%len(faults)]
		wk := 1 + int(workers)%16
		s := w.Build(48, int64(seed))
		quick, oracle, maxRounds := qEngines(t, s, spec, fspec, wk)
		budget := int(rounds)
		if budget > maxRounds {
			budget = maxRounds
		}
		for r := 0; r < budget; r++ {
			if qStepBoth(t, quick, oracle) {
				break
			}
		}
	})
}
