// Seam-pass coverage for the chunk-owned parallel pipeline: a crafted
// single-round scenario placing every conflict-prone interaction exactly
// across the x=64 chunk border — a simultaneous merge onto a border cell,
// transfer sender/receiver pairs straddling the border (one surviving, one
// whose sender merges), and a merged robot's brand-new kept run — and
// asserting both the exact Table-1 outcomes and bit-identical state at
// workers 1 vs 16, on the nil-scheduler path and the explicit-scheduler
// path alike. Every target cell here is within L∞ 1 of the chunk border,
// so the parallel engines resolve the whole drama in the serial seam lane
// while the filler robots (spread over four other chunks, including
// negative chunk coordinates) keep the worker lanes busy.
package fsync

import (
	"fmt"
	"testing"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// seamIdentity returns a valid planted run used purely to let the scripted
// algorithm identify a robot (the engine assigns its ID at plant time).
func seamIdentity() robot.Run {
	return robot.Run{Dir: grid.East, Inside: grid.North}
}

// seamScenario builds the border scenario. The returned engine has
// identity runs planted in deterministic order (IDs 1..n in plant order),
// so the scripted action table keys line up for every engine built from
// it.
func seamScenario(t *testing.T, workers int, scheduled bool) *Engine {
	t.Helper()
	// Cast, all adjacent to the border between chunk x-range [0,63] and
	// [64,127]. Plant order = action IDs 1..10.
	var (
		mergeA   = grid.Pt(63, 10) // moves east: merges with mergeB ON the border cell (64,10)
		mergeB   = grid.Pt(65, 10) // moves west
		sender   = grid.Pt(63, 12) // stays, hands its identity run east across the border
		receiver = grid.Pt(64, 12) // stays, keeps its identity, receives the hand-off
		keeper   = grid.Pt(63, 16) // stays, keeps identity + a brand-new run; merged onto from across the border
		attacker = grid.Pt(64, 16) // moves west onto keeper
		deadTx   = grid.Pt(64, 18) // stays, hands a brand-new run west — but is merged onto, so the hand-off dies
		deadAtk  = grid.Pt(65, 18) // moves west onto deadTx
		victim   = grid.Pt(63, 18) // stays, keeps its identity; must NOT receive deadTx's hand-off
		freshTx  = grid.Pt(64, 20) // stays, hands a brand-new run west across the border; survives
	)
	cast := []grid.Point{mergeA, mergeB, sender, receiver, keeper, attacker, deadTx, deadAtk, victim, freshTx}
	// freshRx at (63,20) receives freshTx's run; it needs no identity (its
	// scripted action is the default Stay). Fillers spread the rest of the
	// population over four more chunks — including negative chunk
	// coordinates — so the parallel engines' worker lanes all have interior
	// work while the seam lane resolves the conflicts.
	freshRx := grid.Pt(63, 20)
	fillers := []grid.Point{
		freshRx,
		grid.Pt(20, 5), grid.Pt(21, 5), grid.Pt(100, 5), grid.Pt(101, 5),
		grid.Pt(30, 70), grid.Pt(-10, 6), grid.Pt(-70, 6), grid.Pt(90, 70),
	}
	s := swarm.New()
	for _, p := range append(append([]grid.Point{}, cast...), fillers...) {
		s.Add(p)
	}

	fresh := func() robot.Run { return robot.Run{Dir: grid.North, Inside: grid.East} } // ID 0: brand-new
	withKeep := func(move grid.Point, runs ...robot.Run) Action {
		a := Action{Move: move}
		for _, r := range runs {
			a.AddKeep(r)
		}
		return a
	}

	cfg := Config{MaxRounds: 4, StrictViews: true, Workers: workers}
	if scheduled {
		cfg.Scheduler = sched.FSYNC()
	}
	alg := &scripted{radius: 1, actions: map[grid.Point]Action{}}
	eng := New(s, alg, cfg)
	// Plant identities in cast order: robot i gets run ID i+1.
	ids := make(map[grid.Point]robot.Run, len(cast))
	for _, p := range cast {
		eng.SetState(p, robot.State{Runs: []robot.Run{seamIdentity()}})
		ids[p] = eng.StateAt(p).Runs[0]
	}
	key := func(p grid.Point) grid.Point { return grid.Pt(ids[p].ID, 0) }

	alg.actions[key(mergeA)] = MoveTo(grid.East)
	alg.actions[key(mergeB)] = MoveTo(grid.West)
	alg.actions[key(sender)] = xfer(grid.Zero, Transfer{To: grid.East, Run: ids[sender]})
	alg.actions[key(receiver)] = withKeep(grid.Zero, ids[receiver])
	alg.actions[key(keeper)] = withKeep(grid.Zero, ids[keeper], fresh())
	alg.actions[key(attacker)] = MoveTo(grid.West)
	alg.actions[key(deadTx)] = xfer(grid.Zero, Transfer{To: grid.West, Run: fresh()})
	alg.actions[key(deadAtk)] = MoveTo(grid.West)
	alg.actions[key(victim)] = withKeep(grid.Zero, ids[victim])
	aTx := withKeep(grid.Zero, ids[freshTx])
	aTx.AddTransfer(grid.West, fresh())
	alg.actions[key(freshTx)] = aTx
	return eng
}

// seamCompare fails on any observable state difference between the two
// engines (the workers=1 reference and a parallel candidate).
func seamCompare(t *testing.T, ref, cand *Engine) {
	t.Helper()
	rc, cc := ref.World().Cells(), cand.World().Cells()
	if len(rc) != len(cc) {
		t.Fatalf("population diverged: %d vs %d", len(rc), len(cc))
	}
	rs, cs := ref.World().Slots(), cand.World().Slots()
	for i := range rc {
		if rc[i] != cc[i] || rs[i] != cs[i] {
			t.Fatalf("cell/slot order diverged at %d: %v/%d vs %v/%d", i, rc[i], rs[i], cc[i], cs[i])
		}
		sa, sb := ref.StateAt(rc[i]), cand.StateAt(rc[i])
		if len(sa.Runs) != len(sb.Runs) {
			t.Fatalf("run count at %v diverged: %d vs %d", rc[i], len(sa.Runs), len(sb.Runs))
		}
		for j := range sa.Runs {
			if sa.Runs[j] != sb.Runs[j] {
				t.Fatalf("run at %v diverged: %v vs %v", rc[i], sa.Runs[j], sb.Runs[j])
			}
		}
		if la, lb := ref.LocalRound(rc[i]), cand.LocalRound(rc[i]); la != lb {
			t.Fatalf("clock at %v diverged: %d vs %d", rc[i], la, lb)
		}
	}
	if ref.Merges() != cand.Merges() || ref.RunsStarted() != cand.RunsStarted() {
		t.Fatalf("counters diverged: merges %d/%d runs %d/%d",
			ref.Merges(), cand.Merges(), ref.RunsStarted(), cand.RunsStarted())
	}
}

// TestSeamPassConflicts steps the border scenario once and asserts both
// the exact semantics and workers-1-vs-16 identity, on both scheduler
// paths.
func TestSeamPassConflicts(t *testing.T) {
	for _, scheduled := range []bool{false, true} {
		t.Run(fmt.Sprintf("scheduled=%v", scheduled), func(t *testing.T) {
			ref := seamScenario(t, 1, scheduled)
			cand := seamScenario(t, 16, scheduled)
			popBefore := ref.World().Len()
			if err := ref.Step(); err != nil {
				t.Fatalf("serial step: %v", err)
			}
			if err := cand.Step(); err != nil {
				t.Fatalf("parallel step: %v", err)
			}
			seamCompare(t, ref, cand)

			for _, eng := range []*Engine{ref, cand} {
				w := eng.World()
				// Three merges: A+B on the border, attacker onto keeper,
				// deadAtk onto deadTx.
				if got := popBefore - w.Len(); got != 3 {
					t.Fatalf("removed %d robots, want 3", got)
				}
				if eng.Merges() != 3 {
					t.Fatalf("Merges = %d, want 3", eng.Merges())
				}
				// The border-cell merge leaves one runless robot at (64,10).
				if st := eng.StateAt(grid.Pt(64, 10)); !w.Has(grid.Pt(64, 10)) || st.HasRuns() {
					t.Fatalf("border merge cell: occupied=%v runs=%v", w.Has(grid.Pt(64, 10)), st.Runs)
				}
				// The cross-border hand-off delivered: receiver holds its own
				// identity plus the sender's run, in that order; the sender
				// survives runless.
				if st := eng.StateAt(grid.Pt(64, 12)); len(st.Runs) != 2 {
					t.Fatalf("receiver runs = %v, want identity + transferred", st.Runs)
				}
				if st := eng.StateAt(grid.Pt(63, 12)); st.HasRuns() {
					t.Fatalf("sender kept runs %v, want none", st.Runs)
				}
				// The merged keeper's state (identity AND the brand-new kept
				// run) died with the merge.
				if st := eng.StateAt(grid.Pt(63, 16)); !w.Has(grid.Pt(63, 16)) || st.HasRuns() {
					t.Fatalf("merged keeper cell: occupied=%v runs=%v", w.Has(grid.Pt(63, 16)), st.Runs)
				}
				// The merged sender's hand-off died: the victim holds only its
				// identity.
				if st := eng.StateAt(grid.Pt(63, 18)); len(st.Runs) != 1 {
					t.Fatalf("victim runs = %v, want only its identity", st.Runs)
				}
				// The surviving fresh hand-off was adopted and delivered:
				// exactly one run started engine-wide (the keeper's fresh keep
				// and the dead sender's fresh hand-off were interrupted).
				if eng.RunsStarted() != 1 {
					t.Fatalf("RunsStarted = %d, want 1", eng.RunsStarted())
				}
				if st := eng.StateAt(grid.Pt(63, 20)); len(st.Runs) != 1 || st.Runs[0].ID == 0 {
					t.Fatalf("fresh receiver runs = %v, want one adopted run", st.Runs)
				}
			}
		})
	}
}
