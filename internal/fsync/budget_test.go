package fsync

import (
	"math"
	"testing"
)

func TestDefaultBudget(t *testing.T) {
	b := DefaultBudget(100)
	if b.MaxRounds != 9000 || b.NoMergeLimit != 4500 {
		t.Errorf("DefaultBudget(100) = %+v", b)
	}
}

func TestBudgetScale(t *testing.T) {
	b := Budget{MaxRounds: 100, NoMergeLimit: 50}
	if got := b.Scale(1); got != b {
		t.Errorf("Scale(1) = %+v, want identity", got)
	}
	if got := b.Scale(3); got.MaxRounds != 300 || got.NoMergeLimit != 150 {
		t.Errorf("Scale(3) = %+v", got)
	}
	// Unlimited/disabled entries stay that way.
	if got := (Budget{}).Scale(5); got.MaxRounds != 0 || got.NoMergeLimit != 0 {
		t.Errorf("zero budget scaled to %+v", got)
	}
}

// TestBudgetScaleSaturates: ASYNC fairness bounds are ≈ n, so the product
// can exceed the platform int range; an overflowed (negative) limit would
// silently mean "unlimited"/"watchdog off". The scale must saturate
// instead.
func TestBudgetScaleSaturates(t *testing.T) {
	b := Budget{MaxRounds: math.MaxInt / 2, NoMergeLimit: math.MaxInt / 2}
	got := b.Scale(4)
	if got.MaxRounds != math.MaxInt || got.NoMergeLimit != math.MaxInt {
		t.Errorf("Scale did not saturate: %+v", got)
	}
	if got.MaxRounds < 0 || got.NoMergeLimit < 0 {
		t.Errorf("Scale overflowed negative: %+v", got)
	}
}

func TestBudgetWithOverrides(t *testing.T) {
	b := Budget{MaxRounds: 100, NoMergeLimit: 50}
	if got := b.WithOverrides(0, 0); got != b {
		t.Errorf("zero overrides changed budget: %+v", got)
	}
	if got := b.WithOverrides(7, 3); got.MaxRounds != 7 || got.NoMergeLimit != 3 {
		t.Errorf("positive overrides: %+v", got)
	}
	if got := b.WithOverrides(0, -1); got.MaxRounds != 100 || got.NoMergeLimit != 0 {
		t.Errorf("negative NoMergeLimit must disable the watchdog: %+v", got)
	}
}
