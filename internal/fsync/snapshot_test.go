package fsync_test

import (
	"bytes"
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/sched"
)

// engineFor builds an engine over a hollow ring under the given spec (the
// paper's algorithm for fsync, greedy otherwise — see
// TestPaperAlgorithmRequiresFSYNC) with the canonical budget.
func engineFor(t *testing.T, spec string, workers int) *fsync.Engine {
	t.Helper()
	s := gen.Hollow(11, 11)
	var alg fsync.Algorithm = core.Default()
	var sch sched.Scheduler
	if spec != "fsync" {
		alg = asyncseq.Algorithm{}
		var err error
		if sch, err = sched.Parse(spec, 42); err != nil {
			t.Fatal(err)
		}
	}
	budget := fsync.DefaultBudget(s.Len())
	if sch != nil {
		budget = budget.Scale(sch.Fairness(s.Len()))
	}
	return fsync.New(s, alg, fsync.Config{
		MaxRounds:    budget.MaxRounds,
		NoMergeLimit: budget.NoMergeLimit,
		StrictViews:  true,
		Workers:      workers,
		Scheduler:    sch,
	})
}

// TestEngineSnapshotResumes checkpoints an engine mid-run, restores it into
// a fresh engine (same spec, fresh scheduler instance) and steps both to
// completion in lockstep, comparing full state each round.
func TestEngineSnapshotResumes(t *testing.T) {
	for _, spec := range []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"} {
		t.Run(spec, func(t *testing.T) {
			orig := engineFor(t, spec, 1)
			for r := 0; r < 7 && !orig.Gathered(); r++ {
				if err := orig.Step(); err != nil {
					t.Fatal(err)
				}
			}
			state := orig.AppendState(nil)

			// The snapshot is deterministic and taking it does not perturb
			// the engine.
			if again := orig.AppendState(nil); !bytes.Equal(state, again) {
				t.Fatal("snapshot bytes not deterministic")
			}

			// Restore into a fresh scheduler instance and a different
			// worker count: neither may influence the resumed rounds.
			restored, rest, err := fsync.NewRestored(algOf(spec), configOf(t, spec, 4), state)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d trailing bytes after restore", len(rest))
			}
			compareEngines(t, orig, restored)
			for r := 0; r < 100000 && !orig.Gathered(); r++ {
				if err := orig.Step(); err != nil {
					t.Fatalf("orig step: %v", err)
				}
				if err := restored.Step(); err != nil {
					t.Fatalf("restored step: %v", err)
				}
				compareEngines(t, orig, restored)
			}
			if !restored.Gathered() {
				t.Fatal("restored engine did not gather")
			}
		})
	}
}

// algOf/configOf rebuild the construction inputs NewRestored needs,
// mirroring engineFor.
func algOf(spec string) fsync.Algorithm {
	if spec == "fsync" {
		return core.Default()
	}
	return asyncseq.Algorithm{}
}

func configOf(t *testing.T, spec string, workers int) fsync.Config {
	t.Helper()
	var sch sched.Scheduler
	if spec != "fsync" {
		var err error
		if sch, err = sched.Parse(spec, 42); err != nil {
			t.Fatal(err)
		}
	}
	s := gen.Hollow(11, 11)
	budget := fsync.DefaultBudget(s.Len())
	if sch != nil {
		budget = budget.Scale(sch.Fairness(s.Len()))
	}
	return fsync.Config{
		MaxRounds:    budget.MaxRounds,
		NoMergeLimit: budget.NoMergeLimit,
		StrictViews:  true,
		Workers:      workers,
		Scheduler:    sch,
	}
}

func TestNewRestoredRejectsGarbage(t *testing.T) {
	if _, _, err := fsync.NewRestored(core.Default(), fsync.Config{}, nil); err == nil {
		t.Error("expected error for empty snapshot")
	}
	e := engineFor(t, "fsync", 1)
	state := e.AppendState(nil)
	for _, cut := range []int{1, len(state) / 2, len(state) - 1} {
		if _, _, err := fsync.NewRestored(core.Default(), fsync.Config{}, state[:cut]); err == nil {
			t.Errorf("cut at %d: expected error", cut)
		}
	}
	// A scheduler-run snapshot cannot restore into a schedulerless config
	// (clock planes mismatch) and vice versa.
	es := engineFor(t, "async:8", 1)
	if _, _, err := fsync.NewRestored(core.Default(), fsync.Config{}, es.AppendState(nil)); err == nil {
		t.Error("expected clock mismatch error")
	}
	if _, _, err := fsync.NewRestored(core.Default(), configOf(t, "async:8", 1), state); err == nil {
		t.Error("expected clock mismatch error (other direction)")
	}
}
