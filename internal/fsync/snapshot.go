package fsync

// This file is the engine checkpoint codec: the full resumable state of a
// simulation between rounds is the engine's counters, the dense world, and
// the scheduler's cursor. Everything else in the Engine struct is per-round
// scratch that every Step rebuilds, so it is not state and is not encoded —
// which keeps the encoding deterministic (equal engine states produce equal
// bytes) and the restored engine bit-identical to the original on every
// future round, for any worker count (the differential tests prove worker
// count never influences outcomes).

import (
	"fmt"

	"gridgather/internal/codec"
	"gridgather/internal/sched"
	"gridgather/internal/world"
)

// AppendState appends the engine's complete resumable state. Call it only
// between rounds (i.e. never from inside a Step). The configuration
// (algorithm, scheduler construction, budgets, worker count) is NOT
// encoded — the caller must restore into an engine built with an
// equivalent Config via NewRestored.
func (e *Engine) AppendState(b []byte) []byte {
	b = codec.AppendUvarint(b, uint64(e.round))
	b = codec.AppendUvarint(b, uint64(e.merges))
	b = codec.AppendUvarint(b, uint64(e.moves))
	b = codec.AppendUvarint(b, uint64(e.runsStart))
	b = codec.AppendUvarint(b, uint64(e.nextRunID))
	b = codec.AppendUvarint(b, uint64(e.lastMerge))
	b = codec.AppendUvarint(b, uint64(e.roundMerge))
	b = e.w.AppendState(b)
	if e.cfg.Scheduler != nil {
		// Parse-built schedulers all implement CursorCodec; a custom one
		// that does not simply has no cursor to carry.
		if cc, ok := e.cfg.Scheduler.(sched.CursorCodec); ok {
			b = cc.AppendCursor(b)
		}
	}
	if e.cfg.Faults != nil {
		b = e.appendFaultState(b)
	}
	return b
}

// appendFaultState encodes the fault layer: crash counters, the
// degradation latch, the crashed-live slot set (in canonical cell order,
// so equal states yield equal bytes), and the plan's RNG cursor. Gated on
// Config.Faults, so fault-free snapshots are byte-identical to pre-fault
// ones.
func (e *Engine) appendFaultState(b []byte) []byte {
	b = codec.AppendUvarint(b, uint64(e.crashesTotal))
	b = codec.AppendUvarint(b, uint64(e.roundCrash))
	b = codec.AppendBool(b, e.degraded)
	b = codec.AppendUvarint(b, uint64(e.degradedRound))
	b = codec.AppendUvarint(b, uint64(e.crashedLive))
	if e.crashTrack {
		slots := e.w.Slots()
		for i := range e.w.Cells() {
			if e.crashed[slots[i]] {
				b = codec.AppendUvarint(b, uint64(slots[i]))
			}
		}
	}
	return e.cfg.Faults.AppendCursor(b)
}

// restoreFaultState decodes appendFaultState into an engine whose
// initFaults already ran, restoring the plan's cursor in place.
func (e *Engine) restoreFaultState(b []byte) ([]byte, error) {
	r := codec.NewReader(b)
	e.crashesTotal = int(r.Uvarint())
	e.roundCrash = int(r.Uvarint())
	e.degraded = r.Bool()
	e.degradedRound = int(r.Uvarint())
	cnt := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if cnt > uint64(r.Len()) {
		// Corruption guard: each crashed slot costs ≥ 1 byte, so a count
		// beyond the remaining bytes cannot be honest.
		return nil, fmt.Errorf("fsync: snapshot claims %d crashed robots with %d bytes left", cnt, r.Len())
	}
	e.crashedLive = int(cnt)
	if e.crashTrack {
		for i := uint64(0); i < cnt; i++ {
			slot := r.Uvarint()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if slot >= uint64(len(e.crashed)) {
				return nil, fmt.Errorf("fsync: snapshot crashed slot %d out of range (have %d slots)", slot, len(e.crashed))
			}
			e.crashed[slot] = true
		}
	} else if cnt != 0 {
		return nil, fmt.Errorf("fsync: snapshot carries %d crashed robots for a plan without crash clauses", cnt)
	}
	return e.cfg.Faults.RestoreCursor(r.Rest())
}

// NewRestored builds an engine whose state is decoded from a snapshot
// written by AppendState, returning the unread remainder of b. cfg and alg
// must be equivalent to the snapshotted engine's (same algorithm and
// parameters, a scheduler freshly built from the same spec and seed);
// worker count and hooks may differ freely. The scheduler's cursor is
// restored into cfg.Scheduler in place.
func NewRestored(alg Algorithm, cfg Config, b []byte) (*Engine, []byte, error) {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	if cfg.MaxRounds < 0 {
		cfg.MaxRounds = 0
	}
	e := &Engine{cfg: cfg, alg: alg}
	r := codec.NewReader(b)
	e.round = int(r.Uvarint())
	e.merges = int(r.Uvarint())
	e.moves = int(r.Uvarint())
	e.runsStart = int(r.Uvarint())
	e.nextRunID = int(r.Uvarint())
	e.lastMerge = int(r.Uvarint())
	e.roundMerge = int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if e.nextRunID < 1 {
		return nil, nil, fmt.Errorf("fsync: snapshot run-ID counter %d (must be ≥ 1)", e.nextRunID)
	}
	w, rest, err := world.DecodeDense(r.Rest(), cfg.Scheduler != nil)
	if err != nil {
		return nil, nil, err
	}
	w.ForceFullBFS(cfg.FullBFSConnectivity)
	e.w = w
	if cfg.Scheduler != nil {
		cc, ok := cfg.Scheduler.(sched.CursorCodec)
		if !ok {
			return nil, nil, fmt.Errorf("fsync: scheduler %v cannot restore a cursor", cfg.Scheduler)
		}
		if rest, err = cc.RestoreCursor(rest); err != nil {
			return nil, nil, err
		}
	}
	if cfg.Faults != nil {
		e.initFaults()
		if rest, err = e.restoreFaultState(rest); err != nil {
			return nil, nil, err
		}
	}
	// Quiescence carries no snapshot state: a restored engine starts with
	// empty verdict masks and recomputes everything until they refill.
	e.initQuiesce()
	return e, rest, nil
}
