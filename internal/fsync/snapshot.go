package fsync

// This file is the engine checkpoint codec: the full resumable state of a
// simulation between rounds is the engine's counters, the dense world, and
// the scheduler's cursor. Everything else in the Engine struct is per-round
// scratch that every Step rebuilds, so it is not state and is not encoded —
// which keeps the encoding deterministic (equal engine states produce equal
// bytes) and the restored engine bit-identical to the original on every
// future round, for any worker count (the differential tests prove worker
// count never influences outcomes).

import (
	"fmt"

	"gridgather/internal/codec"
	"gridgather/internal/sched"
	"gridgather/internal/world"
)

// AppendState appends the engine's complete resumable state. Call it only
// between rounds (i.e. never from inside a Step). The configuration
// (algorithm, scheduler construction, budgets, worker count) is NOT
// encoded — the caller must restore into an engine built with an
// equivalent Config via NewRestored.
func (e *Engine) AppendState(b []byte) []byte {
	b = codec.AppendUvarint(b, uint64(e.round))
	b = codec.AppendUvarint(b, uint64(e.merges))
	b = codec.AppendUvarint(b, uint64(e.moves))
	b = codec.AppendUvarint(b, uint64(e.runsStart))
	b = codec.AppendUvarint(b, uint64(e.nextRunID))
	b = codec.AppendUvarint(b, uint64(e.lastMerge))
	b = codec.AppendUvarint(b, uint64(e.roundMerge))
	b = e.w.AppendState(b)
	if e.cfg.Scheduler != nil {
		// Parse-built schedulers all implement CursorCodec; a custom one
		// that does not simply has no cursor to carry.
		if cc, ok := e.cfg.Scheduler.(sched.CursorCodec); ok {
			b = cc.AppendCursor(b)
		}
	}
	return b
}

// NewRestored builds an engine whose state is decoded from a snapshot
// written by AppendState, returning the unread remainder of b. cfg and alg
// must be equivalent to the snapshotted engine's (same algorithm and
// parameters, a scheduler freshly built from the same spec and seed);
// worker count and hooks may differ freely. The scheduler's cursor is
// restored into cfg.Scheduler in place.
func NewRestored(alg Algorithm, cfg Config, b []byte) (*Engine, []byte, error) {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	if cfg.MaxRounds < 0 {
		cfg.MaxRounds = 0
	}
	e := &Engine{cfg: cfg, alg: alg}
	r := codec.NewReader(b)
	e.round = int(r.Uvarint())
	e.merges = int(r.Uvarint())
	e.moves = int(r.Uvarint())
	e.runsStart = int(r.Uvarint())
	e.nextRunID = int(r.Uvarint())
	e.lastMerge = int(r.Uvarint())
	e.roundMerge = int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if e.nextRunID < 1 {
		return nil, nil, fmt.Errorf("fsync: snapshot run-ID counter %d (must be ≥ 1)", e.nextRunID)
	}
	w, rest, err := world.DecodeDense(r.Rest(), cfg.Scheduler != nil)
	if err != nil {
		return nil, nil, err
	}
	w.ForceFullBFS(cfg.FullBFSConnectivity)
	e.w = w
	if cfg.Scheduler != nil {
		cc, ok := cfg.Scheduler.(sched.CursorCodec)
		if !ok {
			return nil, nil, fmt.Errorf("fsync: scheduler %v cannot restore a cursor", cfg.Scheduler)
		}
		if rest, err = cc.RestoreCursor(rest); err != nil {
			return nil, nil, err
		}
	}
	return e, rest, nil
}
