package fsync

import (
	"fmt"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
)

// Action is the result of one robot's compute step: the move it performs and
// the disposition of its run states. All coordinates are relative to the
// robot's position at the start of the round.
//
// Kept and transferred runs are stored inline (a robot holds at most
// robot.MaxRuns run states, so both lists are bounded by that constant);
// building an Action therefore never allocates, which keeps the engine's
// per-round cost flat even when every runner hands its state along the
// boundary every round.
type Action struct {
	// Move is the relative cell the robot hops to this round. grid.Zero
	// means stay. Must satisfy L∞ ≤ 1 (a robot "can move to one of its
	// eight neighboring grid cells").
	Move grid.Point

	keep       [robot.MaxRuns]robot.Run
	nKeep      int8
	transfers  [robot.MaxRuns]Transfer
	nTransfers int8
}

// Transfer hands a run state to the robot located at the relative cell To
// (position before this round's moves), implementing "move runstate" of
// §3.2. If no robot occupies the target after the round — because the
// target hopped away or merged — the run terminates (Table 1, conditions
// 3–5: the operation was interrupted).
type Transfer struct {
	To  grid.Point
	Run robot.Run
}

// AddKeep records a run state the robot retains (at its new position).
// A robot stores at most robot.MaxRuns runs; keeping more is an algorithm
// bug and panics.
func (a *Action) AddKeep(r robot.Run) {
	if int(a.nKeep) >= robot.MaxRuns {
		panic(fmt.Sprintf("fsync: action keeps more than robot.MaxRuns=%d runs", robot.MaxRuns))
	}
	a.keep[a.nKeep] = r
	a.nKeep++
}

// AddTransfer records a run state handed to the robot at the relative cell
// to. Any held run that is neither kept nor transferred terminates
// (Table 1). A robot holds at most robot.MaxRuns runs, so handing off more
// is an algorithm bug and panics.
func (a *Action) AddTransfer(to grid.Point, r robot.Run) {
	if int(a.nTransfers) >= robot.MaxRuns {
		panic(fmt.Sprintf("fsync: action transfers more than robot.MaxRuns=%d runs", robot.MaxRuns))
	}
	a.transfers[a.nTransfers] = Transfer{To: to, Run: r}
	a.nTransfers++
}

// Keep returns the retained run states (read-only view of the inline
// storage).
func (a *Action) Keep() []robot.Run { return a.keep[:a.nKeep] }

// Transfers returns the recorded hand-offs (read-only view of the inline
// storage).
func (a *Action) Transfers() []Transfer { return a.transfers[:a.nTransfers] }

// quiescent reports whether the action is exactly the do-nothing Stay: no
// move, nothing kept, nothing transferred. The quiescence layer caches
// only these verdicts — any other action changes world state, so its
// robot must recompute every round regardless.
func (a *Action) quiescent() bool {
	return a.Move == (grid.Point{}) && a.nKeep == 0 && a.nTransfers == 0
}

// Stay is the do-nothing action.
var Stay = Action{}

// MoveTo returns an action that only moves.
func MoveTo(d grid.Point) Action { return Action{Move: d} }
