package fsync

import (
	"gridgather/internal/grid"
	"gridgather/internal/robot"
)

// Action is the result of one robot's compute step: the move it performs and
// the disposition of its run states. All coordinates are relative to the
// robot's position at the start of the round.
type Action struct {
	// Move is the relative cell the robot hops to this round. grid.Zero
	// means stay. Must satisfy L∞ ≤ 1 (a robot "can move to one of its
	// eight neighboring grid cells").
	Move grid.Point
	// Keep lists run states the robot retains (at its new position).
	Keep []robot.Run
	// Transfers lists run states handed to boundary neighbors. Any held run
	// that is neither kept nor transferred terminates (Table 1).
	Transfers []Transfer
}

// Transfer hands a run state to the robot located at the relative cell To
// (position before this round's moves), implementing "move runstate" of
// §3.2. If no robot occupies the target after the round — because the
// target hopped away or merged — the run terminates (Table 1, conditions
// 3–5: the operation was interrupted).
type Transfer struct {
	To  grid.Point
	Run robot.Run
}

// Stay is the do-nothing action.
var Stay = Action{}

// MoveTo returns an action that only moves.
func MoveTo(d grid.Point) Action { return Action{Move: d} }
