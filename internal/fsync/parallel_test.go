// Determinism regression tests for the parallel compute phase: the engine
// promises bit-identical outcomes for every worker count, because all
// actions are computed from the same immutable pre-round snapshot and
// combined in deterministic cell order. The tests live in an external test
// package so they can drive the real algorithm (internal/core imports
// fsync, so the internal test package cannot).
package fsync_test

import (
	"fmt"
	"testing"

	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// runWithWorkers gathers the swarm with the given worker count and returns
// the result plus the final cell set.
func runWithWorkers(t *testing.T, s *swarm.Swarm, workers int) (fsync.Result, []grid.Point) {
	t.Helper()
	eng := fsync.New(s, core.Default(), fsync.Config{
		MaxRounds:         fsync.DefaultBudget(s.Len()).MaxRounds,
		CheckConnectivity: true,
		Workers:           workers,
	})
	res := eng.Run()
	return res, eng.Swarm().Cells()
}

// TestParallelDeterminism runs the same workloads serially and with an
// oversubscribed worker pool and requires identical Results and identical
// final cell sets. With -race this also proves the pool is data-race-free.
func TestParallelDeterminism(t *testing.T) {
	workloads := []struct {
		name  string
		build func() *swarm.Swarm
	}{
		{"line", func() *swarm.Swarm { return gen.Line(80) }},
		{"hollow", func() *swarm.Swarm { return gen.Hollow(21, 21) }},
		{"staircase", func() *swarm.Swarm { return gen.Staircase(90, 1) }},
		{"blob", func() *swarm.Swarm { return gen.RandomBlob(120, 42) }},
		{"tree", func() *swarm.Swarm { return gen.RandomTree(100, 7) }},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			serialRes, serialCells := runWithWorkers(t, w.build(), 1)
			if serialRes.Err != nil || !serialRes.Gathered {
				t.Fatalf("serial run failed: %+v", serialRes)
			}
			for _, workers := range []int{2, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					parRes, parCells := runWithWorkers(t, w.build(), workers)
					if parRes != serialRes {
						t.Errorf("result diverged:\n workers=1: %+v\n workers=%d: %+v",
							serialRes, workers, parRes)
					}
					if len(parCells) != len(serialCells) {
						t.Fatalf("final cell count diverged: %d vs %d",
							len(serialCells), len(parCells))
					}
					for i := range serialCells {
						if parCells[i] != serialCells[i] {
							t.Fatalf("final cells diverged at %d: %v vs %v",
								i, serialCells[i], parCells[i])
						}
					}
				})
			}
		})
	}
}

// TestParallelRoundByRound locks the equivalence down to every intermediate
// round, not just the end state: two engines stepped in lockstep with
// different worker counts must agree on the full occupancy after each
// round.
func TestParallelRoundByRound(t *testing.T) {
	build := func() *swarm.Swarm { return gen.Hollow(15, 15) }
	a := fsync.New(build(), core.Default(), fsync.Config{Workers: 1})
	b := fsync.New(build(), core.Default(), fsync.Config{Workers: 8})
	for r := 0; r < 400 && !a.Gathered(); r++ {
		if err := a.Step(); err != nil {
			t.Fatalf("serial step %d: %v", r, err)
		}
		if err := b.Step(); err != nil {
			t.Fatalf("parallel step %d: %v", r, err)
		}
		if !a.Swarm().Equal(b.Swarm()) {
			t.Fatalf("round %d: occupancy diverged\nserial:\n%s\nparallel:\n%s",
				a.Round(), a.Swarm(), b.Swarm())
		}
		for _, p := range a.Swarm().Cells() {
			sa, sb := a.StateAt(p), b.StateAt(p)
			if len(sa.Runs) != len(sb.Runs) {
				t.Fatalf("round %d: run count at %v diverged: %d vs %d",
					a.Round(), p, len(sa.Runs), len(sb.Runs))
			}
			for i := range sa.Runs {
				if sa.Runs[i] != sb.Runs[i] {
					t.Fatalf("round %d: run state at %v diverged: %v vs %v",
						a.Round(), p, sa.Runs[i], sb.Runs[i])
				}
			}
		}
	}
	if !a.Gathered() || !b.Gathered() {
		t.Fatalf("round budget exhausted: serial gathered=%v parallel gathered=%v",
			a.Gathered(), b.Gathered())
	}
}
