// Differential suite for the fault-injection layer. The headline proof is
// zero perturbation: an engine carrying an all-zero-probability fault plan
// ("crash:p=0+noise:p=0" — the crash-aware activation path, the noise draw
// and the fault-aware Gathered all engaged) must be bit-identical round by
// round to the fault-free engine, across the seeded workload corpus, every
// scheduler family and several worker counts. The planted tests drive the
// complementary direction: known crashes at known rounds, after which the
// survivors must still gather under every scheduler family; a planted
// disconnection must latch graceful degradation at exactly the round the
// fault-free run aborts; and a mid-run snapshot must carry the crash marks
// and the fault-RNG cursor so the restored run resumes bit-identically.
package fsync_test

import (
	"fmt"
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fault"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// faultConfig assembles an engine config for the given scheduler spec and
// fault spec ("" = fault-free), greedy under relaxed schedulers, the
// paper's algorithm under FSYNC.
func faultConfig(t *testing.T, s *swarm.Swarm, spec, faults string, workers int) (fsync.Algorithm, fsync.Config, int) {
	t.Helper()
	var alg fsync.Algorithm = core.Default()
	var sch sched.Scheduler
	if spec != "fsync" {
		alg = asyncseq.Algorithm{}
		var err error
		if sch, err = sched.Parse(spec, 42); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := fault.Parse(faults, 42)
	if err != nil {
		t.Fatal(err)
	}
	budget := fsync.DefaultBudget(s.Len())
	if sch != nil {
		budget = budget.Scale(sch.Fairness(s.Len()))
	}
	return alg, fsync.Config{
		MaxRounds:         budget.MaxRounds,
		NoMergeLimit:      budget.NoMergeLimit,
		CheckConnectivity: true,
		StrictViews:       true,
		Workers:           workers,
		Scheduler:         sch,
		Faults:            plan,
	}, budget.MaxRounds
}

// TestFaultZeroPerturbationDifferential is the tentpole's acceptance bar:
// a zero-probability fault plan engages every fault code path (crash-aware
// activation, noise draws, the fault-aware Gathered) without changing a
// single observable bit of the simulation.
func TestFaultZeroPerturbationDifferential(t *testing.T) {
	const n = 56
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	for _, w := range gen.SeededCatalog() {
		for _, spec := range specs {
			for _, workers := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", w.Name, spec, workers), func(t *testing.T) {
					s := w.Build(n, 42)
					algC, cfgC, maxRounds := faultConfig(t, s, spec, "", workers)
					algF, cfgF, _ := faultConfig(t, s, spec, "crash:p=0+noise:p=0", workers)
					clean := fsync.New(s, algC, cfgC)
					faulty := fsync.New(s, algF, cfgF)
					compareEngines(t, clean, faulty)
					for r := 0; r < maxRounds && !clean.Gathered(); r++ {
						if err := clean.Step(); err != nil {
							t.Fatalf("clean step %d: %v", r, err)
						}
						if err := faulty.Step(); err != nil {
							t.Fatalf("faulty step %d: %v", r, err)
						}
						compareEngines(t, clean, faulty)
						if faulty.Crashes() != 0 || faulty.Degraded() {
							t.Fatalf("round %d: zero-probability plan crashed %d / degraded %v",
								faulty.Round(), faulty.Crashes(), faulty.Degraded())
						}
					}
					if !clean.Gathered() || !faulty.Gathered() {
						t.Fatalf("round budget exhausted: clean gathered=%v faulty gathered=%v",
							clean.Gathered(), faulty.Gathered())
					}
				})
			}
		}
	}
}

// TestPlantedCrashGathersSurvivors mass-crashes a pinned set of robots at a
// known round and requires the survivors to gather under every scheduler
// family — crashed robots are frozen scenery the live robots merge onto or
// around. The greedy algorithm drives all runs (the paper's algorithm makes
// no fault-tolerance claim).
func TestPlantedCrashGathersSurvivors(t *testing.T) {
	const n = 48
	const faults = "crash-at:r=10,k=8@7"
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	for _, spec := range specs {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", spec, workers), func(t *testing.T) {
				s := gen.RandomBlob(n, 42)
				plan, err := fault.Parse(faults, 42)
				if err != nil {
					t.Fatal(err)
				}
				var sch sched.Scheduler
				if spec != "fsync" {
					if sch, err = sched.Parse(spec, 42); err != nil {
						t.Fatal(err)
					}
				}
				budget := fsync.DefaultBudget(n)
				if sch != nil {
					budget = budget.Scale(sch.Fairness(n))
				}
				eng := fsync.New(s, asyncseq.Algorithm{}, fsync.Config{
					MaxRounds:         budget.MaxRounds,
					NoMergeLimit:      budget.NoMergeLimit,
					CheckConnectivity: true,
					StrictViews:       true,
					Workers:           workers,
					Scheduler:         sch,
					Faults:            plan,
				})
				for r := 0; r < budget.MaxRounds && !eng.Gathered(); r++ {
					if err := eng.Step(); err != nil {
						t.Fatalf("step %d: %v", r, err)
					}
				}
				if !eng.Gathered() {
					t.Fatalf("survivors did not gather within %d rounds (crashes=%d live-crashed=%d degraded=%v)",
						budget.MaxRounds, eng.Crashes(), eng.CrashedLive(), eng.Degraded())
				}
				if eng.Crashes() != 8 {
					t.Fatalf("crashes = %d, want 8", eng.Crashes())
				}
				if eng.CrashedLive() > eng.Crashes() || eng.CrashedLive() < 0 {
					t.Fatalf("crashed-live = %d out of range [0, %d]", eng.CrashedLive(), eng.Crashes())
				}
			})
		}
	}
}

// TestFaultSnapshotRestoreLockstep cuts a faulty run mid-flight (live
// crash and noise probabilities, so the fault RNG cursor and crash marks
// are mid-schedule), snapshots, restores, and requires the restored engine
// to stay bit-identical with the original to the end — including the crash
// counters and every future fault draw.
func TestFaultSnapshotRestoreLockstep(t *testing.T) {
	const n = 48
	const faults = "crash:p=0.004+noise:p=0.02"
	for _, spec := range []string{"fsync", "ssync-rand:3"} {
		t.Run(spec, func(t *testing.T) {
			s := gen.RandomBlob(n, 42)
			alg, cfg, maxRounds := faultConfig(t, s, spec, faults, 4)
			orig := fsync.New(s, alg, cfg)
			for r := 0; r < 25 && !orig.Gathered(); r++ {
				if err := orig.Step(); err != nil {
					t.Fatalf("pre-snapshot step %d: %v", r, err)
				}
			}
			state := orig.AppendState(nil)

			// A fresh config: the restore path re-parses the fault spec and
			// then overwrites the plan's cursor from the snapshot.
			algR, cfgR, _ := faultConfig(t, s, spec, faults, 1)
			restored, rest, err := fsync.NewRestored(algR, cfgR, state)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d bytes left after restore", len(rest))
			}
			if again := restored.AppendState(nil); string(again) != string(state) {
				t.Fatal("restored engine does not re-encode to the same snapshot bytes")
			}
			compareEngines(t, orig, restored)
			if orig.Crashes() != restored.Crashes() || orig.CrashedLive() != restored.CrashedLive() {
				t.Fatalf("crash counters diverged on restore: %d/%d vs %d/%d",
					orig.Crashes(), orig.CrashedLive(), restored.Crashes(), restored.CrashedLive())
			}
			for r := 0; r < maxRounds && !orig.Gathered(); r++ {
				if err := orig.Step(); err != nil {
					t.Fatalf("original step %d: %v", r, err)
				}
				if err := restored.Step(); err != nil {
					t.Fatalf("restored step %d: %v", r, err)
				}
				compareEngines(t, orig, restored)
				if orig.Crashes() != restored.Crashes() || orig.CrashedLive() != restored.CrashedLive() ||
					orig.Degraded() != restored.Degraded() || orig.DegradedRound() != restored.DegradedRound() {
					t.Fatalf("round %d: fault state diverged after restore", orig.Round())
				}
			}
			if !orig.Gathered() || !restored.Gathered() {
				t.Fatalf("gather diverged: original=%v restored=%v", orig.Gathered(), restored.Gathered())
			}
		})
	}
}

// TestFaultDegradationVsAbort severs the dumbbell's bridge (the planted
// disconnection of the connectivity suite) and checks the two regimes
// disagree exactly as specified: the fault-free engine aborts with
// ErrDisconnected, while an engine carrying a fault plan latches graceful
// degradation at the identical round and keeps stepping.
func TestFaultDegradationVsAbort(t *testing.T) {
	const cut = 7
	build := func(faults string) *fsync.Engine {
		plan, err := fault.Parse(faults, 42)
		if err != nil {
			t.Fatal(err)
		}
		return fsync.New(dumbbell(), bridgeCutAlg{cutRound: cut}, fsync.Config{
			MaxRounds:         1000,
			CheckConnectivity: true,
			StrictViews:       true,
			Workers:           4,
			Faults:            plan,
		})
	}

	clean := build("")
	abortRound := -1
	for r := 0; r < 1000; r++ {
		if err := clean.Step(); err != nil {
			dis, ok := err.(fsync.ErrDisconnected)
			if !ok {
				t.Fatalf("clean step %d: %v (want ErrDisconnected)", r, err)
			}
			abortRound = dis.Round
			break
		}
	}
	if abortRound < 0 {
		t.Fatal("the planted cut never disconnected the clean engine")
	}

	faulty := build("noise:p=0")
	for r := 0; r < abortRound+20; r++ {
		if err := faulty.Step(); err != nil {
			t.Fatalf("faulty step %d: %v (degraded engines must not abort on disconnection)", r, err)
		}
	}
	if !faulty.Degraded() {
		t.Fatal("faulty engine never latched degradation")
	}
	if faulty.DegradedRound() != abortRound {
		t.Fatalf("degraded at round %d, clean engine aborted at round %d", faulty.DegradedRound(), abortRound)
	}
	if faulty.Gathered() {
		t.Fatal("a split dumbbell of 3×3 blocks cannot be gathered")
	}
}
