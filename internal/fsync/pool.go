package fsync

// This file is the engine's persistent worker pool. Before it existed,
// every parallel stage of every round — Compute, Resolve, the commit's
// lane repair, the layer clears — spawned fresh goroutines and tore them
// down again, which BENCH_engine.json showed costing ~20% at workers>1 on
// a single-CPU box (goroutine stacks, closure allocations, scheduler
// churn: pure overhead whenever the hardware has nothing to run them on).
//
// The pool keeps the workers alive for the engine's lifetime instead:
// each worker goroutine parks on its own single-slot task channel, a
// stage dispatch sends one task per worker and runs shard 0 on the
// calling goroutine (so a k-way fan-out wakes only k-1 workers), and a
// shared WaitGroup joins the stage. Per stage that is 2(k-1) channel
// operations and one closure — no goroutine creation, no per-stage
// channel allocation. Dispatches are strictly sequential per engine
// (Step's stages are serialized), so one WaitGroup is reused forever.
//
// Lifecycle: the engine creates the pool lazily on its first parallel
// round and installs it into the world as the Commit runner. Engines have
// no Close — simulations end by being dropped — so a runtime.AddCleanup
// tied to the engine closes the pool's quit channel once the engine
// becomes unreachable; the workers park on (task, quit) selects and exit.
// Idle workers reference only the pool, never the engine, so the cleanup
// actually fires.

import (
	"runtime"
	"sync"
)

// poolTask is one dispatched shard: the stage body and the shard index
// the receiving worker must run it with.
type poolTask struct {
	f  func(int)
	id int
}

// pool is a persistent worker pool. The zero value is not usable; see
// newPool.
type pool struct {
	quit chan struct{}
	work []chan poolTask // one single-slot channel per spawned worker
	wg   sync.WaitGroup  // joins the current dispatch (dispatches are sequential)
}

func newPool() *pool {
	return &pool{quit: make(chan struct{})}
}

// ensure grows the pool to at least n parked workers.
func (p *pool) ensure(n int) {
	for len(p.work) < n {
		ch := make(chan poolTask, 1)
		p.work = append(p.work, ch)
		// The one sanctioned spawn site: every parallel phase in the engine
		// and the world fans out through these parked workers, and the
		// merge/commit protocol makes lane results order-independent.
		//gather:nondet-ok the pool is the sanctioned spawn site; results merge deterministically
		go func() {
			for {
				select {
				case t := <-ch:
					t.f(t.id)
					p.wg.Done()
				case <-p.quit:
					return
				}
			}
		}()
	}
}

// run executes f(0), …, f(k-1) and returns when all calls completed:
// shards 1..k-1 go to parked workers, shard 0 runs on the caller. run is
// not reentrant and must not be called concurrently — the engine's stage
// dispatches are strictly sequential, which is what lets the WaitGroup
// and the single-slot channels be reused without handshakes.
func (p *pool) run(k int, f func(int)) {
	if k <= 1 {
		if k == 1 {
			f(0)
		}
		return
	}
	p.ensure(k - 1)
	p.wg.Add(k - 1)
	for i := 1; i < k; i++ {
		p.work[i-1] <- poolTask{f: f, id: i}
	}
	f(0)
	p.wg.Wait()
}

// close releases the workers. Safe to call at most once; the engine's
// cleanup is the only caller.
func (p *pool) close() { close(p.quit) }

// pool returns the engine's persistent worker pool, creating it (and
// arming the unreachability cleanup) on first use.
func (e *Engine) getPool() *pool {
	if e.wp == nil {
		e.wp = newPool()
		e.w.SetRunner(e.wp.run)
		// The engine has no Close: release the workers when the engine
		// itself becomes unreachable. The cleanup must not receive the
		// engine (that would keep it alive forever); the pool does not
		// reference the engine, so handing it the pool is safe.
		runtime.AddCleanup(e, func(p *pool) { p.close() }, e.wp)
	}
	return e.wp
}
