// Package fsync implements the round-based simulation engine. Its default
// time model is the paper's fully synchronous FSYNC: time is divided into
// equal rounds; in every round all robots simultaneously execute one
// look-compute-move cycle. The engine owns the global state, builds each
// robot's radius-limited view, applies all moves simultaneously, merges
// robots that end up on the same cell ("if two or more robots move to the
// same location they are merged to be only one robot"), delivers run-state
// transfers, and checks model invariants.
//
// The global state lives in a world.Dense: a tiled bitset occupancy index
// over 64×64-cell chunks with flat slot-indexed run states and logical
// clocks and an incrementally maintained sorted cell order.
//
// # The staged round pipeline
//
// Step executes each round in four explicit stages over that chunk grid:
//
//	Activate  resolve the round's activation set (everyone under FSYNC; a
//	          scheduler subset otherwise — contiguous activation windows
//	          are sliced straight out of the cell order via
//	          sched.RangeActivator, without a per-robot mask pass)
//	Compute   Look+Compute for every activated robot, sharded across
//	          workers against the immutable pre-round snapshot
//	Resolve   apply all moves: merge resolution, run-state commits,
//	          logical clocks, and transfer collection. Robots are bucketed
//	          by the chunk that owns their *target* cell (a stable hash of
//	          absolute chunk coordinates) and each worker resolves its
//	          chunks' arrivals fully in parallel against a per-worker
//	          arrival lane — two robots can conflict only when they target
//	          the same cell, and a cell has exactly one owner, so the hot
//	          path takes no locks. Targets on a chunk seam (within L∞ 1 of
//	          a chunk border) go to a flat seam bucket resolved in a short
//	          deterministic serial pass after the workers join, followed by
//	          run adoption and transfer delivery in canonical order.
//	Commit    the world repairs each lane's sorted order concurrently and
//	          k-way merges the lanes into the canonical cell order.
//
// Every stage combines results in deterministic cell order (per-worker
// collections carry their global collection index and are merged back into
// it), so the outcome is bit-identical for every worker count — the
// differential tests prove serial ≡ parallel round by round across the
// workload corpus, every scheduler family and workers ∈ {1..16}.
//
// A Config.Scheduler (internal/sched) relaxes the synchrony: each round
// only the scheduler's activation subset runs a look-compute-move cycle
// (SSYNC subsets, ASYNC wavefronts) while the remaining robots sleep in
// place, keeping their positions and run states. Activated robots then see
// a per-robot logical clock (their own completed cycle count) instead of
// the global round counter, so local-clock-driven rules like the every-L-th
// round run-start schedule remain meaningful without global synchrony.
// Under the default FSYNC model the logical clocks coincide with the global
// round counter, and a nil Scheduler takes a fast path that is bit-identical
// to the explicit FSYNC scheduler (proved by the determinism tests).
//
//gather:deterministic
package fsync

import (
	"fmt"
	"runtime"
	"sort"

	"gridgather/internal/fault"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
	"gridgather/internal/view"
	"gridgather/internal/world"
)

// Algorithm is a distributed robot program: a pure function from a local
// view to an action, executed synchronously by every robot every round.
type Algorithm interface {
	// Compute runs the compute step for one robot.
	Compute(v *view.View) Action
	// Radius returns the viewing radius (L1) the algorithm requires.
	Radius() int
}

// Periodic is an optional Algorithm extension that unlocks the quiescence
// fast path. An algorithm implementing it promises that Compute is a pure
// function of the view's cell contents (occupancy, states, crash marks
// within the radius) and of v.Round() mod RoundPeriod() ONLY — two
// activations whose views agree cell-for-cell and whose rounds are
// congruent mod the period must produce identical actions. The paper's
// algorithm qualifies with period L (run starts fire on round%L == 0 and
// nothing else reads the round); round-oblivious algorithms qualify with
// period 1. Algorithms that read the absolute round, randomize, or carry
// hidden per-robot state must NOT implement it. Periods outside [1, 32]
// disable the fast path (verdict masks are 32 bits wide).
type Periodic interface {
	RoundPeriod() int
}

// Config controls engine behaviour.
type Config struct {
	// MaxRounds aborts the simulation after this many rounds. 0 means no
	// limit (use with care); negative values are normalized to 0 by New.
	// Callers that want the standard limits should use DefaultBudget; the
	// public API rejects negative values outright.
	MaxRounds int
	// CheckConnectivity verifies after every CheckEvery rounds that the
	// swarm is still connected, and aborts with an error if not. The
	// paper's central safety property is that "robot movements must not
	// harm the (only globally checkable) swarm connectivity".
	CheckConnectivity bool
	// CheckEvery is the connectivity check period (default 1).
	CheckEvery int
	// StrictViews makes views panic on out-of-radius reads, proving the
	// algorithm local. Slightly slower; on by default in tests.
	StrictViews bool
	// NoMergeLimit aborts with ErrStuck when this many consecutive rounds
	// pass without a merge (0 disables). Gathering must merge at least
	// every O(L + n) rounds, so tests set a generous linear budget.
	NoMergeLimit int
	// OnRound, if non-nil, is called after every completed round with the
	// engine in its post-round state (used by tracing and tests).
	OnRound func(e *Engine)
	// Workers is the number of goroutines sharding both the Compute and
	// the Resolve stage of each round. 0 means runtime.GOMAXPROCS(0); 1
	// keeps the fully serial path. Compute shards the activation set (every
	// robot runs the same pure function on the same immutable pre-round
	// snapshot); Resolve shards by target-chunk ownership with a serial
	// seam pass; both combine results in deterministic order, so the
	// outcome is bit-identical for every worker count. The Algorithm's
	// Compute must be safe for concurrent calls when Workers != 1
	// (core.Gatherer is: it only reads the view and bumps atomic counters).
	Workers int
	// FullBFSConnectivity pins the connectivity check to the full
	// scratch-BFS path instead of the default incremental layer (per-chunk
	// component labels + a seam union-find, recomputed only for chunks the
	// round dirtied — see internal/world/connincr.go). The two paths are
	// proven to agree answer-for-answer by the differential suite; this
	// knob is the escape hatch and the oracle side of that suite.
	FullBFSConnectivity bool
	// FullRecompute disables the quiescence fast path: every activated
	// robot rebuilds its view and reruns Compute every round, even when the
	// dirty-region tracking proves its view unchanged and its cached
	// verdict is "stay". Like FullBFSConnectivity this never changes
	// outcomes — the quiescence differential suite proves skip ≡ recompute
	// bit-identically — so it is an escape hatch and the oracle side of
	// that suite. Quiescence also self-disables when the algorithm does not
	// implement Periodic or when StrictViews is on (a skipped robot proves
	// no locality).
	FullRecompute bool
	// Scheduler yields each round's activation set, generalizing the time
	// model to SSYNC/ASYNC (see internal/sched). nil means FSYNC — every
	// robot every round — via a fast path that skips the activation and
	// logical-clock bookkeeping entirely and is bit-identical to the
	// explicit sched.FSYNC() scheduler. Robots outside the activation set
	// sleep: they keep their position and run states unchanged (their runs
	// neither age nor glide) and can still receive transferred runs and be
	// merged onto. Budgets (MaxRounds, NoMergeLimit) should be scaled by
	// the scheduler's fairness bound; see DefaultBudget.Scale.
	Scheduler sched.Scheduler
	// Faults, when non-nil, injects deterministic crash-stop and
	// sensor-noise faults (see internal/fault). A crashed robot freezes
	// forever: it stays an occupied, mergeable-onto cell, excluded from
	// every activation set, its runs frozen. Faults also switch the engine
	// to graceful degradation: a disconnection no longer aborts the run —
	// it latches degraded mode, where Gathered() means "the live robots of
	// the largest surviving component gathered". A freshly parsed Plan is
	// consumed by exactly one simulation (its RNG streams advance with the
	// rounds); its cursor is carried by snapshots like a scheduler's.
	Faults *fault.Plan
}

// Result summarizes a simulation.
type Result struct {
	// Gathered reports whether the swarm reached a 2×2 square.
	Gathered bool
	// Rounds is the number of FSYNC rounds executed.
	Rounds int
	// Merges is the total number of robots removed by merges.
	Merges int
	// RunsStarted is the number of run states created.
	RunsStarted int
	// Moves is the total number of robot hops performed.
	Moves int
	// InitialRobots and FinalRobots count the population.
	InitialRobots, FinalRobots int
	// Err is non-nil if the simulation aborted (disconnection, stuck, or
	// round limit).
	Err error
}

// Engine drives one swarm under one algorithm.
type Engine struct {
	cfg Config
	alg Algorithm
	w   *world.Dense
	wp  *pool // persistent worker pool (lazily created on the first parallel round)

	round      int
	merges     int
	moves      int
	runsStart  int
	nextRunID  int
	lastMerge  int
	roundMerge int // merges in the most recent round

	// Fault state (all zero without Config.Faults). crashed is indexed by
	// the world's stable robot slots — slots are never reused after a
	// merge, so a crash mark can never migrate to another robot.
	crashTrack    bool             // the plan has crash clauses
	crashed       []bool           // per-slot crash-stop marks
	crashesTotal  int              // robots ever crashed
	crashedLive   int              // crashed robots still occupying a cell
	roundCrash    int              // crashes in the most recent round
	degraded      bool             // a fault disconnected the swarm; latched
	degradedRound int              // round the degradation latched
	flips         []grid.Point     // per-activation noise offsets, indexed like order
	aliveBuf      []bool           // scratch: liveness over the cell order
	liveFn        func(int32) bool // slot liveness for component queries

	// resolveSerial counts rounds left running the Resolve stage serially
	// after a parallel probe found the fan-out unprofitable (a single-P
	// process, seam-heavy or single-chunk-concentrated rounds; see
	// resolveParallel). On GOMAXPROCS=1 the verdict extends to the Compute
	// stage (see stageCompute). The next probe re-measures — the swarm
	// only moves L∞ 1 per round, so the verdict goes stale slowly. Worker
	// counts never change outcomes (proven by the differential suite), so
	// this is purely a performance decision.
	resolveSerial int

	// Quiescence state (quiesce.go; all zero when the fast path is off).
	// qFlags parallels acts/order: compute workers write one byte per
	// robot at disjoint indices, the serial post-pass reads them all.
	qOn       bool
	qPeriod   int
	qFlags    []uint8
	qMarks    []grid.Point // deferred view-dirty marks (post-pass scratch)
	qComputed int          // activations that ran Look+Compute
	qSkipped  int          // activations replayed from the quiescent cache

	// Scratch structures reused across rounds. Each Step fills them from
	// scratch; nothing outside Step may retain references to them.
	order        []grid.Point  // this round's activation set
	sleep        []grid.Point  // robots outside the activation set
	mask         []bool        // scheduler activation mask over the cell order
	acts         []actionAt    // actions indexed like order
	actBuckets   [][]int32     // action indices per resolve lane (last = seam)
	sleepBuckets [][]int32     // sleeper indices per resolve lane
	outs         []resolveOut  // per-lane resolve collections
	mergeCur     []int         // k-way merge cursors over outs
	freshKeeps   []idxKeep     // merged brand-new kept runs, collection order
	transferList []idxTransfer // merged pending hand-offs, collection order
	deliver      deliverSlice
	runScratch   [robot.MaxRuns + 2]robot.Run
	computeErrs  []error
	runnersBuf   []grid.Point

	// Persistent closures handed to the pool and the merge every round,
	// built once in ensureStageFns: dispatching fresh captures per round
	// would allocate on the hot path (hotalloc enforces this). The fields
	// below carry the per-round values the closures read.
	computeFn      func(int)
	resolveFn      func(int)
	keepsAt        func(int) []idxKeep
	transfersAt    func(int) []idxTransfer
	computeVC      view.Config
	computeChunk   int
	scheduledRound bool
}

// ensureStageFns builds the persistent pipeline closures. Idempotent and
// cheap after the first call; Step invokes it so restored engines are
// covered without every construction path having to remember to.
func (e *Engine) ensureStageFns() {
	if e.computeFn != nil {
		return
	}
	e.computeFn = func(w int) {
		lo := w * e.computeChunk
		e.computeErrs[w] = e.computeRange(e.computeVC, lo, min(lo+e.computeChunk, len(e.acts)))
	}
	e.resolveFn = func(k int) {
		e.resolveLane(k, false, e.actBuckets[k], e.sleepBuckets[k], e.scheduledRound, &e.outs[k])
	}
	e.keepsAt = func(i int) []idxKeep { return e.outs[i].keeps }
	e.transfersAt = func(i int) []idxTransfer { return e.outs[i].transfers }
}

// actionAt pairs a robot's pre-round position with its computed action.
type actionAt struct {
	from grid.Point
	act  Action
}

// resolveOut is one lane's Resolve-stage output: everything the shared
// serial tail (run adoption, transfer resolution) needs, tagged with the
// global action index so the per-lane collections merge back into the
// order a serial pass would have produced.
type resolveOut struct {
	moved       int
	crashedGone int // crashed sleepers a live arrival merged away
	keeps       []idxKeep
	transfers   []idxTransfer
	dirty       []grid.Point // merge cells to view-dirty for quiescence (occupancy-stable state changes)
}

func (o *resolveOut) reset() {
	o.moved = 0
	o.crashedGone = 0
	o.keeps = o.keeps[:0]
	o.transfers = o.transfers[:0]
	o.dirty = o.dirty[:0]
}

// idxKeep is a surviving-so-far brand-new kept run awaiting adoption,
// tagged with the keeper's action index.
type idxKeep struct {
	idx int32
	dst grid.Point
}

// idxTransfer is a run hand-off collected during the Resolve stage,
// tagged with the sender's action index. It is delivered only if the
// sender survives the round without merging: run states of merged robots
// stop (Table 1, condition 3), including states the robot was handing off
// in the very round it merged.
type idxTransfer struct {
	idx       int32
	senderDst grid.Point // the sender's post-move cell; its occupancy decides the sender's fate
	to        grid.Point // the recipient cell (pre-round coordinates)
	run       robot.Run
}

// deliveredRun is a surviving, adopted hand-off awaiting delivery.
type deliveredRun struct {
	to  grid.Point
	run robot.Run
}

// deliverSlice sorts surviving hand-offs by recipient cell, then run ID —
// grouping per-recipient deliveries in deterministic ID order. Pointer
// receivers keep the sort.Sort call allocation-free.
type deliverSlice []deliveredRun

func (d *deliverSlice) Len() int { return len(*d) }

func (d *deliverSlice) Swap(i, j int) { s := *d; s[i], s[j] = s[j], s[i] }

func (d *deliverSlice) Less(i, j int) bool {
	s := *d
	if s[i].to != s[j].to {
		return s[i].to.Less(s[j].to)
	}
	return s[i].run.ID < s[j].run.ID
}

// ErrDisconnected is returned when a round broke swarm connectivity.
type ErrDisconnected struct{ Round int }

func (e ErrDisconnected) Error() string {
	return fmt.Sprintf("fsync: swarm disconnected after round %d", e.Round)
}

// ErrStuck is returned when the watchdog sees no merge for too long.
type ErrStuck struct{ Round, SinceMerge int }

func (e ErrStuck) Error() string {
	return fmt.Sprintf("fsync: no merge for %d rounds (round %d)", e.SinceMerge, e.Round)
}

// ErrRoundLimit is returned when MaxRounds elapsed without gathering.
type ErrRoundLimit struct{ Rounds int }

func (e ErrRoundLimit) Error() string {
	return fmt.Sprintf("fsync: round limit %d reached before gathering", e.Rounds)
}

// New creates an engine simulating the given swarm (which it does not
// retain) under the given algorithm.
func New(s *swarm.Swarm, alg Algorithm, cfg Config) *Engine {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	if cfg.MaxRounds < 0 {
		cfg.MaxRounds = 0 // reserved: negative means the same as "no limit"
	}
	w := world.NewDense(s, cfg.Scheduler != nil)
	w.ForceFullBFS(cfg.FullBFSConnectivity)
	e := &Engine{
		cfg:       cfg,
		alg:       alg,
		w:         w,
		nextRunID: 1,
	}
	e.initFaults()
	e.initQuiesce()
	return e
}

// initFaults sets up crash-stop tracking when the configuration carries a
// fault plan with crash clauses. Shared by New and NewRestored (the
// restore path then overwrites the crash marks from the snapshot).
func (e *Engine) initFaults() {
	if e.cfg.Faults == nil || !e.cfg.Faults.HasCrashes() {
		return
	}
	e.crashTrack = true
	e.crashed = make([]bool, e.w.SlotCount())
	e.liveFn = func(s int32) bool { return !e.crashed[s] }
}

// workers resolves the configured worker count for a round over n robots.
func (e *Engine) workers(n int) int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Swarm exposes the current occupancy as a freshly built swarm, so avoid
// calling it per round on hot paths (OnRound hooks should read World()).
func (e *Engine) Swarm() *swarm.Swarm { return e.w.Snapshot() }

// World exposes the engine's state (read-only by convention).
func (e *Engine) World() *world.Dense { return e.w }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Merges returns the total robots removed so far.
func (e *Engine) Merges() int { return e.merges }

// RoundMerges returns the number of robots removed in the last round.
func (e *Engine) RoundMerges() int { return e.roundMerge }

// RunsStarted returns the number of run states created so far.
func (e *Engine) RunsStarted() int { return e.runsStart }

// Moves returns the total robot hops performed so far.
func (e *Engine) Moves() int { return e.moves }

// StateAt returns the state of the robot at p (zero state if free).
func (e *Engine) StateAt(p grid.Point) robot.State { return e.w.StateAt(p) }

// LocalRound returns the logical clock of the robot at p: the number of
// look-compute-move cycles it has completed. Under FSYNC (nil scheduler)
// every robot's clock equals Round().
func (e *Engine) LocalRound(p grid.Point) int { return e.localRound(p) }

// localRound resolves the round number a robot's view reports: the global
// round under FSYNC, the robot's own logical clock under a scheduler.
func (e *Engine) localRound(p grid.Point) int {
	if e.cfg.Scheduler == nil {
		return e.round
	}
	return e.w.ClockAt(p)
}

// Runners returns the positions of all robots currently holding run
// states, in deterministic order. The returned slice is engine-owned
// scratch — read-only, valid until the next Runners or Step call — so the
// per-round stats/trace paths allocate nothing.
//
//gather:hotpath
func (e *Engine) Runners() []grid.Point {
	e.runnersBuf = e.runnersBuf[:0]
	for _, p := range e.w.Cells() {
		if e.w.StateAt(p).HasRuns() {
			e.runnersBuf = append(e.runnersBuf, p)
		}
	}
	return e.runnersBuf
}

// SetRound overrides the round counter (test scaffolding: starting at a
// round that is not a multiple of L suppresses run starts while planted
// run states are observed). Cached quiescent verdicts are dropped — the
// jump changes every robot's round phase out from under them.
func (e *Engine) SetRound(r int) {
	e.round = r
	e.w.QuiesceReset()
}

// SetState overrides the state of the robot at p (test scaffolding for
// constructing mid-run scenarios).
func (e *Engine) SetState(p grid.Point, st robot.State) {
	if !e.w.Has(p) {
		panic("fsync: SetState on free cell")
	}
	for i := range st.Runs {
		if st.Runs[i].ID == 0 {
			st.Runs[i].ID = e.nextRunID
			e.nextRunID++
		}
	}
	e.w.SetState(p, st)
}

// Crashes returns the number of robots that have crash-stopped so far.
func (e *Engine) Crashes() int { return e.crashesTotal }

// CrashedLive returns the number of crashed robots still occupying a cell
// (crashed robots vanish only when a live robot merges onto them).
func (e *Engine) CrashedLive() int { return e.crashedLive }

// CrashedCell reports whether the cell at p currently holds a crash-stopped
// robot. Always false without crash faults. Observability surface for
// renderers and tests; the algorithms' view of the same fact is
// view.CrashedAt.
func (e *Engine) CrashedCell(p grid.Point) bool {
	return e.crashTrack && e.crashedAtCell(p)
}

// RoundCrashes returns the number of robots that crashed in the last round.
func (e *Engine) RoundCrashes() int { return e.roundCrash }

// Degraded reports whether a fault disconnected the swarm and the engine
// latched graceful-degradation mode (only possible with Config.Faults).
func (e *Engine) Degraded() bool { return e.degraded }

// DegradedRound returns the round at which degradation latched (0 if not
// degraded).
func (e *Engine) DegradedRound() int { return e.degradedRound }

// Gathered reports whether the swarm has gathered. Without faults this is
// the paper's condition — all robots in a 2×2 square. With faults the
// condition is over the survivors: crashed robots are immovable scenery,
// so gathering means the live robots sit in a 2×2 square; and once a fault
// has disconnected the swarm (degraded mode), only the component holding
// the most survivors is asked to gather — the rest (stranded crashed
// robots, split-off minorities) is unreachable by a
// connectivity-preserving algorithm.
func (e *Engine) Gathered() bool {
	if e.cfg.Faults == nil {
		return e.w.Gathered()
	}
	if !e.degraded {
		if e.crashedLive == 0 {
			return e.w.Gathered()
		}
		return e.liveGathered()
	}
	if e.crashedLive == 0 {
		// Every robot is live, so the most-survivors component is simply
		// the largest one — answered by the incremental layer.
		size, bounds, _ := e.w.LargestComponent()
		return size > 0 && bounds.FitsIn2x2()
	}
	live, lb := e.w.LargestLiveComponent(e.liveFn)
	return live > 0 && lb.FitsIn2x2()
}

// liveGathered reports whether the live robots (over the whole, still
// connected swarm) fit in a 2×2 square. A swarm whose every robot crashed
// can never gather.
func (e *Engine) liveGathered() bool {
	slots := e.w.Slots()
	b := grid.EmptyRect
	live := 0
	for i, p := range e.w.Cells() {
		if e.crashed[slots[i]] {
			continue
		}
		live++
		b = b.Include(p)
		if !b.FitsIn2x2() {
			return false
		}
	}
	return live > 0
}

// viewConfig builds the view accessor bundle against current state: views
// read the tiled bitset directly (no closures, no hashing).
func (e *Engine) viewConfig() view.Config {
	vc := view.Config{
		Radius:  e.alg.Radius(),
		Checked: e.cfg.StrictViews,
		Dense:   e.w,
	}
	if e.crashTrack {
		vc.Crashed = e.crashedAtCell
	}
	return vc
}

// crashedAtCell reports whether the cell holds a crash-stopped robot. It is
// the failure detector views expose to algorithms. Safe for concurrent use
// during the compute phase: crash draws happen before compute, and the
// marks are not touched again until commit.
func (e *Engine) crashedAtCell(p grid.Point) bool {
	return e.w.Has(p) && e.crashed[e.w.SlotAt(p)]
}

// computeRange runs Look+Compute for the robots e.order[lo:hi), writing
// each action to e.acts at the robot's index. One reusable view per call
// keeps the phase allocation-free; disjoint index ranges keep concurrent
// calls race-free and the combined result independent of the sharding.
//
// With quiescence on, robots whose cell is clean and whose cached verdict
// for this round phase is "quiescent" replay Stay without building a view
// (QuiesceSkip reads only immutable pre-round state, so the check is safe
// from concurrent workers); noise-flipped activations never skip — the
// perturbed view is not the cached one. Each robot's skip/noisy/had-runs
// disposition lands in e.qFlags for the serial post-pass.
//
//gather:hotpath
func (e *Engine) computeRange(vc view.Config, lo, hi int) error {
	v := view.New(vc, grid.Zero, e.round)
	flips := e.flips
	q := e.qOn
	for i := lo; i < hi; i++ {
		p := e.order[i]
		lr := e.localRound(p)
		var off grid.Point
		if len(flips) != 0 {
			off = flips[i]
		}
		if q && off == (grid.Point{}) && e.w.QuiesceSkip(p, lr%e.qPeriod) {
			e.acts[i] = actionAt{from: p} // the cached quiescent action: Stay
			e.qFlags[i] = qfSkip
			continue
		}
		v.Reposition(p, lr)
		if off != (grid.Point{}) {
			v.SetNoise(off)
		}
		a := e.alg.Compute(v)
		if a.Move.Linf() > 1 {
			return fmt.Errorf("fsync: robot at %v attempted move %v exceeding one cell", p, a.Move) //gather:alloc-ok abort path, the round is already lost
		}
		e.acts[i] = actionAt{from: p, act: a}
		if q {
			f := uint8(0)
			if off != (grid.Point{}) {
				f = qfNoisy
			}
			if e.w.HasRunsAt(p) {
				f |= qfHadRuns
			}
			e.qFlags[i] = f
		}
	}
	return nil
}

// Step executes one round through the staged pipeline: Activate → Compute
// → Resolve → Commit. It returns an error if an invariant broke.
//
//gather:hotpath
func (e *Engine) Step() error {
	e.ensureStageFns()
	scheduled := e.cfg.Scheduler != nil
	e.roundCrash = 0
	e.stageActivate(scheduled)
	e.drawNoise()
	prevPop := len(e.order) + len(e.sleep)
	workers := e.workers(len(e.order))
	if err := e.stageCompute(workers); err != nil {
		return err
	}
	moved := e.stageResolve(scheduled, workers)
	e.w.Commit()

	removed := prevPop - e.w.Len()
	e.round++
	e.moves += moved
	e.merges += removed
	e.roundMerge = removed
	if removed > 0 || e.roundCrash > 0 {
		// Crashes count as watchdog progress: a mass crash legitimately
		// shrinks the population that still has to merge.
		e.lastMerge = e.round
	}

	if e.cfg.CheckConnectivity && e.round%e.cfg.CheckEvery == 0 && !e.degraded {
		if !e.w.Connected() {
			if e.cfg.Faults == nil {
				return ErrDisconnected{Round: e.round}
			}
			// Graceful degradation: a faulty swarm is allowed to split.
			// From here on, gathering is asked of the largest surviving
			// component only, and the (now permanently false) global
			// connectivity check is skipped.
			e.degraded = true
			e.degradedRound = e.round
		}
	}
	if e.cfg.NoMergeLimit > 0 && e.round-e.lastMerge >= e.cfg.NoMergeLimit && !e.Gathered() {
		return ErrStuck{Round: e.round, SinceMerge: e.round - e.lastMerge}
	}
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(e)
	}
	return nil
}

// stageActivate fills e.order (this round's activation set) and e.sleep
// (everyone else), both in canonical cell order. Under FSYNC every robot
// runs a full look-compute-move cycle every round; a Scheduler restricts
// the round to its activation subset. Schedulers whose activation set is a
// contiguous window of the cell order (sched.RangeActivator — FSYNC,
// ASYNC wavefronts) deliver it as a slot range sliced straight out of the
// sorted order, skipping the per-robot mask pass entirely.
//
//gather:hotpath
func (e *Engine) stageActivate(scheduled bool) {
	cells := e.w.Cells()
	e.order = e.order[:0]
	e.sleep = e.sleep[:0]
	if e.crashTrack {
		e.activateFaulty(scheduled, cells)
		return
	}
	if !scheduled {
		e.order = append(e.order, cells...)
		return
	}
	if ra, ok := e.cfg.Scheduler.(sched.RangeActivator); ok {
		if lo, m, ok := ra.ActivateRange(e.round, len(cells)); ok {
			n := len(cells)
			switch hi := lo + m; {
			case m >= n:
				e.order = append(e.order, cells...)
			case hi <= n:
				e.order = append(e.order, cells[lo:hi]...)
				e.sleep = append(e.sleep, cells[:lo]...)
				e.sleep = append(e.sleep, cells[hi:]...)
			default: // the window wraps: ascending order is [0,hi-n) ∪ [lo,n)
				e.order = append(e.order, cells[:hi-n]...)
				e.order = append(e.order, cells[lo:]...)
				e.sleep = append(e.sleep, cells[hi-n:lo]...)
			}
			return
		}
	}
	slots := e.w.Slots()
	if cap(e.mask) < len(cells) {
		e.mask = make([]bool, len(cells))
	}
	mask := e.mask[:len(cells)]
	clear(mask)
	e.cfg.Scheduler.Activate(e.round, cells, slots, mask)
	for i, p := range cells {
		if mask[i] {
			e.order = append(e.order, p)
		} else {
			e.sleep = append(e.sleep, p)
		}
	}
}

// activateFaulty is the crash-aware Activate stage: it first draws this
// round's crash decisions over the live population (in canonical cell
// order, so the coin stream is position-stable), then intersects the
// scheduler's activation set with the survivors — a crashed robot sleeps
// forever. Range-activating schedulers go through the generic mask path
// here: Activate and ActivateRange are proven equivalent, and a mask is
// needed anyway to subtract the crashed set.
//
//gather:hotpath
func (e *Engine) activateFaulty(scheduled bool, cells []grid.Point) {
	e.order = e.order[:0]
	e.sleep = e.sleep[:0]
	slots := e.w.Slots()
	n := len(cells)
	if cap(e.aliveBuf) < n {
		e.aliveBuf = make([]bool, n)
	}
	alive := e.aliveBuf[:n]
	for i, s := range slots {
		alive[i] = !e.crashed[s]
	}
	if c := e.cfg.Faults.DrawCrashes(e.round, alive); c > 0 {
		for i, s := range slots {
			if !alive[i] && !e.crashed[s] {
				e.crashed[s] = true
				// The crash flips CrashedAt for this very round's views
				// (crashes draw before compute), with no occupancy change:
				// view-dirty the region before any skip check runs.
				e.w.MarkViewDirty(cells[i])
			}
		}
		e.crashesTotal += c
		e.crashedLive += c
		e.roundCrash = c
	}
	if !scheduled {
		for i, p := range cells {
			if alive[i] {
				e.order = append(e.order, p)
			} else {
				e.sleep = append(e.sleep, p)
			}
		}
		return
	}
	if cap(e.mask) < n {
		e.mask = make([]bool, n)
	}
	mask := e.mask[:n]
	clear(mask)
	e.cfg.Scheduler.Activate(e.round, cells, slots, mask)
	for i, p := range cells {
		if mask[i] && alive[i] {
			e.order = append(e.order, p)
		} else {
			e.sleep = append(e.sleep, p)
		}
	}
}

// drawNoise draws one view-noise flip per activated robot, in activation
// order. e.flips parallels e.order; a zero offset means "no flip this
// activation". Without noise clauses the flip list stays empty and the
// compute stage skips the lookup entirely.
//
//gather:hotpath
func (e *Engine) drawNoise() {
	if !e.cfg.Faults.HasNoise() {
		e.flips = e.flips[:0]
		return
	}
	n := len(e.order)
	if cap(e.flips) < n {
		e.flips = make([]grid.Point, n)
	}
	e.flips = e.flips[:n]
	r := e.alg.Radius()
	for i := range e.flips {
		e.flips[i], _ = e.cfg.Faults.NoiseFlip(r)
	}
}

// stageCompute runs Look+Compute for every activated robot simultaneously,
// from the same snapshot. The pre-round state is immutable during this
// stage, so no cloning is required — the stage shards freely across
// workers, each writing its robots' actions to fixed indices of e.acts.
//
//gather:hotpath
func (e *Engine) stageCompute(workers int) error {
	// A serial-resolve verdict on a single-P process extends to Compute:
	// the load-skew verdicts keep Compute parallel (its work is per-robot,
	// independent of chunk ownership), but with GOMAXPROCS=1 there is
	// nowhere to run concurrently and the fan-out only costs goroutine
	// switches. Probe rounds still run the full parallel pipeline.
	if workers > 1 && e.resolveSerial > 0 && runtime.GOMAXPROCS(0) == 1 {
		workers = 1
	}
	vc := e.viewConfig()
	n := len(e.order)
	if cap(e.acts) < n {
		e.acts = make([]actionAt, n)
	}
	e.acts = e.acts[:n]
	if e.qOn {
		// One disposition byte per activation; computeRange writes every
		// index (skip and compute alike), so no clearing is needed.
		if cap(e.qFlags) < n {
			e.qFlags = make([]uint8, n)
		}
		e.qFlags = e.qFlags[:n]
	}
	if workers == 1 {
		if err := e.computeRange(vc, 0, n); err != nil {
			return err
		}
		e.quiescePost()
		return nil
	}
	if cap(e.computeErrs) < workers {
		e.computeErrs = make([]error, workers)
	}
	errs := e.computeErrs[:workers]
	e.computeVC = vc
	e.computeChunk = (n + workers - 1) / workers
	e.getPool().run(workers, e.computeFn)
	for w := range errs {
		// The lowest shard's error wins, matching what the serial loop
		// would have reported first.
		if errs[w] != nil {
			return errs[w]
		}
	}
	e.quiescePost()
	return nil
}

// stageResolve applies all moves through the world's arrival protocol and
// returns the number of robots that hopped. The first arrival at a cell is
// the provisional survivor and keeps its runs; any later arrival is a
// merge — run states of merged robots stop (Table 1, condition 3/6).
// Sleeping robots stand still, keeping their run states (frozen, not aged)
// and logical clocks; they still merge if an activated robot lands on
// their cell. With several workers the arrivals are resolved by
// target-chunk ownership (see resolveParallel); the stage ends with the
// shared serial tail: run adoption and transfer delivery.
//
//gather:hotpath
func (e *Engine) stageResolve(scheduled bool, workers int) int {
	e.scheduledRound = scheduled
	var moved int
	if workers > 1 && e.resolveSerial > 0 {
		e.resolveSerial--
		workers = 1
	}
	if workers == 1 {
		e.w.BeginRound()
		if len(e.outs) == 0 {
			e.outs = make([]resolveOut, 1)
		}
		e.resolveLane(0, true, nil, nil, scheduled, &e.outs[0])
		moved = e.mergeOuts(1)
	} else {
		moved = e.resolveParallel(scheduled, workers)
	}

	// Adopt brand-new kept runs now that every robot's fate is known: a
	// robot that kept a fresh run but was merged onto this round never
	// started it (Table 1, condition 3 — the merge clears its pending
	// state), so only surviving keepers get IDs and RunsStarted credit.
	for _, k := range e.freshKeeps {
		if e.w.ArrivalCount(k.dst) != 1 {
			continue
		}
		st := e.w.ArrivalState(k.dst)
		rb := e.runScratch[:0]
		for _, r := range st.Runs {
			rb = append(rb, e.adoptRun(r))
		}
		e.w.SetArrivalState(k.dst, robot.State{Runs: rb})
	}

	// Resolve the collected hand-offs now that every robot's fate is known:
	// a sender that merged this round loses all its runs (Table 1,
	// condition 3), so its hand-offs die with it. Surviving transfers are
	// adopted in collection order, keeping run IDs deterministic.
	e.deliver = e.deliver[:0]
	for _, t := range e.transferList {
		if e.w.ArrivalCount(t.senderDst) != 1 {
			continue
		}
		e.deliver = append(e.deliver, deliveredRun{to: t.to, run: e.adoptRun(t.run)})
	}

	// Deliver transfers to robots occupying the target cells after moves.
	// Targets that merged this round do not accept states (the run was
	// interrupted by the merge); targets that are empty drop the state.
	// Per-target delivery runs in ascending run-ID order.
	sort.Sort(&e.deliver)
	for i := 0; i < len(e.deliver); {
		to := e.deliver[i].to
		j := i
		for j < len(e.deliver) && e.deliver[j].to == to {
			j++
		}
		if e.w.ArrivalCount(to) == 1 {
			st := e.w.ArrivalState(to)
			rb := append(e.runScratch[:0], st.Runs...)
			for k := i; k < j; k++ {
				if len(rb) >= robot.MaxRuns {
					break
				}
				rb = append(rb, e.deliver[k].run)
			}
			e.w.SetArrivalState(to, robot.State{Runs: rb})
			// The recipient gained runs without moving: view-dirty its
			// region so it and its neighbors recompute next round.
			e.w.MarkViewDirty(to)
		}
		i = j
	}
	return moved
}

// resolveParallel is the chunk-owned Resolve fan-out: every action (and
// sleeper) is bucketed by the lane owning its target cell's chunk — seam
// targets (within L∞ 1 of a chunk border) go to the extra seam lane —
// then one goroutine per worker drains its buckets in parallel, and the
// seam lane runs serially after the join, where cross-chunk conflicts are
// possible. The single classification sweep also pre-marks every target
// chunk, so the workers never touch shared world structures.
//
//gather:hotpath
func (e *Engine) resolveParallel(scheduled bool, workers int) int {
	lanes := workers + 1
	seam := workers
	e.w.BeginRoundShards(lanes)
	for len(e.actBuckets) < lanes {
		e.actBuckets = append(e.actBuckets, nil)     //gather:alloc-ok lane-count growth, settles after the first parallel round
		e.sleepBuckets = append(e.sleepBuckets, nil) //gather:alloc-ok lane-count growth, settles after the first parallel round
	}
	for i := 0; i < lanes; i++ {
		e.actBuckets[i] = e.actBuckets[i][:0]
		e.sleepBuckets[i] = e.sleepBuckets[i][:0]
	}
	for i := range e.acts {
		c := &e.acts[i]
		ln, onSeam := e.w.Classify(c.from.Add(c.act.Move), workers)
		if onSeam {
			ln = seam
		}
		// Reset via [:0] in the lane loop above; the hint analysis cannot
		// see it across the differing index expressions.
		e.actBuckets[ln] = append(e.actBuckets[ln], int32(i)) //gather:alloc-ok bucket reset above, steady-state reuse
	}
	for i, p := range e.sleep {
		ln, onSeam := e.w.Classify(p, workers)
		if onSeam {
			ln = seam
		}
		e.sleepBuckets[ln] = append(e.sleepBuckets[ln], int32(i)) //gather:alloc-ok bucket reset above, steady-state reuse
	}
	// Adaptive probe: some rounds cannot profit from the fan-out — when
	// the process has a single P (GOMAXPROCS=1 leaves nothing for the
	// workers to run on), when the seam lane (serial by construction)
	// holds most of the work, or when chunk ownership concentrates nearly
	// all non-seam work in one lane (the swarm fits in a handful of
	// chunks). Classification itself just measured the load split, so
	// decide here: such rounds schedule the next 63 Resolve stages
	// serially, then the 64th probes again (the swarm moves at most L∞ 1
	// per round, so the verdict goes stale slowly). Outcomes are
	// worker-count-independent (the differential suite proves it), so
	// this is purely performance. Small rounds are exempt — their
	// overhead is microseconds, and the differential tests that prove
	// lane equivalence run at small n.
	if total := len(e.acts) + len(e.sleep); total >= 1024 {
		seamLoad := len(e.actBuckets[seam]) + len(e.sleepBuckets[seam])
		maxLane := 0
		for k := 0; k < workers; k++ {
			if l := len(e.actBuckets[k]) + len(e.sleepBuckets[k]); l > maxLane {
				maxLane = l
			}
		}
		if runtime.GOMAXPROCS(0) == 1 || seamLoad*2 > total || maxLane*5 > (total-seamLoad)*4 {
			e.resolveSerial = 63
		}
	}
	for len(e.outs) < lanes {
		e.outs = append(e.outs, resolveOut{}) //gather:alloc-ok lane-count growth, settles after the first parallel round
	}
	e.getPool().run(workers, e.resolveFn)
	// The seam pass: short, serial, deterministic — the only arrivals whose
	// neighborhoods span chunks another worker owns.
	e.resolveLane(seam, false, e.actBuckets[seam], e.sleepBuckets[seam], scheduled, &e.outs[seam])
	return e.mergeOuts(lanes)
}

// resolveLane replays the arrival protocol for one lane's bucket of action
// indices and sleeper indices (all=true drains everything — the serial
// path). Within a lane, activated arrivals run before sleepers — the same
// relative order a serial pass uses — and any two arrivals at the same
// cell are always in the same lane, so per-cell merge resolution is
// order-identical to serial.
//
//gather:hotpath
func (e *Engine) resolveLane(ln int, all bool, actIdx, sleepIdx []int32, scheduled bool, out *resolveOut) {
	out.reset()
	nA := len(actIdx)
	if all {
		nA = len(e.acts)
	}
	for k := 0; k < nA; k++ {
		i := int32(k)
		if !all {
			i = actIdx[k]
		}
		c := &e.acts[i]
		dst := c.from.Add(c.act.Move)
		if dst != c.from {
			out.moved++
		}
		var cl int
		if scheduled {
			// The cycle completes: the robot's logical clock ticks. A
			// merged cell keeps the largest arriving clock (deterministic
			// regardless of arrival order).
			cl = e.w.ClockAt(c.from) + 1
		}
		if e.w.ArriveShard(ln, c.from, dst) == 1 {
			keep := c.act.Keep()
			e.w.SetArrivalState(dst, robot.State{Runs: keep})
			for _, r := range keep {
				if r.ID == 0 {
					// Brand-new kept run: adoption (ID, RunsStarted) waits
					// until the keeper's merge fate is known, like the
					// transfer hand-offs below.
					out.keeps = append(out.keeps, idxKeep{idx: i, dst: dst}) //gather:alloc-ok length-reset in out.reset, steady-state reuse
					break
				}
			}
		} else if e.qOn {
			// A merge can leave dst occupancy-stable (arrival onto a stayer)
			// while its state, slot and crash mark change under the
			// neighbors' views — the commit diff can't see it, so queue a
			// view-dirty mark for the serial pass after the lanes join.
			out.dirty = append(out.dirty, dst) //gather:alloc-ok length-reset in out.reset, steady-state reuse
		}
		if scheduled {
			e.w.RaiseClock(dst, cl)
		}
		for _, tr := range c.act.Transfers() {
			// Collected, not yet delivered: whether the hand-off succeeds
			// depends on the sender not merging this round, which is known
			// only after all arrivals are counted.
			//gather:alloc-ok length-reset in out.reset, steady-state reuse
			out.transfers = append(out.transfers, idxTransfer{
				idx:       i,
				senderDst: dst,
				to:        c.from.Add(tr.To),
				run:       tr.Run,
			})
		}
	}
	e.w.BeginSleepShard(ln)
	nS := len(sleepIdx)
	if all {
		nS = len(e.sleep)
	}
	for k := 0; k < nS; k++ {
		i := int32(k)
		if !all {
			i = sleepIdx[k]
		}
		p := e.sleep[i]
		var cl int
		if scheduled {
			cl = e.w.ClockAt(p)
		}
		cnt := e.w.SleepShard(ln, p)
		if e.qOn && cnt > 1 {
			// An activated robot already landed on this sleeper's cell: the
			// sleeper merges away, an occupancy-stable state/slot change.
			out.dirty = append(out.dirty, p) //gather:alloc-ok length-reset in out.reset, steady-state reuse
		}
		if e.crashTrack && cnt > 1 && e.crashed[e.w.SlotAt(p)] {
			// A live robot merged onto a crashed sleeper: the crash mark
			// dies with the sleeper's slot (slots are never reused), and
			// the cell now holds the live first-arriver. Activated arrivals
			// run before sleepers within a lane and same-cell arrivals
			// share a lane, so the count here is the cell's final verdict.
			out.crashedGone++
		}
		if scheduled {
			e.w.RaiseClock(p, cl)
		}
	}
}

// mergeOuts folds the per-lane Resolve outputs back into global collection
// order: the kept-run and transfer lists are k-way merged by action index
// (each lane's list is already ascending — buckets are drained in index
// order), so adoption later hands out run IDs exactly as a serial pass
// would. Returns the summed hop count. Operates on e.outs[:lanes] (the
// persistent keepsAt/transfersAt accessors read e.outs directly).
//
//gather:hotpath
func (e *Engine) mergeOuts(lanes int) int {
	outs := e.outs[:lanes]
	moved := 0
	gone := 0
	for i := range outs {
		moved += outs[i].moved
		gone += outs[i].crashedGone
		for _, p := range outs[i].dirty {
			// Serial, after the lanes joined: MarkViewDirty writes shared
			// qdirty planes. OR-only, so lane order is irrelevant.
			e.w.MarkViewDirty(p)
		}
	}
	e.crashedLive -= gone
	if len(outs) == 1 {
		e.freshKeeps = append(e.freshKeeps[:0], outs[0].keeps...)
		e.transferList = append(e.transferList[:0], outs[0].transfers...)
		return moved
	}
	cur := e.mergeCur[:0]
	for range outs {
		cur = append(cur, 0)
	}
	e.mergeCur = cur
	e.freshKeeps = mergeByIdx(e.freshKeeps[:0], lanes, cur, e.keepsAt, keepIdx)
	e.transferList = mergeByIdx(e.transferList[:0], lanes, cur, e.transfersAt, transferIdx)
	return moved
}

// keepIdx and transferIdx are mergeByIdx key extractors; package-level
// (not literals at the call sites) so the merge passes static funcs.
func keepIdx(k idxKeep) int32 { return k.idx }

func transferIdx(t idxTransfer) int32 { return t.idx }

// mergeByIdx k-way merges n lists — each already ascending by idx — into
// dst with a linear min-scan over the list heads (lane counts are small).
// Ascending input plus "first list wins ties" keeps the merge stable;
// across resolve lanes ties cannot occur at all, since an action index
// lives in exactly one lane.
//
//gather:hotpath
func mergeByIdx[T any](dst []T, n int, cur []int, list func(int) []T, idx func(T) int32) []T {
	for i := 0; i < n; i++ {
		cur[i] = 0
	}
	for {
		best := -1
		for i := 0; i < n; i++ {
			l := list(i)
			if cur[i] >= len(l) {
				continue
			}
			if best < 0 || idx(l[cur[i]]) < idx(list(best)[cur[best]]) {
				best = i
			}
		}
		if best < 0 {
			return dst
		}
		dst = append(dst, list(best)[cur[best]])
		cur[best]++
	}
}

// adoptRun assigns an engine-unique ID to newly created runs and counts
// them.
//
//gather:hotpath
func (e *Engine) adoptRun(r robot.Run) robot.Run {
	if r.ID == 0 {
		r.ID = e.nextRunID
		e.nextRunID++
		e.runsStart++
	}
	return r
}

// Run simulates until the swarm gathers, an invariant breaks, or the round
// limit is hit.
func (e *Engine) Run() Result {
	res := Result{InitialRobots: e.w.Len()}
	for !e.Gathered() {
		if e.cfg.MaxRounds > 0 && e.round >= e.cfg.MaxRounds {
			res.Err = ErrRoundLimit{Rounds: e.round}
			break
		}
		if err := e.Step(); err != nil {
			res.Err = err
			break
		}
	}
	res.Gathered = e.Gathered()
	res.Rounds = e.round
	res.Merges = e.merges
	res.Moves = e.moves
	res.RunsStarted = e.runsStart
	res.FinalRobots = e.w.Len()
	return res
}
