// Package fsync implements the round-based simulation engine. Its default
// time model is the paper's fully synchronous FSYNC: time is divided into
// equal rounds; in every round all robots simultaneously execute one
// look-compute-move cycle. The engine owns the global state, builds each
// robot's radius-limited view, applies all moves simultaneously, merges
// robots that end up on the same cell ("if two or more robots move to the
// same location they are merged to be only one robot"), delivers run-state
// transfers, and checks model invariants.
//
// A Config.Scheduler (internal/sched) relaxes the synchrony: each round
// only the scheduler's activation subset runs a look-compute-move cycle
// (SSYNC subsets, ASYNC wavefronts) while the remaining robots sleep in
// place, keeping their positions and run states. Activated robots then see
// a per-robot logical clock (their own completed cycle count) instead of
// the global round counter, so local-clock-driven rules like the every-L-th
// round run-start schedule remain meaningful without global synchrony.
// Under the default FSYNC model the logical clocks coincide with the global
// round counter, and a nil Scheduler takes a fast path that is bit-identical
// to the explicit FSYNC scheduler (proved by the determinism tests).
package fsync

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
	"gridgather/internal/view"
)

// Algorithm is a distributed robot program: a pure function from a local
// view to an action, executed synchronously by every robot every round.
type Algorithm interface {
	// Compute runs the compute step for one robot.
	Compute(v *view.View) Action
	// Radius returns the viewing radius (L1) the algorithm requires.
	Radius() int
}

// Config controls engine behaviour.
type Config struct {
	// MaxRounds aborts the simulation after this many rounds. 0 means no
	// limit (use with care); negative values are normalized to 0 by New.
	// Callers that want the standard limits should use DefaultBudget; the
	// public API rejects negative values outright.
	MaxRounds int
	// CheckConnectivity verifies after every CheckEvery rounds that the
	// swarm is still connected, and aborts with an error if not. The
	// paper's central safety property is that "robot movements must not
	// harm the (only globally checkable) swarm connectivity".
	CheckConnectivity bool
	// CheckEvery is the connectivity check period (default 1).
	CheckEvery int
	// StrictViews makes views panic on out-of-radius reads, proving the
	// algorithm local. Slightly slower; on by default in tests.
	StrictViews bool
	// NoMergeLimit aborts with ErrStuck when this many consecutive rounds
	// pass without a merge (0 disables). Gathering must merge at least
	// every O(L + n) rounds, so tests set a generous linear budget.
	NoMergeLimit int
	// OnRound, if non-nil, is called after every completed round with the
	// engine in its post-round state (used by tracing and tests).
	OnRound func(e *Engine)
	// Workers is the number of goroutines sharding the Look+Compute phase
	// of each round. 0 means runtime.GOMAXPROCS(0); 1 keeps the serial
	// path. The FSYNC model makes the phase embarrassingly parallel — every
	// robot runs the same pure function on the same immutable pre-round
	// snapshot — and results are combined in deterministic cell order, so
	// the outcome is bit-identical for every worker count. The Algorithm's
	// Compute must be safe for concurrent calls when Workers != 1
	// (core.Gatherer is: it only reads the view and bumps atomic counters).
	Workers int
	// Scheduler yields each round's activation set, generalizing the time
	// model to SSYNC/ASYNC (see internal/sched). nil means FSYNC — every
	// robot every round — via a fast path that skips the activation and
	// logical-clock bookkeeping entirely and is bit-identical to the
	// explicit sched.FSYNC() scheduler. Robots outside the activation set
	// sleep: they keep their position and run states unchanged (their runs
	// neither age nor glide) and can still receive transferred runs and be
	// merged onto. Budgets (MaxRounds, NoMergeLimit) should be scaled by
	// the scheduler's fairness bound; see DefaultBudget.Scale.
	Scheduler sched.Scheduler
}

// Result summarizes a simulation.
type Result struct {
	// Gathered reports whether the swarm reached a 2×2 square.
	Gathered bool
	// Rounds is the number of FSYNC rounds executed.
	Rounds int
	// Merges is the total number of robots removed by merges.
	Merges int
	// RunsStarted is the number of run states created.
	RunsStarted int
	// Moves is the total number of robot hops performed.
	Moves int
	// InitialRobots and FinalRobots count the population.
	InitialRobots, FinalRobots int
	// Err is non-nil if the simulation aborted (disconnection, stuck, or
	// round limit).
	Err error
}

// Engine drives one swarm under one algorithm.
type Engine struct {
	cfg   Config
	alg   Algorithm
	s     *swarm.Swarm
	state map[grid.Point]robot.State

	round      int
	merges     int
	moves      int
	runsStart  int
	nextRunID  int
	lastMerge  int
	roundMerge int // merges in the most recent round

	// Per-robot logical clocks, maintained only when a Scheduler is set:
	// clock[p] is the number of look-compute-move cycles the robot at p has
	// completed, fed to its view as the round number. Under FSYNC (nil
	// scheduler) the global round counter serves instead, identically.
	// clockScratch double-buffers with clock like the state maps do.
	clock        map[grid.Point]int
	clockScratch map[grid.Point]int

	// Scratch structures reused across rounds. Each Step fills them from
	// scratch, so the only requirement is that they are empty at the start
	// of the phase that uses them. stateScratch additionally double-buffers
	// with the live state map: the map that held the pre-round state becomes
	// the scratch for the next round once the post-round state is swapped
	// in. Nothing outside Step may retain references to them.
	order        []grid.Point // this round's activation set
	all          []grid.Point // full population (scheduled rounds only)
	sleep        []grid.Point // robots outside the activation set
	mask         []bool       // scheduler activation mask over e.all
	acts         []actionAt
	occScratch   map[grid.Point]int
	stateScratch map[grid.Point]robot.State
	transferSink map[grid.Point][]robot.Run
	transferList []pendingTransfer
	computeErrs  []error
}

// actionAt pairs a robot's pre-round position with its computed action.
type actionAt struct {
	from grid.Point
	act  Action
}

// pendingTransfer is a run hand-off collected during the move pass. It is
// delivered only if the sender survives the round without merging: run
// states of merged robots stop (Table 1, condition 3), including states the
// robot was handing off in the very round it merged.
type pendingTransfer struct {
	senderDst grid.Point // the sender's post-move cell; its occupancy decides the sender's fate
	to        grid.Point // the recipient cell (pre-round coordinates)
	run       robot.Run
}

// ErrDisconnected is returned when a round broke swarm connectivity.
type ErrDisconnected struct{ Round int }

func (e ErrDisconnected) Error() string {
	return fmt.Sprintf("fsync: swarm disconnected after round %d", e.Round)
}

// ErrStuck is returned when the watchdog sees no merge for too long.
type ErrStuck struct{ Round, SinceMerge int }

func (e ErrStuck) Error() string {
	return fmt.Sprintf("fsync: no merge for %d rounds (round %d)", e.SinceMerge, e.Round)
}

// ErrRoundLimit is returned when MaxRounds elapsed without gathering.
type ErrRoundLimit struct{ Rounds int }

func (e ErrRoundLimit) Error() string {
	return fmt.Sprintf("fsync: round limit %d reached before gathering", e.Rounds)
}

// New creates an engine simulating the given swarm (which it clones) under
// the given algorithm.
func New(s *swarm.Swarm, alg Algorithm, cfg Config) *Engine {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	if cfg.MaxRounds < 0 {
		cfg.MaxRounds = 0 // reserved: negative means the same as "no limit"
	}
	e := &Engine{
		cfg:          cfg,
		alg:          alg,
		s:            s.Clone(),
		state:        make(map[grid.Point]robot.State),
		nextRunID:    1,
		occScratch:   make(map[grid.Point]int, s.Len()),
		stateScratch: make(map[grid.Point]robot.State),
		transferSink: make(map[grid.Point][]robot.Run),
	}
	if cfg.Scheduler != nil {
		// All logical clocks start at zero (missing entry = 0).
		e.clock = make(map[grid.Point]int, s.Len())
		e.clockScratch = make(map[grid.Point]int, s.Len())
	}
	return e
}

// workers resolves the configured worker count for a round over n robots.
func (e *Engine) workers(n int) int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Swarm exposes the current swarm (read-only by convention).
func (e *Engine) Swarm() *swarm.Swarm { return e.s }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Merges returns the total robots removed so far.
func (e *Engine) Merges() int { return e.merges }

// RoundMerges returns the number of robots removed in the last round.
func (e *Engine) RoundMerges() int { return e.roundMerge }

// RunsStarted returns the number of run states created so far.
func (e *Engine) RunsStarted() int { return e.runsStart }

// StateAt returns the state of the robot at p (zero state if free).
func (e *Engine) StateAt(p grid.Point) robot.State { return e.state[p] }

// LocalRound returns the logical clock of the robot at p: the number of
// look-compute-move cycles it has completed. Under FSYNC (nil scheduler)
// every robot's clock equals Round().
func (e *Engine) LocalRound(p grid.Point) int { return e.localRound(p) }

// localRound resolves the round number a robot's view reports: the global
// round under FSYNC, the robot's own logical clock under a scheduler.
func (e *Engine) localRound(p grid.Point) int {
	if e.cfg.Scheduler == nil {
		return e.round
	}
	return e.clock[p]
}

// Runners returns the positions of all robots currently holding run states,
// in deterministic order.
func (e *Engine) Runners() []grid.Point {
	var out []grid.Point
	for p, st := range e.state {
		if st.HasRuns() {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SetRound overrides the round counter (test scaffolding: starting at a
// round that is not a multiple of L suppresses run starts while planted
// run states are observed).
func (e *Engine) SetRound(r int) { e.round = r }

// SetState overrides the state of the robot at p (test scaffolding for
// constructing mid-run scenarios).
func (e *Engine) SetState(p grid.Point, st robot.State) {
	if !e.s.Has(p) {
		panic("fsync: SetState on free cell")
	}
	if st.HasRuns() {
		for i := range st.Runs {
			if st.Runs[i].ID == 0 {
				st.Runs[i].ID = e.nextRunID
				e.nextRunID++
			}
		}
		e.state[p] = st
	} else {
		delete(e.state, p)
	}
}

// Gathered reports whether the swarm fits in a 2×2 square.
func (e *Engine) Gathered() bool { return e.s.Gathered() }

// viewConfig builds the view accessor bundle against current state.
func (e *Engine) viewConfig() view.Config {
	return view.Config{
		Radius:  e.alg.Radius(),
		Checked: e.cfg.StrictViews,
		Occ:     e.s.Has,
		State:   func(p grid.Point) robot.State { return e.state[p] },
	}
}

// computeRange runs Look+Compute for the robots e.order[lo:hi), writing
// each action to e.acts at the robot's index. One reusable view per call
// keeps the phase allocation-free; disjoint index ranges keep concurrent
// calls race-free and the combined result independent of the sharding.
func (e *Engine) computeRange(vc view.Config, lo, hi int) error {
	v := view.New(vc, grid.Zero, e.round)
	for i := lo; i < hi; i++ {
		p := e.order[i]
		v.Reposition(p, e.localRound(p))
		a := e.alg.Compute(v)
		if a.Move.Linf() > 1 {
			return fmt.Errorf("fsync: robot at %v attempted move %v exceeding one cell", p, a.Move)
		}
		e.acts[i] = actionAt{from: p, act: a}
	}
	return nil
}

// Step executes one round. It returns an error if an invariant broke.
func (e *Engine) Step() error {
	vc := e.viewConfig()
	scheduled := e.cfg.Scheduler != nil

	// Activation: under FSYNC every robot runs a full look-compute-move
	// cycle every round; a Scheduler restricts the round to its activation
	// subset, and the rest of the swarm sleeps in place.
	e.order = e.order[:0]
	e.sleep = e.sleep[:0]
	if !scheduled {
		e.order = append(e.order, e.s.Cells()...)
	} else {
		e.all = append(e.all[:0], e.s.Cells()...)
		if cap(e.mask) < len(e.all) {
			e.mask = make([]bool, len(e.all))
		}
		mask := e.mask[:len(e.all)]
		clear(mask)
		e.cfg.Scheduler.Activate(e.round, e.all, mask)
		for i, p := range e.all {
			if mask[i] {
				e.order = append(e.order, p)
			} else {
				e.sleep = append(e.sleep, p)
			}
		}
	}

	// Look + Compute: every activated robot simultaneously, from the same
	// snapshot. The pre-round state is immutable during this phase, so no
	// cloning is required — the phase shards freely across workers, each
	// writing its robots' actions to fixed indices of e.acts.
	n := len(e.order)
	if cap(e.acts) < n {
		e.acts = make([]actionAt, n)
	}
	e.acts = e.acts[:n]
	if workers := e.workers(n); workers == 1 {
		if err := e.computeRange(vc, 0, n); err != nil {
			return err
		}
	} else {
		if cap(e.computeErrs) < workers {
			e.computeErrs = make([]error, workers)
		}
		errs := e.computeErrs[:workers]
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				errs[w] = e.computeRange(vc, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for w := range errs {
			// The lowest shard's error wins, matching what the serial loop
			// would have reported first.
			if errs[w] != nil {
				return errs[w]
			}
		}
	}
	acts := e.acts

	// Move: apply all hops simultaneously. The scratch maps were emptied at
	// the end of the previous Step (occ/transfers) or hold the now-dead
	// state of two rounds ago (stateScratch/clockScratch, cleared here).
	newOcc := e.occScratch     // arrival count
	newState := e.stateScratch // survivor states
	transfers := e.transferSink
	clear(newOcc)
	clear(newState)
	clear(transfers)
	e.transferList = e.transferList[:0]
	var newClock map[grid.Point]int
	if scheduled {
		newClock = e.clockScratch
		clear(newClock)
	}
	moved := 0
	for _, c := range acts {
		dst := c.from.Add(c.act.Move)
		if dst != c.from {
			moved++
		}
		newOcc[dst]++
		if newOcc[dst] == 1 {
			// Sole arrival so far: provisional survivor keeps its runs.
			if len(c.act.Keep) > 0 {
				runs := make([]robot.Run, 0, len(c.act.Keep))
				for _, r := range c.act.Keep {
					runs = append(runs, e.adoptRun(r))
				}
				newState[dst] = robot.State{Runs: runs}
			}
		} else {
			// Collision: robots merge; run states of merged robots stop
			// (Table 1, condition 3/6).
			delete(newState, dst)
		}
		if scheduled {
			// The cycle completes: the robot's logical clock ticks. A
			// merged cell keeps the largest arriving clock (deterministic
			// regardless of arrival order).
			if cl := e.clock[c.from] + 1; cl > newClock[dst] {
				newClock[dst] = cl
			}
		}
		for _, tr := range c.act.Transfers {
			// Collected, not yet delivered: whether the hand-off succeeds
			// depends on the sender not merging this round, which is known
			// only after all arrivals are counted. Adoption (ID assignment,
			// RunsStarted accounting) happens at resolution so a dropped
			// hand-off of a brand-new run is never counted as started.
			e.transferList = append(e.transferList, pendingTransfer{
				senderDst: dst,
				to:        c.from.Add(tr.To),
				run:       tr.Run,
			})
		}
	}

	// Sleeping robots stand still, keeping their run states (frozen, not
	// aged) and logical clocks. They still merge if an activated robot
	// lands on their cell.
	for _, p := range e.sleep {
		newOcc[p]++
		if newOcc[p] == 1 {
			if st := e.state[p]; st.HasRuns() {
				newState[p] = st
			}
		} else {
			delete(newState, p)
		}
		if cl := e.clock[p]; cl > newClock[p] {
			newClock[p] = cl
		}
	}

	// Merge accounting: every cell keeps exactly one robot.
	removed := 0
	next := swarm.NewSized(len(newOcc))
	for dst, cnt := range newOcc {
		next.Add(dst)
		if cnt > 1 {
			removed += cnt - 1
		}
	}

	// Resolve the collected hand-offs now that every robot's fate is known:
	// a sender that merged this round loses all its runs (Table 1,
	// condition 3), so its hand-offs die with it. Surviving transfers are
	// adopted in collection order, keeping run IDs deterministic.
	for _, t := range e.transferList {
		if newOcc[t.senderDst] != 1 {
			continue
		}
		transfers[t.to] = append(transfers[t.to], e.adoptRun(t.run))
	}

	// Deliver transfers to robots occupying the target cells after moves.
	// Targets that merged this round do not accept states (the run was
	// interrupted by the merge); targets that are empty drop the state.
	for to, runs := range transfers {
		if newOcc[to] != 1 {
			continue
		}
		st := newState[to]
		// Deterministic delivery order.
		sort.Slice(runs, func(i, j int) bool { return runs[i].ID < runs[j].ID })
		for _, r := range runs {
			if len(st.Runs) >= robot.MaxRuns {
				break
			}
			st.Runs = append(st.Runs, r)
		}
		if st.HasRuns() {
			newState[to] = st
		}
	}

	e.s = next
	// Double-buffer the state (and clock) maps: the pre-round maps become
	// next round's scratch.
	e.state, e.stateScratch = newState, e.state
	if scheduled {
		e.clock, e.clockScratch = newClock, e.clock
	}
	e.round++
	e.moves += moved
	e.merges += removed
	e.roundMerge = removed
	if removed > 0 {
		e.lastMerge = e.round
	}

	if e.cfg.CheckConnectivity && e.round%e.cfg.CheckEvery == 0 {
		if !e.s.Connected() {
			return ErrDisconnected{Round: e.round}
		}
	}
	if e.cfg.NoMergeLimit > 0 && e.round-e.lastMerge >= e.cfg.NoMergeLimit && !e.Gathered() {
		return ErrStuck{Round: e.round, SinceMerge: e.round - e.lastMerge}
	}
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(e)
	}
	return nil
}

// adoptRun assigns an engine-unique ID to newly created runs and counts
// them.
func (e *Engine) adoptRun(r robot.Run) robot.Run {
	if r.ID == 0 {
		r.ID = e.nextRunID
		e.nextRunID++
		e.runsStart++
	}
	return r
}

// Run simulates until the swarm gathers, an invariant breaks, or the round
// limit is hit.
func (e *Engine) Run() Result {
	res := Result{InitialRobots: e.s.Len()}
	for !e.Gathered() {
		if e.cfg.MaxRounds > 0 && e.round >= e.cfg.MaxRounds {
			res.Err = ErrRoundLimit{Rounds: e.round}
			break
		}
		if err := e.Step(); err != nil {
			res.Err = err
			break
		}
	}
	res.Gathered = e.Gathered()
	res.Rounds = e.round
	res.Merges = e.merges
	res.Moves = e.moves
	res.RunsStarted = e.runsStart
	res.FinalRobots = e.s.Len()
	return res
}
