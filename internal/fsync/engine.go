// Package fsync implements the round-based simulation engine. Its default
// time model is the paper's fully synchronous FSYNC: time is divided into
// equal rounds; in every round all robots simultaneously execute one
// look-compute-move cycle. The engine owns the global state, builds each
// robot's radius-limited view, applies all moves simultaneously, merges
// robots that end up on the same cell ("if two or more robots move to the
// same location they are merged to be only one robot"), delivers run-state
// transfers, and checks model invariants.
//
// The global state lives in a world.Backend: by default the dense tiled
// bitset backend (O(1) occupancy reads, flat slot-indexed run states and
// logical clocks, an incrementally maintained sorted cell order), with the
// original map representation available as world.MapKind for
// differential testing — the determinism tests prove both backends
// bit-identical round by round.
//
// A Config.Scheduler (internal/sched) relaxes the synchrony: each round
// only the scheduler's activation subset runs a look-compute-move cycle
// (SSYNC subsets, ASYNC wavefronts) while the remaining robots sleep in
// place, keeping their positions and run states. Activated robots then see
// a per-robot logical clock (their own completed cycle count) instead of
// the global round counter, so local-clock-driven rules like the every-L-th
// round run-start schedule remain meaningful without global synchrony.
// Under the default FSYNC model the logical clocks coincide with the global
// round counter, and a nil Scheduler takes a fast path that is bit-identical
// to the explicit FSYNC scheduler (proved by the determinism tests).
package fsync

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
	"gridgather/internal/view"
	"gridgather/internal/world"
)

// Algorithm is a distributed robot program: a pure function from a local
// view to an action, executed synchronously by every robot every round.
type Algorithm interface {
	// Compute runs the compute step for one robot.
	Compute(v *view.View) Action
	// Radius returns the viewing radius (L1) the algorithm requires.
	Radius() int
}

// Config controls engine behaviour.
type Config struct {
	// MaxRounds aborts the simulation after this many rounds. 0 means no
	// limit (use with care); negative values are normalized to 0 by New.
	// Callers that want the standard limits should use DefaultBudget; the
	// public API rejects negative values outright.
	MaxRounds int
	// CheckConnectivity verifies after every CheckEvery rounds that the
	// swarm is still connected, and aborts with an error if not. The
	// paper's central safety property is that "robot movements must not
	// harm the (only globally checkable) swarm connectivity".
	CheckConnectivity bool
	// CheckEvery is the connectivity check period (default 1).
	CheckEvery int
	// StrictViews makes views panic on out-of-radius reads, proving the
	// algorithm local. Slightly slower; on by default in tests.
	StrictViews bool
	// NoMergeLimit aborts with ErrStuck when this many consecutive rounds
	// pass without a merge (0 disables). Gathering must merge at least
	// every O(L + n) rounds, so tests set a generous linear budget.
	NoMergeLimit int
	// OnRound, if non-nil, is called after every completed round with the
	// engine in its post-round state (used by tracing and tests).
	OnRound func(e *Engine)
	// Workers is the number of goroutines sharding the Look+Compute phase
	// of each round. 0 means runtime.GOMAXPROCS(0); 1 keeps the serial
	// path. The FSYNC model makes the phase embarrassingly parallel — every
	// robot runs the same pure function on the same immutable pre-round
	// snapshot — and results are combined in deterministic cell order, so
	// the outcome is bit-identical for every worker count. The Algorithm's
	// Compute must be safe for concurrent calls when Workers != 1
	// (core.Gatherer is: it only reads the view and bumps atomic counters).
	Workers int
	// Scheduler yields each round's activation set, generalizing the time
	// model to SSYNC/ASYNC (see internal/sched). nil means FSYNC — every
	// robot every round — via a fast path that skips the activation and
	// logical-clock bookkeeping entirely and is bit-identical to the
	// explicit sched.FSYNC() scheduler. Robots outside the activation set
	// sleep: they keep their position and run states unchanged (their runs
	// neither age nor glide) and can still receive transferred runs and be
	// merged onto. Budgets (MaxRounds, NoMergeLimit) should be scaled by
	// the scheduler's fairness bound; see DefaultBudget.Scale.
	Scheduler sched.Scheduler
	// Backend selects the world representation: world.DenseKind (the
	// tiled bitset backend, default) or world.MapKind (the original map
	// representation, kept as the differential-testing oracle). Both are
	// bit-identical round by round; the map oracle is the slow reference.
	Backend world.Kind
}

// Result summarizes a simulation.
type Result struct {
	// Gathered reports whether the swarm reached a 2×2 square.
	Gathered bool
	// Rounds is the number of FSYNC rounds executed.
	Rounds int
	// Merges is the total number of robots removed by merges.
	Merges int
	// RunsStarted is the number of run states created.
	RunsStarted int
	// Moves is the total number of robot hops performed.
	Moves int
	// InitialRobots and FinalRobots count the population.
	InitialRobots, FinalRobots int
	// Err is non-nil if the simulation aborted (disconnection, stuck, or
	// round limit).
	Err error
}

// Engine drives one swarm under one algorithm.
type Engine struct {
	cfg   Config
	alg   Algorithm
	w     world.Backend
	dense *world.Dense // non-nil when w is the dense backend (view fast path)

	round      int
	merges     int
	moves      int
	runsStart  int
	nextRunID  int
	lastMerge  int
	roundMerge int // merges in the most recent round

	// Scratch structures reused across rounds. Each Step fills them from
	// scratch; nothing outside Step may retain references to them.
	order        []grid.Point // this round's activation set
	sleep        []grid.Point // robots outside the activation set
	mask         []bool       // scheduler activation mask over the cell order
	acts         []actionAt
	transferList []pendingTransfer
	freshKeeps   []grid.Point
	deliver      deliverSlice
	runScratch   [robot.MaxRuns + 2]robot.Run
	computeErrs  []error
}

// actionAt pairs a robot's pre-round position with its computed action.
type actionAt struct {
	from grid.Point
	act  Action
}

// pendingTransfer is a run hand-off collected during the move pass. It is
// delivered only if the sender survives the round without merging: run
// states of merged robots stop (Table 1, condition 3), including states the
// robot was handing off in the very round it merged.
type pendingTransfer struct {
	senderDst grid.Point // the sender's post-move cell; its occupancy decides the sender's fate
	to        grid.Point // the recipient cell (pre-round coordinates)
	run       robot.Run
}

// deliveredRun is a surviving, adopted hand-off awaiting delivery.
type deliveredRun struct {
	to  grid.Point
	run robot.Run
}

// deliverSlice sorts surviving hand-offs by recipient cell, then run ID —
// grouping per-recipient deliveries in deterministic ID order. Pointer
// receivers keep the sort.Sort call allocation-free.
type deliverSlice []deliveredRun

func (d *deliverSlice) Len() int { return len(*d) }

func (d *deliverSlice) Swap(i, j int) { s := *d; s[i], s[j] = s[j], s[i] }

func (d *deliverSlice) Less(i, j int) bool {
	s := *d
	if s[i].to != s[j].to {
		return s[i].to.Less(s[j].to)
	}
	return s[i].run.ID < s[j].run.ID
}

// ErrDisconnected is returned when a round broke swarm connectivity.
type ErrDisconnected struct{ Round int }

func (e ErrDisconnected) Error() string {
	return fmt.Sprintf("fsync: swarm disconnected after round %d", e.Round)
}

// ErrStuck is returned when the watchdog sees no merge for too long.
type ErrStuck struct{ Round, SinceMerge int }

func (e ErrStuck) Error() string {
	return fmt.Sprintf("fsync: no merge for %d rounds (round %d)", e.SinceMerge, e.Round)
}

// ErrRoundLimit is returned when MaxRounds elapsed without gathering.
type ErrRoundLimit struct{ Rounds int }

func (e ErrRoundLimit) Error() string {
	return fmt.Sprintf("fsync: round limit %d reached before gathering", e.Rounds)
}

// New creates an engine simulating the given swarm (which it does not
// retain) under the given algorithm.
func New(s *swarm.Swarm, alg Algorithm, cfg Config) *Engine {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	if cfg.MaxRounds < 0 {
		cfg.MaxRounds = 0 // reserved: negative means the same as "no limit"
	}
	e := &Engine{
		cfg:       cfg,
		alg:       alg,
		w:         world.New(cfg.Backend, s, cfg.Scheduler != nil),
		nextRunID: 1,
	}
	e.dense, _ = e.w.(*world.Dense)
	return e
}

// workers resolves the configured worker count for a round over n robots.
func (e *Engine) workers(n int) int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Swarm exposes the current occupancy as a swarm. With the dense backend
// this builds a fresh snapshot, so avoid calling it per round on hot
// paths; with the map oracle it is the live (read-only by convention)
// swarm.
func (e *Engine) Swarm() *swarm.Swarm { return e.w.Snapshot() }

// World exposes the engine's state backend (read-only by convention).
func (e *Engine) World() world.Backend { return e.w }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Merges returns the total robots removed so far.
func (e *Engine) Merges() int { return e.merges }

// RoundMerges returns the number of robots removed in the last round.
func (e *Engine) RoundMerges() int { return e.roundMerge }

// RunsStarted returns the number of run states created so far.
func (e *Engine) RunsStarted() int { return e.runsStart }

// StateAt returns the state of the robot at p (zero state if free).
func (e *Engine) StateAt(p grid.Point) robot.State { return e.w.StateAt(p) }

// LocalRound returns the logical clock of the robot at p: the number of
// look-compute-move cycles it has completed. Under FSYNC (nil scheduler)
// every robot's clock equals Round().
func (e *Engine) LocalRound(p grid.Point) int { return e.localRound(p) }

// localRound resolves the round number a robot's view reports: the global
// round under FSYNC, the robot's own logical clock under a scheduler.
func (e *Engine) localRound(p grid.Point) int {
	if e.cfg.Scheduler == nil {
		return e.round
	}
	return e.w.ClockAt(p)
}

// Runners returns the positions of all robots currently holding run states,
// in deterministic order.
func (e *Engine) Runners() []grid.Point {
	var out []grid.Point
	for _, p := range e.w.Cells() {
		if e.w.StateAt(p).HasRuns() {
			out = append(out, p)
		}
	}
	return out
}

// SetRound overrides the round counter (test scaffolding: starting at a
// round that is not a multiple of L suppresses run starts while planted
// run states are observed).
func (e *Engine) SetRound(r int) { e.round = r }

// SetState overrides the state of the robot at p (test scaffolding for
// constructing mid-run scenarios).
func (e *Engine) SetState(p grid.Point, st robot.State) {
	if !e.w.Has(p) {
		panic("fsync: SetState on free cell")
	}
	for i := range st.Runs {
		if st.Runs[i].ID == 0 {
			st.Runs[i].ID = e.nextRunID
			e.nextRunID++
		}
	}
	e.w.SetState(p, st)
}

// Gathered reports whether the swarm fits in a 2×2 square.
func (e *Engine) Gathered() bool { return e.w.Gathered() }

// viewConfig builds the view accessor bundle against current state: the
// direct bitset fast path for the dense backend, closures otherwise.
func (e *Engine) viewConfig() view.Config {
	vc := view.Config{
		Radius:  e.alg.Radius(),
		Checked: e.cfg.StrictViews,
	}
	if e.dense != nil {
		vc.Dense = e.dense
	} else {
		vc.Occ = e.w.Has
		vc.State = e.w.StateAt
	}
	return vc
}

// computeRange runs Look+Compute for the robots e.order[lo:hi), writing
// each action to e.acts at the robot's index. One reusable view per call
// keeps the phase allocation-free; disjoint index ranges keep concurrent
// calls race-free and the combined result independent of the sharding.
func (e *Engine) computeRange(vc view.Config, lo, hi int) error {
	v := view.New(vc, grid.Zero, e.round)
	for i := lo; i < hi; i++ {
		p := e.order[i]
		v.Reposition(p, e.localRound(p))
		a := e.alg.Compute(v)
		if a.Move.Linf() > 1 {
			return fmt.Errorf("fsync: robot at %v attempted move %v exceeding one cell", p, a.Move)
		}
		e.acts[i] = actionAt{from: p, act: a}
	}
	return nil
}

// Step executes one round. It returns an error if an invariant broke.
func (e *Engine) Step() error {
	vc := e.viewConfig()
	scheduled := e.cfg.Scheduler != nil

	// Activation: under FSYNC every robot runs a full look-compute-move
	// cycle every round; a Scheduler restricts the round to its activation
	// subset, and the rest of the swarm sleeps in place. The backend keeps
	// the cell order sorted incrementally, so no per-round re-sort happens
	// on either path.
	cells := e.w.Cells()
	e.order = e.order[:0]
	e.sleep = e.sleep[:0]
	if !scheduled {
		e.order = append(e.order, cells...)
	} else {
		slots := e.w.Slots()
		if cap(e.mask) < len(cells) {
			e.mask = make([]bool, len(cells))
		}
		mask := e.mask[:len(cells)]
		clear(mask)
		e.cfg.Scheduler.Activate(e.round, cells, slots, mask)
		for i, p := range cells {
			if mask[i] {
				e.order = append(e.order, p)
			} else {
				e.sleep = append(e.sleep, p)
			}
		}
	}

	// Look + Compute: every activated robot simultaneously, from the same
	// snapshot. The pre-round state is immutable during this phase, so no
	// cloning is required — the phase shards freely across workers, each
	// writing its robots' actions to fixed indices of e.acts.
	n := len(e.order)
	if cap(e.acts) < n {
		e.acts = make([]actionAt, n)
	}
	e.acts = e.acts[:n]
	if workers := e.workers(n); workers == 1 {
		if err := e.computeRange(vc, 0, n); err != nil {
			return err
		}
	} else {
		if cap(e.computeErrs) < workers {
			e.computeErrs = make([]error, workers)
		}
		errs := e.computeErrs[:workers]
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				errs[w] = e.computeRange(vc, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for w := range errs {
			// The lowest shard's error wins, matching what the serial loop
			// would have reported first.
			if errs[w] != nil {
				return errs[w]
			}
		}
	}

	// Move: apply all hops simultaneously through the backend's arrival
	// protocol. The first arrival at a cell is the provisional survivor
	// and keeps its runs; any later arrival is a merge — run states of
	// merged robots stop (Table 1, condition 3/6).
	e.w.BeginRound()
	e.transferList = e.transferList[:0]
	e.freshKeeps = e.freshKeeps[:0]
	moved, arrivals := 0, 0
	for i := range e.acts {
		c := &e.acts[i]
		dst := c.from.Add(c.act.Move)
		if dst != c.from {
			moved++
		}
		var cl int
		if scheduled {
			// The cycle completes: the robot's logical clock ticks. A
			// merged cell keeps the largest arriving clock (deterministic
			// regardless of arrival order).
			cl = e.w.ClockAt(c.from) + 1
		}
		if e.w.Arrive(c.from, dst) == 1 {
			keep := c.act.Keep()
			e.w.SetArrivalState(dst, robot.State{Runs: keep})
			for _, r := range keep {
				if r.ID == 0 {
					// Brand-new kept run: adoption (ID, RunsStarted) waits
					// until the keeper's merge fate is known, like the
					// transfer hand-offs below.
					e.freshKeeps = append(e.freshKeeps, dst)
					break
				}
			}
		}
		if scheduled {
			e.w.RaiseClock(dst, cl)
		}
		arrivals++
		for _, tr := range c.act.Transfers() {
			// Collected, not yet delivered: whether the hand-off succeeds
			// depends on the sender not merging this round, which is known
			// only after all arrivals are counted. Adoption (ID assignment,
			// RunsStarted accounting) happens at resolution so a dropped
			// hand-off of a brand-new run is never counted as started.
			e.transferList = append(e.transferList, pendingTransfer{
				senderDst: dst,
				to:        c.from.Add(tr.To),
				run:       tr.Run,
			})
		}
	}

	// Sleeping robots stand still, keeping their run states (frozen, not
	// aged) and logical clocks. They still merge if an activated robot
	// lands on their cell.
	e.w.BeginSleep()
	for _, p := range e.sleep {
		var cl int
		if scheduled {
			cl = e.w.ClockAt(p)
		}
		e.w.Sleep(p)
		if scheduled {
			e.w.RaiseClock(p, cl)
		}
		arrivals++
	}

	// Adopt brand-new kept runs now that every robot's fate is known: a
	// robot that kept a fresh run but was merged onto this round never
	// started it (Table 1, condition 3 — the merge clears its pending
	// state), so only surviving keepers get IDs and RunsStarted credit.
	for _, dst := range e.freshKeeps {
		if e.w.ArrivalCount(dst) != 1 {
			continue
		}
		st := e.w.ArrivalState(dst)
		rb := e.runScratch[:0]
		for _, r := range st.Runs {
			rb = append(rb, e.adoptRun(r))
		}
		e.w.SetArrivalState(dst, robot.State{Runs: rb})
	}

	// Resolve the collected hand-offs now that every robot's fate is known:
	// a sender that merged this round loses all its runs (Table 1,
	// condition 3), so its hand-offs die with it. Surviving transfers are
	// adopted in collection order, keeping run IDs deterministic.
	e.deliver = e.deliver[:0]
	for _, t := range e.transferList {
		if e.w.ArrivalCount(t.senderDst) != 1 {
			continue
		}
		e.deliver = append(e.deliver, deliveredRun{to: t.to, run: e.adoptRun(t.run)})
	}

	// Deliver transfers to robots occupying the target cells after moves.
	// Targets that merged this round do not accept states (the run was
	// interrupted by the merge); targets that are empty drop the state.
	// Per-target delivery runs in ascending run-ID order.
	sort.Sort(&e.deliver)
	for i := 0; i < len(e.deliver); {
		to := e.deliver[i].to
		j := i
		for j < len(e.deliver) && e.deliver[j].to == to {
			j++
		}
		if e.w.ArrivalCount(to) == 1 {
			st := e.w.ArrivalState(to)
			rb := append(e.runScratch[:0], st.Runs...)
			for k := i; k < j; k++ {
				if len(rb) >= robot.MaxRuns {
					break
				}
				rb = append(rb, e.deliver[k].run)
			}
			e.w.SetArrivalState(to, robot.State{Runs: rb})
		}
		i = j
	}

	e.w.Commit()
	removed := arrivals - e.w.Len()
	e.round++
	e.moves += moved
	e.merges += removed
	e.roundMerge = removed
	if removed > 0 {
		e.lastMerge = e.round
	}

	if e.cfg.CheckConnectivity && e.round%e.cfg.CheckEvery == 0 {
		if !e.w.Connected() {
			return ErrDisconnected{Round: e.round}
		}
	}
	if e.cfg.NoMergeLimit > 0 && e.round-e.lastMerge >= e.cfg.NoMergeLimit && !e.Gathered() {
		return ErrStuck{Round: e.round, SinceMerge: e.round - e.lastMerge}
	}
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(e)
	}
	return nil
}

// adoptRun assigns an engine-unique ID to newly created runs and counts
// them.
func (e *Engine) adoptRun(r robot.Run) robot.Run {
	if r.ID == 0 {
		r.ID = e.nextRunID
		e.nextRunID++
		e.runsStart++
	}
	return r
}

// Run simulates until the swarm gathers, an invariant breaks, or the round
// limit is hit.
func (e *Engine) Run() Result {
	res := Result{InitialRobots: e.w.Len()}
	for !e.Gathered() {
		if e.cfg.MaxRounds > 0 && e.round >= e.cfg.MaxRounds {
			res.Err = ErrRoundLimit{Rounds: e.round}
			break
		}
		if err := e.Step(); err != nil {
			res.Err = err
			break
		}
	}
	res.Gathered = e.Gathered()
	res.Rounds = e.round
	res.Merges = e.merges
	res.Moves = e.moves
	res.RunsStarted = e.runsStart
	res.FinalRobots = e.w.Len()
	return res
}
