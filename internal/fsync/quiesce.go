// Quiescence-driven rounds: the engine half of the dirty-region fast path
// (the world half is internal/world/quiesce.go). The paper's strategy
// moves only boundary robots, so a dense swarm's interior recomputes
// "stay" every round; this layer replays those cached verdicts and makes
// per-round compute cost scale with the moving frontier instead of n.
//
// Division of labor per round:
//
//	activate   newly crashed cells view-dirty their region (the crash is
//	           visible to this round's views)
//	compute    workers consult Dense.QuiesceSkip per activation and record
//	           each robot's disposition in qFlags (skip / noisy / had runs)
//	post-pass  quiescePost (serial): records clean verdicts via
//	           QuiesceNote, then applies the deferred view-dirty marks for
//	           state changes the commit diff can't see (run aging and
//	           departures via had-runs, run starts via keeps)
//	resolve    merges onto occupancy-stable cells and delivered transfers
//	           add their own marks (serially, after the lanes join)
//	commit     Dense.noteRoundDiff dilates every occupancy change by the
//	           view radius into the dirty planes for the next round
//
// The skip is exact, not approximate: the differential suite steps
// quiescent and full-recompute engines in lockstep and demands bit
// identity (cells, slots, run states + IDs, clocks, counters, final
// Result) across the workload corpus × scheduler families × worker
// counts × fault plans.
//
//gather:deterministic
package fsync

// qFlags disposition bits, written per activation index by the compute
// workers (disjoint indices — race-free) and drained by quiescePost.
const (
	qfSkip    = 1 << iota // replayed the cached quiescent Stay
	qfNoisy               // view was noise-perturbed; verdict not cacheable
	qfHadRuns             // robot carried runs entering the round
)

// QuiesceStats reports the quiescence layer's lifetime counters.
type QuiesceStats struct {
	// Enabled reports whether the fast path is active (algorithm is
	// Periodic, FullRecompute and StrictViews are off).
	Enabled bool
	// Computed counts activations that ran Look+Compute; Skipped counts
	// activations that replayed the cached quiescent action.
	Computed, Skipped int
}

// Ratio returns the fraction of activations skipped (0 when none ran).
func (s QuiesceStats) Ratio() float64 {
	if t := s.Computed + s.Skipped; t > 0 {
		return float64(s.Skipped) / float64(t)
	}
	return 0
}

// QuiesceStats returns the engine's quiescence counters.
func (e *Engine) QuiesceStats() QuiesceStats {
	return QuiesceStats{Enabled: e.qOn, Computed: e.qComputed, Skipped: e.qSkipped}
}

// initQuiesce enables the quiescence fast path when it is sound: the
// algorithm declares a round period (Periodic) small enough for the
// 32-bit verdict masks, its radius fits the dirty planes' dilation window,
// FullRecompute is off, and views are not strict (a skipped robot proves
// no locality, so StrictViews must see every compute). Shared by New and
// NewRestored; restored engines start with empty masks, which is always
// sound — every robot recomputes until fresh verdicts accumulate.
func (e *Engine) initQuiesce() {
	if e.cfg.FullRecompute || e.cfg.StrictViews {
		return
	}
	p, ok := e.alg.(Periodic)
	if !ok {
		return
	}
	period := p.RoundPeriod()
	if period < 1 || period > 32 {
		return
	}
	if r := e.alg.Radius(); r >= 1 && r <= 63 {
		e.qOn = true
		e.qPeriod = period
		e.w.EnableQuiescence(r)
	}
}

// quiescePost is the serial post-compute pass: one sweep over the round's
// disposition bytes. Skipped robots cost a counter bump; each computed
// robot with a clean (noise-free) view records its verdict — consuming
// its cell's dirty bit — and robots whose state the commit diff cannot
// observe (runs aging or departing in place, runs starting via keeps)
// queue view-dirty marks. The marks apply only after every verdict is
// recorded: applying them inline could set a dirty bit that a later
// robot's QuiesceNote would wrongly consume as its own.
//
//gather:hotpath
func (e *Engine) quiescePost() {
	if !e.qOn {
		return
	}
	marks := e.qMarks[:0]
	for i := range e.acts {
		f := e.qFlags[i]
		if f&qfSkip != 0 {
			e.qSkipped++
			continue
		}
		e.qComputed++
		a := &e.acts[i]
		hadRuns := f&qfHadRuns != 0
		if f&qfNoisy == 0 {
			e.w.QuiesceNote(a.from, e.localRound(a.from)%e.qPeriod, !hadRuns && a.act.quiescent())
		}
		if hadRuns {
			// The robot's runs age, glide or hand off this round; even if
			// another robot re-occupies the cell (occupancy-stable under
			// the commit diff), the neighbors' views change.
			marks = append(marks, a.from) //gather:alloc-ok length-reset per round, steady-state reuse
		}
		if a.act.nKeep > 0 {
			marks = append(marks, a.from.Add(a.act.Move)) //gather:alloc-ok length-reset per round, steady-state reuse
		}
	}
	for _, p := range marks {
		e.w.MarkViewDirty(p)
	}
	e.qMarks = marks
}
