// Scheduler integration tests: the FSYNC scheduler must be bit-identical
// to the engine's nil-scheduler fast path (which is the pre-refactor FSYNC
// engine) round by round for every worker count, and the relaxed SSYNC and
// ASYNC schedulers must gather the whole workload corpus without ever
// violating swarm connectivity. Like parallel_test.go this lives in an
// external test package so it can drive the real algorithm.
package fsync_test

import (
	"fmt"
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// stepCompare steps two engines in lockstep and fails on the first
// divergence in occupancy or per-robot run states.
func stepCompare(t *testing.T, a, b *fsync.Engine, maxRounds int) {
	t.Helper()
	for r := 0; r < maxRounds && !a.Gathered(); r++ {
		if err := a.Step(); err != nil {
			t.Fatalf("reference step %d: %v", r, err)
		}
		if err := b.Step(); err != nil {
			t.Fatalf("candidate step %d: %v", r, err)
		}
		if !a.Swarm().Equal(b.Swarm()) {
			t.Fatalf("round %d: occupancy diverged\nreference:\n%s\ncandidate:\n%s",
				a.Round(), a.Swarm(), b.Swarm())
		}
		if a.Merges() != b.Merges() || a.RunsStarted() != b.RunsStarted() {
			t.Fatalf("round %d: counters diverged: merges %d vs %d, runs %d vs %d",
				a.Round(), a.Merges(), b.Merges(), a.RunsStarted(), b.RunsStarted())
		}
		for _, p := range a.Swarm().Cells() {
			sa, sb := a.StateAt(p), b.StateAt(p)
			if len(sa.Runs) != len(sb.Runs) {
				t.Fatalf("round %d: run count at %v diverged: %d vs %d",
					a.Round(), p, len(sa.Runs), len(sb.Runs))
			}
			for i := range sa.Runs {
				if sa.Runs[i] != sb.Runs[i] {
					t.Fatalf("round %d: run state at %v diverged: %v vs %v",
						a.Round(), p, sa.Runs[i], sb.Runs[i])
				}
			}
			if la, lb := a.LocalRound(p), b.LocalRound(p); la != lb {
				t.Fatalf("round %d: logical clock at %v diverged: %d vs %d",
					a.Round(), p, la, lb)
			}
		}
	}
	if !a.Gathered() || !b.Gathered() {
		t.Fatalf("round budget exhausted: reference gathered=%v candidate gathered=%v",
			a.Gathered(), b.Gathered())
	}
}

// TestFSYNCSchedulerBitIdentical proves the tentpole's refactor invariant:
// the engine with an explicit FSYNC scheduler (general activation-set path,
// logical clocks and all) reproduces the nil-scheduler fast path — i.e. the
// pre-refactor engine — bit-identically round by round, for every worker
// count on either side.
func TestFSYNCSchedulerBitIdentical(t *testing.T) {
	workloads := []struct {
		name  string
		build func() *swarm.Swarm
	}{
		{"line", func() *swarm.Swarm { return gen.Line(70) }},
		{"hollow", func() *swarm.Swarm { return gen.Hollow(16, 16) }},
		{"staircase", func() *swarm.Swarm { return gen.Staircase(80, 1) }},
		{"blob", func() *swarm.Swarm { return gen.RandomBlob(90, 42) }},
	}
	for _, w := range workloads {
		for _, workers := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", w.name, workers), func(t *testing.T) {
				s := w.build()
				budget := fsync.DefaultBudget(s.Len())
				ref := fsync.New(s, core.Default(), fsync.Config{Workers: 1})
				cand := fsync.New(w.build(), core.Default(), fsync.Config{
					Workers:   workers,
					Scheduler: sched.FSYNC(),
				})
				stepCompare(t, ref, cand, budget.MaxRounds)
			})
		}
	}
}

// TestSchedulersGatherCorpus runs every workload family of the seeded
// catalog under each relaxed scheduler with per-round connectivity checking
// and the fairness-scaled canonical budget: the swarm must gather without a
// single connectivity violation. The algorithm is the scheduler-robust
// greedy strategy (asyncseq.Algorithm) — the paper's own algorithm is
// FSYNC-only by construction (its merge operations require all black robots
// of a configuration to hop in the same round; see
// TestPaperAlgorithmRequiresFSYNC). This is the acceptance bar for the
// SSYNC/ASYNC scenario axis: relaxed synchrony may slow gathering, but it
// must never break the model's central safety property.
func TestSchedulersGatherCorpus(t *testing.T) {
	const n = 56
	schedulers := []string{"ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	for _, w := range gen.SeededCatalog() {
		for _, spec := range schedulers {
			t.Run(w.Name+"/"+spec, func(t *testing.T) {
				s := w.Build(n, 42)
				sch, err := sched.Parse(spec, 42)
				if err != nil {
					t.Fatal(err)
				}
				budget := fsync.DefaultBudget(s.Len()).Scale(sch.Fairness(s.Len()))
				eng := fsync.New(s, asyncseq.Algorithm{}, fsync.Config{
					MaxRounds:         budget.MaxRounds,
					NoMergeLimit:      budget.NoMergeLimit,
					CheckConnectivity: true,
					StrictViews:       true,
					Scheduler:         sch,
				})
				res := eng.Run()
				if res.Err != nil {
					t.Fatalf("%s on %s (n=%d): %v after %d rounds",
						spec, w.Name, res.InitialRobots, res.Err, res.Rounds)
				}
				if !res.Gathered {
					t.Fatalf("%s on %s: not gathered after %d rounds", spec, w.Name, res.Rounds)
				}
			})
		}
	}
}

// TestGreedyGathersUnderFSYNC covers the fourth quadrant: the local mutual
// exclusion rule makes the greedy strategy safe even with every robot active
// every round, at the price of locally serialized moves.
func TestGreedyGathersUnderFSYNC(t *testing.T) {
	for _, w := range gen.SeededCatalog() {
		t.Run(w.Name, func(t *testing.T) {
			s := w.Build(48, 42)
			budget := fsync.DefaultBudget(s.Len())
			eng := fsync.New(s, asyncseq.Algorithm{}, fsync.Config{
				MaxRounds:         budget.MaxRounds,
				NoMergeLimit:      budget.NoMergeLimit,
				CheckConnectivity: true,
				StrictViews:       true,
			})
			res := eng.Run()
			if res.Err != nil || !res.Gathered {
				t.Fatalf("greedy under fsync on %s failed: %+v", w.Name, res)
			}
		})
	}
}

// TestSequentialWidthOneGathers pins the asyncseq-generalization claim on a
// small instance: the pure one-robot-per-round ASYNC schedule (exactly the
// baseline's fair sequential scheduler) still gathers and never breaks
// connectivity.
func TestSequentialWidthOneGathers(t *testing.T) {
	s := gen.Hollow(7, 7)
	budget := fsync.DefaultBudget(s.Len()).Scale(sched.Sequential(1).Fairness(s.Len()))
	eng := fsync.New(s, asyncseq.Algorithm{}, fsync.Config{
		MaxRounds:         budget.MaxRounds,
		NoMergeLimit:      budget.NoMergeLimit,
		CheckConnectivity: true,
		Scheduler:         sched.Sequential(1),
	})
	res := eng.Run()
	if res.Err != nil || !res.Gathered {
		t.Fatalf("async:1 failed: %+v", res)
	}
}

// TestPaperAlgorithmRequiresFSYNC documents why the corpus test above runs
// the greedy strategy: the paper's merge operation is only safe when all
// black robots of a configuration hop in the same round, so under a relaxed
// scheduler a lone hopping robot can split its subboundary. The engine's
// connectivity checker catches this deterministically on a hollow square —
// the degradation the scheduler axis exists to measure.
func TestPaperAlgorithmRequiresFSYNC(t *testing.T) {
	s := gen.Hollow(7, 7)
	sch, err := sched.Parse("async:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := fsync.DefaultBudget(s.Len()).Scale(sch.Fairness(s.Len()))
	eng := fsync.New(s, core.Default(), fsync.Config{
		MaxRounds:         budget.MaxRounds,
		NoMergeLimit:      budget.NoMergeLimit,
		CheckConnectivity: true,
		Scheduler:         sch,
	})
	res := eng.Run()
	if res.Err == nil && res.Gathered {
		// Not a failure of the suite — but it would overturn the rationale
		// for the greedy strategy, so flag it loudly.
		t.Fatalf("paper algorithm unexpectedly gathered under async:1; revisit the corpus test setup")
	}
	if _, ok := res.Err.(fsync.ErrDisconnected); !ok {
		t.Logf("paper algorithm under async:1 aborted with %v (disconnection is the typical mode)", res.Err)
	}
}
