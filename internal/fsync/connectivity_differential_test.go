// Differential oracle suite for the incremental connectivity layer: an
// engine running the incremental Connected path must be indistinguishable —
// same per-round boolean, same abort error, same abort round — from an
// engine pinned to the full scratch-BFS path (Config.FullBFSConnectivity),
// across the seeded workload corpus, every scheduler family and several
// worker counts. Each round additionally cross-checks the incremental
// world's own two paths (Connected vs ConnectedBFS), so a wrong incremental
// answer is caught even on rounds where both engines would abort alike.
//
// The planted-disconnection tests drive the complementary direction: a
// scripted algorithm severs a known bridge robot at a known round, and both
// connectivity modes must report ErrDisconnected at exactly the same round.
package fsync_test

import (
	"fmt"
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
	"gridgather/internal/view"
)

// connEngines builds two engines over the same swarm, spec and worker
// count: one on the incremental connectivity path, one pinned to the
// full-BFS oracle.
func connEngines(t *testing.T, s *swarm.Swarm, spec string, workers int) (incr, oracle *fsync.Engine, maxRounds int) {
	t.Helper()
	build := func(fullBFS bool) *fsync.Engine {
		var alg fsync.Algorithm = core.Default()
		var sch sched.Scheduler
		if spec != "fsync" {
			alg = asyncseq.Algorithm{}
			var err error
			if sch, err = sched.Parse(spec, 42); err != nil {
				t.Fatal(err)
			}
		}
		budget := fsync.DefaultBudget(s.Len())
		if sch != nil {
			budget = budget.Scale(sch.Fairness(s.Len()))
		}
		maxRounds = budget.MaxRounds
		return fsync.New(s, alg, fsync.Config{
			MaxRounds:           budget.MaxRounds,
			NoMergeLimit:        budget.NoMergeLimit,
			CheckConnectivity:   true,
			Workers:             workers,
			Scheduler:           sch,
			FullBFSConnectivity: fullBFS,
		})
	}
	return build(false), build(true), maxRounds
}

// stepBoth advances both engines one round and fails on any observable
// divergence between the connectivity modes; it returns true when the run
// is over (both gathered or both aborted identically).
func stepBoth(t *testing.T, incr, oracle *fsync.Engine) bool {
	t.Helper()
	errI, errO := incr.Step(), oracle.Step()
	if (errI == nil) != (errO == nil) {
		t.Fatalf("round %d: abort diverged: incremental %v, full-BFS %v",
			incr.Round(), errI, errO)
	}
	if errI != nil {
		dI, okI := errI.(fsync.ErrDisconnected)
		dO, okO := errO.(fsync.ErrDisconnected)
		if okI != okO || (okI && dI.Round != dO.Round) || (!okI && errI.Error() != errO.Error()) {
			t.Fatalf("abort error diverged: incremental %v, full-BFS %v", errI, errO)
		}
		return true
	}
	// The engines agree; now make the incremental world testify against
	// itself — its incremental answer must match its own scratch BFS.
	w := incr.World()
	if got, want := w.Connected(), w.ConnectedBFS(); got != want {
		t.Fatalf("round %d: incremental Connected = %v, scratch BFS = %v",
			incr.Round(), got, want)
	}
	return incr.Gathered() && oracle.Gathered()
}

// TestConnectivityDifferential is the headline oracle suite: seeded
// catalog × scheduler families × worker counts, incremental vs full-BFS
// engines in lockstep until both gather.
func TestConnectivityDifferential(t *testing.T) {
	const n = 56
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	for _, w := range gen.SeededCatalog() {
		for _, spec := range specs {
			for _, workers := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", w.Name, spec, workers), func(t *testing.T) {
					s := w.Build(n, 42)
					incr, oracle, maxRounds := connEngines(t, s, spec, workers)
					for r := 0; r < maxRounds; r++ {
						if stepBoth(t, incr, oracle) {
							break
						}
					}
					if !incr.Gathered() || !oracle.Gathered() {
						t.Fatalf("round budget exhausted: incremental gathered=%v, full-BFS gathered=%v",
							incr.Gathered(), oracle.Gathered())
					}
					st := incr.World().ConnStats()
					if st.Queries == 0 || st.Fallbacks != 1 {
						t.Fatalf("incremental layer never took over: %+v", st)
					}
				})
			}
		}
	}
}

// bridgeCutAlg holds every robot still except the unique bridge robot of
// the planted two-block dumbbell, which steps north the first time it is
// activated at view round ≥ cutRound — severing the swarm.
type bridgeCutAlg struct{ cutRound int }

func (bridgeCutAlg) Radius() int { return 2 }

func (a bridgeCutAlg) Compute(v *view.View) fsync.Action {
	if v.Round() < a.cutRound {
		return fsync.Stay
	}
	// The bridge's signature: within L1 radius 2, exactly (±1, 0) and
	// (±2, 0) occupied. Block cells see denser neighborhoods; the two
	// bridge ends see the blocks' corner cells off-axis.
	for dy := -2; dy <= 2; dy++ {
		for dx := -2 + abs(dy); dx <= 2-abs(dy); dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			want := dy == 0 && dx != 0
			if v.Occ(grid.Pt(dx, dy)) != want {
				return fsync.Stay
			}
		}
	}
	return fsync.MoveTo(grid.Pt(0, 1))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// dumbbell is the planted shape: two 3×3 blocks joined by a three-robot
// bridge whose middle robot, at (4, 1), is the unique articulation point
// bridgeCutAlg cuts.
func dumbbell() *swarm.Swarm {
	s := swarm.New()
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			s.Add(grid.Pt(x, y))
			s.Add(grid.Pt(x+6, y))
		}
	}
	s.Add(grid.Pt(3, 1))
	s.Add(grid.Pt(4, 1))
	s.Add(grid.Pt(5, 1))
	return s
}

// TestPlantedDisconnection severs the dumbbell's bridge at a known round
// and checks both connectivity modes abort with ErrDisconnected at exactly
// the same round — and, under FSYNC (where activation timing is total),
// exactly the planted round.
func TestPlantedDisconnection(t *testing.T) {
	const cut = 7
	for _, spec := range []string{"fsync", "ssync-rr:3", "async:8"} {
		t.Run(spec, func(t *testing.T) {
			run := func(fullBFS bool) fsync.ErrDisconnected {
				t.Helper()
				var sch sched.Scheduler
				if spec != "fsync" {
					var err error
					if sch, err = sched.Parse(spec, 42); err != nil {
						t.Fatal(err)
					}
				}
				eng := fsync.New(dumbbell(), bridgeCutAlg{cutRound: cut}, fsync.Config{
					MaxRounds:           1000,
					CheckConnectivity:   true,
					StrictViews:         true,
					Workers:             4,
					Scheduler:           sch,
					FullBFSConnectivity: fullBFS,
				})
				for r := 0; r < 1000; r++ {
					if err := eng.Step(); err != nil {
						dis, ok := err.(fsync.ErrDisconnected)
						if !ok {
							t.Fatalf("step %d: %v (want ErrDisconnected)", r, err)
						}
						return dis
					}
				}
				t.Fatal("the planted cut never disconnected the swarm")
				panic("unreachable")
			}
			gotIncr, gotBFS := run(false), run(true)
			if gotIncr != gotBFS {
				t.Fatalf("abort rounds diverged: incremental %v, full-BFS %v", gotIncr, gotBFS)
			}
			if spec == "fsync" && gotIncr.Round != cut+1 {
				// Views carry the pre-increment round counter, so a move
				// computed at view round `cut` lands in engine round cut+1.
				t.Fatalf("FSYNC abort round = %d, want %d", gotIncr.Round, cut+1)
			}
		})
	}
}

// TestConnectivitySnapshotRestore cuts a run mid-flight, snapshots the
// incremental engine, and restores it twice — once per connectivity mode.
// Both restored engines and the original must stay in lockstep to the end,
// proving Restore rebuilds the incremental state (via its cold-start
// fallback) without observable difference.
func TestConnectivitySnapshotRestore(t *testing.T) {
	s := gen.SeededCatalog()[0].Build(56, 42)
	incr, _, maxRounds := connEngines(t, s, "fsync", 4)
	for r := 0; r < 40 && !incr.Gathered(); r++ {
		if err := incr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := incr.AppendState(nil)

	restore := func(fullBFS bool) *fsync.Engine {
		t.Helper()
		eng, rest, err := fsync.NewRestored(core.Default(), fsync.Config{
			MaxRounds:           maxRounds,
			CheckConnectivity:   true,
			Workers:             4,
			FullBFSConnectivity: fullBFS,
		}, snap)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d bytes left after restore", len(rest))
		}
		return eng
	}
	rIncr, rBFS := restore(false), restore(true)
	for r := 0; r < maxRounds && !incr.Gathered(); r++ {
		if stepBoth(t, incr, rBFS) {
			break
		}
		if err := rIncr.Step(); err != nil {
			t.Fatalf("restored incremental engine aborted: %v", err)
		}
		a, b := incr.World(), rIncr.World()
		if got, want := b.Connected(), a.Connected(); got != want {
			t.Fatalf("round %d: restored Connected = %v, original %v", incr.Round(), got, want)
		}
	}
	if !incr.Gathered() || !rIncr.Gathered() || !rBFS.Gathered() {
		t.Fatalf("gather diverged: original=%v restored-incr=%v restored-bfs=%v",
			incr.Gathered(), rIncr.Gathered(), rBFS.Gathered())
	}
}
