package fsync

import "math"

// Budget bundles the two simulation limits: the hard round limit and the
// no-merge stuck watchdog.
type Budget struct {
	// MaxRounds is the hard abort limit (Config.MaxRounds); 0 = unlimited.
	MaxRounds int
	// NoMergeLimit is the stuck-watchdog window (Config.NoMergeLimit);
	// 0 = disabled.
	NoMergeLimit int
}

// DefaultBudget returns the canonical simulation budget for an n-robot
// instance under FSYNC: MaxRounds 80·n + 1000 and NoMergeLimit 40·n + 500.
// The measured gathering time is ≲8 rounds per robot (experiment E1), so
// the budget leaves an order of magnitude of slack without letting a broken
// configuration spin forever. Every entry point — the public API, the sweep
// harness, and the CLIs — derives its limits from this one helper so the
// budgets cannot drift apart again.
func DefaultBudget(n int) Budget {
	return Budget{MaxRounds: 80*n + 1000, NoMergeLimit: 40*n + 500}
}

// WithOverrides applies caller-supplied limits on top of the budget: a
// positive value replaces the canonical entry, zero keeps it, and a
// negative NoMergeLimit disables the watchdog. Negative MaxRounds is
// reserved and must be rejected by callers before this point (the public
// API and the sweep harness both do).
func (b Budget) WithOverrides(maxRounds, noMergeLimit int) Budget {
	if maxRounds > 0 {
		b.MaxRounds = maxRounds
	}
	switch {
	case noMergeLimit > 0:
		b.NoMergeLimit = noMergeLimit
	case noMergeLimit < 0:
		b.NoMergeLimit = 0
	}
	return b
}

// Scale stretches the budget for a scheduler with fairness bound k
// (sched.Scheduler.Fairness): a scheduler that activates each robot only
// once every k rounds slows gathering down by up to a factor of k. Scale(1)
// is the identity; unlimited (zero) entries stay unlimited.
func (b Budget) Scale(k int) Budget {
	if k <= 1 {
		return b
	}
	b.MaxRounds = scaleLimit(b.MaxRounds, k)
	b.NoMergeLimit = scaleLimit(b.NoMergeLimit, k)
	return b
}

// scaleLimit multiplies a positive limit by k, saturating at the platform's
// int maximum. ASYNC fairness bounds are ≈ n, so n² products overflow on
// 32-bit platforms for swarms of a few thousand robots — and an overflowed
// negative limit would silently mean "unlimited"/"watchdog off", the exact
// states the budget exists to rule out.
func scaleLimit(v, k int) int {
	if v <= 0 {
		return v
	}
	if v > math.MaxInt/k {
		return math.MaxInt
	}
	return v * k
}
