// Differential tests for the world backends: the dense tiled-bitset
// backend must be bit-identical to the map oracle round by round —
// positions, run states (including IDs), logical clocks, slot assignment
// and merge/run counters — across the seeded workload corpus, every
// scheduler family, and several worker counts. This is the acceptance bar
// for replacing the hash maps on the engine's hot path: any divergence in
// the incremental cell order, the in-place flat state updates, or the
// bitset arrival accounting shows up here on the first broken round.
package fsync_test

import (
	"fmt"
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
	"gridgather/internal/world"
)

// stateEast is a planted eastbound run state for the mid-run scenario.
func stateEast() robot.State {
	return robot.State{Runs: []robot.Run{{Dir: grid.East, Inside: grid.North}}}
}

// backendEngines builds one map-oracle and one dense engine over the same
// swarm, scheduler spec and worker count. The paper's algorithm drives the
// FSYNC runs; the scheduler-robust greedy strategy drives the relaxed
// ones (the paper's algorithm is FSYNC-only, see
// TestPaperAlgorithmRequiresFSYNC).
func backendEngines(t *testing.T, s *swarm.Swarm, spec string, workers int) (oracle, dense *fsync.Engine, maxRounds int) {
	t.Helper()
	build := func(kind world.Kind) *fsync.Engine {
		var alg fsync.Algorithm = core.Default()
		var sch sched.Scheduler
		if spec != "fsync" {
			alg = asyncseq.Algorithm{}
			var err error
			if sch, err = sched.Parse(spec, 42); err != nil {
				t.Fatal(err)
			}
		}
		budget := fsync.DefaultBudget(s.Len())
		if sch != nil {
			budget = budget.Scale(sch.Fairness(s.Len()))
		}
		maxRounds = budget.MaxRounds
		return fsync.New(s, alg, fsync.Config{
			MaxRounds:         budget.MaxRounds,
			NoMergeLimit:      budget.NoMergeLimit,
			CheckConnectivity: true,
			StrictViews:       true,
			Workers:           workers,
			Scheduler:         sch,
			Backend:           kind,
		})
	}
	return build(world.MapKind), build(world.DenseKind), maxRounds
}

// compareBackends fails on the first round-state divergence between the
// oracle and the dense engine.
func compareBackends(t *testing.T, oracle, dense *fsync.Engine) {
	t.Helper()
	oc, dc := oracle.World().Cells(), dense.World().Cells()
	if len(oc) != len(dc) {
		t.Fatalf("round %d: population diverged: %d vs %d", oracle.Round(), len(oc), len(dc))
	}
	os, ds := oracle.World().Slots(), dense.World().Slots()
	for i := range oc {
		if oc[i] != dc[i] {
			t.Fatalf("round %d: cell order diverged at %d: %v vs %v", oracle.Round(), i, oc[i], dc[i])
		}
		if os[i] != ds[i] {
			t.Fatalf("round %d: slot at %v diverged: %d vs %d", oracle.Round(), oc[i], os[i], ds[i])
		}
		sa, sb := oracle.StateAt(oc[i]), dense.StateAt(oc[i])
		if len(sa.Runs) != len(sb.Runs) {
			t.Fatalf("round %d: run count at %v diverged: %d vs %d",
				oracle.Round(), oc[i], len(sa.Runs), len(sb.Runs))
		}
		for j := range sa.Runs {
			if sa.Runs[j] != sb.Runs[j] {
				t.Fatalf("round %d: run state at %v diverged: %v vs %v",
					oracle.Round(), oc[i], sa.Runs[j], sb.Runs[j])
			}
		}
		if la, lb := oracle.LocalRound(oc[i]), dense.LocalRound(oc[i]); la != lb {
			t.Fatalf("round %d: logical clock at %v diverged: %d vs %d", oracle.Round(), oc[i], la, lb)
		}
	}
	if oracle.Merges() != dense.Merges() || oracle.RunsStarted() != dense.RunsStarted() ||
		oracle.RoundMerges() != dense.RoundMerges() {
		t.Fatalf("round %d: counters diverged: merges %d/%d runs %d/%d roundMerges %d/%d",
			oracle.Round(), oracle.Merges(), dense.Merges(),
			oracle.RunsStarted(), dense.RunsStarted(), oracle.RoundMerges(), dense.RoundMerges())
	}
	if og, dg := oracle.Gathered(), dense.Gathered(); og != dg {
		t.Fatalf("round %d: Gathered diverged: %v vs %v", oracle.Round(), og, dg)
	}
}

// TestBackendDifferential is the tentpole's determinism proof: for every
// seeded-catalog workload × scheduler family × worker count, the dense
// backend reproduces the map oracle bit-identically on every round until
// both gather.
func TestBackendDifferential(t *testing.T) {
	const n = 56
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	for _, w := range gen.SeededCatalog() {
		for _, spec := range specs {
			for _, workers := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", w.Name, spec, workers), func(t *testing.T) {
					s := w.Build(n, 42)
					oracle, dense, maxRounds := backendEngines(t, s, spec, workers)
					compareBackends(t, oracle, dense)
					for r := 0; r < maxRounds && !oracle.Gathered(); r++ {
						if err := oracle.Step(); err != nil {
							t.Fatalf("oracle step %d: %v", r, err)
						}
						if err := dense.Step(); err != nil {
							t.Fatalf("dense step %d: %v", r, err)
						}
						compareBackends(t, oracle, dense)
					}
					if !oracle.Gathered() || !dense.Gathered() {
						t.Fatalf("round budget exhausted: oracle gathered=%v dense gathered=%v",
							oracle.Gathered(), dense.Gathered())
					}
				})
			}
		}
	}
}

// TestBackendDifferentialMidRunState seeds planted mid-run scenarios
// (SetState + SetRound scaffolding) and checks the two backends still
// agree — covering the test-scaffolding write paths the corpus runs don't
// reach.
func TestBackendDifferentialMidRunState(t *testing.T) {
	build := func(kind world.Kind) *fsync.Engine {
		s := gen.Hollow(12, 12)
		eng := fsync.New(s, core.Default(), fsync.Config{
			MaxRounds:   2000,
			StrictViews: true,
			Backend:     kind,
		})
		eng.SetRound(3) // off the run-start schedule
		for i, p := range eng.World().Cells() {
			if i%7 == 0 {
				eng.SetState(p, stateEast())
			}
		}
		return eng
	}
	oracle, dense := build(world.MapKind), build(world.DenseKind)
	for r := 0; r < 300 && !oracle.Gathered(); r++ {
		if err := oracle.Step(); err != nil {
			t.Fatalf("oracle step %d: %v", r, err)
		}
		if err := dense.Step(); err != nil {
			t.Fatalf("dense step %d: %v", r, err)
		}
		compareBackends(t, oracle, dense)
	}
}
