// Differential tests for the chunk-owned parallel round pipeline: the
// sharded Resolve/Commit path must be bit-identical to the serial path
// round by round — positions, run states (including IDs), logical clocks,
// slot assignment and merge/run counters — across the seeded workload
// corpus, every scheduler family, and every worker count. This is the
// acceptance bar for parallelizing the round's write phase: any divergence
// in chunk ownership, the seam pass, the per-lane arrival buffers or the
// k-way commit merge shows up here on the first broken round.
package fsync_test

import (
	"fmt"
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// stateEast is a planted eastbound run state for the mid-run scenario.
func stateEast() robot.State {
	return robot.State{Runs: []robot.Run{{Dir: grid.East, Inside: grid.North}}}
}

// pipelineEngines builds one serial (workers=1) reference engine and one
// parallel engine over the same swarm, scheduler spec and worker count.
// The paper's algorithm drives the FSYNC runs; the scheduler-robust greedy
// strategy drives the relaxed ones (the paper's algorithm is FSYNC-only,
// see TestPaperAlgorithmRequiresFSYNC).
func pipelineEngines(t *testing.T, s *swarm.Swarm, spec string, workers int) (serial, parallel *fsync.Engine, maxRounds int) {
	t.Helper()
	build := func(workers int) *fsync.Engine {
		var alg fsync.Algorithm = core.Default()
		var sch sched.Scheduler
		if spec != "fsync" {
			alg = asyncseq.Algorithm{}
			var err error
			if sch, err = sched.Parse(spec, 42); err != nil {
				t.Fatal(err)
			}
		}
		budget := fsync.DefaultBudget(s.Len())
		if sch != nil {
			budget = budget.Scale(sch.Fairness(s.Len()))
		}
		maxRounds = budget.MaxRounds
		return fsync.New(s, alg, fsync.Config{
			MaxRounds:         budget.MaxRounds,
			NoMergeLimit:      budget.NoMergeLimit,
			CheckConnectivity: true,
			StrictViews:       true,
			Workers:           workers,
			Scheduler:         sch,
		})
	}
	return build(1), build(workers), maxRounds
}

// compareEngines fails on the first round-state divergence between the
// serial reference and the parallel engine.
func compareEngines(t *testing.T, serial, parallel *fsync.Engine) {
	t.Helper()
	oc, dc := serial.World().Cells(), parallel.World().Cells()
	if len(oc) != len(dc) {
		t.Fatalf("round %d: population diverged: %d vs %d", serial.Round(), len(oc), len(dc))
	}
	os, ds := serial.World().Slots(), parallel.World().Slots()
	for i := range oc {
		if oc[i] != dc[i] {
			t.Fatalf("round %d: cell order diverged at %d: %v vs %v", serial.Round(), i, oc[i], dc[i])
		}
		if os[i] != ds[i] {
			t.Fatalf("round %d: slot at %v diverged: %d vs %d", serial.Round(), oc[i], os[i], ds[i])
		}
		sa, sb := serial.StateAt(oc[i]), parallel.StateAt(oc[i])
		if len(sa.Runs) != len(sb.Runs) {
			t.Fatalf("round %d: run count at %v diverged: %d vs %d",
				serial.Round(), oc[i], len(sa.Runs), len(sb.Runs))
		}
		for j := range sa.Runs {
			if sa.Runs[j] != sb.Runs[j] {
				t.Fatalf("round %d: run state at %v diverged: %v vs %v",
					serial.Round(), oc[i], sa.Runs[j], sb.Runs[j])
			}
		}
		if la, lb := serial.LocalRound(oc[i]), parallel.LocalRound(oc[i]); la != lb {
			t.Fatalf("round %d: logical clock at %v diverged: %d vs %d", serial.Round(), oc[i], la, lb)
		}
	}
	if serial.Merges() != parallel.Merges() || serial.RunsStarted() != parallel.RunsStarted() ||
		serial.RoundMerges() != parallel.RoundMerges() {
		t.Fatalf("round %d: counters diverged: merges %d/%d runs %d/%d roundMerges %d/%d",
			serial.Round(), serial.Merges(), parallel.Merges(),
			serial.RunsStarted(), parallel.RunsStarted(), serial.RoundMerges(), parallel.RoundMerges())
	}
	if og, dg := serial.Gathered(), parallel.Gathered(); og != dg {
		t.Fatalf("round %d: Gathered diverged: %v vs %v", serial.Round(), og, dg)
	}
}

// TestPipelineDifferential is the tentpole's determinism proof: for every
// seeded-catalog workload × scheduler family × worker count, the
// chunk-owned parallel pipeline reproduces the serial engine bit-
// identically on every round until both gather.
func TestPipelineDifferential(t *testing.T) {
	const n = 56
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	for _, w := range gen.SeededCatalog() {
		for _, spec := range specs {
			for _, workers := range []int{2, 4, 8, 16} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", w.Name, spec, workers), func(t *testing.T) {
					s := w.Build(n, 42)
					serial, parallel, maxRounds := pipelineEngines(t, s, spec, workers)
					compareEngines(t, serial, parallel)
					for r := 0; r < maxRounds && !serial.Gathered(); r++ {
						if err := serial.Step(); err != nil {
							t.Fatalf("serial step %d: %v", r, err)
						}
						if err := parallel.Step(); err != nil {
							t.Fatalf("parallel step %d: %v", r, err)
						}
						compareEngines(t, serial, parallel)
					}
					if !serial.Gathered() || !parallel.Gathered() {
						t.Fatalf("round budget exhausted: serial gathered=%v parallel gathered=%v",
							serial.Gathered(), parallel.Gathered())
					}
				})
			}
		}
	}
}

// TestPipelineDifferentialMidRunState seeds planted mid-run scenarios
// (SetState + SetRound scaffolding) and checks serial and parallel engines
// still agree — covering the test-scaffolding write paths the corpus runs
// don't reach.
func TestPipelineDifferentialMidRunState(t *testing.T) {
	build := func(workers int) *fsync.Engine {
		s := gen.Hollow(12, 12)
		eng := fsync.New(s, core.Default(), fsync.Config{
			MaxRounds:   2000,
			StrictViews: true,
			Workers:     workers,
		})
		eng.SetRound(3) // off the run-start schedule
		for i, p := range eng.World().Cells() {
			if i%7 == 0 {
				eng.SetState(p, stateEast())
			}
		}
		return eng
	}
	serial, parallel := build(1), build(8)
	for r := 0; r < 300 && !serial.Gathered(); r++ {
		if err := serial.Step(); err != nil {
			t.Fatalf("serial step %d: %v", r, err)
		}
		if err := parallel.Step(); err != nil {
			t.Fatalf("parallel step %d: %v", r, err)
		}
		compareEngines(t, serial, parallel)
	}
}
