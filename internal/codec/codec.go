// Package codec is the binary substrate of the simulation snapshot format:
// append-style writers and a sticky-error reader over varint-encoded
// primitives. Every stateful layer of a checkpoint — the dense world, the
// engine counters, the scheduler cursors, the public session header —
// encodes through this package, so truncation and corruption surface as
// one typed error (ErrTruncated) instead of per-layer ad-hoc checks.
//
// The encoding is deliberately minimal: unsigned and zig-zag varints
// (encoding/binary wire format) plus length-prefixed byte strings. There
// is no reflection, no field tags and no self-description — snapshot
// layouts are versioned by the outermost header, and each layer reads
// exactly what it wrote.
//
//gather:deterministic
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned (wrapped) by Reader when the input ends in the
// middle of a value. Callers use errors.Is to distinguish a short snapshot
// from a structurally invalid one.
var ErrTruncated = errors.New("codec: input truncated")

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendInt appends a machine int (zig-zag varint).
func AppendInt(b []byte, v int) []byte {
	return binary.AppendVarint(b, int64(v))
}

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Reader decodes values appended by the Append helpers. Errors are sticky:
// after the first failure every subsequent read returns the zero value and
// Err() reports the failure, so decode sequences read straight through and
// check once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a reader over b (which is not copied; the caller must
// not mutate it while reading).
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) }

// Rest returns the unread remainder without consuming it.
func (r *Reader) Rest() []byte { return r.b }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint. A short buffer is truncation
// (ErrTruncated); an over-long encoding (binary.Uvarint overflow, n < 0)
// is corruption and reports a plain error — callers distinguish "fetch
// more bytes" from "discard corrupt input" via errors.Is.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	switch {
	case n == 0:
		r.fail(fmt.Errorf("%w: bad uvarint", ErrTruncated))
		return 0
	case n < 0:
		r.fail(errors.New("codec: uvarint overflows 64 bits"))
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint reads a zig-zag varint (same truncation/corruption split as
// Uvarint).
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	switch {
	case n == 0:
		r.fail(fmt.Errorf("%w: bad varint", ErrTruncated))
		return 0
	case n < 0:
		r.fail(errors.New("codec: varint overflows 64 bits"))
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Int reads a machine int (zig-zag varint), failing on values outside the
// platform's int range.
func (r *Reader) Int() int {
	v := r.Varint()
	if v > math.MaxInt || v < math.MinInt {
		r.fail(fmt.Errorf("codec: varint %d outside int range", v))
		return 0
	}
	return int(v)
}

// Bool reads a one-byte bool, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.b) == 0 {
		r.fail(fmt.Errorf("%w: bad bool", ErrTruncated))
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	if v > 1 {
		r.fail(fmt.Errorf("codec: bad bool byte %d", v))
		return false
	}
	return v == 1
}

// Text reads a length-prefixed string (named Text, not String, so the
// reader does not accidentally satisfy fmt.Stringer).
func (r *Reader) Text() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail(fmt.Errorf("%w: string of %d bytes, %d left", ErrTruncated, n, len(r.b)))
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}
