package codec

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1)
	b = AppendInt(b, math.MinInt)
	b = AppendInt(b, math.MaxInt)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendString(b, "")
	b = AppendString(b, "hollow")

	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != math.MaxUint64 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Varint(); v != -1 {
		t.Errorf("varint = %d", v)
	}
	if v := r.Int(); v != math.MinInt {
		t.Errorf("int = %d", v)
	}
	if v := r.Int(); v != math.MaxInt {
		t.Errorf("int = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools did not round-trip")
	}
	if s := r.Text(); s != "" {
		t.Errorf("string = %q", s)
	}
	if s := r.Text(); s != "hollow" {
		t.Errorf("string = %q", s)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("%d bytes left over", r.Len())
	}
}

// Every truncation point of a valid stream must surface as ErrTruncated,
// never as a zero value with a nil error.
func TestTruncation(t *testing.T) {
	var full []byte
	full = AppendUvarint(full, 1<<40)
	full = AppendVarint(full, -(1 << 40))
	full = AppendBool(full, true)
	full = AppendString(full, "snapshot")
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		r.Varint()
		r.Bool()
		r.Text()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

// Errors are sticky: reads after a failure return zero values and the
// first error is preserved.
func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	r.Uvarint()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error on empty input")
	}
	if v := r.Int(); v != 0 {
		t.Errorf("read after error = %d", v)
	}
	if s := r.Text(); s != "" {
		t.Errorf("read after error = %q", s)
	}
	if r.Err() != first {
		t.Error("first error not preserved")
	}
}

func TestBadBoolByte(t *testing.T) {
	r := NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil || errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("err = %v, want a non-truncation failure", r.Err())
	}
}

// An over-long varint is corruption, not truncation: the bytes are all
// there, they just don't encode a 64-bit value.
func TestVarintOverflowIsNotTruncation(t *testing.T) {
	// 11 continuation bytes: binary.Uvarint reports overflow only once it
	// has consumed more than MaxVarintLen64 bytes; a 10-byte prefix of
	// 0xFF still reads as "buffer too small".
	overlong := bytesRepeat(0xFF, 11)
	r := NewReader(overlong)
	r.Uvarint()
	if r.Err() == nil || errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("uvarint overflow err = %v, want non-truncation", r.Err())
	}
	r = NewReader(overlong)
	r.Varint()
	if r.Err() == nil || errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("varint overflow err = %v, want non-truncation", r.Err())
	}
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}
