// Package sched generalizes the simulation's time model. The paper proves
// its O(n) gathering bound in the fully synchronous FSYNC model — every
// robot executes a full look-compute-move cycle in every round. Follow-up
// work relaxes that synchrony: "Gathering Anonymous, Oblivious Robots on a
// Grid" (Fischer, Jung, Meyer auf der Heide) keeps the local grid setting,
// and the meeting-node line ("Gathering over Meeting Nodes in Infinite
// Grid", Bhagat et al.) studies grid gathering under fully asynchronous
// schedulers. This package supplies the scheduler axis for such scenarios:
// a Scheduler yields the activation set of each round, and the FSYNC engine
// (internal/fsync) runs look-compute-move only over that set while the
// remaining robots sleep in place.
//
// Three model families are provided:
//
//   - FSYNC: every robot, every round (the paper's model).
//   - SSYNC: per round an arbitrary subset acts in lockstep. Variants:
//     round-robin interleavings, seeded random subsets, and a lazy
//     "adversarial" scheduler that delays every robot as long as its
//     fairness bound allows, with spatially hashed phases so that
//     neighboring robots are maximally desynchronized.
//   - ASYNC: a sequential wavefront sweeping the population in blocks,
//     generalizing the fair one-robot-at-a-time scheduler of
//     internal/baseline/asyncseq (width 1 is exactly that baseline's
//     schedule). Each robot's look/compute/move cycle executes atomically
//     when its turn comes, but the cycles of different robots are staggered
//     arbitrarily far apart — the standard "ASYNC with atomic LCM"
//     simulation model.
//
// Every scheduler is deterministic (randomized ones take an explicit seed)
// and carries a fairness bound: an upper limit on how many consecutive
// rounds any robot can sleep. Simulation budgets (round limits, stuck
// watchdogs) are scaled by that bound, since a scheduler that activates a
// 1/k fraction of the swarm per round slows gathering by up to a factor k.
//
// A Scheduler instance may carry per-simulation state (cursors, fairness
// deadlines, RNG streams); use one instance per engine.
//
// Practical note on fairness windows: the algorithm starts new runs every
// L-th tick of a robot's local clock (L = 22 by default). Under the engine's
// per-robot logical clocks any fairness window works, but windows coprime to
// L spread activations most evenly across the start schedule; the default
// windows (3 and 5) are chosen accordingly.
//
//gather:deterministic
package sched

import (
	"fmt"
	"strconv"
	"strings"

	"gridgather/internal/codec"
	"gridgather/internal/grid"
)

// Scheduler decides which robots are activated — i.e. perform a full
// look-compute-move cycle — in each round.
type Scheduler interface {
	// Activate marks this round's activation set: active[i] corresponds to
	// cells[i] and arrives all false. cells is the current population in
	// deterministic sorted order (the engine's canonical cell order), and
	// slots[i] is the stable engine slot of the robot at cells[i] — slots
	// identify a robot across rounds (they move with it and are never
	// reused after a merge), so per-robot bookkeeping indexes a flat
	// slice instead of hashing cells. Implementations must be
	// deterministic functions of (round, cells, slots) and their own
	// state.
	Activate(round int, cells []grid.Point, slots []int32, active []bool)
	// Fairness returns an upper bound on the number of consecutive rounds
	// any single robot can remain inactive when the population is n robots
	// (1 = FSYNC). Callers scale simulation budgets by this bound.
	Fairness(n int) int
	// String names the scheduler for reports and sweep group keys.
	String() string
}

// CursorCodec checkpoints a scheduler's mutable per-simulation state — the
// cursors, fairness deadlines and RNG streams that advance as rounds are
// consumed. Every scheduler Parse builds implements it, which is what makes
// simulation snapshots resumable under any time model: AppendCursor encodes
// the state (construction parameters like the fairness window are NOT
// encoded — the caller re-parses the spec and then restores the cursor into
// the fresh instance), and RestoreCursor decodes it, returning the unread
// remainder. A restored scheduler must produce exactly the activation sets
// the original would have produced from that round on.
type CursorCodec interface {
	AppendCursor(b []byte) []byte
	RestoreCursor(b []byte) ([]byte, error)
}

// RangeActivator is an optional fast-path interface for schedulers whose
// activation set is one contiguous window of the canonical cell order
// (wrapping at the end). ActivateRange replaces Activate for the round: it
// returns the window start index and length over a population of n robots
// and advances any scheduler state, so the engine can slice the activation
// set straight out of the sorted cell order — and hand it to the resolve
// workers as per-chunk slot ranges — without filling and rescanning a
// per-robot mask. Implementations must activate exactly the indices
// {lo, lo+1, …, lo+m-1} mod n that Activate would have marked; ok=false
// means "no range this round, fall back to Activate" and must leave the
// scheduler state untouched.
type RangeActivator interface {
	ActivateRange(round, n int) (lo, m int, ok bool)
}

// FSYNC returns the fully synchronous scheduler: every robot, every round.
// The engine's nil-scheduler fast path is bit-identical to this (proved by
// the determinism tests in internal/fsync); the explicit value exists so the
// general activation-set machinery can be exercised and named in sweeps.
func FSYNC() Scheduler { return fsyncSched{} }

type fsyncSched struct{}

func (fsyncSched) Activate(_ int, cells []grid.Point, _ []int32, active []bool) {
	for i := range cells {
		active[i] = true
	}
}

// ActivateRange activates the whole population: the window [0, n).
func (fsyncSched) ActivateRange(_, n int) (int, int, bool) { return 0, n, true }

func (fsyncSched) Fairness(int) int { return 1 }
func (fsyncSched) String() string   { return "fsync" }

// FSYNC is stateless: activation is a pure function of the round.
func (fsyncSched) AppendCursor(b []byte) []byte           { return b }
func (fsyncSched) RestoreCursor(b []byte) ([]byte, error) { return b, nil }

// IsFSYNC reports whether s is the fully synchronous scheduler (or nil,
// which engines treat as FSYNC). Callers use it to route FSYNC runs through
// the engine's faster nil-scheduler path.
func IsFSYNC(s Scheduler) bool {
	if s == nil {
		return true
	}
	_, ok := s.(fsyncSched)
	return ok
}

// RoundRobin returns the SSYNC round-robin scheduler with fairness window
// k: in round r it activates the robots whose index i in the sorted cell
// order satisfies i ≡ r (mod k). The activation set is an interleaved
// 1/k-fraction of the swarm that rotates through the whole population every
// k rounds.
func RoundRobin(k int) Scheduler {
	if k < 1 {
		panic("sched: round-robin window must be >= 1")
	}
	return &roundRobin{k: k}
}

type roundRobin struct{ k int }

func (s *roundRobin) Activate(round int, cells []grid.Point, _ []int32, active []bool) {
	for i := range cells {
		if i%s.k == round%s.k {
			active[i] = true
		}
	}
}

func (s *roundRobin) Fairness(int) int { return s.k }
func (s *roundRobin) String() string   { return fmt.Sprintf("ssync-rr:%d", s.k) }

// Round-robin is stateless: the window k is a construction parameter and
// the activation set is a pure function of the round.
func (s *roundRobin) AppendCursor(b []byte) []byte           { return b }
func (s *roundRobin) RestoreCursor(b []byte) ([]byte, error) { return b, nil }

// deadlines tracks per-robot fairness deadlines in a flat slice indexed by
// the engine's stable robot slot — the round loop no longer hashes cells.
// Slots move with their robot and are never reused after a merge, so a
// robot keeps one deadline entry for its whole life; entries of merged
// robots simply go stale and are never consulted again. A robot's first
// deadline is a seeded spatial hash of its cell (staggering neighbors),
// after which activation pushes the deadline a full window ahead.
// Deadlines only ever lie at most window rounds ahead of the current
// round, so the fairness bound holds for every robot at all times.
type deadlines struct {
	window int
	seed   int64
	dl     []int // slot → deadline+1; 0 = not yet seen
}

func newDeadlines(window int, seed int64) deadlines {
	return deadlines{window: window, seed: seed}
}

// deadline returns the round by which the robot in the given slot must
// activate, assigning a hashed initial phase (from its cell p) the first
// time the robot is seen.
func (d *deadlines) deadline(round int, p grid.Point, slot int32) int {
	if int(slot) < len(d.dl) && d.dl[slot] != 0 {
		return d.dl[slot] - 1
	}
	return round + int(phaseHash(p, d.seed)%uint64(d.window))
}

// commit records whether the robot in the given slot was activated this
// round.
func (d *deadlines) commit(round int, p grid.Point, slot int32, activated bool) {
	for int(slot) >= len(d.dl) {
		d.dl = append(d.dl, 0)
	}
	if activated {
		d.dl[slot] = round + d.window + 1
	} else {
		d.dl[slot] = d.deadline(round, p, slot) + 1
	}
}

// appendCursor encodes the deadline slice (window and seed are
// construction parameters, re-supplied when the spec is re-parsed).
func (d *deadlines) appendCursor(b []byte) []byte {
	b = codec.AppendUvarint(b, uint64(len(d.dl)))
	for _, v := range d.dl {
		b = codec.AppendInt(b, v)
	}
	return b
}

// restoreCursor decodes a deadline slice written by appendCursor.
func (d *deadlines) restoreCursor(b []byte) ([]byte, error) {
	r := codec.NewReader(b)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > uint64(r.Len()) { // each entry is ≥ 1 byte: cheap corruption guard
		return nil, fmt.Errorf("sched: deadline cursor claims %d entries in %d bytes", n, r.Len())
	}
	dl := make([]int, n)
	for i := range dl {
		dl[i] = r.Int()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	d.dl = dl
	return r.Rest(), nil
}

// phaseHash mixes a cell and seed into a deterministic pseudo-random phase
// (splitmix64-style finalizer).
func phaseHash(p grid.Point, seed int64) uint64 {
	x := uint64(int64(p.X))*0x9e3779b97f4a7c15 ^ uint64(int64(p.Y))*0xbf58476d1ce4e5b9 ^ uint64(seed)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// splitmix is the scheduler coin-flip stream: a splitmix64 generator whose
// entire state is one word, so scheduler cursors stay checkpointable
// (math/rand.Rand hides its state, which is why it is not used here). The
// stream is deterministic per seed and statistically adequate for
// activation coin flips.
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *splitmix) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Random returns the SSYNC random scheduler: each robot is activated
// independently with probability p each round, from a stream seeded by
// seed, with a hard fairness window k — any robot the coin has left asleep
// for k-1 consecutive rounds is activated by force.
func Random(p float64, k int, seed int64) Scheduler {
	if k < 1 {
		panic("sched: random fairness window must be >= 1")
	}
	if p < 0 || p > 1 {
		panic("sched: activation probability outside [0,1]")
	}
	return &random{
		p:   p,
		rng: splitmix{state: uint64(seed)},
		dl:  newDeadlines(k, seed),
	}
}

type random struct {
	p   float64
	rng splitmix
	dl  deadlines
}

func (s *random) Activate(round int, cells []grid.Point, slots []int32, active []bool) {
	for i, c := range cells {
		on := s.rng.float64() < s.p || round >= s.dl.deadline(round, c, slots[i])
		active[i] = on
		s.dl.commit(round, c, slots[i], on)
	}
}

func (s *random) Fairness(int) int { return s.dl.window }
func (s *random) String() string   { return fmt.Sprintf("ssync-rand:%d", s.dl.window) }

// AppendCursor encodes the RNG stream position and the fairness deadlines.
func (s *random) AppendCursor(b []byte) []byte {
	b = codec.AppendUvarint(b, s.rng.state)
	return s.dl.appendCursor(b)
}

func (s *random) RestoreCursor(b []byte) ([]byte, error) {
	r := codec.NewReader(b)
	state := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	rest, err := s.dl.restoreCursor(r.Rest())
	if err != nil {
		return nil, err
	}
	s.rng.state = state
	return rest, nil
}

// Adversarial returns the lazy SSYNC scheduler: every robot sleeps for as
// long as the fairness window k permits and is activated only when its
// deadline arrives. Initial deadlines are staggered by a seeded spatial
// hash, so adjacent robots fire in different rounds — the schedule
// maximizes both delay and desynchronization within the fairness bound,
// which is the adversary's whole freedom in the SSYNC model.
func Adversarial(k int, seed int64) Scheduler {
	if k < 1 {
		panic("sched: adversarial fairness window must be >= 1")
	}
	return &adversarial{dl: newDeadlines(k, seed)}
}

type adversarial struct{ dl deadlines }

func (s *adversarial) Activate(round int, cells []grid.Point, slots []int32, active []bool) {
	for i, c := range cells {
		on := round >= s.dl.deadline(round, c, slots[i])
		active[i] = on
		s.dl.commit(round, c, slots[i], on)
	}
}

func (s *adversarial) Fairness(int) int { return s.dl.window }
func (s *adversarial) String() string   { return fmt.Sprintf("ssync-lazy:%d", s.dl.window) }

// AppendCursor encodes the fairness deadlines (the lazy schedule's only
// mutable state).
func (s *adversarial) AppendCursor(b []byte) []byte { return s.dl.appendCursor(b) }

func (s *adversarial) RestoreCursor(b []byte) ([]byte, error) { return s.dl.restoreCursor(b) }

// Sequential returns the ASYNC wavefront scheduler: a cursor sweeps the
// sorted population activating `width` robots per round, wrapping around
// when it passes the end. Width 1 reproduces the fair sequential scheduler
// of internal/baseline/asyncseq — "only one robot ... active at a time" —
// and larger widths interpolate between that and FSYNC. The cycles of
// robots far apart in scan order are staggered by up to a full sweep,
// modeling asynchrony with atomic look-compute-move cycles.
func Sequential(width int) Scheduler {
	if width < 1 {
		panic("sched: sequential width must be >= 1")
	}
	return &sequential{width: width}
}

type sequential struct {
	width  int
	cursor int
}

func (s *sequential) Activate(_ int, cells []grid.Point, _ []int32, active []bool) {
	n := len(cells)
	if n == 0 {
		return
	}
	s.cursor %= n
	for j := 0; j < s.width && j < n; j++ {
		active[(s.cursor+j)%n] = true
	}
	s.cursor = (s.cursor + s.width) % n
}

// ActivateRange is the wavefront as a window: `width` robots starting at
// the cursor, wrapping at the population end — exactly the indices
// Activate marks, without the per-robot mask.
func (s *sequential) ActivateRange(_, n int) (int, int, bool) {
	if n == 0 {
		return 0, 0, true
	}
	s.cursor %= n
	lo := s.cursor
	m := s.width
	if m > n {
		m = n
	}
	s.cursor = (s.cursor + s.width) % n
	return lo, m, true
}

func (s *sequential) Fairness(n int) int {
	if n < 1 {
		return 1
	}
	// A full sweep takes ceil(n/width) rounds; the cursor advance is exact,
	// so no robot waits longer than one sweep (+1 for wrap slack while the
	// population shrinks).
	return (n+s.width-1)/s.width + 1
}

func (s *sequential) String() string { return fmt.Sprintf("async:%d", s.width) }

// AppendCursor encodes the wavefront position.
func (s *sequential) AppendCursor(b []byte) []byte {
	return codec.AppendUvarint(b, uint64(s.cursor))
}

func (s *sequential) RestoreCursor(b []byte) ([]byte, error) {
	r := codec.NewReader(b)
	cur := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	s.cursor = int(cur)
	return r.Rest(), nil
}

// Default fairness windows and probabilities for schedulers named without
// explicit parameters. 3 and 5 are coprime to the paper's L = 22.
const (
	defaultWindow     = 3
	defaultLazyWindow = 5
	defaultRandomProb = 0.5
	defaultWidth      = 1
)

// Parse builds a scheduler from a spec string:
//
//	fsync                     every robot every round (also the empty spec)
//	ssync | ssync-rr[:k]      round-robin interleaving, fairness window k (default 3)
//	ssync-rand[:k]            random subsets (p=0.5) with fairness window k (default 3)
//	ssync-lazy[:k]            lazy adversarial schedule, fairness window k (default 5)
//	async[:w]                 sequential wavefront of width w (default 1)
//
// seed feeds the randomized schedulers (coin flips and phase hashes);
// deterministic specs ignore it. The returned scheduler is a fresh instance
// suitable for exactly one simulation.
func Parse(spec string, seed int64) (Scheduler, error) {
	name, arg, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	switch name {
	case "", "fsync":
		if arg != 0 {
			return nil, fmt.Errorf("sched: %q takes no parameter", name)
		}
		return FSYNC(), nil
	case "ssync", "ssync-rr":
		return RoundRobin(argOr(arg, defaultWindow)), nil
	case "ssync-rand":
		return Random(defaultRandomProb, argOr(arg, defaultWindow), seed), nil
	case "ssync-lazy":
		return Adversarial(argOr(arg, defaultLazyWindow), seed), nil
	case "async":
		return Sequential(argOr(arg, defaultWidth)), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %s)", spec, strings.Join(Specs(), ", "))
	}
}

// Randomized reports whether the spec names a scheduler whose behaviour
// depends on the seed passed to Parse. It rejects any spec Parse would
// reject (including well-named specs with bad parameters, e.g. "fsync:2"),
// so callers validating a sweep up front can rely on it alone.
func Randomized(spec string) (bool, error) {
	if _, err := Parse(spec, 1); err != nil {
		return false, err
	}
	name, _, _ := splitSpec(spec)
	return name == "ssync-rand" || name == "ssync-lazy", nil
}

// Specs lists the accepted spec grammars for help output.
func Specs() []string {
	return []string{"fsync", "ssync[-rr][:k]", "ssync-rand[:k]", "ssync-lazy[:k]", "async[:w]"}
}

// splitSpec splits "name[:param]" and parses the optional positive integer
// parameter (0 = absent).
func splitSpec(spec string) (name string, arg int, err error) {
	name, argStr, found := strings.Cut(strings.TrimSpace(spec), ":")
	if !found {
		return name, 0, nil
	}
	v, err := strconv.Atoi(argStr)
	if err != nil || v < 1 {
		return "", 0, fmt.Errorf("sched: bad parameter %q in %q (want a positive integer)", argStr, spec)
	}
	return name, v, nil
}

func argOr(arg, def int) int {
	if arg == 0 {
		return def
	}
	return arg
}
