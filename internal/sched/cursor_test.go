package sched

import (
	"bytes"
	"testing"
)

// Every Parse-built scheduler implements CursorCodec, and a cursor
// restored into a fresh instance reproduces the original's activation
// sets exactly from that round on.
func TestCursorCodecResumes(t *testing.T) {
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:4"}
	cells := cellsN(23)
	const cut, tail = 9, 30
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			orig, err := Parse(spec, 42)
			if err != nil {
				t.Fatal(err)
			}
			cc, ok := orig.(CursorCodec)
			if !ok {
				t.Fatalf("%s does not implement CursorCodec", spec)
			}
			for round := 0; round < cut; round++ {
				activate(orig, round, cells)
			}
			cursor := cc.AppendCursor(nil)
			if again := cc.AppendCursor(nil); !bytes.Equal(cursor, again) {
				t.Fatal("cursor encoding not deterministic")
			}

			fresh, err := Parse(spec, 42)
			if err != nil {
				t.Fatal(err)
			}
			rest, err := fresh.(CursorCodec).RestoreCursor(cursor)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d trailing bytes", len(rest))
			}
			for round := cut; round < cut+tail; round++ {
				want := activate(orig, round, cells)
				got := activate(fresh, round, cells)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("round %d: activation diverged at %d", round, i)
					}
				}
			}
		})
	}
}

// A cursor restored into a scheduler with unconsumed input (extra bytes)
// must hand the remainder back; a truncated cursor must fail.
func TestCursorCodecFraming(t *testing.T) {
	for _, spec := range []string{"ssync-rand:3", "ssync-lazy:5", "async:4"} {
		s, _ := Parse(spec, 7)
		cells := cellsN(11)
		for round := 0; round < 5; round++ {
			activate(s, round, cells)
		}
		cc := s.(CursorCodec)
		cursor := cc.AppendCursor(nil)
		if len(cursor) == 0 {
			t.Fatalf("%s: stateful scheduler encoded an empty cursor", spec)
		}

		fresh, _ := Parse(spec, 7)
		rest, err := fresh.(CursorCodec).RestoreCursor(append(append([]byte(nil), cursor...), 0xEE, 0xFF))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(rest) != 2 {
			t.Errorf("%s: remainder = %d bytes, want 2", spec, len(rest))
		}

		fresh, _ = Parse(spec, 7)
		if _, err := fresh.(CursorCodec).RestoreCursor(cursor[:len(cursor)-1]); err == nil {
			t.Errorf("%s: truncated cursor accepted", spec)
		}
	}
}

// The splitmix coin stream is deterministic per seed, uniform enough for
// activation flips, and its single-word state round-trips through the
// cursor.
func TestSplitmixStream(t *testing.T) {
	a, b := splitmix{state: 42}, splitmix{state: 42}
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := splitmix{state: 43}
	if a.next() == c.next() {
		t.Error("different seeds produced the same draw")
	}
	heads, n := 0, 10000
	r := splitmix{state: 7}
	for i := 0; i < n; i++ {
		v := r.float64()
		if v < 0 || v >= 1 {
			t.Fatalf("float64 out of range: %v", v)
		}
		if v < 0.5 {
			heads++
		}
	}
	if heads < n*45/100 || heads > n*55/100 {
		t.Errorf("coin heavily biased: %d/%d below 0.5", heads, n)
	}
}
