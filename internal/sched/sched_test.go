package sched

import (
	"testing"

	"gridgather/internal/grid"
)

// cellsN returns n distinct sorted cells (a horizontal line).
func cellsN(n int) []grid.Point {
	out := make([]grid.Point, n)
	for i := range out {
		out[i] = grid.Pt(i, 0)
	}
	return out
}

// activate runs one round and returns a fresh mask. Slots are assigned by
// index, matching the engine's initial assignment over a static population.
func activate(s Scheduler, round int, cells []grid.Point) []bool {
	mask := make([]bool, len(cells))
	slots := make([]int32, len(cells))
	for i := range slots {
		slots[i] = int32(i)
	}
	s.Activate(round, cells, slots, mask)
	return mask
}

func count(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

func TestFSYNCActivatesEveryone(t *testing.T) {
	s := FSYNC()
	cells := cellsN(17)
	for round := 0; round < 5; round++ {
		if got := count(activate(s, round, cells)); got != len(cells) {
			t.Fatalf("round %d: fsync activated %d of %d", round, got, len(cells))
		}
	}
	if s.Fairness(100) != 1 {
		t.Errorf("fsync fairness = %d, want 1", s.Fairness(100))
	}
	if !IsFSYNC(s) || !IsFSYNC(nil) || IsFSYNC(RoundRobin(2)) {
		t.Error("IsFSYNC misclassifies")
	}
}

// fairnessWindow checks that under the scheduler every cell of a static
// population is activated at least once in every window of s.Fairness(n)
// consecutive rounds.
func fairnessWindow(t *testing.T, s Scheduler, cells []grid.Point, rounds int) {
	t.Helper()
	k := s.Fairness(len(cells))
	idle := make([]int, len(cells))
	for round := 0; round < rounds; round++ {
		mask := activate(s, round, cells)
		for i := range cells {
			if mask[i] {
				idle[i] = 0
			} else {
				idle[i]++
				if idle[i] >= k {
					t.Fatalf("cell %v slept %d rounds, fairness bound %d (round %d)",
						cells[i], idle[i], k, round)
				}
			}
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		fairnessWindow(t, RoundRobin(k), cellsN(23), 6*k+10)
	}
}

func TestRoundRobinPartition(t *testing.T) {
	// Over k consecutive rounds every index is activated exactly once.
	const k, n = 4, 19
	s := RoundRobin(k)
	cells := cellsN(n)
	hits := make([]int, n)
	for round := 0; round < k; round++ {
		for i, on := range activate(s, round, cells) {
			if on {
				hits[i]++
			}
		}
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d activated %d times in one window, want 1", i, h)
		}
	}
}

func TestRandomDeterministicAndFair(t *testing.T) {
	cells := cellsN(31)
	a, b := Random(0.5, 4, 7), Random(0.5, 4, 7)
	for round := 0; round < 40; round++ {
		ma, mb := activate(a, round, cells), activate(b, round, cells)
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("round %d: same seed diverged at index %d", round, i)
			}
		}
	}
	fairnessWindow(t, Random(0.5, 4, 99), cells, 200)
	// p=0 degenerates to the lazy scheduler: still fair.
	fairnessWindow(t, Random(0, 3, 1), cells, 100)
}

func TestAdversarialLazyAndStaggered(t *testing.T) {
	cells := cellsN(40)
	fairnessWindow(t, Adversarial(5, 3), cells, 200)

	// Activations are staggered: after the hashed warm-up phases, each round
	// activates only ~n/k robots, never the whole population at once.
	s := Adversarial(5, 3)
	sawPartial := false
	for round := 0; round < 50; round++ {
		c := count(activate(s, round, cells))
		if c > 0 && c < len(cells) {
			sawPartial = true
		}
		if round >= 5 && c == len(cells) {
			t.Fatalf("round %d: lazy scheduler activated everyone at once", round)
		}
	}
	if !sawPartial {
		t.Error("lazy scheduler never produced a partial activation set")
	}
}

func TestSequentialWavefront(t *testing.T) {
	const n = 13
	cells := cellsN(n)

	// Width 1: exactly one robot per round, cycling through all of them —
	// the asyncseq baseline's fair sequential schedule.
	s := Sequential(1)
	seen := make([]bool, n)
	for round := 0; round < n; round++ {
		mask := activate(s, round, cells)
		if count(mask) != 1 {
			t.Fatalf("round %d: width-1 activated %d robots", round, count(mask))
		}
		for i, on := range mask {
			if on {
				seen[i] = true
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d never activated in one sweep", i)
		}
	}

	// Wider fronts stay within the fairness bound.
	fairnessWindow(t, Sequential(4), cells, 100)
	fairnessWindow(t, Sequential(n+5), cells, 20) // width > population
}

func TestSequentialShrinkingPopulation(t *testing.T) {
	// The cursor must keep covering everything as the population shrinks
	// (merges remove robots between rounds).
	s := Sequential(3)
	for n := 20; n >= 1; n-- {
		cells := cellsN(n)
		sweep := s.Fairness(n)
		seen := make(map[grid.Point]bool)
		for round := 0; round < sweep; round++ {
			for i, on := range activate(s, round, cells) {
				if on {
					seen[cells[i]] = true
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("n=%d: only %d of %d cells activated within fairness window", n, len(seen), n)
		}
	}
}

func TestParse(t *testing.T) {
	good := map[string]string{
		"":             "fsync",
		"fsync":        "fsync",
		"ssync":        "ssync-rr:3",
		"ssync-rr":     "ssync-rr:3",
		"ssync-rr:7":   "ssync-rr:7",
		"ssync-rand":   "ssync-rand:3",
		"ssync-rand:4": "ssync-rand:4",
		"ssync-lazy":   "ssync-lazy:5",
		"ssync-lazy:2": "ssync-lazy:2",
		"async":        "async:1",
		"async:16":     "async:16",
	}
	for spec, want := range good {
		s, err := Parse(spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if s.String() != want {
			t.Errorf("Parse(%q) = %q, want %q", spec, s.String(), want)
		}
	}
	for _, spec := range []string{"nope", "fsync:2", "ssync-rr:0", "ssync-rr:x", "async:-1"} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestRandomized(t *testing.T) {
	cases := map[string]bool{
		"fsync": false, "": false, "ssync": false, "ssync-rr:4": false,
		"async:2": false, "ssync-rand": true, "ssync-lazy:3": true,
	}
	for spec, want := range cases {
		got, err := Randomized(spec)
		if err != nil {
			t.Errorf("Randomized(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("Randomized(%q) = %v, want %v", spec, got, want)
		}
	}
	if _, err := Randomized("bogus"); err == nil {
		t.Error("Randomized(bogus) succeeded, want error")
	}
	// Randomized must reject everything Parse rejects, including known
	// names with bad parameters — sweep expansion validates specs with it.
	for _, spec := range []string{"fsync:2", "ssync-rr:0", "async:x"} {
		if _, err := Randomized(spec); err == nil {
			t.Errorf("Randomized(%q) succeeded, want error", spec)
		}
	}
}

// TestActivateRangeMatchesMask proves the RangeActivator fast path: for
// the schedulers that deliver their activation set as a contiguous slot
// range (FSYNC and the ASYNC wavefronts), slicing the range must activate
// exactly the indices the mask path marks, round for round, including
// wrap-around and a shrinking population.
func TestActivateRangeMatchesMask(t *testing.T) {
	cells := func(n int) []grid.Point {
		out := make([]grid.Point, n)
		for i := range out {
			out[i] = grid.Pt(i, 0)
		}
		return out
	}
	slots := func(n int) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	builds := map[string]func() Scheduler{
		"fsync":   FSYNC,
		"async:1": func() Scheduler { return Sequential(1) },
		"async:3": func() Scheduler { return Sequential(3) },
		"async:9": func() Scheduler { return Sequential(9) }, // wider than the shrunken population
	}
	sizes := []int{7, 7, 7, 5, 5, 4, 3, 1} // population shrinks mid-run
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			maskSched := build()
			rangeSched, ok := build().(RangeActivator)
			if !ok {
				t.Fatalf("%s does not implement RangeActivator", name)
			}
			for round, n := range sizes {
				active := make([]bool, n)
				maskSched.Activate(round, cells(n), slots(n), active)
				lo, m, ok := rangeSched.ActivateRange(round, n)
				if !ok {
					t.Fatalf("round %d: ActivateRange declined", round)
				}
				got := make([]bool, n)
				for j := 0; j < m; j++ {
					got[(lo+j)%n] = true
				}
				for i := range active {
					if active[i] != got[i] {
						t.Fatalf("round %d (n=%d): index %d mask=%v range=%v (lo=%d m=%d)",
							round, n, i, active[i], got[i], lo, m)
					}
				}
			}
		})
	}
}
