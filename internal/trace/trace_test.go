package trace

import (
	"strings"
	"testing"

	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

func TestRenderBasic(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(1, 1))
	art := Render(s, []grid.Point{{X: 1, Y: 1}}, grid.EmptyRect)
	want := "·R\n##\n"
	if art != want {
		t.Errorf("render = %q, want %q", art, want)
	}
}

func TestRenderFixedViewport(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0))
	art := Render(s, nil, grid.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1})
	lines := strings.Split(strings.TrimSuffix(art, "\n"), "\n")
	if len(lines) != 3 || len([]rune(lines[0])) != 3 {
		t.Errorf("viewport render:\n%s", art)
	}
	if mid := []rune(lines[1]); mid[1] != '#' {
		t.Errorf("center not robot:\n%s", art)
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(swarm.New(), nil, grid.EmptyRect); got != "(empty)\n" {
		t.Errorf("empty render = %q", got)
	}
}

func TestRecorderCapturesFrames(t *testing.T) {
	s := gen.Hollow(8, 8)
	rec := NewRecorder(2, s.Bounds())
	eng := fsync.New(s, core.Default(), fsync.Config{
		MaxRounds: 1000,
		OnRound:   rec.Hook(),
	})
	res := eng.Run()
	if !res.Gathered {
		t.Fatalf("did not gather: %+v", res)
	}
	if len(rec.Frames) == 0 {
		t.Fatal("no frames recorded")
	}
	last := rec.Frames[len(rec.Frames)-1]
	if last.Robots > 4 {
		t.Errorf("final frame has %d robots", last.Robots)
	}
	var sb strings.Builder
	if err := rec.Play(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "--- round") {
		t.Error("playback missing headers")
	}
}

func TestRecorderEveryDefaultsTo1(t *testing.T) {
	r := NewRecorder(0, grid.EmptyRect)
	if r.Every != 1 {
		t.Errorf("Every = %d", r.Every)
	}
}
