package trace

import (
	"strings"
	"testing"

	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

func TestRenderBasic(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(1, 1))
	art := Render(s, []grid.Point{{X: 1, Y: 1}}, grid.EmptyRect)
	want := "·R\n##\n"
	if art != want {
		t.Errorf("render = %q, want %q", art, want)
	}
}

func TestRenderFixedViewport(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0))
	art := Render(s, nil, grid.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1})
	lines := strings.Split(strings.TrimSuffix(art, "\n"), "\n")
	if len(lines) != 3 || len([]rune(lines[0])) != 3 {
		t.Errorf("viewport render:\n%s", art)
	}
	if mid := []rune(lines[1]); mid[1] != '#' {
		t.Errorf("center not robot:\n%s", art)
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(swarm.New(), nil, grid.EmptyRect); got != "(empty)\n" {
		t.Errorf("empty render = %q", got)
	}
}

// FrameOf builds a frame from plain position lists — the shape of the
// public session event payload — equivalent to rendering the same state
// through a swarm.
func TestFrameOf(t *testing.T) {
	s := gen.Hollow(6, 6)
	cells := s.Cells()
	runners := []grid.Point{cells[0], cells[3]}
	f := FrameOf(7, cells, runners, 4, s.Bounds())
	if f.Round != 7 || f.Robots != len(cells) || f.Runners != 2 || f.Merges != 4 {
		t.Fatalf("frame header: %+v", f)
	}
	if want := Render(s, runners, s.Bounds()); f.Art != want {
		t.Errorf("FrameOf art diverged from swarm render:\n%s\nvs\n%s", f.Art, want)
	}
	if strings.Count(f.Art, "R") != 2 {
		t.Errorf("runner highlights missing:\n%s", f.Art)
	}
}
