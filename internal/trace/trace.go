// Package trace renders swarm states as ASCII frames and records
// round-by-round simulation histories for the visualization tool and for
// test debugging. Runners (robots holding run states) are highlighted,
// making the reshapement waves of §3.2 visible in the animation.
package trace

import (
	"fmt"
	"io"
	"strings"

	"gridgather/internal/fsync"
	"gridgather/internal/grid"
)

// Occupancy is the minimal read surface Render draws from. Both
// *swarm.Swarm and the engine's world.Backend satisfy it, so per-round
// snapshots render straight off the engine state without materializing a
// swarm copy each frame.
type Occupancy interface {
	Has(p grid.Point) bool
	Bounds() grid.Rect
}

// Render draws the swarm clipped to the given bounds. Robots are '#',
// runner positions 'R', free cells '·'.
func Render(s Occupancy, runners []grid.Point, bounds grid.Rect) string {
	if bounds.Empty() {
		bounds = s.Bounds()
	}
	if bounds.Empty() {
		return "(empty)\n"
	}
	runnerSet := make(map[grid.Point]bool, len(runners))
	for _, r := range runners {
		runnerSet[r] = true
	}
	var b strings.Builder
	for y := bounds.MaxY; y >= bounds.MinY; y-- {
		for x := bounds.MinX; x <= bounds.MaxX; x++ {
			p := grid.Pt(x, y)
			switch {
			case runnerSet[p]:
				b.WriteByte('R')
			case s.Has(p):
				b.WriteByte('#')
			default:
				b.WriteRune('·')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Frame is one recorded round.
type Frame struct {
	Round   int
	Robots  int
	Merges  int // cumulative
	Runners int
	Art     string
}

// Recorder captures frames from an engine via its OnRound hook.
type Recorder struct {
	// Every records one frame per Every rounds (plus round 0 and the final
	// round). Default 1.
	Every  int
	Bounds grid.Rect // fixed viewport; empty = per-frame bounds
	Frames []Frame
}

// NewRecorder builds a recorder capturing every k-th round within the given
// viewport (pass grid.EmptyRect for auto bounds).
func NewRecorder(every int, bounds grid.Rect) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{Every: every, Bounds: bounds}
}

// Snapshot records the engine's current state unconditionally.
func (r *Recorder) Snapshot(e *fsync.Engine) {
	runners := e.Runners()
	w := e.World()
	r.Frames = append(r.Frames, Frame{
		Round:   e.Round(),
		Robots:  w.Len(),
		Merges:  e.Merges(),
		Runners: len(runners),
		Art:     Render(w, runners, r.Bounds),
	})
}

// Hook returns an OnRound callback recording every Every-th round.
func (r *Recorder) Hook() func(*fsync.Engine) {
	return func(e *fsync.Engine) {
		if e.Round()%r.Every == 0 || e.Gathered() {
			r.Snapshot(e)
		}
	}
}

// Play writes all frames to w, separated by headers.
func (r *Recorder) Play(w io.Writer) error {
	for _, f := range r.Frames {
		if _, err := fmt.Fprintf(w, "--- round %d | robots %d | merges %d | runners %d ---\n%s\n",
			f.Round, f.Robots, f.Merges, f.Runners, f.Art); err != nil {
			return err
		}
	}
	return nil
}
