// Package trace renders swarm states as ASCII frames for the
// visualization tool and for test debugging. Runners (robots holding run
// states) are highlighted, making the reshapement waves of §3.2 visible
// in the animation. Frames are built from plain position lists (FrameOf)
// — the shape of the public session event payload — so consumers observe
// a gridgather.Simulation instead of hooking the engine.
package trace

import (
	"strings"

	"gridgather/internal/grid"
)

// Occupancy is the minimal read surface Render draws from. *swarm.Swarm,
// the engine's world.Dense and the pointSet behind FrameOf all satisfy
// it, so frames render without materializing a swarm copy.
type Occupancy interface {
	Has(p grid.Point) bool
	Bounds() grid.Rect
}

// Render draws the swarm clipped to the given bounds. Robots are '#',
// runner positions 'R', free cells '·'.
func Render(s Occupancy, runners []grid.Point, bounds grid.Rect) string {
	if bounds.Empty() {
		bounds = s.Bounds()
	}
	if bounds.Empty() {
		return "(empty)\n"
	}
	runnerSet := make(map[grid.Point]bool, len(runners))
	for _, r := range runners {
		runnerSet[r] = true
	}
	var b strings.Builder
	for y := bounds.MaxY; y >= bounds.MinY; y-- {
		for x := bounds.MinX; x <= bounds.MaxX; x++ {
			p := grid.Pt(x, y)
			switch {
			case runnerSet[p]:
				b.WriteByte('R')
			case s.Has(p):
				b.WriteByte('#')
			default:
				b.WriteRune('·')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Frame is one recorded round.
type Frame struct {
	Round   int
	Robots  int
	Merges  int // cumulative
	Runners int
	Art     string
}

// pointSet adapts a plain cell list to the Occupancy read surface, for
// rendering frames from session event payloads rather than engine state.
type pointSet map[grid.Point]bool

func (s pointSet) Has(p grid.Point) bool { return s[p] }

func (s pointSet) Bounds() grid.Rect {
	r := grid.EmptyRect
	for p := range s {
		r = r.Include(p)
	}
	return r
}

// FrameOf renders one frame from plain robot/runner position lists — the
// shape of the public session event payload (gridgather.Event), which
// borrows engine scratch; callers converting events should hand the
// positions straight in, within the callback. bounds fixes the viewport
// (grid.EmptyRect = auto).
func FrameOf(round int, robots, runners []grid.Point, merges int, bounds grid.Rect) Frame {
	occ := make(pointSet, len(robots))
	for _, p := range robots {
		occ[p] = true
	}
	return Frame{
		Round:   round,
		Robots:  len(robots),
		Merges:  merges,
		Runners: len(runners),
		Art:     Render(occ, runners, bounds),
	}
}
