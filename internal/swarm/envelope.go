package swarm

import "gridgather/internal/grid"

// This file implements the constructions used in the proof of Lemma 1
// (Fig. 18): the vector chain along the swarm's outer boundary, its division
// into longest x-monotone subchains, and the upper envelope.

// VectorChain returns the displacement vectors along the outer contour:
// chain[i] = contour[i+1] - contour[i] (cyclically). Each vector is one of
// the eight king moves.
func (s *Swarm) VectorChain() []grid.Point {
	contour := s.OuterContour()
	n := len(contour)
	if n < 2 {
		return nil
	}
	out := make([]grid.Point, n)
	for i := 0; i < n; i++ {
		out[i] = contour[(i+1)%n].Sub(contour[i])
	}
	return out
}

// UpperEnvelope returns, for each occupied column x, the topmost occupied
// cell in that column, ordered by x ascending. The proof of Lemma 1
// considers the upper envelope of the swarm and its left- and rightmost
// robots s and t.
func (s *Swarm) UpperEnvelope() []grid.Point {
	b := s.Bounds()
	if b.Empty() {
		return nil
	}
	var out []grid.Point
	for x := b.MinX; x <= b.MaxX; x++ {
		found := false
		var top grid.Point
		for y := b.MaxY; y >= b.MinY; y-- {
			if s.Has(grid.Pt(x, y)) {
				top = grid.Pt(x, y)
				found = true
				break
			}
		}
		if found {
			out = append(out, top)
		}
	}
	return out
}

// MonotoneSubchains splits the contour's vector chain into maximal
// x-monotone subchains, mirroring the construction in the proof of Lemma 1:
// a new subchain starts whenever the x-direction of progress flips sign.
// Vectors with zero x-component extend the current subchain. Each subchain
// is returned as the index range [start, end) into the vector chain.
func (s *Swarm) MonotoneSubchains() [][2]int {
	chain := s.VectorChain()
	n := len(chain)
	if n == 0 {
		return nil
	}
	var ranges [][2]int
	curDir := 0
	start := 0
	for i, v := range chain {
		sx := signInt(v.X)
		if sx == 0 {
			continue
		}
		if curDir == 0 {
			curDir = sx
			continue
		}
		if sx != curDir {
			ranges = append(ranges, [2]int{start, i})
			start = i
			curDir = sx
		}
	}
	ranges = append(ranges, [2]int{start, n})
	return ranges
}

func signInt(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}
