// Package swarm maintains the global state of a robot swarm on the grid:
// which cells are occupied, connectivity in the sense of the paper
// (horizontal/vertical adjacency), boundary classification, contour tracing
// and the geometric aggregates used by the analysis (smallest enclosing
// rectangle, upper envelope, vector chains).
//
// A Swarm stores pure occupancy. Robot identities, run states and movement
// are handled by the FSYNC engine (internal/fsync); the decision rules live
// in internal/core.
package swarm

import (
	"fmt"
	"sort"

	"gridgather/internal/grid"
)

// Swarm is a set of occupied grid cells. Robots are point-shaped and
// indistinguishable, so occupancy is all there is; two robots never share a
// cell between rounds (collisions merge).
type Swarm struct {
	cells map[grid.Point]struct{}
}

// New returns a swarm occupying the given cells. Duplicate cells collapse.
func New(cells ...grid.Point) *Swarm {
	s := &Swarm{cells: make(map[grid.Point]struct{}, len(cells))}
	for _, c := range cells {
		s.cells[c] = struct{}{}
	}
	return s
}

// NewSized returns an empty swarm with capacity pre-sized for n cells, so
// hot paths that rebuild the swarm every round (the FSYNC engine's move
// phase) avoid incremental map growth.
func NewSized(n int) *Swarm {
	return &Swarm{cells: make(map[grid.Point]struct{}, n)}
}

// Clone returns a deep copy of the swarm.
func (s *Swarm) Clone() *Swarm {
	c := &Swarm{cells: make(map[grid.Point]struct{}, len(s.cells))}
	for p := range s.cells {
		c.cells[p] = struct{}{}
	}
	return c
}

// Add marks cell p occupied.
func (s *Swarm) Add(p grid.Point) { s.cells[p] = struct{}{} }

// Remove marks cell p free.
func (s *Swarm) Remove(p grid.Point) { delete(s.cells, p) }

// Has reports whether cell p is occupied.
func (s *Swarm) Has(p grid.Point) bool {
	_, ok := s.cells[p]
	return ok
}

// Len returns the number of robots.
func (s *Swarm) Len() int { return len(s.cells) }

// Cells returns all occupied cells in deterministic (Y, X) order.
func (s *Swarm) Cells() []grid.Point {
	out := make([]grid.Point, 0, len(s.cells))
	for p := range s.cells {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Bounds returns the smallest enclosing rectangle of the swarm.
func (s *Swarm) Bounds() grid.Rect {
	r := grid.EmptyRect
	for p := range s.cells {
		r = r.Include(p)
	}
	return r
}

// Gathered reports whether the swarm has reached the paper's goal
// configuration: all robots within one 2×2 square. In the paper's model that
// situation "cannot be simplified anymore".
func (s *Swarm) Gathered() bool {
	return s.Len() > 0 && s.Bounds().FitsIn2x2()
}

// Degree returns the number of occupied 4-neighbors of p (its connectivity
// degree, between 0 and 4 for an occupied cell in a connected swarm).
func (s *Swarm) Degree(p grid.Point) int {
	d := 0
	for _, q := range grid.Neighbors4(p) {
		if s.Has(q) {
			d++
		}
	}
	return d
}

// Connected reports whether the swarm is connected with respect to
// horizontal/vertical adjacency — the paper's connectivity notion. The empty
// swarm is vacuously connected; a singleton is connected.
//
// Callers that check connectivity every round should hold a ConnScratch
// and call its Connected method instead, which reuses the BFS structures.
func (s *Swarm) Connected() bool {
	var c ConnScratch
	return c.Connected(s)
}

// ConnScratch is reusable scratch for repeated connectivity checks: the
// BFS visited set and stack survive between calls, so a per-round check
// (the engine's CheckConnectivity loop) stops allocating a fresh map and
// stack every round. The zero value is ready to use; a ConnScratch must
// not be shared between concurrent checks.
type ConnScratch struct {
	seen  map[grid.Point]struct{}
	stack []grid.Point
}

// Connected reports whether s is connected, reusing the scratch.
func (c *ConnScratch) Connected(s *Swarm) bool {
	if len(s.cells) <= 1 {
		return true
	}
	if c.seen == nil {
		c.seen = make(map[grid.Point]struct{}, len(s.cells))
	} else {
		clear(c.seen)
	}
	var start grid.Point
	for p := range s.cells {
		start = p
		break
	}
	stack := append(c.stack[:0], start)
	c.seen[start] = struct{}{}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range grid.Neighbors4(p) {
			if s.Has(q) {
				if _, ok := c.seen[q]; !ok {
					c.seen[q] = struct{}{}
					stack = append(stack, q)
				}
			}
		}
	}
	c.stack = stack[:0]
	return len(c.seen) == len(s.cells)
}

// Components returns the 4-connected components of the swarm, each as a
// deterministic sorted cell list, ordered by their smallest cell.
func (s *Swarm) Components() [][]grid.Point {
	seen := make(map[grid.Point]struct{}, len(s.cells))
	var comps [][]grid.Point
	for _, start := range s.Cells() {
		if _, ok := seen[start]; ok {
			continue
		}
		var comp []grid.Point
		stack := []grid.Point{start}
		seen[start] = struct{}{}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, p)
			for _, q := range grid.Neighbors4(p) {
				if s.Has(q) {
					if _, ok := seen[q]; !ok {
						seen[q] = struct{}{}
						stack = append(stack, q)
					}
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i].Less(comp[j]) })
		comps = append(comps, comp)
	}
	return comps
}

// String renders the swarm as a multi-line ASCII map ('#' occupied,
// '.' free), top row first, for debugging.
func (s *Swarm) String() string {
	b := s.Bounds()
	if b.Empty() {
		return "(empty swarm)"
	}
	out := make([]byte, 0, (b.Width()+1)*b.Height())
	for y := b.MaxY; y >= b.MinY; y-- {
		for x := b.MinX; x <= b.MaxX; x++ {
			if s.Has(grid.Pt(x, y)) {
				out = append(out, '#')
			} else {
				out = append(out, '.')
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}

// Equal reports whether two swarms occupy exactly the same cells.
func (s *Swarm) Equal(t *Swarm) bool {
	if s.Len() != t.Len() {
		return false
	}
	for p := range s.cells {
		if !t.Has(p) {
			return false
		}
	}
	return true
}

// Diameter returns the maximum L∞ distance between any two robots, a lower
// bound (up to constants) on the rounds any gathering strategy needs, since
// robots move one cell per round (Theorem 1's Ω(n) argument uses the initial
// diameter).
func (s *Swarm) Diameter() int {
	b := s.Bounds()
	if b.Empty() {
		return 0
	}
	return max(b.Width(), b.Height()) - 1
}

// Validate panics unless the swarm is non-empty and connected. It is a
// convenience for constructing test scenarios.
func (s *Swarm) Validate() {
	if s.Len() == 0 {
		panic("swarm: empty")
	}
	if !s.Connected() {
		panic(fmt.Sprintf("swarm: not connected:\n%s", s))
	}
}
