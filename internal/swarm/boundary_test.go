package swarm

import (
	"testing"

	"gridgather/internal/grid"
)

// hollowSquare builds a w×w square ring of robots with a (w-2)×(w-2) hole.
func hollowSquare(w int) *Swarm {
	s := New()
	for x := 0; x < w; x++ {
		for y := 0; y < w; y++ {
			if x == 0 || y == 0 || x == w-1 || y == w-1 {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

func solidSquare(w int) *Swarm {
	s := New()
	for x := 0; x < w; x++ {
		for y := 0; y < w; y++ {
			s.Add(grid.Pt(x, y))
		}
	}
	return s
}

func TestIsBoundary(t *testing.T) {
	s := solidSquare(3)
	if s.IsBoundary(grid.Pt(1, 1)) {
		t.Error("center of 3x3 must not be boundary")
	}
	if !s.IsBoundary(grid.Pt(0, 0)) {
		t.Error("corner must be boundary")
	}
	if s.IsBoundary(grid.Pt(9, 9)) {
		t.Error("free cell is not boundary")
	}
}

// TestFigure1_Boundaries reproduces the classification of Figure 1: a swarm
// with a hole has one outer boundary and an inner boundary around the hole;
// robots adjacent only to the hole are "hatched" (inner), robots touching
// the exterior are "black" (outer).
func TestFigure1_Boundaries(t *testing.T) {
	// 5x5 solid square with the center cell removed: every edge robot is
	// outer; the four 4-neighbors of the center are inner-adjacent but they
	// are NOT on the outer boundary only if they don't touch the exterior.
	s := solidSquare(5)
	s.Remove(grid.Pt(2, 2))
	kinds := s.Classify()

	if kinds[grid.Pt(0, 0)] != Outer {
		t.Errorf("corner kind = %v", kinds[grid.Pt(0, 0)])
	}
	// (2,1) touches the hole (2,2)?? no: neighbors of (2,1) are (1,1),(3,1),
	// (2,0),(2,2). (2,2) is the hole, and (2,1) does not touch the exterior,
	// so it must be Inner.
	if kinds[grid.Pt(2, 1)] != Inner {
		t.Errorf("hole-adjacent robot kind = %v, want inner", kinds[grid.Pt(2, 1)])
	}
	// (1,1) has all four neighbors occupied: interior.
	if kinds[grid.Pt(1, 1)] != Interior {
		t.Errorf("(1,1) kind = %v, want interior", kinds[grid.Pt(1, 1)])
	}

	if len(s.Holes()) != 1 {
		t.Errorf("holes = %d, want 1", len(s.Holes()))
	}
}

func TestClassifyRingIsAllOuterAndInner(t *testing.T) {
	// In a 1-thick ring every robot touches both the exterior and the hole;
	// the classification prefers Outer (a robot that can see the exterior is
	// on the outer boundary).
	s := hollowSquare(5)
	kinds := s.Classify()
	for p, k := range kinds {
		if k != Outer {
			t.Errorf("ring robot %v classified %v, want outer", p, k)
		}
	}
}

func TestHoles(t *testing.T) {
	if holes := solidSquare(4).Holes(); len(holes) != 0 {
		t.Errorf("solid square has %d holes", len(holes))
	}
	s := hollowSquare(6)
	holes := s.Holes()
	if len(holes) != 1 {
		t.Fatalf("holes = %d", len(holes))
	}
	if len(holes[0]) != 16 {
		t.Errorf("hole size = %d, want 16", len(holes[0]))
	}
	// Two separate holes.
	s2 := FromASCII(`
#####
#.#.#
#####
`)
	if len(s2.Holes()) != 2 {
		t.Errorf("want 2 holes, got %d", len(s2.Holes()))
	}
}

func TestBoundaryRobotsOfLine(t *testing.T) {
	s := line(5)
	if got := len(s.BoundaryRobots()); got != 5 {
		t.Errorf("all robots of a line are boundary, got %d", got)
	}
}

func TestClassifyNoHoleNoInner(t *testing.T) {
	s := solidSquare(6)
	for p, k := range s.Classify() {
		if k == Inner {
			t.Errorf("robot %v classified inner in hole-free swarm", p)
		}
	}
}
