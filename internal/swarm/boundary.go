package swarm

import (
	"sort"

	"gridgather/internal/grid"
)

// BoundaryKind classifies a robot's position with respect to the swarm's
// boundaries (Fig. 1 of the paper).
type BoundaryKind int

const (
	// Interior robots have all four horizontal/vertical neighbors occupied.
	Interior BoundaryKind = iota
	// Outer robots lie on the outer boundary: at least one free 4-neighbor
	// cell belongs to the unbounded exterior region.
	Outer
	// Inner robots lie only on inner boundaries: they have free 4-neighbors
	// but every such free cell belongs to an enclosed hole.
	Inner
)

func (k BoundaryKind) String() string {
	switch k {
	case Interior:
		return "interior"
	case Outer:
		return "outer"
	case Inner:
		return "inner"
	default:
		return "unknown"
	}
}

// IsBoundary reports whether the robot at p has at least one unconnected
// side, i.e. lies on some boundary of the swarm. The paper: "The boundaries
// consist of all robots who have at least one unconnected side."
func (s *Swarm) IsBoundary(p grid.Point) bool {
	return s.Has(p) && s.Degree(p) < 4
}

// BoundaryRobots returns all boundary robots in deterministic order.
func (s *Swarm) BoundaryRobots() []grid.Point {
	var out []grid.Point
	for _, p := range s.Cells() {
		if s.Degree(p) < 4 {
			out = append(out, p)
		}
	}
	return out
}

// Classify labels every robot as Interior, Outer or Inner (Fig. 1: black
// robots are the outer boundary, hatched robots are inner boundaries).
//
// Classification floods the free cells of an enlarged bounding box: free
// cells reachable from outside the bounding box form the exterior; a robot
// adjacent to an exterior cell is on the outer boundary; a robot adjacent
// only to enclosed free cells is on an inner boundary.
func (s *Swarm) Classify() map[grid.Point]BoundaryKind {
	out := make(map[grid.Point]BoundaryKind, s.Len())
	ext := s.exteriorCells()
	for p := range s.cells {
		kind := Interior
		for _, q := range grid.Neighbors4(p) {
			if s.Has(q) {
				continue
			}
			if _, isExt := ext[q]; isExt {
				kind = Outer
				break
			}
			kind = Inner
		}
		out[p] = kind
	}
	return out
}

// exteriorCells returns the free cells of the bounding box inflated by one
// that are 4-reachable from the box corner, i.e. the exterior region
// restricted to the box.
func (s *Swarm) exteriorCells() map[grid.Point]struct{} {
	b := s.Bounds()
	if b.Empty() {
		return nil
	}
	box := grid.Rect{MinX: b.MinX - 1, MinY: b.MinY - 1, MaxX: b.MaxX + 1, MaxY: b.MaxY + 1}
	start := grid.Pt(box.MinX, box.MinY)
	ext := make(map[grid.Point]struct{})
	ext[start] = struct{}{}
	stack := []grid.Point{start}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range grid.Neighbors4(p) {
			if !box.Contains(q) || s.Has(q) {
				continue
			}
			if _, ok := ext[q]; !ok {
				ext[q] = struct{}{}
				stack = append(stack, q)
			}
		}
	}
	return ext
}

// Holes returns the enclosed free regions (one sorted cell list per hole).
// A swarm with holes has inner boundaries.
func (s *Swarm) Holes() [][]grid.Point {
	b := s.Bounds()
	if b.Empty() {
		return nil
	}
	ext := s.exteriorCells()
	seen := make(map[grid.Point]struct{})
	var holes [][]grid.Point
	for y := b.MinY; y <= b.MaxY; y++ {
		for x := b.MinX; x <= b.MaxX; x++ {
			start := grid.Pt(x, y)
			if s.Has(start) {
				continue
			}
			if _, isExt := ext[start]; isExt {
				continue
			}
			if _, ok := seen[start]; ok {
				continue
			}
			var hole []grid.Point
			stack := []grid.Point{start}
			seen[start] = struct{}{}
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				hole = append(hole, p)
				for _, q := range grid.Neighbors4(p) {
					if s.Has(q) {
						continue
					}
					if _, isExt := ext[q]; isExt {
						continue
					}
					if !b.Contains(q) {
						continue
					}
					if _, ok := seen[q]; !ok {
						seen[q] = struct{}{}
						stack = append(stack, q)
					}
				}
			}
			sort.Slice(hole, func(i, j int) bool { return hole[i].Less(hole[j]) })
			holes = append(holes, hole)
		}
	}
	return holes
}
