package swarm

import "gridgather/internal/grid"

// OuterContour traces the outer boundary of the swarm as a closed cyclic
// sequence of robot cells. Tracing follows the "cracks" (cell edges) between
// occupied and free cells of the unbounded face, keeping occupied cells on
// the right-hand side, which terminates provably for any non-empty swarm.
// Consecutive contour cells are king-move adjacent.
//
// Robots on width-1 protrusions appear multiple times — the paper notes "the
// constructed vector chain may overlap itself at places where the diameter
// of the swarm's boundary amounts only 1, but cannot contain any crossings".
//
// The sequence does not repeat the starting cell at the end. For a singleton
// swarm the contour is that single cell.
func (s *Swarm) OuterContour() []grid.Point {
	if s.Len() == 0 {
		return nil
	}
	start := s.startCell()
	if s.Len() == 1 {
		return []grid.Point{start}
	}

	// Vertices are integer lattice corners; cell (x, y) spans the unit
	// square [x, x+1] × [y, y+1]. We start on the left edge of the
	// leftmost-topmost cell heading north, with the cell on our right.
	startV := start
	startD := grid.North

	var cells []grid.Point
	v, d := startV, startD
	maxSteps := 16*s.Len() + 16
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			panic("swarm: contour tracing did not terminate")
		}
		c := s.edgeRightCell(v, d)
		if len(cells) == 0 || cells[len(cells)-1] != c {
			cells = append(cells, c)
		}
		v = v.Add(d)
		// Choose the next heading: prefer turning left, then straight, then
		// right, then reversing. Left-first resolves diagonal pinch points
		// without crossing the crack.
		next := grid.Zero
		for _, e := range [4]grid.Point{d.PerpCCW(), d, d.PerpCW(), d.Neg()} {
			if s.edgeValid(v, e) {
				next = e
				break
			}
		}
		if next == grid.Zero {
			panic("swarm: contour tracing stuck")
		}
		d = next
		if v == startV && d == startD {
			break
		}
	}
	// Drop a duplicated wrap-around cell.
	if len(cells) > 1 && cells[len(cells)-1] == cells[0] {
		cells = cells[:len(cells)-1]
	}
	return cells
}

// edgeRightCell returns the cell on the right-hand side of the directed edge
// from vertex v toward v+d (y-up orientation).
func (s *Swarm) edgeRightCell(v, d grid.Point) grid.Point {
	switch d {
	case grid.North:
		return grid.Pt(v.X, v.Y)
	case grid.South:
		return grid.Pt(v.X-1, v.Y-1)
	case grid.East:
		return grid.Pt(v.X, v.Y-1)
	case grid.West:
		return grid.Pt(v.X-1, v.Y)
	}
	panic("swarm: bad edge direction")
}

// edgeLeftCell returns the cell on the left-hand side of the directed edge.
func (s *Swarm) edgeLeftCell(v, d grid.Point) grid.Point {
	switch d {
	case grid.North:
		return grid.Pt(v.X-1, v.Y)
	case grid.South:
		return grid.Pt(v.X, v.Y-1)
	case grid.East:
		return grid.Pt(v.X, v.Y)
	case grid.West:
		return grid.Pt(v.X-1, v.Y-1)
	}
	panic("swarm: bad edge direction")
}

// edgeValid reports whether the directed edge from v keeps an occupied cell
// on the right and a free cell on the left — i.e. it is a boundary crack
// traversed in the canonical orientation.
func (s *Swarm) edgeValid(v, d grid.Point) bool {
	return s.Has(s.edgeRightCell(v, d)) && !s.Has(s.edgeLeftCell(v, d))
}

// startCell returns the topmost of the leftmost occupied cells. Its west
// neighbor is guaranteed free, so its left edge lies on the outer boundary.
func (s *Swarm) startCell() grid.Point {
	var best grid.Point
	first := true
	for p := range s.cells {
		if first {
			best, first = p, false
			continue
		}
		if p.X < best.X || (p.X == best.X && p.Y > best.Y) {
			best = p
		}
	}
	return best
}

// ContourLength returns the length of the outer contour cycle (number of
// entries, counting repeated visits of width-1 protrusions). It is the
// discrete analogue of the outer boundary length the algorithm shortens.
func (s *Swarm) ContourLength() int { return len(s.OuterContour()) }

// BoundaryDistance returns the minimal number of steps between two cells
// along the outer contour cycle (the paper's run distance is "the number of
// robots on the subboundary connecting both +1", Fig. 10). Returns -1 if
// either cell is not on the contour.
func (s *Swarm) BoundaryDistance(a, b grid.Point) int {
	contour := s.OuterContour()
	n := len(contour)
	best := -1
	for i, p := range contour {
		if p != a {
			continue
		}
		for j, q := range contour {
			if q != b {
				continue
			}
			d := i - j
			if d < 0 {
				d = -d
			}
			if n-d < d {
				d = n - d
			}
			if best < 0 || d < best {
				best = d
			}
		}
	}
	return best
}
