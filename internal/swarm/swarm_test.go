package swarm

import (
	"strings"
	"testing"

	"gridgather/internal/grid"
)

// FromASCII builds a swarm from an ASCII picture: '#' (or 'X') marks a
// robot, anything else is free. The top line of the picture is the highest
// y. The bottom-left character maps to (0, 0).
func FromASCII(pic string) *Swarm {
	lines := strings.Split(strings.Trim(pic, "\n"), "\n")
	s := New()
	h := len(lines)
	for row, line := range lines {
		y := h - 1 - row
		for x, ch := range line {
			if ch == '#' || ch == 'X' {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

func line(n int) *Swarm {
	s := New()
	for i := 0; i < n; i++ {
		s.Add(grid.Pt(i, 0))
	}
	return s
}

func TestNewAndBasicOps(t *testing.T) {
	s := New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 0))
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (duplicates collapse)", s.Len())
	}
	s.Add(grid.Pt(5, 5))
	if !s.Has(grid.Pt(5, 5)) {
		t.Error("Add/Has failed")
	}
	s.Remove(grid.Pt(5, 5))
	if s.Has(grid.Pt(5, 5)) {
		t.Error("Remove failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := line(3)
	c := s.Clone()
	c.Remove(grid.Pt(0, 0))
	if !s.Has(grid.Pt(0, 0)) {
		t.Error("Clone shares storage")
	}
	if !s.Clone().Equal(s) {
		t.Error("Clone not equal")
	}
}

func TestCellsDeterministicOrder(t *testing.T) {
	s := New(grid.Pt(2, 1), grid.Pt(0, 0), grid.Pt(1, 1), grid.Pt(-1, 0))
	got := s.Cells()
	want := []grid.Point{{X: -1, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cells order = %v", got)
		}
	}
}

func TestConnected(t *testing.T) {
	if !New().Connected() {
		t.Error("empty swarm should be connected")
	}
	if !New(grid.Pt(0, 0)).Connected() {
		t.Error("singleton should be connected")
	}
	if !line(10).Connected() {
		t.Error("line should be connected")
	}
	// Diagonal adjacency is NOT connectivity in the paper's model.
	diag := New(grid.Pt(0, 0), grid.Pt(1, 1))
	if diag.Connected() {
		t.Error("diagonal pair must not count as connected")
	}
	gap := New(grid.Pt(0, 0), grid.Pt(2, 0))
	if gap.Connected() {
		t.Error("gapped pair must not be connected")
	}
}

func TestComponents(t *testing.T) {
	s := New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(5, 5), grid.Pt(5, 6))
	comps := s.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d, %d", len(comps[0]), len(comps[1]))
	}
}

func TestBoundsAndDiameter(t *testing.T) {
	s := FromASCII(`
###
#..
#..
`)
	b := s.Bounds()
	if b.Width() != 3 || b.Height() != 3 {
		t.Errorf("bounds = %v", b)
	}
	if got := s.Diameter(); got != 2 {
		t.Errorf("diameter = %d, want 2", got)
	}
	if New().Diameter() != 0 {
		t.Error("empty diameter should be 0")
	}
}

func TestGathered(t *testing.T) {
	if !New(grid.Pt(0, 0)).Gathered() {
		t.Error("singleton is gathered")
	}
	if !New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1), grid.Pt(1, 1)).Gathered() {
		t.Error("2x2 square is gathered")
	}
	if line(3).Gathered() {
		t.Error("1x3 line is not gathered")
	}
	if New().Gathered() {
		t.Error("empty swarm is not gathered")
	}
}

func TestDegree(t *testing.T) {
	s := FromASCII(`
.#.
###
.#.
`)
	if got := s.Degree(grid.Pt(1, 1)); got != 4 {
		t.Errorf("center degree = %d", got)
	}
	if got := s.Degree(grid.Pt(1, 2)); got != 1 {
		t.Errorf("tip degree = %d", got)
	}
}

func TestStringRendering(t *testing.T) {
	s := New(grid.Pt(0, 0), grid.Pt(1, 1))
	got := s.String()
	want := ".#\n#.\n"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if New().String() != "(empty swarm)" {
		t.Error("empty rendering wrong")
	}
}

func TestFromASCIIRoundTrip(t *testing.T) {
	pic := "##.\n.##\n##.\n"
	s := FromASCII(pic)
	if s.String() != pic {
		t.Errorf("round trip: got\n%s\nwant\n%s", s.String(), pic)
	}
}

func TestValidatePanicsOnDisconnected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(grid.Pt(0, 0), grid.Pt(3, 3)).Validate()
}

// TestConnScratchReuse checks the scratch-reusing connectivity variant
// agrees with the one-shot method across reuse, including after the swarm
// changes shape between calls.
func TestConnScratchReuse(t *testing.T) {
	var sc ConnScratch
	s := New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	if !sc.Connected(s) {
		t.Fatal("line reported disconnected")
	}
	s.Add(grid.Pt(4, 0)) // gap at x=3
	if sc.Connected(s) {
		t.Fatal("gapped line reported connected")
	}
	s.Add(grid.Pt(3, 0))
	if !sc.Connected(s) {
		t.Fatal("filled line reported disconnected")
	}
	if sc.Connected(New()) != true || sc.Connected(New(grid.Pt(9, 9))) != true {
		t.Fatal("empty/singleton must be vacuously connected")
	}
}
