package swarm

import (
	"testing"

	"gridgather/internal/grid"
)

func TestOuterContourSingleton(t *testing.T) {
	s := New(grid.Pt(3, 3))
	c := s.OuterContour()
	if len(c) != 1 || c[0] != grid.Pt(3, 3) {
		t.Errorf("contour = %v", c)
	}
}

func TestOuterContourSquare(t *testing.T) {
	s := solidSquare(3)
	c := s.OuterContour()
	// The 3x3 square's contour is its 8 boundary cells, each exactly once.
	if len(c) != 8 {
		t.Fatalf("contour length = %d, want 8: %v", len(c), c)
	}
	seen := map[grid.Point]bool{}
	for _, p := range c {
		if !s.Has(p) {
			t.Errorf("contour visits free cell %v", p)
		}
		if s.Degree(p) == 4 {
			t.Errorf("contour visits interior cell %v", p)
		}
		seen[p] = true
	}
	if len(seen) != 8 {
		t.Errorf("distinct contour cells = %d", len(seen))
	}
}

func TestOuterContourStepsAreKingMoves(t *testing.T) {
	shapes := []*Swarm{
		line(7),
		solidSquare(4),
		hollowSquare(6),
		FromASCII("##.\n.##\n..#\n"),
		FromASCII("#....\n#....\n#####\n....#\n"),
	}
	for i, s := range shapes {
		c := s.OuterContour()
		for j := range c {
			d := c[(j+1)%len(c)].Sub(c[j])
			if d.Linf() != 1 {
				t.Errorf("shape %d: contour step %v -> %v is not a king move", i, c[j], c[(j+1)%len(c)])
			}
		}
	}
}

func TestOuterContourLineVisitsTwice(t *testing.T) {
	// A 1-thick line's interior robots are visited twice (once per side) —
	// the "vector chain may overlap itself" case noted in the paper.
	s := line(5)
	c := s.OuterContour()
	if len(c) != 8 {
		t.Errorf("contour of a 1x5 line should have 8 entries (2·5-2), got %d: %v", len(c), c)
	}
	count := map[grid.Point]int{}
	for _, p := range c {
		count[p]++
	}
	if count[grid.Pt(2, 0)] != 2 {
		t.Errorf("middle robot visited %d times, want 2", count[grid.Pt(2, 0)])
	}
	if count[grid.Pt(0, 0)] != 1 || count[grid.Pt(4, 0)] != 1 {
		t.Error("line endpoints should be visited once")
	}
}

func TestOuterContourIgnoresHole(t *testing.T) {
	s := solidSquare(5)
	s.Remove(grid.Pt(2, 2))
	c := s.OuterContour()
	for _, p := range c {
		if p == grid.Pt(2, 2) {
			t.Fatal("contour visits the hole")
		}
		// Outer contour must not include the hole-only boundary robots.
		if p.X > 0 && p.X < 4 && p.Y > 0 && p.Y < 4 {
			t.Errorf("outer contour visits inner robot %v", p)
		}
	}
	if len(c) != 16 {
		t.Errorf("contour length = %d, want 16", len(c))
	}
}

func TestBoundaryDistance(t *testing.T) {
	s := solidSquare(3)
	// Opposite corners of the 3x3 square are 4 apart along the 8-cycle.
	if d := s.BoundaryDistance(grid.Pt(0, 0), grid.Pt(2, 2)); d != 4 {
		t.Errorf("distance = %d, want 4", d)
	}
	if d := s.BoundaryDistance(grid.Pt(0, 0), grid.Pt(0, 0)); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := s.BoundaryDistance(grid.Pt(0, 0), grid.Pt(9, 9)); d != -1 {
		t.Errorf("distance to non-contour cell = %d, want -1", d)
	}
}

// TestFigure10_RunDistance reconstructs the distance notion of Figure 10:
// the distance between two runs is the number of robots on the subboundary
// connecting them plus one; on a straight boundary segment that equals the
// cell distance along the contour.
func TestFigure10_RunDistance(t *testing.T) {
	s := line(12)
	// Two runners at (1,0) and (9,0): 7 robots strictly between them,
	// distance 8 along the top side of the contour.
	if d := s.BoundaryDistance(grid.Pt(1, 0), grid.Pt(9, 0)); d != 8 {
		t.Errorf("run distance = %d, want 8", d)
	}
}

func TestContourLength(t *testing.T) {
	if got := solidSquare(4).ContourLength(); got != 12 {
		t.Errorf("4x4 contour length = %d, want 12", got)
	}
}
