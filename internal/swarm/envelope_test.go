package swarm

import (
	"testing"

	"gridgather/internal/grid"
)

func TestVectorChainCloses(t *testing.T) {
	for _, s := range []*Swarm{solidSquare(3), hollowSquare(5), line(6)} {
		chain := s.VectorChain()
		sum := grid.Pt(0, 0)
		for _, v := range chain {
			sum = sum.Add(v)
		}
		if sum != grid.Pt(0, 0) {
			t.Errorf("vector chain does not close: sum = %v", sum)
		}
	}
}

func TestUpperEnvelope(t *testing.T) {
	s := FromASCII(`
..#..
.###.
#####
`)
	env := s.UpperEnvelope()
	want := []grid.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 1}, {X: 4, Y: 0}}
	if len(env) != len(want) {
		t.Fatalf("envelope = %v", env)
	}
	for i := range want {
		if env[i] != want[i] {
			t.Errorf("envelope[%d] = %v, want %v", i, env[i], want[i])
		}
	}
}

// TestFigure18_VectorChain verifies the Lemma 1 construction: the vector
// chain along the outer boundary splits into x-monotone subchains, and at
// least one subchain lies fully on the upper envelope. The construction is
// stated for mergeless swarms, whose boundary consists of quasi lines and
// stairways; a hollow rectangle with long walls is the canonical example.
func TestFigure18_VectorChain(t *testing.T) {
	s := hollowSquare(8)
	s.Validate()

	ranges := s.MonotoneSubchains()
	if len(ranges) < 2 {
		t.Fatalf("expected multiple monotone subchains, got %d", len(ranges))
	}
	chain := s.VectorChain()
	contour := s.OuterContour()

	// Each subchain must be x-monotone.
	for _, r := range ranges {
		dir := 0
		for i := r[0]; i < r[1]; i++ {
			sx := signInt(chain[i].X)
			if sx == 0 {
				continue
			}
			if dir == 0 {
				dir = sx
			} else if sx != dir {
				t.Errorf("subchain %v not x-monotone", r)
			}
		}
	}

	// At least one subchain lies fully on the upper envelope. Maximal
	// x-monotone subchains absorb vertical (zero x-component) prefixes and
	// suffixes — e.g. the descent at the end of the top wall — so trim those
	// before checking, as only the horizontal progress defines the envelope
	// portion the lemma argues about.
	env := map[grid.Point]bool{}
	for _, p := range s.UpperEnvelope() {
		env[p] = true
	}
	found := false
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		for lo < hi && chain[lo].X == 0 {
			lo++
		}
		for hi > lo && chain[hi-1].X == 0 {
			hi--
		}
		if lo >= hi {
			continue
		}
		all := true
		for i := lo; i <= hi && all; i++ { // include the final cell hi
			if !env[contour[i%len(contour)]] {
				all = false
			}
		}
		if all {
			found = true
			break
		}
	}
	if !found {
		t.Error("no monotone subchain lies on the upper envelope")
	}
}

func TestMonotoneSubchainsCoverChain(t *testing.T) {
	s := hollowSquare(6)
	ranges := s.MonotoneSubchains()
	n := len(s.VectorChain())
	covered := 0
	last := 0
	for _, r := range ranges {
		if r[0] != last {
			t.Errorf("gap before %v", r)
		}
		covered += r[1] - r[0]
		last = r[1]
	}
	if covered != n {
		t.Errorf("covered %d of %d", covered, n)
	}
}
