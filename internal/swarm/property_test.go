package swarm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gridgather/internal/grid"
)

// randomSet builds an arbitrary (not necessarily connected) cell set from
// the quick-generated seed.
func randomSet(seed int64, n int) *Swarm {
	rng := rand.New(rand.NewSource(seed))
	s := New()
	for i := 0; i < n; i++ {
		s.Add(grid.Pt(rng.Intn(12)-6, rng.Intn(12)-6))
	}
	return s
}

// randomConnectedSet grows a connected set.
func randomConnectedSet(seed int64, n int) *Swarm {
	rng := rand.New(rand.NewSource(seed))
	s := New(grid.Pt(0, 0))
	cells := []grid.Point{grid.Pt(0, 0)}
	for s.Len() < n {
		base := cells[rng.Intn(len(cells))]
		q := base.Add(grid.Axis4[rng.Intn(4)])
		if !s.Has(q) {
			s.Add(q)
			cells = append(cells, q)
		}
	}
	return s
}

// TestPropertyComponentsPartition: the components of any cell set
// partition it, each component is internally connected, and the swarm is
// Connected iff there is exactly one component.
func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 1 + int(szRaw)%40
		s := randomSet(seed, n)
		comps := s.Components()
		total := 0
		seen := map[grid.Point]bool{}
		for _, comp := range comps {
			total += len(comp)
			sub := New(comp...)
			if !sub.Connected() {
				return false
			}
			for _, c := range comp {
				if seen[c] || !s.Has(c) {
					return false
				}
				seen[c] = true
			}
		}
		if total != s.Len() {
			return false
		}
		return s.Connected() == (len(comps) == 1)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyContour: for connected swarms, the outer contour visits only
// boundary robots, its steps are king moves, and its vector chain closes.
func TestPropertyContour(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 2 + int(szRaw)%60
		s := randomConnectedSet(seed, n)
		contour := s.OuterContour()
		if len(contour) == 0 {
			return false
		}
		sum := grid.Pt(0, 0)
		for i, p := range contour {
			if !s.Has(p) || s.Degree(p) == 4 {
				return false
			}
			q := contour[(i+1)%len(contour)]
			d := q.Sub(p)
			if d.Linf() > 1 {
				return false
			}
			sum = sum.Add(d)
		}
		return sum == grid.Pt(0, 0)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyContourCoversOuterBoundary: every robot classified Outer
// appears on the outer contour, and no Inner-only robot does.
func TestPropertyContourCoversOuterBoundary(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 2 + int(szRaw)%60
		s := randomConnectedSet(seed, n)
		onContour := map[grid.Point]bool{}
		for _, p := range s.OuterContour() {
			onContour[p] = true
		}
		for p, kind := range s.Classify() {
			switch kind {
			case Outer:
				if !onContour[p] {
					return false
				}
			case Inner, Interior:
				if onContour[p] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyCloneEqual: cloning is an involution-free deep copy.
func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		s := randomSet(seed, 1+int(szRaw)%30)
		c := s.Clone()
		if !c.Equal(s) || !s.Equal(c) {
			return false
		}
		// Mutating the clone must not affect the original.
		cells := c.Cells()
		c.Remove(cells[0])
		return s.Has(cells[0])
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(24))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyHolesDisjointFromExterior: hole cells are free, enclosed,
// and disjoint from robots.
func TestPropertyHolesDisjointFromExterior(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := 4 + int(szRaw)%80
		s := randomConnectedSet(seed, n)
		b := s.Bounds()
		for _, hole := range s.Holes() {
			for _, c := range hole {
				if s.Has(c) || !b.Contains(c) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(25))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
