package core

import (
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// §6 of the paper classifies the situations where two runs must pass along
// each other (Fig. 21, cases a–e) by how their quasi lines q and q'
// overlap. These tests construct the observable cases and verify the
// passing protocol: oncoming runs within the passing distance glide
// without reshapement hops, connectivity holds throughout, and gathering
// still completes.

// zTable builds the case-(a)-like scenario: one shared quasi line (the top
// row) whose two endpoint supports hang on opposite sides, so the runs
// started at its ends are oriented with opposite insides and can never
// form a good pair: they must pass.
//
//	                     #
//	                     #   <- right leg (up)
//	#####################
//	#   <- left leg (down)
func zTable(width, leg int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < width; x++ {
		s.Add(grid.Pt(x, 0))
	}
	for y := 1; y <= leg; y++ {
		s.Add(grid.Pt(0, -y).Add(grid.Pt(0, 0)))
		s.Add(grid.Pt(width-1, y))
	}
	return s
}

// TestRunPassing_CaseA_SharedLine: both runs live on the same quasi line
// (q = q', Fig. 21a). They approach, enter the passing operation, glide
// past each other, and the swarm still gathers.
func TestRunPassing_CaseA_SharedLine(t *testing.T) {
	s := zTable(30, 21) // legs longer than MergeMax: ends can't merge away fast
	s.Validate()
	n := s.Len()
	g := Default()
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds:         60*n + 500,
		CheckConnectivity: true,
		StrictViews:       true,
		NoMergeLimit:      30*n + 300,
	})
	res := eng.Run()
	if res.Err != nil || !res.Gathered {
		t.Fatalf("z-table did not gather: %+v", res)
	}
	if g.Stats().PassEnters == 0 {
		t.Error("opposite-inside runs on a shared line never passed (Fig. 21a)")
	}
}

// TestRunPassing_NoHopsDuringPass: during the passing operation runners
// move the state but perform no diagonal hops (the definition of the run
// passing operation).
func TestRunPassing_NoHopsDuringPass(t *testing.T) {
	// A long line, no supports: planted oncoming runs can never roll (no
	// inside anchors), so every state movement is a glide; the test pins
	// the passing bookkeeping: both states survive the crossing.
	s := swarm.New()
	for x := 0; x < 40; x++ {
		s.Add(grid.Pt(x, 0))
	}
	eng, g := engineOn(s)
	eng.SetRound(1) // no starts
	plantRun(eng, grid.Pt(15, 0), grid.East, grid.South)
	plantRun(eng, grid.Pt(22, 0), grid.West, grid.North)
	for i := 0; i < 8; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if g.Stats().Rolls != 0 {
		t.Errorf("rolls during passing = %d, want 0", g.Stats().Rolls)
	}
	if g.Stats().PassEnters == 0 {
		t.Error("runs never entered passing")
	}
	// Both runs survived the crossing and continue in their own directions:
	// the east run is now east of the west run.
	runners := eng.Runners()
	if len(runners) != 2 {
		t.Fatalf("runners = %v", runners)
	}
	var eastAt, westAt grid.Point
	for _, p := range runners {
		for _, r := range eng.StateAt(p).Runs {
			if r.Dir == grid.East {
				eastAt = p
			}
			if r.Dir == grid.West {
				westAt = p
			}
		}
	}
	if eastAt == (grid.Point{}) || westAt == (grid.Point{}) {
		t.Fatalf("missing a run after passing: %v", runners)
	}
	if eastAt.X <= westAt.X {
		t.Errorf("runs did not pass: east run at %v, west run at %v", eastAt, westAt)
	}
}

// TestRunPassing_CaseCD_DisjointLines: runs on different, vertically
// separated quasi lines (Fig. 21 c/d) approach along parallel walls of a
// zig-ring. Nothing may disconnect and gathering completes; passing may or
// may not trigger depending on which side the contours face, so only the
// safety properties are asserted.
func TestRunPassing_CaseCD_DisjointLines(t *testing.T) {
	// A ring with a jogged top wall: runs started at the four outer corners
	// travel on overlapping but non-identical quasi lines.
	s := joggedRing()
	n := s.Len()
	g := Default()
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds:         60*n + 500,
		CheckConnectivity: true,
		StrictViews:       true,
		NoMergeLimit:      30*n + 300,
	})
	res := eng.Run()
	if res.Err != nil || !res.Gathered {
		t.Fatalf("jogged ring did not gather: %+v", res)
	}
	if res.RunsStarted == 0 {
		t.Error("no runs on the jogged ring")
	}
}

// TestRunPassing_ResumeAfterPass: after the passing glide expires, a run
// resumes normal operation (Phase back to roll).
func TestRunPassing_ResumeAfterPass(t *testing.T) {
	s := swarm.New()
	for x := 0; x < 40; x++ {
		s.Add(grid.Pt(x, 0))
	}
	eng, _ := engineOn(s)
	eng.SetRound(1)
	plantRun(eng, grid.Pt(15, 0), grid.East, grid.South)
	plantRun(eng, grid.Pt(22, 0), grid.West, grid.North)
	// Glide long enough for PassGlide (6) to expire after the crossing.
	for i := 0; i < 12; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range eng.Runners() {
		for _, r := range eng.StateAt(p).Runs {
			if r.Phase != 0 { // robot.PhaseRoll
				t.Errorf("run at %v still in phase %v after passing window", p, r.Phase)
			}
		}
	}
}
