package core

import (
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/view"
)

// This file contains the boundary-walking helpers runs use to find their
// next robot and to evaluate the look-ahead termination conditions of
// Table 1. A run's moving direction is fixed at start ("its ... moving
// direction always remains unchanged"), so walking follows the quasi line
// in that direction, tolerating the ≤ 2-cell perpendicular jogs that
// Definition 1 allows.

// successor returns the next robot along the line after rel (relative
// coordinates), given the walk arrived from prev. Candidates are, in order:
// straight ahead, the outward jog, the inward jog. Returns ok=false when no
// candidate is occupied (the line ends) and horizon=true when a candidate
// could not be inspected because it lies outside the viewing radius.
func successor(v *view.View, rel, prev, dir, inside grid.Point) (next grid.Point, ok, horizon bool) {
	out := inside.Neg()
	for _, c := range [3]grid.Point{rel.Add(dir), rel.Add(out), rel.Add(inside)} {
		if c == prev {
			continue
		}
		if c.L1() > v.Radius() {
			return grid.Zero, false, true
		}
		if v.Occ(c) {
			return c, true, false
		}
	}
	return grid.Zero, false, false
}

// walkResult reports what a look-ahead walk along the run's line found.
// Distances are in steps along the boundary (the paper's run distance,
// Fig. 10); 0 means "not found".
type walkResult struct {
	// EndpointAt is the distance at which the quasi line visibly ends:
	// either the walk dead-ends or it makes three consecutive perpendicular
	// steps (a vertical subboundary of length ≥ 3 violates Definition 1).
	EndpointAt int
	// SequentAt is the distance of the nearest run ahead moving in the same
	// direction (Table 1, condition 1).
	SequentAt int
	// OncomingAt is the distance of the nearest run ahead moving toward
	// this one (run passing trigger, Fig. 9b).
	OncomingAt int
}

// walkAhead walks up to maxSteps robots ahead of the origin along the run's
// line and collects the termination-relevant observations.
func walkAhead(v *view.View, run robot.Run, maxSteps int) walkResult {
	var res walkResult
	cur := grid.Zero
	prev := run.Dir.Neg() // don't walk backwards out of the gate
	perpendicular := 0
	for step := 1; step <= maxSteps; step++ {
		next, ok, horizon := successor(v, cur, prev, run.Dir, run.Inside)
		if horizon {
			return res // cannot see further; report what we have
		}
		if !ok {
			res.EndpointAt = step
			return res
		}
		// Track perpendicular (zero progress along Dir) streaks: two in a
		// row means a perpendicular subboundary of ≥ 3 aligned robots ahead
		// — past the quasi line's endpoint by Definition 1.3.
		delta := next.Sub(cur)
		if delta.X*run.Dir.X+delta.Y*run.Dir.Y == 0 {
			perpendicular++
			if perpendicular >= 2 && res.EndpointAt == 0 {
				res.EndpointAt = step
				return res
			}
		} else {
			perpendicular = 0
		}
		st := v.StateAt(next)
		for _, other := range st.Runs {
			if run.Sequent(other) && res.SequentAt == 0 {
				res.SequentAt = step
			}
			if run.Oncoming(other) && res.OncomingAt == 0 {
				res.OncomingAt = step
			}
		}
		prev, cur = cur, next
	}
	return res
}
