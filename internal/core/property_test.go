package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gridgather/internal/fsync"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// transformSwarm maps every cell of s through frame f.
func transformSwarm(s *swarm.Swarm, f grid.Frame) *swarm.Swarm {
	out := swarm.New()
	for _, c := range s.Cells() {
		out.Add(f.Apply(c))
	}
	return out
}

// TestPropertyNoCompass verifies the model's central symmetry requirement:
// the robots have no compass, so every decision must commute with the
// dihedral symmetries of the grid. For random swarms and every frame f,
// the merge hops and start points of the transformed swarm are exactly the
// transformed merge hops and start points of the original.
func TestPropertyNoCompass(t *testing.T) {
	p := Defaults()
	f := func(seed int64, frameIdx uint8) bool {
		s := randomConnected(40+int(seed%41), seed)
		fr := grid.Frames[int(frameIdx)%len(grid.Frames)]
		ts := transformSwarm(s, fr)

		// Merge decisions commute.
		orig := MergeBlacks(s, p)
		trans := MergeBlacks(ts, p)
		if len(orig) != len(trans) {
			return false
		}
		for c, d := range orig {
			td, ok := trans[fr.Apply(c)]
			if !ok || td != fr.Apply(d) {
				return false
			}
		}

		// Start decisions commute (compare the start positions and the
		// transformed orientations).
		so := StartPoints(s, p)
		st := StartPoints(ts, p)
		if len(so) != len(st) {
			return false
		}
		for c, ms := range so {
			tms, ok := st[fr.Apply(c)]
			if !ok || len(tms) != len(ms) {
				return false
			}
			// Every original orientation must appear transformed.
			for _, m := range ms {
				found := false
				for _, tm := range tms {
					if tm.Dir() == fr.Apply(m.Dir()) && tm.Inside() == fr.Apply(m.Inside()) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyFullRunEquivariance runs entire simulations on a swarm and
// its mirror image: the gathering outcome (rounds, merges) must be
// identical — the algorithm cannot secretly depend on orientation.
func TestPropertyFullRunEquivariance(t *testing.T) {
	f := func(seed int64, frameIdx uint8) bool {
		s := randomConnected(30+int(seed%61), seed)
		fr := grid.Frames[int(frameIdx)%len(grid.Frames)]
		ts := transformSwarm(s, fr)
		run := func(sw *swarm.Swarm) fsync.Result {
			g := Default()
			eng := fsync.New(sw, g, fsync.Config{MaxRounds: 60*sw.Len() + 500})
			return eng.Run()
		}
		a, b := run(s), run(ts)
		return a.Err == nil && b.Err == nil &&
			a.Rounds == b.Rounds && a.Merges == b.Merges &&
			a.RunsStarted == b.RunsStarted
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyMergeSafety: for random connected swarms, one synchronized
// round never disconnects the swarm, never grows the population, and
// never moves any robot more than one cell (checked by the engine).
func TestPropertyMergeSafety(t *testing.T) {
	f := func(seed int64, roundOffset uint8) bool {
		s := randomConnected(30+int(seed%91), seed)
		before := s.Len()
		eng := fsync.New(s, Default(), fsync.Config{CheckConnectivity: true, StrictViews: true})
		eng.SetRound(int(roundOffset) % 44) // exercise tick and non-tick rounds
		if err := eng.Step(); err != nil {
			return false
		}
		return eng.Swarm().Len() <= before
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyGatheredIsFixedPoint: a gathered swarm stays gathered — the
// algorithm never un-gathers (robots in a 2×2 square perform no harmful
// moves; the engine stops at the fixed point).
func TestPropertyGatheredIsFixedPoint(t *testing.T) {
	f := func(x, y int8, wide, tall bool) bool {
		base := grid.Pt(int(x), int(y))
		s := swarm.New(base)
		if wide {
			s.Add(base.Add(grid.East))
		}
		if tall {
			s.Add(base.Add(grid.North))
		}
		if wide && tall {
			s.Add(base.Add(grid.NorthEast))
		}
		g := Default()
		eng := fsync.New(s, g, fsync.Config{MaxRounds: 5})
		res := eng.Run()
		return res.Gathered && res.Rounds == 0
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
