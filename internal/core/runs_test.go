package core

import (
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
)

// engineOn builds a checked engine over s with a fresh default gatherer.
func engineOn(s *swarm.Swarm) (*fsync.Engine, *Gatherer) {
	g := Default()
	return fsync.New(s, g, fsync.Config{CheckConnectivity: true, StrictViews: true}), g
}

// plantRun puts a run state on the robot at p.
func plantRun(eng *fsync.Engine, p grid.Point, dir, inside grid.Point) {
	eng.SetState(p, robot.State{Runs: []robot.Run{{Dir: dir, Inside: inside}}})
}

// TestFigure8_OPA: "The runner and at least the next 3 robots are located
// on a straight line. Here, the runner first performs a diagonal hop, then
// moves the run to the next robot. The operation takes only one round."
func TestFigure8_OPA(t *testing.T) {
	// Runner at the left end of the top wall of a big mergeless ring.
	s := gen.Hollow(26, 26)
	// Emulate a freshly started run: corner already hopped away; the state
	// sits on (1,25) moving east, inside south, with the corner's landing
	// robot at (1,24).
	s.Remove(grid.Pt(0, 25))
	s.Add(grid.Pt(1, 24))
	eng, g := engineOn(s)
	plantRun(eng, grid.Pt(1, 25), grid.East, grid.South)

	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	// The runner hopped diagonally to (2,24).
	if !eng.Swarm().Has(grid.Pt(2, 24)) {
		t.Errorf("runner did not hop to (2,24):\n%s", eng.Swarm())
	}
	if eng.Swarm().Has(grid.Pt(1, 25)) {
		t.Error("runner still at origin")
	}
	// The run state moved to the next robot (2,25).
	if st := eng.StateAt(grid.Pt(2, 25)); !st.HasRuns() {
		t.Error("run state was not transferred to the next robot")
	}
	if g.Stats().Rolls != 1 {
		t.Errorf("rolls = %d, want 1", g.Stats().Rolls)
	}
}

// joggedRing builds a mergeless hollow rectangle whose top wall contains a
// single downward jog at x = 20: wall cells (0..20, 39) and (20..39, 38),
// joined by the vertical pair (20,39)/(20,38). All straight wall pieces are
// longer than MergeMax, so no merge fires anywhere.
func joggedRing() *swarm.Swarm {
	s := swarm.New()
	for x := 0; x <= 20; x++ {
		s.Add(grid.Pt(x, 39))
	}
	for x := 20; x <= 39; x++ {
		s.Add(grid.Pt(x, 38))
	}
	for y := 0; y <= 38; y++ {
		s.Add(grid.Pt(0, y))
		s.Add(grid.Pt(39, y))
	}
	for x := 0; x <= 39; x++ {
		s.Add(grid.Pt(x, 0))
	}
	return s
}

// TestFigure8_OPB: "The runner and only the next 2 robots are located on a
// straight line. Then, for 3 times the runners just move the run to the
// next robot without any diagonal hops. Afterwards, it is located at the
// target corner c." A run gliding along a jogged quasi line crosses the jog
// without reshaping it.
func TestFigure8_OPB(t *testing.T) {
	s := joggedRing()
	if !Mergeless(s, Defaults()) {
		t.Fatal("jogged ring must be mergeless")
	}
	eng, g := engineOn(s)
	eng.SetRound(1) // not an L-tick: no new starts interfere
	plantRun(eng, grid.Pt(16, 39), grid.East, grid.South)

	var positions []grid.Point
	for i := 0; i < 7; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		positions = append(positions, eng.Runners()...)
	}
	if g.Stats().Rolls != 0 {
		t.Errorf("gliding across a jog must not perform diagonal hops, rolls = %d", g.Stats().Rolls)
	}
	want := []grid.Point{
		{X: 17, Y: 39}, {X: 18, Y: 39}, {X: 19, Y: 39},
		{X: 20, Y: 39}, // the corner c at the top of the jog
		{X: 20, Y: 38}, // around the jog, no hops
		{X: 21, Y: 38}, {X: 22, Y: 38},
	}
	if len(positions) != len(want) {
		t.Fatalf("runner positions = %v", positions)
	}
	for i, w := range want {
		if positions[i] != w {
			t.Errorf("round %d: runner at %v, want %v", i+1, positions[i], w)
		}
	}
	// The wall shape is unchanged — OP-B does not reshape (Lemma 3.2).
	if !eng.Swarm().Equal(s) {
		t.Error("gliding run reshaped the swarm")
	}
}

// TestFigure4_LongPlateau: the Fig. 4 scenario — a plateau longer than the
// merge limit standing on two legs. Runs started at its endpoints shrink it
// until a merge happens; the whole table gathers in linear time.
func TestFigure4_LongPlateau(t *testing.T) {
	// Legs taller than MergeMax cannot merge sideways, so only the runs
	// started at the plateau's endpoints can shorten it.
	s := gen.Table(40, 22)
	n := s.Len()
	g := Default()
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds: 60*n + 500, CheckConnectivity: true, StrictViews: true,
		NoMergeLimit: 30*n + 300,
	})
	res := eng.Run()
	if res.Err != nil || !res.Gathered {
		t.Fatalf("table did not gather: %+v", res)
	}
	if res.RunsStarted == 0 {
		t.Error("expected runs on the long plateau")
	}
}

// TestFigure9a_ConvergingPairEnablesMerge: two runs of a good pair move
// toward each other on the top wall; when the remaining segment is short
// enough, the merge fires and both runs stop (they were part of the merge).
func TestFigure9a_ConvergingPair(t *testing.T) {
	s := gen.Hollow(30, 30)
	g := Default()
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds: 4000, CheckConnectivity: true, StrictViews: true,
	})
	// Run until the first merge happens; runs must have been started and
	// moved first (the ring is mergeless initially).
	if !Mergeless(s, g.Params()) {
		t.Fatal("precondition: ring must be mergeless")
	}
	for eng.Merges() == 0 {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		if eng.Round() > 200 {
			t.Fatal("no merge within 200 rounds")
		}
	}
	if eng.RunsStarted() < 2 {
		t.Errorf("merge happened with %d runs started", eng.RunsStarted())
	}
	if g.Stats().Rolls == 0 {
		t.Error("no reshapement hops before the first merge")
	}
}

// TestFigure9b_RunPassing: two oncoming runs that do not form a good pair
// (their insides point to opposite sides) pass along each other without
// reshapement hops.
func TestFigure9b_RunPassing(t *testing.T) {
	// A long 1-thick line with run states planted mid-line moving toward
	// each other, insides on opposite sides. (On a bare line both sides are
	// empty, which makes gliding safe — exactly the passing behaviour.)
	s := swarm.New()
	for x := 0; x < 30; x++ {
		s.Add(grid.Pt(x, 0))
	}
	eng, g := engineOn(s)
	plantRun(eng, grid.Pt(10, 0), grid.East, grid.South)
	plantRun(eng, grid.Pt(18, 0), grid.West, grid.North)

	// Let them approach and pass. The line's ends merge inward during
	// this, which is fine; we only assert the passing happened and nothing
	// broke.
	for i := 0; i < 6; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if g.Stats().PassEnters == 0 {
		t.Error("oncoming runs did not enter the passing operation")
	}
}

// TestTable1_Condition1_SequentRunStops: a run seeing a sequent run (same
// direction) in front of it within the viewing radius stops.
func TestTable1_Condition1(t *testing.T) {
	s := gen.Hollow(40, 40)
	eng, g := engineOn(s)
	eng.SetRound(1) // suppress corner starts
	// Two sequent runs on the top wall, 8 apart (< SeqStop), both heading
	// east.
	plantRun(eng, grid.Pt(5, 39), grid.East, grid.South)
	plantRun(eng, grid.Pt(13, 39), grid.East, grid.South)
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().StopSequent == 0 {
		t.Error("rear sequent run did not stop (Table 1.1)")
	}
	// Only the front run remains.
	if got := len(eng.Runners()); got != 1 {
		t.Errorf("runners after step = %d, want 1", got)
	}
}

// TestTable1_Condition2_EndpointStops: a run seeing its quasi line's
// endpoint ahead stops.
func TestTable1_Condition2(t *testing.T) {
	s := gen.Hollow(40, 40)
	eng, g := engineOn(s)
	eng.SetRound(1) // suppress corner starts
	// A run heading east on the top wall, one robot before the corner
	// (39,39); past the corner the wall drops vertically — the endpoint.
	plantRun(eng, grid.Pt(38, 39), grid.East, grid.South)
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().StopEndpoint == 0 {
		t.Error("run did not stop at the quasi line endpoint (Table 1.2)")
	}
	if got := len(eng.Runners()); got != 0 {
		t.Errorf("runners after step = %d, want 0", got)
	}
}

// TestTable1_Condition3_MergeStops: a runner that participates in a merge
// operation loses its run.
func TestTable1_Condition3(t *testing.T) {
	// A mergeable bump whose black robot carries a run.
	s := swarm.New(grid.Pt(0, 0), grid.Pt(0, 1), grid.Pt(1, 0), grid.Pt(2, 0), grid.Pt(3, 0))
	eng, _ := engineOn(s)
	plantRun(eng, grid.Pt(0, 1), grid.East, grid.South)
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Merges() == 0 {
		t.Fatal("expected the bump to merge")
	}
	if got := len(eng.Runners()); got != 0 {
		t.Errorf("run survived its merge (Table 1.3): %d runners", got)
	}
}

// TestTable1_Condition45_GeometryChangeStops: a run whose outside becomes
// occupied (the boundary reshaped beneath it) stops.
func TestTable1_Condition45(t *testing.T) {
	s := gen.Solid(30, 30)
	eng, g := engineOn(s)
	// Plant a run on an interior-ish robot: outside (north) occupied.
	plantRun(eng, grid.Pt(15, 15), grid.East, grid.South)
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().StopGeometry == 0 {
		t.Error("run with occupied outside did not stop (Table 1.4/5)")
	}
}

// TestTable1_Condition6_OntoOccupied: an OP-A hop onto an occupied cell
// merges and terminates the run.
func TestTable1_Condition6(t *testing.T) {
	// Plateau directly on a solid base: the forward-inside diagonal is
	// occupied.
	s := swarm.New()
	for x := 0; x < 26; x++ {
		s.Add(grid.Pt(x, 1)) // plateau row
		s.Add(grid.Pt(x, 0)) // base row
		s.Add(grid.Pt(x, -1))
	}
	// Expose the plateau's left end: remove base overhang to the left.
	s.Remove(grid.Pt(0, 1))
	eng, g := engineOn(s)
	// Runner at the plateau's new left end (1,1), rolling east, inside
	// south; behind it is free, the anchor below occupied, the next three
	// plateau robots straight — but the hop cell (2,0) is occupied.
	plantRun(eng, grid.Pt(1, 1), grid.East, grid.South)
	before := eng.Swarm().Len()
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().StopOntoOcc == 0 {
		t.Error("onto-occupied hop not counted (Table 1.6)")
	}
	if eng.Swarm().Len() >= before {
		t.Error("no merge from the onto-occupied hop")
	}
	if got := len(eng.Runners()); got != 0 {
		t.Errorf("run survived an onto-occupied hop: %d runners", got)
	}
}

// TestFigure15_Pipelining: on a large mergeless ring, new runs start every
// L rounds while earlier runs are still active — multiple runs are alive
// simultaneously, and different pairs lead to different merges.
func TestFigure15_Pipelining(t *testing.T) {
	s := gen.Hollow(56, 56)
	g := Default()
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds: 3 * g.Params().L, CheckConnectivity: true, StrictViews: true,
	})
	maxConcurrent := 0
	mergeRounds := map[int]bool{}
	for eng.Round() < 3*g.Params().L {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		if c := len(eng.Runners()); c > maxConcurrent {
			maxConcurrent = c
		}
		if eng.RoundMerges() > 0 {
			mergeRounds[eng.Round()] = true
		}
	}
	if maxConcurrent < 4 {
		t.Errorf("max concurrent runners = %d, want ≥ 4 (pipelining)", maxConcurrent)
	}
	t.Logf("concurrent runners: %d, merge rounds: %d", maxConcurrent, len(mergeRounds))
}

// TestLemma3_RunSpeed: "Every round, S moves one robot further in moving
// direction" — an active run's holder changes every round until the run
// terminates.
func TestLemma3_RunSpeed(t *testing.T) {
	s := gen.Hollow(40, 40)
	eng, _ := engineOn(s)
	eng.SetRound(1) // suppress corner starts so only the planted run exists
	plantRun(eng, grid.Pt(10, 39), grid.East, grid.South)
	prev := grid.Pt(10, 39)
	for i := 0; i < 15; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		runners := eng.Runners()
		if len(runners) == 0 {
			t.Fatalf("run terminated unexpectedly at round %d", eng.Round())
		}
		cur := runners[0]
		if cur == prev {
			t.Errorf("round %d: run did not advance (still at %v)", eng.Round(), cur)
		}
		if d := cur.Sub(prev); d.X < 1 || d.X > 2 {
			t.Errorf("round %d: run moved %v, expected one robot east", eng.Round(), d)
		}
		prev = cur
	}
}
