package core

import (
	"gridgather/internal/gen"
	"gridgather/internal/swarm"
)

// randomConnected returns a random connected swarm of n robots, cycling
// through the three random generator families by seed.
func randomConnected(n int, seed int64) *swarm.Swarm {
	switch seed % 3 {
	case 0:
		return gen.RandomTree(n, seed)
	case 1:
		return gen.RandomBlob(n, seed)
	default:
		return gen.RandomWalk(n, seed)
	}
}
