package core

import (
	"gridgather/internal/fsync"
	"gridgather/internal/view"
)

// Gatherer is the paper's gathering algorithm as an FSYNC robot program.
// Every robot executes Compute simultaneously each round (Fig. 11):
//
//  1. Merge: if the robot is a black robot of a merge configuration within
//     its viewing range, it hops (§3.1). Runs held by merging robots stop
//     (Table 1.3).
//  2. Run operations: termination checks (Table 1), run passing, OP-A
//     reshapement or glide (§3.2, §3.3).
//  3. Start new runs: every L-th round, robots matching Start-A/Start-B
//     start one or two runs (Fig. 7).
type Gatherer struct {
	params Params
	stats  counters
}

// NewGatherer builds the algorithm with the given parameters; it panics on
// invalid parameters (programming error).
func NewGatherer(p Params) *Gatherer {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Gatherer{params: p}
}

// Default returns a Gatherer with the paper's constants (radius 20, L 22).
func Default() *Gatherer { return NewGatherer(Defaults()) }

// Radius implements fsync.Algorithm.
func (g *Gatherer) Radius() int { return g.params.Radius }

// RoundPeriod implements fsync.Periodic: Compute reads the round only
// through the every-L-th-round run-start gate (Fig. 11 step 3), so two
// activations with identical views and rounds congruent mod L decide
// identically — which unlocks the engine's quiescence fast path.
func (g *Gatherer) RoundPeriod() int { return g.params.L }

// Params returns the algorithm's parameters.
func (g *Gatherer) Params() Params { return g.params }

// Stats returns a snapshot of the event counters.
func (g *Gatherer) Stats() Stats { return g.stats.snapshot() }

// ResetStats clears the event counters.
func (g *Gatherer) ResetStats() { g.stats.reset() }

// Compute implements fsync.Algorithm: the compute step of one robot. It is
// safe to call concurrently for different robots of the same round (the
// engine's worker pool does so): decisions read only the immutable view,
// and the event counters are atomic.
func (g *Gatherer) Compute(v *view.View) fsync.Action {
	// Step 1: merges take precedence. A merging robot drops its run states
	// (Table 1.3: "it was part of a merge operation").
	if d, ok := MergeMove(v, g.params); ok {
		g.stats.mergeMoves.Add(1)
		if d.IsDiagonalUnit() {
			g.stats.diagonalHops.Add(1)
		}
		return fsync.MoveTo(d)
	}

	// Step 2: run operations.
	if v.Self().HasRuns() {
		return g.runnerAction(v)
	}

	// Step 3: start new runs every L-th round.
	if v.Round()%g.params.L == 0 {
		if act, ok := g.startAction(v); ok {
			return act
		}
	}
	return fsync.Stay
}
