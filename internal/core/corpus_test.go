package core

import (
	"fmt"
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/swarm"
)

// The corpus test is the central robustness check of the reproduction:
// every randomly generated connected swarm must gather within a linear
// round budget while the engine verifies connectivity after every round and
// views enforce the radius. This empirically validates Theorem 1 on
// arbitrary inputs, not just the figure scenarios.

func corpusRun(t *testing.T, name string, s *swarm.Swarm) fsync.Result {
	t.Helper()
	n := s.Len()
	g := Default()
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds:         60*n + 500,
		CheckConnectivity: true,
		StrictViews:       true,
		NoMergeLimit:      30*n + 300,
	})
	res := eng.Run()
	if res.Err != nil {
		t.Fatalf("%s (n=%d) failed: %v\nstate after %d rounds (%d robots):\n%s",
			name, n, res.Err, res.Rounds, eng.Swarm().Len(), eng.Swarm())
	}
	if !res.Gathered {
		t.Fatalf("%s (n=%d): not gathered after %d rounds", name, n, res.Rounds)
	}
	return res
}

func TestCorpusRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 30 + int(seed)*15
		s := gen.RandomTree(n, seed)
		res := corpusRun(t, fmt.Sprintf("tree-%d", seed), s)
		if res.Rounds > 40*n+100 {
			t.Errorf("tree seed=%d n=%d took %d rounds (super-linear?)", seed, n, res.Rounds)
		}
	}
}

func TestCorpusRandomBlobs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 30 + int(seed)*15
		s := gen.RandomBlob(n, seed)
		corpusRun(t, fmt.Sprintf("blob-%d", seed), s)
	}
}

func TestCorpusRandomWalks(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 30 + int(seed)*12
		s := gen.RandomWalk(n, seed)
		corpusRun(t, fmt.Sprintf("walk-%d", seed), s)
	}
}

func TestCorpusShapes(t *testing.T) {
	shapes := []struct {
		name string
		s    *swarm.Swarm
	}{
		{"comb", gen.Comb(21, 5)},
		{"spiral", gen.Spiral(16)},
		{"table-short", gen.Table(10, 4)},
		{"table-long", gen.Table(40, 4)},
		{"h-shape", gen.HShape(11, 7)},
		{"diamond", gen.Diamond(6)},
		{"staircase2", gen.Staircase(40, 2)},
		{"hollow-rect", gen.Hollow(26, 9)},
		{"solid-rect", gen.Solid(9, 26)},
		{"plus", gen.Plus(12)},
	}
	for _, sh := range shapes {
		res := corpusRun(t, sh.name, sh.s)
		t.Logf("%-12s n=%-4d rounds=%-5d merges=%d runs=%d",
			sh.name, res.InitialRobots, res.Rounds, res.Merges, res.RunsStarted)
	}
}

func TestCorpusLargeMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	shapes := []struct {
		name string
		s    *swarm.Swarm
	}{
		{"tree-300", gen.RandomTree(300, 99)},
		{"blob-300", gen.RandomBlob(300, 99)},
		{"walk-300", gen.RandomWalk(300, 99)},
		{"hollow-60", gen.Hollow(60, 60)},
		{"line-300", gen.Line(300)},
	}
	for _, sh := range shapes {
		res := corpusRun(t, sh.name, sh.s)
		ratio := float64(res.Rounds) / float64(res.InitialRobots)
		t.Logf("%-10s n=%-4d rounds=%-5d rounds/n=%.2f runs=%d",
			sh.name, res.InitialRobots, res.Rounds, ratio, res.RunsStarted)
	}
}
