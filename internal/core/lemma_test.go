package core

import (
	"math"
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/metrics"
	"gridgather/internal/swarm"
)

// TestLemma1_ProgressOnCorpus is the liveness half of Lemma 1: "Every
// L = 22 rounds either a merge has been performed or else a new progress
// pair is started." Statically: every connected, non-gathered swarm admits
// a merge or a run start somewhere.
func TestLemma1_ProgressOnCorpus(t *testing.T) {
	p := Defaults()
	// Random corpus.
	for seed := int64(0); seed < 25; seed++ {
		s := randomConnected(50+int(seed)*9, seed)
		if !HasProgress(s, p) {
			t.Fatalf("seed %d: swarm has neither merge nor start:\n%s", seed, s)
		}
	}
	// Regular shapes, including the canonical mergeless ones.
	shapes := []*swarm.Swarm{
		gen.Line(50), gen.Hollow(30, 30), gen.Hollow(50, 4), gen.Solid(9, 9),
		gen.Staircase(60, 1), gen.Staircase(60, 2), gen.Diamond(7),
		gen.Spiral(18), gen.Table(45, 25), gen.Comb(31, 6), gen.Plus(15),
	}
	for i, s := range shapes {
		if !HasProgress(s, p) {
			t.Fatalf("shape %d has neither merge nor start:\n%s", i, s)
		}
	}
}

// TestLemma1_MergelessStartsAreGood: in a mergeless swarm, start matches
// exist and sit at quasi line endpoints of the outer boundary (the proof
// finds them at the transitions of the upper envelope's monotone subchain).
func TestLemma1_MergelessStarts(t *testing.T) {
	p := Defaults()
	s := gen.Hollow(30, 30)
	if !Mergeless(s, p) {
		t.Fatal("precondition")
	}
	starts := StartPoints(s, p)
	if len(starts) != 4 {
		t.Fatalf("start points = %d, want the 4 ring corners", len(starts))
	}
	corners := map[grid.Point]bool{
		{X: 0, Y: 0}: true, {X: 29, Y: 0}: true, {X: 0, Y: 29}: true, {X: 29, Y: 29}: true,
	}
	for pt, ms := range starts {
		if !corners[pt] {
			t.Errorf("start at non-corner %v", pt)
		}
		if len(ms) != 2 {
			t.Errorf("corner %v starts %d runs, want 2 (Start-B)", pt, len(ms))
		}
	}
}

// TestLemma1_EveryLRoundsProgress: dynamically, within every window of L
// rounds the simulation either merges or starts a new run, until gathered.
func TestLemma1_EveryLRoundsProgress(t *testing.T) {
	shapes := []*swarm.Swarm{
		gen.Hollow(34, 34),
		gen.RandomBlob(150, 3),
		gen.RandomTree(150, 3),
	}
	for i, s := range shapes {
		g := Default()
		L := g.Params().L
		eng := fsync.New(s, g, fsync.Config{
			MaxRounds: 20000, CheckConnectivity: true, StrictViews: true,
		})
		lastMerges, lastRuns := 0, 0
		for !eng.Gathered() {
			for r := 0; r < L && !eng.Gathered(); r++ {
				if err := eng.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if eng.Gathered() {
				break
			}
			if eng.Merges() == lastMerges && eng.RunsStarted() == lastRuns {
				t.Fatalf("shape %d: no merge and no new run in an L-window ending at round %d",
					i, eng.Round())
			}
			lastMerges, lastRuns = eng.Merges(), eng.RunsStarted()
			if eng.Round() > 15000 {
				t.Fatalf("shape %d: runaway", i)
			}
		}
	}
}

// TestTheorem1_LinearRounds is the headline reproduction: measured rounds
// grow linearly in n, in contrast to the Euclidean baseline's quadratic
// growth (tested in internal/baseline/gtc). Linearity is accepted when
// either the fitted power-law exponent is ≈ 1 or the incremental slope
// between the largest sizes is stable (a linear law with a negative
// intercept — e.g. the hollow ring's rounds ≈ 11w - 220 — shows an
// inflated power exponent at moderate n but exactly constant slopes;
// quadratic growth fails both criteria, since its slope doubles).
func TestTheorem1_LinearRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sizes := []int{40, 80, 160, 320, 480}
	for _, w := range gen.Catalog() {
		var series metrics.Series
		for _, n := range sizes {
			s := w.Build(n)
			actual := s.Len()
			g := Default()
			eng := fsync.New(s, g, fsync.Config{
				MaxRounds:    60*actual + 500,
				NoMergeLimit: 30*actual + 300,
			})
			res := eng.Run()
			if res.Err != nil || !res.Gathered {
				t.Fatalf("%s n=%d: %+v", w.Name, actual, res)
			}
			series.Append(float64(actual), float64(res.Rounds))
		}
		e := series.Exponent()
		// Incremental slopes over the three largest sizes.
		k := series.Len()
		s1 := (series.Y[k-2] - series.Y[k-3]) / (series.X[k-2] - series.X[k-3])
		s2 := (series.Y[k-1] - series.Y[k-2]) / (series.X[k-1] - series.X[k-2])
		slopeRatio := math.Inf(1)
		if s1 > 0 {
			slopeRatio = s2 / s1
		}
		finalRatio := series.Y[k-1] / series.X[k-1]
		t.Logf("%-10s exponent %.2f slope-ratio %.2f rounds/n %.2f (rounds: %v)",
			w.Name, e, slopeRatio, finalRatio, series.Y)
		// Linear evidence, any of:
		//  (a) power exponent ≈ 1 or below;
		//  (b) constant incremental slope (linear with negative intercept,
		//      e.g. hollow's rounds ≈ 11w - 220);
		//  (c) small absolute rounds/n at the largest size (families whose
		//      merge-driven → run-driven regime change falls inside the
		//      measured size range, e.g. spiral, which converges to
		//      rounds/n ≈ 0.36 by n ≈ 1900).
		// A quadratic law fails all three: exponent ≈ 2, slope doubling,
		// ratio growing without bound.
		linearEvidence := e <= 1.35 || (slopeRatio >= 0 && slopeRatio <= 1.30) || finalRatio <= 1.0
		if math.IsNaN(e) || !linearEvidence {
			t.Errorf("%s: exponent %.2f, slope ratio %.2f, rounds/n %.2f — super-linear scaling",
				w.Name, e, slopeRatio, finalRatio)
		}
	}
}

// TestTheorem1_LinearBudget: every workload gathers within C·n rounds for
// a fixed C (the paper's bound is 2L·n + n = 45n; we check a generous but
// linear budget).
func TestTheorem1_LinearBudget(t *testing.T) {
	const C = 25
	for _, w := range gen.Catalog() {
		n := 120
		s := w.Build(n)
		actual := s.Len()
		g := Default()
		eng := fsync.New(s, g, fsync.Config{MaxRounds: C*actual + 200})
		res := eng.Run()
		if res.Err != nil || !res.Gathered {
			t.Errorf("%s: exceeded %d rounds for n=%d: %+v", w.Name, C*actual+200, actual, res)
		}
	}
}

// TestTheorem1_LowerBound: the Ω(n) direction. Robots move at most one
// cell per round, so the L∞ diameter shrinks by at most 2 per round and
// any gathering strategy needs ≥ (diameter-1)/2 rounds. The measured line
// workload must respect (and here exactly meets) that bound.
func TestTheorem1_LowerBound(t *testing.T) {
	for _, n := range []int{50, 100, 200} {
		s := gen.Line(n)
		diam := s.Diameter()
		g := Default()
		eng := fsync.New(s, g, fsync.Config{MaxRounds: 60 * n})
		res := eng.Run()
		if res.Err != nil || !res.Gathered {
			t.Fatalf("n=%d: %+v", n, res)
		}
		lower := (diam - 1) / 2
		if res.Rounds < lower {
			t.Errorf("n=%d: %d rounds beat the diameter lower bound %d — impossible, check the model",
				n, res.Rounds, lower)
		}
		t.Logf("n=%d: rounds=%d, lower bound=%d", n, res.Rounds, lower)
	}
}

// TestLemma3_Invariant4_NoSequentInFront: while runs are active, no run
// sees a sequent run within the stopping distance in front of it at the
// end of a round (they stop instead).
func TestLemma3_Invariant4(t *testing.T) {
	s := gen.Hollow(44, 44)
	g := Default()
	eng := fsync.New(s, g, fsync.Config{MaxRounds: 3000, CheckConnectivity: true, StrictViews: true})
	check := func(e *fsync.Engine) {
		runners := e.Runners()
		pos := map[grid.Point][]grid.Point{}
		for _, r := range runners {
			pos[r] = append(pos[r], r)
		}
		// Pairwise: two sequent runs (same Dir) closer than L1 distance 3
		// indicate a pipelining violation (boundary distance is ≥ L1
		// distance, so this is a conservative check).
		for i := 0; i < len(runners); i++ {
			for j := i + 1; j < len(runners); j++ {
				a, b := runners[i], runners[j]
				sa, sb := e.StateAt(a), e.StateAt(b)
				for _, ra := range sa.Runs {
					for _, rb := range sb.Runs {
						if ra.Sequent(rb) && grid.L1Dist(a, b) < 3 {
							t.Errorf("round %d: sequent runs at %v and %v too close", e.Round(), a, b)
						}
					}
				}
			}
		}
	}
	for !eng.Gathered() {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		check(eng)
		if eng.Round() > 2500 {
			t.Fatal("runaway")
		}
	}
}

// TestLemma2_DistinctMerges: different progress pairs enable different
// merges — across a long mergeless phase, the merge count keeps up with
// the number of started pairs (no two pairs collapse into one merge).
func TestLemma2_DistinctMerges(t *testing.T) {
	s := gen.Hollow(40, 40)
	g := Default()
	eng := fsync.New(s, g, fsync.Config{MaxRounds: 10000, CheckConnectivity: true, StrictViews: true})
	res := eng.Run()
	if res.Err != nil || !res.Gathered {
		t.Fatalf("%+v", res)
	}
	// Every robot but up to 4 finals must have merged; pairs were the only
	// merge source early on (the ring is mergeless), so merges must be
	// plentiful relative to starts.
	if res.Merges < res.RunsStarted/4 {
		t.Errorf("merges %d vs runs %d: pairs are not producing distinct merges",
			res.Merges, res.RunsStarted)
	}
}
