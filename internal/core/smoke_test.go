package core

import (
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// simulate runs the default gatherer on s with full invariant checking and
// a linear round budget, failing the test on any violation.
func simulate(t *testing.T, s *swarm.Swarm) fsync.Result {
	t.Helper()
	s.Validate()
	n := s.Len()
	g := Default()
	eng := fsync.New(s, g, fsync.Config{
		MaxRounds:         60*n + 400,
		CheckConnectivity: true,
		StrictViews:       true,
		NoMergeLimit:      30*n + 300,
	})
	res := eng.Run()
	if res.Err != nil {
		t.Fatalf("simulation failed (n=%d): %v\nfinal state (%d robots):\n%s",
			n, res.Err, eng.Swarm().Len(), eng.Swarm())
	}
	if !res.Gathered {
		t.Fatalf("not gathered after %d rounds", res.Rounds)
	}
	return res
}

func hline(n int) *swarm.Swarm {
	s := swarm.New()
	for i := 0; i < n; i++ {
		s.Add(grid.Pt(i, 0))
	}
	return s
}

func solid(w, h int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			s.Add(grid.Pt(x, y))
		}
	}
	return s
}

func hollow(w, h int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x == 0 || y == 0 || x == w-1 || y == h-1 {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

func TestGatherSingleton(t *testing.T) {
	res := simulate(t, swarm.New(grid.Pt(0, 0)))
	if res.Rounds != 0 {
		t.Errorf("singleton took %d rounds", res.Rounds)
	}
}

func TestGatherPair(t *testing.T) {
	res := simulate(t, swarm.New(grid.Pt(0, 0), grid.Pt(0, 1)))
	if res.Rounds != 0 {
		t.Errorf("adjacent pair is already gathered, took %d rounds", res.Rounds)
	}
}

func TestGatherSmallLines(t *testing.T) {
	for n := 3; n <= 12; n++ {
		res := simulate(t, hline(n))
		t.Logf("line n=%d: rounds=%d merges=%d", n, res.Rounds, res.Merges)
	}
}

func TestGatherLongLine(t *testing.T) {
	res := simulate(t, hline(60))
	t.Logf("line n=60: rounds=%d merges=%d runs=%d", res.Rounds, res.Merges, res.RunsStarted)
}

func TestGatherSolidSquares(t *testing.T) {
	for _, w := range []int{3, 4, 5, 8} {
		res := simulate(t, solid(w, w))
		t.Logf("solid %dx%d: rounds=%d merges=%d runs=%d", w, w, res.Rounds, res.Merges, res.RunsStarted)
	}
}

func TestGatherSolidRects(t *testing.T) {
	res := simulate(t, solid(12, 3))
	t.Logf("solid 12x3: rounds=%d", res.Rounds)
	res = simulate(t, solid(2, 15))
	t.Logf("solid 2x15: rounds=%d", res.Rounds)
}

func TestGatherHollowSmall(t *testing.T) {
	for _, w := range []int{3, 4, 5, 8, 12} {
		res := simulate(t, hollow(w, w))
		t.Logf("hollow %dx%d: rounds=%d merges=%d runs=%d", w, w, res.Rounds, res.Merges, res.RunsStarted)
	}
}

func TestGatherHollowLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := simulate(t, hollow(30, 30))
	t.Logf("hollow 30x30: rounds=%d merges=%d runs=%d", res.Rounds, res.Merges, res.RunsStarted)
}

func TestGatherStaircase(t *testing.T) {
	s := swarm.New()
	x, y := 0, 0
	for i := 0; i < 30; i++ {
		s.Add(grid.Pt(x, y))
		if i%2 == 0 {
			x++
		} else {
			y++
		}
		s.Add(grid.Pt(x, y))
	}
	res := simulate(t, s)
	t.Logf("staircase: rounds=%d", res.Rounds)
}

func TestGatherPlus(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0))
	for i := 1; i <= 10; i++ {
		s.Add(grid.Pt(i, 0))
		s.Add(grid.Pt(-i, 0))
		s.Add(grid.Pt(0, i))
		s.Add(grid.Pt(0, -i))
	}
	res := simulate(t, s)
	t.Logf("plus: rounds=%d", res.Rounds)
}

func TestGatherLShape(t *testing.T) {
	s := swarm.New()
	for i := 0; i < 15; i++ {
		s.Add(grid.Pt(i, 0))
		s.Add(grid.Pt(0, i))
	}
	res := simulate(t, s)
	t.Logf("L: rounds=%d", res.Rounds)
}
