package core

import (
	"strings"
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// fromASCII builds a swarm from a picture ('#'/'X' robots). Bottom-left is
// (0,0); the top line is the highest y.
func fromASCII(pic string) *swarm.Swarm {
	lines := strings.Split(strings.Trim(pic, "\n"), "\n")
	s := swarm.New()
	h := len(lines)
	for row, line := range lines {
		y := h - 1 - row
		for x, ch := range line {
			if ch == '#' || ch == 'X' {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

// stepOnce runs exactly one FSYNC round of the default algorithm and
// returns the engine (checking connectivity).
func stepOnce(t *testing.T, s *swarm.Swarm) *fsync.Engine {
	t.Helper()
	eng := fsync.New(s, Default(), fsync.Config{CheckConnectivity: true, StrictViews: true})
	if err := eng.Step(); err != nil {
		t.Fatalf("step failed: %v\n%s", err, eng.Swarm())
	}
	return eng
}

// TestFigure2_Length1 reproduces the k=1 merge: "only a single robot hops
// onto a grid cell occupied by another robot."
func TestFigure2_Length1(t *testing.T) {
	// A tip exposed on three sides with its anchor below. The anchor row
	// extends to both sides so no perpendicular configuration overlaps the
	// tip (pure k=1, no Fig. 3b case).
	s := swarm.New(grid.Pt(0, 1), grid.Pt(-1, 0), grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	v := analysisView(s, Defaults(), grid.Pt(0, 1), 0)
	d, ok := MergeMove(v, Defaults())
	if !ok {
		t.Fatal("tip robot must match a merge configuration")
	}
	if d != grid.South {
		t.Errorf("hop = %v, want South", d)
	}
	eng := stepOnce(t, s)
	if eng.Merges() < 1 {
		t.Error("no robot merged")
	}
	if !eng.Swarm().Connected() {
		t.Error("disconnected")
	}
}

// TestFigure2_LengthK verifies the general merge subboundary of length
// k > 1: the black robots hop simultaneously in the same direction onto the
// row with the grey anchors; at least one robot merges; connectivity holds.
func TestFigure2_LengthK(t *testing.T) {
	for k := 2; k <= 19; k++ {
		// Black row of length k at y=1 with grey anchors under both ends.
		s := swarm.New()
		for x := 0; x < k; x++ {
			s.Add(grid.Pt(x, 1))
		}
		s.Add(grid.Pt(0, 0))
		s.Add(grid.Pt(k-1, 0))
		// A base row keeps the two anchors connected without occupying the
		// landing row (y=0 stays free between the anchors). It extends one
		// cell beyond each end so the end columns do not form perpendicular
		// merge configurations of their own (this test isolates the single
		// k-configuration; overlaps are Figure 3's subject).
		for x := -1; x <= k; x++ {
			s.Add(grid.Pt(x, -1))
		}
		if !s.Connected() {
			t.Fatalf("k=%d: test shape disconnected", k)
		}
		p := Defaults()
		blacks := MergeBlacks(s, p)
		for x := 0; x < k; x++ {
			if d, ok := blacks[grid.Pt(x, 1)]; !ok || d != grid.South {
				t.Fatalf("k=%d: black (%d,1) hop=%v ok=%v", k, x, d, ok)
			}
		}
		before := s.Len()
		eng := stepOnce(t, s)
		if eng.Swarm().Len() >= before {
			t.Errorf("k=%d: no robot removed", k)
		}
		if !eng.Swarm().Connected() {
			t.Errorf("k=%d: disconnected", k)
		}
	}
}

// TestFigure2_WhiteCellsBlock verifies that occupied "white cells" veto the
// merge: a robot above the black row, beside its ends, or under its
// interior makes the configuration invalid (else connectivity might break).
func TestFigure2_WhiteCellsBlock(t *testing.T) {
	base := func() *swarm.Swarm {
		return fromASCII(`
####
#..#
`)
	}
	p := Defaults()
	// Baseline sanity: the 4-row on end anchors merges.
	if len(MergeBlacks(base(), p)) == 0 {
		t.Fatal("baseline configuration should merge")
	}
	// A robot above an interior black vetoes that black's row... and in
	// fact the whole configuration for every black that sees it.
	s := base()
	s.Add(grid.Pt(1, 2))
	for pos, d := range MergeBlacks(s, p) {
		if pos.Y == 1 && d == grid.South {
			t.Errorf("black %v still hops south despite robot above", pos)
		}
	}
	// A robot extending the row sideways shifts maximality — the
	// configuration with ends-clear changes.
	s2 := base()
	s2.Add(grid.Pt(4, 1)) // extend top row; now right end lacks an anchor below
	blacks := MergeBlacks(s2, p)
	if d, ok := blacks[grid.Pt(4, 1)]; ok && d == grid.South {
		// The extended row may still merge via the left anchor — that is
		// allowed; what must not happen is a hop that disconnects. Run a
		// round and check.
		_ = d
	}
	stepOnce(t, s2) // connectivity is asserted inside
	// A robot under an interior black (k ≥ 3) vetoes the merge.
	s3 := fromASCII(`
#####
#.#.#
`)
	for pos, d := range MergeBlacks(s3, p) {
		if pos.Y == 1 && d == grid.South && pos.X != 0 && pos.X != 4 {
			t.Errorf("interior black %v hops despite occupied interior landing", pos)
		}
	}
}

// TestFigure2_NoAnchorNoMerge: without any grey anchor no merge happens (a
// bare line's interior, for example, must not hop sideways).
func TestFigure2_NoAnchorNoMerge(t *testing.T) {
	s := swarm.New()
	for x := 0; x < 8; x++ {
		s.Add(grid.Pt(x, 0))
	}
	blacks := MergeBlacks(s, Defaults())
	// The two end robots merge inward (k=1 with the neighbor as anchor);
	// interior robots must not move.
	for pos := range blacks {
		if pos != grid.Pt(0, 0) && pos != grid.Pt(7, 0) {
			t.Errorf("interior line robot %v matched a merge", pos)
		}
	}
}

// TestFigure3a_OpposingConfigurationsDontSwap: two opposing merge
// configurations facing the same landing row collide and merge rather than
// swapping through each other (the landing-interior-empty white cells rule
// out pass-through livelocks).
func TestFigure3a_OpposingConfigurations(t *testing.T) {
	// Two vertical bars bridged at top: both staple toward the middle
	// column, landing on the same cells — they must merge, not swap.
	s := fromASCII(`
###
#.#
#.#
#.#
`)
	before := s.Len()
	eng := stepOnce(t, s)
	if eng.Swarm().Len() >= before {
		t.Error("opposing configurations did not merge")
	}
	if !eng.Swarm().Connected() {
		t.Error("disconnected")
	}
	// And crucially: the result is strictly smaller, no livelock. Run to
	// completion.
	g := Default()
	eng2 := fsync.New(s, g, fsync.Config{MaxRounds: 500, CheckConnectivity: true, StrictViews: true})
	res := eng2.Run()
	if res.Err != nil || !res.Gathered {
		t.Fatalf("did not gather: %+v", res)
	}
}

// TestFigure3b_DiagonalHop: a robot that is black in two perpendicular
// configurations performs the diagonal hop, and the three involved robots
// end on the same cell ("r, a, b occupy the same grid cell and a, b are
// removed without breaking the connectivity").
func TestFigure3b_DiagonalHop(t *testing.T) {
	// A small hollow square: every wall staples toward the hole, the
	// corners belong to two perpendicular configurations at once.
	s := fromASCII(`
####
#..#
#..#
####
`)
	g := Default()
	eng := fsync.New(s, g, fsync.Config{CheckConnectivity: true, StrictViews: true})
	if err := eng.Step(); err != nil {
		t.Fatalf("step: %v", err)
	}
	if g.Stats().DiagonalHops == 0 {
		t.Error("no diagonal hop executed at the corners")
	}
	if eng.Merges() == 0 {
		t.Error("no merges from the overlapping configurations")
	}
	if !eng.Swarm().Connected() {
		t.Error("disconnected")
	}
}

// TestMergePreservesConnectivityOnCorpus applies a single synchronized
// merge round to randomized swarms and asserts the global safety property:
// connectivity never breaks and the population never grows.
func TestMergePreservesConnectivityOnCorpus(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		s := randomConnected(60+int(seed%5)*17, seed)
		before := s.Len()
		eng := fsync.New(s, Default(), fsync.Config{CheckConnectivity: true, StrictViews: true})
		if err := eng.Step(); err != nil {
			t.Fatalf("seed %d: %v\nbefore:\n%s\nafter:\n%s", seed, err, s, eng.Swarm())
		}
		if eng.Swarm().Len() > before {
			t.Fatalf("seed %d: robots increased", seed)
		}
	}
}
