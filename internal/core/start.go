package core

import (
	"gridgather/internal/fsync"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/view"
)

// This file implements the run starting subboundaries Start-A and Start-B
// of Fig. 7. "We let runs start at endpoints of quasi lines": the starter
// is a quasi line endpoint robot — it has at least two aligned robots ahead
// (so the line's first three robots are aligned, Definition 1.1), no robot
// behind, a perpendicular support robot on the inside, and an exposed
// outside. Start-B is the configuration where the starter "is the endpoint
// of a horizontally and a vertically aligned subboundary at the same time.
// Here, we must start two runs, moving in both directions along the
// boundary."
//
// The starter performs the initial diagonal hop toward forward-inside (the
// paper's OP-C performs this hop for freshly started runs) and hands the
// run state(s) to its line neighbor(s). If the hop cell is occupied the
// start immediately produced a merge (Table 1.6) and no run state survives
// — which is progress in itself.
//
// The "white cell" emptiness requirements make hazardous symmetric starts
// (Fig. 5) impossible: a configuration in which two mirrored starters would
// disconnect the swarm does not match, because each candidate's outside row
// must be empty and its behind cell must be empty.

// startMatch is one matching Start-A orientation.
type startMatch struct {
	dir, inside grid.Point
}

// startMatches enumerates all orientations (the robot has no compass, so
// every rotation/reflection is checked) in which the origin robot is a
// Start-A starter.
func startMatches(v *view.View) []startMatch {
	var out []startMatch
	for _, f := range grid.Frames[:4] { // 4 rotations × 2 insides below
		dir := f.Apply(grid.Pt(1, 0))
		for _, inside := range [2]grid.Point{dir.PerpCW(), dir.PerpCCW()} {
			if startAMatch(v, grid.Zero, dir, inside) && safeSupport(v, dir, inside) {
				out = append(out, startMatch{dir: dir, inside: inside})
			}
		}
	}
	return out
}

// startAMatch checks the Start-A configuration for one orientation, with
// all cells offset by base (base = grid.Zero checks the origin robot):
//
//	outside   .  .  .  .        (must be empty: behind-out, own out,
//	line      .  S  #  #   →dir  and the outs of the two robots ahead)
//	inside       #  ?           (support robot under the starter)
//
// S is the starter; '#' are required robots; '.' required empty cells; '?'
// is unconstrained (the hop target — occupied means the start merges).
func startAMatch(v *view.View, base, dir, inside grid.Point) bool {
	out := inside.Neg()
	occ := func(rel grid.Point) bool { return v.Occ(base.Add(rel)) }
	// Three aligned robots including the starter (Definition 1.1: "at
	// least its first and last three robots are horizontally aligned").
	if !occ(dir) || !occ(dir.Scale(2)) {
		return false
	}
	// Endpoint: nothing behind the starter along the line.
	if occ(dir.Neg()) {
		return false
	}
	// Perpendicular support on the inside.
	if !occ(inside) {
		return false
	}
	// Exposed outside along the line start and behind the corner.
	if occ(out) || occ(dir.Add(out)) || occ(dir.Scale(2).Add(out)) || occ(dir.Neg().Add(out)) {
		return false
	}
	return true
}

// safeSupport rules out the Fig. 5 hazard: "if r and r' both start
// reshaping the subboundary, the connectivity might break." In the
// hazardous S/Z configuration the starter's support robot is itself a
// Start-A endpoint of the mirrored orientation, supported by the starter —
// if both hop simultaneously they vacate each other's anchor and the swarm
// splits. Both robots see the symmetric configuration, so both suppress
// their start ("we do not start any runs"). Progress is unharmed: Lemma 1
// finds a progress pair elsewhere on the boundary.
func safeSupport(v *view.View, dir, inside grid.Point) bool {
	return !startAMatch(v, inside, dir.Neg(), inside.Neg())
}

// startAction computes the action when the origin robot may start runs this
// round (Fig. 11 step 3). The boolean reports whether a start happened.
func (g *Gatherer) startAction(v *view.View) (fsync.Action, bool) {
	matches := startMatches(v)
	switch len(matches) {
	case 1:
		m := matches[0]
		return g.emitStart(v, []startMatch{m}), true
	case 2:
		a, b := matches[0], matches[1]
		// Start-B: the starter ends a horizontal and a vertical line whose
		// insides point at each other's lines, so both initial hops agree
		// on the same forward-inside diagonal.
		if a.dir.Add(a.inside) == b.dir.Add(b.inside) {
			return g.emitStart(v, matches), true
		}
	}
	return fsync.Action{}, false
}

// emitStart performs the initial diagonal hop and hands one run state per
// matching orientation to the respective line neighbor.
func (g *Gatherer) emitStart(v *view.View, matches []startMatch) fsync.Action {
	hop := matches[0].dir.Add(matches[0].inside)
	act := fsync.Action{Move: hop}
	if len(matches) == 1 {
		g.stats.startsA.Add(1)
	} else {
		g.stats.startsB.Add(1)
	}
	if v.Occ(hop) {
		// The start hop lands on an occupied cell: immediate merge
		// (Table 1.6); no run survives.
		g.stats.stopOntoOcc.Add(int64(len(matches)))
		return act
	}
	for _, m := range matches {
		run := robot.Run{Dir: m.dir, Inside: m.inside, Phase: robot.PhaseRoll}
		act.AddTransfer(m.dir, run)
	}
	return act
}
