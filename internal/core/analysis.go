package core

import (
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
	"gridgather/internal/view"
)

// Global analysis helpers. These evaluate the algorithm's *local* predicates
// at every robot of a swarm, giving tests and the experiment harness a
// global picture (e.g. "is this swarm mergeless?", the premise of Lemma 1).

// analysisView builds a stateless view for the robot at origin.
func analysisView(s *swarm.Swarm, p Params, origin grid.Point, round int) *view.View {
	return view.New(view.Config{
		Radius:  p.Radius,
		Checked: false,
		Occ:     s.Has,
		State:   func(grid.Point) robot.State { return robot.State{} },
	}, origin, round)
}

// MergeBlacks returns every robot that would execute a merge hop this
// round, with its hop direction.
func MergeBlacks(s *swarm.Swarm, p Params) map[grid.Point]grid.Point {
	out := make(map[grid.Point]grid.Point)
	for _, c := range s.Cells() {
		if d, ok := MergeMove(analysisView(s, p, c, 0), p); ok {
			out[c] = d
		}
	}
	return out
}

// Mergeless reports whether no robot of the swarm can execute a merge — the
// paper's "Mergeless Swarm" (§3.2).
func Mergeless(s *swarm.Swarm, p Params) bool {
	for _, c := range s.Cells() {
		if _, ok := MergeMove(analysisView(s, p, c, 0), p); ok {
			return false
		}
	}
	return true
}

// StartPoints returns every robot that matches a run starting subboundary,
// with the matched orientations (one entry = Start-A, two = Start-B).
func StartPoints(s *swarm.Swarm, p Params) map[grid.Point][]startMatch {
	out := make(map[grid.Point][]startMatch)
	for _, c := range s.Cells() {
		v := analysisView(s, p, c, 0)
		matches := startMatches(v)
		switch len(matches) {
		case 1:
			out[c] = matches
		case 2:
			if matches[0].dir.Add(matches[0].inside) == matches[1].dir.Add(matches[1].inside) {
				out[c] = matches
			}
		}
	}
	return out
}

// HasProgress reports whether the swarm admits a merge or a run start — the
// liveness property behind Lemma 1: "Every L = 22 rounds either a merge has
// been performed or else a new progress pair is started." A gathered swarm
// needs no progress.
func HasProgress(s *swarm.Swarm, p Params) bool {
	if s.Gathered() {
		return true
	}
	return !Mergeless(s, p) || len(StartPoints(s, p)) > 0
}

// StartDirections exposes a start match's orientation for tests.
func (m startMatch) Dir() grid.Point { return m.dir }

// Inside exposes a start match's inside direction for tests.
func (m startMatch) Inside() grid.Point { return m.inside }
