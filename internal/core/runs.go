package core

import (
	"gridgather/internal/fsync"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/view"
)

// This file implements the runner behaviour of §3.2/§3.3: the reshapement
// operations OP-A/OP-B/OP-C of Fig. 8, the run passing operation of
// Fig. 9b/§6, and the termination conditions of Table 1.
//
// Operationally a run alternates between two modes that the paper's three
// named operations reduce to:
//
//   - roll (OP-A): the runner sits at a reshapement corner — the cell
//     behind it (against the moving direction) is free, the inside anchor
//     under it is occupied, and at least three robots ahead of it are
//     straight — and hops to the forward-inside diagonal, handing the run
//     state to the next robot. One round, exactly as Fig. 8a. Hopping onto
//     an occupied cell merges and terminates the run (Table 1.6).
//
//   - glide (OP-B/OP-C tails): the state moves one robot further without a
//     hop. Gliding happens around the ≤2-cell jogs a quasi line may
//     contain ("no diagonal hops are performed until the target corner c
//     is reached") and while two runs pass each other.
//
// The paper's OP-C (the one-time diagonal hop when a Start-B corner emits
// two runs) is performed by the start rule in start.go.

// runnerAction computes the action of a robot currently holding run states.
func (g *Gatherer) runnerAction(v *view.View) fsync.Action {
	var act fsync.Action
	hopped := false
	for _, run := range v.Self().Runs {
		run.Age++

		// Geometry sanity (Table 1, conditions 4/5): the runner must still
		// sit on its quasi line. Merges elsewhere can reshape the boundary
		// and bury a run in the interior; such runs stop. A single occupied
		// outside cell is legal — the runner sits in the inner corner of a
		// jog while gliding around it — so only a buried runner (outside
		// occupied both here and ahead) stops.
		if v.Occ(run.Outside()) && v.Occ(run.Outside().Add(run.Dir)) {
			g.stats.stopGeometry.Add(1)
			continue
		}

		look := walkAhead(v, run, g.params.SeqStop)

		// Table 1, condition 1: sequent run visible in front.
		if look.SequentAt > 0 && look.SequentAt <= g.params.SeqStop {
			g.stats.stopSequent.Add(1)
			continue
		}
		// Table 1, condition 2: quasi line endpoint visible in front.
		if look.EndpointAt > 0 && look.EndpointAt <= g.params.EndStop {
			g.stats.stopEndpoint.Add(1)
			continue
		}

		// Run passing (Fig. 9b): an oncoming run within the run passing
		// distance makes both runs glide past each other without
		// reshapement hops.
		if run.Phase == robot.PhasePassing {
			run.StepsLeft--
			if run.StepsLeft <= 0 {
				run.Phase = robot.PhaseRoll
				run.StepsLeft = 0
			}
			g.glide(v, run, &act)
			continue
		}
		if look.OncomingAt > 0 && look.OncomingAt <= g.params.PassDist {
			run.Phase = robot.PhasePassing
			run.StepsLeft = g.params.PassGlide
			g.stats.passEnters.Add(1)
			g.glide(v, run, &act)
			continue
		}

		// OP-A (Fig. 8a): roll if the local shape allows.
		if !hopped && g.canRoll(v, run) {
			hop := run.Dir.Add(run.Inside)
			act.Move = hop
			hopped = true
			g.stats.rolls.Add(1)
			if v.Occ(hop) {
				// Table 1, condition 6: hopped onto an occupied cell; one
				// of the robots is removed and the run terminates.
				g.stats.stopOntoOcc.Add(1)
				continue
			}
			act.AddTransfer(run.Dir, run)
			continue
		}

		// OP-B / OP-C tail: glide one robot further.
		g.glide(v, run, &act)
	}
	return act
}

// canRoll reports whether the runner may execute OP-A: it must be at a
// reshapement corner (free behind, anchored inside) and "the runner and at
// least the next 3 robots are located on a straight line" whose outside is
// exposed.
func (g *Gatherer) canRoll(v *view.View, run robot.Run) bool {
	d, in, out := run.Dir, run.Inside, run.Outside()
	if v.Occ(d.Neg()) || !v.Occ(in) {
		return false
	}
	for i := 1; i <= 3; i++ {
		if !v.Occ(d.Scale(i)) || v.Occ(d.Scale(i).Add(out)) {
			return false
		}
	}
	return true
}

// glide moves the run state to the next robot along the line without a hop.
// If the line has no successor the run terminates (its endpoint was
// reached).
func (g *Gatherer) glide(v *view.View, run robot.Run, act *fsync.Action) {
	next, ok, _ := successor(v, grid.Zero, run.Dir.Neg(), run.Dir, run.Inside)
	if !ok {
		g.stats.stopEndpoint.Add(1)
		return
	}
	g.stats.glides.Add(1)
	act.AddTransfer(next, run)
}
