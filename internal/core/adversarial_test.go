package core

import (
	"testing"

	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// Adversarial shapes: configurations engineered against specific
// mechanisms — thick walls (no sideways staples), diamond rings (no long
// aligned runs except at the four apexes), nested rings (multiple inner
// boundaries), and pinched shapes (width-1 contour overlaps).

// nestedRings returns a ring inside a ring, joined by a one-robot bridge.
func nestedRings(outer int) *swarm.Swarm {
	s := gen.Hollow(outer, outer).Clone()
	inner := outer - 6
	for x := 3; x < 3+inner; x++ {
		for y := 3; y < 3+inner; y++ {
			if x == 3 || y == 3 || x == 3+inner-1 || y == 3+inner-1 {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	// Bridge between the rings.
	s.Add(grid.Pt(1, outer/2))
	s.Add(grid.Pt(2, outer/2))
	return s
}

// pinched returns two solid blocks joined by a width-1 neck.
func pinched(side, neck int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			s.Add(grid.Pt(x, y))
			s.Add(grid.Pt(x+side+neck, y))
		}
	}
	for i := 0; i < neck; i++ {
		s.Add(grid.Pt(side+i, side/2))
	}
	return s
}

func TestAdversarialThickRings(t *testing.T) {
	for _, th := range []int{2, 3} {
		s := gen.ThickRing(26, 26, th)
		res := corpusRun(t, "thick-ring", s)
		t.Logf("thick ring th=%d: n=%d rounds=%d runs=%d", th, res.InitialRobots, res.Rounds, res.RunsStarted)
	}
}

func TestAdversarialDiamondRing(t *testing.T) {
	for _, r := range []int{6, 12, 20} {
		s := gen.DiamondRing(r)
		s.Validate()
		res := corpusRun(t, "diamond-ring", s)
		t.Logf("diamond ring r=%d: n=%d rounds=%d", r, res.InitialRobots, res.Rounds)
	}
}

func TestAdversarialNestedRings(t *testing.T) {
	s := nestedRings(30)
	s.Validate()
	res := corpusRun(t, "nested-rings", s)
	t.Logf("nested rings: n=%d rounds=%d runs=%d", res.InitialRobots, res.Rounds, res.RunsStarted)
}

func TestAdversarialPinched(t *testing.T) {
	s := pinched(8, 5)
	s.Validate()
	res := corpusRun(t, "pinched", s)
	t.Logf("pinched: n=%d rounds=%d", res.InitialRobots, res.Rounds)
}

func TestAdversarialCheckerHoles(t *testing.T) {
	// A solid block with a regular pattern of single-cell holes: many
	// tiny inner boundaries.
	s := gen.Solid(15, 15).Clone()
	for x := 2; x < 14; x += 3 {
		for y := 2; y < 14; y += 3 {
			s.Remove(grid.Pt(x, y))
		}
	}
	s.Validate()
	res := corpusRun(t, "checker-holes", s)
	t.Logf("checker holes: n=%d rounds=%d", res.InitialRobots, res.Rounds)
}

func TestAdversarialLongCorridor(t *testing.T) {
	// A U-corridor: two long parallel walls joined at one end — quasi
	// lines facing each other across a width-1 gap.
	s := swarm.New()
	for x := 0; x < 40; x++ {
		s.Add(grid.Pt(x, 0))
		s.Add(grid.Pt(x, 2))
	}
	s.Add(grid.Pt(0, 1))
	s.Validate()
	res := corpusRun(t, "corridor", s)
	t.Logf("corridor: n=%d rounds=%d", res.InitialRobots, res.Rounds)
}
