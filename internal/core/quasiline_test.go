package core

import (
	"testing"

	"gridgather/internal/grid"
)

func hpath(y int, xs ...int) []grid.Point {
	var out []grid.Point
	for _, x := range xs {
		out = append(out, grid.Pt(x, y))
	}
	return out
}

func TestPathSegmentsStraight(t *testing.T) {
	path := hpath(0, 0, 1, 2, 3, 4)
	segs := PathSegments(path)
	if len(segs) != 1 || segs[0].Axis != 'h' || segs[0].Robots != 5 {
		t.Errorf("segs = %+v", segs)
	}
}

func TestPathSegmentsWithJog(t *testing.T) {
	// (0,0)(1,0)(2,0)(2,1)(3,1)(4,1): h3, v2, h3 (corner robots shared).
	path := []grid.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}, {X: 3, Y: 1}, {X: 4, Y: 1}}
	segs := PathSegments(path)
	if len(segs) != 3 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].Axis != 'h' || segs[0].Robots != 3 {
		t.Errorf("seg0 = %+v", segs[0])
	}
	if segs[1].Axis != 'v' || segs[1].Robots != 2 {
		t.Errorf("seg1 = %+v", segs[1])
	}
	if segs[2].Axis != 'h' || segs[2].Robots != 3 {
		t.Errorf("seg2 = %+v", segs[2])
	}
}

func TestPathSegmentsDirectionFlipSplits(t *testing.T) {
	// Going right then back left must split even though the axis is equal.
	path := []grid.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 0}}
	segs := PathSegments(path)
	if len(segs) != 2 {
		t.Errorf("backtrack should split segments: %+v", segs)
	}
}

func TestPathSegmentsSingleton(t *testing.T) {
	segs := PathSegments(hpath(0, 5))
	if len(segs) != 1 || segs[0].Robots != 1 {
		t.Errorf("segs = %+v", segs)
	}
	if PathSegments(nil) != nil {
		t.Error("nil path should give nil segments")
	}
}

// TestDefinition1_StraightLine: a straight line of ≥3 robots is a
// horizontal quasi line.
func TestDefinition1_StraightLine(t *testing.T) {
	axis, ok := IsQuasiLine(hpath(0, 0, 1, 2, 3, 4, 5))
	if !ok || axis != 'h' {
		t.Errorf("axis=%c ok=%v", axis, ok)
	}
	// Too short.
	if _, ok := IsQuasiLine(hpath(0, 0, 1)); ok {
		t.Error("2 robots must not be a quasi line")
	}
}

// TestDefinition1_Figure6 reconstructs the quasi line of Fig. 6: long
// horizontal runs joined by single vertical jogs, first and last three
// robots aligned.
func TestDefinition1_Figure6(t *testing.T) {
	path := []grid.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0},
		{X: 3, Y: 1}, // jog up (2 vertically aligned robots)
		{X: 4, Y: 1}, {X: 5, Y: 1}, {X: 6, Y: 1},
		{X: 6, Y: 0}, // jog down
		{X: 7, Y: 0}, {X: 8, Y: 0}, {X: 9, Y: 0},
	}
	axis, ok := IsQuasiLine(path)
	if !ok || axis != 'h' {
		t.Fatalf("Figure 6 path rejected: axis=%c ok=%v", axis, ok)
	}
}

// TestDefinition1_Violations checks each clause of Definition 1.
func TestDefinition1_Violations(t *testing.T) {
	// Clause 2: a horizontal subrun of two robots.
	clause2 := []grid.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
		{X: 2, Y: 1},
		{X: 3, Y: 1}, {X: 4, Y: 1}, // only 2 aligned... plus corner = 2? (2,1),(3,1),(4,1) = 3. Make it shorter:
	}
	// Rebuild: h3, jog, h2, jog, h3 — middle run too short.
	clause2 = []grid.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
		{X: 2, Y: 1}, {X: 3, Y: 1},
		{X: 3, Y: 2}, {X: 4, Y: 2}, {X: 5, Y: 2},
	}
	if axis, ok := IsQuasiLine(clause2); ok && axis == 'h' {
		t.Error("middle horizontal run of 2 must violate Definition 1.2")
	}
	// Clause 3: a vertical subrun of three robots.
	clause3 := []grid.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
		{X: 2, Y: 1}, {X: 2, Y: 2},
		{X: 3, Y: 2}, {X: 4, Y: 2}, {X: 5, Y: 2},
	}
	if axis, ok := IsQuasiLine(clause3); ok && axis == 'h' {
		t.Error("vertical run of 3 must violate Definition 1.3")
	}
	// Clause 1: endpoint not aligned (ends with a jog).
	clause1 := []grid.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
		{X: 2, Y: 1},
	}
	if axis, ok := IsQuasiLine(clause1); ok && axis == 'h' {
		t.Error("path ending in a jog must violate Definition 1.1")
	}
}

// TestDefinition1_Vertical: the transposed definition holds analogously.
func TestDefinition1_Vertical(t *testing.T) {
	var path []grid.Point
	for y := 0; y < 6; y++ {
		path = append(path, grid.Pt(0, y))
	}
	axis, ok := IsQuasiLine(path)
	if !ok || axis != 'v' {
		t.Errorf("vertical line: axis=%c ok=%v", axis, ok)
	}
}

// TestIsStairway checks Fig. 16's stairway shape: alternating single turns.
func TestIsStairway(t *testing.T) {
	stairs := []grid.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 2},
	}
	if !IsStairway(stairs) {
		t.Error("staircase rejected")
	}
	// A straight 3-run is not a stairway.
	if IsStairway(hpath(0, 0, 1, 2)) {
		t.Error("straight run accepted as stairway")
	}
	// Two consecutive same-axis short segments (a 2-step) are not.
	twoStep := []grid.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1},
	}
	if IsStairway(twoStep) {
		t.Error("2-step accepted as stairway")
	}
	if IsStairway(nil) || IsStairway(hpath(0, 1)) {
		t.Error("degenerate paths accepted")
	}
}

// TestLemma1_HollowRectangleDecomposition: the canonical mergeless swarm's
// outer boundary decomposes into quasi lines (the four walls) — the
// structure the proof of Lemma 1 derives.
func TestLemma1_HollowRectangleDecomposition(t *testing.T) {
	s := hollow(24, 24)
	if !Mergeless(s, Defaults()) {
		t.Fatal("hollow 24x24 should be mergeless (walls exceed MergeMax)")
	}
	contour := s.OuterContour()
	// The top wall (y = 23) is a horizontal quasi line.
	var top []grid.Point
	for _, p := range contour {
		if p.Y == 23 {
			top = append(top, p)
		}
	}
	if len(top) != 24 {
		t.Fatalf("top wall robots on contour = %d", len(top))
	}
	if axis, ok := IsQuasiLine(top); !ok || axis != 'h' {
		t.Errorf("top wall not a horizontal quasi line: %c %v", axis, ok)
	}
}
