package core

import (
	"gridgather/internal/grid"
)

// This file implements Definition 1 (quasi lines) and the boundary-shape
// analysis used by the Lemma 1 experiments: segmenting a boundary path into
// maximal straight runs and classifying quasi lines and stairways
// (Fig. 6/16).

// Segment is a maximal straight run of robots along a boundary path.
type Segment struct {
	// Axis is 'h' for horizontal, 'v' for vertical, 'd' for a diagonal
	// step (possible where the contour crosses a width-1 pinch).
	Axis byte
	// Robots is the number of robots in the aligned run (steps + 1).
	Robots int
	// Start is the index of the run's first cell in the path.
	Start int
}

// PathSegments splits a cell path into maximal aligned runs. Consecutive
// path cells must be king-move adjacent.
func PathSegments(path []grid.Point) []Segment {
	if len(path) < 2 {
		if len(path) == 1 {
			return []Segment{{Axis: 'h', Robots: 1, Start: 0}}
		}
		return nil
	}
	axisOf := func(d grid.Point) byte {
		switch {
		case d.Y == 0 && d.X != 0:
			return 'h'
		case d.X == 0 && d.Y != 0:
			return 'v'
		default:
			return 'd'
		}
	}
	var segs []Segment
	cur := Segment{Axis: axisOf(path[1].Sub(path[0])), Robots: 2, Start: 0}
	prevDir := path[1].Sub(path[0])
	for i := 2; i < len(path); i++ {
		d := path[i].Sub(path[i-1])
		if axisOf(d) == cur.Axis && d == prevDir {
			cur.Robots++
		} else {
			segs = append(segs, cur)
			cur = Segment{Axis: axisOf(d), Robots: 2, Start: i - 1}
		}
		prevDir = d
	}
	segs = append(segs, cur)
	return segs
}

// IsQuasiLine reports whether the path satisfies Definition 1 for either
// orientation, returning the line axis ('h' or 'v') when it does:
//
//  1. at least its first and last three robots are aligned along the line
//     axis,
//  2. all its aligned subboundaries along the line axis contain at least
//     three robots,
//  3. all its aligned subboundaries along the perpendicular axis contain at
//     most two robots.
func IsQuasiLine(path []grid.Point) (axis byte, ok bool) {
	if isQuasiLineAxis(path, 'h') {
		return 'h', true
	}
	if isQuasiLineAxis(path, 'v') {
		return 'v', true
	}
	return 0, false
}

func isQuasiLineAxis(path []grid.Point, lineAxis byte) bool {
	if len(path) < 3 {
		return false
	}
	segs := PathSegments(path)
	if len(segs) == 0 {
		return false
	}
	perp := byte('v')
	if lineAxis == 'v' {
		perp = 'h'
	}
	first, last := segs[0], segs[len(segs)-1]
	if first.Axis != lineAxis || first.Robots < 3 {
		return false
	}
	if last.Axis != lineAxis || last.Robots < 3 {
		return false
	}
	for _, s := range segs {
		switch s.Axis {
		case lineAxis:
			if s.Robots < 3 {
				return false
			}
		case perp:
			if s.Robots > 2 {
				return false
			}
		default:
			return false // diagonal pinch steps disqualify
		}
	}
	return true
}

// IsStairway reports whether the path is a stairway (Fig. 16): a subchain
// of alternating single perpendicular turns — every maximal aligned run
// contains exactly two robots and consecutive runs alternate axes.
func IsStairway(path []grid.Point) bool {
	if len(path) < 2 {
		return false
	}
	segs := PathSegments(path)
	for i, s := range segs {
		if s.Axis == 'd' || s.Robots != 2 {
			return false
		}
		if i > 0 && s.Axis == segs[i-1].Axis {
			return false
		}
	}
	return true
}
