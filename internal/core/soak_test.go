package core

import (
	"fmt"
	"testing"

	"gridgather/internal/fsync"
)

// TestSoakRandomCorpus runs full gathering simulations over a wide corpus
// of random connected swarms with every invariant enabled. This is the
// repository's empirical Theorem 1: every input gathers, connectivity never
// breaks, rounds stay within a linear budget.
func TestSoakRandomCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 60; seed++ {
		n := 40 + int(seed*7)%140
		s := randomConnected(n, seed)
		g := Default()
		eng := fsync.New(s, g, fsync.Config{
			MaxRounds:         60*n + 500,
			CheckConnectivity: true,
			StrictViews:       true,
			NoMergeLimit:      30*n + 300,
		})
		res := eng.Run()
		if res.Err != nil || !res.Gathered {
			t.Fatalf("seed %d n=%d: %+v\nstate:\n%s", seed, n, res, eng.Swarm())
		}
		if res.Rounds > 30*n+200 {
			t.Errorf("seed %d n=%d: %d rounds exceeds linear budget", seed, n, res.Rounds)
		}
	}
}

// TestSoakPerRoundInvariants runs medium swarms and asserts after every
// round: connectivity, monotone population, and bounded speed (the engine
// rejects >1-cell moves itself).
func TestSoakPerRoundInvariants(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		s := randomConnected(90, seed)
		prev := s.Len()
		g := Default()
		eng := fsync.New(s, g, fsync.Config{
			MaxRounds:         20000,
			CheckConnectivity: true,
			StrictViews:       true,
			OnRound: func(e *fsync.Engine) {
				if e.Swarm().Len() > prev {
					panic(fmt.Sprintf("population grew at round %d", e.Round()))
				}
				prev = e.Swarm().Len()
			},
		})
		res := eng.Run()
		if res.Err != nil || !res.Gathered {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}
