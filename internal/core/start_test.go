package core

import (
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// TestFigure7_StartA: the endpoint of a horizontal quasi line with a
// perpendicular support starts exactly one run whose direction points into
// the line.
func TestFigure7_StartA(t *testing.T) {
	// Plateau with a single support robot under its endpoint (the vertical
	// side is too short to be a second quasi line, so this is Start-A, not
	// Start-B):
	//   S##########
	//   #..........
	s := swarm.New()
	for x := 0; x < 11; x++ {
		s.Add(grid.Pt(x, 2))
	}
	s.Add(grid.Pt(0, 1))
	v := analysisView(s, Defaults(), grid.Pt(0, 2), 0)
	matches := startMatches(v)
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1 (Start-A)", len(matches))
	}
	if matches[0].Dir() != grid.East || matches[0].Inside() != grid.South {
		t.Errorf("match = dir %v inside %v", matches[0].Dir(), matches[0].Inside())
	}
}

// TestFigure7_StartB: a robot that ends a horizontal and a vertical quasi
// line at once starts two runs "moving in both directions along the
// boundary".
func TestFigure7_StartB(t *testing.T) {
	// Walls longer than MergeMax, so the ring is mergeless and the corners
	// start runs instead of merging.
	s := gen.Hollow(26, 26)
	v := analysisView(s, Defaults(), grid.Pt(0, 25), 0) // top-left corner
	matches := startMatches(v)
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2 (Start-B)", len(matches))
	}
	// Both initial hops agree on the forward-inside diagonal into the hole.
	hop := matches[0].Dir().Add(matches[0].Inside())
	if hop != matches[1].Dir().Add(matches[1].Inside()) {
		t.Error("Start-B hops disagree")
	}
	if hop != grid.Pt(1, -1) {
		t.Errorf("corner hop = %v, want (1,-1) into the hole", hop)
	}
	if s.Has(grid.Pt(1, 24)) {
		t.Error("hop target (1,24) should be in the hole (free)")
	}
	// Executing the start: the corner hops and two runs appear on the two
	// wall neighbors.
	g := Default()
	eng := fsync.New(s, g, fsync.Config{CheckConnectivity: true, StrictViews: true})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().StartsB; got < 1 {
		t.Errorf("StartsB = %d", got)
	}
	if eng.RunsStarted() < 2 {
		t.Errorf("runs started = %d, want ≥ 2", eng.RunsStarted())
	}
}

// TestFigure7_NoStartMidLine: robots in the middle of a quasi line never
// start runs (only endpoints do).
func TestFigure7_NoStartMidLine(t *testing.T) {
	s := gen.Hollow(26, 26)
	for _, p := range []grid.Point{{X: 5, Y: 25}, {X: 5, Y: 0}, {X: 0, Y: 6}} {
		v := analysisView(s, Defaults(), p, 0)
		if got := startMatches(v); len(got) != 0 {
			t.Errorf("mid-wall robot %v matched %d starts", p, len(got))
		}
	}
}

// TestFigure5_SymmetricStartSuppressed reproduces the Fig. 5 hazard: two
// quasi line endpoints r, r' that support each other. If both started and
// hopped, the swarm would disconnect; the white-cell/support rule makes
// both suppress their start.
func TestFigure5_SymmetricStartSuppressed(t *testing.T) {
	// S/Z configuration: column down at x=0 from (0,0), column up at x=1
	// from (1,0); (0,0) and (1,0) support each other.
	s := swarm.New()
	for y := 0; y >= -3; y-- {
		s.Add(grid.Pt(0, y))
	}
	for y := 0; y <= 3; y++ {
		s.Add(grid.Pt(1, y))
	}
	s.Validate()
	p := Defaults()
	for _, c := range []grid.Point{{X: 0, Y: 0}, {X: 1, Y: 0}} {
		v := analysisView(s, p, c, 0)
		if got := startMatches(v); len(got) != 0 {
			t.Errorf("hazardous endpoint %v started %d runs", c, len(got))
		}
	}
	// The swarm must still make progress (its far tips merge).
	if !HasProgress(s, p) {
		t.Error("S-shape has no progress source")
	}
	// And a full simulation gathers it safely.
	g := Default()
	eng := fsync.New(s, g, fsync.Config{MaxRounds: 2000, CheckConnectivity: true, StrictViews: true})
	res := eng.Run()
	if res.Err != nil || !res.Gathered {
		t.Fatalf("S-shape did not gather: %+v", res)
	}
}

// TestStartRespectsL: starts only fire on rounds divisible by L.
func TestStartRespectsL(t *testing.T) {
	s := gen.Hollow(26, 26)
	g := Default()
	eng := fsync.New(s, g, fsync.Config{CheckConnectivity: true, StrictViews: true})
	if err := eng.Step(); err != nil { // round 0: starts allowed
		t.Fatal(err)
	}
	started := eng.RunsStarted()
	if started == 0 {
		t.Fatal("no runs started at round 0")
	}
	// Rounds 1..L-1: no new starts (runs move, but none are created).
	for r := 1; r < g.Params().L-1; r++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if eng.RunsStarted() != started {
		t.Errorf("runs started grew from %d to %d between L-ticks", started, eng.RunsStarted())
	}
}

// TestStartHopOntoOccupiedMerges: when the initial diagonal hop lands on an
// occupied cell, the start immediately merges (Table 1.6) — the solid
// square case.
func TestStartHopOntoOccupiedMerges(t *testing.T) {
	s := gen.Solid(7, 7)
	g := Default()
	eng := fsync.New(s, g, fsync.Config{CheckConnectivity: true, StrictViews: true})
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Merges() == 0 {
		t.Error("corner starts on a solid square must merge immediately")
	}
	if g.Stats().StopOntoOcc == 0 {
		t.Error("Table 1.6 counter not incremented")
	}
	if eng.RunsStarted() != 0 {
		t.Errorf("no run state should survive an onto-occupied start, got %d", eng.RunsStarted())
	}
}
