package core

import "sync/atomic"

// counters is the internal, concurrency-safe backing store for Stats. The
// FSYNC engine may shard the compute phase across a worker pool
// (fsync.Config.Workers), in which case Compute runs concurrently for
// different robots of the same round; every event increment therefore goes
// through an atomic counter. Reads other than Stats() happen only between
// rounds, when the pool is quiescent.
type counters struct {
	mergeMoves   atomic.Int64
	diagonalHops atomic.Int64
	rolls        atomic.Int64
	glides       atomic.Int64
	passEnters   atomic.Int64
	startsA      atomic.Int64
	startsB      atomic.Int64
	stopSequent  atomic.Int64
	stopEndpoint atomic.Int64
	stopGeometry atomic.Int64
	stopOntoOcc  atomic.Int64
}

// snapshot assembles the public Stats view of the counters.
func (c *counters) snapshot() Stats {
	return Stats{
		MergeMoves:   int(c.mergeMoves.Load()),
		DiagonalHops: int(c.diagonalHops.Load()),
		Rolls:        int(c.rolls.Load()),
		Glides:       int(c.glides.Load()),
		PassEnters:   int(c.passEnters.Load()),
		StartsA:      int(c.startsA.Load()),
		StartsB:      int(c.startsB.Load()),
		StopSequent:  int(c.stopSequent.Load()),
		StopEndpoint: int(c.stopEndpoint.Load()),
		StopGeometry: int(c.stopGeometry.Load()),
		StopOntoOcc:  int(c.stopOntoOcc.Load()),
	}
}

// reset zeroes every counter.
func (c *counters) reset() {
	c.mergeMoves.Store(0)
	c.diagonalHops.Store(0)
	c.rolls.Store(0)
	c.glides.Store(0)
	c.passEnters.Store(0)
	c.startsA.Store(0)
	c.startsB.Store(0)
	c.stopSequent.Store(0)
	c.stopEndpoint.Store(0)
	c.stopGeometry.Store(0)
	c.stopOntoOcc.Store(0)
}
