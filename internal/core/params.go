// Package core implements the paper's primary contribution: the local,
// fully synchronous gathering algorithm for connected robot swarms on the
// grid (§3 of the paper), built from
//
//   - merge operations on subboundaries (Fig. 2) including overlapping
//     configurations (Fig. 3),
//   - run states that reshape mergeless swarms (§3.2): run starts at quasi
//     line endpoints (Fig. 7), run operations OP-A/OP-B/OP-C (Fig. 8), run
//     passing (Fig. 9b, §6), and the termination conditions of Table 1,
//
// composed into the per-round robot program of Fig. 11. Every decision is a
// pure function of the robot's radius-limited local view; the view layer
// enforces the radius in checked mode.
package core

import "fmt"

// Params are the algorithm's constants. The paper proves the values
// L = 22 and viewing radius 20 sufficient ("which can still be optimized";
// §5.3 shows L ≥ 13 and radius 11 suffice for the easy passing case).
// The ablation benchmarks vary these.
type Params struct {
	// Radius is the viewing radius (L1 distance). Paper value: 20.
	Radius int
	// L is the run start period: every L-th round robots check the run
	// start configurations (Fig. 11 step 3). Paper value: 22.
	L int
	// MergeMax bounds the length k of a merge configuration ("the maximal
	// size k of a merge configuration is limited by the viewing radius",
	// §3.1). Must be ≤ Radius-1 so an end robot can verify the whole
	// pattern.
	MergeMax int
	// SeqStop is the along-boundary distance at which a runner seeing a
	// sequent run in front of it stops (Table 1, condition 1: "it can see
	// the next sequent run in front of it"). Must be < L-1 so freshly
	// pipelined runs (spaced L apart) are not stopped, and ≤ Radius-2 so
	// the check stays within the viewing radius.
	SeqStop int
	// EndStop is the along-boundary distance at which a runner seeing its
	// quasi line's endpoint in front of it stops (Table 1, condition 2).
	EndStop int
	// PassDist is the run passing distance (§3.2: "we call 3 the run
	// passing distance").
	PassDist int
	// PassGlide is the number of rounds a passing run glides without
	// reshapement hops before resuming normal operation (Fig. 20 shows the
	// longest passing takes 6 rounds).
	PassGlide int
}

// Defaults returns the paper's constants.
func Defaults() Params {
	return Params{
		Radius:    20,
		L:         22,
		MergeMax:  19,
		SeqStop:   18,
		EndStop:   3,
		PassDist:  3,
		PassGlide: 6,
	}
}

// WithConstants returns Defaults with the viewing radius and run start
// period overridden (0 keeps the paper's value) and the dependent constants
// (MergeMax, SeqStop) clamped so the result still satisfies Validate. It is
// the one place the public API, the experiment harness and the sweep runner
// derive ablation parameter sets from.
func WithConstants(radius, l int) Params {
	p := Defaults()
	if radius > 0 {
		p.Radius = radius
	}
	if l > 0 {
		p.L = l
	}
	if p.MergeMax > p.Radius-1 {
		p.MergeMax = p.Radius - 1
	}
	if p.SeqStop > p.Radius-2 {
		p.SeqStop = p.Radius - 2
	}
	if p.SeqStop >= p.L-1 {
		p.SeqStop = p.L - 2
	}
	return p
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	switch {
	case p.Radius < 5:
		return fmt.Errorf("core: radius %d too small (need ≥ 5)", p.Radius)
	case p.L < 4:
		return fmt.Errorf("core: L %d too small", p.L)
	case p.MergeMax < 2:
		return fmt.Errorf("core: MergeMax %d too small", p.MergeMax)
	case p.MergeMax > p.Radius-1:
		return fmt.Errorf("core: MergeMax %d exceeds Radius-1 = %d", p.MergeMax, p.Radius-1)
	case p.SeqStop > p.Radius-2:
		return fmt.Errorf("core: SeqStop %d exceeds Radius-2 = %d", p.SeqStop, p.Radius-2)
	case p.SeqStop >= p.L-1:
		return fmt.Errorf("core: SeqStop %d would stop freshly pipelined runs (L=%d)", p.SeqStop, p.L)
	case p.EndStop < 1 || p.PassDist < 1 || p.PassGlide < 1:
		return fmt.Errorf("core: distances must be positive")
	}
	return nil
}

// Stats is a point-in-time snapshot of the algorithm's event counters, for
// tests, tracing and the experiment harness. The live counters are atomic
// (the engine's compute phase may run on a worker pool); Gatherer.Stats
// assembles this plain-int snapshot from them.
type Stats struct {
	MergeMoves   int // robots that executed a merge hop (Fig. 2)
	DiagonalHops int // overlap case of Fig. 3b (two perpendicular configs)
	Rolls        int // OP-A reshapement hops
	Glides       int // state moved without a hop (OP-B/OP-C tails)
	PassEnters   int // run passing operations started (Fig. 9b)
	StartsA      int // Start-A runs started (Fig. 7 i)
	StartsB      int // Start-B double runs started (Fig. 7 ii)
	StopSequent  int // Table 1 condition 1
	StopEndpoint int // Table 1 condition 2
	StopGeometry int // Table 1 conditions 4/5 (shape changed under the run)
	StopOntoOcc  int // Table 1 condition 6 (hop onto occupied cell)
}
