package core

import (
	"gridgather/internal/grid"
	"gridgather/internal/view"
)

// This file implements the merge operations of §3.1 (Fig. 2) and their
// overlap handling (Fig. 3).
//
// A merge configuration of length k, oriented so the hop direction is
// "down" (d), consists of k black robots forming a maximal straight
// subboundary perpendicular to d such that
//
//   - every cell on the far side (-d) of a black robot is empty (the
//     subboundary is exposed),
//   - the two cells extending the black line at its ends are empty
//     (maximality — the paper's white cells beside the line),
//   - the landing cells under the interior black robots are empty (white
//     cells; this is what rules out the swap livelock of Fig. 3a: robots
//     never hop through an occupied row),
//   - at least one of the two landing cells under the end robots is
//     occupied (a grey anchor robot that does not move; "by requiring at
//     least one grey cell ... at least one robot from a grey cell will be
//     located at the same cell as a robot from a formerly black cell and
//     hence one robot is merged").
//
// Every black robot verifies the whole configuration inside its own viewing
// range and hops one cell toward d; grey robots stay. k is bounded by
// MergeMax ≤ Radius-1 so the farthest verified cell is within the radius.
//
// Overlaps (Fig. 3): a robot that is black in two configurations with
// perpendicular hop directions performs the diagonal hop of Fig. 3b. Black
// robots of opposing configurations never interleave because interior
// landing cells must be free, and simultaneous hops that land on a shared
// cell merge, exactly as in the figure ("afterwards, r, a, b occupy the
// same grid cell and a, b are removed").

// MergeMove decides whether the robot at the view's origin participates in
// a merge operation this round, and returns its hop. The second return is
// false if the robot is not a black robot of any configuration.
func MergeMove(v *view.View, p Params) (grid.Point, bool) {
	var dirs []grid.Point
	for _, d := range grid.Axis4 {
		if blackIn(v, d, p) {
			dirs = append(dirs, d)
		}
	}
	switch len(dirs) {
	case 1:
		return dirs[0], true
	case 2:
		if sum := dirs[0].Add(dirs[1]); sum != grid.Zero {
			// Perpendicular overlap: diagonal hop (Fig. 3b).
			return sum, true
		}
	}
	// Zero matches, two opposing matches, or more: no safe single hop.
	return grid.Zero, false
}

// blackIn reports whether the origin robot is a black robot of a merge
// configuration whose hop direction is d.
func blackIn(v *view.View, d grid.Point, p Params) bool {
	axis := d.PerpCW() // the line axis of the black subboundary

	// Extent of the straight run of robots through the origin along ±axis.
	neg := 0
	for v.Occ(axis.Scale(-(neg + 1))) {
		neg++
		if neg >= p.MergeMax {
			return false // too long to verify within the radius
		}
	}
	pos := 0
	for v.Occ(axis.Scale(pos + 1)) {
		pos++
		if neg+pos+1 > p.MergeMax {
			return false
		}
	}
	// Maximality holds by loop exit: the cells extending the run at both
	// ends are free.

	// Far side (outside) must be fully exposed.
	for m := -neg; m <= pos; m++ {
		if v.Occ(axis.Scale(m).Sub(d)) {
			return false
		}
	}
	// Interior landing cells must be free.
	for m := -neg + 1; m <= pos-1; m++ {
		if v.Occ(axis.Scale(m).Add(d)) {
			return false
		}
	}
	// At least one end landing cell must hold a grey anchor.
	landA := axis.Scale(-neg).Add(d)
	landB := axis.Scale(pos).Add(d)
	return v.Occ(landA) || v.Occ(landB)
}
