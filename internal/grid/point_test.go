package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, -2), Pt(-1, 5)
	if got := p.Add(q); got != Pt(2, 3) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, -7) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Neg(); got != Pt(-3, 2) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, -4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestNorms(t *testing.T) {
	cases := []struct {
		p        Point
		l1, linf int
	}{
		{Pt(0, 0), 0, 0},
		{Pt(3, 4), 7, 4},
		{Pt(-3, 4), 7, 4},
		{Pt(-5, -2), 7, 5},
		{Pt(1, 0), 1, 1},
		{Pt(1, 1), 2, 1},
	}
	for _, c := range cases {
		if got := c.p.L1(); got != c.l1 {
			t.Errorf("L1(%v) = %d, want %d", c.p, got, c.l1)
		}
		if got := c.p.Linf(); got != c.linf {
			t.Errorf("Linf(%v) = %d, want %d", c.p, got, c.linf)
		}
	}
}

func TestDistances(t *testing.T) {
	if got := L1Dist(Pt(1, 1), Pt(4, 5)); got != 7 {
		t.Errorf("L1Dist = %d", got)
	}
	if got := LinfDist(Pt(1, 1), Pt(4, 5)); got != 4 {
		t.Errorf("LinfDist = %d", got)
	}
}

func TestUnitPredicates(t *testing.T) {
	for _, d := range Axis4 {
		if !d.IsUnit() {
			t.Errorf("%v should be axis unit", d)
		}
		if d.IsDiagonalUnit() {
			t.Errorf("%v should not be diagonal unit", d)
		}
	}
	for _, d := range []Point{NorthEast, NorthWest, SouthEast, SouthWest} {
		if d.IsUnit() {
			t.Errorf("%v should not be axis unit", d)
		}
		if !d.IsDiagonalUnit() {
			t.Errorf("%v should be diagonal unit", d)
		}
	}
}

func TestPerp(t *testing.T) {
	if got := North.PerpCW(); got != East {
		t.Errorf("North cw = %v", got)
	}
	if got := East.PerpCW(); got != South {
		t.Errorf("East cw = %v", got)
	}
	if got := North.PerpCCW(); got != West {
		t.Errorf("North ccw = %v", got)
	}
	// Perpendicular twice is negation.
	for _, d := range Axis4 {
		if got := d.PerpCW().PerpCW(); got != d.Neg() {
			t.Errorf("double perp of %v = %v", d, got)
		}
	}
}

func TestSign(t *testing.T) {
	if got := Pt(-7, 3).Sign(); got != Pt(-1, 1) {
		t.Errorf("Sign = %v", got)
	}
	if got := Pt(0, -9).Sign(); got != Pt(0, -1) {
		t.Errorf("Sign = %v", got)
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(-1, 2), Pt(3, -4)}
	for _, a := range pts {
		if a.Less(a) {
			t.Errorf("%v < %v", a, a)
		}
		for _, b := range pts {
			if a != b && a.Less(b) == b.Less(a) {
				t.Errorf("order not antisymmetric for %v,%v", a, b)
			}
		}
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a, b, c := Pt(int(ax), int(ay)), Pt(int(bx), int(by)), Pt(int(cx), int(cy))
		return L1Dist(a, c) <= L1Dist(a, b)+L1Dist(b, c) &&
			LinfDist(a, c) <= LinfDist(a, b)+LinfDist(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestNormRelationProperty(t *testing.T) {
	// L∞ ≤ L1 ≤ 2·L∞ on Z².
	f := func(x, y int16) bool {
		p := Pt(int(x), int(y))
		return p.Linf() <= p.L1() && p.L1() <= 2*p.Linf()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	p := Pt(2, 3)
	n4 := Neighbors4(p)
	if len(n4) != 4 {
		t.Fatalf("len = %d", len(n4))
	}
	for _, q := range n4 {
		if L1Dist(p, q) != 1 {
			t.Errorf("4-neighbor %v at distance %d", q, L1Dist(p, q))
		}
	}
	n8 := Neighbors8(p)
	seen := map[Point]bool{}
	for _, q := range n8 {
		if LinfDist(p, q) != 1 {
			t.Errorf("8-neighbor %v at L∞ distance %d", q, LinfDist(p, q))
		}
		if seen[q] {
			t.Errorf("duplicate neighbor %v", q)
		}
		seen[q] = true
	}
	if len(seen) != 8 {
		t.Errorf("distinct 8-neighbors = %d", len(seen))
	}
}

func TestAdjacency(t *testing.T) {
	if !Adjacent4(Pt(0, 0), Pt(1, 0)) || Adjacent4(Pt(0, 0), Pt(1, 1)) {
		t.Error("Adjacent4 wrong")
	}
	if !Adjacent8(Pt(0, 0), Pt(1, 1)) || Adjacent8(Pt(0, 0), Pt(2, 1)) {
		t.Error("Adjacent8 wrong")
	}
	if Adjacent4(Pt(0, 0), Pt(0, 0)) || Adjacent8(Pt(0, 0), Pt(0, 0)) {
		t.Error("self-adjacency")
	}
}
