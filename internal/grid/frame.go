package grid

// Frame is an element of the dihedral group D4: one of the eight
// rotations/reflections of the square lattice. The paper's robots have no
// compass, so every local rule must be checked "in a mirrored or rotated
// manner" (§3). The algorithm enumerates all eight frames and evaluates each
// pattern in each frame.
//
// A Frame maps pattern-local coordinates to world offsets:
//
//	world = X*ex + Y*ey
//
// where ex, ey are the images of the unit vectors under the symmetry.
type Frame struct {
	Ex, Ey Point
}

// Frames lists all eight elements of D4: four rotations followed by the four
// reflected rotations. The identity frame is Frames[0].
var Frames = [8]Frame{
	{Point{1, 0}, Point{0, 1}},   // identity
	{Point{0, 1}, Point{-1, 0}},  // rot 90° ccw
	{Point{-1, 0}, Point{0, -1}}, // rot 180°
	{Point{0, -1}, Point{1, 0}},  // rot 270°
	{Point{-1, 0}, Point{0, 1}},  // mirror x
	{Point{0, -1}, Point{-1, 0}}, // mirror x + rot 90
	{Point{1, 0}, Point{0, -1}},  // mirror x + rot 180 (mirror y)
	{Point{0, 1}, Point{1, 0}},   // mirror x + rot 270 (transpose)
}

// RotationFrames lists only the four pure rotations (used for patterns that
// are themselves mirror-symmetric, where enumerating reflections would test
// each configuration twice).
var RotationFrames = [4]Frame{Frames[0], Frames[1], Frames[2], Frames[3]}

// Apply maps a pattern-local offset to a world offset.
func (f Frame) Apply(p Point) Point {
	return Point{
		X: p.X*f.Ex.X + p.Y*f.Ey.X,
		Y: p.X*f.Ex.Y + p.Y*f.Ey.Y,
	}
}

// Compose returns the frame equivalent to applying g first, then f.
func (f Frame) Compose(g Frame) Frame {
	return Frame{Ex: f.Apply(g.Ex), Ey: f.Apply(g.Ey)}
}

// Det returns the determinant of the frame: +1 for rotations, -1 for
// reflections.
func (f Frame) Det() int {
	return f.Ex.X*f.Ey.Y - f.Ex.Y*f.Ey.X
}

// FrameFor returns a frame whose x-axis maps to dir (a unit axis vector) and
// whose y-axis maps to inside. dir and inside must be perpendicular axis
// unit vectors; it panics otherwise. It is used to orient run-operation
// patterns along a run's travel direction and inside direction.
func FrameFor(dir, inside Point) Frame {
	if !dir.IsUnit() || !inside.IsUnit() || dir.X*inside.X+dir.Y*inside.Y != 0 {
		panic("grid: FrameFor requires perpendicular unit vectors")
	}
	return Frame{Ex: dir, Ey: inside}
}
