package grid

import "testing"

func TestFramesAreDistinct(t *testing.T) {
	probe := []Point{Pt(1, 0), Pt(0, 1), Pt(2, 3)}
	seen := map[[3]Point]int{}
	for i, f := range Frames {
		var key [3]Point
		for j, p := range probe {
			key[j] = f.Apply(p)
		}
		if prev, ok := seen[key]; ok {
			t.Errorf("frames %d and %d coincide", prev, i)
		}
		seen[key] = i
	}
}

func TestFramesPreserveNorms(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 2), Pt(-3, 5), Pt(7, -7)}
	for i, f := range Frames {
		for _, p := range pts {
			q := f.Apply(p)
			if q.L1() != p.L1() || q.Linf() != p.Linf() {
				t.Errorf("frame %d does not preserve norms: %v -> %v", i, p, q)
			}
		}
	}
}

func TestFramesAreLinear(t *testing.T) {
	a, b := Pt(2, -1), Pt(-4, 3)
	for i, f := range Frames {
		if f.Apply(a.Add(b)) != f.Apply(a).Add(f.Apply(b)) {
			t.Errorf("frame %d not additive", i)
		}
		if f.Apply(a.Scale(3)) != f.Apply(a).Scale(3) {
			t.Errorf("frame %d not homogeneous", i)
		}
	}
}

func TestIdentityFrame(t *testing.T) {
	id := Frames[0]
	for _, p := range []Point{Pt(0, 0), Pt(5, -2)} {
		if id.Apply(p) != p {
			t.Errorf("identity moved %v", p)
		}
	}
}

func TestRotationDeterminants(t *testing.T) {
	for i, f := range RotationFrames {
		if f.Det() != 1 {
			t.Errorf("rotation frame %d has det %d", i, f.Det())
		}
	}
	reflections := 0
	for _, f := range Frames {
		if f.Det() == -1 {
			reflections++
		}
	}
	if reflections != 4 {
		t.Errorf("want 4 reflections, got %d", reflections)
	}
}

func TestComposeMatchesSequentialApplication(t *testing.T) {
	p := Pt(3, 1)
	for _, f := range Frames {
		for _, g := range Frames {
			if f.Compose(g).Apply(p) != f.Apply(g.Apply(p)) {
				t.Fatalf("compose mismatch")
			}
		}
	}
}

func TestGroupClosure(t *testing.T) {
	// D4 is closed under composition: every composition equals one of the
	// eight listed frames.
	for _, f := range Frames {
		for _, g := range Frames {
			c := f.Compose(g)
			found := false
			for _, h := range Frames {
				if c == h {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("composition %v not in Frames", c)
			}
		}
	}
}

func TestFrameFor(t *testing.T) {
	f := FrameFor(East, South)
	if f.Apply(Pt(1, 0)) != East || f.Apply(Pt(0, 1)) != South {
		t.Error("FrameFor mapped wrong axes")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-perpendicular axes")
		}
	}()
	FrameFor(East, East)
}
