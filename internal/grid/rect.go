package grid

import "fmt"

// Rect is a closed axis-aligned rectangle of grid cells: all (x, y) with
// MinX ≤ x ≤ MaxX and MinY ≤ y ≤ MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// EmptyRect is the canonical empty rectangle (Min > Max).
var EmptyRect = Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}

// RectOf returns the bounding rectangle (smallest enclosing rectangle) of the
// given points. For an empty input it returns EmptyRect.
func RectOf(pts []Point) Rect {
	if len(pts) == 0 {
		return EmptyRect
	}
	r := Rect{MinX: pts[0].X, MaxX: pts[0].X, MinY: pts[0].Y, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r = r.Include(p)
	}
	return r
}

// Include returns the smallest rectangle containing r and p.
func (r Rect) Include(p Point) Rect {
	if r.Empty() {
		return Rect{MinX: p.X, MaxX: p.X, MinY: p.Y, MaxY: p.Y}
	}
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// Empty reports whether the rectangle contains no cells.
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Contains reports whether p lies in r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the number of columns of r.
func (r Rect) Width() int {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX + 1
}

// Height returns the number of rows of r.
func (r Rect) Height() int {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY + 1
}

// Area returns the number of cells in r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// FitsIn2x2 reports whether the rectangle fits in a 2×2 square: the paper's
// gathering target ("locate all robots within a 2×2-sized area").
func (r Rect) FitsIn2x2() bool {
	return !r.Empty() && r.Width() <= 2 && r.Height() <= 2
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	if r.Empty() {
		return "Rect(empty)"
	}
	return fmt.Sprintf("Rect[%d..%d]x[%d..%d]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
