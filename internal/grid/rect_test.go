package grid

import "testing"

func TestRectOf(t *testing.T) {
	r := RectOf([]Point{Pt(1, 2), Pt(-3, 4), Pt(0, 0)})
	want := Rect{MinX: -3, MinY: 0, MaxX: 1, MaxY: 4}
	if r != want {
		t.Errorf("RectOf = %v, want %v", r, want)
	}
	if RectOf(nil) != EmptyRect {
		t.Error("RectOf(nil) not empty")
	}
}

func TestRectDimensions(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1}
	if r.Width() != 3 || r.Height() != 2 || r.Area() != 6 {
		t.Errorf("dims = %d x %d area %d", r.Width(), r.Height(), r.Area())
	}
	if EmptyRect.Width() != 0 || EmptyRect.Height() != 0 {
		t.Error("empty rect has nonzero dims")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(2, 2)) || !r.Contains(Pt(1, 1)) {
		t.Error("Contains false negative")
	}
	if r.Contains(Pt(3, 0)) || r.Contains(Pt(0, -1)) {
		t.Error("Contains false positive")
	}
}

func TestRectInclude(t *testing.T) {
	r := EmptyRect.Include(Pt(5, 5))
	if r.Width() != 1 || r.Height() != 1 || !r.Contains(Pt(5, 5)) {
		t.Errorf("Include into empty = %v", r)
	}
	r = r.Include(Pt(3, 7))
	if !r.Contains(Pt(3, 7)) || !r.Contains(Pt(5, 5)) || r.Area() != 3*3 {
		t.Errorf("Include = %v", r)
	}
}

func TestFitsIn2x2(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 0, 0}, true},
		{Rect{0, 0, 1, 1}, true},
		{Rect{0, 0, 1, 0}, true},
		{Rect{0, 0, 2, 1}, false},
		{Rect{0, 0, 0, 2}, false},
		{EmptyRect, false},
	}
	for _, c := range cases {
		if got := c.r.FitsIn2x2(); got != c.want {
			t.Errorf("FitsIn2x2(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}
