package grid

// Directions of the grid. The four axis directions define connectivity
// (horizontal/vertical neighbors); the eight king-move directions define the
// cells a robot may hop to in one round.
var (
	North = Point{0, 1}
	South = Point{0, -1}
	East  = Point{1, 0}
	West  = Point{-1, 0}

	NorthEast = Point{1, 1}
	NorthWest = Point{-1, 1}
	SouthEast = Point{1, -1}
	SouthWest = Point{-1, -1}

	// Zero is the stay-in-place "direction".
	Zero = Point{0, 0}
)

// Axis4 lists the four axis-aligned unit vectors (the connectivity
// neighborhood) in a fixed deterministic order: E, N, W, S.
var Axis4 = [4]Point{East, North, West, South}

// King8 lists the eight king-move unit vectors in counterclockwise order
// starting at East. A robot can move to any of these relative cells.
var King8 = [8]Point{East, NorthEast, North, NorthWest, West, SouthWest, South, SouthEast}

// Neighbors4 returns the four horizontally/vertically adjacent cells of p in
// the order of Axis4.
func Neighbors4(p Point) [4]Point {
	return [4]Point{p.Add(East), p.Add(North), p.Add(West), p.Add(South)}
}

// Neighbors8 returns the eight king-adjacent cells of p in the order of
// King8.
func Neighbors8(p Point) [8]Point {
	var out [8]Point
	for i, d := range King8 {
		out[i] = p.Add(d)
	}
	return out
}

// Adjacent4 reports whether p and q are horizontal or vertical neighbors,
// i.e. connected in the sense of the paper.
func Adjacent4(p, q Point) bool { return L1Dist(p, q) == 1 }

// Adjacent8 reports whether p and q are king-move neighbors.
func Adjacent8(p, q Point) bool { d := p.Sub(q); return d.Linf() == 1 }
