// Package grid provides the integer-lattice geometry substrate used by the
// gathering algorithm: points, distances, neighborhoods, the dihedral
// symmetry group of the square, and axis-aligned rectangles.
//
// The paper's robots live on Z², are connected through horizontal and
// vertical adjacency, and may move to any of their eight neighboring cells.
// All of those notions are defined here.
package grid

import "fmt"

// Point is a cell of the two-dimensional grid Z².
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Neg returns -p.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k int) Point { return Point{p.X * k, p.Y * k} }

// L1 returns the Manhattan (L1) norm of p. The paper measures the viewing
// radius in L1 distance.
func (p Point) L1() int { return abs(p.X) + abs(p.Y) }

// Linf returns the Chebyshev (L∞) norm of p. One robot movement step changes
// the position by at most 1 in L∞ (horizontal, vertical or diagonal hop).
func (p Point) Linf() int { return max(abs(p.X), abs(p.Y)) }

// L1Dist returns the Manhattan distance between p and q.
func L1Dist(p, q Point) int { return p.Sub(q).L1() }

// LinfDist returns the Chebyshev distance between p and q.
func LinfDist(p, q Point) int { return p.Sub(q).Linf() }

// IsUnit reports whether p is one of the four axis unit vectors.
func (p Point) IsUnit() bool { return p.L1() == 1 }

// IsDiagonalUnit reports whether p is one of the four diagonal unit vectors.
func (p Point) IsDiagonalUnit() bool { return abs(p.X) == 1 && abs(p.Y) == 1 }

// PerpCW returns p rotated 90° clockwise (in standard orientation: x right,
// y up, clockwise means (0,1) -> (1,0)).
func (p Point) PerpCW() Point { return Point{p.Y, -p.X} }

// PerpCCW returns p rotated 90° counterclockwise.
func (p Point) PerpCCW() Point { return Point{-p.Y, p.X} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Less orders points lexicographically by (Y, X). It gives the deterministic
// tie-breaking order used by the simulator when it must pick a survivor among
// indistinguishable robots.
func (p Point) Less(q Point) bool {
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.X < q.X
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Sign returns the componentwise sign vector of p.
func (p Point) Sign() Point {
	return Point{sign(p.X), sign(p.Y)}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}
