package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-2) > 1e-9 || math.Abs(b-1) > 1e-9 {
		t.Errorf("fit = %f x + %f", a, b)
	}
	if math.Abs(r2-1) > 1e-9 {
		t.Errorf("r2 = %f", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, _, _ := LinearFit([]float64{1}, []float64{1})
	if !math.IsNaN(a) {
		t.Error("single point fit should be NaN")
	}
	a, _, _ = LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !math.IsNaN(a) {
		t.Error("vertical data fit should be NaN")
	}
}

func TestPowerFitRecoversExponents(t *testing.T) {
	for _, exp := range []float64{1.0, 2.0, 0.5} {
		var x, y []float64
		for n := 4; n <= 256; n *= 2 {
			x = append(x, float64(n))
			y = append(y, 3*math.Pow(float64(n), exp))
		}
		e, c, r2 := PowerFit(x, y)
		if math.Abs(e-exp) > 1e-6 {
			t.Errorf("exponent = %f, want %f", e, exp)
		}
		if math.Abs(c-3) > 1e-6 {
			t.Errorf("coefficient = %f, want 3", c)
		}
		if r2 < 0.999 {
			t.Errorf("r2 = %f", r2)
		}
	}
}

func TestPowerFitSkipsNonPositive(t *testing.T) {
	e, _, _ := PowerFit([]float64{0, 2, 4, 8}, []float64{5, 2, 4, 8})
	if math.IsNaN(e) {
		t.Error("should fit on remaining positive points")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(2, 4)
	s.Append(4, 16)
	s.Append(8, 64)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if e := s.Exponent(); math.Abs(e-2) > 1e-9 {
		t.Errorf("exponent = %f", e)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"n", "rounds"}}
	tab.AddRowf(16, 35)
	tab.AddRowf(32, 71.5)
	out := tab.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "71.50") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Min != 2 || s.Max != 6 || math.Abs(s.Mean-4) > 1e-9 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Errorf("std = %f", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{40, 10, 20, 30} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {90, 37},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if xs[0] != 40 {
		t.Error("input was modified")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty sample should be NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton percentile = %v", got)
	}
}
