// Package metrics provides the measurement tooling of the experiment
// harness: scaling series, least-squares fits (linear and power-law) used
// to estimate round-complexity exponents, and plain-text table rendering
// for the regenerated experiment outputs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a sequence of (x, y) measurements, e.g. swarm size vs rounds.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one measurement.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of measurements.
func (s *Series) Len() int { return len(s.X) }

// LinearFit fits y = a·x + b by least squares and returns a, b and the
// coefficient of determination R².
func LinearFit(x, y []float64) (a, b, r2 float64) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	// R² = 1 - SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := a*x[i] + b
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	if ssTot < 1e-12 {
		return a, b, 1
	}
	return a, b, 1 - ssRes/ssTot
}

// PowerFit fits y = c·x^e via a linear fit in log-log space and returns the
// exponent e, the coefficient c and R² of the log-log fit. It is the tool
// the experiments use to distinguish O(n) (e ≈ 1) from O(n²) (e ≈ 2)
// round-complexity growth. Points with non-positive coordinates are
// skipped.
func PowerFit(x, y []float64) (e, c, r2 float64) {
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	a, b, r := LinearFit(lx, ly)
	return a, math.Exp(b), r
}

// Exponent is shorthand for the PowerFit exponent of a series.
func (s *Series) Exponent() float64 {
	e, _, _ := PowerFit(s.X, s.Y)
	return e
}

// Table renders rows of columns as an aligned plain-text table with a
// header row, in the style of the experiment outputs in EXPERIMENTS.md.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row applying fmt.Sprint to each value.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the sample using
// linear interpolation between closest ranks, the method the sweep
// aggregates use for their p50/p90/p99 columns. It returns NaN for an empty
// sample. The input is not modified. Callers needing several percentiles of
// one sample should sort once and use PercentileSorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted sample,
// avoiding the per-call copy and sort.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds simple descriptive statistics.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Std float64
}

// Summarize computes descriptive statistics of a sample.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, v := range xs {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range xs {
		ss += (v - s.Mean) * (v - s.Mean)
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
