// Package perf measures the engine's per-round cost per workload and
// worker count, and serializes the results as the repository's benchmark
// JSON (BENCH_engine.json at the repo root is the committed baseline;
// cmd/gatherbench -bench-json regenerates it, and CI's -bench-guard step
// fails if the parallel pipeline falls behind the serial path).
//
// The harness times Engine.Step directly — warmed-up, fixed round counts,
// allocation deltas from runtime.MemStats — instead of going through `go
// test -bench`, so CLI callers control the measurement budget and the
// emitted JSON is stable across tooling.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/swarm"
	"gridgather/internal/world"
)

// Entry is one measured (workload, n, workers) cell.
type Entry struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Workers  int    `json:"workers"`
	// Conn marks connectivity-check microbench entries ("incr" or "bfs"):
	// NsPerRound is then the cost of one sparse-movement round — a single
	// ad-hoc robot hop plus one Connected query — under that connectivity
	// mode, with no engine attached. Empty for engine Step entries. The
	// regression guard ignores conn entries.
	Conn string `json:"conn,omitempty"`
	// Quiesce tags engine Step entries measured under an explicit
	// quiescence mode ("on" = the dirty-region fast path, "off" =
	// Config.FullRecompute). Empty when the run did not sweep the quiesce
	// axis (entries then measure the engine default, which is "on"). The
	// regression guard compares worker counts within one mode only.
	Quiesce string `json:"quiesce,omitempty"`
	// NsPerRound is the mean wall-clock cost of one Engine.Step.
	NsPerRound float64 `json:"ns_per_round"`
	// BytesPerRound and AllocsPerRound are heap-allocation deltas per
	// round (runtime.MemStats, so they include everything the round
	// touches).
	BytesPerRound  float64 `json:"bytes_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	// GatherRounds is the number of rounds a full simulation of this
	// workload takes at this n (worker-independent — the pipeline is
	// proven bit-identical across worker counts). 0 when the gather pass
	// was skipped.
	GatherRounds int `json:"gather_rounds,omitempty"`
}

// Report is the bench JSON document.
type Report struct {
	// Note records the measurement configuration for human readers.
	Note    string  `json:"note,omitempty"`
	Entries []Entry `json:"entries"`
}

// Config controls a measurement run.
type Config struct {
	// N is the approximate robot count per workload (default 2048).
	N int
	// Ns, when non-empty, measures every workload at each of these robot
	// counts instead of the single N — the scaling grid (e.g. 2^14, 2^17,
	// 2^20).
	Ns []int
	// Workloads are seeded-catalog family names (default hollow, solid,
	// line, blob — the acceptance workloads).
	Workloads []string
	// Workers values to measure (default 1 — the serial round cost).
	Workers []int
	// WarmupRounds and MeasureRounds bound the per-cell cost (defaults
	// 30 and 150).
	WarmupRounds, MeasureRounds int
	// Repeats measures every cell this many times and keeps the fastest
	// (default 1). The minimum is the standard noise filter for wall-clock
	// benches: interference only ever slows a run down, so the fastest
	// repeat is the closest estimate of the true cost — and what lets the
	// regression guard hold a tight tolerance on shared machines.
	Repeats int
	// Gather also runs one full simulation per workload to record
	// GatherRounds (skipped in quick CI runs).
	Gather bool
	// ConnCheck adds the connectivity microbench entries per (workload,
	// n): the cost of a sparse-movement round — one robot hop plus one
	// Connected query — under the incremental layer ("incr") and the full
	// scratch BFS ("bfs"). The ratio is the headline of the incremental
	// connectivity layer.
	ConnCheck bool
	// Quiesce measures every engine Step cell twice — quiescence fast path
	// ("on") versus full recomputation ("off", fsync.Config.FullRecompute)
	// — tagging the entries accordingly. The on/off ratio is the headline
	// of the quiescence layer.
	Quiesce bool
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 2048
	}
	if len(c.Ns) == 0 {
		c.Ns = []int{c.N}
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"hollow", "solid", "line", "blob"}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
	}
	if c.WarmupRounds <= 0 {
		c.WarmupRounds = 30
	}
	if c.MeasureRounds <= 0 {
		c.MeasureRounds = 150
	}
	return c
}

// build returns the named seeded-catalog workload at size n.
func build(name string, n int) (*swarm.Swarm, error) {
	for _, w := range gen.SeededCatalog() {
		if w.Name == name {
			return w.Build(n, 42), nil
		}
	}
	return nil, fmt.Errorf("perf: unknown workload %q", name)
}

// measureBest returns the fastest of repeats calls to one (keeping that
// repeat's allocation figures too).
func measureBest(repeats int, one func() (Entry, error)) (Entry, error) {
	best, err := one()
	if err != nil {
		return Entry{}, err
	}
	for i := 1; i < repeats; i++ {
		e, err := one()
		if err != nil {
			return Entry{}, err
		}
		if e.NsPerRound < best.NsPerRound {
			best = e
		}
	}
	return best, nil
}

// measureConn times sparse-movement connectivity rounds over the swarm's
// world without an engine: each round removes or re-adds one robot (the
// canonical-order corner — an O(1) mutation that dirties exactly one
// chunk) and runs one Connected query under the chosen mode. This isolates
// what the incremental layer replaces: the per-round connectivity check
// cost on rounds where almost nothing moved.
func measureConn(s *swarm.Swarm, fullBFS bool, warmup, rounds int) (Entry, error) {
	d := world.NewDense(s, false)
	d.ForceFullBFS(fullBFS)
	p := d.Cells()[0]
	i := 0
	round := func() {
		if i++; i%2 == 1 {
			d.Remove(p)
		} else {
			d.Add(p)
		}
		d.Connected()
	}
	for j := 0; j < warmup; j++ {
		round()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for j := 0; j < rounds; j++ {
		round()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	mode := "incr"
	if fullBFS {
		mode = "bfs"
	}
	return Entry{
		N:              s.Len(),
		Workers:        1,
		Conn:           mode,
		NsPerRound:     float64(elapsed.Nanoseconds()) / float64(rounds),
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(rounds),
	}, nil
}

// measure times MeasureRounds engine steps after warmup, restarting the
// simulation if it gathers mid-measurement (it does not at bench sizes).
func measure(s *swarm.Swarm, workers, warmup, rounds int, fullRecompute bool) (Entry, error) {
	cfg := fsync.Config{Workers: workers, FullRecompute: fullRecompute}
	eng := fsync.New(s, core.Default(), cfg)
	step := func() error {
		if eng.Gathered() {
			eng = fsync.New(s, core.Default(), cfg)
		}
		return eng.Step()
	}
	for i := 0; i < warmup; i++ {
		if err := step(); err != nil {
			return Entry{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := step(); err != nil {
			return Entry{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Entry{
		N:              s.Len(),
		Workers:        workers,
		NsPerRound:     float64(elapsed.Nanoseconds()) / float64(rounds),
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(rounds),
	}, nil
}

// Run measures every (workload, n, workers) cell of the config, plus the
// connectivity microbench pair per (workload, n) when ConnCheck is set.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Note: fmt.Sprintf(
		"engine Step cost: n≈%v, %d measured rounds after %d warmup, best of %d, GOMAXPROCS=%d",
		cfg.Ns, cfg.MeasureRounds, cfg.WarmupRounds, cfg.Repeats, runtime.GOMAXPROCS(0))}
	for _, n := range cfg.Ns {
		for _, name := range cfg.Workloads {
			s, err := build(name, n)
			if err != nil {
				return Report{}, err
			}
			gatherRounds := 0
			if cfg.Gather {
				eng := fsync.New(s, core.Default(), fsync.Config{
					MaxRounds: fsync.DefaultBudget(s.Len()).MaxRounds,
				})
				res := eng.Run()
				if res.Err != nil || !res.Gathered {
					return Report{}, fmt.Errorf("perf: %s gather run failed: %+v", name, res)
				}
				gatherRounds = res.Rounds
			}
			// Without the quiesce axis, one untagged entry per worker count
			// measures the engine default (the quiescence fast path); with
			// it, a tagged on/off pair measures the fast path against
			// pinned full recomputation.
			modes := []string{""}
			if cfg.Quiesce {
				modes = []string{"on", "off"}
			}
			for _, workers := range cfg.Workers {
				for _, mode := range modes {
					e, err := measureBest(cfg.Repeats, func() (Entry, error) {
						return measure(s, workers, cfg.WarmupRounds, cfg.MeasureRounds, mode == "off")
					})
					if err != nil {
						return Report{}, fmt.Errorf("perf: %s/n=%d/workers=%d: %w", name, n, workers, err)
					}
					e.Workload = name
					e.Quiesce = mode
					e.GatherRounds = gatherRounds
					rep.Entries = append(rep.Entries, e)
				}
			}
			if cfg.ConnCheck {
				for _, fullBFS := range []bool{false, true} {
					e, err := measureBest(cfg.Repeats, func() (Entry, error) {
						return measureConn(s, fullBFS, cfg.WarmupRounds, cfg.MeasureRounds)
					})
					if err != nil {
						return Report{}, fmt.Errorf("perf: %s/n=%d/conn: %w", name, n, err)
					}
					e.Workload = name
					rep.Entries = append(rep.Entries, e)
				}
			}
		}
	}
	return rep, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func WriteJSON(rep Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteTable renders the report for terminals.
func WriteTable(w io.Writer, rep Report) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tn\tworkers\tconn\tquiesce\tms/round\tKB/round\tallocs/round\tgather rounds")
	for _, e := range rep.Entries {
		gather := ""
		if e.GatherRounds > 0 {
			gather = fmt.Sprintf("%d", e.GatherRounds)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%.4f\t%.1f\t%.1f\t%s\n",
			e.Workload, e.N, e.Workers, e.Conn, e.Quiesce,
			e.NsPerRound/1e6, e.BytesPerRound/1024, e.AllocsPerRound, gather)
	}
	return tw.Flush()
}

// GuardTolerance is the noise margin of Guard: a parallel run fails the
// bar only when it measures slower than the serial path by more than this
// factor. The persistent worker pool plus the adaptive serial-resolve
// probe cap the genuine overhead of workers>1 on a single-CPU box at a few
// percent, and best-of-Repeats measurement (see Config.Repeats) filters
// the scheduling noise, so the bar can sit tight: anything past 5% is a
// real regression (a pipeline that re-spawns goroutines or fans out
// unprofitable rounds shows up well past it).
const GuardTolerance = 1.05

// Guard enforces the CI regression bar: for every (workload, n, quiesce
// mode) measured at several worker counts, the parallel pipeline must not
// be slower than the serial path beyond GuardTolerance. Cells are keyed on
// the quiesce tag too, so a quiesce-axis run guards both modes without
// ever comparing the fast path against full recomputation.
//
// The bar is relative for full-cost cells and ABSOLUTE for quiesce-on
// cells measured alongside their "off" twin: quiescence shrinks the round
// several-fold but the sharding overhead it tolerates — classify, lane
// bookkeeping, the k-way commit merge still touch every robot — does not
// shrink with it, so a quiesce-on parallel cell is allowed the same
// absolute overhead budget its full-recompute twin gets
// ((GuardTolerance−1) × the off-mode serial cost), not 5% of its own much
// smaller round. Connectivity microbench entries are not guarded — they
// compare modes, not worker counts.
func Guard(rep Report) error {
	type cell struct {
		workload string
		n        int
		quiesce  string
	}
	serialNs := map[cell]float64{}
	for _, e := range rep.Entries {
		if e.Workers == 1 && e.Conn == "" {
			serialNs[cell{e.Workload, e.N, e.Quiesce}] = e.NsPerRound
		}
	}
	for _, e := range rep.Entries {
		if e.Workers == 1 || e.Conn != "" {
			continue
		}
		ref, ok := serialNs[cell{e.Workload, e.N, e.Quiesce}]
		if !ok {
			continue
		}
		allowed := ref * GuardTolerance
		if e.Quiesce == "on" {
			if full, ok := serialNs[cell{e.Workload, e.N, "off"}]; ok {
				allowed = ref + (GuardTolerance-1)*full
			}
		}
		if e.NsPerRound > allowed {
			return fmt.Errorf("perf: parallel pipeline slower than serial on %s (n=%d, workers=%d, quiesce=%q): %.0fns vs %.0fns per round (allowed %.0fns)",
				e.Workload, e.N, e.Workers, e.Quiesce, e.NsPerRound, ref, allowed)
		}
	}
	return nil
}
