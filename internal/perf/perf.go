// Package perf measures the engine's per-round cost per workload and
// world backend, and serializes the results as the repository's benchmark
// JSON (BENCH_engine.json at the repo root is the committed baseline;
// cmd/gatherbench -bench-json regenerates it, and CI's -bench-guard step
// fails if the dense backend falls behind the map oracle).
//
// The harness times Engine.Step directly — warmed-up, fixed round counts,
// allocation deltas from runtime.MemStats — instead of going through `go
// test -bench`, so CLI callers control the measurement budget and the
// emitted JSON is stable across tooling.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/swarm"
	"gridgather/internal/world"
)

// Entry is one measured (workload, backend, workers) cell.
type Entry struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Backend  string `json:"backend"`
	Workers  int    `json:"workers"`
	// NsPerRound is the mean wall-clock cost of one Engine.Step.
	NsPerRound float64 `json:"ns_per_round"`
	// BytesPerRound and AllocsPerRound are heap-allocation deltas per
	// round (runtime.MemStats, so they include everything the round
	// touches).
	BytesPerRound  float64 `json:"bytes_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	// GatherRounds is the number of rounds a full simulation of this
	// workload takes at this n (backend-independent — the backends are
	// proven bit-identical). 0 when the gather pass was skipped.
	GatherRounds int `json:"gather_rounds,omitempty"`
}

// Report is the bench JSON document.
type Report struct {
	// Note records the measurement configuration for human readers.
	Note    string  `json:"note,omitempty"`
	Entries []Entry `json:"entries"`
}

// Config controls a measurement run.
type Config struct {
	// N is the approximate robot count per workload (default 2048).
	N int
	// Workloads are seeded-catalog family names (default hollow, solid,
	// line, blob — the acceptance workloads).
	Workloads []string
	// Backends to measure (default dense and map).
	Backends []world.Kind
	// Workers values to measure (default 1 — the serial round cost).
	Workers []int
	// WarmupRounds and MeasureRounds bound the per-cell cost (defaults
	// 30 and 150).
	WarmupRounds, MeasureRounds int
	// Gather also runs one full simulation per workload to record
	// GatherRounds (skipped in quick CI runs).
	Gather bool
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 2048
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"hollow", "solid", "line", "blob"}
	}
	if len(c.Backends) == 0 {
		c.Backends = []world.Kind{world.DenseKind, world.MapKind}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
	}
	if c.WarmupRounds <= 0 {
		c.WarmupRounds = 30
	}
	if c.MeasureRounds <= 0 {
		c.MeasureRounds = 150
	}
	return c
}

// build returns the named seeded-catalog workload at size n.
func build(name string, n int) (*swarm.Swarm, error) {
	for _, w := range gen.SeededCatalog() {
		if w.Name == name {
			return w.Build(n, 42), nil
		}
	}
	return nil, fmt.Errorf("perf: unknown workload %q", name)
}

// measure times MeasureRounds engine steps after warmup, restarting the
// simulation if it gathers mid-measurement (it does not at bench sizes).
func measure(s *swarm.Swarm, kind world.Kind, workers, warmup, rounds int) (Entry, error) {
	cfg := fsync.Config{Workers: workers, Backend: kind}
	eng := fsync.New(s, core.Default(), cfg)
	step := func() error {
		if eng.Gathered() {
			eng = fsync.New(s, core.Default(), cfg)
		}
		return eng.Step()
	}
	for i := 0; i < warmup; i++ {
		if err := step(); err != nil {
			return Entry{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := step(); err != nil {
			return Entry{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Entry{
		N:              s.Len(),
		Backend:        kind.String(),
		Workers:        workers,
		NsPerRound:     float64(elapsed.Nanoseconds()) / float64(rounds),
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(rounds),
	}, nil
}

// Run measures every (workload, backend, workers) cell of the config.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Note: fmt.Sprintf(
		"engine Step cost: n≈%d, %d measured rounds after %d warmup, GOMAXPROCS=%d",
		cfg.N, cfg.MeasureRounds, cfg.WarmupRounds, runtime.GOMAXPROCS(0))}
	for _, name := range cfg.Workloads {
		s, err := build(name, cfg.N)
		if err != nil {
			return Report{}, err
		}
		gatherRounds := 0
		if cfg.Gather {
			eng := fsync.New(s, core.Default(), fsync.Config{
				MaxRounds: fsync.DefaultBudget(s.Len()).MaxRounds,
			})
			res := eng.Run()
			if res.Err != nil || !res.Gathered {
				return Report{}, fmt.Errorf("perf: %s gather run failed: %+v", name, res)
			}
			gatherRounds = res.Rounds
		}
		for _, kind := range cfg.Backends {
			for _, workers := range cfg.Workers {
				e, err := measure(s, kind, workers, cfg.WarmupRounds, cfg.MeasureRounds)
				if err != nil {
					return Report{}, fmt.Errorf("perf: %s/%s: %w", name, kind, err)
				}
				e.Workload = name
				e.GatherRounds = gatherRounds
				rep.Entries = append(rep.Entries, e)
			}
		}
	}
	return rep, nil
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func WriteJSON(rep Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteTable renders the report for terminals.
func WriteTable(w io.Writer, rep Report) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tn\tbackend\tworkers\tms/round\tKB/round\tallocs/round\tgather rounds")
	for _, e := range rep.Entries {
		gather := ""
		if e.GatherRounds > 0 {
			gather = fmt.Sprintf("%d", e.GatherRounds)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.3f\t%.1f\t%.1f\t%s\n",
			e.Workload, e.N, e.Backend, e.Workers,
			e.NsPerRound/1e6, e.BytesPerRound/1024, e.AllocsPerRound, gather)
	}
	return tw.Flush()
}

// GuardTolerance is the noise margin of Guard: the dense backend fails
// the bar only when it measures slower than the map oracle by more than
// this factor. The real ratio is ~6x the other way, so the margin only
// absorbs GC pauses and noisy CI neighbors in the short measurement
// windows, not genuine regressions.
const GuardTolerance = 1.25

// Guard enforces the CI regression bar: for every (workload, workers)
// pair measured on both backends, the dense backend must not be slower
// than the map oracle (beyond GuardTolerance).
func Guard(rep Report) error {
	type key struct {
		workload string
		workers  int
	}
	mapNs := map[key]float64{}
	for _, e := range rep.Entries {
		if e.Backend == world.MapKind.String() {
			mapNs[key{e.Workload, e.Workers}] = e.NsPerRound
		}
	}
	for _, e := range rep.Entries {
		if e.Backend != world.DenseKind.String() {
			continue
		}
		ref, ok := mapNs[key{e.Workload, e.Workers}]
		if !ok {
			continue
		}
		if e.NsPerRound > ref*GuardTolerance {
			return fmt.Errorf("perf: dense backend slower than map on %s (workers=%d): %.0fns vs %.0fns per round",
				e.Workload, e.Workers, e.NsPerRound, ref)
		}
	}
	return nil
}
