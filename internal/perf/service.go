package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// ServiceReport is the gatherd service benchmark JSON (BENCH_service.json
// at the repo root is the committed baseline; cmd/gatherload -out
// regenerates it, and CI's service smoke step runs ServiceGuard over the
// fresh measurement before uploading it).
type ServiceReport struct {
	// Note records the measurement configuration for human readers.
	Note string `json:"note,omitempty"`
	// DurationSeconds is the measured wall-clock window.
	DurationSeconds float64 `json:"duration_seconds"`
	// Sessions is the number of sessions created during the window;
	// SessionsPerSec the resulting arrival throughput.
	Sessions       int     `json:"sessions"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// Latency percentiles, in milliseconds, per operation class. Restore
	// is the latency of the first step after an explicit eviction — the
	// spill-to-disk round trip the LRU pool adds to a cold touch.
	CreateP50Ms   float64 `json:"create_p50_ms"`
	CreateP99Ms   float64 `json:"create_p99_ms"`
	StepP50Ms     float64 `json:"step_p50_ms"`
	StepP99Ms     float64 `json:"step_p99_ms"`
	SnapshotP50Ms float64 `json:"snapshot_p50_ms"`
	SnapshotP99Ms float64 `json:"snapshot_p99_ms"`
	EvictP50Ms    float64 `json:"evict_p50_ms"`
	EvictP99Ms    float64 `json:"evict_p99_ms"`
	RestoreP50Ms  float64 `json:"restore_p50_ms"`
	RestoreP99Ms  float64 `json:"restore_p99_ms"`
	// Pool accounting at the end of the window, from /v1/stats.
	MaxResidentCap      int    `json:"max_resident_cap"`
	MaxResidentObserved int    `json:"max_resident_observed"`
	Evictions           uint64 `json:"evictions"`
	Restores            uint64 `json:"restores"`
	EventsStreamed      uint64 `json:"events_streamed"`
	BytesOut            uint64 `json:"bytes_out"`
	// Errors counts unexpected responses (backpressure 429/503 replies are
	// expected under load and not errors).
	Errors int `json:"errors"`
}

// WriteServiceJSON writes the service report as the committed benchmark
// format.
func WriteServiceJSON(rep ServiceReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadServiceJSON loads a committed service report.
func ReadServiceJSON(path string) (ServiceReport, error) {
	var rep ServiceReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// ServiceGuard is the service health bar the CI smoke step enforces on a
// fresh measurement: the run completed without protocol errors, sessions
// actually flowed, the resident cap held, and eviction earned its keep
// (sessions spilled and came back). It deliberately puts no bar on
// absolute latency — CI boxes vary too much — only on correctness-shaped
// facts the daemon controls.
func ServiceGuard(rep ServiceReport) error {
	if rep.Errors > 0 {
		return fmt.Errorf("perf: service run saw %d protocol errors", rep.Errors)
	}
	if rep.Sessions <= 0 || rep.SessionsPerSec <= 0 {
		return fmt.Errorf("perf: service run created no sessions (%d in %.1fs)", rep.Sessions, rep.DurationSeconds)
	}
	if rep.MaxResidentCap > 0 && rep.MaxResidentObserved > rep.MaxResidentCap {
		return fmt.Errorf("perf: resident sessions peaked at %d, over the cap %d", rep.MaxResidentObserved, rep.MaxResidentCap)
	}
	if rep.Evictions == 0 || rep.Restores == 0 {
		return fmt.Errorf("perf: service run never exercised spill/restore (evictions=%d restores=%d) — raise the load or lower the cap", rep.Evictions, rep.Restores)
	}
	if rep.StepP99Ms <= 0 || rep.RestoreP99Ms <= 0 {
		return fmt.Errorf("perf: missing latency samples (step p99 %.3fms, restore p99 %.3fms)", rep.StepP99Ms, rep.RestoreP99Ms)
	}
	return nil
}
