// Package gen generates the workload swarms for the experiments: the
// regular shapes the paper's figures use (lines, plateaus on supports,
// hollow rectangles, staircases, spirals, combs) plus randomized connected
// swarms for corpus/fuzz testing. Every generator returns a connected swarm
// and is deterministic given its parameters (random generators take an
// explicit seed).
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// Line returns a horizontal line of n robots — the diameter worst case
// behind the Ω(n) lower bound.
func Line(n int) *swarm.Swarm {
	s := swarm.New()
	for i := 0; i < n; i++ {
		s.Add(grid.Pt(i, 0))
	}
	return s
}

// VLine returns a vertical line of n robots.
func VLine(n int) *swarm.Swarm {
	s := swarm.New()
	for i := 0; i < n; i++ {
		s.Add(grid.Pt(0, i))
	}
	return s
}

// Solid returns a filled w×h rectangle.
func Solid(w, h int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			s.Add(grid.Pt(x, y))
		}
	}
	return s
}

// Hollow returns a w×h rectangle ring of wall thickness 1 — the canonical
// mergeless swarm whose long walls only runs can shorten.
func Hollow(w, h int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x == 0 || y == 0 || x == w-1 || y == h-1 {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

// Staircase returns a staircase of n robots with the given step size
// (Fig. 16's stairways use step 1).
func Staircase(n, step int) *swarm.Swarm {
	if step < 1 {
		step = 1
	}
	s := swarm.New()
	x, y := 0, 0
	horiz := true
	placed := 1
	s.Add(grid.Pt(0, 0))
	run := 0
	for placed < n {
		if horiz {
			x++
		} else {
			y++
		}
		run++
		if run >= step {
			horiz = !horiz
			run = 0
		}
		s.Add(grid.Pt(x, y))
		placed++
	}
	return s
}

// Plus returns a plus/cross of four arms of the given length.
func Plus(arm int) *swarm.Swarm {
	s := swarm.New(grid.Pt(0, 0))
	for i := 1; i <= arm; i++ {
		s.Add(grid.Pt(i, 0))
		s.Add(grid.Pt(-i, 0))
		s.Add(grid.Pt(0, i))
		s.Add(grid.Pt(0, -i))
	}
	return s
}

// Comb returns a spine of length w with upward teeth of the given height
// every other column.
func Comb(w, tooth int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < w; x++ {
		s.Add(grid.Pt(x, 0))
		if x%2 == 0 {
			for y := 1; y <= tooth; y++ {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

// Spiral returns a rectangular inward spiral with the given number of arms
// of decreasing length, wall gap 2 (so arms don't touch).
func Spiral(size int) *swarm.Swarm {
	s := swarm.New()
	x, y := 0, 0
	dir := grid.East
	length := size
	s.Add(grid.Pt(x, y))
	for length > 2 {
		for i := 0; i < length; i++ {
			x += dir.X
			y += dir.Y
			s.Add(grid.Pt(x, y))
		}
		dir = dir.PerpCW()
		if dir == grid.North || dir == grid.South {
			length -= 3
		}
	}
	return s
}

// Table returns the Fig. 4 scenario: a long top plateau of width w standing
// on two vertical legs of the given height at its ends — the subboundary
// that is too long to merge and needs runners to shrink.
func Table(w, leg int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < w; x++ {
		s.Add(grid.Pt(x, leg))
	}
	for y := 0; y < leg; y++ {
		s.Add(grid.Pt(0, y))
		s.Add(grid.Pt(w-1, y))
	}
	return s
}

// HShape returns two vertical bars of the given height bridged in the
// middle by a horizontal bar of the given width.
func HShape(h, bridge int) *swarm.Swarm {
	s := swarm.New()
	for y := 0; y < h; y++ {
		s.Add(grid.Pt(0, y))
		s.Add(grid.Pt(bridge+1, y))
	}
	mid := h / 2
	for x := 1; x <= bridge; x++ {
		s.Add(grid.Pt(x, mid))
	}
	return s
}

// Diamond returns a solid diamond (L1 ball) of the given radius.
func Diamond(r int) *swarm.Swarm {
	s := swarm.New()
	for x := -r; x <= r; x++ {
		for y := -r; y <= r; y++ {
			if grid.Pt(x, y).L1() <= r {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

// RandomTree grows a random connected swarm of n robots by attaching each
// new robot 4-adjacent to a uniformly chosen existing robot (a random
// "diffusion" tree — thin, twisty shapes with many tips).
func RandomTree(n int, seed int64) *swarm.Swarm {
	rng := rand.New(rand.NewSource(seed))
	s := swarm.New(grid.Pt(0, 0))
	cells := []grid.Point{grid.Pt(0, 0)}
	for s.Len() < n {
		base := cells[rng.Intn(len(cells))]
		d := grid.Axis4[rng.Intn(4)]
		q := base.Add(d)
		if !s.Has(q) {
			s.Add(q)
			cells = append(cells, q)
		}
	}
	return s
}

// RandomBlob grows a random connected swarm of n robots preferring cells
// with more occupied neighbors (compact, blobby shapes with occasional
// holes).
func RandomBlob(n int, seed int64) *swarm.Swarm {
	rng := rand.New(rand.NewSource(seed))
	s := swarm.New(grid.Pt(0, 0))
	frontier := map[grid.Point]struct{}{}
	addFrontier := func(p grid.Point) {
		for _, q := range grid.Neighbors4(p) {
			if !s.Has(q) {
				frontier[q] = struct{}{}
			}
		}
	}
	addFrontier(grid.Pt(0, 0))
	var keys []grid.Point
	for s.Len() < n {
		// Weighted pick: probability proportional to occupied neighbors².
		// Iterate the frontier in sorted order so the generator is
		// deterministic for a fixed seed (map order is randomized).
		keys = keys[:0]
		for q := range frontier {
			keys = append(keys, q)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		var best grid.Point
		bestScore := -1.0
		for _, q := range keys {
			deg := 0
			for _, r := range grid.Neighbors4(q) {
				if s.Has(r) {
					deg++
				}
			}
			score := float64(deg*deg) * (0.25 + rng.Float64())
			if score > bestScore {
				bestScore = score
				best = q
			}
		}
		s.Add(best)
		delete(frontier, best)
		addFrontier(best)
	}
	return s
}

// RandomWalk grows a connected swarm of n robots along a self-avoiding-ish
// random walk (long snaky shapes).
func RandomWalk(n int, seed int64) *swarm.Swarm {
	rng := rand.New(rand.NewSource(seed))
	s := swarm.New(grid.Pt(0, 0))
	cur := grid.Pt(0, 0)
	stall := 0
	for s.Len() < n {
		d := grid.Axis4[rng.Intn(4)]
		q := cur.Add(d)
		if s.Has(q) {
			cur = q // slide along the existing body
			stall++
			if stall > 64 {
				// Restart from a random existing cell to avoid dead ends.
				cells := s.Cells()
				cur = cells[rng.Intn(len(cells))]
				stall = 0
			}
			continue
		}
		s.Add(q)
		cur = q
		stall = 0
	}
	return s
}

// RandomClusters grows k compact random blobs joined by random monotone
// lattice paths — the "several dense villages, thin roads" shape that
// stresses both merge-rich regions and long mergeless corridors in one
// instance. Centers are spread on a deterministic jittered ring so the
// paths have real length at every n; the blobs are then grown round-robin
// (random attach, RandomTree-style) until the swarm holds exactly n robots
// (or the paths alone already exceed n, for tiny n). The result is
// connected and deterministic for a fixed seed.
func RandomClusters(n, k int, seed int64) *swarm.Swarm {
	if k < 1 {
		k = 1
	}
	if maxK := n/8 + 1; k > maxK {
		k = maxK
	}
	rng := rand.New(rand.NewSource(seed))
	spread := 2*isqrt(n) + 4
	centers := make([]grid.Point, k)
	for i := 1; i < k; i++ {
		// Next center: a jittered step away from the previous one, biased
		// outward so clusters don't collapse onto each other.
		dx := spread/2 + rng.Intn(spread)
		dy := spread/2 + rng.Intn(spread)
		if rng.Intn(2) == 0 {
			dy = -dy
		}
		centers[i] = centers[i-1].Add(grid.Pt(dx, dy))
	}
	s := swarm.New(centers[0])
	// Carve a random monotone lattice path between consecutive centers:
	// every step moves one cell toward the target, choosing the axis at
	// random — a different staircase per seed, always connected.
	for i := 1; i < k; i++ {
		cur, dst := centers[i-1], centers[i]
		for cur != dst {
			stepX := cur.X != dst.X && (cur.Y == dst.Y || rng.Intn(2) == 0)
			if stepX {
				cur.X += sign(dst.X - cur.X)
			} else {
				cur.Y += sign(dst.Y - cur.Y)
			}
			s.Add(cur)
		}
	}
	// Grow the blobs round-robin until the population is exact: attach a
	// robot 4-adjacent to a random existing member of the cluster.
	clusters := make([][]grid.Point, k)
	for i, c := range centers {
		clusters[i] = append(clusters[i], c)
	}
	for i := 0; s.Len() < n; i = (i + 1) % k {
		cl := clusters[i]
		for {
			base := cl[rng.Intn(len(cl))]
			q := base.Add(grid.Axis4[rng.Intn(4)])
			if !s.Has(q) {
				s.Add(q)
				clusters[i] = append(cl, q)
				break
			}
			// Occupied: keep the walk going from the occupied cell so
			// dense cluster cores don't stall the growth.
			cl = append(cl, q)
		}
	}
	return s
}

// AntColony grows a random connected swarm of exactly n robots with a
// small colony of pheromone-laying ants. Each ant wanders the lattice near
// the swarm, biased toward cells its colony has visited before (the
// pheromone field), and deposits a robot whenever it stands on a free cell
// 4-adjacent to the swarm — so every addition touches the existing body
// and the result is connected by construction. The pheromone bias makes
// ants retrace and extend each other's trails, yielding organic branching
// growths — denser than tree, stringier than blob — with a texture neither
// deterministic family covers. An ant that wanders too long without
// depositing is leashed back onto a random swarm cell. Deterministic for a
// fixed seed: neighbors are scored in the fixed Axis4 order and the
// pheromone map is only keyed into, never iterated.
func AntColony(n int, seed int64) *swarm.Swarm {
	rng := rand.New(rand.NewSource(seed))
	s := swarm.New(grid.Pt(0, 0))
	const ants = 8
	const leash = 48 // steps without a deposit before teleporting home
	pher := map[grid.Point]int{grid.Pt(0, 0): 1}
	pos := make([]grid.Point, ants)
	idle := make([]int, ants)
	for s.Len() < n {
		for a := 0; a < ants && s.Len() < n; a++ {
			// Roulette-pick among the four neighbors in fixed order, weight
			// 1 + min(pheromone, cap): trails attract, but the cap keeps
			// every direction at positive probability — a greedy pick would
			// let two high-pheromone interior cells trap an ant forever.
			var w [4]float64
			total := 0.0
			for j, d := range grid.Axis4 {
				w[j] = float64(1 + min(pher[pos[a].Add(d)], 8))
				total += w[j]
			}
			best := pos[a].Add(grid.Axis4[3])
			r := rng.Float64() * total
			for j, d := range grid.Axis4 {
				if r -= w[j]; r < 0 {
					best = pos[a].Add(d)
					break
				}
			}
			pos[a] = best
			pher[best]++
			idle[a]++
			if !s.Has(best) {
				adj := false
				for _, q := range grid.Neighbors4(best) {
					if s.Has(q) {
						adj = true
						break
					}
				}
				if adj {
					s.Add(best)
					idle[a] = 0
				}
			}
			if idle[a] > leash {
				cells := s.Cells()
				pos[a] = cells[rng.Intn(len(cells))]
				idle[a] = 0
			}
		}
	}
	return s
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

// Sierpinski returns the depth-d Sierpinski carpet: the 3^d × 3^d square
// with every center ninth removed recursively — 8^d robots in a connected,
// maximally hole-ridden fractal. It exercises boundary machinery at every
// scale at once: the workload has Θ(n) boundary cells (against Θ(√n) for a
// solid square) spread over nested subboundaries.
func Sierpinski(depth int) *swarm.Swarm {
	if depth < 0 {
		depth = 0
	}
	size := 1
	for i := 0; i < depth; i++ {
		size *= 3
	}
	s := swarm.New()
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			if carpetCell(x, y) {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

// carpetCell reports whether (x, y) survives the carpet recursion: no
// base-3 digit position may read (1, 1).
func carpetCell(x, y int) bool {
	for x > 0 || y > 0 {
		if x%3 == 1 && y%3 == 1 {
			return false
		}
		x /= 3
		y /= 3
	}
	return true
}

// sierpinskiDepth picks the carpet depth whose population 8^d is nearest
// to n in log scale.
func sierpinskiDepth(n int) int {
	d, pop := 1, 8
	for pop*8 <= n*3 { // next depth is closer as long as n ≥ pop·8/3 ≈ geometric midpoint
		d++
		pop *= 8
	}
	return d
}

// Workload is a named workload family: a builder parameterized only by n
// (robot count), seeded deterministically where random.
type Workload struct {
	Name  string
	Build func(n int) *swarm.Swarm
}

// SeededWorkload is a workload family whose builder takes an explicit seed.
// Deterministic families (lines, rings, spirals, …) ignore the seed; for
// them Random is false and running more than one seed reproduces the same
// swarm. The sweep harness uses this to expand (workload × n × seed) grids
// without duplicating deterministic instances.
type SeededWorkload struct {
	// Name identifies the family (same names as Catalog).
	Name string
	// Build returns the family's swarm with approximately n robots.
	Build func(n int, seed int64) *swarm.Swarm
	// Random reports whether the seed changes the output.
	Random bool
}

// SeededCatalog returns the standard workload families with explicit-seed
// builders. Catalog is this list with every seed fixed to 42.
func SeededCatalog() []SeededWorkload {
	return []SeededWorkload{
		{Name: "line", Build: func(n int, _ int64) *swarm.Swarm { return Line(n) }},
		{Name: "solid", Build: func(n int, _ int64) *swarm.Swarm { return Solid(isqrt(n), isqrt(n)) }},
		{Name: "hollow", Build: func(n int, _ int64) *swarm.Swarm { w := n/4 + 1; return Hollow(w, w) }},
		{Name: "staircase", Build: func(n int, _ int64) *swarm.Swarm { return Staircase(n, 1) }},
		{Name: "spiral", Build: func(n int, _ int64) *swarm.Swarm { return Spiral(spiralSize(n)) }},
		{Name: "sierpinski", Build: func(n int, _ int64) *swarm.Swarm { return Sierpinski(sierpinskiDepth(n)) }},
		{Name: "tree", Build: RandomTree, Random: true},
		{Name: "blob", Build: RandomBlob, Random: true},
		{Name: "walk", Build: RandomWalk, Random: true},
		{Name: "clusters", Build: func(n int, seed int64) *swarm.Swarm { return RandomClusters(n, 4, seed) }, Random: true},
		{Name: "antcolony", Build: AntColony, Random: true},
	}
}

// Catalog returns the standard workload families of the experiment suite,
// with randomized families fixed to seed 42.
func Catalog() []Workload {
	seeded := SeededCatalog()
	out := make([]Workload, 0, len(seeded))
	for _, w := range seeded {
		if w.Name == "walk" || w.Name == "antcolony" {
			// These families are sweep-only: their shapes vary too wildly
			// across seeds for the fixed-seed experiment tables.
			continue
		}
		w := w
		out = append(out, Workload{
			Name:  w.Name,
			Build: func(n int) *swarm.Swarm { return w.Build(n, 42) },
		})
	}
	return out
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// spiralSize finds a spiral parameter yielding roughly n robots.
func spiralSize(n int) int {
	for size := 4; size < 4*n; size++ {
		if Spiral(size).Len() >= n {
			return size
		}
	}
	panic(fmt.Sprintf("gen: no spiral size for n=%d", n))
}

// ThickRing returns a w×h rectangle ring with the given wall thickness —
// thick walls admit no sideways merge configurations, so erosion is
// driven by corner starts.
func ThickRing(w, h, thickness int) *swarm.Swarm {
	s := swarm.New()
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x < thickness || y < thickness || x >= w-thickness || y >= h-thickness {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}

// DiamondRing returns a hollow diamond: all cells at L1 distance r or r-1
// from the origin (two shells keep it 4-connected). Its boundary has no
// aligned runs of three robots except at the four apexes — the minimal
// foothold for merge configurations.
func DiamondRing(r int) *swarm.Swarm {
	s := swarm.New()
	for x := -r; x <= r; x++ {
		for y := -r; y <= r; y++ {
			d := grid.Pt(x, y).L1()
			if d == r || d == r-1 {
				s.Add(grid.Pt(x, y))
			}
		}
	}
	return s
}
