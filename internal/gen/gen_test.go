package gen

import (
	"testing"

	"gridgather/internal/grid"
)

func TestAllGeneratorsConnected(t *testing.T) {
	shapes := map[string]interface{ Len() int }{}
	_ = shapes
	cases := []struct {
		name string
		n    int
		len  int // expected robot count, -1 to skip
	}{
		{"line", 0, -1},
	}
	_ = cases

	check := func(name string, s interface {
		Connected() bool
		Len() int
	}) {
		t.Helper()
		if s.Len() == 0 {
			t.Errorf("%s: empty", name)
		}
		if !s.Connected() {
			t.Errorf("%s: not connected", name)
		}
	}

	check("line", Line(17))
	check("vline", VLine(9))
	check("solid", Solid(6, 4))
	check("hollow", Hollow(8, 5))
	check("staircase1", Staircase(23, 1))
	check("staircase2", Staircase(23, 2))
	check("plus", Plus(7))
	check("comb", Comb(15, 4))
	check("spiral", Spiral(20))
	check("table", Table(25, 4))
	check("h", HShape(9, 5))
	check("diamond", Diamond(5))
	check("tree", RandomTree(120, 7))
	check("blob", RandomBlob(120, 7))
	check("walk", RandomWalk(120, 7))
	check("clusters", RandomClusters(200, 4, 7))
	check("clusters-tiny", RandomClusters(9, 4, 7))
	check("antcolony", AntColony(120, 7))
	check("antcolony-tiny", AntColony(3, 7))
	check("sierpinski", Sierpinski(3))
}

func TestGeneratorSizes(t *testing.T) {
	if got := Line(12).Len(); got != 12 {
		t.Errorf("line len = %d", got)
	}
	if got := Solid(5, 4).Len(); got != 20 {
		t.Errorf("solid len = %d", got)
	}
	if got := Hollow(6, 5).Len(); got != 2*6+2*3 {
		t.Errorf("hollow len = %d", got)
	}
	if got := Staircase(31, 1).Len(); got != 31 {
		t.Errorf("staircase len = %d", got)
	}
	if got := Plus(4).Len(); got != 17 {
		t.Errorf("plus len = %d", got)
	}
	if got := RandomTree(77, 3).Len(); got != 77 {
		t.Errorf("tree len = %d", got)
	}
	if got := RandomBlob(77, 3).Len(); got != 77 {
		t.Errorf("blob len = %d", got)
	}
	if got := RandomWalk(77, 3).Len(); got != 77 {
		t.Errorf("walk len = %d", got)
	}
	if got := Diamond(3).Len(); got != 25 {
		t.Errorf("diamond len = %d", got)
	}
	if got := RandomClusters(300, 4, 3).Len(); got != 300 {
		t.Errorf("clusters len = %d", got)
	}
	if got := AntColony(300, 3).Len(); got != 300 {
		t.Errorf("antcolony len = %d", got)
	}
	// The carpet holds exactly 8^depth robots.
	if got := Sierpinski(2).Len(); got != 64 {
		t.Errorf("sierpinski(2) len = %d", got)
	}
	if got := Sierpinski(3).Len(); got != 512 {
		t.Errorf("sierpinski(3) len = %d", got)
	}
}

func TestSierpinskiShape(t *testing.T) {
	s := Sierpinski(2)
	// The center ninth is removed at both recursion levels.
	if s.Has(grid.Pt(4, 4)) {
		t.Error("center of the carpet should be empty")
	}
	if s.Has(grid.Pt(1, 1)) {
		t.Error("center of the first sub-square should be empty")
	}
	if !s.Has(grid.Pt(0, 0)) || !s.Has(grid.Pt(8, 8)) {
		t.Error("carpet corners missing")
	}
	if b := s.Bounds(); b.MaxX != 8 || b.MaxY != 8 {
		t.Errorf("carpet bounds = %v, want 9x9", b)
	}
}

func TestRandomClustersDeterministic(t *testing.T) {
	a := RandomClusters(250, 5, 11)
	b := RandomClusters(250, 5, 11)
	if !a.Equal(b) {
		t.Error("RandomClusters not deterministic for equal seed")
	}
	if a.Equal(RandomClusters(250, 5, 12)) {
		t.Error("different seeds produced identical cluster swarms (suspicious)")
	}
}

func TestRandomGeneratorsDeterministic(t *testing.T) {
	a := RandomTree(64, 11)
	b := RandomTree(64, 11)
	if !a.Equal(b) {
		t.Error("RandomTree not deterministic for equal seed")
	}
	c := RandomBlob(64, 11)
	d := RandomBlob(64, 11)
	if !c.Equal(d) {
		t.Error("RandomBlob not deterministic")
	}
	if a.Equal(RandomTree(64, 12)) {
		t.Error("different seeds produced identical trees (suspicious)")
	}
	e := AntColony(200, 11)
	f := AntColony(200, 11)
	if !e.Equal(f) {
		t.Error("AntColony not deterministic for equal seed")
	}
	if e.Equal(AntColony(200, 12)) {
		t.Error("different seeds produced identical colonies (suspicious)")
	}
}

func TestTableShape(t *testing.T) {
	s := Table(10, 3)
	// Top plateau at y=3 spanning x=0..9, legs at x=0 and x=9.
	for x := 0; x < 10; x++ {
		if !s.Has(grid.Pt(x, 3)) {
			t.Errorf("missing plateau cell (%d,3)", x)
		}
	}
	if !s.Has(grid.Pt(0, 0)) || !s.Has(grid.Pt(9, 0)) {
		t.Error("missing leg feet")
	}
	if s.Has(grid.Pt(5, 0)) {
		t.Error("unexpected cell under plateau middle")
	}
}

func TestCatalogBuildsConnectedSwarms(t *testing.T) {
	for _, w := range Catalog() {
		for _, n := range []int{16, 60} {
			s := w.Build(n)
			if s.Len() == 0 || !s.Connected() {
				t.Errorf("catalog %s(n=%d): bad swarm", w.Name, n)
			}
		}
	}
}

func TestHollowHasHole(t *testing.T) {
	if holes := Hollow(6, 6).Holes(); len(holes) != 1 {
		t.Errorf("hollow holes = %d", len(holes))
	}
}

func TestThickRing(t *testing.T) {
	s := ThickRing(10, 8, 2)
	if !s.Connected() {
		t.Fatal("thick ring disconnected")
	}
	// Hole is (10-4)x(8-4) = 6x4: total = 80 - 24.
	if got := s.Len(); got != 80-24 {
		t.Errorf("len = %d, want 56", got)
	}
	if holes := s.Holes(); len(holes) != 1 || len(holes[0]) != 24 {
		t.Errorf("holes = %v", holes)
	}
}

func TestDiamondRing(t *testing.T) {
	s := DiamondRing(5)
	if !s.Connected() {
		t.Fatal("diamond ring disconnected")
	}
	// Two L1 shells of radius r and r-1 hold 4r + 4(r-1) cells.
	if got := s.Len(); got != 4*5+4*4 {
		t.Errorf("len = %d, want 36", got)
	}
	if holes := s.Holes(); len(holes) != 1 {
		t.Errorf("holes = %d, want 1", len(holes))
	}
	if !s.Has(grid.Pt(5, 0)) || s.Has(grid.Pt(0, 0)) {
		t.Error("shell membership wrong")
	}
}
