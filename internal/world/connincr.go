package world

// This file is the incremental connectivity layer: the O(k)-per-round
// replacement for the full bitset BFS behind Dense.Connected.
//
// The structure exploited here is the paper's own: robots move L∞ ≤ 1 per
// round, so a move can change component structure only inside the 3×3
// neighborhood of its source and target cells — which, at chunk
// granularity, means a round that dirtied k chunks can only have changed
// (a) the internal connectivity of those k chunks and (b) the seam links
// between a dirtied chunk and its four chunk neighbors. Everything else is
// provably unchanged and is reused from the previous round.
//
// The layer keeps, per occupied 64×64 chunk:
//
//   - a local component label per occupied cell (labels are dense ids
//     0..ncomps-1, recomputed by a word-parallel row-run pass whenever the
//     chunk's occupancy words changed — Commit detects that with one
//     512-byte compare per live chunk);
//   - cached seam links for the two borders the chunk owns (east and
//     north; every chunk pair is covered exactly once, and 4-connectivity
//     has no diagonal cross-chunk adjacency): the pairs of local component
//     labels that touch across the border. A border cache is invalidated
//     whenever either endpoint chunk is dirtied.
//
// A Connected query then relabels the dirty chunks, refreshes the
// invalidated border caches, and runs a small union-find over the chunk
// components (one node per local component, one union per cached seam
// link): the swarm is connected iff exactly one root remains. The
// union-find is rebuilt per query — union-find supports merges but not the
// splits a departing robot can cause, and rebuilding over the *chunk
// component graph* (thousands of nodes at n = 2^20, not millions) is what
// makes splits free while keeping the query cost proportional to the
// chunk-level structure instead of the robot count.
//
// The full bitset BFS survives in two roles: ConnectedBFS is the
// always-available oracle/escape hatch (ForceFullBFS pins Connected to
// it), and it is the conservative fallback whenever the incremental
// structure is invalid — the first query of a world, after a snapshot
// restore, or after the structure was explicitly reset. An invalid-
// structure query answers with the BFS (never wrong, no staleness to
// reason about) and rebuilds the incremental state for the queries that
// follow; the differential suite in this package and internal/fsync proves
// the two paths agree bit-for-bit, round by round.

import (
	"math/bits"

	"gridgather/internal/grid"
)

// connLink is one seam adjacency: local component a of the owning chunk
// touches local component b of the neighbor across the border.
type connLink struct {
	a, b uint16
}

// chunkConn is the per-chunk connectivity state: local component labels
// under the chunk's occupied cells, and the cached seam links of the two
// borders the chunk owns (east: towards chunk (cx+1, cy); north: towards
// chunk (cx, cy+1)).
type chunkConn struct {
	t      *tile
	cx, cy int
	ncomps int
	labels [tileSize * tileSize]uint16

	// comps aggregates each local component's cell count, bounding box and
	// canonical minimum cell (absolute coordinates), maintained by relabel.
	// The largest-component query folds these per-chunk summaries across
	// seam links instead of revisiting cells.
	comps []compAgg

	east, north     []connLink
	eastNbr         *chunkConn
	northNbr        *chunkConn
	eastOK, northOK bool

	base int32 // per-query scratch: first global union-find node of this chunk
}

// compAgg summarizes one component (chunk-local in chunkConn.comps, global
// in the largest-component query scratch): cell count, bounding box, and
// the component's minimum cell in canonical (Less) order.
type compAgg struct {
	size   int32
	bounds grid.Rect
	min    grid.Point
}

// rowRun is one horizontal run of consecutive occupied cells during a
// chunk relabel: its bit mask within the row and the provisional run id.
type rowRun struct {
	mask uint64
	hi   int8 // index one past the highest set bit (for interval walks)
	id   int32
}

// ConnStats is the observable state of the incremental layer, for tests
// and benchmarks.
type ConnStats struct {
	// Queries counts Connected calls answered by the incremental layer;
	// Fallbacks counts the subset that fell back to the full BFS because
	// the structure was invalid (cold start, snapshot restore, reset).
	Queries, Fallbacks int
	// Rebuilds counts full from-scratch structure rebuilds; Relabels
	// counts dirty-chunk component recomputations.
	Rebuilds, Relabels int
	// Chunks and Comps are the current chunk-graph size: occupied chunks
	// and total local components (union-find nodes) at the last query.
	Chunks, Comps int
}

// connIncr is the world-level incremental connectivity state.
type connIncr struct {
	chunks map[*tile]*chunkConn
	valid  bool
	dirty  []*tile

	stats ConnStats

	// scratch, reused across queries
	parent  []int32
	runUF   []int32
	runRows []int8 // run id → row (for the label fill pass)
	runs    []rowRun
	agg     []compAgg    // largest-component per-root aggregates
	free    []*chunkConn // chunkConn free list (evicted chunks)
}

// markDirty queues t for relabeling at the next query. Idempotent per
// tile until the query drains the list.
func (c *connIncr) markDirty(t *tile) {
	if !t.connDirty {
		t.connDirty = true
		c.dirty = append(c.dirty, t)
	}
}

// Commit-time change detection lives in Dense.noteRoundDiff (quiesce.go):
// one tile diff per round queues changed chunks here via markDirty and
// feeds the quiescence dirty planes — no double word-compare when both
// consumers are on.

// invalidate resets the incremental structure; the next query falls back
// to the full BFS and rebuilds.
func (c *connIncr) invalidate() {
	c.valid = false
	for _, t := range c.dirty {
		t.connDirty = false
	}
	c.dirty = c.dirty[:0]
}

// connectedIncr answers Connected through the incremental layer.
func (d *Dense) connectedIncr() bool {
	if d.count <= 1 {
		return true
	}
	c := d.conn
	if c == nil {
		c = &connIncr{chunks: make(map[*tile]*chunkConn)}
		d.conn = c
	}
	c.stats.Queries++
	if !c.valid {
		// Conservative fallback: the structure is cold (first query,
		// snapshot restore, explicit reset) — answer with the scratch
		// BFS, which is never wrong, and rebuild for the next query.
		c.stats.Fallbacks++
		ok := d.ConnectedBFS()
		c.rebuild(d)
		return ok
	}
	for _, t := range c.dirty {
		t.connDirty = false
		c.refresh(d, t)
	}
	c.dirty = c.dirty[:0]
	return c.query(d)
}

// rebuild recomputes the whole structure from the current occupancy
// layer.
func (c *connIncr) rebuild(d *Dense) {
	c.stats.Rebuilds++
	// Map order decides only which recycled chunkConn object a tile gets;
	// refresh fully resets every field on reuse, so no outcome depends on it.
	//gather:nondet-ok free-list recycling order never reaches engine outcomes
	for t, cc := range c.chunks {
		c.free = append(c.free, cc)
		delete(c.chunks, t)
	}
	for _, t := range c.dirty {
		t.connDirty = false
	}
	c.dirty = c.dirty[:0]
	for _, t := range d.live[d.cur] {
		c.refresh(d, t)
	}
	c.valid = true
}

// refresh brings one chunk's state in line with the current occupancy
// layer: relabel its components (or evict it if it emptied) and
// invalidate every border cache involving it.
func (c *connIncr) refresh(d *Dense, t *tile) {
	pop := false
	for _, w := range t.bits[d.cur] {
		if w != 0 {
			pop = true
			break
		}
	}
	cc := c.chunks[t]
	if !pop {
		if cc != nil {
			// Chunk eviction: the last robot left. Its components (and
			// owned border caches) die with it.
			delete(c.chunks, t)
			c.free = append(c.free, cc)
			c.invalidateNeighbors(d, cc.cx, cc.cy)
		}
		return
	}
	if cc == nil {
		if n := len(c.free); n > 0 {
			cc = c.free[n-1]
			c.free = c.free[:n-1]
			cc.east, cc.north = cc.east[:0], cc.north[:0]
		} else {
			cc = &chunkConn{}
		}
		cc.t, cc.cx, cc.cy = t, t.cx, t.cy
		c.chunks[t] = cc
	}
	c.relabel(cc, t, d.cur)
	cc.eastOK, cc.northOK = false, false
	c.invalidateNeighbors(d, cc.cx, cc.cy)
}

// invalidateNeighbors drops the border caches facing chunk (cx, cy): the
// west neighbor's east border and the south neighbor's north border. The
// chunk's own east/north caches are handled by its refresh (or eviction).
func (c *connIncr) invalidateNeighbors(d *Dense, cx, cy int) {
	if t := d.tileAtChunk(cx-1, cy); t != nil {
		if cc := c.chunks[t]; cc != nil {
			cc.eastOK = false
		}
	}
	if t := d.tileAtChunk(cx, cy-1); t != nil {
		if cc := c.chunks[t]; cc != nil {
			cc.northOK = false
		}
	}
}

// relabel recomputes the chunk's local component labels with a row-run
// pass: each maximal run of consecutive occupied cells in a row is a
// provisional component, runs of vertically adjacent rows whose masks
// intersect are unioned, and the run roots are flattened to dense ids.
// Cost is O(rows + runs·α), word-parallel in the occupancy bits.
func (c *connIncr) relabel(cc *chunkConn, t *tile, layer int) {
	c.stats.Relabels++
	runs := c.runs[:0]
	uf := c.runUF[:0]
	rows := c.runRows[:0]
	prevLo := 0 // index into runs of the previous non-empty row's runs
	prevRow := -2
	for y := 0; y < tileSize; y++ {
		w := t.bits[layer][y]
		if w == 0 {
			continue
		}
		curLo := len(runs)
		for rem := w; rem != 0; {
			lo := bits.TrailingZeros64(rem)
			span := bits.TrailingZeros64(^(rem >> uint(lo)))
			var mask uint64
			if span >= 64 {
				mask = ^uint64(0)
			} else {
				mask = ((uint64(1) << uint(span)) - 1) << uint(lo)
			}
			rem &^= mask
			id := int32(len(runs))
			runs = append(runs, rowRun{mask: mask, hi: int8(min(lo+span, 64) - 1), id: id})
			uf = append(uf, id)
			rows = append(rows, int8(y))
		}
		if prevRow == y-1 {
			// Union runs with the overlapping runs of the row above:
			// both interval lists are ascending, so one merged walk.
			i, j := prevLo, curLo
			for i < curLo && j < len(runs) {
				if runs[i].mask&runs[j].mask != 0 {
					unionRuns(uf, runs[i].id, runs[j].id)
				}
				if runs[i].hi < runs[j].hi {
					i++
				} else {
					j++
				}
			}
		}
		prevLo, prevRow = curLo, y
	}
	// Flatten: assign dense component ids in run order, then write the
	// labels of every cell of every run.
	ncomps := 0
	for i := range runs {
		if r := findRun(uf, int32(i)); r == int32(i) {
			runs[i].id = int32(ncomps)
			ncomps++
		}
	}
	if cap(cc.comps) < ncomps {
		cc.comps = make([]compAgg, ncomps)
	}
	cc.comps = cc.comps[:ncomps]
	for i := range cc.comps {
		cc.comps[i] = compAgg{bounds: grid.EmptyRect}
	}
	// Absolute coordinates via OR: x < 64 and the low 6 bits of cx<<6 are
	// zero (also for negative cx in two's complement), so OR is addition.
	baseX, baseY := cc.cx<<tileShift, cc.cy<<tileShift
	for i := range runs {
		comp := uint16(runs[findRun(uf, int32(i))].id)
		row := int(rows[i]) << tileShift
		mask := runs[i].mask
		for m := mask; m != 0; m &= m - 1 {
			cc.labels[row|bits.TrailingZeros64(m)] = comp
		}
		a := &cc.comps[comp]
		y := baseY | int(rows[i])
		lo := grid.Point{X: baseX | bits.TrailingZeros64(mask), Y: y}
		hi := grid.Point{X: baseX | (63 - bits.LeadingZeros64(mask)), Y: y}
		// Rows ascend and a run's lowest cell is its Less-minimum, so the
		// Less-least run candidate is the component's true minimum cell.
		if a.size == 0 || lo.Less(a.min) {
			a.min = lo
		}
		a.size += int32(bits.OnesCount64(mask))
		a.bounds = a.bounds.Include(lo).Include(hi)
	}
	cc.ncomps = ncomps
	c.runs, c.runUF, c.runRows = runs, uf, rows
}

func findRun(uf []int32, i int32) int32 {
	for uf[i] != i {
		uf[i] = uf[uf[i]]
		i = uf[i]
	}
	return i
}

func unionRuns(uf []int32, a, b int32) {
	ra, rb := findRun(uf, a), findRun(uf, b)
	if ra != rb {
		uf[ra] = rb
	}
}

// query runs the chunk-graph union-find: one node per local component,
// one union per cached seam link. Border caches invalidated by this
// round's dirty chunks are recomputed here, after every relabel is done,
// so links always pair fresh labels on both sides.
// Both loops below walk d.live[d.cur] — the deduplicated, insertion-ordered
// list of tiles that may hold current-layer bits — rather than the chunks
// map: every occupied tile is on the live list (mark runs on every arrival),
// so skipping live tiles without a chunkConn visits exactly the map's
// entries, in deterministic order. Label bases, and therefore the union-find
// trace, come out identical on every run.
func (c *connIncr) query(d *Dense) bool {
	n, roots := c.unite(d)
	return n <= 1 || roots == 1
}

// unite runs the shared half of the chunk-graph queries: assign label
// bases, initialize the union-find, refresh invalidated border caches and
// union every seam link. Returns the node count and the surviving root
// count. n ≤ 1 short-circuits before the union-find is touched (there is
// nothing to union); callers must not read c.parent in that case.
func (c *connIncr) unite(d *Dense) (n, roots int32) {
	for _, t := range d.live[d.cur] {
		cc := c.chunks[t]
		if cc == nil {
			continue
		}
		cc.base = n
		n += int32(cc.ncomps)
	}
	c.stats.Chunks, c.stats.Comps = len(c.chunks), int(n)
	if n <= 1 {
		return n, n
	}
	if cap(c.parent) < int(n) {
		c.parent = make([]int32, n)
	}
	c.parent = c.parent[:n]
	for i := range c.parent {
		c.parent[i] = int32(i)
	}
	roots = n
	for _, t := range d.live[d.cur] {
		cc := c.chunks[t]
		if cc == nil {
			continue
		}
		if !cc.eastOK {
			cc.eastNbr = c.neighborConn(d, cc.cx+1, cc.cy)
			cc.east = appendEastLinks(cc.east[:0], t, cc, d.cur)
			cc.eastOK = true
		}
		if !cc.northOK {
			cc.northNbr = c.neighborConn(d, cc.cx, cc.cy+1)
			cc.north = appendNorthLinks(cc.north[:0], t, cc, d.cur)
			cc.northOK = true
		}
		for _, l := range cc.east {
			roots -= c.union(cc.base+int32(l.a), cc.eastNbr.base+int32(l.b))
		}
		for _, l := range cc.north {
			roots -= c.union(cc.base+int32(l.a), cc.northNbr.base+int32(l.b))
		}
	}
	return n, roots
}

// largest folds the per-chunk component summaries across the seam
// union-find and returns the largest component's cell count, bounding box
// and canonical minimum cell. Ties go to the component with the smaller
// minimum cell — exactly the component a first-wins scan in canonical cell
// order keeps, so the incremental answer matches LargestComponentBFS
// bit-for-bit.
func (c *connIncr) largest(d *Dense) (size int, bounds grid.Rect, seed grid.Point) {
	n, _ := c.unite(d)
	if n == 0 {
		return 0, grid.EmptyRect, grid.Point{}
	}
	if cap(c.agg) < int(n) {
		c.agg = make([]compAgg, n)
	}
	agg := c.agg[:n]
	for i := range agg {
		agg[i] = compAgg{bounds: grid.EmptyRect}
	}
	for _, t := range d.live[d.cur] {
		cc := c.chunks[t]
		if cc == nil {
			continue
		}
		for id := range cc.comps {
			node := cc.base + int32(id)
			if n > 1 {
				node = c.find(node)
			}
			a, src := &agg[node], &cc.comps[id]
			if a.size == 0 || src.min.Less(a.min) {
				a.min = src.min
			}
			a.size += src.size
			a.bounds = a.bounds.Include(grid.Point{X: src.bounds.MinX, Y: src.bounds.MinY}).
				Include(grid.Point{X: src.bounds.MaxX, Y: src.bounds.MaxY})
		}
	}
	best := -1
	for i := range agg {
		if agg[i].size == 0 {
			continue // not a root: its cells were folded into the root's entry
		}
		if best < 0 || agg[i].size > agg[best].size ||
			(agg[i].size == agg[best].size && agg[i].min.Less(agg[best].min)) {
			best = i
		}
	}
	return int(agg[best].size), agg[best].bounds, agg[best].min
}

// neighborConn resolves the chunkConn at chunk coordinates (cx, cy), nil
// if that chunk is unoccupied.
func (c *connIncr) neighborConn(d *Dense, cx, cy int) *chunkConn {
	t := d.tileAtChunk(cx, cy)
	if t == nil {
		return nil
	}
	return c.chunks[t]
}

// appendEastLinks collects the seam links across the chunk's east border:
// cells in its column 63 that are 4-adjacent to occupied cells in the east
// neighbor's column 0. Consecutive duplicate pairs are skipped (vertical
// runs touch along many rows); remaining duplicates are harmless — union
// is idempotent.
func appendEastLinks(links []connLink, t *tile, cc *chunkConn, layer int) []connLink {
	nbr := cc.eastNbr
	if nbr == nil {
		return links
	}
	nt := nbr.t
	for y := 0; y < tileSize; y++ {
		if t.bits[layer][y]>>tileMask&1 != 0 && nt.bits[layer][y]&1 != 0 {
			l := connLink{cc.labels[y<<tileShift|tileMask], nbr.labels[y<<tileShift]}
			if n := len(links); n == 0 || links[n-1] != l {
				links = append(links, l)
			}
		}
	}
	return links
}

// appendNorthLinks collects the seam links across the chunk's north
// border: cells in its row 63 adjacent to occupied cells in the north
// neighbor's row 0.
func appendNorthLinks(links []connLink, t *tile, cc *chunkConn, layer int) []connLink {
	nbr := cc.northNbr
	if nbr == nil {
		return links
	}
	nt := nbr.t
	w := t.bits[layer][tileMask] & nt.bits[layer][0]
	for ; w != 0; w &= w - 1 {
		x := bits.TrailingZeros64(w)
		l := connLink{cc.labels[tileMask<<tileShift|x], nbr.labels[x]}
		if n := len(links); n == 0 || links[n-1] != l {
			links = append(links, l)
		}
	}
	return links
}

func (c *connIncr) union(a, b int32) int32 {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return 0
	}
	c.parent[ra] = rb
	return 1
}

func (c *connIncr) find(i int32) int32 {
	p := c.parent
	for p[i] != i {
		p[i] = p[p[i]]
		i = p[i]
	}
	return i
}
