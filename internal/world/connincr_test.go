package world

// Tests for the incremental connectivity layer (connincr.go). The contract
// under test is differential: Connected through the incremental path must
// equal ConnectedBFS (the scratch-BFS oracle) and the swarm oracle after
// every mutation — cold start, warm queries, ad-hoc Add/Remove, full round
// commits, chunk eviction and snapshot restore alike. The table cases pin
// the seam union-find edge cases directly: merges across east and north
// borders, diagonal-only contact (NOT connected under 4-connectivity),
// four-corner meetings, and splits that must be re-detected after the
// per-query union-find rebuild.

import (
	"testing"

	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// connWorld builds a dense world over the given cells.
func connWorld(cells ...grid.Point) *Dense {
	return NewDense(swarm.New(cells...), false)
}

// checkConnAllPaths asserts the incremental answer, the BFS oracle and the
// swarm-free expectation agree, querying the incremental path repeatedly so
// both the cold (fallback+rebuild) and warm paths run.
func checkConnAllPaths(t *testing.T, d *Dense, want bool) {
	t.Helper()
	if got := d.ConnectedBFS(); got != want {
		t.Fatalf("ConnectedBFS = %v, want %v", got, want)
	}
	for i := 0; i < 3; i++ {
		if got := d.Connected(); got != want {
			t.Fatalf("Connected (query %d) = %v, want %v", i, got, want)
		}
	}
}

// TestConnIncrSeamTable pins the chunk-seam union-find: every case is a
// hand-placed pattern around chunk borders (chunks are 64×64, so x or y in
// {63, 64} sits on a seam; negative coordinates exercise the floor-divided
// chunk grid).
func TestConnIncrSeamTable(t *testing.T) {
	cases := []struct {
		name  string
		cells []grid.Point
		want  bool
	}{
		{"east-seam pair", []grid.Point{grid.Pt(63, 5), grid.Pt(64, 5)}, true},
		{"east-seam diagonal only", []grid.Point{grid.Pt(63, 5), grid.Pt(64, 6)}, false},
		{"north-seam pair", []grid.Point{grid.Pt(5, 63), grid.Pt(5, 64)}, true},
		{"north-seam diagonal only", []grid.Point{grid.Pt(5, 63), grid.Pt(6, 64)}, false},
		{"four-corner diagonal only", []grid.Point{grid.Pt(63, 63), grid.Pt(64, 64)}, false},
		{"four-corner anti-diagonal only", []grid.Point{grid.Pt(64, 63), grid.Pt(63, 64)}, false},
		{"four-corner full square", []grid.Point{
			grid.Pt(63, 63), grid.Pt(64, 63), grid.Pt(63, 64), grid.Pt(64, 64)}, true},
		{"negative seam pair", []grid.Point{grid.Pt(-1, 0), grid.Pt(0, 0)}, true},
		{"column through three chunks", func() []grid.Point {
			var cs []grid.Point
			for y := 60; y <= 130; y++ {
				cs = append(cs, grid.Pt(10, y))
			}
			return cs
		}(), true},
		{"row through three chunks", func() []grid.Point {
			var cs []grid.Point
			for x := -70; x <= 70; x++ {
				cs = append(cs, grid.Pt(x, 3))
			}
			return cs
		}(), true},
		{"snake around a chunk corner", []grid.Point{
			grid.Pt(62, 63), grid.Pt(63, 63), grid.Pt(63, 64), grid.Pt(64, 64), grid.Pt(64, 65)}, true},
		{"two blocks two chunks apart", []grid.Point{
			grid.Pt(5, 5), grid.Pt(6, 5), grid.Pt(200, 5), grid.Pt(201, 5)}, false},
		{"same chunk two components", []grid.Point{
			grid.Pt(10, 10), grid.Pt(11, 10), grid.Pt(30, 30), grid.Pt(31, 30)}, false},
		{"U across a seam", []grid.Point{
			// Down column 63, across the bottom, up column 64 — within each
			// chunk the two columns are separate local components joined
			// only through the neighbor chunk below the seam.
			grid.Pt(63, 64), grid.Pt(63, 63), grid.Pt(63, 62),
			grid.Pt(64, 62), grid.Pt(64, 63), grid.Pt(64, 64)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkConnAllPaths(t, connWorld(tc.cells...), tc.want)
		})
	}
}

// TestConnIncrSplitRejoin removes and re-adds a bridge cell through the
// ad-hoc mutation path and checks the incremental layer tracks the split
// and the rejoin without falling back to the BFS after warm-up.
func TestConnIncrSplitRejoin(t *testing.T) {
	// Two cells per side of the east seam, bridged across it.
	bridgeL, bridgeR := grid.Pt(63, 10), grid.Pt(64, 10)
	d := connWorld(grid.Pt(62, 10), bridgeL, bridgeR, grid.Pt(65, 10))
	checkConnAllPaths(t, d, true)
	base := d.ConnStats()
	if base.Fallbacks != 1 {
		t.Fatalf("warm-up fallbacks = %d, want exactly 1 (cold start)", base.Fallbacks)
	}

	d.Remove(bridgeR)
	if d.Connected() {
		t.Fatal("Connected after removing the seam bridge = true")
	}
	d.Add(bridgeR)
	if !d.Connected() {
		t.Fatal("Connected after re-adding the seam bridge = false")
	}
	st := d.ConnStats()
	if st.Fallbacks != base.Fallbacks {
		t.Fatalf("split/rejoin fell back to BFS: fallbacks %d → %d", base.Fallbacks, st.Fallbacks)
	}
	if st.Relabels <= base.Relabels {
		t.Fatalf("split/rejoin did not relabel any chunk: relabels %d → %d", base.Relabels, st.Relabels)
	}
}

// TestConnIncrEviction empties a whole chunk and checks the layer drops it
// from the chunk graph (and keeps answering correctly when it repopulates).
func TestConnIncrEviction(t *testing.T) {
	left := []grid.Point{grid.Pt(10, 10), grid.Pt(11, 10)}
	right := []grid.Point{grid.Pt(200, 10), grid.Pt(201, 10)}
	d := connWorld(append(append([]grid.Point{}, left...), right...)...)
	checkConnAllPaths(t, d, false)
	if st := d.ConnStats(); st.Chunks != 2 {
		t.Fatalf("chunk graph size = %d, want 2", st.Chunks)
	}

	for _, p := range right {
		d.Remove(p)
	}
	if !d.Connected() {
		t.Fatal("Connected after evicting the far chunk = false")
	}
	if st := d.ConnStats(); st.Chunks != 1 || st.Comps != 1 {
		t.Fatalf("after eviction: chunks=%d comps=%d, want 1/1", st.Chunks, st.Comps)
	}

	d.Add(right[0])
	if d.Connected() {
		t.Fatal("Connected after repopulating the far chunk = true")
	}
	if st := d.ConnStats(); st.Chunks != 2 || st.Comps != 2 {
		t.Fatalf("after repopulation: chunks=%d comps=%d, want 2/2", st.Chunks, st.Comps)
	}
}

// TestConnIncrColdStartAndForceBFS pins the fallback protocol: exactly one
// BFS fallback on the first query, none after; ForceFullBFS drops the
// structure entirely and re-enabling pays exactly one more fallback.
func TestConnIncrColdStartAndForceBFS(t *testing.T) {
	d := connWorld(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	for i := 0; i < 4; i++ {
		if !d.Connected() {
			t.Fatalf("Connected (query %d) = false", i)
		}
	}
	if st := d.ConnStats(); st.Queries != 4 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 4 queries / 1 fallback", st)
	}

	d.ForceFullBFS(true)
	if !d.Connected() {
		t.Fatal("Connected under ForceFullBFS = false")
	}
	if st := d.ConnStats(); st != (ConnStats{}) {
		t.Fatalf("ForceFullBFS kept incremental state: %+v", st)
	}

	d.ForceFullBFS(false)
	if !d.Connected() || !d.Connected() {
		t.Fatal("Connected after re-enabling incremental = false")
	}
	if st := d.ConnStats(); st.Queries != 2 || st.Fallbacks != 1 {
		t.Fatalf("stats after re-enable = %+v, want 2 queries / 1 fallback", st)
	}
}

// TestConnIncrRoundCommit drives the real round protocol — BeginRound,
// Arrive, Commit — across a seam and checks the commit-time dirty detection
// keeps the incremental answers exact, including a disconnect caused by a
// single departing robot.
func TestConnIncrRoundCommit(t *testing.T) {
	// A 4-cell line crossing the east seam: 62..65 at y=7.
	cells := []grid.Point{grid.Pt(62, 7), grid.Pt(63, 7), grid.Pt(64, 7), grid.Pt(65, 7)}
	d := connWorld(cells...)
	checkConnAllPaths(t, d, true)
	base := d.ConnStats()

	step := func(move map[grid.Point]grid.Point) {
		t.Helper()
		d.BeginRound()
		for _, p := range d.Cells() {
			dst, ok := move[p]
			if !ok {
				dst = p
			}
			d.Arrive(p, dst)
		}
		d.Commit()
	}

	// Round 1: the east end steps away north — diagonal contact only, so
	// the swarm splits.
	step(map[grid.Point]grid.Point{grid.Pt(65, 7): grid.Pt(65, 8)})
	if d.Connected() {
		t.Fatal("Connected after the east end stepped away = true")
	}
	// Round 2: it steps back.
	step(map[grid.Point]grid.Point{grid.Pt(65, 8): grid.Pt(65, 7)})
	if !d.Connected() {
		t.Fatal("Connected after the east end returned = false")
	}
	// Round 3: nobody moves — no chunk is dirtied, no relabel should run.
	pre := d.ConnStats()
	step(nil)
	if !d.Connected() {
		t.Fatal("Connected after a no-move round = false")
	}
	st := d.ConnStats()
	if st.Fallbacks != base.Fallbacks {
		t.Fatalf("round commits fell back to BFS: %d → %d", base.Fallbacks, st.Fallbacks)
	}
	if st.Relabels != pre.Relabels {
		t.Fatalf("a no-move round relabeled chunks: %d → %d", pre.Relabels, st.Relabels)
	}
}

// TestSnapshotRebuildsConnIncr checks a snapshot/restore round-trip
// rebuilds the incremental structure identically: same answers, and the
// same chunk graph (chunk coordinates, per-chunk component counts, total
// components) once warm.
func TestSnapshotRebuildsConnIncr(t *testing.T) {
	d := NewDense(gen.RandomBlob(300, 11), false)
	// Warm the structure and dirty a few chunks through ad-hoc mutations.
	d.Connected()
	far := grid.Pt(500, 500)
	d.Add(far)
	d.Connected()
	d.Remove(far)
	d.Connected()

	r, rest, err := DecodeDense(d.AppendState(nil), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after decode", len(rest))
	}
	if got, want := r.Connected(), d.Connected(); got != want {
		t.Fatalf("restored Connected = %v, original %v", got, want)
	}
	if st := r.ConnStats(); st.Fallbacks != 1 {
		t.Fatalf("restored world answered without the cold-start fallback: %+v", st)
	}
	// Warm both sides: Chunks/Comps are recorded by the incremental query,
	// which the restored world's cold-start fallback bypassed.
	d.Connected()
	r.Connected()

	type chunkSummary struct {
		cx, cy, ncomps int
	}
	summarize := func(d *Dense) map[chunkSummary]bool {
		m := map[chunkSummary]bool{}
		for _, cc := range d.conn.chunks {
			m[chunkSummary{cc.cx, cc.cy, cc.ncomps}] = true
		}
		return m
	}
	a, b := summarize(d), summarize(r)
	if len(a) != len(b) {
		t.Fatalf("chunk graphs differ in size: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("restored chunk graph is missing %+v", k)
		}
	}
	if as, bs := d.ConnStats(), r.ConnStats(); as.Chunks != bs.Chunks || as.Comps != bs.Comps {
		t.Fatalf("chunk/component counts differ: %d/%d vs %d/%d",
			as.Chunks, as.Comps, bs.Chunks, bs.Comps)
	}
}

// FuzzIncrementalConnectivity drives random L∞-1 move sequences (plus the
// occasional ad-hoc add/remove) over a block planted on a four-chunk corner
// and checks the incremental path against the scratch-BFS and swarm oracles
// after every operation. The seed corpus aims at the seams: border
// oscillation, corner bridges, and a planted disconnect-and-return.
func FuzzIncrementalConnectivity(f *testing.F) {
	// Each op is two bytes: robot selector, then direction/op code.
	// Codes 0..8 move robot (selector % len) by the L∞ unit vector
	// (code%3-1, code/3-1); code 9 removes that robot; 10.. adds a cell at
	// a seam-heavy spot derived from the selector.
	f.Add([]byte{0, 5, 0, 5, 0, 3, 0, 3, 0, 5, 0, 5})        // east-west oscillation
	f.Add([]byte{1, 7, 1, 1, 1, 7, 1, 1, 2, 7, 2, 1})        // north-south oscillation
	f.Add([]byte{3, 9, 3, 10, 5, 9, 9, 9, 11, 12, 250, 200}) // removes + seam adds
	f.Add([]byte{0, 0, 1, 2, 2, 6, 3, 8, 4, 4, 5, 0, 6, 2})  // diagonal drifts
	f.Add([]byte{35, 5, 35, 5, 35, 5, 35, 5, 35, 3, 35, 3})  // walk a corner robot away and back
	f.Fuzz(func(t *testing.T, data []byte) {
		s := swarm.New()
		// 6×6 block spanning the four-chunk corner at (64, 64).
		for y := 61; y <= 66; y++ {
			for x := 61; x <= 66; x++ {
				s.Add(grid.Pt(x, y))
			}
		}
		d := NewDense(s, false)
		check := func() {
			t.Helper()
			incr, bfs, oracle := d.Connected(), d.ConnectedBFS(), s.Connected()
			if incr != bfs || incr != oracle {
				t.Fatalf("Connected diverged: incr=%v bfs=%v oracle=%v (n=%d)",
					incr, bfs, oracle, d.Len())
			}
		}
		check()
		for i := 0; i+1 < len(data) && i < 2*300; i += 2 {
			cells := s.Cells()
			if len(cells) == 0 {
				break
			}
			p := cells[int(data[i])%len(cells)]
			switch code := int(data[i+1]) % 12; {
			case code < 9:
				q := p.Add(grid.Pt(code%3-1, code/3-1))
				if q != p && !s.Has(q) {
					d.Remove(p)
					s.Remove(p)
					d.Add(q)
					s.Add(q)
				}
			case code == 9:
				d.Remove(p)
				s.Remove(p)
			default:
				// Seam-heavy insert near the corner, derived from the
				// selector byte.
				q := grid.Pt(62+int(data[i])%5, 62+int(data[i])/32)
				d.Add(q)
				s.Add(q)
			}
			check()
		}
		// A final full-oracle sweep (components, degrees, bounds).
		checkAgainstOracle(t, d, s, s.Cells())
	})
}

// TestLargestLiveComponent pins the degraded-mode ranking: components are
// ranked by live-robot count, not cell count, so a big heap of crashed
// robots never outranks the survivors, and the returned bounds cover only
// the live cells.
func TestLargestLiveComponent(t *testing.T) {
	// Component A: a 3×3 block at the origin, fully crashed (9 cells).
	// Component B: a 2-cell strip far away, fully live.
	cells := []grid.Point{}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			cells = append(cells, grid.Pt(x, y))
		}
	}
	cells = append(cells, grid.Pt(50, 0), grid.Pt(51, 0))
	d := connWorld(cells...)
	crashed := map[int32]bool{}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			crashed[d.SlotAt(grid.Pt(x, y))] = true
		}
	}
	live := func(s int32) bool { return !crashed[s] }

	n, b := d.LargestLiveComponent(live)
	if n != 2 {
		t.Fatalf("live count = %d, want 2 (the crashed 3×3 must not win)", n)
	}
	if b != (grid.Rect{MinX: 50, MinY: 0, MaxX: 51, MaxY: 0}) {
		t.Fatalf("live bounds = %v", b)
	}

	// A crashed cell inside the winning component is scenery: it affects
	// neither the count nor the bounds.
	d2 := connWorld(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	mid := d2.SlotAt(grid.Pt(1, 0))
	n2, b2 := d2.LargestLiveComponent(func(s int32) bool { return s != mid })
	if n2 != 2 || b2 != (grid.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 0}) {
		t.Fatalf("count/bounds with embedded crash = %d, %v", n2, b2)
	}

	// All-crashed world: no live component at all.
	n3, _ := d.LargestLiveComponent(func(int32) bool { return false })
	if n3 != 0 {
		t.Fatalf("all-crashed world reported %d live robots", n3)
	}

	// Tie on live count: first-wins over canonical order — the component
	// with the smaller minimum cell.
	d4 := connWorld(grid.Pt(0, 0), grid.Pt(10, 0))
	n4, b4 := d4.LargestLiveComponent(func(int32) bool { return true })
	if n4 != 1 || b4 != (grid.Rect{MinX: 0, MinY: 0, MaxX: 0, MaxY: 0}) {
		t.Fatalf("tie-break: %d, %v; want the canonical-first singleton", n4, b4)
	}
}
