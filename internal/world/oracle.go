package world

import (
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
)

// MapWorld is the map-backed reference backend: the engine's original
// representation (a swarm cell set plus point-keyed state/clock maps with
// double-buffered per-round scratch), kept for one PR as the differential
// oracle for Dense. It favors obviousness over speed.
type MapWorld struct {
	s     *swarm.Swarm
	state map[grid.Point]robot.State
	clock map[grid.Point]int // nil when clocks are off
	slot  map[grid.Point]int32

	occ          map[grid.Point]int // arrival counts of the round being built
	stateScratch map[grid.Point]robot.State
	clockScratch map[grid.Point]int
	slotScratch  map[grid.Point]int32

	cells      []grid.Point
	slots      []int32
	cellsValid bool
	conn       swarm.ConnScratch
}

var _ Backend = (*MapWorld)(nil)

// NewMapWorld builds the oracle backend over a clone of s.
func NewMapWorld(s *swarm.Swarm, withClocks bool) *MapWorld {
	m := &MapWorld{
		s:            s.Clone(),
		state:        make(map[grid.Point]robot.State),
		slot:         make(map[grid.Point]int32, s.Len()),
		occ:          make(map[grid.Point]int, s.Len()),
		stateScratch: make(map[grid.Point]robot.State),
		slotScratch:  make(map[grid.Point]int32, s.Len()),
	}
	if withClocks {
		m.clock = make(map[grid.Point]int, s.Len())
		m.clockScratch = make(map[grid.Point]int, s.Len())
	}
	for i, p := range m.s.Cells() {
		m.slot[p] = int32(i)
	}
	return m
}

// Len returns the number of robots.
func (m *MapWorld) Len() int { return m.s.Len() }

// Has reports whether cell p is occupied.
func (m *MapWorld) Has(p grid.Point) bool { return m.s.Has(p) }

// StateAt returns the run state of the robot at p.
func (m *MapWorld) StateAt(p grid.Point) robot.State { return m.state[p] }

// SetState overwrites the current-round state of the robot at p.
func (m *MapWorld) SetState(p grid.Point, st robot.State) {
	if st.HasRuns() {
		m.state[p] = st.Clone()
	} else {
		delete(m.state, p)
	}
}

// ClockAt returns the logical clock of the robot at p.
func (m *MapWorld) ClockAt(p grid.Point) int { return m.clock[p] }

// SlotAt returns the slot of the robot at p.
func (m *MapWorld) SlotAt(p grid.Point) int32 { return m.slot[p] }

// Bounds returns the smallest enclosing rectangle (full rescan — oracle).
func (m *MapWorld) Bounds() grid.Rect { return m.s.Bounds() }

// Gathered reports whether the swarm fits in a 2×2 square.
func (m *MapWorld) Gathered() bool { return m.s.Gathered() }

// Connected reports 4-connectivity, reusing BFS scratch.
func (m *MapWorld) Connected() bool { return m.conn.Connected(m.s) }

// Cells returns the occupied cells in sorted (Y, X) order.
func (m *MapWorld) Cells() []grid.Point {
	m.ensureCellViews()
	return m.cells
}

// Slots returns the slots aligned with Cells().
func (m *MapWorld) Slots() []int32 {
	m.ensureCellViews()
	return m.slots
}

func (m *MapWorld) ensureCellViews() {
	if m.cellsValid {
		return
	}
	m.cells = m.s.Cells()
	m.slots = m.slots[:0]
	for _, p := range m.cells {
		m.slots = append(m.slots, m.slot[p])
	}
	m.cellsValid = true
}

// Snapshot returns the live swarm (read-only by convention).
func (m *MapWorld) Snapshot() *swarm.Swarm { return m.s }

// BeginRound resets the next-round scratch maps.
func (m *MapWorld) BeginRound() {
	clear(m.occ)
	clear(m.stateScratch)
	clear(m.slotScratch)
	if m.clockScratch != nil {
		clear(m.clockScratch)
	}
}

// Arrive records the robot at from landing on dst.
func (m *MapWorld) Arrive(from, dst grid.Point) int {
	cnt := m.occ[dst] + 1
	m.occ[dst] = cnt
	if cnt == 1 {
		m.slotScratch[dst] = m.slot[from]
		return 1
	}
	delete(m.stateScratch, dst)
	return 2
}

// BeginSleep is a no-op for the oracle (it re-sorts at Commit anyway).
func (m *MapWorld) BeginSleep() {}

// Sleep records the robot at p staying in place with its state preserved.
func (m *MapWorld) Sleep(p grid.Point) int {
	cnt := m.Arrive(p, p)
	if cnt == 1 {
		if st := m.state[p]; st.HasRuns() {
			m.stateScratch[p] = st
		}
	}
	return cnt
}

// SetArrivalState sets the pending state of the sole arrival at dst.
func (m *MapWorld) SetArrivalState(dst grid.Point, st robot.State) {
	if st.HasRuns() {
		m.stateScratch[dst] = st.Clone()
	} else {
		delete(m.stateScratch, dst)
	}
}

// ArrivalState returns the pending state at dst.
func (m *MapWorld) ArrivalState(dst grid.Point) robot.State {
	return m.stateScratch[dst]
}

// ArrivalCount reports 0, 1 or 2 (≥ 2) arrivals at dst this round.
func (m *MapWorld) ArrivalCount(dst grid.Point) int {
	if cnt := m.occ[dst]; cnt < 2 {
		return cnt
	}
	return 2
}

// RaiseClock raises the survivor's pending clock at dst to at least cl.
func (m *MapWorld) RaiseClock(dst grid.Point, cl int) {
	if m.clockScratch == nil {
		return
	}
	if cl > m.clockScratch[dst] {
		m.clockScratch[dst] = cl
	}
}

// Commit rebuilds the swarm from the arrival counts and swaps the
// double-buffered maps, exactly as the pre-world engine did.
func (m *MapWorld) Commit() {
	next := swarm.NewSized(len(m.occ))
	for dst := range m.occ {
		next.Add(dst)
	}
	m.s = next
	m.state, m.stateScratch = m.stateScratch, m.state
	m.slot, m.slotScratch = m.slotScratch, m.slot
	if m.clock != nil {
		m.clock, m.clockScratch = m.clockScratch, m.clock
	}
	m.cellsValid = false
}
