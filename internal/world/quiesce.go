// Quiescence layer: the world-side half of the engine's dirty-region
// activation (see internal/fsync). The paper's strategy only moves robots
// on or near the swarm's boundary, so in a dense swarm almost every robot
// recomputes "stay put" every round. This layer lets the engine skip those
// recomputations soundly:
//
//   - Commit's tile diff (noteRoundDiff, shared with incremental
//     connectivity) finds every cell whose occupancy changed and dilates it
//     by the view radius into per-tile qdirty planes — a cumulative "your
//     view may have changed" mark per cell, cleared only when the robot on
//     the cell actually recomputes.
//   - qmask caches, per slot and per round phase (round mod the
//     algorithm's period), whether the robot's last clean recompute
//     returned the quiescent action (stay, keep nothing, transfer
//     nothing). The engine consults QuiesceSkip on the compute hot path
//     and records verdicts through QuiesceNote on its serial post-pass.
//
// Occupancy is not everything a view can see, so the engine adds targeted
// marks (MarkViewDirty) for changes the occupancy diff can't observe: run
// state rewrites on occupancy-stable cells, run transfers, merges onto
// sleepers, and crash-status flips. Ad-hoc world edits (Add/Remove/
// SetState) conservatively reset every cached verdict via QuiesceReset.
//
//gather:deterministic
package world

import "gridgather/internal/grid"

// EnableQuiescence switches the commit-time tile diff into view-dilation
// mode with the given view radius (L∞, 1..63) and allocates the per-slot
// verdict masks. All masks start empty, so every robot recomputes until
// its first clean verdict is recorded — a restore or a fresh world is
// always sound. The engine enables this once at construction; radius 0
// disables.
func (d *Dense) EnableQuiescence(radius int) {
	if radius <= 0 || radius > tileMask {
		d.qOn = false
		d.qmask = nil
		return
	}
	d.qOn = true
	d.qRadius = radius
	d.qmask = make([]uint32, len(d.states))
}

// QuiescenceEnabled reports whether the quiescence layer is active.
func (d *Dense) QuiescenceEnabled() bool { return d.qOn }

// QuiesceReset drops every cached quiescent verdict: the next activation
// of every robot recomputes. Dirty bits need no touch-up — an empty mask
// alone forces recomputation. Called after any out-of-protocol state edit
// (Add/Remove/SetState, engine test scaffolding).
func (d *Dense) QuiesceReset() {
	for i := range d.qmask {
		d.qmask[i] = 0
	}
}

// HasRunsAt reports whether the robot at p carries any active runs. p must
// be occupied. Read-only and safe to call from concurrent compute workers.
func (d *Dense) HasRunsAt(p grid.Point) bool {
	t := d.tileAt(p)
	return d.states[t.slots[d.cur][(p.Y&tileMask)<<tileShift|(p.X&tileMask)]].n != 0
}

// QuiesceSkip reports whether the robot at p may skip Look+Compute this
// activation: its cell is clean (no occupancy change landed within the
// view radius since its last recompute), its cached verdict for this round
// phase is "quiescent", and it still carries no runs. p must be occupied.
// Read-only and safe to call from concurrent compute workers.
//
//gather:hotpath
func (d *Dense) QuiesceSkip(p grid.Point, phase int) bool {
	t := d.tileAt(p)
	ry, rx := p.Y&tileMask, p.X&tileMask
	if t.qdirty[ry]&(1<<uint(rx)) != 0 {
		return false
	}
	slot := t.slots[d.cur][ry<<tileShift|rx]
	return d.qmask[slot]&(1<<uint(phase)) != 0 && d.states[slot].n == 0
}

// QuiesceNote records the verdict of a clean recompute for the robot at p:
// the cell's dirty bit is consumed (test-and-clear), a consumed dirty bit
// invalidates every phase's cached verdict (the view changed — the other
// phases were judged against the old view), and the current phase's bit is
// set or cleared per the fresh verdict. Serial-phase only. The engine must
// NOT call this for activations whose view was perturbed by sensor noise —
// the verdict would describe the flipped view, not the real one.
func (d *Dense) QuiesceNote(p grid.Point, phase int, quiescent bool) {
	t := d.tileAt(p)
	ry, rx := p.Y&tileMask, p.X&tileMask
	b := uint64(1) << uint(rx)
	slot := t.slots[d.cur][ry<<tileShift|rx]
	if t.qdirty[ry]&b != 0 {
		t.qdirty[ry] &^= b
		d.qmask[slot] = 0
	}
	if quiescent {
		d.qmask[slot] |= 1 << uint(phase)
	} else {
		d.qmask[slot] &^= 1 << uint(phase)
	}
}

// MarkViewDirty dirties every cell whose view includes p — the engine's
// hook for state changes the occupancy diff cannot see (run rewrites on
// occupancy-stable cells, transfers, merges onto sleepers, crash flips).
// Serial-phase only.
func (d *Dense) MarkViewDirty(p grid.Point) {
	if !d.qOn {
		return
	}
	lo, mid, hi := qsmear(0, 1<<uint(p.X&tileMask), 0, d.qRadius)
	d.qdilateRow(p.X>>tileShift, p.Y, lo, mid, hi)
}

// noteRoundDiff is Commit's tile diff, run once per round before the
// outgoing layer is cleared, feeding both consumers: chunks whose
// occupancy words changed are queued for the incremental connectivity
// relabel, and (when quiescence is on) each changed word is dilated by the
// view radius into the qdirty planes.
func (d *Dense) noteRoundDiff(old, nxt int) {
	conn := d.conn != nil && d.conn.valid
	if !conn && !d.qOn {
		return
	}
	for _, t := range d.live[nxt] {
		d.diffTile(t, old, nxt, conn)
	}
	for _, t := range d.live[old] {
		if !t.marked[nxt] {
			// The chunk emptied this round: no arrivals landed in it.
			d.diffTile(t, old, nxt, conn)
		}
	}
}

// diffTile compares one tile's two occupancy layers. The unmarked layer of
// a tile is all zero (clearOldLayer's invariant), so a plain word compare
// sees every change including tiles entered or emptied this round. The
// common steady-state case — an interior tile where nothing moved — costs
// one 512-byte array compare, exactly what the connectivity-only diff
// cost before quiescence existed.
//
//gather:hotpath
func (d *Dense) diffTile(t *tile, old, nxt int, conn bool) {
	if t.bits[old] == t.bits[nxt] {
		if conn && !t.marked[old] && t.marked[nxt] {
			// Pre-marked but unchanged (both layers all zero, or a tile
			// whose arrivals exactly recreated its occupancy): preserve the
			// connectivity layer's historical conservative marking.
			d.conn.markDirty(t)
		}
		return
	}
	if conn {
		d.conn.markDirty(t)
	}
	if !d.qOn {
		return
	}
	base := t.cy << tileShift
	for ry := 0; ry < tileSize; ry++ {
		w := t.bits[old][ry] ^ t.bits[nxt][ry]
		if w == 0 {
			continue
		}
		lo, mid, hi := qsmear(0, w, 0, d.qRadius)
		d.qdilateRow(t.cx, base|ry, lo, mid, hi)
	}
}

// qsmear dilates the set bits of the 192-bit window (lo, mid, hi) by r
// positions in both directions along x. Doubling shifts: after the set has
// been widened by c, every original bit owns a contiguous interval of
// width ≥ c+1 on each side, so the next shift may be up to c+1 without
// leaving gaps — ⌈log r⌉ rounds instead of r.
func qsmear(lo, mid, hi uint64, r int) (uint64, uint64, uint64) {
	for c, k := 0, 1; c < r; {
		if k > r-c {
			k = r - c
		}
		llo := lo << uint(k)
		lmid := mid<<uint(k) | lo>>uint(64-k)
		lhi := hi<<uint(k) | mid>>uint(64-k)
		rhi := hi >> uint(k)
		rmid := mid>>uint(k) | hi<<uint(64-k)
		rlo := lo>>uint(k) | mid<<uint(64-k)
		lo |= llo | rlo
		mid |= lmid | rmid
		hi |= lhi | rhi
		c += k
		k = c + 1
	}
	return lo, mid, hi
}

// qdilateRow ORs the dilated row mask (lo, mid, hi — chunk columns cx-1,
// cx, cx+1) into the qdirty planes of every row within the view radius of
// absolute row y. Nil tiles are skipped soundly: no robot lives there, and
// tiles are never deallocated, so any robot whose view spans the region
// has a live tile that does get marked.
func (d *Dense) qdilateRow(cx, y int, lo, mid, hi uint64) {
	r := d.qRadius
	y0, y1 := y-r, y+r
	cy0, cy1 := y0>>tileShift, y1>>tileShift
	for cy := cy0; cy <= cy1; cy++ {
		ry0, ry1 := 0, tileMask
		if cy == cy0 {
			ry0 = y0 & tileMask
		}
		if cy == cy1 {
			ry1 = y1 & tileMask
		}
		qdirtyCol(d.tileAtChunk(cx-1, cy), ry0, ry1, lo)
		qdirtyCol(d.tileAtChunk(cx, cy), ry0, ry1, mid)
		qdirtyCol(d.tileAtChunk(cx+1, cy), ry0, ry1, hi)
	}
}

// qdirtyCol ORs w into rows ry0..ry1 of t's qdirty plane.
func qdirtyCol(t *tile, ry0, ry1 int, w uint64) {
	if t == nil || w == 0 {
		return
	}
	for ry := ry0; ry <= ry1; ry++ {
		t.qdirty[ry] |= w
	}
}
