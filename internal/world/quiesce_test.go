package world

import (
	"math/rand"
	"testing"

	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// TestQsmear checks the doubling smear against a naive per-bit dilation
// for random 192-bit windows across every radius the layer accepts.
func TestQsmear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for r := 1; r <= tileMask; r++ {
		for trial := 0; trial < 50; trial++ {
			lo, mid, hi := rng.Uint64(), rng.Uint64(), rng.Uint64()
			if trial == 0 {
				lo, hi = 0, 0
				mid = 1 << uint(rng.Intn(64))
			}
			wantLo, wantMid, wantHi := uint64(0), uint64(0), uint64(0)
			for b := 0; b < 192; b++ {
				w := [3]uint64{lo, mid, hi}
				if w[b/64]&(1<<uint(b%64)) == 0 {
					continue
				}
				for d := -r; d <= r; d++ {
					if p := b + d; p >= 0 && p < 192 {
						switch p / 64 {
						case 0:
							wantLo |= 1 << uint(p%64)
						case 1:
							wantMid |= 1 << uint(p%64)
						default:
							wantHi |= 1 << uint(p%64)
						}
					}
				}
			}
			gotLo, gotMid, gotHi := qsmear(lo, mid, hi, r)
			if gotLo != wantLo || gotMid != wantMid || gotHi != wantHi {
				t.Fatalf("r=%d (%#x,%#x,%#x): qsmear = (%#x,%#x,%#x), want (%#x,%#x,%#x)",
					r, lo, mid, hi, gotLo, gotMid, gotHi, wantLo, wantMid, wantHi)
			}
		}
	}
}

// qWindow fingerprints the occupancy within L∞ radius r of p — everything
// the quiescence contract promises a clean cell's robot has already seen.
func qWindow(d *Dense, p grid.Point, r int) uint64 {
	sig := uint64(1)
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			sig *= 131
			if d.Has(grid.Pt(p.X+dx, p.Y+dy)) {
				sig |= 1
			}
		}
	}
	return sig
}

// qCheck is the soundness oracle pass: a robot whose cell QuiesceSkip
// clears must have an occupancy window identical to the one cached at its
// last recorded verdict; every other robot "recomputes" — recaches its
// window and records a fresh quiescent verdict.
func qCheck(t *testing.T, d *Dense, r int, cached map[int32]uint64) {
	t.Helper()
	cells := d.Cells()
	slots := d.Slots()
	for i, p := range cells {
		slot := slots[i]
		sig := qWindow(d, p, r)
		if d.QuiesceSkip(p, 0) {
			if want, ok := cached[slot]; !ok || want != sig {
				t.Fatalf("slot %d at %v skipped but its view changed (cached %#x, now %#x)",
					slot, p, want, sig)
			}
			continue
		}
		cached[slot] = sig
		d.QuiesceNote(p, 0, true)
	}
}

// FuzzQuiescenceSoundness drives random L∞ ≤ 1 move rounds, ad-hoc
// Add/Remove edits and explicit MarkViewDirty calls through the round
// protocol, asserting after every operation that the recompute set is a
// superset of the robots whose views actually changed: QuiesceSkip may
// clear a robot only if its radius-window occupancy is bit-identical to
// the window it last recomputed against. The seed corpus covers chunk
// seams (the initial cluster sits at the 0/63/64 boundary) and merges.
func FuzzQuiescenceSoundness(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 3, 0, 2, 5, 1, 10, 10, 0, 3, 7})
	f.Add([]byte{2, 0, 0, 3, 1, 1, 0, 4, 4, 0, 5, 8, 0, 6, 2})
	f.Add([]byte{1, 200, 200, 0, 7, 6, 0, 7, 6, 0, 7, 6, 2, 200, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		const radius = 3
		s := swarm.New()
		// A cluster straddling the chunk seam at 64, so dilation crosses
		// tile boundaries from the first operation.
		for y := 61; y < 67; y++ {
			for x := 61; x < 67; x++ {
				s.Add(grid.Pt(x, y))
			}
		}
		d := NewDense(s, false)
		d.EnableQuiescence(radius)
		cached := make(map[int32]uint64)
		qCheck(t, d, radius, cached)

		for i := 0; i+2 < len(data) && i < 3*120; i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			switch op & 3 {
			case 0: // one robot moves L∞ ≤ 1, everyone else stays
				cells := d.Cells()
				if len(cells) == 0 {
					return
				}
				mover := int(a) % len(cells)
				dir := grid.Pt(int(b%3)-1, int(b/3%3)-1)
				d.BeginRound()
				for j, p := range cells {
					dst := p
					if j == mover {
						dst = p.Add(dir)
					}
					d.Arrive(p, dst)
				}
				d.Commit()
			case 1: // ad-hoc Add near the cluster (resets every verdict)
				d.Add(grid.Pt(58+int(a)%12, 58+int(b)%12))
			case 2: // ad-hoc Remove (resets every verdict)
				cells := d.Cells()
				if len(cells) == 0 {
					return
				}
				d.Remove(cells[int(a)%len(cells)])
			case 3: // engine-style targeted mark: must force recompute nearby
				d.MarkViewDirty(grid.Pt(58+int(a)%12, 58+int(b)%12))
			}
			qCheck(t, d, radius, cached)
		}
	})
}
