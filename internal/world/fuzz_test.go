package world

import (
	"testing"

	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// FuzzOccupancy feeds arbitrary Add/Remove streams to Dense and the swarm
// oracle. Each op is three bytes: a control byte (bit 0 remove, bit 1
// stretch the coordinates far apart to exercise chunk-table growth) and
// two signed coordinate bytes. The seed corpus covers the chunk seams at
// 0/63/64 and the negative quadrants; `go test` replays it on every run.
func FuzzOccupancy(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 63, 63, 0, 64, 64, 1, 63, 63})
	f.Add([]byte{0, 255, 255, 0, 192, 192, 2, 100, 100, 2, 156, 156})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 1, 1, 0, 0, 3, 0, 2, 80, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := swarm.New()
		d := NewDense(s, false)
		var probes []grid.Point
		for i := 0; i+2 < len(data) && i < 3*200; i += 3 {
			x, y := int(int8(data[i+1])), int(int8(data[i+2]))
			if data[i]&2 != 0 {
				x *= 97
				y *= 131
			}
			p := grid.Pt(x, y)
			probes = append(probes, p)
			if data[i]&1 == 0 {
				d.Add(p)
				s.Add(p)
			} else {
				d.Remove(p)
				s.Remove(p)
			}
		}
		checkAgainstOracle(t, d, s, probes)
	})
}
