// Property and differential tests for the dense backend's occupancy
// semantics: arbitrary Add/Remove sequences — including negative
// coordinates, cells straddling chunk boundaries, and far-apart cells that
// force the chunk table to grow — must leave Dense agreeing with the
// map-backed swarm oracle on Has/Len/Bounds/Cells/Degree/Connected/
// Components.
package world

import (
	"math/rand"
	"testing"

	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
)

// checkAgainstOracle compares every occupancy observable of d against the
// swarm oracle.
func checkAgainstOracle(t *testing.T, d *Dense, s *swarm.Swarm, probes []grid.Point) {
	t.Helper()
	if d.Len() != s.Len() {
		t.Fatalf("Len: dense %d, oracle %d", d.Len(), s.Len())
	}
	if db, sb := d.Bounds(), s.Bounds(); db != sb {
		t.Fatalf("Bounds: dense %v, oracle %v", db, sb)
	}
	cells := d.Cells()
	oracle := s.Cells()
	if len(cells) != len(oracle) {
		t.Fatalf("Cells length: dense %d, oracle %d", len(cells), len(oracle))
	}
	for i := range cells {
		if cells[i] != oracle[i] {
			t.Fatalf("Cells[%d]: dense %v, oracle %v", i, cells[i], oracle[i])
		}
		if got, want := d.Degree(cells[i]), s.Degree(cells[i]); got != want {
			t.Fatalf("Degree(%v): dense %d, oracle %d", cells[i], got, want)
		}
	}
	for _, p := range probes {
		if got, want := d.Has(p), s.Has(p); got != want {
			t.Fatalf("Has(%v): dense %v, oracle %v", p, got, want)
		}
	}
	if got, want := d.Connected(), s.Connected(); got != want {
		t.Fatalf("Connected: dense %v, oracle %v", got, want)
	}
	dComps, sComps := d.Components(), s.Components()
	if len(dComps) != len(sComps) {
		t.Fatalf("Components count: dense %d, oracle %d", len(dComps), len(sComps))
	}
	for i := range dComps {
		if len(dComps[i]) != len(sComps[i]) {
			t.Fatalf("component %d size: dense %d, oracle %d", i, len(dComps[i]), len(sComps[i]))
		}
		for j := range dComps[i] {
			if dComps[i][j] != sComps[i][j] {
				t.Fatalf("component %d cell %d: dense %v, oracle %v", i, j, dComps[i][j], sComps[i][j])
			}
		}
	}
	if got, want := d.Gathered(), s.Gathered(); got != want {
		t.Fatalf("Gathered: dense %v, oracle %v", got, want)
	}
}

// applyOps replays an op stream (coordinate pairs with an add/remove bit)
// on a fresh Dense and swarm oracle, comparing after every step.
func applyOps(t *testing.T, ops []struct {
	p   grid.Point
	add bool
}, probes []grid.Point) {
	t.Helper()
	s := swarm.New()
	d := NewDense(s, false)
	for i, op := range ops {
		if op.add {
			d.Add(op.p)
			s.Add(op.p)
		} else {
			d.Remove(op.p)
			s.Remove(op.p)
		}
		if i%7 == 0 || i == len(ops)-1 {
			checkAgainstOracle(t, d, s, probes)
		}
	}
}

// TestDenseOccupancyProperty drives seeded random Add/Remove sequences
// over a coordinate range that crosses chunk boundaries in all four
// quadrants (chunk size 64: the range [-130, 130] spans five chunk columns
// including the negative-to-positive seam).
func TestDenseOccupancyProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ops []struct {
			p   grid.Point
			add bool
		}
		var pool []grid.Point
		for i := 0; i < 300; i++ {
			var p grid.Point
			if len(pool) > 0 && rng.Intn(3) == 0 {
				p = pool[rng.Intn(len(pool))] // revisit: duplicate adds / real removes
			} else {
				p = grid.Pt(rng.Intn(261)-130, rng.Intn(261)-130)
				pool = append(pool, p)
			}
			ops = append(ops, struct {
				p   grid.Point
				add bool
			}{p, rng.Intn(3) != 0})
		}
		probes := pool
		applyOps(t, ops, probes)
	}
}

// TestDenseFarApartGrowth places cells tens of thousands of cells apart —
// each Add lands outside the chunk table and forces it to grow — and
// checks the observables still match the oracle, including the
// multi-component Connected/Components answers.
func TestDenseFarApartGrowth(t *testing.T) {
	pts := []grid.Point{
		grid.Pt(0, 0), grid.Pt(1, 0),
		grid.Pt(20000, 3), grid.Pt(20001, 3),
		grid.Pt(-15000, -7), grid.Pt(-15000, -8),
		grid.Pt(5, 30000), grid.Pt(-3, -25000),
	}
	s := swarm.New()
	d := NewDense(s, false)
	for _, p := range pts {
		d.Add(p)
		s.Add(p)
		checkAgainstOracle(t, d, s, pts)
	}
	if d.Connected() {
		t.Fatal("far-apart cells reported connected")
	}
	for _, p := range pts[:4] {
		d.Remove(p)
		s.Remove(p)
		checkAgainstOracle(t, d, s, pts)
	}
}

// TestDenseConstructionMatchesWorkloads builds Dense from every seeded
// workload and checks the full observable surface, plus slot assignment in
// sorted cell order.
func TestDenseConstructionMatchesWorkloads(t *testing.T) {
	for _, w := range gen.SeededCatalog() {
		t.Run(w.Name, func(t *testing.T) {
			s := w.Build(80, 7)
			d := NewDense(s, false)
			checkAgainstOracle(t, d, s, s.Cells())
			for i, slot := range d.Slots() {
				if slot != int32(i) {
					t.Fatalf("initial slot %d = %d, want index order", i, slot)
				}
			}
			if snap := d.Snapshot(); !snap.Equal(s) {
				t.Fatal("Snapshot differs from source swarm")
			}
		})
	}
}

// TestSortNearSortedFallback feeds the insertion pass a fully reversed
// permutation — far past the shift budget — and checks the fallback still
// sorts correctly.
func TestSortNearSortedFallback(t *testing.T) {
	const n = 4096
	a := make([]cellSlot, n)
	for i := range a {
		a[i] = cellSlot{grid.Pt(n-i, 0), int32(i)}
	}
	sortNearSorted(a)
	for i := 1; i < n; i++ {
		if !a[i-1].p.Less(a[i].p) {
			t.Fatalf("not sorted at %d: %v then %v", i, a[i-1].p, a[i].p)
		}
	}
}

// TestDenseClocksDisabled pins the clocks-off contract: ClockAt is 0 and
// RaiseClock a no-op.
func TestDenseClocksDisabled(t *testing.T) {
	d := NewDense(swarm.New(grid.Pt(0, 0)), false)
	d.BeginRound()
	d.Arrive(grid.Pt(0, 0), grid.Pt(0, 0))
	d.SetArrivalState(grid.Pt(0, 0), robot.State{})
	d.RaiseClock(grid.Pt(0, 0), 9)
	d.Commit()
	if got := d.ClockAt(grid.Pt(0, 0)); got != 0 {
		t.Fatalf("ClockAt with clocks disabled = %d", got)
	}
}
