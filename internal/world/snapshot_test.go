package world

import (
	"errors"
	"testing"

	"gridgather/internal/codec"
	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
)

// buildWorld makes a dense world with a few planted run states and clocks.
func buildWorld(t *testing.T, withClocks bool) *Dense {
	t.Helper()
	d := NewDense(gen.RandomBlob(80, 7), withClocks)
	cells := d.Cells()
	for i, p := range cells {
		if i%5 == 0 {
			d.SetState(p, robot.State{Runs: []robot.Run{
				{ID: i + 1, Dir: grid.East, Inside: grid.North, Age: i},
			}})
		}
	}
	if withClocks {
		// Raise some clocks through the round protocol (Sleep keeps cells).
		d.BeginRound()
		for i, p := range cells {
			d.Sleep(p)
			d.RaiseClock(p, i%7)
		}
		d.Commit()
	}
	return d
}

func equalWorlds(t *testing.T, a, b *Dense) {
	t.Helper()
	ac, bc := a.Cells(), b.Cells()
	if len(ac) != len(bc) {
		t.Fatalf("population %d vs %d", len(ac), len(bc))
	}
	as, bs := a.Slots(), b.Slots()
	for i := range ac {
		if ac[i] != bc[i] || as[i] != bs[i] {
			t.Fatalf("cell/slot %d: %v/%d vs %v/%d", i, ac[i], as[i], bc[i], bs[i])
		}
		sa, sb := a.StateAt(ac[i]), b.StateAt(bc[i])
		if len(sa.Runs) != len(sb.Runs) {
			t.Fatalf("run count at %v: %d vs %d", ac[i], len(sa.Runs), len(sb.Runs))
		}
		for j := range sa.Runs {
			if sa.Runs[j] != sb.Runs[j] {
				t.Fatalf("run at %v: %+v vs %+v", ac[i], sa.Runs[j], sb.Runs[j])
			}
		}
		if a.ClockAt(ac[i]) != b.ClockAt(bc[i]) {
			t.Fatalf("clock at %v: %d vs %d", ac[i], a.ClockAt(ac[i]), b.ClockAt(bc[i]))
		}
	}
	if a.Bounds() != b.Bounds() || a.Len() != b.Len() {
		t.Fatalf("bounds/len diverged: %+v/%d vs %+v/%d", a.Bounds(), a.Len(), b.Bounds(), b.Len())
	}
}

func TestDenseSnapshotRoundTrip(t *testing.T) {
	for _, withClocks := range []bool{false, true} {
		d := buildWorld(t, withClocks)
		b := d.AppendState(nil)
		got, rest, err := DecodeDense(b, withClocks)
		if err != nil {
			t.Fatalf("clocks=%v: %v", withClocks, err)
		}
		if len(rest) != 0 {
			t.Fatalf("clocks=%v: %d trailing bytes", withClocks, len(rest))
		}
		equalWorlds(t, d, got)
		// Determinism: equal worlds produce equal bytes.
		if string(got.AppendState(nil)) != string(b) {
			t.Errorf("clocks=%v: re-encoded snapshot differs", withClocks)
		}
	}
}

// The decoded world must behave identically under the round protocol, not
// just read identically: run one arrival round on both and compare.
func TestDecodedWorldAdvances(t *testing.T) {
	d := buildWorld(t, true)
	b := d.AppendState(nil)
	got, _, err := DecodeDense(b, true)
	if err != nil {
		t.Fatal(err)
	}
	step := func(w *Dense) {
		cells := append([]grid.Point(nil), w.Cells()...)
		w.BeginRound()
		for _, p := range cells {
			w.Arrive(p, p.Add(grid.Pt(1, 0))) // shift east: some merges occur
		}
		w.Commit()
	}
	step(d)
	step(got)
	equalWorlds(t, d, got)
}

func TestDecodeDenseRejectsTruncation(t *testing.T) {
	d := buildWorld(t, true)
	full := d.AppendState(nil)
	for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if _, _, err := DecodeDense(full[:cut], true); err == nil {
			t.Errorf("cut at %d: expected error", cut)
		} else if !errors.Is(err, codec.ErrTruncated) {
			// Some prefixes decode into a structural error instead — both
			// reject, but truncation should dominate for short cuts.
			t.Logf("cut at %d: structural error %v", cut, err)
		}
	}
}

func TestDecodeDenseRejectsMismatchedClocks(t *testing.T) {
	d := buildWorld(t, false)
	b := d.AppendState(nil)
	if _, _, err := DecodeDense(b, true); err == nil {
		t.Error("expected clock-configuration mismatch error")
	}
}

func TestDecodeDenseRejectsCorruption(t *testing.T) {
	// Out-of-order cells: encode two cells swapped by hand.
	var b []byte
	b = codec.AppendUvarint(b, 2)   // slots
	b = codec.AppendBool(b, false)  // no clocks
	b = codec.AppendUvarint(b, 2)   // robots
	for i, x := range []int{5, 3} { // descending X on one row: not canonical
		b = codec.AppendInt(b, x)
		b = codec.AppendInt(b, 0)
		b = codec.AppendUvarint(b, uint64(i))
		b = codec.AppendUvarint(b, 0)
	}
	if _, _, err := DecodeDense(b, false); err == nil {
		t.Error("expected canonical-order error")
	}

	// Slot outside the slot space.
	b = nil
	b = codec.AppendUvarint(b, 1)
	b = codec.AppendBool(b, false)
	b = codec.AppendUvarint(b, 1)
	b = codec.AppendInt(b, 0)
	b = codec.AppendInt(b, 0)
	b = codec.AppendUvarint(b, 9) // slot 9 of 1
	b = codec.AppendUvarint(b, 0)
	if _, _, err := DecodeDense(b, false); err == nil {
		t.Error("expected slot-range error")
	}

	// Too many runs.
	b = nil
	b = codec.AppendUvarint(b, 1)
	b = codec.AppendBool(b, false)
	b = codec.AppendUvarint(b, 1)
	b = codec.AppendInt(b, 0)
	b = codec.AppendInt(b, 0)
	b = codec.AppendUvarint(b, 0)
	b = codec.AppendUvarint(b, robot.MaxRuns+1)
	if _, _, err := DecodeDense(b, false); err == nil {
		t.Error("expected run-count error")
	}
}
