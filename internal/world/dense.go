// Package world provides the engine's global state: occupancy, per-robot
// run states and logical clocks, the canonical sorted cell order, and the
// per-round apply protocol (arrivals, merges, state hand-offs).
//
// The single implementation is Dense, a tiled bitset occupancy index —
// 64-bit words over fixed 64×64-cell chunks, O(1) unchecked reads, no
// rebasing as the swarm shrinks — plus flat robot-indexed arrays for run
// states and logical clocks. Robots are identified by a stable slot
// assigned once at construction (in sorted cell order) and carried along as
// they move; a point→slot index lives in the chunk tiles and is maintained
// incrementally. The sorted cell order is repaired incrementally each round
// (robots move L∞ ≤ 1, so a near-sorted insertion pass replaces a full
// re-sort), and the enclosing bounds for the Gathered() check are
// accumulated from the round's arrivals instead of rescanned.
//
// (The original map-backed representation lived here for one PR as a
// differential oracle; the dense backend was proven bit-identical to it
// round by round and the oracle is gone. The engine's determinism bar is
// now serial-vs-parallel: see the differential tests in internal/fsync.)
//
// # Round protocol
//
// The engine owns the round semantics (merge rules, transfer death rules,
// clock maxing); the world only stores. Reads refer to the current
// (pre-round) occupancy; the round protocol builds the next round's
// occupancy, which Commit swaps in:
//
//	BeginRound
//	  Arrive(from, dst) for every activated robot, in canonical cell
//	  order of from; SetArrivalState after each sole-so-far arrival;
//	  RaiseClock after each arrival (when clocks are on)
//	BeginSleep
//	  Sleep(p) for every sleeping robot, in canonical cell order;
//	  RaiseClock after each (when clocks are on)
//	ArrivalCount / ArrivalState / SetArrivalState for transfer resolution
//	Commit
//
// # Sharded round protocol
//
// The protocol above is the single-lane view. For the chunk-owned parallel
// pipeline the same protocol runs over independent arrival lanes:
// BeginRoundShards(k) opens k lanes, Classify assigns every target cell a
// stable owner lane from its 64×64 chunk (and flags seam cells — within
// L∞ 1 of a chunk border — for the caller's serial conflict pass), and
// ArriveShard/SleepShard/BeginSleepShard are the per-lane protocol calls.
// Two arrivals can conflict only at the same target cell, and a cell's
// chunk has exactly one owner, so lanes touch disjoint tiles, slots and
// clock entries — the hot path takes no locks. Commit repairs each lane's
// order independently (in parallel when there are several) and k-way-merges
// the lanes into the canonical sorted order, which makes the result
// bit-identical to the single-lane protocol for every lane count.
//
//gather:deterministic
package world

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"gridgather/internal/codec"
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
)

const (
	tileShift = 6
	tileSize  = 1 << tileShift // 64×64 cells per chunk
	tileMask  = tileSize - 1
)

// tile is one 64×64-cell chunk. Occupancy is one uint64 word per row
// (bit x&63 of word y&63), double-buffered across the two round layers;
// multi marks cells that received more than one arrival in the round being
// built; vis is the BFS scratch plane for Connected/Components. The slot
// planes are only meaningful under set occupancy bits, so they are never
// cleared — stale entries are unreachable.
type tile struct {
	bits      [2][tileSize]uint64
	multi     [tileSize]uint64
	vis       [tileSize]uint64
	qdirty    [tileSize]uint64 // quiescence: cells whose view may have changed since the robot there last recomputed (cumulative; cleared per cell by QuiesceNote)
	marked    [2]bool          // on Dense.live[layer]: this tile may hold bits in that layer
	connDirty bool             // queued on connIncr.dirty (occupancy changed since the last relabel)
	cx, cy    int              // absolute chunk coordinates (set once at allocation)
	slots     [2][tileSize * tileSize]int32
}

// slotState is a robot's run state in flat storage: MaxRuns is tiny, so
// the runs are inlined and carrying a state is copy, not allocation.
type slotState struct {
	n    int8
	runs [robot.MaxRuns]robot.Run
}

// cellSlot pairs an occupied cell with the slot of the robot on it.
type cellSlot struct {
	p    grid.Point
	slot int32
}

// lane is one independent arrival buffer of the round being built: the
// arrivals of the robots whose target chunk the lane owns, split into an
// activated prefix (near-sorted) and a sleeper suffix (sorted), plus the
// lane's exact arrival bounds. buf is the lane-local merge scratch.
type lane struct {
	occ        []cellSlot
	buf        []cellSlot
	sleepStart int
	bounds     grid.Rect
}

// reset prepares the lane for a new round.
func (l *lane) reset() {
	l.occ = l.occ[:0]
	l.sleepStart = -1
	l.bounds = grid.EmptyRect
}

// repair sorts the lane: the activated prefix is repaired with a
// near-sorted insertion pass (robots move L∞ ≤ 1) and merged with the
// already-sorted sleeper suffix, leaving l.occ fully sorted.
func (l *lane) repair() {
	act := l.occ
	ss := l.sleepStart
	if ss < 0 || ss > len(act) {
		ss = len(act)
	}
	sortNearSorted(act[:ss])
	if ss == len(act) {
		return
	}
	out := l.buf[:0]
	a, b := act[:ss], act[ss:]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].p.Less(b[j].p) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	l.buf = act[:0]
	l.occ = out
}

// Dense is the tiled bitset world. Chunks are addressed through a dense
// chunk-grid table covering the swarm's (slightly padded) initial bounds;
// the table grows if a robot leaves it and never shrinks or rebases — the
// paper's swarm only contracts, so growth is a cold path.
type Dense struct {
	minCX, minCY int // chunk coordinate of table entry (0, 0)
	cols, rows   int
	tiles        []*tile    // nil = chunk never occupied
	live         [2][]*tile // tiles that may hold bits per layer — Commit and the BFS scratch clear only these, so the per-round cost tracks the live population, not the initial bounds
	cur          int        // active occupancy/slot layer (0 or 1)

	//gather:lane-owned
	states []slotState // slot → run state
	//gather:lane-owned
	clocks []int // slot → logical clock; nil when clocks are off

	count    int        // number of robots
	occ      []cellSlot // sorted (Y, X) cell order with slots
	occDirty bool       // occ needs a rebuild from the bitset (Add/Remove)
	//gather:lane-owned
	lanes      []lane // arrival lanes of the round being built
	nlanes     int    // lanes in use this round
	mergeHeads []int  // k-way merge cursors (Commit scratch)

	cellsBuf   []grid.Point // Cells() view of occ
	slotsBuf   []int32      // Slots() view of occ
	cellsValid bool

	bounds   grid.Rect
	boundsOK bool

	stack []grid.Point // BFS scratch

	conn    *connIncr // incremental connectivity (lazily built on first query)
	fullBFS bool      // pin Connected to the full-BFS path (escape hatch/oracle)
	runner  Runner    // optional persistent-pool fan-out for Commit's parallel phases

	// Quiescence layer (quiesce.go): Commit's tile diff dilates every
	// occupancy change by the view radius into the per-tile qdirty planes,
	// and qmask caches, per slot and per round phase, whether the robot's
	// last clean recompute returned the quiescent Stay.
	qOn     bool
	qRadius int
	//gather:shared-state
	qmask []uint32 // slot → per-phase quiescent-verdict bits

	// Persistent closures handed to runner by the commit path, built once
	// in ensureCommitFns: dispatching a fresh closure every round would
	// allocate on the hot path (hotalloc would flag it).
	repairFn func(int)
	clearFn  func(int)

	// Classify's chunk-locality cache: targets arrive in canonical (Y, X)
	// order, so runs of up to 64 consecutive calls hit the same chunk and
	// can skip the hash and the table walk. Valid within one round only.
	clsCX, clsCY int
	clsOwner     int
	clsOK        bool
}

// Runner executes f(0), …, f(k-1), returning once all calls completed —
// possibly concurrently (the engine installs its persistent worker pool
// here via SetRunner, so Commit's parallel phases stop spawning
// goroutines). With a nil runner the parallel phases run serially: the
// world spawns no goroutines of its own, which keeps the deterministic
// packages' no-spawn invariant checkable by detlint.
type Runner func(k int, f func(int))

// SetRunner installs the fan-out used by Commit's parallel lane repair and
// layer clears. The runner must execute every f(i) exactly once and return
// only after all complete.
func (d *Dense) SetRunner(r Runner) {
	d.runner = r
	d.ensureCommitFns()
}

// ensureCommitFns builds the persistent closures the commit path hands to
// the runner. Built here, outside the per-round path, so each round's
// dispatch passes a stored func value instead of allocating a capture.
func (d *Dense) ensureCommitFns() {
	if d.repairFn == nil {
		d.repairFn = func(i int) { d.lanes[i].repair() }
	}
	if d.clearFn == nil {
		d.clearFn = func(i int) {
			// Commit invokes clearLayers before flipping d.cur, so the
			// outgoing layer is still d.cur and the incoming one d.cur^1.
			if i == 0 {
				clearOldLayer(d.live[d.cur], d.cur)
			} else {
				clearMultiPlane(d.live[d.cur^1])
			}
		}
	}
}

// NewDense builds the dense world over the swarm's cells (the swarm is
// not retained). withClocks enables per-robot logical clock tracking
// (needed only under a scheduler).
func NewDense(s *swarm.Swarm, withClocks bool) *Dense {
	cells := s.Cells()
	d := &Dense{}
	d.initTable(s.Bounds())
	d.states = make([]slotState, len(cells))
	if withClocks {
		d.clocks = make([]int, len(cells))
	}
	d.occ = make([]cellSlot, len(cells))
	for i, p := range cells {
		slot := int32(i)
		d.occ[i] = cellSlot{p, slot}
		t := d.ensureTile(p)
		d.mark(d.cur, t)
		ry, rx := p.Y&tileMask, p.X&tileMask
		t.bits[d.cur][ry] |= 1 << uint(rx)
		t.slots[d.cur][ry<<tileShift|rx] = slot
	}
	d.count = len(cells)
	d.bounds = s.Bounds()
	d.boundsOK = true
	return d
}

// initTable sizes the chunk table to the bounds plus one chunk of margin
// per side, so ordinary L∞ ≤ 1 movement never grows the table.
func (d *Dense) initTable(b grid.Rect) {
	if b.Empty() {
		b = grid.Rect{MinX: 0, MinY: 0, MaxX: 0, MaxY: 0}
	}
	d.minCX = (b.MinX >> tileShift) - 1
	d.minCY = (b.MinY >> tileShift) - 1
	d.cols = (b.MaxX >> tileShift) + 1 - d.minCX + 1
	d.rows = (b.MaxY >> tileShift) + 1 - d.minCY + 1
	d.tiles = make([]*tile, d.cols*d.rows)
}

// tileAt returns the chunk containing p, or nil if none was ever occupied
// there.
func (d *Dense) tileAt(p grid.Point) *tile {
	cx := (p.X >> tileShift) - d.minCX
	cy := (p.Y >> tileShift) - d.minCY
	if uint(cx) >= uint(d.cols) || uint(cy) >= uint(d.rows) {
		return nil
	}
	return d.tiles[cy*d.cols+cx]
}

// ensureTile returns the chunk containing p, allocating it (and growing
// the chunk table) as needed. Serial-phase only: it mutates the shared
// chunk table.
//
//gather:shared-state
func (d *Dense) ensureTile(p grid.Point) *tile {
	cx, cy := p.X>>tileShift, p.Y>>tileShift
	ix, iy := cx-d.minCX, cy-d.minCY
	if uint(ix) >= uint(d.cols) || uint(iy) >= uint(d.rows) {
		d.grow(cx, cy)
		ix, iy = cx-d.minCX, cy-d.minCY
	}
	t := d.tiles[iy*d.cols+ix]
	if t == nil {
		t = &tile{cx: cx, cy: cy}
		d.tiles[iy*d.cols+ix] = t
	}
	return t
}

// tileAtChunk returns the chunk at absolute chunk coordinates (cx, cy), or
// nil if none was ever occupied there.
func (d *Dense) tileAtChunk(cx, cy int) *tile {
	ix, iy := cx-d.minCX, cy-d.minCY
	if uint(ix) >= uint(d.cols) || uint(iy) >= uint(d.rows) {
		return nil
	}
	return d.tiles[iy*d.cols+ix]
}

// mark puts t on the layer's live list the first time the layer writes
// into it. Serial-phase only: the live list is shared across lanes.
//
//gather:shared-state
func (d *Dense) mark(layer int, t *tile) {
	if !t.marked[layer] {
		t.marked[layer] = true
		d.live[layer] = append(d.live[layer], t)
	}
}

// grow extends the chunk table to cover chunk (cx, cy) with one chunk of
// fresh margin. Existing tiles keep their identity; only the table moves.
//
//gather:shared-state
func (d *Dense) grow(cx, cy int) {
	minCX := min(d.minCX, cx-1)
	minCY := min(d.minCY, cy-1)
	maxCX := max(d.minCX+d.cols-1, cx+1)
	maxCY := max(d.minCY+d.rows-1, cy+1)
	cols, rows := maxCX-minCX+1, maxCY-minCY+1
	tiles := make([]*tile, cols*rows)
	for y := 0; y < d.rows; y++ {
		copy(tiles[(y+d.minCY-minCY)*cols+(d.minCX-minCX):], d.tiles[y*d.cols:(y+1)*d.cols])
	}
	d.minCX, d.minCY, d.cols, d.rows, d.tiles = minCX, minCY, cols, rows, tiles
}

// Len returns the number of robots.
func (d *Dense) Len() int { return d.count }

// Has reports whether cell p is occupied. This is the view fast path: one
// bounds check, one table index, one bit test — no hashing, no closures.
func (d *Dense) Has(p grid.Point) bool {
	t := d.tileAt(p)
	return t != nil && t.bits[d.cur][p.Y&tileMask]&(1<<uint(p.X&tileMask)) != 0
}

// slotAt returns the slot stored for p in the given layer. The occupancy
// bit must be set.
func (d *Dense) slotAt(layer int, p grid.Point) int32 {
	return d.tileAt(p).slots[layer][(p.Y&tileMask)<<tileShift|(p.X&tileMask)]
}

// SlotAt returns the stable slot of the robot at p. Slots are assigned
// 0..n-1 in sorted cell order at construction, move with their robot, and
// are never reused after a merge, so they identify a robot across rounds.
// Calling it on a free cell is undefined.
func (d *Dense) SlotAt(p grid.Point) int32 { return d.slotAt(d.cur, p) }

// StateAt returns the run state of the robot at p (zero if free). The Runs
// slice aliases the flat state storage — read-only, valid until the state
// is rewritten; do not retain it across Commit.
func (d *Dense) StateAt(p grid.Point) robot.State {
	if !d.Has(p) {
		return robot.State{}
	}
	s := &d.states[d.slotAt(d.cur, p)]
	if s.n == 0 {
		return robot.State{}
	}
	return robot.State{Runs: s.runs[:s.n]}
}

// packState stores st into the flat slot storage, copying the runs.
func (d *Dense) packState(slot int32, st robot.State) {
	if len(st.Runs) > robot.MaxRuns {
		panic(fmt.Sprintf("world: %d runs exceed robot.MaxRuns", len(st.Runs)))
	}
	s := &d.states[slot]
	s.n = int8(copy(s.runs[:], st.Runs))
	for i := len(st.Runs); i < robot.MaxRuns; i++ {
		s.runs[i] = robot.Run{}
	}
}

// SetState overwrites the state of the robot at p in the current round
// (test scaffolding; p must be occupied). The runs are copied.
func (d *Dense) SetState(p grid.Point, st robot.State) {
	d.packState(d.slotAt(d.cur, p), st)
	d.QuiesceReset()
}

// ClockAt returns the logical clock of the robot at p (0 if free or clocks
// are disabled).
func (d *Dense) ClockAt(p grid.Point) int {
	if d.clocks == nil || !d.Has(p) {
		return 0
	}
	return d.clocks[d.slotAt(d.cur, p)]
}

// Bounds returns the smallest enclosing rectangle. Commit keeps it exact
// from the round's arrivals; only ad-hoc Remove calls force a rescan.
func (d *Dense) Bounds() grid.Rect {
	if !d.boundsOK {
		d.ensureOcc()
		r := grid.EmptyRect
		for _, c := range d.occ {
			r = r.Include(c.p)
		}
		d.bounds = r
		d.boundsOK = true
	}
	return d.bounds
}

// Gathered reports whether the swarm fits in a 2×2 square.
func (d *Dense) Gathered() bool { return d.count > 0 && d.Bounds().FitsIn2x2() }

// Degree returns the number of occupied 4-neighbors of p.
func (d *Dense) Degree(p grid.Point) int {
	n := 0
	for _, q := range grid.Neighbors4(p) {
		if d.Has(q) {
			n++
		}
	}
	return n
}

// Cells returns all occupied cells in sorted (Y, X) order. The slice is
// world-owned: read-only, valid until the next Commit.
func (d *Dense) Cells() []grid.Point {
	d.ensureCellViews()
	return d.cellsBuf
}

// Slots returns the slots aligned with Cells(), same ownership rules.
func (d *Dense) Slots() []int32 {
	d.ensureCellViews()
	return d.slotsBuf
}

// SlotCount returns the size of the slot space: every live slot is in
// [0, SlotCount). Slots are stable for a robot's lifetime and never reused
// after a merge, so per-slot side tables (the engine's crash marks) sized
// by SlotCount stay valid for the whole run.
func (d *Dense) SlotCount() int { return len(d.states) }

func (d *Dense) ensureCellViews() {
	if d.cellsValid {
		return
	}
	d.ensureOcc()
	d.cellsBuf = d.cellsBuf[:0]
	d.slotsBuf = d.slotsBuf[:0]
	for _, c := range d.occ {
		d.cellsBuf = append(d.cellsBuf, c.p)
		d.slotsBuf = append(d.slotsBuf, c.slot)
	}
	d.cellsValid = true
}

// Snapshot returns the occupancy as a fresh swarm (don't call it per round
// on hot paths).
func (d *Dense) Snapshot() *swarm.Swarm {
	d.ensureOcc()
	s := swarm.NewSized(d.count)
	for _, c := range d.occ {
		s.Add(c.p)
	}
	return s
}

// Add marks cell p occupied, assigning the robot a fresh slot. Outside the
// engine protocol this is construction/testing API; the engine's round
// path never calls it.
func (d *Dense) Add(p grid.Point) {
	if d.Has(p) {
		return
	}
	t := d.ensureTile(p)
	d.mark(d.cur, t)
	ry, rx := p.Y&tileMask, p.X&tileMask
	t.bits[d.cur][ry] |= 1 << uint(rx)
	t.slots[d.cur][ry<<tileShift|rx] = int32(len(d.states))
	d.states = append(d.states, slotState{})
	if d.clocks != nil {
		d.clocks = append(d.clocks, 0)
	}
	if d.qOn {
		d.qmask = append(d.qmask, 0)
		d.QuiesceReset()
	}
	d.count++
	if d.boundsOK {
		d.bounds = d.bounds.Include(p)
	}
	if d.conn != nil && d.conn.valid {
		d.conn.markDirty(t)
	}
	d.occDirty = true
	d.cellsValid = false
}

// Remove marks cell p free.
func (d *Dense) Remove(p grid.Point) {
	if !d.Has(p) {
		return
	}
	t := d.tileAt(p)
	t.bits[d.cur][p.Y&tileMask] &^= 1 << uint(p.X&tileMask)
	d.count--
	if d.boundsOK && (p.X == d.bounds.MinX || p.X == d.bounds.MaxX ||
		p.Y == d.bounds.MinY || p.Y == d.bounds.MaxY) {
		d.boundsOK = false
	}
	if d.conn != nil && d.conn.valid {
		d.conn.markDirty(t)
	}
	d.QuiesceReset()
	d.occDirty = true
	d.cellsValid = false
}

// ensureOcc rebuilds the sorted cell order from the bitset after ad-hoc
// Add/Remove edits. The engine's round path maintains occ incrementally
// and never hits this.
func (d *Dense) ensureOcc() {
	if !d.occDirty {
		return
	}
	d.occ = d.occ[:0]
	for ty := 0; ty < d.rows; ty++ {
		for ry := 0; ry < tileSize; ry++ {
			y := ((d.minCY + ty) << tileShift) | ry
			for tx := 0; tx < d.cols; tx++ {
				t := d.tiles[ty*d.cols+tx]
				if t == nil {
					continue
				}
				w := t.bits[d.cur][ry]
				for w != 0 {
					rx := bits.TrailingZeros64(w)
					w &= w - 1
					x := ((d.minCX + tx) << tileShift) | rx
					d.occ = append(d.occ, cellSlot{grid.Pt(x, y), t.slots[d.cur][ry<<tileShift|rx]})
				}
			}
		}
	}
	d.occDirty = false
}

// --- round protocol ---

// BeginRound resets the next-round scratch with a single arrival lane (the
// serial path).
func (d *Dense) BeginRound() { d.BeginRoundShards(1) }

// BeginRoundShards resets the next-round scratch with n independent
// arrival lanes. The caller routes every arrival to the lane owning its
// target chunk (see Classify); lanes then never contend on tiles, slots or
// clocks, so they are safe to fill from concurrent goroutines.
func (d *Dense) BeginRoundShards(n int) {
	for len(d.lanes) < n {
		d.lanes = append(d.lanes, lane{})
	}
	d.nlanes = n
	for i := 0; i < n; i++ {
		d.lanes[i].reset()
	}
	d.clsOK = false
}

// Classify returns the arrival lane owning dst's 64×64 chunk among
// `workers` lanes, and whether dst is a seam cell — within L∞ 1 of a chunk
// border, i.e. a cell whose 8-neighborhood spans more than one chunk. It
// also pre-marks dst's chunk live for the round being built, so the
// concurrent ArriveShard calls never touch the shared live list or grow
// the chunk table; call it serially for every target cell (activated dst
// and sleeper cell alike) before fanning out.
//
// Ownership hashes the absolute chunk coordinates, so it is stable across
// chunk-table growth and independent of the swarm's position.
func (d *Dense) Classify(dst grid.Point, workers int) (owner int, seam bool) {
	rx, ry := dst.X&tileMask, dst.Y&tileMask
	seam = rx == 0 || rx == tileMask || ry == 0 || ry == tileMask
	cx, cy := dst.X>>tileShift, dst.Y>>tileShift
	if d.clsOK && cx == d.clsCX && cy == d.clsCY {
		// Same chunk as the previous target: already marked this round,
		// owner already hashed.
		return d.clsOwner, seam
	}
	t := d.ensureTile(dst)
	d.mark(d.cur^1, t)
	owner = int(chunkHash(cx, cy) % uint64(workers))
	d.clsCX, d.clsCY, d.clsOwner, d.clsOK = cx, cy, owner, true
	return owner, seam
}

// chunkHash mixes absolute chunk coordinates into a stable pseudo-random
// ownership key (splitmix64-style finalizer, like sched's phase hash).
func chunkHash(cx, cy int) uint64 {
	x := uint64(int64(cx))*0x9e3779b97f4a7c15 ^ uint64(int64(cy))*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Arrive records the robot at from landing on dst on the single lane of
// the serial path. See ArriveShard.
func (d *Dense) Arrive(from, dst grid.Point) int { return d.ArriveShard(0, from, dst) }

// ArriveShard records the robot at from landing on dst (from == dst for a
// stay) on the given arrival lane, and returns 1 if it is the sole arrival
// at dst so far, or 2 if it merged with earlier arrivals. The first
// arrival's slot survives at dst; a merge clears any pending state at dst.
//
// Concurrent calls are safe when each lane runs on one goroutine and every
// dst was routed to the lane Classify owns it to: arrivals then write
// disjoint tiles, disjoint slot states and disjoint clock entries.
//
//gather:hotpath
func (d *Dense) ArriveShard(ln int, from, dst grid.Point) int {
	slot := d.slotAt(d.cur, from)
	nxt := d.cur ^ 1
	t := d.tileAt(dst)
	if t == nil || !t.marked[nxt] {
		// Cold path: only the single-lane protocol takes it (Classify
		// pre-marks every target of a sharded round).
		t = d.ensureTile(dst) //gather:lane-ok single-lane cold path, never taken sharded
		d.mark(nxt, t)        //gather:lane-ok single-lane cold path, never taken sharded
	}
	ry, rx := dst.Y&tileMask, dst.X&tileMask
	b := uint64(1) << uint(rx)
	if t.bits[nxt][ry]&b == 0 {
		t.bits[nxt][ry] |= b
		t.slots[nxt][ry<<tileShift|rx] = slot
		l := &d.lanes[ln]
		// The lane buffer was length-reset by lane.reset at round start and
		// reaches swarm-size capacity within the first rounds; growth after
		// that is a cold path the hint analysis cannot see from here.
		l.occ = append(l.occ, cellSlot{dst, slot}) //gather:alloc-ok capacity reset in lane.reset, steady-state reuse
		l.bounds = l.bounds.Include(dst)
		return 1
	}
	t.multi[ry] |= b
	d.states[t.slots[nxt][ry<<tileShift|rx]] = slotState{}
	return 2
}

// BeginSleep marks the end of the activated arrivals on the serial path's
// single lane.
func (d *Dense) BeginSleep() { d.BeginSleepShard(0) }

// BeginSleepShard marks the boundary between the lane's activated arrivals
// (a near-sorted prefix) and its sleeper arrivals (an exactly sorted
// suffix), so Commit can repair the prefix and merge the suffix.
func (d *Dense) BeginSleepShard(ln int) { d.lanes[ln].sleepStart = len(d.lanes[ln].occ) }

// Sleep records the robot at p staying in place on the serial path's
// single lane. See SleepShard.
func (d *Dense) Sleep(p grid.Point) int { return d.ArriveShard(0, p, p) }

// SleepShard records the robot at p staying put on the given lane. Its
// state lives in flat slot storage and is simply not rewritten — frozen
// for free. Merge handling is as in ArriveShard.
func (d *Dense) SleepShard(ln int, p grid.Point) int { return d.ArriveShard(ln, p, p) }

// SetArrivalState sets the pending next-round state of the sole robot at
// dst. The runs are copied; an empty state clears.
func (d *Dense) SetArrivalState(dst grid.Point, st robot.State) {
	d.packState(d.slotAt(d.cur^1, dst), st)
}

// ArrivalState returns the pending next-round state at dst.
func (d *Dense) ArrivalState(dst grid.Point) robot.State {
	s := &d.states[d.slotAt(d.cur^1, dst)]
	if s.n == 0 {
		return robot.State{}
	}
	return robot.State{Runs: s.runs[:s.n]}
}

// ArrivalCount returns how many robots arrived at dst this round: 0
// (none), 1 (sole survivor), or 2 (a merge happened; the exact count
// beyond two is not tracked).
func (d *Dense) ArrivalCount(dst grid.Point) int {
	t := d.tileAt(dst)
	if t == nil {
		return 0
	}
	ry := dst.Y & tileMask
	b := uint64(1) << uint(dst.X&tileMask)
	switch {
	case t.bits[d.cur^1][ry]&b == 0:
		return 0
	case t.multi[ry]&b != 0:
		return 2
	default:
		return 1
	}
}

// RaiseClock raises the pending logical clock of the survivor at dst to at
// least cl. No-op when clocks are disabled. In-place maxing is sound: the
// survivor's own arrival always raises its slot past the stale pre-round
// value before merge partners contribute, and under the sharded protocol
// only the lane owning dst ever writes the survivor's entry.
func (d *Dense) RaiseClock(dst grid.Point, cl int) {
	if d.clocks == nil {
		return
	}
	slot := d.slotAt(d.cur^1, dst)
	if cl > d.clocks[slot] {
		d.clocks[slot] = cl
	}
}

// Commit swaps the pending round in: occupancy, states, clocks and the
// sorted cell order all advance to the next round. Each lane's order is
// repaired independently — concurrently when the round ran sharded — and
// the lanes are then k-way merged into the canonical sorted order; the
// bounds come from the round's arrivals, and the outgoing layer's
// occupancy words are cleared to become the next round's scratch. Slot
// planes are never cleared (stale entries are unreachable) and the chunk
// table never rebases.
func (d *Dense) Commit() {
	lanes := d.lanes[:d.nlanes]
	if d.nlanes == 1 {
		d.commitSingle(&lanes[0])
	} else {
		d.commitSharded(lanes)
	}
	old := d.cur
	nxt := old ^ 1
	// One tile diff feeds both the incremental connectivity layer and the
	// quiescence dirty planes; it must run before the outgoing layer is
	// cleared (the comparison needs both layers intact).
	d.noteRoundDiff(old, nxt)
	d.clearLayers(old, nxt, d.nlanes > 1)
	d.cur = nxt
	d.count = len(d.occ)
	bounds := grid.EmptyRect
	for i := range lanes {
		bounds = unionRect(bounds, lanes[i].bounds)
	}
	d.bounds = bounds
	d.boundsOK = true
	d.occDirty = false
	d.cellsValid = false
}

// commitSingle is the serial path: repair the lone lane in place, then
// swap it with occ so the outgoing occ array becomes next round's lane
// scratch — no copy happens in the common no-sleeper round.
func (d *Dense) commitSingle(l *lane) {
	l.repair()
	d.occ, l.occ = l.occ, d.occ[:0]
}

// commitSharded repairs every lane — concurrently through the installed
// persistent-pool runner, serially without one — then k-way merges the
// sorted lanes into occ. Lane ownership is chunk-granular and cells sort
// by (Y, X), so each lane contributes long runs of consecutive cells (up
// to a chunk row at a time); the merge gallops — after the min-scan picks
// a lane it copies that lane's whole run below the runner-up head — so its
// cost is near one compare per cell rather than one min-scan per cell.
//
//gather:hotpath
func (d *Dense) commitSharded(lanes []lane) {
	if d.runner != nil {
		d.runner(len(lanes), d.repairFn)
	} else {
		for i := range lanes {
			lanes[i].repair()
		}
	}
	out := d.occ[:0]
	heads := d.mergeHeads[:0]
	for range lanes {
		heads = append(heads, 0)
	}
	d.mergeHeads = heads
	for {
		best, second := -1, -1
		for i := range lanes {
			if heads[i] >= len(lanes[i].occ) {
				continue
			}
			switch {
			case best < 0:
				best = i
			case lanes[i].occ[heads[i]].p.Less(lanes[best].occ[heads[best]].p):
				best, second = i, best
			case second < 0 || lanes[i].occ[heads[i]].p.Less(lanes[second].occ[heads[second]].p):
				second = i
			}
		}
		if best < 0 {
			break
		}
		l := lanes[best].occ
		h := heads[best]
		if second < 0 {
			// Only one lane left: drain it wholesale.
			out = append(out, l[h:]...)
			heads[best] = len(l)
			continue
		}
		// Everything in the best lane below the runner-up's head precedes
		// every other lane's remaining cells — copy the whole run.
		stop := lanes[second].occ[heads[second]].p
		j := h + 1
		for j < len(l) && l[j].p.Less(stop) {
			j++
		}
		out = append(out, l[h:j]...)
		heads[best] = j
	}
	d.occ = out
}

// clearLayers clears the outgoing layer (it becomes the next round's
// scratch) and the round's multi plane, touching only the tiles each layer
// actually wrote — as the swarm contracts, this tracks the live tiles, not
// the initial bounds. Sharded rounds with a runner clear the two planes
// concurrently through the persistent clearFn closure.
//
//gather:hotpath
func (d *Dense) clearLayers(old, nxt int, parallel bool) {
	if parallel && d.runner != nil && len(d.live[old])+len(d.live[nxt]) >= 4 {
		d.runner(2, d.clearFn)
	} else {
		clearOldLayer(d.live[old], old)
		clearMultiPlane(d.live[nxt])
	}
	d.live[old] = d.live[old][:0]
}

// clearOldLayer zeroes one layer's occupancy words and live marks.
func clearOldLayer(ts []*tile, layer int) {
	for _, t := range ts {
		t.bits[layer] = [tileSize]uint64{}
		t.marked[layer] = false
	}
}

// clearMultiPlane zeroes the round's multi-arrival plane.
func clearMultiPlane(ts []*tile) {
	for _, t := range ts {
		t.multi = [tileSize]uint64{}
	}
}

// unionRect returns the smallest rectangle containing both rectangles.
func unionRect(a, b grid.Rect) grid.Rect {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	return grid.Rect{
		MinX: min(a.MinX, b.MinX), MinY: min(a.MinY, b.MinY),
		MaxX: max(a.MaxX, b.MaxX), MaxY: max(a.MaxY, b.MaxY),
	}
}

// sortNearSorted sorts a by (Y, X) with an insertion pass that is O(n +
// inversions) — linear on the engine's near-sorted arrival streams. A
// shift budget bounds pathological rounds: past it, the remainder is
// handed to the standard sort (keys are unique, so the result is
// deterministic either way).
func sortNearSorted(a []cellSlot) {
	budget := 8*len(a) + 64
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		if !e.p.Less(a[j].p) {
			continue
		}
		for j >= 0 && e.p.Less(a[j].p) {
			a[j+1] = a[j]
			j--
			budget--
			if budget < 0 {
				a[j+1] = e
				sort.Slice(a, func(x, y int) bool { return a[x].p.Less(a[y].p) })
				return
			}
		}
		a[j+1] = e
	}
}

// --- snapshot codec ---

// AppendState appends the world's complete resumable state: the slot-space
// size, whether logical clocks are tracked, and every robot in canonical
// cell order with its cell, slot, run state and clock. Chunk-table layout,
// arrival lanes and scratch are not state — they are rebuilt on decode —
// so the encoding is deterministic: equal worlds produce equal bytes.
// Call it only between rounds (never mid-protocol).
func (d *Dense) AppendState(b []byte) []byte {
	d.ensureOcc()
	b = codec.AppendUvarint(b, uint64(len(d.states)))
	b = codec.AppendBool(b, d.clocks != nil)
	b = codec.AppendUvarint(b, uint64(len(d.occ)))
	for _, c := range d.occ {
		b = codec.AppendInt(b, c.p.X)
		b = codec.AppendInt(b, c.p.Y)
		b = codec.AppendUvarint(b, uint64(c.slot))
		st := &d.states[c.slot]
		b = codec.AppendUvarint(b, uint64(st.n))
		for _, r := range st.runs[:st.n] {
			b = appendRun(b, r)
		}
		if d.clocks != nil {
			b = codec.AppendUvarint(b, uint64(d.clocks[c.slot]))
		}
	}
	return b
}

func appendRun(b []byte, r robot.Run) []byte {
	b = codec.AppendUvarint(b, uint64(r.ID))
	b = codec.AppendInt(b, r.Dir.X)
	b = codec.AppendInt(b, r.Dir.Y)
	b = codec.AppendInt(b, r.Inside.X)
	b = codec.AppendInt(b, r.Inside.Y)
	b = codec.AppendUvarint(b, uint64(r.Phase))
	b = codec.AppendUvarint(b, uint64(r.StepsLeft))
	b = codec.AppendUvarint(b, uint64(r.Age))
	return b
}

func decodeRun(r *codec.Reader) robot.Run {
	return robot.Run{
		ID:        int(r.Uvarint()),
		Dir:       grid.Pt(r.Int(), r.Int()),
		Inside:    grid.Pt(r.Int(), r.Int()),
		Phase:     robot.Phase(r.Uvarint()),
		StepsLeft: int(r.Uvarint()),
		Age:       int(r.Uvarint()),
	}
}

// DecodeDense rebuilds a world from a snapshot written by AppendState and
// returns it with the unread remainder of b. withClocks must match the
// configuration the snapshot was taken under (the engine derives it from
// its scheduler); a mismatch, a truncated stream or structurally invalid
// data (cells out of canonical order, slots outside the encoded slot
// space, too many runs) is an error. The decoded world is bit-equivalent
// to the encoded one for every future round.
func DecodeDense(b []byte, withClocks bool) (*Dense, []byte, error) {
	r := codec.NewReader(b)
	numSlots := r.Uvarint()
	hasClocks := r.Bool()
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if hasClocks != withClocks {
		return nil, nil, fmt.Errorf("world: snapshot clocks=%v, configuration wants %v", hasClocks, withClocks)
	}
	if count > numSlots {
		return nil, nil, fmt.Errorf("world: snapshot has %d robots in %d slots", count, numSlots)
	}
	// Slot space can legitimately exceed the live population by any factor
	// (slots of merged robots are dead but still counted), so it cannot be
	// bounded by the stream length — only by the int32 slot type. Snapshots
	// are trusted local artifacts; validation here catches accidents and
	// version skew, not adversarial input.
	if numSlots > math.MaxInt32 {
		return nil, nil, fmt.Errorf("world: snapshot slot space %d exceeds int32", numSlots)
	}
	if count > uint64(r.Len()) { // every live robot takes ≥ 1 byte
		return nil, nil, fmt.Errorf("world: snapshot claims %d robots in %d bytes", count, r.Len())
	}
	d := &Dense{
		states: make([]slotState, numSlots),
		occ:    make([]cellSlot, 0, count),
	}
	if withClocks {
		d.clocks = make([]int, numSlots)
	}
	bounds := grid.EmptyRect
	var prev grid.Point
	for i := uint64(0); i < count; i++ {
		p := grid.Pt(r.Int(), r.Int())
		slot := r.Uvarint()
		nruns := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		if i > 0 && !prev.Less(p) {
			return nil, nil, fmt.Errorf("world: snapshot cells out of canonical order at %v", p)
		}
		prev = p
		if slot >= numSlots {
			return nil, nil, fmt.Errorf("world: snapshot slot %d outside %d slots", slot, numSlots)
		}
		if nruns > robot.MaxRuns {
			return nil, nil, fmt.Errorf("world: snapshot robot at %v holds %d runs (max %d)", p, nruns, robot.MaxRuns)
		}
		st := &d.states[slot]
		st.n = int8(nruns)
		for j := uint64(0); j < nruns; j++ {
			st.runs[j] = decodeRun(r)
		}
		if withClocks {
			d.clocks[slot] = int(r.Uvarint())
		}
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		d.occ = append(d.occ, cellSlot{p, int32(slot)})
		bounds = bounds.Include(p)
	}
	d.initTable(bounds)
	for _, c := range d.occ {
		t := d.ensureTile(c.p)
		d.mark(d.cur, t)
		ry, rx := c.p.Y&tileMask, c.p.X&tileMask
		t.bits[d.cur][ry] |= 1 << uint(rx)
		t.slots[d.cur][ry<<tileShift|rx] = c.slot
	}
	d.count = len(d.occ)
	d.bounds = bounds
	d.boundsOK = true
	return d, r.Rest(), nil
}

// --- connectivity ---

func (d *Dense) visGet(p grid.Point) bool {
	return d.tileAt(p).vis[p.Y&tileMask]&(1<<uint(p.X&tileMask)) != 0
}

func (d *Dense) visSet(p grid.Point) {
	d.tileAt(p).vis[p.Y&tileMask] |= 1 << uint(p.X&tileMask)
}

func (d *Dense) visClear() {
	// The BFS only ever marks occupied cells, so only the current layer's
	// live tiles can hold vis bits.
	for _, t := range d.live[d.cur] {
		t.vis = [tileSize]uint64{}
	}
}

// Connected reports 4-connectivity. By default it answers through the
// incremental connectivity layer (see connincr.go): per-chunk component
// labels maintained only for chunks whose occupancy changed, plus a small
// union-find over the chunk-boundary seam links — so a round where little
// moved costs far less than a full scan. ForceFullBFS pins it to the
// scratch-BFS path instead; the two are proven to agree answer-for-answer
// by the differential suites here and in internal/fsync.
func (d *Dense) Connected() bool {
	if d.fullBFS {
		return d.ConnectedBFS()
	}
	return d.connectedIncr()
}

// ForceFullBFS pins Connected to the full scratch-BFS path (the escape
// hatch and differential oracle), dropping any incremental state. Turning
// it back off rebuilds the incremental structure on the next query.
func (d *Dense) ForceFullBFS(on bool) {
	d.fullBFS = on
	if d.conn != nil {
		d.conn.invalidate()
	}
	if on {
		d.conn = nil
	}
}

// ConnStats returns the incremental connectivity layer's counters (zero
// if the layer was never queried).
func (d *Dense) ConnStats() ConnStats {
	if d.conn == nil {
		return ConnStats{}
	}
	return d.conn.stats
}

// ConnectedBFS reports 4-connectivity with the full bitset BFS, reusing
// internal scratch so the check allocates nothing in steady state. It is
// the incremental layer's fallback and its differential oracle.
func (d *Dense) ConnectedBFS() bool {
	d.ensureOcc()
	n := len(d.occ)
	if n <= 1 {
		return true
	}
	d.visClear()
	start := d.occ[0].p
	stack := append(d.stack[:0], start)
	d.visSet(start)
	seen := 1
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range grid.Neighbors4(p) {
			if d.Has(q) && !d.visGet(q) {
				d.visSet(q)
				seen++
				stack = append(stack, q)
			}
		}
	}
	d.stack = stack[:0]
	return seen == n
}

// Components returns the 4-connected components, each sorted, ordered by
// smallest cell — the swarm.Swarm contract, for the oracle property tests.
func (d *Dense) Components() [][]grid.Point {
	d.ensureOcc()
	d.visClear()
	var comps [][]grid.Point
	for _, c := range d.occ {
		if d.visGet(c.p) {
			continue
		}
		var comp []grid.Point
		stack := append(d.stack[:0], c.p)
		d.visSet(c.p)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, p)
			for _, q := range grid.Neighbors4(p) {
				if d.Has(q) && !d.visGet(q) {
					d.visSet(q)
					stack = append(stack, q)
				}
			}
		}
		d.stack = stack[:0]
		sort.Slice(comp, func(i, j int) bool { return comp[i].Less(comp[j]) })
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponent returns the largest 4-connected component's cell count,
// bounding box, and canonical minimum cell (the component's first cell in
// canonical order — a stable representative usable as a BFS seed). Ties go
// to the component with the smaller minimum cell. Size 0 means the world
// is empty. Like Connected it answers through the incremental layer —
// folding the per-chunk component summaries relabel maintains across the
// seam union-find — with the same conservative full-BFS fallback on cold
// or invalid structure, and ForceFullBFS pins it to the scratch BFS. The
// engine's graceful-degradation mode queries this every round, so the
// incremental path matters.
func (d *Dense) LargestComponent() (size int, bounds grid.Rect, seed grid.Point) {
	if d.count == 0 {
		return 0, grid.EmptyRect, grid.Point{}
	}
	if d.fullBFS {
		return d.LargestComponentBFS()
	}
	c := d.conn
	if c == nil {
		c = &connIncr{chunks: make(map[*tile]*chunkConn)}
		d.conn = c
	}
	c.stats.Queries++
	if !c.valid {
		c.stats.Fallbacks++
		size, bounds, seed = d.LargestComponentBFS()
		c.rebuild(d)
		return size, bounds, seed
	}
	for _, t := range c.dirty {
		t.connDirty = false
		c.refresh(d, t)
	}
	c.dirty = c.dirty[:0]
	return c.largest(d)
}

// LargestComponentBFS is the scratch-BFS implementation of
// LargestComponent: scan the canonical cell order, flood each unvisited
// component, keep the strictly largest — first-wins, which resolves ties
// to the component with the smallest cell, matching the incremental path.
// It is the fallback and the differential oracle.
func (d *Dense) LargestComponentBFS() (size int, bounds grid.Rect, seed grid.Point) {
	d.ensureOcc()
	d.visClear()
	bounds = grid.EmptyRect
	for _, c := range d.occ {
		if d.visGet(c.p) {
			continue
		}
		csize, cb := 0, grid.EmptyRect
		stack := append(d.stack[:0], c.p)
		d.visSet(c.p)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			csize++
			cb = cb.Include(p)
			for _, q := range grid.Neighbors4(p) {
				if d.Has(q) && !d.visGet(q) {
					d.visSet(q)
					stack = append(stack, q)
				}
			}
		}
		d.stack = stack[:0]
		if csize > size {
			size, bounds, seed = csize, cb, c.p
		}
	}
	return size, bounds, seed
}

// LargestLiveComponent floods every 4-connected component and returns the
// live-cell count and live-cell bounding box of the component holding the
// most live robots (first-wins on ties, resolving to the component whose
// canonical minimum cell is smallest). It answers the engine's
// degraded-mode gathering question — in which component should the
// survivors gather? — where the cell-count ranking of LargestComponent is
// wrong: a stranded heap of crashed robots can outrank the split-off
// survivors, yet can never gather. Always scratch BFS: the query only
// runs while degraded with crashed robots present, off the fault-free hot
// path.
func (d *Dense) LargestLiveComponent(live func(int32) bool) (n int, bounds grid.Rect) {
	d.ensureOcc()
	d.visClear()
	bounds = grid.EmptyRect
	for _, c := range d.occ {
		if d.visGet(c.p) {
			continue
		}
		clive, cb := 0, grid.EmptyRect
		stack := append(d.stack[:0], c.p)
		d.visSet(c.p)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if live(d.SlotAt(p)) {
				clive++
				cb = cb.Include(p)
			}
			for _, q := range grid.Neighbors4(p) {
				if d.Has(q) && !d.visGet(q) {
					d.visSet(q)
					stack = append(stack, q)
				}
			}
		}
		d.stack = stack[:0]
		if clive > n {
			n, bounds = clive, cb
		}
	}
	return n, bounds
}

// ComponentLiveBounds floods the component containing seed and returns how
// many of its cells hold a live robot (live(slot) == true) and the
// bounding box of those live cells only — the engine's degraded-mode
// gathering condition: crashed robots are immovable scenery, so only the
// survivors' bounds decide whether the component gathered.
func (d *Dense) ComponentLiveBounds(seed grid.Point, live func(int32) bool) (n int, bounds grid.Rect) {
	bounds = grid.EmptyRect
	if !d.Has(seed) {
		return 0, bounds
	}
	d.ensureOcc()
	d.visClear()
	stack := append(d.stack[:0], seed)
	d.visSet(seed)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live(d.SlotAt(p)) {
			n++
			bounds = bounds.Include(p)
		}
		for _, q := range grid.Neighbors4(p) {
			if d.Has(q) && !d.visGet(q) {
				d.visSet(q)
				stack = append(stack, q)
			}
		}
	}
	d.stack = stack[:0]
	return n, bounds
}
