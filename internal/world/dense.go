package world

import (
	"fmt"
	"math/bits"
	"sort"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
)

const (
	tileShift = 6
	tileSize  = 1 << tileShift // 64×64 cells per chunk
	tileMask  = tileSize - 1
)

// tile is one 64×64-cell chunk. Occupancy is one uint64 word per row
// (bit x&63 of word y&63), double-buffered across the two round layers;
// multi marks cells that received more than one arrival in the round being
// built; vis is the BFS scratch plane for Connected/Components. The slot
// planes are only meaningful under set occupancy bits, so they are never
// cleared — stale entries are unreachable.
type tile struct {
	bits   [2][tileSize]uint64
	multi  [tileSize]uint64
	vis    [tileSize]uint64
	marked [2]bool // on Dense.live[layer]: this tile may hold bits in that layer
	slots  [2][tileSize * tileSize]int32
}

// slotState is a robot's run state in flat storage: MaxRuns is tiny, so
// the runs are inlined and carrying a state is copy, not allocation.
type slotState struct {
	n    int8
	runs [robot.MaxRuns]robot.Run
}

// cellSlot pairs an occupied cell with the slot of the robot on it.
type cellSlot struct {
	p    grid.Point
	slot int32
}

// Dense is the tiled bitset backend. Chunks are addressed through a dense
// chunk-grid table covering the swarm's (slightly padded) initial bounds;
// the table grows if a robot leaves it and never shrinks or rebases — the
// paper's swarm only contracts, so growth is a cold path.
type Dense struct {
	minCX, minCY int // chunk coordinate of table entry (0, 0)
	cols, rows   int
	tiles        []*tile    // nil = chunk never occupied
	live         [2][]*tile // tiles that may hold bits per layer — Commit and the BFS scratch clear only these, so the per-round cost tracks the live population, not the initial bounds
	cur          int        // active occupancy/slot layer (0 or 1)

	states []slotState // slot → run state
	clocks []int       // slot → logical clock; nil when clocks are off

	count      int        // number of robots
	occ        []cellSlot // sorted (Y, X) cell order with slots
	occDirty   bool       // occ needs a rebuild from the bitset (Add/Remove)
	nextOcc    []cellSlot // arrivals of the round being built
	mergeBuf   []cellSlot // scratch for merging active and sleeper runs
	sleepStart int        // index in nextOcc where the sleeper suffix starts

	cellsBuf   []grid.Point // Cells() view of occ
	slotsBuf   []int32      // Slots() view of occ
	cellsValid bool

	bounds     grid.Rect
	boundsOK   bool
	nextBounds grid.Rect // exact bounds of the round being built

	stack []grid.Point // BFS scratch
}

var _ Backend = (*Dense)(nil)

// NewDense builds the dense backend over the swarm's cells (the swarm is
// not retained).
func NewDense(s *swarm.Swarm, withClocks bool) *Dense {
	cells := s.Cells()
	d := &Dense{sleepStart: -1}
	d.initTable(s.Bounds())
	d.states = make([]slotState, len(cells))
	if withClocks {
		d.clocks = make([]int, len(cells))
	}
	d.occ = make([]cellSlot, len(cells))
	for i, p := range cells {
		slot := int32(i)
		d.occ[i] = cellSlot{p, slot}
		t := d.ensureTile(p)
		d.mark(d.cur, t)
		ry, rx := p.Y&tileMask, p.X&tileMask
		t.bits[d.cur][ry] |= 1 << uint(rx)
		t.slots[d.cur][ry<<tileShift|rx] = slot
	}
	d.count = len(cells)
	d.bounds = s.Bounds()
	d.boundsOK = true
	return d
}

// initTable sizes the chunk table to the bounds plus one chunk of margin
// per side, so ordinary L∞ ≤ 1 movement never grows the table.
func (d *Dense) initTable(b grid.Rect) {
	if b.Empty() {
		b = grid.Rect{MinX: 0, MinY: 0, MaxX: 0, MaxY: 0}
	}
	d.minCX = (b.MinX >> tileShift) - 1
	d.minCY = (b.MinY >> tileShift) - 1
	d.cols = (b.MaxX >> tileShift) + 1 - d.minCX + 1
	d.rows = (b.MaxY >> tileShift) + 1 - d.minCY + 1
	d.tiles = make([]*tile, d.cols*d.rows)
}

// tileAt returns the chunk containing p, or nil if none was ever occupied
// there.
func (d *Dense) tileAt(p grid.Point) *tile {
	cx := (p.X >> tileShift) - d.minCX
	cy := (p.Y >> tileShift) - d.minCY
	if uint(cx) >= uint(d.cols) || uint(cy) >= uint(d.rows) {
		return nil
	}
	return d.tiles[cy*d.cols+cx]
}

// ensureTile returns the chunk containing p, allocating it (and growing
// the chunk table) as needed.
func (d *Dense) ensureTile(p grid.Point) *tile {
	cx, cy := p.X>>tileShift, p.Y>>tileShift
	ix, iy := cx-d.minCX, cy-d.minCY
	if uint(ix) >= uint(d.cols) || uint(iy) >= uint(d.rows) {
		d.grow(cx, cy)
		ix, iy = cx-d.minCX, cy-d.minCY
	}
	t := d.tiles[iy*d.cols+ix]
	if t == nil {
		t = &tile{}
		d.tiles[iy*d.cols+ix] = t
	}
	return t
}

// mark puts t on the layer's live list the first time the layer writes
// into it.
func (d *Dense) mark(layer int, t *tile) {
	if !t.marked[layer] {
		t.marked[layer] = true
		d.live[layer] = append(d.live[layer], t)
	}
}

// grow extends the chunk table to cover chunk (cx, cy) with one chunk of
// fresh margin. Existing tiles keep their identity; only the table moves.
func (d *Dense) grow(cx, cy int) {
	minCX := min(d.minCX, cx-1)
	minCY := min(d.minCY, cy-1)
	maxCX := max(d.minCX+d.cols-1, cx+1)
	maxCY := max(d.minCY+d.rows-1, cy+1)
	cols, rows := maxCX-minCX+1, maxCY-minCY+1
	tiles := make([]*tile, cols*rows)
	for y := 0; y < d.rows; y++ {
		copy(tiles[(y+d.minCY-minCY)*cols+(d.minCX-minCX):], d.tiles[y*d.cols:(y+1)*d.cols])
	}
	d.minCX, d.minCY, d.cols, d.rows, d.tiles = minCX, minCY, cols, rows, tiles
}

// Len returns the number of robots.
func (d *Dense) Len() int { return d.count }

// Has reports whether cell p is occupied. This is the view fast path: one
// bounds check, one table index, one bit test — no hashing, no closures.
func (d *Dense) Has(p grid.Point) bool {
	t := d.tileAt(p)
	return t != nil && t.bits[d.cur][p.Y&tileMask]&(1<<uint(p.X&tileMask)) != 0
}

// slotAt returns the slot stored for p in the given layer. The occupancy
// bit must be set.
func (d *Dense) slotAt(layer int, p grid.Point) int32 {
	return d.tileAt(p).slots[layer][(p.Y&tileMask)<<tileShift|(p.X&tileMask)]
}

// SlotAt returns the slot of the robot at p.
func (d *Dense) SlotAt(p grid.Point) int32 { return d.slotAt(d.cur, p) }

// StateAt returns the run state of the robot at p. The Runs slice aliases
// the flat state storage — read-only, valid until the state is rewritten.
func (d *Dense) StateAt(p grid.Point) robot.State {
	if !d.Has(p) {
		return robot.State{}
	}
	s := &d.states[d.slotAt(d.cur, p)]
	if s.n == 0 {
		return robot.State{}
	}
	return robot.State{Runs: s.runs[:s.n]}
}

// packState stores st into the flat slot storage, copying the runs.
func (d *Dense) packState(slot int32, st robot.State) {
	if len(st.Runs) > robot.MaxRuns {
		panic(fmt.Sprintf("world: %d runs exceed robot.MaxRuns", len(st.Runs)))
	}
	s := &d.states[slot]
	s.n = int8(copy(s.runs[:], st.Runs))
	for i := len(st.Runs); i < robot.MaxRuns; i++ {
		s.runs[i] = robot.Run{}
	}
}

// SetState overwrites the current-round state of the robot at p.
func (d *Dense) SetState(p grid.Point, st robot.State) {
	d.packState(d.slotAt(d.cur, p), st)
}

// ClockAt returns the logical clock of the robot at p.
func (d *Dense) ClockAt(p grid.Point) int {
	if d.clocks == nil || !d.Has(p) {
		return 0
	}
	return d.clocks[d.slotAt(d.cur, p)]
}

// Bounds returns the smallest enclosing rectangle. Commit keeps it exact
// from the round's arrivals; only ad-hoc Remove calls force a rescan.
func (d *Dense) Bounds() grid.Rect {
	if !d.boundsOK {
		d.ensureOcc()
		r := grid.EmptyRect
		for _, c := range d.occ {
			r = r.Include(c.p)
		}
		d.bounds = r
		d.boundsOK = true
	}
	return d.bounds
}

// Gathered reports whether the swarm fits in a 2×2 square.
func (d *Dense) Gathered() bool { return d.count > 0 && d.Bounds().FitsIn2x2() }

// Degree returns the number of occupied 4-neighbors of p.
func (d *Dense) Degree(p grid.Point) int {
	n := 0
	for _, q := range grid.Neighbors4(p) {
		if d.Has(q) {
			n++
		}
	}
	return n
}

// Cells returns the occupied cells in sorted (Y, X) order.
func (d *Dense) Cells() []grid.Point {
	d.ensureCellViews()
	return d.cellsBuf
}

// Slots returns the slots aligned with Cells().
func (d *Dense) Slots() []int32 {
	d.ensureCellViews()
	return d.slotsBuf
}

func (d *Dense) ensureCellViews() {
	if d.cellsValid {
		return
	}
	d.ensureOcc()
	d.cellsBuf = d.cellsBuf[:0]
	d.slotsBuf = d.slotsBuf[:0]
	for _, c := range d.occ {
		d.cellsBuf = append(d.cellsBuf, c.p)
		d.slotsBuf = append(d.slotsBuf, c.slot)
	}
	d.cellsValid = true
}

// Snapshot returns a fresh swarm with the current occupancy.
func (d *Dense) Snapshot() *swarm.Swarm {
	d.ensureOcc()
	s := swarm.NewSized(d.count)
	for _, c := range d.occ {
		s.Add(c.p)
	}
	return s
}

// Add marks cell p occupied, assigning the robot a fresh slot. Outside the
// engine protocol this is construction/testing API; the engine's round
// path never calls it.
func (d *Dense) Add(p grid.Point) {
	if d.Has(p) {
		return
	}
	t := d.ensureTile(p)
	d.mark(d.cur, t)
	ry, rx := p.Y&tileMask, p.X&tileMask
	t.bits[d.cur][ry] |= 1 << uint(rx)
	t.slots[d.cur][ry<<tileShift|rx] = int32(len(d.states))
	d.states = append(d.states, slotState{})
	if d.clocks != nil {
		d.clocks = append(d.clocks, 0)
	}
	d.count++
	if d.boundsOK {
		d.bounds = d.bounds.Include(p)
	}
	d.occDirty = true
	d.cellsValid = false
}

// Remove marks cell p free.
func (d *Dense) Remove(p grid.Point) {
	if !d.Has(p) {
		return
	}
	t := d.tileAt(p)
	t.bits[d.cur][p.Y&tileMask] &^= 1 << uint(p.X&tileMask)
	d.count--
	if d.boundsOK && (p.X == d.bounds.MinX || p.X == d.bounds.MaxX ||
		p.Y == d.bounds.MinY || p.Y == d.bounds.MaxY) {
		d.boundsOK = false
	}
	d.occDirty = true
	d.cellsValid = false
}

// ensureOcc rebuilds the sorted cell order from the bitset after ad-hoc
// Add/Remove edits. The engine's round path maintains occ incrementally
// and never hits this.
func (d *Dense) ensureOcc() {
	if !d.occDirty {
		return
	}
	d.occ = d.occ[:0]
	for ty := 0; ty < d.rows; ty++ {
		for ry := 0; ry < tileSize; ry++ {
			y := ((d.minCY + ty) << tileShift) | ry
			for tx := 0; tx < d.cols; tx++ {
				t := d.tiles[ty*d.cols+tx]
				if t == nil {
					continue
				}
				w := t.bits[d.cur][ry]
				for w != 0 {
					rx := bits.TrailingZeros64(w)
					w &= w - 1
					x := ((d.minCX + tx) << tileShift) | rx
					d.occ = append(d.occ, cellSlot{grid.Pt(x, y), t.slots[d.cur][ry<<tileShift|rx]})
				}
			}
		}
	}
	d.occDirty = false
}

// --- round protocol ---

// BeginRound resets the next-round scratch.
func (d *Dense) BeginRound() {
	d.nextOcc = d.nextOcc[:0]
	d.sleepStart = -1
	d.nextBounds = grid.EmptyRect
}

// Arrive records the robot at from landing on dst in the next layer. The
// first arrival carries its slot to dst; later arrivals merge — the multi
// bit is set and any pending survivor state is cleared.
func (d *Dense) Arrive(from, dst grid.Point) int {
	slot := d.slotAt(d.cur, from)
	t := d.ensureTile(dst)
	nxt := d.cur ^ 1
	d.mark(nxt, t)
	ry, rx := dst.Y&tileMask, dst.X&tileMask
	b := uint64(1) << uint(rx)
	if t.bits[nxt][ry]&b == 0 {
		t.bits[nxt][ry] |= b
		t.slots[nxt][ry<<tileShift|rx] = slot
		d.nextOcc = append(d.nextOcc, cellSlot{dst, slot})
		d.nextBounds = d.nextBounds.Include(dst)
		return 1
	}
	t.multi[ry] |= b
	d.states[t.slots[nxt][ry<<tileShift|rx]] = slotState{}
	return 2
}

// BeginSleep marks the boundary between the activated arrivals (a
// near-sorted prefix of nextOcc) and the sleeper arrivals (an exactly
// sorted suffix), so Commit can repair the prefix and merge the suffix.
func (d *Dense) BeginSleep() { d.sleepStart = len(d.nextOcc) }

// Sleep records the robot at p staying put. Its state lives in flat slot
// storage and is simply not rewritten — frozen for free.
func (d *Dense) Sleep(p grid.Point) int { return d.Arrive(p, p) }

// SetArrivalState sets the pending state of the sole arrival at dst.
func (d *Dense) SetArrivalState(dst grid.Point, st robot.State) {
	d.packState(d.slotAt(d.cur^1, dst), st)
}

// ArrivalState returns the pending state at dst.
func (d *Dense) ArrivalState(dst grid.Point) robot.State {
	s := &d.states[d.slotAt(d.cur^1, dst)]
	if s.n == 0 {
		return robot.State{}
	}
	return robot.State{Runs: s.runs[:s.n]}
}

// ArrivalCount reports 0, 1 or 2 (≥ 2) arrivals at dst this round.
func (d *Dense) ArrivalCount(dst grid.Point) int {
	t := d.tileAt(dst)
	if t == nil {
		return 0
	}
	ry := dst.Y & tileMask
	b := uint64(1) << uint(dst.X&tileMask)
	switch {
	case t.bits[d.cur^1][ry]&b == 0:
		return 0
	case t.multi[ry]&b != 0:
		return 2
	default:
		return 1
	}
}

// RaiseClock raises the survivor's pending clock at dst to at least cl.
// In-place maxing is sound: the survivor's own arrival always raises its
// slot past the stale pre-round value before merge partners contribute.
func (d *Dense) RaiseClock(dst grid.Point, cl int) {
	if d.clocks == nil {
		return
	}
	slot := d.slotAt(d.cur^1, dst)
	if cl > d.clocks[slot] {
		d.clocks[slot] = cl
	}
}

// Commit swaps the pending round in: the cell order is repaired with a
// near-sorted insertion pass (robots move L∞ ≤ 1) plus a merge with the
// already-sorted sleeper suffix, the bounds come from the round's
// arrivals, and the outgoing layer's occupancy words are cleared to become
// the next round's scratch. Slot planes are never cleared (stale entries
// are unreachable) and the chunk table never rebases.
func (d *Dense) Commit() {
	act := d.nextOcc
	ss := d.sleepStart
	if ss < 0 || ss > len(act) {
		ss = len(act)
	}
	sortNearSorted(act[:ss])
	if ss == len(act) {
		d.nextOcc = d.occ
		d.occ = act
	} else {
		out := d.mergeBuf[:0]
		a, b := act[:ss], act[ss:]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i].p.Less(b[j].p) {
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		out = append(out, b[j:]...)
		d.mergeBuf = d.occ[:0]
		d.occ = out
	}
	// Clear the outgoing layer (it becomes the next round's scratch) and
	// the round's multi plane, touching only the tiles each layer actually
	// wrote — as the swarm contracts, this tracks the live tiles, not the
	// initial bounds.
	old := d.cur
	nxt := old ^ 1
	for _, t := range d.live[old] {
		t.bits[old] = [tileSize]uint64{}
		t.marked[old] = false
	}
	d.live[old] = d.live[old][:0]
	for _, t := range d.live[nxt] {
		t.multi = [tileSize]uint64{}
	}
	d.cur = nxt
	d.count = len(d.occ)
	d.bounds = d.nextBounds
	d.boundsOK = true
	d.occDirty = false
	d.cellsValid = false
}

// sortNearSorted sorts a by (Y, X) with an insertion pass that is O(n +
// inversions) — linear on the engine's near-sorted arrival streams. A
// shift budget bounds pathological rounds: past it, the remainder is
// handed to the standard sort (keys are unique, so the result is
// deterministic either way).
func sortNearSorted(a []cellSlot) {
	budget := 8*len(a) + 64
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		if !e.p.Less(a[j].p) {
			continue
		}
		for j >= 0 && e.p.Less(a[j].p) {
			a[j+1] = a[j]
			j--
			budget--
			if budget < 0 {
				a[j+1] = e
				sort.Slice(a, func(x, y int) bool { return a[x].p.Less(a[y].p) })
				return
			}
		}
		a[j+1] = e
	}
}

// --- connectivity ---

func (d *Dense) visGet(p grid.Point) bool {
	return d.tileAt(p).vis[p.Y&tileMask]&(1<<uint(p.X&tileMask)) != 0
}

func (d *Dense) visSet(p grid.Point) {
	d.tileAt(p).vis[p.Y&tileMask] |= 1 << uint(p.X&tileMask)
}

func (d *Dense) visClear() {
	// The BFS only ever marks occupied cells, so only the current layer's
	// live tiles can hold vis bits.
	for _, t := range d.live[d.cur] {
		t.vis = [tileSize]uint64{}
	}
}

// Connected reports 4-connectivity. The BFS marks cells in the per-tile
// vis planes and reuses the stack buffer, so the per-round connectivity
// check allocates nothing in steady state.
func (d *Dense) Connected() bool {
	d.ensureOcc()
	n := len(d.occ)
	if n <= 1 {
		return true
	}
	d.visClear()
	start := d.occ[0].p
	stack := append(d.stack[:0], start)
	d.visSet(start)
	seen := 1
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range grid.Neighbors4(p) {
			if d.Has(q) && !d.visGet(q) {
				d.visSet(q)
				seen++
				stack = append(stack, q)
			}
		}
	}
	d.stack = stack[:0]
	return seen == n
}

// Components returns the 4-connected components, each sorted, ordered by
// smallest cell — the swarm.Swarm contract, for the oracle property tests.
func (d *Dense) Components() [][]grid.Point {
	d.ensureOcc()
	d.visClear()
	var comps [][]grid.Point
	for _, c := range d.occ {
		if d.visGet(c.p) {
			continue
		}
		var comp []grid.Point
		stack := append(d.stack[:0], c.p)
		d.visSet(c.p)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, p)
			for _, q := range grid.Neighbors4(p) {
				if d.Has(q) && !d.visGet(q) {
					d.visSet(q)
					stack = append(stack, q)
				}
			}
		}
		d.stack = stack[:0]
		sort.Slice(comp, func(i, j int) bool { return comp[i].Less(comp[j]) })
		comps = append(comps, comp)
	}
	return comps
}
