// Package world provides the engine's global-state backends: occupancy,
// per-robot run states and logical clocks, the canonical sorted cell order,
// and the per-round apply protocol (arrivals, merges, state hand-offs).
//
// Two implementations exist for this transition period:
//
//   - Dense (the default): a tiled bitset occupancy index — 64-bit words
//     over fixed 64×64-cell chunks, O(1) unchecked reads, no rebasing as
//     the swarm shrinks — plus flat robot-indexed arrays for run states and
//     logical clocks. Robots are identified by a stable slot assigned once
//     at construction (in sorted cell order) and carried along as they
//     move; a point→slot index lives in the chunk tiles and is maintained
//     incrementally. The sorted cell order is repaired incrementally each
//     round (robots move L∞ ≤ 1, so a near-sorted insertion pass replaces
//     a full re-sort), and the enclosing bounds for the Gathered() check
//     are accumulated from the round's arrivals instead of rescanned.
//
//   - MapWorld: the original hash-map representation (a swarm cell set
//     plus point-keyed state/clock maps), kept for one PR as the
//     differential-testing oracle. The determinism tests in internal/fsync
//     prove the dense backend bit-identical to it round by round.
//
// The engine owns the round semantics (merge rules, transfer death rules,
// clock maxing); a Backend only stores. Every Backend method is
// deterministic, so two backends driven by the same call sequence hold the
// same observable state.
package world

import (
	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
)

// Kind selects a backend implementation.
type Kind int

const (
	// DenseKind selects the tiled bitset + flat array backend (the
	// default).
	DenseKind Kind = iota
	// MapKind selects the map-backed reference backend, the differential
	// oracle the dense backend is tested against.
	MapKind
)

func (k Kind) String() string {
	switch k {
	case DenseKind:
		return "dense"
	case MapKind:
		return "map"
	default:
		return "world.Kind(?)"
	}
}

// Backend is the engine-facing world state. Reads refer to the current
// (pre-round) occupancy; the round protocol below builds the next round's
// occupancy, which Commit swaps in.
//
// The per-round protocol, driven by the engine, is:
//
//	BeginRound
//	  Arrive(from, dst) for every activated robot, in canonical cell
//	  order of from; SetArrivalState after each sole-so-far arrival;
//	  RaiseClock after each arrival (when clocks are on)
//	BeginSleep
//	  Sleep(p) for every sleeping robot, in canonical cell order;
//	  RaiseClock after each (when clocks are on)
//	ArrivalCount / ArrivalState / SetArrivalState for transfer resolution
//	Commit
type Backend interface {
	// Len returns the number of robots.
	Len() int
	// Has reports whether cell p is occupied.
	Has(p grid.Point) bool
	// StateAt returns the run state of the robot at p (zero if free). The
	// returned Runs slice may alias backend storage: treat it as read-only
	// and do not retain it across Commit.
	StateAt(p grid.Point) robot.State
	// SetState overwrites the state of the robot at p in the current
	// round (test scaffolding; p must be occupied). The runs are copied.
	SetState(p grid.Point, st robot.State)
	// ClockAt returns the logical clock of the robot at p (0 if free or
	// clocks are disabled).
	ClockAt(p grid.Point) int
	// SlotAt returns the stable slot of the robot at p. Slots are
	// assigned 0..n-1 in sorted cell order at construction, move with
	// their robot, and are never reused after a merge, so they identify a
	// robot across rounds. Calling it on a free cell is undefined.
	SlotAt(p grid.Point) int32
	// Bounds returns the smallest enclosing rectangle.
	Bounds() grid.Rect
	// Gathered reports whether the swarm fits in a 2×2 square.
	Gathered() bool
	// Connected reports 4-connectivity, reusing internal scratch so the
	// per-round connectivity check allocates nothing in steady state.
	Connected() bool
	// Cells returns all occupied cells in sorted (Y, X) order. The slice
	// is backend-owned: read-only, valid until the next Commit.
	Cells() []grid.Point
	// Slots returns the slots aligned with Cells(), same ownership rules.
	Slots() []int32
	// Snapshot returns the occupancy as a swarm (read-only by convention;
	// the dense backend builds a fresh copy, so don't call it per round on
	// hot paths).
	Snapshot() *swarm.Swarm

	// BeginRound resets the next-round scratch.
	BeginRound()
	// Arrive records the robot at from moving to dst (from == dst for a
	// stay) and returns 1 if it is the sole arrival at dst so far, or 2 if
	// it merged with earlier arrivals. The first arrival's slot survives
	// at dst; a merge clears any pending state at dst.
	Arrive(from, dst grid.Point) int
	// BeginSleep marks the end of the activated arrivals. The sleeping
	// robots that follow are passed in sorted order.
	BeginSleep()
	// Sleep records the robot at p staying in place with its state
	// preserved (frozen, not rewritten). Merge handling is as in Arrive.
	Sleep(p grid.Point) int
	// SetArrivalState sets the pending next-round state of the sole robot
	// at dst. The runs are copied; an empty state clears.
	SetArrivalState(dst grid.Point, st robot.State)
	// ArrivalState returns the pending next-round state at dst.
	ArrivalState(dst grid.Point) robot.State
	// ArrivalCount returns how many robots arrived at dst this round:
	// 0 (none), 1 (sole survivor), or 2 (a merge happened; the exact
	// count beyond two is not tracked).
	ArrivalCount(dst grid.Point) int
	// RaiseClock raises the pending logical clock of the survivor at dst
	// to at least cl. No-op when clocks are disabled.
	RaiseClock(dst grid.Point, cl int)
	// Commit swaps the pending round in: occupancy, states, clocks and
	// the sorted cell order all advance to the next round.
	Commit()
}

// New builds a backend of the given kind from the swarm (which is not
// retained by the dense backend and cloned by the map backend). withClocks
// enables per-robot logical clock tracking (needed only under a
// scheduler).
func New(kind Kind, s *swarm.Swarm, withClocks bool) Backend {
	if kind == MapKind {
		return NewMapWorld(s, withClocks)
	}
	return NewDense(s, withClocks)
}
