package scenario

import (
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
)

func TestResolveDefaults(t *testing.T) {
	s, err := Resolve("", "", 1, core.Defaults(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Algorithm.(*core.Gatherer); !ok {
		t.Errorf("default algorithm = %T, want *core.Gatherer", s.Algorithm)
	}
	if s.Scheduler != nil {
		t.Error("FSYNC must resolve to a nil engine scheduler (fast path)")
	}
	if want := fsync.DefaultBudget(100); s.Budget != want {
		t.Errorf("budget = %+v, want %+v", s.Budget, want)
	}
}

func TestResolveRelaxed(t *testing.T) {
	s, err := Resolve("greedy", "ssync-rr:3", 1, core.Defaults(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Algorithm.(asyncseq.Algorithm); !ok {
		t.Errorf("algorithm = %T, want asyncseq.Algorithm", s.Algorithm)
	}
	if s.Scheduler == nil {
		t.Fatal("relaxed scheduler must reach the engine")
	}
	if want := fsync.DefaultBudget(100).Scale(3); s.Budget != want {
		t.Errorf("budget = %+v, want %+v (fairness-scaled)", s.Budget, want)
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := Resolve("magic", "", 1, core.Defaults(), 10); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := Resolve("", "warp", 1, core.Defaults(), 10); err == nil {
		t.Error("expected error for unknown scheduler")
	}
	if err := CheckAlgorithm("greedy"); err != nil {
		t.Errorf("CheckAlgorithm(greedy): %v", err)
	}
	if err := CheckAlgorithm("magic"); err == nil {
		t.Error("CheckAlgorithm(magic) passed")
	}
}
