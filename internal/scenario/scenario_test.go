package scenario

import (
	"testing"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
)

func TestResolveDefaults(t *testing.T) {
	s, err := Resolve("", "", "", 1, core.Defaults(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Algorithm.(*core.Gatherer); !ok {
		t.Errorf("default algorithm = %T, want *core.Gatherer", s.Algorithm)
	}
	if s.Scheduler != nil {
		t.Error("FSYNC must resolve to a nil engine scheduler (fast path)")
	}
	if want := fsync.DefaultBudget(100); s.Budget != want {
		t.Errorf("budget = %+v, want %+v", s.Budget, want)
	}
}

func TestResolveRelaxed(t *testing.T) {
	s, err := Resolve("greedy", "ssync-rr:3", "", 1, core.Defaults(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Algorithm.(asyncseq.Algorithm); !ok {
		t.Errorf("algorithm = %T, want asyncseq.Algorithm", s.Algorithm)
	}
	if s.Scheduler == nil {
		t.Fatal("relaxed scheduler must reach the engine")
	}
	if want := fsync.DefaultBudget(100).Scale(3); s.Budget != want {
		t.Errorf("budget = %+v, want %+v (fairness-scaled)", s.Budget, want)
	}
}

// Seed 0 normalizes to 1 inside Resolve — the one place the rule lives —
// so every entry point (public API, sweep, checkpoint restore) agrees.
func TestResolveSeedZeroMeansOne(t *testing.T) {
	cells := gen.Hollow(8, 8).Cells()
	slots := make([]int32, len(cells))
	for i := range slots {
		slots[i] = int32(i)
	}
	for _, spec := range []string{"ssync-rand:3", "ssync-lazy:5"} {
		zero, err := Resolve("greedy", spec, "", 0, core.Defaults(), len(cells))
		if err != nil {
			t.Fatal(err)
		}
		one, err := Resolve("greedy", spec, "", 1, core.Defaults(), len(cells))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 20; round++ {
			mz := make([]bool, len(cells))
			mo := make([]bool, len(cells))
			zero.Scheduler.Activate(round, cells, slots, mz)
			one.Scheduler.Activate(round, cells, slots, mo)
			for i := range mz {
				if mz[i] != mo[i] {
					t.Fatalf("%s round %d: seed 0 diverged from seed 1 at %d", spec, round, i)
				}
			}
		}
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := Resolve("magic", "", "", 1, core.Defaults(), 10); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := Resolve("", "warp", "", 1, core.Defaults(), 10); err == nil {
		t.Error("expected error for unknown scheduler")
	}
	if _, err := Resolve("", "", "crash:p=7", 1, core.Defaults(), 10); err == nil {
		t.Error("expected error for invalid fault spec")
	}
	if err := CheckAlgorithm("greedy"); err != nil {
		t.Errorf("CheckAlgorithm(greedy): %v", err)
	}
	if err := CheckAlgorithm("magic"); err == nil {
		t.Error("CheckAlgorithm(magic) passed")
	}
}
