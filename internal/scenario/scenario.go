// Package scenario resolves the simulation scenario axes shared by the
// public API (gather.go) and the sweep harness (internal/sweep): the robot
// program ("paper" or "greedy"), the time model (a sched spec string), and
// the fairness-scaled canonical budget. Keeping the resolution in one place
// guarantees the two entry points cannot drift apart — the failure mode the
// canonical budget helper was introduced to eliminate.
//
//gather:deterministic
package scenario

import (
	"fmt"
	"strings"

	"gridgather/internal/baseline/asyncseq"
	"gridgather/internal/core"
	"gridgather/internal/fault"
	"gridgather/internal/fsync"
	"gridgather/internal/sched"
)

// Scenario is a resolved simulation setup for one instance.
type Scenario struct {
	// Algorithm is the robot program to run.
	Algorithm fsync.Algorithm
	// Scheduler is the engine's time model; nil means FSYNC and keeps the
	// engine's fast path.
	Scheduler sched.Scheduler
	// Faults is the fault-injection plan; nil means a clean, fault-free
	// run and keeps every engine fast path.
	Faults *fault.Plan
	// Budget is the canonical simulation budget scaled by the scheduler's
	// fairness bound. Apply caller overrides with Budget.WithOverrides.
	Budget fsync.Budget
}

// Algorithms lists the available robot program names.
func Algorithms() []string { return []string{"paper", "greedy"} }

// CheckAlgorithm validates a robot program name without building it.
func CheckAlgorithm(name string) error {
	switch name {
	case "", "paper", "greedy":
		return nil
	default:
		return fmt.Errorf("scenario: unknown algorithm %q (have %s)",
			name, strings.Join(Algorithms(), ", "))
	}
}

// Resolve builds the scenario for an n-robot instance. algorithm is ""
// or "paper" for the paper's algorithm (built from params, which must
// already be validated — core.NewGatherer panics on invalid parameters) and
// "greedy" for the scheduler-robust strategy (params ignored). scheduler is
// a sched.Parse spec; faults is a fault.Parse spec ("" for a clean run).
// seed feeds the randomized schedulers and unseeded fault clauses, with
// seed 0 normalized to 1 here — the single place that rule lives, so the
// public API, the sweep harness and checkpoint restoration cannot drift
// on it.
func Resolve(algorithm, scheduler, faults string, seed int64, params core.Params, n int) (Scenario, error) {
	if seed == 0 {
		seed = 1
	}
	sch, err := sched.Parse(scheduler, seed)
	if err != nil {
		return Scenario{}, err
	}
	var out Scenario
	switch algorithm {
	case "", "paper":
		out.Algorithm = core.NewGatherer(params)
	case "greedy":
		out.Algorithm = asyncseq.Algorithm{}
	default:
		return Scenario{}, CheckAlgorithm(algorithm)
	}
	if out.Faults, err = fault.Parse(faults, seed); err != nil {
		return Scenario{}, err
	}
	out.Budget = fsync.DefaultBudget(n).Scale(sch.Fairness(n))
	if !sched.IsFSYNC(sch) {
		out.Scheduler = sch
	}
	return out, nil
}
