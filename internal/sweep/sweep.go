// Package sweep is the concurrent experiment-sweep subsystem: it expands a
// grid of (workload family × swarm size × parameter set × scheduler ×
// fault plan × algorithm × seed) into simulation jobs, fans the jobs out
// across goroutines, and aggregates the per-run metrics (rounds, rounds/n,
// merges, moves, with mean/min/max and percentiles) into machine-readable
// (JSON, CSV) or human-readable (table) reports.
//
// The scheduler axis (internal/sched) sweeps the time model: FSYNC is the
// paper's setting; SSYNC and ASYNC specs measure how the algorithms behave
// under relaxed synchrony. The algorithm axis pairs with it: "paper" is the
// reproduction (proved for FSYNC only — under relaxed schedulers its merge
// operations can disconnect the swarm, which the sweep records as
// failures), "greedy" is the scheduler-robust strategy of
// internal/baseline/asyncseq that stays safe under every scheduler.
//
// Two levels of parallelism compose: Runner.Concurrency controls how many
// simulations run at once, and Job.EngineWorkers controls the worker pool
// inside each simulation's FSYNC engine (fsync.Config.Workers). For large
// sweeps of small instances, job-level concurrency alone saturates the
// machine; for few huge instances, engine workers help. Either way every
// individual simulation is fully deterministic, so sweep outputs are
// reproducible run to run.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gridgather"
	"gridgather/internal/core"
	"gridgather/internal/fault"
	"gridgather/internal/gen"
	"gridgather/internal/scenario"
	"gridgather/internal/sched"
	"gridgather/internal/swarm"
)

// Job is one simulation instance: a workload built at a size and seed,
// gathered under one parameter set.
type Job struct {
	// Workload is the family name (see gen.SeededCatalog).
	Workload string `json:"workload"`
	// N is the requested robot count (generators approximate it).
	N int `json:"n"`
	// Seed seeds randomized families; deterministic families ignore it.
	Seed int64 `json:"seed"`
	// Params are the algorithm constants for this run.
	Params core.Params `json:"params"`
	// Scheduler is the time-model spec (sched.Parse grammar); empty means
	// "fsync". Randomized schedulers are seeded from Seed.
	Scheduler string `json:"scheduler,omitempty"`
	// Algorithm names the robot program: "paper" (default, empty) or
	// "greedy" (the scheduler-robust strategy; ignores Params).
	Algorithm string `json:"algorithm,omitempty"`
	// Faults is the fault-injection spec (fault.Parse grammar); empty runs
	// fault-free. Clauses without an explicit "@seed" draw from Seed.
	Faults string `json:"faults,omitempty"`
	// MaxRounds aborts the run after this many rounds; 0 means the
	// canonical budget (fsync.DefaultBudget scaled by the scheduler's
	// fairness bound); negative values are rejected.
	MaxRounds int `json:"max_rounds,omitempty"`
	// NoMergeLimit is the stuck-watchdog window; 0 means the canonical
	// budget (scaled like MaxRounds), negative disables the watchdog.
	NoMergeLimit int `json:"no_merge_limit,omitempty"`
	// EngineWorkers is the FSYNC engine's compute worker count for this
	// run (fsync.Config.Workers); 0 here means 1, keeping job-level
	// concurrency as the default parallelism axis.
	EngineWorkers int `json:"engine_workers,omitempty"`
}

// Result is the outcome of one job, flattened for serialization.
type Result struct {
	// Job echoes the job that produced this result.
	Job Job `json:"job"`
	// Robots is the actual initial robot count of the built instance.
	Robots int `json:"robots"`
	// FinalRobots is the population after gathering.
	FinalRobots int `json:"final_robots"`
	// Gathered reports whether the swarm reached a 2×2 square.
	Gathered bool `json:"gathered"`
	// Rounds is the number of FSYNC rounds executed.
	Rounds int `json:"rounds"`
	// RoundsPerN is Rounds divided by Robots — the paper's O(n) claim
	// says this ratio is bounded by a constant.
	RoundsPerN float64 `json:"rounds_per_n"`
	// Merges counts robots removed by merges.
	Merges int `json:"merges"`
	// Moves counts individual robot hops.
	Moves int `json:"moves"`
	// RunsStarted counts the §3.2 run states created.
	RunsStarted int `json:"runs_started"`
	// Crashes counts the robots that crash-stopped (Job.Faults; 0 in a
	// clean run) and Degraded reports whether a fault disconnected the
	// swarm and the run continued on the largest surviving component.
	Crashes  int  `json:"crashes,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// QuiescentRatio is the fraction of activations the engine's quiescence
	// fast path replayed from cache instead of recomputing (0 when the fast
	// path is disabled for the run's configuration).
	QuiescentRatio float64 `json:"quiescent_ratio,omitempty"`
	// Err is the abort reason, empty on success.
	Err string `json:"err,omitempty"`
	// Duration is the wall-clock simulation time.
	Duration time.Duration `json:"duration_ns"`
}

// RunOne executes a single job synchronously by driving a public
// gridgather session end to end — the sweep harness consumes the same
// Simulation surface every other caller does, so the two cannot drift on
// budgets, seeds or scenario resolution. It is the primitive the Runner
// fans out, and also what the experiment harness (internal/exp) uses for
// its one-off instances.
//
// Job.Params contributes its (Radius, L) pair; the dependent constants are
// re-derived through core.WithConstants, which is where every parameter
// set in this codebase comes from (see the WithConstants doc).
func RunOne(job Job) Result {
	out := Result{Job: job}
	builder, err := builderFor(job.Workload)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	if err := job.Params.Validate(); err != nil {
		out.Err = err.Error()
		return out
	}
	if job.MaxRounds < 0 {
		out.Err = fmt.Sprintf("sweep: negative MaxRounds %d (0 selects the default budget)", job.MaxRounds)
		return out
	}
	s := builder(job.N, job.Seed)
	sim, err := gridgather.New(toPoints(s),
		gridgather.WithRadius(job.Params.Radius),
		gridgather.WithL(job.Params.L),
		gridgather.WithScheduler(job.Scheduler),
		gridgather.WithSchedulerSeed(job.Seed),
		gridgather.WithAlgorithm(job.Algorithm),
		gridgather.WithFaults(job.Faults),
		gridgather.WithMaxRounds(job.MaxRounds),
		gridgather.WithNoMergeLimit(job.NoMergeLimit),
		gridgather.WithWorkers(max(job.EngineWorkers, 1)),
	)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	// Duration measures the simulation itself — session construction
	// (swarm validation, scenario resolution) stays outside the timer.
	start := time.Now()
	res := sim.Run(context.Background())
	out.Duration = time.Since(start)
	out.Robots = res.InitialRobots
	out.FinalRobots = res.FinalRobots
	out.Gathered = res.Gathered
	out.Rounds = res.Rounds
	out.Merges = res.Merges
	out.Moves = res.Moves
	out.RunsStarted = res.RunsStarted
	out.Crashes = res.Crashes
	out.Degraded = res.Degraded
	out.QuiescentRatio = sim.Metrics().QuiescentRatio
	if res.InitialRobots > 0 {
		out.RoundsPerN = float64(res.Rounds) / float64(res.InitialRobots)
	}
	if res.Err != nil {
		out.Err = res.Err.Error()
	}
	return out
}

// Algorithms lists the robot programs available to sweeps.
func Algorithms() []string { return scenario.Algorithms() }

// toPoints converts a built swarm into the public API's point slice.
func toPoints(s *swarm.Swarm) []gridgather.Point {
	cells := s.Cells()
	out := make([]gridgather.Point, len(cells))
	for i, c := range cells {
		out[i] = gridgather.Point{X: c.X, Y: c.Y}
	}
	return out
}

// builderFor resolves a workload family name to its seeded builder.
func builderFor(name string) (func(n int, seed int64) *swarm.Swarm, error) {
	for _, w := range gen.SeededCatalog() {
		if w.Name == name {
			return w.Build, nil
		}
	}
	return nil, fmt.Errorf("sweep: unknown workload %q (have %v)", name, Families())
}

// isRandom reports whether the named family's builder depends on the seed.
func isRandom(name string) (bool, error) {
	for _, w := range gen.SeededCatalog() {
		if w.Name == name {
			return w.Random, nil
		}
	}
	return false, fmt.Errorf("sweep: unknown workload %q (have %v)", name, Families())
}

// Families lists the workload family names available to sweeps.
func Families() []string {
	var out []string
	for _, w := range gen.SeededCatalog() {
		out = append(out, w.Name)
	}
	return out
}

// Runner fans jobs out across goroutines. The zero value runs with
// GOMAXPROCS-many concurrent simulations.
type Runner struct {
	// Concurrency is the number of simulations in flight; 0 means
	// runtime.GOMAXPROCS(0).
	Concurrency int
	// OnResult, if non-nil, is called once per completed job, serialized
	// (never concurrently), in completion order. Used for progress output.
	OnResult func(Result)
}

// Run executes every job and returns results in job order (results[i]
// belongs to jobs[i]), regardless of concurrency or completion order.
func (r Runner) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	workers := r.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			results[i] = RunOne(job)
			if r.OnResult != nil {
				r.OnResult(results[i])
			}
		}
		return results
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex // serializes OnResult
		index = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range index {
				results[i] = RunOne(jobs[i])
				if r.OnResult != nil {
					mu.Lock()
					r.OnResult(results[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		index <- i
	}
	close(index)
	wg.Wait()
	return results
}

// Spec declares a sweep grid. Jobs expands it into the cross product of
// workloads × sizes × parameter sets × schedulers × algorithms × seeds,
// skipping redundant seeds when neither the workload builder nor the
// scheduler depends on them.
type Spec struct {
	// Workloads are family names from gen.SeededCatalog; empty means all.
	Workloads []string
	// Sizes are the requested robot counts; required.
	Sizes []int
	// Seeds seed the randomized families; empty means {42}. Deterministic
	// families run once per (size, params) with the first seed only.
	Seeds []int64
	// Params are the algorithm parameter sets; empty means
	// {core.Defaults()}.
	Params []core.Params
	// Schedulers are time-model specs (sched.Parse grammar); empty means
	// {"fsync"}.
	Schedulers []string
	// Algorithms are robot program names (see Algorithms); empty means
	// {"paper"}.
	Algorithms []string
	// Faults are fault-injection specs (fault.Parse grammar); empty means
	// {""} (fault-free). Specs whose clauses lack an explicit "@seed" draw
	// their fault schedule from each job's seed.
	Faults []string
	// EngineWorkers is copied to every job (see Job.EngineWorkers).
	EngineWorkers int
}

// Jobs expands the spec into concrete jobs in deterministic order
// (workload-major, then size, then params, then scheduler, then faults,
// then algorithm, then seed).
func (s Spec) Jobs() ([]Job, error) {
	if len(s.Sizes) == 0 {
		return nil, fmt.Errorf("sweep: spec has no sizes")
	}
	families := s.Workloads
	if len(families) == 0 {
		for _, w := range gen.SeededCatalog() {
			families = append(families, w.Name)
		}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{42}
	}
	params := s.Params
	if len(params) == 0 {
		params = []core.Params{core.Defaults()}
	}
	schedulers := s.Schedulers
	if len(schedulers) == 0 {
		schedulers = []string{"fsync"}
	}
	algorithms := s.Algorithms
	if len(algorithms) == 0 {
		algorithms = []string{"paper"}
	}
	for _, a := range algorithms {
		if err := scenario.CheckAlgorithm(a); err != nil {
			return nil, err
		}
	}
	// Validate scheduler specs once, up front — a bad spec must fail the
	// expansion, not surface as per-job errors mid-sweep.
	schedRandom := make(map[string]bool, len(schedulers))
	for _, spec := range schedulers {
		r, err := sched.Randomized(spec)
		if err != nil {
			return nil, err
		}
		schedRandom[spec] = r
	}
	faults := s.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	// Likewise fault specs: validate once, and record which specs draw
	// their fault schedule from the job seed (any clause without "@seed").
	faultSeeded := make(map[string]bool, len(faults))
	for _, spec := range faults {
		fs, err := fault.Seeded(spec)
		if err != nil {
			return nil, err
		}
		faultSeeded[spec] = fs
	}
	var jobs []Job
	for _, name := range families {
		random, err := isRandom(name)
		if err != nil {
			return nil, err
		}
		for _, n := range s.Sizes {
			if n < 1 {
				return nil, fmt.Errorf("sweep: size %d", n)
			}
			for _, p := range params {
				if err := p.Validate(); err != nil {
					return nil, fmt.Errorf("sweep: %w", err)
				}
				for _, scheduler := range schedulers {
					for _, faultSpec := range faults {
						// Skip redundant seeds only when neither the
						// workload builder, the scheduler, nor the fault
						// plan depends on the seed.
						jobSeeds := seeds
						if !random && !schedRandom[scheduler] && !faultSeeded[faultSpec] {
							jobSeeds = seeds[:1]
						}
						for _, algorithm := range algorithms {
							for _, seed := range jobSeeds {
								jobs = append(jobs, Job{
									Workload:      name,
									N:             n,
									Seed:          seed,
									Params:        p,
									Scheduler:     scheduler,
									Algorithm:     algorithm,
									Faults:        faultSpec,
									EngineWorkers: s.EngineWorkers,
								})
							}
						}
					}
				}
			}
		}
	}
	return jobs, nil
}
