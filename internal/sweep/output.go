package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Report bundles a sweep's raw results with their aggregates, the shape
// WriteJSON emits for downstream tooling.
type Report struct {
	// Results are the per-run outcomes in job order.
	Results []Result `json:"results"`
	// Aggregates summarize the results per (workload, n, params) group.
	Aggregates []Aggregate `json:"aggregates"`
}

// NewReport builds a Report from job-ordered results.
func NewReport(results []Result) Report {
	return Report{Results: results, Aggregates: Aggregated(results)}
}

// WriteJSON writes v (a Report, []Result or []Aggregate) as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteResultsCSV writes one CSV row per run, with a header row.
func WriteResultsCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "n", "seed", "radius", "l", "scheduler", "algorithm", "faults",
		"robots", "final_robots",
		"gathered", "rounds", "rounds_per_n", "merges", "moves",
		"runs_started", "crashes", "degraded", "quiescent_ratio", "err", "duration_ms",
	}); err != nil {
		return err
	}
	canon := schedCanonicalizer()
	canonF := faultCanonicalizer()
	for _, r := range results {
		rec := []string{
			r.Job.Workload,
			fmt.Sprint(r.Job.N),
			fmt.Sprint(r.Job.Seed),
			fmt.Sprint(r.Job.Params.Radius),
			fmt.Sprint(r.Job.Params.L),
			canon(r.Job.Scheduler),
			canonicalAlgorithm(r.Job.Algorithm),
			canonF(r.Job.Faults),
			fmt.Sprint(r.Robots),
			fmt.Sprint(r.FinalRobots),
			fmt.Sprint(r.Gathered),
			fmt.Sprint(r.Rounds),
			fmt.Sprintf("%.4f", r.RoundsPerN),
			fmt.Sprint(r.Merges),
			fmt.Sprint(r.Moves),
			fmt.Sprint(r.RunsStarted),
			fmt.Sprint(r.Crashes),
			fmt.Sprint(r.Degraded),
			fmt.Sprintf("%.4f", r.QuiescentRatio),
			r.Err,
			fmt.Sprintf("%.3f", float64(r.Duration.Microseconds())/1000),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAggregatesCSV writes one CSV row per aggregate group, with a header
// row.
func WriteAggregatesCSV(w io.Writer, aggs []Aggregate) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "n", "radius", "l", "scheduler", "algorithm", "faults",
		"runs", "failures", "degraded", "robots",
		"rounds_mean", "rounds_min", "rounds_max", "rounds_p50", "rounds_p90", "rounds_p99",
		"rounds_per_n_mean", "merges_mean", "moves_mean", "runs_started_mean",
		"quiescent_ratio_mean",
	}); err != nil {
		return err
	}
	for _, a := range aggs {
		rec := []string{
			a.Workload,
			fmt.Sprint(a.N),
			fmt.Sprint(a.Radius),
			fmt.Sprint(a.L),
			a.Scheduler,
			a.Algorithm,
			a.Faults,
			fmt.Sprint(a.Runs),
			fmt.Sprint(a.Failures),
			fmt.Sprint(a.Degraded),
			fmt.Sprintf("%.1f", a.Robots),
			fmt.Sprintf("%.2f", a.Rounds.Mean),
			fmt.Sprintf("%.0f", a.Rounds.Min),
			fmt.Sprintf("%.0f", a.Rounds.Max),
			fmt.Sprintf("%.1f", a.Rounds.P50),
			fmt.Sprintf("%.1f", a.Rounds.P90),
			fmt.Sprintf("%.1f", a.Rounds.P99),
			fmt.Sprintf("%.4f", a.RoundsPerN.Mean),
			fmt.Sprintf("%.2f", a.Merges.Mean),
			fmt.Sprintf("%.2f", a.Moves.Mean),
			fmt.Sprintf("%.2f", a.RunsStarted.Mean),
			fmt.Sprintf("%.4f", a.QuiescentRatio.Mean),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
