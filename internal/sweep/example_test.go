package sweep_test

import (
	"fmt"
	"os"

	"gridgather/internal/core"
	"gridgather/internal/sweep"
)

// A sweep is declared as a Spec (the experiment grid), expanded into jobs,
// fanned out by a Runner, and summarized by Aggregated. Every simulation is
// deterministic, so the whole pipeline is reproducible.
func Example() {
	spec := sweep.Spec{
		Workloads: []string{"line"},
		Sizes:     []int{20, 40},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		panic(err)
	}
	results := sweep.Runner{Concurrency: 2}.Run(jobs)
	for _, a := range sweep.Aggregated(results) {
		fmt.Printf("%s n=%d: %.0f rounds (%.2f per robot)\n",
			a.Workload, a.N, a.Rounds.Mean, a.RoundsPerN.Mean)
	}
	// Output:
	// line n=20: 9 rounds (0.45 per robot)
	// line n=40: 19 rounds (0.47 per robot)
}

// RunOne is the single-simulation primitive underneath the Runner — handy
// for one-off instances, e.g. from the experiment harness.
func ExampleRunOne() {
	res := sweep.RunOne(sweep.Job{
		Workload: "hollow",
		N:        60,
		Params:   core.Defaults(),
	})
	fmt.Println("gathered:", res.Gathered)
	fmt.Println("rounds:", res.Rounds)
	// Output:
	// gathered: true
	// rounds: 7
}

// Aggregates serialize to CSV for spreadsheet or pandas consumption;
// WriteResultsCSV emits the raw per-run rows instead.
func ExampleWriteAggregatesCSV() {
	jobs, _ := sweep.Spec{Workloads: []string{"line"}, Sizes: []int{20}}.Jobs()
	results := sweep.Runner{}.Run(jobs)
	aggs := sweep.Aggregated(results)
	// Durations vary run to run but are not part of aggregate rows, so the
	// CSV is stable.
	_ = sweep.WriteAggregatesCSV(os.Stdout, aggs[:1])
	// Output:
	// workload,n,radius,l,scheduler,algorithm,faults,runs,failures,degraded,robots,rounds_mean,rounds_min,rounds_max,rounds_p50,rounds_p90,rounds_p99,rounds_per_n_mean,merges_mean,moves_mean,runs_started_mean,quiescent_ratio_mean
	// line,20,20,22,fsync,paper,,1,0,0,20.0,9.00,9,9,9.0,9.0,9.0,0.4500,18.00,18.00,0.00,0.0000
}

// The scheduler axis sweeps the time model: the same instance under FSYNC
// and under a relaxed SSYNC round-robin schedule, with the scheduler-robust
// greedy algorithm (the paper's algorithm is only safe under FSYNC).
func ExampleSpec_schedulers() {
	spec := sweep.Spec{
		Workloads:  []string{"line"},
		Sizes:      []int{20},
		Schedulers: []string{"fsync", "ssync-rr:3"},
		Algorithms: []string{"greedy"},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		panic(err)
	}
	results := sweep.Runner{}.Run(jobs)
	for _, a := range sweep.Aggregated(results) {
		fmt.Printf("%s under %s: gathered %d/%d\n",
			a.Algorithm, a.Scheduler, a.Runs-a.Failures, a.Runs)
	}
	// Output:
	// greedy under fsync: gathered 1/1
	// greedy under ssync-rr:3: gathered 1/1
}
