package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gridgather/internal/core"
)

func TestSpecJobsExpansion(t *testing.T) {
	spec := Spec{
		Workloads: []string{"line", "blob"},
		Sizes:     []int{40, 80},
		Seeds:     []int64{1, 2, 3},
		Params:    []core.Params{core.Defaults(), core.WithConstants(11, 13)},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// line is deterministic (1 seed), blob random (3 seeds):
	// line: 2 sizes × 2 params × 1 seed = 4; blob: 2 × 2 × 3 = 12.
	if len(jobs) != 16 {
		t.Fatalf("expected 16 jobs, got %d", len(jobs))
	}
	if jobs[0].Workload != "line" || jobs[0].N != 40 {
		t.Fatalf("unexpected first job %+v", jobs[0])
	}
	for _, j := range jobs {
		if j.Workload == "line" && j.Seed != 1 {
			t.Errorf("deterministic family expanded redundant seed: %+v", j)
		}
	}
}

func TestSpecJobsSchedulerDimension(t *testing.T) {
	spec := Spec{
		Workloads:  []string{"line"},
		Sizes:      []int{40},
		Seeds:      []int64{1, 2, 3},
		Schedulers: []string{"fsync", "ssync-rr:3", "ssync-rand:3"},
		Algorithms: []string{"paper", "greedy"},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// line is deterministic, so seeds collapse to 1 — except under the
	// seed-sensitive ssync-rand scheduler, which keeps all 3:
	// (fsync: 1 + ssync-rr: 1 + ssync-rand: 3) × 2 algorithms = 10.
	if len(jobs) != 10 {
		t.Fatalf("expected 10 jobs, got %d", len(jobs))
	}
	randSeeds := map[int64]bool{}
	for _, j := range jobs {
		if j.Scheduler == "ssync-rand:3" {
			randSeeds[j.Seed] = true
		} else if j.Seed != 1 {
			t.Errorf("deterministic job expanded redundant seed: %+v", j)
		}
	}
	if len(randSeeds) != 3 {
		t.Errorf("randomized scheduler kept %d seeds, want 3", len(randSeeds))
	}
}

func TestSpecJobsErrors(t *testing.T) {
	if _, err := (Spec{}).Jobs(); err == nil {
		t.Error("expected error for empty sizes")
	}
	if _, err := (Spec{Workloads: []string{"nope"}, Sizes: []int{10}}).Jobs(); err == nil {
		t.Error("expected error for unknown workload")
	}
	if _, err := (Spec{Sizes: []int{-3}}).Jobs(); err == nil {
		t.Error("expected error for negative size")
	}
	bad := core.Defaults()
	bad.Radius = 1
	if _, err := (Spec{Sizes: []int{10}, Params: []core.Params{bad}}).Jobs(); err == nil {
		t.Error("expected error for invalid params")
	}
	if _, err := (Spec{Sizes: []int{10}, Schedulers: []string{"warp"}}).Jobs(); err == nil {
		t.Error("expected error for unknown scheduler")
	}
	if _, err := (Spec{Sizes: []int{10}, Algorithms: []string{"magic"}}).Jobs(); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestRunOne(t *testing.T) {
	res := RunOne(Job{Workload: "line", N: 40, Params: core.Defaults()})
	if res.Err != "" || !res.Gathered {
		t.Fatalf("line run failed: %+v", res)
	}
	if res.Robots != 40 {
		t.Errorf("expected 40 robots, got %d", res.Robots)
	}
	if res.RoundsPerN <= 0 || res.RoundsPerN > 2 {
		t.Errorf("rounds/n out of the linear range: %v", res.RoundsPerN)
	}
	if res.Rounds != 19 {
		// The engine is deterministic; the line of 40 gathers in exactly
		// (diam-1)/2 rounds (E20 meets the lower bound).
		t.Errorf("expected the deterministic 19 rounds, got %d", res.Rounds)
	}
}

func TestRunOneUnknownWorkload(t *testing.T) {
	res := RunOne(Job{Workload: "nope", N: 10, Params: core.Defaults()})
	if res.Err == "" {
		t.Fatal("expected error for unknown workload")
	}
}

func TestRunOneSchedulerAxis(t *testing.T) {
	// The greedy algorithm gathers under a relaxed scheduler…
	res := RunOne(Job{Workload: "line", N: 30, Params: core.Defaults(),
		Scheduler: "ssync-rr:3", Algorithm: "greedy"})
	if res.Err != "" || !res.Gathered {
		t.Fatalf("greedy under ssync-rr:3 failed: %+v", res)
	}
	// …and takes more rounds than under FSYNC, reflecting the 1/3
	// activation fraction.
	ref := RunOne(Job{Workload: "line", N: 30, Params: core.Defaults(), Algorithm: "greedy"})
	if ref.Err != "" || !ref.Gathered {
		t.Fatalf("greedy under fsync failed: %+v", ref)
	}
	if res.Rounds <= ref.Rounds {
		t.Errorf("relaxed schedule not slower: ssync %d rounds vs fsync %d", res.Rounds, ref.Rounds)
	}
}

func TestRunOneBadInputs(t *testing.T) {
	if res := RunOne(Job{Workload: "line", N: 10, Params: core.Defaults(), Scheduler: "nope"}); res.Err == "" {
		t.Error("expected error for unknown scheduler")
	}
	if res := RunOne(Job{Workload: "line", N: 10, Params: core.Defaults(), Algorithm: "nope"}); res.Err == "" {
		t.Error("expected error for unknown algorithm")
	}
	if res := RunOne(Job{Workload: "line", N: 10, Params: core.Defaults(), MaxRounds: -1}); res.Err == "" {
		t.Error("expected error for negative MaxRounds")
	}
}

// TestRunnerDeterministicOrder proves results land at their job's index and
// are identical across concurrency levels (with -race this also exercises
// the fan-out for data races).
func TestRunnerDeterministicOrder(t *testing.T) {
	spec := Spec{
		Workloads: []string{"line", "hollow", "blob"},
		Sizes:     []int{30, 60},
		Seeds:     []int64{1, 2},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	serial := Runner{Concurrency: 1}.Run(jobs)
	parallel := Runner{Concurrency: 8}.Run(jobs)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result count mismatch: %d, %d vs %d jobs",
			len(serial), len(parallel), len(jobs))
	}
	for i := range serial {
		if serial[i].Job != parallel[i].Job {
			t.Fatalf("job order diverged at %d", i)
		}
		// Durations differ run to run; everything else must match.
		a, b := serial[i], parallel[i]
		a.Duration, b.Duration = 0, 0
		if a != b {
			t.Errorf("result %d diverged:\nserial:   %+v\nparallel: %+v", i, a, b)
		}
	}
}

func TestRunnerOnResultSerialized(t *testing.T) {
	jobs, err := Spec{Workloads: []string{"line"}, Sizes: []int{10, 20, 30, 40}}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	r := Runner{Concurrency: 4, OnResult: func(Result) { seen++ }}
	r.Run(jobs)
	if seen != len(jobs) {
		t.Errorf("OnResult called %d times, want %d", seen, len(jobs))
	}
}

func TestAggregated(t *testing.T) {
	jobs, err := Spec{Workloads: []string{"blob"}, Sizes: []int{60}, Seeds: []int64{1, 2, 3, 4}}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results := Runner{}.Run(jobs)
	aggs := Aggregated(results)
	if len(aggs) != 1 {
		t.Fatalf("expected one group, got %d", len(aggs))
	}
	a := aggs[0]
	if a.Runs != 4 || a.Failures != 0 {
		t.Fatalf("bad group counts: %+v", a)
	}
	if a.Rounds.Min > a.Rounds.P50 || a.Rounds.P50 > a.Rounds.P90 || a.Rounds.P90 > a.Rounds.Max {
		t.Errorf("percentiles out of order: %+v", a.Rounds)
	}
	if a.RoundsPerN.Mean <= 0 {
		t.Errorf("rounds/n mean not positive: %+v", a.RoundsPerN)
	}
}

func TestAggregatedCountsFailures(t *testing.T) {
	results := []Result{
		{Job: Job{Workload: "line", N: 10, Params: core.Defaults()}, Gathered: true, Rounds: 5, Robots: 10},
		{Job: Job{Workload: "line", N: 10, Params: core.Defaults()}, Err: "boom"},
	}
	aggs := Aggregated(results)
	if len(aggs) != 1 || aggs[0].Failures != 1 || aggs[0].Runs != 2 {
		t.Fatalf("unexpected aggregation: %+v", aggs)
	}
}

func TestOutputs(t *testing.T) {
	jobs, err := Spec{Workloads: []string{"line"}, Sizes: []int{20, 40}}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results := Runner{}.Run(jobs)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, NewReport(results)); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(rep.Results) != 2 || len(rep.Aggregates) != 2 {
		t.Fatalf("bad report shape: %d results, %d aggregates",
			len(rep.Results), len(rep.Aggregates))
	}

	buf.Reset()
	if err := WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,") {
		t.Errorf("missing CSV header: %q", lines[0])
	}

	buf.Reset()
	if err := WriteAggregatesCSV(&buf, Aggregated(results)); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 3 {
		t.Fatalf("expected header + 2 aggregate rows, got %d lines", got)
	}

	if tbl := Table(Aggregated(results)); !strings.Contains(tbl, "line") {
		t.Errorf("table missing workload name:\n%s", tbl)
	}
}

func TestFamilies(t *testing.T) {
	fams := Families()
	if len(fams) == 0 {
		t.Fatal("no families")
	}
	set := map[string]bool{}
	for _, f := range fams {
		set[f] = true
	}
	for _, want := range []string{"line", "hollow", "blob", "walk"} {
		if !set[want] {
			t.Errorf("families missing %q: %v", want, fams)
		}
	}
}
