package sweep

import (
	"fmt"
	"sort"

	"gridgather/internal/fault"
	"gridgather/internal/metrics"
	"gridgather/internal/sched"
)

// Dist summarizes the distribution of one metric across the runs of an
// aggregate group.
type Dist struct {
	// Mean, Min and Max are the sample mean and extremes.
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// P50, P90 and P99 are interpolated percentiles (metrics.Percentile).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// dist builds a Dist from a sample, sorting one copy for all percentiles.
func dist(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	s := metrics.Summarize(xs)
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Dist{
		Mean: s.Mean,
		Min:  s.Min,
		Max:  s.Max,
		P50:  metrics.PercentileSorted(sorted, 50),
		P90:  metrics.PercentileSorted(sorted, 90),
		P99:  metrics.PercentileSorted(sorted, 99),
	}
}

// Aggregate summarizes all runs of one (workload, n, params) group across
// its seeds.
type Aggregate struct {
	// Workload and N identify the instance family and requested size.
	Workload string `json:"workload"`
	N        int    `json:"n"`
	// Radius and L identify the parameter set.
	Radius int `json:"radius"`
	L      int `json:"l"`
	// Scheduler is the canonical time-model name (e.g. "fsync",
	// "ssync-rr:3") and Algorithm the robot program of the group.
	Scheduler string `json:"scheduler"`
	Algorithm string `json:"algorithm"`
	// Faults is the canonical fault plan of the group ("" when fault-free).
	Faults string `json:"faults,omitempty"`
	// Runs is the number of simulations in the group, Failures how many
	// aborted (round limit, stuck watchdog, disconnection), Degraded how
	// many continued past a fault disconnection on the largest surviving
	// component (degraded runs still count as successes when they gather).
	Runs     int `json:"runs"`
	Failures int `json:"failures"`
	Degraded int `json:"degraded,omitempty"`
	// Robots is the mean actual robot count of the built instances.
	Robots float64 `json:"robots"`
	// Rounds, RoundsPerN, Merges, Moves and RunsStarted summarize the
	// respective per-run metrics over the successful runs.
	Rounds      Dist `json:"rounds"`
	RoundsPerN  Dist `json:"rounds_per_n"`
	Merges      Dist `json:"merges"`
	Moves       Dist `json:"moves"`
	RunsStarted Dist `json:"runs_started"`
	// QuiescentRatio summarizes the per-run fraction of activations served
	// from the quiescence verdict cache.
	QuiescentRatio Dist `json:"quiescent_ratio"`
}

// groupKey identifies an aggregate group.
type groupKey struct {
	workload  string
	n         int
	radius, l int
	scheduler string
	algorithm string
	faults    string
}

// canonicalScheduler maps equivalent scheduler specs to one group name
// ("" and "fsync" name the same model, "ssync" is "ssync-rr:3", …). Specs
// that do not parse group under their raw string.
func canonicalScheduler(spec string) string {
	s, err := sched.Parse(spec, 1)
	if err != nil {
		return spec
	}
	return s.String()
}

// schedCanonicalizer returns a memoizing canonicalScheduler for row-wise
// use: sweeps reuse a handful of distinct specs across thousands of rows,
// and each canonicalization otherwise parses (allocating a scheduler
// instance) per row.
func schedCanonicalizer() func(string) string {
	memo := make(map[string]string)
	return func(spec string) string {
		c, ok := memo[spec]
		if !ok {
			c = canonicalScheduler(spec)
			memo[spec] = c
		}
		return c
	}
}

// canonicalAlgorithm maps the empty algorithm name to its default.
func canonicalAlgorithm(name string) string {
	if name == "" {
		return "paper"
	}
	return name
}

// canonicalFaults maps equivalent fault specs to one group name ("", "off"
// and "none" all name the fault-free plan; probabilities render in shortest
// round-trip form). Specs that do not parse group under their raw string.
func canonicalFaults(spec string) string {
	p, err := fault.Parse(spec, 1)
	if err != nil {
		return spec
	}
	return p.String()
}

// faultCanonicalizer returns a memoizing canonicalFaults, mirroring
// schedCanonicalizer for the same per-row cost reason.
func faultCanonicalizer() func(string) string {
	memo := make(map[string]string)
	return func(spec string) string {
		c, ok := memo[spec]
		if !ok {
			c = canonicalFaults(spec)
			memo[spec] = c
		}
		return c
	}
}

// Aggregated groups results by (workload, n, radius, L, scheduler,
// algorithm, faults) and summarizes each group's metric distributions.
// Groups appear in first-occurrence order of the input, so job-ordered
// results yield deterministic reports.
func Aggregated(results []Result) []Aggregate {
	var order []groupKey
	groups := make(map[groupKey][]Result)
	canon := schedCanonicalizer()
	canonF := faultCanonicalizer()
	for _, r := range results {
		k := groupKey{
			r.Job.Workload, r.Job.N, r.Job.Params.Radius, r.Job.Params.L,
			canon(r.Job.Scheduler), canonicalAlgorithm(r.Job.Algorithm),
			canonF(r.Job.Faults),
		}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]Aggregate, 0, len(order))
	for _, k := range order {
		rs := groups[k]
		a := Aggregate{
			Workload: k.workload, N: k.n, Radius: k.radius, L: k.l,
			Scheduler: k.scheduler, Algorithm: k.algorithm, Faults: k.faults,
			Runs: len(rs),
		}
		var rounds, perN, merges, moves, runs, quiet []float64
		var robots float64
		for _, r := range rs {
			robots += float64(r.Robots)
			if r.Degraded {
				a.Degraded++
			}
			if r.Err != "" || !r.Gathered {
				a.Failures++
				continue
			}
			rounds = append(rounds, float64(r.Rounds))
			perN = append(perN, r.RoundsPerN)
			merges = append(merges, float64(r.Merges))
			moves = append(moves, float64(r.Moves))
			runs = append(runs, float64(r.RunsStarted))
			quiet = append(quiet, r.QuiescentRatio)
		}
		a.Robots = robots / float64(len(rs))
		a.Rounds = dist(rounds)
		a.RoundsPerN = dist(perN)
		a.Merges = dist(merges)
		a.Moves = dist(moves)
		a.RunsStarted = dist(runs)
		a.QuiescentRatio = dist(quiet)
		out = append(out, a)
	}
	return out
}

// Table renders aggregates as an aligned plain-text table in the style of
// the experiment harness outputs.
func Table(aggs []Aggregate) string {
	tab := metrics.Table{Header: []string{
		"workload", "n", "R", "L", "sched", "alg", "faults", "runs", "fail", "degr",
		"rounds(mean)", "rounds(p50)", "rounds(p90)", "rounds/n", "merges", "moves",
	}}
	for _, a := range aggs {
		faults := a.Faults
		if faults == "" {
			faults = "-"
		}
		tab.AddRow(
			a.Workload,
			fmt.Sprint(a.N),
			fmt.Sprint(a.Radius),
			fmt.Sprint(a.L),
			a.Scheduler,
			a.Algorithm,
			faults,
			fmt.Sprint(a.Runs),
			fmt.Sprint(a.Failures),
			fmt.Sprint(a.Degraded),
			fmt.Sprintf("%.1f", a.Rounds.Mean),
			fmt.Sprintf("%.1f", a.Rounds.P50),
			fmt.Sprintf("%.1f", a.Rounds.P90),
			fmt.Sprintf("%.2f", a.RoundsPerN.Mean),
			fmt.Sprintf("%.1f", a.Merges.Mean),
			fmt.Sprintf("%.1f", a.Moves.Mean),
		)
	}
	return tab.String()
}
