// Package view implements the local-vision substrate: the snapshot a robot
// obtains in the look step of the look-compute-move cycle, restricted to a
// constant viewing radius measured in L1 distance (§1, "Our Local Grid
// Model"; the algorithm needs radius 20).
//
// All coordinates exposed by a View are relative to the observing robot.
// In checked mode the View panics when a decision procedure reads a cell
// outside the viewing radius — this is how the repository enforces that the
// algorithm is genuinely local.
package view

import (
	"fmt"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/world"
)

// View is one robot's lazy snapshot of its surroundings. Lookups are
// delegated to the engine's immutable pre-round state, so constructing a
// view is O(1) and only the cells actually inspected are touched.
type View struct {
	origin  grid.Point
	radius  int
	checked bool
	dense   *world.Dense
	occ     func(grid.Point) bool
	state   func(grid.Point) robot.State
	round   int
	crashed func(grid.Point) bool
	noise   grid.Point // non-zero: occupancy reads at this offset are inverted
}

// Config bundles the engine-side accessors for building views.
type Config struct {
	// Radius is the viewing radius (L1).
	Radius int
	// Checked panics on out-of-radius reads when true.
	Checked bool
	// Dense, when non-nil, is the direct fast path: lookups go straight
	// to the tiled bitset backend (concrete method calls, no closures, no
	// hashing). The radius enforcement of Checked applies unchanged.
	Dense *world.Dense
	// Occ reports world-coordinate occupancy (the closure slow path, used
	// when Dense is nil — e.g. views built over a bare swarm in tests and
	// micro-benchmarks).
	Occ func(grid.Point) bool
	// State returns the state of the robot at a world coordinate (zero
	// State if the cell is free). Closure slow path like Occ.
	State func(grid.Point) robot.State
	// Crashed reports whether the robot at a world coordinate has
	// crash-stopped (nil when the simulation carries no crash faults).
	// Exposing it in views is the failure-detector assumption of the
	// crash-stop model: a robot can tell a crashed neighbor from a live
	// one, but learns nothing else about it.
	Crashed func(grid.Point) bool
}

// New builds the view of the robot at world position origin for the given
// round number.
func New(cfg Config, origin grid.Point, round int) *View {
	return &View{
		origin:  origin,
		radius:  cfg.Radius,
		checked: cfg.Checked,
		dense:   cfg.Dense,
		occ:     cfg.Occ,
		state:   cfg.State,
		crashed: cfg.Crashed,
		round:   round,
	}
}

// Reposition retargets the view at a new observing robot and round,
// reusing the allocation. The engine's compute loop calls it once per robot
// so a full round costs O(1) view allocations per worker instead of one per
// robot. The accessors and radius are unchanged; only the origin and round
// move.
func (v *View) Reposition(origin grid.Point, round int) {
	v.origin = origin
	v.round = round
	v.noise = grid.Point{}
}

// SetNoise installs a sensor-noise flip for this activation: occupancy
// reads at exactly the given relative offset return the inverted value.
// The zero offset clears the flip (a robot always senses itself
// correctly). Reposition resets the flip, so noise never leaks across
// robots when the engine reuses a view allocation.
func (v *View) SetNoise(rel grid.Point) { v.noise = rel }

// Radius returns the viewing radius.
func (v *View) Radius() int { return v.radius }

// Round returns the global round number. The FSYNC model gives all robots a
// common round counter (rounds are synchronous and of equal length), which
// the algorithm uses for the "every L-th round" run-start schedule (Fig. 11
// step 3).
func (v *View) Round() int { return v.round }

func (v *View) check(rel grid.Point) {
	if v.checked && rel.L1() > v.radius {
		panic(fmt.Sprintf("view: read at relative %v exceeds viewing radius %d", rel, v.radius))
	}
}

// Occ reports whether the cell at the given offset from the observing robot
// is occupied. Occ(grid.Zero) is always true.
func (v *View) Occ(rel grid.Point) bool {
	v.check(rel)
	occ := false
	if v.dense != nil {
		occ = v.dense.Has(v.origin.Add(rel))
	} else {
		occ = v.occ(v.origin.Add(rel))
	}
	if rel == v.noise && v.noise != (grid.Point{}) {
		return !occ
	}
	return occ
}

// Free reports whether the cell at the given offset is empty.
func (v *View) Free(rel grid.Point) bool { return !v.Occ(rel) }

// CrashedAt reports whether the cell at the given offset holds a
// crash-stopped robot. Always false when the simulation carries no crash
// faults. The liveness read is gated on the (possibly noise-corrupted)
// occupancy read, so the view never tells an inconsistent story: a noise
// flip that hides a crashed robot also hides its crash mark, and a phantom
// robot conjured on a free cell always reads as live.
func (v *View) CrashedAt(rel grid.Point) bool {
	if v.crashed == nil {
		return false
	}
	return v.Occ(rel) && v.crashed(v.origin.Add(rel))
}

// StateAt returns the state of the robot at the given offset. Robots can
// "see the states of all robots inside the viewing range".
func (v *View) StateAt(rel grid.Point) robot.State {
	v.check(rel)
	if v.dense != nil {
		return v.dense.StateAt(v.origin.Add(rel))
	}
	return v.state(v.origin.Add(rel))
}

// Self returns the observing robot's own state.
func (v *View) Self() robot.State {
	if v.dense != nil {
		return v.dense.StateAt(v.origin)
	}
	return v.state(v.origin)
}

// AllOccIn reports whether every offset in rels is occupied.
func (v *View) AllOccIn(rels ...grid.Point) bool {
	for _, r := range rels {
		if !v.Occ(r) {
			return false
		}
	}
	return true
}

// AllFreeIn reports whether every offset in rels is free.
func (v *View) AllFreeIn(rels ...grid.Point) bool {
	for _, r := range rels {
		if v.Occ(r) {
			return false
		}
	}
	return true
}
