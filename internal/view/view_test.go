package view

import (
	"testing"

	"gridgather/internal/grid"
	"gridgather/internal/robot"
	"gridgather/internal/swarm"
	"gridgather/internal/world"
)

func testConfig(occ map[grid.Point]bool, states map[grid.Point]robot.State, radius int, checked bool) Config {
	return Config{
		Radius:  radius,
		Checked: checked,
		Occ:     func(p grid.Point) bool { return occ[p] },
		State:   func(p grid.Point) robot.State { return states[p] },
	}
}

func TestViewRelativeCoordinates(t *testing.T) {
	occ := map[grid.Point]bool{{X: 5, Y: 5}: true, {X: 6, Y: 5}: true}
	v := New(testConfig(occ, nil, 10, true), grid.Pt(5, 5), 3)
	if !v.Occ(grid.Zero) {
		t.Error("origin must be occupied")
	}
	if !v.Occ(grid.East) {
		t.Error("east neighbor occupied in world, view disagrees")
	}
	if v.Occ(grid.West) {
		t.Error("west neighbor free in world, view disagrees")
	}
	if v.Round() != 3 {
		t.Errorf("round = %d", v.Round())
	}
}

func TestViewRadiusEnforcement(t *testing.T) {
	occ := map[grid.Point]bool{}
	v := New(testConfig(occ, nil, 4, true), grid.Pt(0, 0), 0)
	// Within radius: fine.
	_ = v.Occ(grid.Pt(2, 2))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-radius read")
		}
	}()
	_ = v.Occ(grid.Pt(3, 2)) // L1 = 5 > 4
}

func TestViewUncheckedAllowsFarReads(t *testing.T) {
	v := New(testConfig(map[grid.Point]bool{}, nil, 4, false), grid.Pt(0, 0), 0)
	_ = v.Occ(grid.Pt(50, 50)) // must not panic
}

func TestViewStates(t *testing.T) {
	run := robot.Run{ID: 7, Dir: grid.East, Inside: grid.South}
	states := map[grid.Point]robot.State{
		{X: 1, Y: 0}: {Runs: []robot.Run{run}},
		{X: 0, Y: 0}: {Runs: []robot.Run{{ID: 9, Dir: grid.West, Inside: grid.North}}},
	}
	occ := map[grid.Point]bool{{X: 0, Y: 0}: true, {X: 1, Y: 0}: true}
	v := New(testConfig(occ, states, 10, true), grid.Pt(0, 0), 0)
	if got := v.StateAt(grid.East); len(got.Runs) != 1 || got.Runs[0].ID != 7 {
		t.Errorf("StateAt = %+v", got)
	}
	if got := v.Self(); len(got.Runs) != 1 || got.Runs[0].ID != 9 {
		t.Errorf("Self = %+v", got)
	}
}

func TestViewBatchHelpers(t *testing.T) {
	occ := map[grid.Point]bool{{X: 1, Y: 0}: true, {X: 2, Y: 0}: true}
	v := New(testConfig(occ, nil, 10, true), grid.Pt(0, 0), 0)
	if !v.AllOccIn(grid.Pt(1, 0), grid.Pt(2, 0)) {
		t.Error("AllOccIn false negative")
	}
	if v.AllOccIn(grid.Pt(1, 0), grid.Pt(3, 0)) {
		t.Error("AllOccIn false positive")
	}
	if !v.AllFreeIn(grid.Pt(0, 1), grid.Pt(1, 1)) {
		t.Error("AllFreeIn false negative")
	}
	if v.AllFreeIn(grid.Pt(1, 0)) {
		t.Error("AllFreeIn false positive")
	}
	if v.Free(grid.Pt(1, 0)) || !v.Free(grid.Pt(0, 5)) {
		t.Error("Free wrong")
	}
}

func TestViewRadiusAccessor(t *testing.T) {
	v := New(testConfig(nil, nil, 13, false), grid.Pt(0, 0), 0)
	if v.Radius() != 13 {
		t.Errorf("radius = %d", v.Radius())
	}
}

// TestViewDenseFastPathStrictRadius proves the direct bitset fast path
// preserves the locality enforcement: reads go straight to the dense
// backend (no closures), but a checked view still panics on any read
// outside the viewing radius — for occupancy and state reads alike.
func TestViewDenseFastPathStrictRadius(t *testing.T) {
	d := world.NewDense(swarm.New(grid.Pt(0, 0), grid.Pt(1, 0)), false)
	v := New(Config{Radius: 4, Checked: true, Dense: d}, grid.Pt(0, 0), 0)
	// In-radius reads answer from the bitset.
	if !v.Occ(grid.Zero) || !v.Occ(grid.East) {
		t.Fatal("fast path misses occupied cells")
	}
	if v.Occ(grid.Pt(2, 2)) {
		t.Fatal("fast path reports a free cell occupied")
	}
	if st := v.StateAt(grid.East); st.HasRuns() {
		t.Fatal("fast path invents run states")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: out-of-radius read did not panic on the fast path", name)
			}
		}()
		f()
	}
	mustPanic("Occ", func() { v.Occ(grid.Pt(3, 2)) })
	mustPanic("StateAt", func() { v.StateAt(grid.Pt(0, 5)) })
}

// TestViewDenseFastPathMatchesClosures runs the same reads through the
// dense fast path and the closure slow path and requires identical
// answers.
func TestViewDenseFastPathMatchesClosures(t *testing.T) {
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(-1, -1), grid.Pt(0, -1))
	d := world.NewDense(s, false)
	fast := New(Config{Radius: 3, Checked: true, Dense: d}, grid.Pt(0, 0), 0)
	slow := New(Config{
		Radius:  3,
		Checked: true,
		Occ:     s.Has,
		State:   func(grid.Point) robot.State { return robot.State{} },
	}, grid.Pt(0, 0), 0)
	for dx := -3; dx <= 3; dx++ {
		for dy := -3; dy <= 3; dy++ {
			rel := grid.Pt(dx, dy)
			if rel.L1() > 3 {
				continue
			}
			if fast.Occ(rel) != slow.Occ(rel) {
				t.Fatalf("Occ(%v) diverged between fast and closure paths", rel)
			}
		}
	}
}
