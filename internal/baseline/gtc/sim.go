package gtc

import (
	"fmt"
	"math"
	"sort"
)

// Params configure the go-to-center simulation.
type Params struct {
	// Viewing is the viewing/connectivity radius V: robots see (and are
	// connected to) robots within Euclidean distance V.
	Viewing float64
	// MaxStep caps the distance moved per round.
	MaxStep float64
	// SnapEps collapses robots closer than this into one (point-shaped
	// robots that meet merge, as in the grid model).
	SnapEps float64
	// GatherDiameter: the swarm counts as gathered when its diameter is at
	// most this (the analogue of the grid's 2×2 target).
	GatherDiameter float64
}

// DefaultParams returns the classic unit-disk parameters.
func DefaultParams() Params {
	return Params{
		Viewing:        2.0,
		MaxStep:        1.0,
		SnapEps:        1e-6,
		GatherDiameter: 1.0,
	}
}

// Result of a plane simulation.
type Result struct {
	Gathered      bool
	Rounds        int
	Merges        int
	InitialRobots int
	FinalRobots   int
	Err           error
}

// Sim is the FSYNC plane simulator running the [DKL+11] go-to-center rule:
// each round every robot computes the smallest enclosing circle of its
// visible neighborhood (including itself) and moves toward its center, with
// movement limited so that no connectivity edge can break: for every
// visible neighbor at q the robot stays within the disk of radius V/2
// around the midpoint (p+q)/2 (both endpoints of an edge remain within V of
// each other).
type Sim struct {
	P      Params
	pos    []Vec
	rounds int
	merges int
}

// NewSim builds a simulator over the given robot positions.
func NewSim(pos []Vec, p Params) *Sim {
	cp := make([]Vec, len(pos))
	copy(cp, pos)
	return &Sim{P: p, pos: cp}
}

// Positions returns a copy of the current robot positions.
func (s *Sim) Positions() []Vec {
	cp := make([]Vec, len(s.pos))
	copy(cp, s.pos)
	return cp
}

// Rounds returns the number of completed rounds.
func (s *Sim) Rounds() int { return s.rounds }

// Diameter returns the maximum pairwise distance.
func (s *Sim) Diameter() float64 {
	d := 0.0
	for i := range s.pos {
		for j := i + 1; j < len(s.pos); j++ {
			if dd := Dist(s.pos[i], s.pos[j]); dd > d {
				d = dd
			}
		}
	}
	return d
}

// Connected reports whether the unit-disk graph (radius Viewing) over the
// robots is connected.
func (s *Sim) Connected() bool {
	n := len(s.pos)
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if !seen[j] && Dist(s.pos[i], s.pos[j]) <= s.P.Viewing+1e-9 {
				seen[j] = true
				cnt++
				stack = append(stack, j)
			}
		}
	}
	return cnt == n
}

// Gathered reports whether the diameter is within the gathering target.
func (s *Sim) Gathered() bool { return s.Diameter() <= s.P.GatherDiameter }

// Step executes one FSYNC round.
func (s *Sim) Step() {
	n := len(s.pos)
	next := make([]Vec, n)
	for i := 0; i < n; i++ {
		next[i] = s.target(i)
	}
	s.pos = next
	s.rounds++
	s.snapMerge()
}

// target computes robot i's new position under the go-to-center rule.
func (s *Sim) target(i int) Vec {
	p := s.pos[i]
	var visible []Vec
	for j, q := range s.pos {
		if j == i {
			continue
		}
		if Dist(p, q) <= s.P.Viewing+1e-9 {
			visible = append(visible, q)
		}
	}
	if len(visible) == 0 {
		return p // isolated robot (single robot swarm) stays
	}
	all := append([]Vec{p}, visible...)
	sec := SmallestEnclosingCircle(all)
	dir := sec.C.Sub(p)
	dist := dir.Norm()
	if dist < 1e-12 {
		return p
	}
	// Movement limit: cap by MaxStep and by every neighbor's midpoint disk.
	tMax := 1.0
	if dist > s.P.MaxStep {
		tMax = s.P.MaxStep / dist
	}
	for _, q := range visible {
		t := maxTInDisk(p, dir, Mid(p, q), s.P.Viewing/2)
		if t < tMax {
			tMax = t
		}
	}
	if tMax <= 0 {
		return p
	}
	return p.Add(dir.Scale(tMax))
}

// maxTInDisk returns the largest t ∈ [0,1] such that p + t·u stays inside
// the closed disk around m with radius r. p itself is assumed inside.
func maxTInDisk(p, u Vec, m Vec, r float64) float64 {
	// |p + t·u - m|² ≤ r²  with a = |u|², b = 2·u·(p-m), c = |p-m|² - r².
	w := p.Sub(m)
	a := u.Dot(u)
	if a < 1e-18 {
		return 1
	}
	b := 2 * u.Dot(w)
	c := w.Dot(w) - r*r
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0
	}
	t := (-b + math.Sqrt(disc)) / (2 * a)
	if t > 1 {
		t = 1
	}
	if t < 0 {
		t = 0
	}
	return t
}

// snapMerge collapses robots within SnapEps of each other.
func (s *Sim) snapMerge() {
	n := len(s.pos)
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	for i := 0; i < n; i++ {
		if !keep[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if keep[j] && Dist(s.pos[i], s.pos[j]) <= s.P.SnapEps {
				keep[j] = false
				s.merges++
			}
		}
	}
	out := s.pos[:0]
	for i, k := range keep {
		if k {
			out = append(out, s.pos[i])
		}
	}
	s.pos = out
}

// Run simulates until gathered or the round limit is hit.
func (s *Sim) Run(maxRounds int) Result {
	res := Result{InitialRobots: len(s.pos)}
	for !s.Gathered() {
		if s.rounds >= maxRounds {
			res.Err = fmt.Errorf("gtc: round limit %d reached (diameter %.3f)", maxRounds, s.Diameter())
			break
		}
		s.Step()
	}
	res.Gathered = s.Gathered()
	res.Rounds = s.rounds
	res.Merges = s.merges
	res.FinalRobots = len(s.pos)
	return res
}

// LineInstance returns n robots on a line spaced so that consecutive robots
// are connected (spacing strictly below the viewing radius) — the classic
// worst-case-shaped input for go-to-center.
func LineInstance(n int, spacing float64) []Vec {
	out := make([]Vec, n)
	for i := range out {
		out[i] = Vec{X: float64(i) * spacing}
	}
	return out
}

// CircleInstance returns n robots on a circle with the given chord spacing.
func CircleInstance(n int, spacing float64) []Vec {
	// Chord length s between adjacent robots on a circle of radius R with n
	// points: s = 2R·sin(π/n)  ⇒  R = s / (2 sin(π/n)).
	r := spacing / (2 * math.Sin(math.Pi/float64(n)))
	out := make([]Vec, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = Vec{X: r * math.Cos(a), Y: r * math.Sin(a)}
	}
	return out
}

// SortByX orders robots by x (test helper for deterministic comparisons).
func SortByX(pts []Vec) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}
