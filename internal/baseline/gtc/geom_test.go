package gtc

import (
	"math"
	"math/rand"
	"testing"
)

func TestVecOps(t *testing.T) {
	v, w := Vec{3, 4}, Vec{1, -2}
	if v.Add(w) != (Vec{4, 2}) || v.Sub(w) != (Vec{2, 6}) {
		t.Error("add/sub wrong")
	}
	if v.Norm() != 5 {
		t.Errorf("norm = %f", v.Norm())
	}
	if v.Dot(w) != 3-8 {
		t.Errorf("dot = %f", v.Dot(w))
	}
	if Mid(v, w) != (Vec{2, 1}) {
		t.Error("mid wrong")
	}
}

func TestSECSmallCases(t *testing.T) {
	c := SmallestEnclosingCircle([]Vec{{1, 1}})
	if c.R != 0 || c.C != (Vec{1, 1}) {
		t.Errorf("singleton SEC = %+v", c)
	}
	c = SmallestEnclosingCircle([]Vec{{0, 0}, {2, 0}})
	if math.Abs(c.R-1) > 1e-9 || Dist(c.C, Vec{1, 0}) > 1e-9 {
		t.Errorf("pair SEC = %+v", c)
	}
	// Equilateral-ish triangle: circumcircle.
	c = SmallestEnclosingCircle([]Vec{{0, 0}, {2, 0}, {1, 2}})
	for _, p := range []Vec{{0, 0}, {2, 0}, {1, 2}} {
		if !c.Contains(p) {
			t.Errorf("triangle SEC misses %v", p)
		}
	}
	// Obtuse triangle: diametral circle of the long side.
	c = SmallestEnclosingCircle([]Vec{{0, 0}, {10, 0}, {5, 0.1}})
	if math.Abs(c.R-5) > 1e-6 {
		t.Errorf("obtuse SEC radius = %f, want 5", c.R)
	}
}

func TestSECCollinear(t *testing.T) {
	c := SmallestEnclosingCircle([]Vec{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	if math.Abs(c.R-1.5) > 1e-9 {
		t.Errorf("collinear SEC radius = %f", c.R)
	}
}

// Property: the SEC contains all points and is minimal in the sense that
// shrinking its radius by epsilon excludes at least one point; it is also
// no larger than the trivial bounding circle.
func TestSECProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(12)
		pts := make([]Vec, n)
		for i := range pts {
			pts[i] = Vec{rng.Float64() * 10, rng.Float64() * 10}
		}
		c := SmallestEnclosingCircle(pts)
		maxDist := 0.0
		for _, p := range pts {
			d := Dist(c.C, p)
			if d > c.R+1e-7 {
				t.Fatalf("iter %d: point %v outside SEC (%f > %f)", iter, p, d, c.R)
			}
			if d > maxDist {
				maxDist = d
			}
		}
		// Tight: some point lies on (near) the boundary.
		if n > 1 && c.R-maxDist > 1e-6 {
			t.Fatalf("iter %d: SEC not tight (R=%f, max=%f)", iter, c.R, maxDist)
		}
	}
}

func TestSECDoesNotMutateInput(t *testing.T) {
	pts := []Vec{{5, 5}, {0, 0}, {1, 9}}
	orig := make([]Vec, len(pts))
	copy(orig, pts)
	SmallestEnclosingCircle(pts)
	for i := range pts {
		if pts[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}
