package gtc

import (
	"testing"
)

func TestLineInstance(t *testing.T) {
	pts := LineInstance(5, 1.5)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if Dist(pts[0], pts[1]) != 1.5 {
		t.Errorf("spacing = %f", Dist(pts[0], pts[1]))
	}
}

func TestCircleInstanceSpacing(t *testing.T) {
	pts := CircleInstance(12, 1.0)
	d := Dist(pts[0], pts[1])
	if d < 0.99 || d > 1.01 {
		t.Errorf("chord spacing = %f, want 1.0", d)
	}
}

func TestSimGathersSmallLine(t *testing.T) {
	sim := NewSim(LineInstance(6, 1.0), DefaultParams())
	if !sim.Connected() {
		t.Fatal("instance not connected")
	}
	res := sim.Run(5000)
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !res.Gathered {
		t.Fatal("not gathered")
	}
	t.Logf("line n=6: %d rounds", res.Rounds)
}

func TestSimPreservesConnectivity(t *testing.T) {
	sim := NewSim(LineInstance(12, 1.0), DefaultParams())
	for i := 0; i < 200 && !sim.Gathered(); i++ {
		sim.Step()
		if !sim.Connected() {
			t.Fatalf("disconnected after round %d", sim.Rounds())
		}
	}
}

func TestSimDiameterMonotonicOnLine(t *testing.T) {
	// The go-to-center rule never expands the swarm: the diameter is
	// non-increasing (each robot moves into the convex hull region).
	sim := NewSim(LineInstance(10, 1.0), DefaultParams())
	prev := sim.Diameter()
	for i := 0; i < 300 && !sim.Gathered(); i++ {
		sim.Step()
		d := sim.Diameter()
		if d > prev+1e-9 {
			t.Fatalf("diameter grew: %f -> %f at round %d", prev, d, sim.Rounds())
		}
		prev = d
	}
}

// TestQuadraticGrowthShape verifies the headline comparison claim: the
// plane algorithm's round count grows clearly super-linearly with n
// (Θ(n²) per [DKL+11]), in contrast to the grid algorithm's linear rounds.
// The quadratic behaviour appears on ring configurations, where each
// robot's local SEC center lies only the chord sagitta Θ(1/n) inside the
// ring, so the diameter Θ(n) shrinks by Θ(1/n) per round.
func TestQuadraticGrowthShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rounds := map[int]int{}
	for _, n := range []int{16, 32, 64} {
		sim := NewSim(CircleInstance(n, 1.0), DefaultParams())
		res := sim.Run(500000)
		if res.Err != nil {
			t.Fatalf("n=%d: %v", n, res.Err)
		}
		rounds[n] = res.Rounds
		t.Logf("gtc circle n=%d: rounds=%d", n, res.Rounds)
	}
	// Doubling n should much more than double the rounds; quadratic
	// quadruples. Accept ≥ 3× as "clearly super-linear".
	if r := float64(rounds[32]) / float64(rounds[16]); r < 3 {
		t.Errorf("rounds(32)/rounds(16) = %.2f, expected ≥ 3 (super-linear)", r)
	}
	if r := float64(rounds[64]) / float64(rounds[32]); r < 3 {
		t.Errorf("rounds(64)/rounds(32) = %.2f, expected ≥ 3 (super-linear)", r)
	}
}

func TestSnapMergeCollapsesCoincidentRobots(t *testing.T) {
	sim := NewSim([]Vec{{0, 0}, {0, 0}, {1, 0}}, DefaultParams())
	sim.Step()
	if len(sim.Positions()) > 2 {
		t.Errorf("coincident robots not merged: %d left", len(sim.Positions()))
	}
}

func TestMaxTInDisk(t *testing.T) {
	// Moving from the center of a unit disk along x: can go exactly to the
	// boundary.
	tm := maxTInDisk(Vec{0, 0}, Vec{2, 0}, Vec{0, 0}, 1)
	if tm < 0.49 || tm > 0.51 {
		t.Errorf("tMax = %f, want 0.5", tm)
	}
	// Target inside the disk: full step allowed.
	tm = maxTInDisk(Vec{0, 0}, Vec{0.3, 0}, Vec{0, 0}, 1)
	if tm != 1 {
		t.Errorf("tMax = %f, want 1", tm)
	}
}
