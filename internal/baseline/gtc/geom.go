// Package gtc implements the Euclidean-plane baseline the paper compares
// against (§1, §2): the local go-to-center gathering algorithm of Degener,
// Kempkes, Langner, Meyer auf der Heide, Pietrzyk and Wattenhofer
// [DKL+11], which gathers n robots with limited visibility in Θ(n²) FSYNC
// rounds: "every robot synchronously computes the smallest enclosing circle
// only of the robots within its restricted viewing range and then moves
// towards its center."
//
// The package provides the geometric substrate (smallest enclosing circles
// via Welzl's algorithm) and an FSYNC plane simulator with the
// connectivity-preserving movement limit of the algorithm.
package gtc

import "math"

// Vec is a point/vector in the Euclidean plane.
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.X * k, v.Y * k} }

// Dot returns the dot product.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func Dist(v, w Vec) float64 { return v.Sub(w).Norm() }

// Mid returns the midpoint of v and w.
func Mid(v, w Vec) Vec { return Vec{(v.X + w.X) / 2, (v.Y + w.Y) / 2} }

// Circle is a disk given by center and radius.
type Circle struct {
	C Vec
	R float64
}

// Contains reports whether p lies in the closed disk (with a small epsilon
// for floating point robustness).
func (c Circle) Contains(p Vec) bool {
	return Dist(c.C, p) <= c.R+1e-9
}

// circleFrom2 returns the smallest circle through two points.
func circleFrom2(a, b Vec) Circle {
	return Circle{C: Mid(a, b), R: Dist(a, b) / 2}
}

// circleFrom3 returns the circumcircle of three points; degenerate
// (collinear) triples fall back to the widest two-point circle.
func circleFrom3(a, b, c Vec) Circle {
	ax, ay := a.X, a.Y
	bx, by := b.X, b.Y
	cx, cy := c.X, c.Y
	d := 2 * (ax*(by-cy) + bx*(cy-ay) + cx*(ay-by))
	if math.Abs(d) < 1e-12 {
		// Collinear: the diametral circle of the farthest pair.
		best := circleFrom2(a, b)
		if cand := circleFrom2(a, c); cand.R > best.R {
			best = cand
		}
		if cand := circleFrom2(b, c); cand.R > best.R {
			best = cand
		}
		return best
	}
	ux := ((ax*ax+ay*ay)*(by-cy) + (bx*bx+by*by)*(cy-ay) + (cx*cx+cy*cy)*(ay-by)) / d
	uy := ((ax*ax+ay*ay)*(cx-bx) + (bx*bx+by*by)*(ax-cx) + (cx*cx+cy*cy)*(bx-ax)) / d
	center := Vec{ux, uy}
	return Circle{C: center, R: Dist(center, a)}
}

// SmallestEnclosingCircle returns the minimal disk containing all points
// (Welzl's algorithm, iterative move-to-front variant; deterministic).
// It panics on an empty input.
func SmallestEnclosingCircle(pts []Vec) Circle {
	if len(pts) == 0 {
		panic("gtc: SEC of empty point set")
	}
	// Copy so move-to-front reordering does not disturb the caller.
	ps := make([]Vec, len(pts))
	copy(ps, pts)

	c := Circle{C: ps[0], R: 0}
	for i := 1; i < len(ps); i++ {
		if c.Contains(ps[i]) {
			continue
		}
		c = Circle{C: ps[i], R: 0}
		for j := 0; j < i; j++ {
			if c.Contains(ps[j]) {
				continue
			}
			c = circleFrom2(ps[i], ps[j])
			for k := 0; k < j; k++ {
				if c.Contains(ps[k]) {
					continue
				}
				c = circleFrom3(ps[i], ps[j], ps[k])
			}
		}
	}
	return c
}
