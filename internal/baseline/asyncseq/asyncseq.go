// Package asyncseq implements the paper's introductory remark: "if one
// would assume a fair scheduler in the ASYNC time model, which allows only
// one robot to be active at a time and finishes a round after every robot
// has been active at least once, a simple strategy could achieve the same
// O(n) rounds."
//
// The simple strategy: when a robot is activated it
//
//   - merges onto a 4-neighbor if it is locally deletable — its occupied
//     8-neighborhood remains connected (through 4-adjacency within the
//     ring) without it, the classic simple-point condition that preserves
//     global connectivity under sequential moves; or
//   - cuts its corner: a robot with exactly two perpendicular neighbors
//     and a free diagonal between them hops onto that diagonal, shortening
//     the boundary (always safe sequentially: the diagonal cell is
//     4-adjacent to both neighbors); or
//   - reclaims a crashed neighbor (crash-fault runs only): a robot whose
//     live ring cells all flank a crash-stopped 4-neighbor walks onto that
//     frozen robot, consuming it. Connectivity duty extends only to live
//     robots — crashed scenery may be stranded, which the engine turns
//     into graceful degradation rather than an abort.
//
// The north-east-most robot is always actionable, so every round makes
// progress and the strategy gathers in O(n) rounds. This baseline
// illustrates why the paper's FSYNC setting is the hard one: the identical
// rules executed simultaneously can disconnect the swarm (see the package
// tests), which is exactly what the run machinery of the paper prevents.
package asyncseq

import (
	"fmt"

	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

// Result of a sequential simulation.
type Result struct {
	Gathered      bool
	Rounds        int
	Activations   int
	Merges        int
	Cuts          int
	InitialRobots int
	FinalRobots   int
	Err           error
}

// ring8 is the cyclic order of the 8-neighborhood used by the simple-point
// test.
var ring8 = [8]grid.Point{
	grid.East, grid.NorthEast, grid.North, grid.NorthWest,
	grid.West, grid.SouthWest, grid.South, grid.SouthEast,
}

// deletable reports whether removing the robot at p keeps its live
// occupied neighborhood connected: the live ring cells must form one
// component under 4-adjacency within the ring, and p must have at least
// one live 4-neighbor to merge onto. occupied is the occupancy predicate —
// the global swarm for the sequential simulation, a radius-limited view
// for the engine-compatible Algorithm. crashed (nil = no crash faults)
// narrows the connectivity duty to live robots: crash-stopped robots are
// scenery the swarm may strand (the engine then degrades gracefully
// instead of aborting), so they neither anchor a merge nor count toward
// the ring components.
func deletable(occupied, crashed func(grid.Point) bool, p grid.Point) (grid.Point, bool) {
	occ := [8]bool{}
	cnt := 0
	var target grid.Point
	hasAxis := false
	for i, d := range ring8 {
		q := p.Add(d)
		if occupied(q) && (crashed == nil || !crashed(q)) {
			occ[i] = true
			cnt++
			if d.IsUnit() && !hasAxis {
				target = q
				hasAxis = true
			}
		}
	}
	if cnt == 0 || !hasAxis {
		return grid.Point{}, false
	}
	// Count 4-connected components of the occupied ring cells. Within the
	// ring, cells at positions i and i+1 are 4-adjacent exactly when one of
	// them is an axis cell (even index) — corner cells are only diagonal to
	// each other.
	comps := 0
	for i := 0; i < 8; i++ {
		if !occ[i] {
			continue
		}
		prev := (i + 7) % 8
		linked := occ[prev] && (i%2 == 0 || prev%2 == 0)
		if !linked {
			comps++
		}
	}
	// Fully occupied ring: the loop above finds 8 linked cells and comps
	// stays 0; it is one component.
	if cnt == 8 {
		comps = 1
	}
	return target, comps == 1
}

// cuttable reports whether the robot at p is a convex corner that can hop
// onto the diagonal between its exactly-two perpendicular live neighbors.
// Crashed neighbors are ignored when counting axes (they are scenery, not
// corner partners — a crashed corner partner would let the robot oscillate
// around it forever). The landing cell may be free (the classic cut) or
// hold a crashed robot: the diagonal is 4-adjacent to both live partners
// either way, so live connectivity is preserved, and landing on a frozen
// robot consumes it — strict progress, which is what breaks a live ring
// locked around a crashed center.
func cuttable(occupied, crashed func(grid.Point) bool, p grid.Point) (grid.Point, bool) {
	var axes []grid.Point
	for _, d := range grid.Axis4 {
		if q := p.Add(d); occupied(q) && (crashed == nil || !crashed(q)) {
			axes = append(axes, d)
		}
	}
	if len(axes) != 2 {
		return grid.Point{}, false
	}
	diag := axes[0].Add(axes[1])
	if diag == grid.Zero {
		return grid.Point{}, false // opposite neighbors: not a corner
	}
	q := p.Add(diag)
	if occupied(q) && (crashed == nil || !crashed(q)) {
		return grid.Point{}, false
	}
	return q, true
}

// reclaimable reports whether the robot at p may advance onto a crashed
// 4-neighbor, consuming it. The move relocates p onto the target cell, so
// it is only safe when every live cell of p's ring flanks the target (the
// two corners 4-adjacent to it): those stay connected through the robot's
// new position, and no other live cell depended on p. Crashed cells beyond
// the target carry no duty — stranding them is the graceful-degradation
// trade. This rule is what frees a live robot pinned between crashed
// neighbors: deletable refuses (no live axis to merge onto) and cuttable
// refuses (no two live axes), but walking onto the frozen robot both
// makes progress and reclaims the cell.
func reclaimable(occupied, crashed func(grid.Point) bool, p grid.Point) (grid.Point, bool) {
	if crashed == nil {
		return grid.Point{}, false
	}
	for i, d := range ring8 {
		if i%2 != 0 {
			continue // axis directions sit at even ring positions
		}
		q := p.Add(d)
		if !occupied(q) || !crashed(q) {
			continue
		}
		ok := true
		for j, dd := range ring8 {
			qq := p.Add(dd)
			if !occupied(qq) || crashed(qq) {
				continue // only live cells carry a connectivity duty
			}
			if j != (i+1)%8 && j != (i+7)%8 {
				ok = false
				break
			}
		}
		if ok {
			return q, true
		}
	}
	return grid.Point{}, false
}

// Run executes the sequential strategy until gathering, activating robots
// in deterministic scan order (a fair round-robin scheduler).
func Run(s *swarm.Swarm, maxRounds int) Result {
	w := s.Clone()
	res := Result{InitialRobots: w.Len()}
	for !w.Gathered() {
		if res.Rounds >= maxRounds {
			res.Err = fmt.Errorf("asyncseq: round limit %d reached", maxRounds)
			break
		}
		progressed := false
		for _, p := range w.Cells() {
			if !w.Has(p) {
				continue // merged away earlier this round
			}
			res.Activations++
			if t, ok := deletable(w.Has, nil, p); ok {
				w.Remove(p)
				_ = t // the robot moves onto t and merges: cell already occupied
				res.Merges++
				progressed = true
				continue
			}
			if q, ok := cuttable(w.Has, nil, p); ok {
				w.Remove(p)
				w.Add(q)
				res.Cuts++
				progressed = true
			}
		}
		res.Rounds++
		if !progressed {
			res.Err = fmt.Errorf("asyncseq: no progress in round %d", res.Rounds)
			break
		}
	}
	res.Gathered = w.Gathered()
	res.FinalRobots = w.Len()
	return res
}
