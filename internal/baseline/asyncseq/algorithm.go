package asyncseq

import (
	"gridgather/internal/fsync"
	"gridgather/internal/grid"
	"gridgather/internal/view"
)

// Algorithm packages the sequential strategy as an engine-compatible robot
// program (fsync.Algorithm) that stays safe under EVERY scheduler — FSYNC,
// SSYNC subsets, ASYNC wavefronts. The sequential rules alone are only safe
// one robot at a time (see the package tests: executed simultaneously they
// can disconnect the swarm), so the robot program adds a local mutual
// exclusion rule:
//
//	a robot executes its candidate move only if no other candidate mover
//	occupies a cell within L∞ distance 3 at a lexicographically smaller
//	position.
//
// Candidacy of a nearby robot is re-derived inside the observer's own view
// (the rules are deterministic functions of occupancy, so a robot can
// evaluate them for any robot whose neighborhood it sees — the classic
// local-simulation technique). Two robots within L∞ ≤ 3 of each other each
// see the other's candidacy, and the lexicographic order breaks the tie the
// same way on both sides, so any two robots that actually move in the same
// round are at L∞ distance ≥ 4. Their vacated cells, 8-neighborhoods and
// landing cells are then disjoint, which reduces simultaneous execution to
// sequential execution of individually safe moves: connectivity is
// preserved under an arbitrary activation subset, which no schedule of the
// paper's merge operations can guarantee (those require all black robots of
// a configuration to hop together).
//
// The lexicographic comparison uses relative positions, which all robots
// order consistently — the same world-aligned bookkeeping concession the
// run-state directions make (see robot.Run).
//
// Under crash-stop faults the strategy stays live by consulting the view's
// failure detector: a crashed robot is occupied scenery. Its candidacy
// never suppresses anyone (it will never execute a move), it neither
// anchors a merge nor partners a corner cut (a crashed corner partner
// would let a live robot oscillate around it forever), and the reclaim
// rule lets live robots walk onto frozen neighbors — possibly stranding
// crashed robots behind them, which the engine resolves as graceful
// degradation. Without the detector a crashed convex corner would
// suppress its lexicographically larger neighbors forever.
type Algorithm struct{}

// interferenceRadius is the L∞ radius of the mutual exclusion zone. Two
// candidate movers at L∞ ≤ 3 suppress the lexicographically larger one;
// movers at L∞ ≥ 4 touch disjoint cell sets (each move reads and writes
// only cells within L∞ 2 of its robot).
const interferenceRadius = 3

// Radius implements fsync.Algorithm: candidates live within L∞ 3 (L1 ≤ 6)
// and their candidacy checks read their 8-neighborhood and diagonal landing
// cells (L∞ 1 further, L1 ≤ 8).
func (Algorithm) Radius() int { return 8 }

// RoundPeriod implements fsync.Periodic: the strategy never reads the
// round number — its decisions are pure functions of the view's cell
// contents — so any two activations with identical views decide
// identically (period 1), unlocking the engine's quiescence fast path.
func (Algorithm) RoundPeriod() int { return 1 }

// candidate returns the move the sequential strategy proposes for the robot
// at relative position base (grid.Zero = the observing robot itself), if
// any. Returned coordinates are relative to base.
func candidate(v *view.View, base grid.Point) (grid.Point, bool) {
	occ := func(q grid.Point) bool { return v.Occ(q) }
	crs := func(q grid.Point) bool { return v.CrashedAt(q) }
	if t, ok := deletable(occ, crs, base); ok {
		return t.Sub(base), true
	}
	if q, ok := cuttable(occ, crs, base); ok {
		return q.Sub(base), true
	}
	if q, ok := reclaimable(occ, crs, base); ok {
		return q.Sub(base), true
	}
	return grid.Point{}, false
}

// Compute implements fsync.Algorithm. It is stateless and safe for
// concurrent calls (it only reads the view).
func (Algorithm) Compute(v *view.View) fsync.Action {
	move, ok := candidate(v, grid.Zero)
	if !ok {
		return fsync.Stay
	}
	// Local mutual exclusion: scan the interference zone for a candidate
	// mover at a lexicographically smaller position. Only smaller positions
	// can suppress, so only they need checking. Crashed robots never move,
	// so their candidacy is void — deferring to one would deadlock the
	// observer forever (the view's failure detector is what makes the
	// strategy live under crash faults).
	for dy := -interferenceRadius; dy <= interferenceRadius; dy++ {
		for dx := -interferenceRadius; dx <= interferenceRadius; dx++ {
			q := grid.Pt(dx, dy)
			if q == grid.Zero || !q.Less(grid.Zero) || !v.Occ(q) || v.CrashedAt(q) {
				continue
			}
			if _, ok := candidate(v, q); ok {
				return fsync.Stay
			}
		}
	}
	return fsync.MoveTo(move)
}
