package asyncseq

import (
	"testing"

	"gridgather/internal/gen"
	"gridgather/internal/grid"
	"gridgather/internal/swarm"
)

func TestDeletableLineEnd(t *testing.T) {
	s := gen.Line(4)
	if _, ok := deletable(s.Has, nil, grid.Pt(0, 0)); !ok {
		t.Error("line end must be deletable")
	}
	if _, ok := deletable(s.Has, nil, grid.Pt(1, 0)); ok {
		t.Error("line middle must not be deletable")
	}
}

func TestDeletableCornerWithDiagonal(t *testing.T) {
	// Corner with occupied diagonal: ring stays connected through it.
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1), grid.Pt(1, 1))
	if _, ok := deletable(s.Has, nil, grid.Pt(0, 0)); !ok {
		t.Error("block corner must be deletable")
	}
}

func TestCuttableRingCorner(t *testing.T) {
	s := gen.Hollow(5, 5)
	q, ok := cuttable(s.Has, nil, grid.Pt(0, 0))
	if !ok {
		t.Fatal("ring corner must be cuttable")
	}
	if q != grid.Pt(1, 1) {
		t.Errorf("cut target = %v", q)
	}
	// Wall middle: two opposite neighbors — not a corner.
	if _, ok := cuttable(s.Has, nil, grid.Pt(2, 0)); ok {
		t.Error("wall middle must not be cuttable")
	}
}

func TestRunGathersShapes(t *testing.T) {
	shapes := []struct {
		name string
		s    *swarm.Swarm
	}{
		{"line", gen.Line(40)},
		{"hollow", gen.Hollow(12, 9)},
		{"solid", gen.Solid(9, 9)},
		{"tree", gen.RandomTree(120, 5)},
		{"blob", gen.RandomBlob(120, 5)},
		{"spiral", gen.Spiral(14)},
	}
	for _, sh := range shapes {
		n := sh.s.Len()
		res := Run(sh.s, 10*n+50)
		if res.Err != nil || !res.Gathered {
			t.Fatalf("%s: %+v", sh.name, res)
		}
		if res.Rounds > 3*n {
			t.Errorf("%s: %d rounds for n=%d — not linear", sh.name, res.Rounds, n)
		}
		t.Logf("%-7s n=%-4d rounds=%d activations=%d merges=%d cuts=%d",
			sh.name, n, res.Rounds, res.Activations, res.Merges, res.Cuts)
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	s := gen.Line(10)
	Run(s, 100)
	if s.Len() != 10 {
		t.Error("input swarm mutated")
	}
}

// TestWhyFSYNCNeedsThePaper demonstrates the remark the baseline
// illustrates: executing the same "merge if locally deletable, else cut
// corners" rules simultaneously (FSYNC) can disconnect a swarm — the
// Fig. 5 hazard — which is why the paper introduces runs. The zigzag
// below disconnects when both its corners cut simultaneously.
func TestWhyFSYNCNeedsThePaper(t *testing.T) {
	s := swarm.New(grid.Pt(0, 1), grid.Pt(1, 1), grid.Pt(1, 0), grid.Pt(2, 0))
	// Simultaneous (FSYNC) application of the sequential rules:
	moves := map[grid.Point]grid.Point{}
	for _, p := range s.Cells() {
		if _, ok := deletable(s.Has, nil, p); ok {
			continue // deletions would merge: ignore for the hazard demo
		}
		if q, ok := cuttable(s.Has, nil, p); ok {
			moves[p] = q
		}
	}
	if len(moves) < 2 {
		t.Skip("shape did not trigger simultaneous cuts")
	}
	after := swarm.New()
	for _, p := range s.Cells() {
		if q, ok := moves[p]; ok {
			after.Add(q)
		} else {
			after.Add(p)
		}
	}
	if after.Connected() {
		t.Error("expected simultaneous corner cuts to disconnect the zigzag (Fig. 5 hazard)")
	}
}

// crashSet builds a crashed-predicate over a fixed set of cells.
func crashSet(cells ...grid.Point) func(grid.Point) bool {
	m := map[grid.Point]bool{}
	for _, p := range cells {
		m[p] = true
	}
	return func(p grid.Point) bool { return m[p] }
}

func TestCrashAwareDeletable(t *testing.T) {
	// Line with a crashed middle: the end's only axis neighbor is crashed,
	// so there is no live merge target.
	s := gen.Line(4)
	crashed := crashSet(grid.Pt(1, 0))
	if _, ok := deletable(s.Has, crashed, grid.Pt(0, 0)); ok {
		t.Error("end next to a crashed robot must not be live-deletable")
	}
	// The same end with a live middle stays deletable under a crash
	// predicate that matches nothing.
	if _, ok := deletable(s.Has, crashSet(), grid.Pt(0, 0)); !ok {
		t.Error("crash-aware deletable with no crashes must match fault-free")
	}
}

func TestCrashAwareCuttable(t *testing.T) {
	// A corner whose partners are live cuts onto a crashed diagonal,
	// reclaiming it.
	s := swarm.New(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1), grid.Pt(1, 1))
	q, ok := cuttable(s.Has, crashSet(grid.Pt(1, 1)), grid.Pt(0, 0))
	if !ok || q != grid.Pt(1, 1) {
		t.Errorf("corner must cut onto the crashed diagonal: %v, %v", q, ok)
	}
	// A crashed corner partner voids the corner: only one live axis left.
	if _, ok := cuttable(s.Has, crashSet(grid.Pt(1, 0)), grid.Pt(0, 0)); ok {
		t.Error("a crashed axis neighbor must not partner a corner cut")
	}
	// A live-occupied diagonal still blocks the cut.
	if _, ok := cuttable(s.Has, crashSet(), grid.Pt(0, 0)); ok {
		t.Error("cut onto a live robot must be refused")
	}
}

func TestReclaimable(t *testing.T) {
	// A robot pinned between two crashed neighbors, with its only live
	// contact on a diagonal: deletable and cuttable both refuse, reclaim
	// walks it onto a crashed neighbor the live cell flanks.
	s := swarm.New(grid.Pt(0, 0), grid.Pt(0, 1), grid.Pt(0, -1), grid.Pt(1, 1))
	crashed := crashSet(grid.Pt(0, 1), grid.Pt(0, -1))
	if _, ok := deletable(s.Has, crashed, grid.Pt(0, 0)); ok {
		t.Error("pinned robot must not be deletable")
	}
	if _, ok := cuttable(s.Has, crashed, grid.Pt(0, 0)); ok {
		t.Error("pinned robot must not be cuttable")
	}
	q, ok := reclaimable(s.Has, crashed, grid.Pt(0, 0))
	if !ok || q != grid.Pt(0, 1) {
		t.Errorf("reclaim = %v, %v; want (0,1), true — the crashed neighbor flanked by the live diagonal", q, ok)
	}
	// With a live cell that does not flank any crashed neighbor, reclaim
	// must refuse (the move would break live connectivity).
	s2 := swarm.New(grid.Pt(0, 0), grid.Pt(0, 1), grid.Pt(1, -1))
	if _, ok := reclaimable(s2.Has, crashSet(grid.Pt(0, 1)), grid.Pt(0, 0)); ok {
		t.Error("reclaim with a non-flanking live cell must be refused")
	}
	// Fault-free: never reclaimable.
	if _, ok := reclaimable(s.Has, nil, grid.Pt(0, 0)); ok {
		t.Error("reclaim without a crash predicate must be refused")
	}
}
