package fault

import (
	"errors"
	"testing"
)

// FuzzParse throws arbitrary spec strings at the parser: it must never
// panic, every rejection must wrap ErrBadSpec, and every accepted spec must
// round-trip through its canonical String() form — reparsing the canonical
// form yields the same canonical form and an equivalent fault schedule.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"", "off", "none",
		"crash:p=0.001", "crash:p=0.5@7", "crash-at:r=500,k=32",
		"crash-at:r=0,k=1@-9", "noise:p=0.01",
		"crash:p=0.001+noise:p=0.01", "crash:p=1+crash-at:r=3,k=2+noise:p=1",
		"crash:p=2", "crash-at:r=5", "bogus:p=1", "crash:p=0.5@x",
		"crash:p=0.5,p=0.5", "+", "@", ":", "crash:p=1e-3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec, 42)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("Parse(%q) error %v does not wrap ErrBadSpec", spec, err)
			}
			return
		}
		if p == nil {
			return // fault-free spec
		}
		canon := p.String()
		q, err := Parse(canon, 42)
		if err != nil || q == nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if got := q.String(); got != canon {
			t.Fatalf("String not a fixed point: %q -> %q (from %q)", canon, got, spec)
		}
		// Equivalent schedules: same crash draws and noise flips over a
		// short horizon. (p and q were parsed with the same seed.)
		alive := make([]bool, 16)
		aliveQ := make([]bool, 16)
		for i := range alive {
			alive[i], aliveQ[i] = true, true
		}
		for r := 0; r < 5; r++ {
			if a, b := p.DrawCrashes(r, alive), q.DrawCrashes(r, aliveQ); a != b {
				t.Fatalf("round %d: %q and its canonical form %q draw different crashes", r, spec, canon)
			}
			pOff, pOK := p.NoiseFlip(3)
			qOff, qOK := q.NoiseFlip(3)
			if pOK != qOK || pOff != qOff {
				t.Fatalf("round %d: %q and its canonical form %q flip different noise", r, spec, canon)
			}
		}
		// The cursor must round-trip at any point in the schedule.
		cur := p.AppendCursor(nil)
		fresh, err := Parse(canon, 42)
		if err != nil || fresh == nil {
			t.Fatalf("reparse for cursor restore failed: %v", err)
		}
		rest, err := fresh.RestoreCursor(cur)
		if err != nil {
			t.Fatalf("RestoreCursor on own cursor: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d bytes left after cursor restore", len(rest))
		}
	})
}
