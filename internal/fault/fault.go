// Package fault is the deterministic fault-injection layer: a Plan parsed
// from a spec string derives crash-stop decisions and sensor-noise flips
// from per-clause splitmix64 streams, so faulty runs are exactly as
// reproducible — and as snapshot-resumable — as clean ones. The engine owns
// the semantics (a crashed robot freezes forever as an occupied,
// mergeable-onto cell; noise flips one cell per activated view); this
// package owns the randomness and its checkpoint encoding.
//
// Spec grammar (clauses joined by "+", each with an optional "@seed"
// overriding the stream seed for that clause):
//
//	crash:p=0.001           each alive robot crashes with probability p per round
//	crash-at:r=500,k=32     at round r, exactly min(k, alive) robots crash at once
//	noise:p=0.01            each activated robot's view gets one flipped cell w.p. p
//
// "", "off" and "none" parse to a nil Plan (fault-free). Without "@seed" a
// clause's stream derives from the simulation seed, so faults vary across
// sweep seeds like ssync-rand's coin flips do; with "@seed" the fault
// schedule is pinned independently of the simulation seed.
//
//gather:deterministic
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"gridgather/internal/codec"
	"gridgather/internal/grid"
)

// ErrBadSpec is wrapped by every Parse failure; match with errors.Is.
var ErrBadSpec = errors.New("fault: bad spec")

// Clause kinds.
const (
	kindCrashP  = iota // crash:p=<float> — per-robot per-round coin
	kindCrashAt        // crash-at:r=<round>,k=<count> — one-shot mass crash
	kindNoise          // noise:p=<float> — per-activation view flip coin
)

// clause is one parsed fault source with its own RNG stream. The stream
// state (and the one-shot fired latch) is the only mutable state; the rest
// is construction parameters re-derived from the spec on restore.
type clause struct {
	kind   int
	p      float64 // crash / noise probability
	r      int     // crash-at round
	k      int     // crash-at count
	seeded bool    // explicit @seed in the spec
	seed   int64   // the explicit seed (only meaningful when seeded)
	rng    splitmix
	fired  bool // crash-at already executed
}

// Plan is a parsed, seeded fault schedule for exactly one simulation. The
// zero number of clauses never occurs: empty specs parse to a nil *Plan,
// and all code paths treat nil as "no faults".
type Plan struct {
	clauses []clause
}

// Parse builds a Plan from a spec string, seeding each clause's stream.
// Clauses without an explicit "@seed" derive their stream from seed (and
// their position, so two identical clauses get distinct streams); clauses
// with "@seed" ignore the simulation seed entirely. Empty, "off" and
// "none" specs return (nil, nil). Malformed specs fail fast with errors
// wrapping ErrBadSpec.
func Parse(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return nil, nil
	}
	var p Plan
	for i, raw := range strings.Split(spec, "+") {
		c, err := parseClause(raw)
		if err != nil {
			return nil, err
		}
		if c.seeded {
			c.rng = splitmix{state: uint64(c.seed)}
		} else {
			// Golden-ratio stride keeps same-seed clause streams apart.
			c.rng = splitmix{state: uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)}
		}
		p.clauses = append(p.clauses, c)
	}
	return &p, nil
}

// parseClause parses one "name:key=value[,key=value][@seed]" clause.
func parseClause(raw string) (clause, error) {
	var c clause
	body, seedStr, hasSeed := strings.Cut(strings.TrimSpace(raw), "@")
	if hasSeed {
		v, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return c, fmt.Errorf("%w: bad seed %q in clause %q", ErrBadSpec, seedStr, raw)
		}
		c.seeded, c.seed = true, v
	}
	name, args, hasArgs := strings.Cut(body, ":")
	if !hasArgs || args == "" {
		return c, fmt.Errorf("%w: clause %q needs parameters (grammar: %s)", ErrBadSpec, raw, strings.Join(Specs(), ", "))
	}
	switch name {
	case "crash":
		c.kind = kindCrashP
	case "crash-at":
		c.kind = kindCrashAt
	case "noise":
		c.kind = kindNoise
	default:
		return c, fmt.Errorf("%w: unknown fault %q (grammar: %s)", ErrBadSpec, name, strings.Join(Specs(), ", "))
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(args, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("%w: bad parameter %q in clause %q (want key=value)", ErrBadSpec, kv, raw)
		}
		if seen[key] {
			return c, fmt.Errorf("%w: duplicate parameter %q in clause %q", ErrBadSpec, key, raw)
		}
		seen[key] = true
		switch {
		case key == "p" && c.kind != kindCrashAt:
			v, err := strconv.ParseFloat(val, 64)
			// The negated range check also rejects NaN, which compares
			// false against both bounds.
			if err != nil || !(v >= 0 && v <= 1) {
				return c, fmt.Errorf("%w: bad probability %q in clause %q (want a float in [0,1])", ErrBadSpec, val, raw)
			}
			c.p = v
		case key == "r" && c.kind == kindCrashAt:
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return c, fmt.Errorf("%w: bad round %q in clause %q (want a non-negative integer)", ErrBadSpec, val, raw)
			}
			c.r = v
		case key == "k" && c.kind == kindCrashAt:
			v, err := strconv.Atoi(val)
			if err != nil || v < 1 {
				return c, fmt.Errorf("%w: bad count %q in clause %q (want a positive integer)", ErrBadSpec, val, raw)
			}
			c.k = v
		default:
			return c, fmt.Errorf("%w: unknown parameter %q in clause %q", ErrBadSpec, key, raw)
		}
	}
	if c.kind == kindCrashAt && !seen["k"] {
		return c, fmt.Errorf("%w: clause %q needs k=<count>", ErrBadSpec, raw)
	}
	if c.kind != kindCrashAt && !seen["p"] {
		return c, fmt.Errorf("%w: clause %q needs p=<probability>", ErrBadSpec, raw)
	}
	return c, nil
}

// Specs lists the accepted clause grammars for help output.
func Specs() []string {
	return []string{"crash:p=<prob>[@seed]", "crash-at:r=<round>,k=<count>[@seed]", "noise:p=<prob>[@seed]"}
}

// Seeded reports whether the spec's fault schedule depends on the
// simulation seed — i.e. whether any clause lacks an explicit "@seed".
// It rejects any spec Parse would reject, so sweep validation can rely on
// it alone. Empty/off/none specs are not seeded.
func Seeded(spec string) (bool, error) {
	p, err := Parse(spec, 1)
	if err != nil || p == nil {
		return false, err
	}
	for i := range p.clauses {
		if !p.clauses[i].seeded {
			return true, nil
		}
	}
	return false, nil
}

// HasCrashes reports whether the plan contains any crash clause. Engines
// use it to route activation through the crash-aware path.
func (p *Plan) HasCrashes() bool {
	if p == nil {
		return false
	}
	for i := range p.clauses {
		if p.clauses[i].kind != kindNoise {
			return true
		}
	}
	return false
}

// HasNoise reports whether the plan contains any noise clause.
func (p *Plan) HasNoise() bool {
	if p == nil {
		return false
	}
	for i := range p.clauses {
		if p.clauses[i].kind == kindNoise {
			return true
		}
	}
	return false
}

// DrawCrashes draws this round's crash decisions over the population in
// canonical cell order: alive[i] reports whether robot i is still live
// going into the round, and DrawCrashes clears the entries of robots that
// crash now, returning how many it cleared. Streams advance only for live
// robots (crash:p) or on the firing round (crash-at), so consumption — and
// therefore every later draw — is a deterministic function of the plan and
// the round history.
func (p *Plan) DrawCrashes(round int, alive []bool) int {
	if p == nil {
		return 0
	}
	crashed := 0
	for ci := range p.clauses {
		c := &p.clauses[ci]
		switch c.kind {
		case kindCrashP:
			if c.p == 0 {
				continue
			}
			for i := range alive {
				if alive[i] && c.rng.float64() < c.p {
					alive[i] = false
					crashed++
				}
			}
		case kindCrashAt:
			if c.fired || round < c.r {
				continue
			}
			c.fired = true
			remaining := 0
			for i := range alive {
				if alive[i] {
					remaining++
				}
			}
			need := min(c.k, remaining)
			// Selection sampling: pick exactly `need` of the `remaining`
			// live robots uniformly, in one canonical-order pass.
			for i := range alive {
				if need == 0 {
					break
				}
				if !alive[i] {
					continue
				}
				if c.rng.next()%uint64(remaining) < uint64(need) {
					alive[i] = false
					crashed++
					need--
				}
				remaining--
			}
		}
	}
	return crashed
}

// NoiseFlip draws one activation's view perturbation: with each noise
// clause's probability, a single relative cell within the L1 view radius
// gets its occupancy reading inverted. It returns the flip offset and
// whether any clause fired (the last firing clause wins). Streams advance
// exactly one coin per call per clause (plus the offset draws of firing
// clauses), so consumption is deterministic per activation sequence.
func (p *Plan) NoiseFlip(radius int) (grid.Point, bool) {
	var off grid.Point
	fired := false
	if p == nil || radius < 1 {
		return off, false
	}
	for ci := range p.clauses {
		c := &p.clauses[ci]
		if c.kind != kindNoise || c.p == 0 {
			continue
		}
		if c.rng.float64() >= c.p {
			continue
		}
		// Rejection-sample a non-center offset inside the L1 ball (views
		// reject reads beyond radius in L1). Acceptance is ≥ 2/(2r+1)²·r
		// of the square, so the loop terminates fast in practice.
		for {
			span := uint64(2*radius + 1)
			dx := int(c.rng.next()%span) - radius
			dy := int(c.rng.next()%span) - radius
			if d := abs(dx) + abs(dy); d >= 1 && d <= radius {
				off, fired = grid.Point{X: dx, Y: dy}, true
				break
			}
		}
	}
	return off, fired
}

// String renders the plan canonically: clauses in parse order, parameters
// in grammar order, probabilities in shortest round-trip form, "@seed"
// only where the spec pinned one. Sweep aggregation groups on this.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var sb strings.Builder
	for i := range p.clauses {
		c := &p.clauses[i]
		if i > 0 {
			sb.WriteByte('+')
		}
		switch c.kind {
		case kindCrashP:
			sb.WriteString("crash:p=")
			sb.WriteString(strconv.FormatFloat(c.p, 'g', -1, 64))
		case kindCrashAt:
			fmt.Fprintf(&sb, "crash-at:r=%d,k=%d", c.r, c.k)
		case kindNoise:
			sb.WriteString("noise:p=")
			sb.WriteString(strconv.FormatFloat(c.p, 'g', -1, 64))
		}
		if c.seeded {
			fmt.Fprintf(&sb, "@%d", c.seed)
		}
	}
	return sb.String()
}

// AppendCursor encodes the plan's mutable state — each clause's RNG
// position and one-shot latch — in clause order. Construction parameters
// are not encoded: the restore path re-parses the spec and then restores
// the cursor into the fresh plan, mirroring sched.CursorCodec.
func (p *Plan) AppendCursor(b []byte) []byte {
	for i := range p.clauses {
		c := &p.clauses[i]
		b = codec.AppendUvarint(b, c.rng.state)
		if c.kind == kindCrashAt {
			b = codec.AppendBool(b, c.fired)
		}
	}
	return b
}

// RestoreCursor decodes AppendCursor's encoding into a freshly parsed
// plan, returning the unread remainder.
func (p *Plan) RestoreCursor(b []byte) ([]byte, error) {
	r := codec.NewReader(b)
	for i := range p.clauses {
		c := &p.clauses[i]
		c.rng.state = r.Uvarint()
		if c.kind == kindCrashAt {
			c.fired = r.Bool()
		}
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return r.Rest(), nil
}

// splitmix is the fault coin-flip stream: the same one-word splitmix64
// generator sched's random scheduler runs on, chosen for the same reason —
// its entire state is one uvarint, so fault cursors stay checkpointable.
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *splitmix) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
