package fault

import (
	"errors"
	"testing"
)

func mustParse(t *testing.T, spec string, seed int64) *Plan {
	t.Helper()
	p, err := Parse(spec, seed)
	if err != nil {
		t.Fatalf("Parse(%q, %d): %v", spec, seed, err)
	}
	if p == nil {
		t.Fatalf("Parse(%q, %d): nil plan", spec, seed)
	}
	return p
}

func TestParseFaultFree(t *testing.T) {
	for _, spec := range []string{"", "off", "none", "  off  "} {
		p, err := Parse(spec, 42)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus:p=0.5",        // unknown fault name
		"crash",              // no parameters
		"crash:",             // empty parameters
		"crash:p=2",          // probability out of range
		"crash:p=-0.1",       // probability out of range
		"crash:p=x",          // non-numeric probability
		"crash:p=0.5@x",      // non-numeric seed
		"crash:k=3",          // wrong parameter for the kind
		"crash:p=0.5,p=0.5",  // duplicate parameter
		"crash-at:r=5",       // missing k
		"crash-at:k=0,r=5",   // k below 1
		"crash-at:r=-1,k=3",  // negative round
		"crash-at:r=1,k=3,q", // malformed pair
		"noise:r=5,k=1",      // wrong parameters for noise
		"noise:p=0.1+",       // empty trailing clause
		"+noise:p=0.1",       // empty leading clause
	}
	for _, spec := range bad {
		p, err := Parse(spec, 42)
		if err == nil {
			t.Errorf("Parse(%q) accepted (plan %v)", spec, p)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) error %v does not wrap ErrBadSpec", spec, err)
		}
	}
}

func TestStringCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"crash:p=0.25", "crash:p=0.25"},
		{" crash:p=0.250 + noise:p=0.1@7 ", "crash:p=0.25+noise:p=0.1@7"},
		{"crash-at:k=8,r=50", "crash-at:r=50,k=8"},
		{"crash-at:r=50,k=8@-3", "crash-at:r=50,k=8@-3"},
		{"noise:p=1", "noise:p=1"},
	}
	for _, c := range cases {
		p := mustParse(t, c.in, 42)
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// The canonical form must reparse to itself (String is a fixed
		// point), so sweep aggregation keys are stable.
		again := mustParse(t, p.String(), 42)
		if again.String() != p.String() {
			t.Errorf("String not a fixed point: %q -> %q", p.String(), again.String())
		}
	}
	var nilPlan *Plan
	if nilPlan.String() != "" {
		t.Errorf("nil plan String = %q", nilPlan.String())
	}
}

func TestSeeded(t *testing.T) {
	cases := []struct {
		spec string
		want bool
	}{
		{"", false},
		{"off", false},
		{"crash:p=0.5@7", false},
		{"crash:p=0.5", true},
		{"crash:p=0.5@7+noise:p=0.1", true},
		{"crash-at:r=5,k=2@1+noise:p=0.1@2", false},
	}
	for _, c := range cases {
		got, err := Seeded(c.spec)
		if err != nil || got != c.want {
			t.Errorf("Seeded(%q) = %v, %v; want %v, nil", c.spec, got, err, c.want)
		}
	}
	if _, err := Seeded("crash:p=9"); !errors.Is(err, ErrBadSpec) {
		t.Errorf("Seeded on a bad spec: %v, want ErrBadSpec", err)
	}
}

func TestHasKinds(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.HasCrashes() || nilPlan.HasNoise() {
		t.Error("nil plan reports faults")
	}
	p := mustParse(t, "noise:p=0.5", 1)
	if p.HasCrashes() || !p.HasNoise() {
		t.Errorf("noise plan: HasCrashes=%v HasNoise=%v", p.HasCrashes(), p.HasNoise())
	}
	p = mustParse(t, "crash-at:r=1,k=1", 1)
	if !p.HasCrashes() || p.HasNoise() {
		t.Errorf("crash plan: HasCrashes=%v HasNoise=%v", p.HasCrashes(), p.HasNoise())
	}
}

// drawSeq runs rounds of DrawCrashes over a fresh population and returns
// the per-round crash counts plus the final liveness vector.
func drawSeq(p *Plan, n, rounds int) (counts []int, alive []bool) {
	alive = make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for r := 0; r < rounds; r++ {
		counts = append(counts, p.DrawCrashes(r, alive))
	}
	return counts, alive
}

func TestDrawCrashesDeterministic(t *testing.T) {
	a := mustParse(t, "crash:p=0.05", 7)
	b := mustParse(t, "crash:p=0.05", 7)
	ca, la := drawSeq(a, 64, 50)
	cb, lb := drawSeq(b, 64, 50)
	for r := range ca {
		if ca[r] != cb[r] {
			t.Fatalf("round %d: crash counts diverged: %d vs %d", r, ca[r], cb[r])
		}
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("robot %d: liveness diverged", i)
		}
	}
	// A different simulation seed must give a different schedule (the
	// clause has no "@seed" pin).
	c := mustParse(t, "crash:p=0.05", 8)
	cc, _ := drawSeq(c, 64, 50)
	same := true
	for r := range ca {
		if ca[r] != cc[r] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical crash schedules (suspicious)")
	}
}

func TestExplicitSeedPinsSchedule(t *testing.T) {
	// "@seed" clauses ignore the simulation seed entirely.
	a := mustParse(t, "crash:p=0.05@99", 1)
	b := mustParse(t, "crash:p=0.05@99", 2)
	ca, _ := drawSeq(a, 64, 50)
	cb, _ := drawSeq(b, 64, 50)
	for r := range ca {
		if ca[r] != cb[r] {
			t.Fatalf("round %d: pinned schedules diverged under different sim seeds", r)
		}
	}
}

func TestDrawCrashesZeroAndOne(t *testing.T) {
	p := mustParse(t, "crash:p=0", 7)
	counts, alive := drawSeq(p, 32, 20)
	for r, c := range counts {
		if c != 0 {
			t.Fatalf("p=0 crashed %d robots at round %d", c, r)
		}
	}
	for i := range alive {
		if !alive[i] {
			t.Fatalf("p=0 cleared robot %d", i)
		}
	}
	p = mustParse(t, "crash:p=1", 7)
	counts, alive = drawSeq(p, 32, 2)
	if counts[0] != 32 || counts[1] != 0 {
		t.Fatalf("p=1 counts = %v, want [32 0]", counts)
	}
	for i := range alive {
		if alive[i] {
			t.Fatalf("p=1 left robot %d alive", i)
		}
	}
}

func TestDrawCrashesCrashAt(t *testing.T) {
	p := mustParse(t, "crash-at:r=3,k=5", 7)
	counts, alive := drawSeq(p, 32, 10)
	for r, c := range counts {
		want := 0
		if r == 3 {
			want = 5
		}
		if c != want {
			t.Fatalf("round %d: crash-at crashed %d, want %d", r, c, want)
		}
	}
	live := 0
	for i := range alive {
		if alive[i] {
			live++
		}
	}
	if live != 32-5 {
		t.Fatalf("crash-at left %d alive, want %d", live, 32-5)
	}

	// k larger than the population crashes everyone, exactly once.
	p = mustParse(t, "crash-at:r=0,k=100", 7)
	counts, _ = drawSeq(p, 8, 3)
	if counts[0] != 8 || counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("oversized crash-at counts = %v", counts)
	}
}

func TestNoiseFlip(t *testing.T) {
	p := mustParse(t, "noise:p=1", 7)
	for i := 0; i < 200; i++ {
		off, ok := p.NoiseFlip(4)
		if !ok {
			t.Fatal("p=1 noise did not fire")
		}
		if d := abs(off.X) + abs(off.Y); d < 1 || d > 4 {
			t.Fatalf("flip offset %v outside the L1 ball of radius 4", off)
		}
	}
	p = mustParse(t, "noise:p=0", 7)
	for i := 0; i < 50; i++ {
		if _, ok := p.NoiseFlip(4); ok {
			t.Fatal("p=0 noise fired")
		}
	}
	// Degenerate radii never fire (there is no valid off-center cell).
	p = mustParse(t, "noise:p=1", 7)
	if _, ok := p.NoiseFlip(0); ok {
		t.Fatal("radius-0 noise fired")
	}
	var nilPlan *Plan
	if _, ok := nilPlan.NoiseFlip(4); ok {
		t.Fatal("nil plan noise fired")
	}
}

func TestCursorRoundTrip(t *testing.T) {
	const spec = "crash:p=0.03+crash-at:r=5,k=4@9+noise:p=0.2"
	orig := mustParse(t, spec, 7)

	// Advance the streams mid-schedule: some crash rounds, some noise.
	alive := make([]bool, 40)
	for i := range alive {
		alive[i] = true
	}
	for r := 0; r < 8; r++ {
		orig.DrawCrashes(r, alive)
		orig.NoiseFlip(3)
	}

	cur := orig.AppendCursor(nil)
	if again := orig.AppendCursor(nil); string(again) != string(cur) {
		t.Fatal("AppendCursor not deterministic")
	}
	restored := mustParse(t, spec, 7)
	rest, err := restored.RestoreCursor(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after cursor restore", len(rest))
	}

	// Both plans must now produce identical futures.
	aliveB := append([]bool(nil), alive...)
	for r := 8; r < 30; r++ {
		if a, b := orig.DrawCrashes(r, alive), restored.DrawCrashes(r, aliveB); a != b {
			t.Fatalf("round %d: crash draw diverged after restore: %d vs %d", r, a, b)
		}
		oOff, oOK := orig.NoiseFlip(3)
		rOff, rOK := restored.NoiseFlip(3)
		if oOK != rOK || oOff != rOff {
			t.Fatalf("round %d: noise draw diverged after restore", r)
		}
	}

	// Truncated cursors must error, not panic.
	for cut := 0; cut < len(cur); cut++ {
		if _, err := mustParse(t, spec, 7).RestoreCursor(cur[:cut]); err == nil && cut < len(cur) {
			// Some prefixes happen to decode (uvarint boundaries); the
			// decisive case is the empty prefix.
			continue
		}
	}
	if _, err := mustParse(t, spec, 7).RestoreCursor(nil); err == nil {
		t.Fatal("empty cursor restored without error")
	}
}
