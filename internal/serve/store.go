package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoSnapshot reports a session absent from the spill store.
var ErrNoSnapshot = errors.New("serve: no spilled snapshot for session")

// SpillMeta is the sidecar record written next to a spilled snapshot: the
// execution options a Simulation.Restore cannot recover from the snapshot
// itself (they are not structural state), plus informational fields for
// listings after a daemon restart.
type SpillMeta struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	// Workers, FullBFS and FullRecompute are execution options re-applied
	// on restore (the snapshot carries only structural configuration and
	// the resumable state).
	Workers       int  `json:"workers,omitempty"`
	FullBFS       bool `json:"full_bfs,omitempty"`
	FullRecompute bool `json:"full_recompute,omitempty"`
	// Round, Robots, Done and Reason describe the session at spill time
	// (informational: listings read them without restoring the session).
	Round  int    `json:"round"`
	Robots int    `json:"robots"`
	Done   bool   `json:"done"`
	Reason string `json:"reason,omitempty"`
}

// Store is the disk spill store: one <id>.ggss snapshot plus one
// <id>.json meta sidecar per spilled session, written atomically
// (tmp + rename) so a crash mid-spill never leaves a torn snapshot.
// Snapshot() output is the only payload format — the same bytes a client
// downloads from the snapshot endpoint, so spilling, migration between
// boxes, and client-side checkpointing are one currency.
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens a spill directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("serve: empty spill directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the spill directory path.
func (st *Store) Dir() string { return st.dir }

func (st *Store) snapPath(id string) string { return filepath.Join(st.dir, id+".ggss") }
func (st *Store) metaPath(id string) string { return filepath.Join(st.dir, id+".json") }

// Put writes the session's snapshot and meta sidecar atomically.
func (st *Store) Put(meta SpillMeta, snapshot []byte) error {
	if meta.ID == "" {
		return errors.New("serve: spill with empty session ID")
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := writeAtomic(st.snapPath(meta.ID), snapshot); err != nil {
		return err
	}
	return writeAtomic(st.metaPath(meta.ID), append(mb, '\n'))
}

// Get reads a spilled session back.
func (st *Store) Get(id string) (SpillMeta, []byte, error) {
	mb, err := os.ReadFile(st.metaPath(id))
	if errors.Is(err, fs.ErrNotExist) {
		return SpillMeta{}, nil, fmt.Errorf("%w: %s", ErrNoSnapshot, id)
	}
	if err != nil {
		return SpillMeta{}, nil, err
	}
	var meta SpillMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return SpillMeta{}, nil, fmt.Errorf("serve: corrupt spill meta %s: %w", id, err)
	}
	snap, err := os.ReadFile(st.snapPath(id))
	if err != nil {
		return SpillMeta{}, nil, err
	}
	return meta, snap, nil
}

// Delete removes a spilled session; deleting an absent one is not an
// error (the session may never have spilled).
func (st *Store) Delete(id string) error {
	err1 := os.Remove(st.snapPath(id))
	err2 := os.Remove(st.metaPath(id))
	for _, err := range []error{err1, err2} {
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return nil
}

// List returns the meta records of every spilled session, sorted by ID —
// the recovery surface a restarting daemon walks to re-admit sessions.
func (st *Store) List() ([]SpillMeta, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var metas []SpillMeta
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() {
			continue
		}
		meta, _, err := st.Get(id)
		if err != nil {
			// A torn pair (meta without snapshot, or corrupt JSON) is
			// skipped, not fatal: the daemon must come up with the
			// sessions it can recover.
			continue
		}
		metas = append(metas, meta)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
	return metas, nil
}

// writeAtomic writes data via a temp file + rename in the target's
// directory.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
