package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"gridgather/internal/serve/pool"
)

// handleEvents is the NDJSON event stream: one JSON record per line, the
// first a "status" record describing the session, then simulation events
// filtered by the ?mask= parameter. Subscribing touches the session (it
// restores if spilled) but the stream itself does not pin it — the
// subscriber list lives on the server-side wrapper, so a session can be
// evicted and restored mid-stream and the consumer just keeps receiving
// events from wherever stepping resumes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	mask, err := ParseEventMask(r.URL.Query().Get("mask"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	select {
	case <-s.done:
		s.httpError(w, http.StatusServiceUnavailable, "serve: shutting down")
		return
	default:
	}
	var (
		sub     *subscriber
		owner   *session
		opening EventRecord
	)
	s.withSession(w, r.PathValue("id"), func(e *pool.Entry, sess *session) error {
		sub = sess.subscribe(mask, s.cfg.StreamBuffer)
		owner = sess
		info := sess.refreshInfo(true)
		opening = EventRecord{Kind: "status", Round: info.Round, Robots: info.Robots}
		return nil
	})
	if sub == nil {
		return // withSession already wrote the error
	}
	s.streamLoop(w, r, owner, sub, opening)
}

// streamLoop pumps records to one consumer until it falls behind, hangs
// up, or the server shuts down. Every write carries a deadline
// (StreamWriteTimeout) — the min-recv-rate rule: a consumer that cannot
// drain one record per deadline is evicted rather than allowed to stall.
func (s *Server) streamLoop(w http.ResponseWriter, r *http.Request, sess *session, sub *subscriber, opening EventRecord) {
	defer sess.unsubscribe(sub)
	s.streamsOpen.Add(1)
	s.streamsOpened.Add(1)
	defer s.streamsOpen.Add(-1)

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	write := func(rec EventRecord) bool {
		line, err := json.Marshal(rec)
		if err != nil {
			return false
		}
		line = append(line, '\n')
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		n, err := w.Write(line)
		s.pool.NoteFlow(n)
		if err != nil {
			sub.evict("slow consumer: write timeout")
			s.noteSlowEviction()
			return false
		}
		_ = rc.Flush()
		return true
	}

	if !write(opening) {
		return
	}
	for {
		select {
		case rec := <-sub.ch:
			if !write(rec) {
				return
			}
		case <-sub.done:
			// Evicted server-side (buffer overflow, session deleted):
			// say why, then hang up.
			write(EventRecord{Kind: "evicted", Error: sub.reason})
			return
		case <-s.done:
			write(EventRecord{Kind: "closed"})
			return
		case <-r.Context().Done():
			return
		}
	}
}
