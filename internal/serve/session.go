package serve

import (
	"sync"

	"gridgather"
)

// session is the server-side wrapper around one pooled Simulation. The
// wrapper outlives the Simulation object itself: eviction discards the
// sim (its state lives on as a spilled snapshot) while the wrapper — and
// any event subscribers attached to it — stays, so a stream spans
// spill/restore cycles transparently.
//
// mu serializes all Simulation access (a Simulation is single-goroutine);
// the subscriber list has its own lock so streams can attach and detach
// while a step is running.
type session struct {
	id string

	mu      sync.Mutex // guards sim, exec, label, deleted
	sim     *gridgather.Simulation
	exec    execOptions
	label   string
	deleted bool

	// relayCancel detaches the wrapper's single Simulation subscription;
	// nil when no relay is attached (no sim, or no subscribers). Guarded
	// by mu (it is only touched while the sim is held).
	relayCancel func()

	subMu sync.Mutex
	subs  []*subscriber

	infoMu sync.Mutex
	info   SessionInfo // last known status; served to listings lock-free

	// stream counters owned by the server, bumped through it.
	srv *Server
}

// execOptions are the execution-side options preserved across
// spill/restore (the snapshot carries only structural state).
type execOptions struct {
	workers       int
	fullBFS       bool
	fullRecompute bool
}

func (o execOptions) restoreOptions() []gridgather.Option {
	return []gridgather.Option{
		gridgather.WithWorkers(o.workers),
		gridgather.WithFullBFSConnectivity(o.fullBFS),
		gridgather.WithFullRecompute(o.fullRecompute),
	}
}

// subscriber is one NDJSON stream consumer. The fan-out side never
// blocks: records are delivered with a non-blocking send into ch, and a
// consumer that lets the buffer fill is evicted (done closed, reason
// set) — the slow-consumer discipline that keeps one stalled client from
// stalling the simulation or any other stream.
type subscriber struct {
	mask gridgather.EventMask
	ch   chan EventRecord

	once   sync.Once
	done   chan struct{}
	reason string // set before done closes
}

// evict closes the subscriber exactly once with a reason.
func (sub *subscriber) evict(reason string) {
	sub.once.Do(func() {
		sub.reason = reason
		close(sub.done)
	})
}

// setInfo caches the latest status for lock-free listings.
func (s *session) setInfo(info SessionInfo) {
	s.infoMu.Lock()
	s.info = info
	s.infoMu.Unlock()
}

func (s *session) cachedInfo() SessionInfo {
	s.infoMu.Lock()
	defer s.infoMu.Unlock()
	return s.info
}

// refreshInfo recomputes the cached status from the live sim. Callers
// hold s.mu with s.sim non-nil.
func (s *session) refreshInfo(resident bool) SessionInfo {
	info := sessionInfo(s.id, s.label, resident, s.sim.Status())
	s.setInfo(info)
	return info
}

// subscribe attaches a stream consumer, wiring the relay into the live
// sim if this is the first one. Callers hold s.mu (the relay touches the
// sim); the subscriber list itself is guarded by subMu so the fan-out
// callback — which runs under mu on the stepping goroutine — and
// detaching streams never race.
func (s *session) subscribe(mask gridgather.EventMask, buffer int) *subscriber {
	sub := &subscriber{
		mask: mask,
		ch:   make(chan EventRecord, buffer),
		done: make(chan struct{}),
	}
	s.subMu.Lock()
	s.subs = append(s.subs, sub)
	s.subMu.Unlock()
	s.attachRelay()
	return sub
}

// unsubscribe detaches a consumer (client hung up or was evicted). The
// relay stays attached even if this was the last subscriber — it is
// detached lazily by the fan-out callback on its next delivery, which is
// the cancel-from-inside-the-callback path the root package's
// subscription machinery is proven safe for.
func (s *session) unsubscribe(sub *subscriber) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
}

// attachRelay subscribes the fan-out callback to the live sim if it has
// subscribers and no relay yet. Callers hold s.mu.
func (s *session) attachRelay() {
	if s.sim == nil || s.relayCancel != nil {
		return
	}
	s.subMu.Lock()
	n := len(s.subs)
	s.subMu.Unlock()
	if n == 0 {
		return
	}
	s.relayCancel = s.sim.Subscribe(gridgather.AllEvents, s.fanOut)
}

// detachRelay cancels the sim subscription (spill, delete). Callers hold
// s.mu.
func (s *session) detachRelay() {
	if s.relayCancel != nil {
		s.relayCancel()
		s.relayCancel = nil
	}
}

// fanOut is the relay callback: it runs synchronously on the goroutine
// stepping the sim (under s.mu), converts the borrowed event into wire
// scalars, and delivers it non-blockingly to every matching subscriber.
// A subscriber whose buffer is full is evicted on the spot — the
// min-recv-rate discipline's deterministic half (the stream writer adds
// the wall-clock half). When the last subscriber is gone the relay
// cancels itself from inside its own callback — exactly the pattern
// TestCancelOwnSubscriptionDuringEmit pins as safe.
func (s *session) fanOut(ev gridgather.Event) {
	rec := eventRecord(ev)
	s.subMu.Lock()
	live := s.subs[:0]
	for _, sub := range s.subs {
		if !sub.mask.Has(ev.Kind) {
			live = append(live, sub)
			continue
		}
		select {
		case sub.ch <- rec:
			live = append(live, sub)
			s.srv.noteEventStreamed()
		default:
			sub.evict("slow consumer: event buffer overflow")
			s.srv.noteSlowEviction()
		}
	}
	clear(s.subs[len(live):])
	s.subs = live
	empty := len(s.subs) == 0
	s.subMu.Unlock()
	if empty {
		// Cancelling our own subscription mid-emit: safe per the root
		// package's documented Subscribe contract and its tests.
		s.detachRelay()
	}
}

// evictSubscribers drops every stream consumer (session deleted).
func (s *session) evictSubscribers(reason string) {
	s.subMu.Lock()
	subs := s.subs
	s.subs = nil
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.evict(reason)
	}
}
