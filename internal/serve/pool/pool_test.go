package pool

import (
	"errors"
	"fmt"
	"testing"
)

func ids(entries []*Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID()
	}
	return out
}

// admitAndSettle admits a session and immediately completes any victim
// spills, the way the serving layer does (spill before materialize).
func admitAndSettle(t *testing.T, p *Pool, id string) []string {
	t.Helper()
	e, victims, err := p.Admit(id, id)
	if err != nil {
		t.Fatalf("Admit(%s): %v", id, err)
	}
	for _, v := range victims {
		p.MarkSpilled(v)
	}
	p.Release(e)
	return ids(victims)
}

func TestAdmitEvictsLRU(t *testing.T) {
	p := New(Config{MaxResident: 2, MaxSessions: 16})
	if v := admitAndSettle(t, p, "a"); len(v) != 0 {
		t.Fatalf("admit a evicted %v, want none", v)
	}
	if v := admitAndSettle(t, p, "b"); len(v) != 0 {
		t.Fatalf("admit b evicted %v, want none", v)
	}
	// a is least recently touched.
	if v := admitAndSettle(t, p, "c"); len(v) != 1 || v[0] != "a" {
		t.Fatalf("admit c evicted %v, want [a]", v)
	}
	// Touch b so c becomes the LRU.
	e, err := p.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	p.Release(e)
	if v := admitAndSettle(t, p, "d"); len(v) != 1 || v[0] != "c" {
		t.Fatalf("admit d evicted %v, want [c]", v)
	}
	st := p.Stats()
	if st.Sessions != 4 || st.Resident != 2 || st.Spilled != 2 {
		t.Fatalf("stats = %+v, want 4 sessions, 2 resident, 2 spilled", st)
	}
	if st.Evictions != 2 || st.Created != 4 {
		t.Fatalf("stats = %+v, want 2 evictions, 4 created", st)
	}
	if st.MaxResidentObserved > 2 {
		t.Fatalf("MaxResidentObserved = %d, want ≤ MaxResident 2", st.MaxResidentObserved)
	}
}

func TestPinnedEntriesAreNotVictims(t *testing.T) {
	p := New(Config{MaxResident: 2, MaxSessions: 16})
	admitAndSettle(t, p, "a")
	admitAndSettle(t, p, "b")
	ea, err := p.Acquire("a") // pin the LRU
	if err != nil {
		t.Fatal(err)
	}
	if v := admitAndSettle(t, p, "c"); len(v) != 1 || v[0] != "b" {
		t.Fatalf("admit c evicted %v, want [b] (a is pinned)", v)
	}
	p.Release(ea)
}

func TestAllBusyRollsBack(t *testing.T) {
	p := New(Config{MaxResident: 2, MaxSessions: 16})
	admitAndSettle(t, p, "a")
	admitAndSettle(t, p, "b")
	ea, _ := p.Acquire("a")
	eb, _ := p.Acquire("b")
	if _, _, err := p.Admit("c", nil); !errors.Is(err, ErrAllBusy) {
		t.Fatalf("Admit with all pinned: err = %v, want ErrAllBusy", err)
	}
	st := p.Stats()
	if st.Resident != 2 || st.Sessions != 2 {
		t.Fatalf("rollback left stats %+v, want 2 resident / 2 sessions", st)
	}
	if st.RejectedBusy != 1 {
		t.Fatalf("RejectedBusy = %d, want 1", st.RejectedBusy)
	}
	p.Release(ea)
	p.Release(eb)
	// With the pins gone the same admission succeeds and evicts the LRU.
	if v := admitAndSettle(t, p, "c"); len(v) != 1 || v[0] != "a" {
		t.Fatalf("admit c after release evicted %v, want [a]", v)
	}
}

func TestPoolFull(t *testing.T) {
	p := New(Config{MaxResident: 8, MaxSessions: 2})
	admitAndSettle(t, p, "a")
	admitAndSettle(t, p, "b")
	if _, _, err := p.Admit("c", nil); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	if st := p.Stats(); st.RejectedFull != 1 {
		t.Fatalf("RejectedFull = %d, want 1", st.RejectedFull)
	}
	// Deleting makes room again.
	if err := p.Remove("a"); err != nil {
		t.Fatal(err)
	}
	admitAndSettle(t, p, "c")
}

func TestReserveResidentRestores(t *testing.T) {
	p := New(Config{MaxResident: 1, MaxSessions: 16})
	admitAndSettle(t, p, "a")
	if v := admitAndSettle(t, p, "b"); len(v) != 1 || v[0] != "a" {
		t.Fatalf("admit b evicted %v, want [a]", v)
	}
	// Touch spilled a: pin, reserve a slot (evicting b), "restore".
	ea, err := p.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Resident(ea) {
		t.Fatal("a should be spilled")
	}
	victims, err := p.ReserveResident(ea)
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(victims); len(got) != 1 || got[0] != "b" {
		t.Fatalf("ReserveResident evicted %v, want [b]", got)
	}
	for _, v := range victims {
		p.MarkSpilled(v)
	}
	if !p.Resident(ea) {
		t.Fatal("a should be resident after reserve")
	}
	// Reserving an already resident entry is a no-op.
	if v, err := p.ReserveResident(ea); err != nil || len(v) != 0 {
		t.Fatalf("second reserve = (%v, %v), want (none, nil)", ids(v), err)
	}
	p.Release(ea)
	st := p.Stats()
	if st.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", st.Restores)
	}
	if st.Resident != 1 || st.MaxResidentObserved != 1 {
		t.Fatalf("stats %+v: resident accounting drifted past MaxResident 1", st)
	}
}

func TestRemove(t *testing.T) {
	p := New(Config{MaxResident: 4, MaxSessions: 16})
	admitAndSettle(t, p, "a")
	if err := p.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire after Remove: err = %v, want ErrNotFound", err)
	}
	if err := p.Remove("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove: err = %v, want ErrNotFound", err)
	}
	if st := p.Stats(); st.Sessions != 0 || st.Resident != 0 || st.Deletes != 1 {
		t.Fatalf("stats after remove = %+v", st)
	}
	if got := p.Entries(); len(got) != 0 {
		t.Fatalf("Entries() = %v, want empty", ids(got))
	}
}

func TestClientInFlightCap(t *testing.T) {
	p := New(Config{MaxInFlightPerClient: 2})
	if err := p.ClientAcquire("alice"); err != nil {
		t.Fatal(err)
	}
	if err := p.ClientAcquire("alice"); err != nil {
		t.Fatal(err)
	}
	if err := p.ClientAcquire("alice"); !errors.Is(err, ErrClientLimit) {
		t.Fatalf("third acquire: err = %v, want ErrClientLimit", err)
	}
	// Another client has its own budget.
	if err := p.ClientAcquire("bob"); err != nil {
		t.Fatalf("bob blocked by alice's cap: %v", err)
	}
	st := p.Stats()
	if st.Clients != 2 || st.InFlight != 3 || st.RejectedClient != 1 {
		t.Fatalf("stats = %+v, want 2 clients / 3 in flight / 1 rejection", st)
	}
	p.ClientRelease("alice")
	if err := p.ClientAcquire("alice"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	p.ClientRelease("alice")
	p.ClientRelease("alice")
	p.ClientRelease("bob")
	if st := p.Stats(); st.Clients != 0 || st.InFlight != 0 {
		t.Fatalf("stats after drain = %+v, want empty client table", st)
	}
}

// TestEvictionOrderDeterministic replays one operation sequence twice and
// requires identical eviction decisions — the pool's seed-stability
// contract (no wall clock, no map order; gatherlint pins the hygiene).
func TestEvictionOrderDeterministic(t *testing.T) {
	run := func() []string {
		p := New(Config{MaxResident: 3, MaxSessions: 64})
		var evicted []string
		touch := func(id string) {
			e, err := p.Acquire(id)
			if err != nil {
				t.Fatal(err)
			}
			p.Release(e)
		}
		for i := 0; i < 12; i++ {
			id := fmt.Sprintf("s%02d", i)
			e, victims, err := p.Admit(id, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range victims {
				evicted = append(evicted, v.ID())
				p.MarkSpilled(v)
			}
			p.Release(e)
			// A deterministic but non-trivial touch pattern.
			if i%3 == 0 && i > 0 {
				touch(fmt.Sprintf("s%02d", i-1))
			}
			if i%4 == 0 && i > 3 {
				touch(fmt.Sprintf("s%02d", i-3))
			}
		}
		return evicted
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("eviction order not deterministic:\n  %v\n  %v", a, b)
	}
	if len(a) != 9 {
		t.Fatalf("12 admissions at MaxResident 3 should evict 9, got %d (%v)", len(a), a)
	}
}
