// Package pool is the bounded session pool behind the gatherd daemon: the
// accounting core that decides which sessions stay resident in memory,
// which spill to disk, and which clients are over their in-flight budget.
// The discipline is modeled on tendermint's blocksync BlockPool — a hard
// cap on resident work, per-peer in-flight limits, and flow accounting
// that lets the serving layer time out slow consumers — with Snapshot()
// as the eviction currency instead of block requests.
//
// The pool is deliberately free of wall-clock reads and map iteration:
// recency is a logical touch counter bumped per acquisition, and victim
// selection scans the insertion-ordered entry list, so given the same
// operation sequence the pool always evicts the same sessions. (The
// serving layer injects real time only where the protocol needs it — the
// min-recv-rate stream timeouts.) The package is //gather:deterministic;
// gatherlint enforces the hygiene.
//
// Locking protocol: the pool's mutex is a leaf lock — no pool method
// calls out or touches a session while holding it. Callers pin an entry
// (Acquire) before locking the session it carries, and eviction only
// selects unpinned entries, so every held session lock belongs to a
// pinned entry and victim-spill chains cannot deadlock.
//
//gather:deterministic
package pool

import (
	"errors"
	"fmt"
	"sync"
)

// Typed refusals, matched with errors.Is. The serving layer maps them to
// HTTP backpressure responses.
var (
	// ErrPoolFull reports that the total session cap (resident + spilled)
	// is reached; the client should delete sessions or try another box.
	ErrPoolFull = errors.New("pool: session table full")
	// ErrAllBusy reports that every resident session is pinned by an
	// in-flight operation, so no eviction victim exists to make room; the
	// condition is transient — retry.
	ErrAllBusy = errors.New("pool: all resident sessions busy, no eviction victim")
	// ErrClientLimit reports a client over its in-flight request cap.
	ErrClientLimit = errors.New("pool: client in-flight limit reached")
	// ErrNotFound reports an unknown or deleted session ID.
	ErrNotFound = errors.New("pool: no such session")
)

// Config bounds the pool.
type Config struct {
	// MaxResident caps the sessions held in memory at once; the pool
	// spills least-recently-touched idle sessions to stay under it.
	// Default 64.
	MaxResident int
	// MaxSessions caps the total session table, resident + spilled.
	// Default 4096.
	MaxSessions int
	// MaxInFlightPerClient caps one client's concurrent requests
	// (tendermint's maxPendingRequestsPerPeer). Default 32.
	MaxInFlightPerClient int
}

func (c Config) withDefaults() Config {
	if c.MaxResident <= 0 {
		c.MaxResident = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.MaxInFlightPerClient <= 0 {
		c.MaxInFlightPerClient = 32
	}
	return c
}

// Entry is one pooled session's lifecycle record. The payload (the
// serving layer's session wrapper) is set at admission and never changes;
// all mutable state is guarded by the pool mutex.
type Entry struct {
	id      string
	payload any

	touch    uint64 // logical recency; larger = more recently used
	pins     int    // in-flight operations pinning the entry
	resident bool   // a live Simulation is in memory
	evicting bool   // selected as a spill victim; not selectable again
	gone     bool   // removed; acquisitions fail with ErrNotFound
}

// ID returns the session ID.
func (e *Entry) ID() string { return e.id }

// Payload returns the opaque session wrapper installed at admission.
func (e *Entry) Payload() any { return e.payload }

// Stats is a point-in-time pool accounting snapshot.
type Stats struct {
	// Sessions is the live session-table size; Resident of those are in
	// memory and Spilled on disk.
	Sessions, Resident, Spilled int
	// MaxResidentObserved is the high-water mark of Resident.
	MaxResidentObserved int
	// Created, Evictions, Restores and Deletes count lifecycle
	// transitions; Evictions is spills to disk, Restores is loads back.
	Created, Evictions, Restores, Deletes uint64
	// RejectedFull and RejectedBusy count admissions refused by
	// ErrPoolFull / ErrAllBusy; RejectedClient counts ErrClientLimit
	// refusals.
	RejectedFull, RejectedBusy, RejectedClient uint64
	// Clients is the number of clients with in-flight requests right now;
	// InFlight is their total. BytesOut is the cumulative payload flow the
	// serving layer has reported (flow accounting for min-recv-rate
	// decisions and capacity planning).
	Clients, InFlight int
	BytesOut          uint64
}

// Pool is the bounded session pool. All methods are safe for concurrent
// use.
type Pool struct {
	mu  sync.Mutex
	cfg Config

	byID  map[string]*Entry // keyed lookups only (never ranged)
	order []*Entry          // insertion order: the deterministic scan list

	clock    uint64
	resident int

	clients  map[string]int // in-flight per client (never ranged)
	inFlight int

	stats Stats
}

// New creates a pool with the given bounds.
func New(cfg Config) *Pool {
	return &Pool{
		cfg:     cfg.withDefaults(),
		byID:    make(map[string]*Entry),
		clients: make(map[string]int),
	}
}

// Config returns the resolved bounds.
func (p *Pool) Config() Config { return p.cfg }

// Admit registers a new resident session and returns its entry, plus the
// victims the caller must spill BEFORE materializing the new session (the
// pool has already re-counted them as non-resident; spilling first keeps
// the true number of in-memory sessions under MaxResident at every
// instant). Victims come back pinned and flagged; finish each with
// MarkSpilled. Fails with ErrPoolFull or ErrAllBusy.
func (p *Pool) Admit(id string, payload any) (*Entry, []*Entry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.byID[id]; dup {
		return nil, nil, fmt.Errorf("pool: duplicate session ID %q", id)
	}
	if len(p.byID) >= p.cfg.MaxSessions {
		p.stats.RejectedFull++
		return nil, nil, ErrPoolFull
	}
	victims, err := p.makeRoomLocked()
	if err != nil {
		return nil, nil, err
	}
	e := &Entry{id: id, payload: payload, resident: true, pins: 1}
	p.bumpLocked(e)
	p.byID[id] = e
	p.order = append(p.order, e)
	p.resident++
	p.noteResidentLocked()
	p.stats.Created++
	return e, victims, nil
}

// AdmitSpilled registers a session that already lives in the spill store
// (daemon restart recovery). It takes no resident slot and needs no
// victims; the entry is returned unpinned.
func (p *Pool) AdmitSpilled(id string, payload any) (*Entry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.byID[id]; dup {
		return nil, fmt.Errorf("pool: duplicate session ID %q", id)
	}
	if len(p.byID) >= p.cfg.MaxSessions {
		p.stats.RejectedFull++
		return nil, ErrPoolFull
	}
	e := &Entry{id: id, payload: payload}
	p.byID[id] = e
	p.order = append(p.order, e)
	return e, nil
}

// Acquire pins the session for an operation and marks it touched. The
// caller must Release the entry when the operation ends; while pinned the
// entry is never selected for eviction. Acquire does not restore a
// spilled session — the caller checks its wrapper under the session lock
// and uses ReserveResident if it finds the Simulation spilled.
func (p *Pool) Acquire(id string) (*Entry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.byID[id]
	if !ok || e.gone {
		return nil, ErrNotFound
	}
	e.pins++
	p.bumpLocked(e)
	return e, nil
}

// Release undoes one Acquire (or the admission pin).
func (p *Pool) Release(e *Entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.pins > 0 {
		e.pins--
	}
}

// ReserveResident books a resident slot for a spilled entry the caller
// has pinned and locked, returning the victims to spill first (same
// contract as Admit). The caller restores the session from the store
// after spilling the victims.
func (p *Pool) ReserveResident(e *Entry) ([]*Entry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.gone {
		return nil, ErrNotFound
	}
	if e.resident {
		return nil, nil
	}
	victims, err := p.makeRoomLocked()
	if err != nil {
		return nil, err
	}
	e.resident = true
	p.resident++
	p.noteResidentLocked()
	p.stats.Restores++
	return victims, nil
}

// MarkSpilled completes a victim spill: the entry was counted out of the
// resident set when it was selected; this clears the eviction flag and
// drops the selection pin.
func (p *Pool) MarkSpilled(e *Entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e.evicting = false
	if e.pins > 0 {
		e.pins--
	}
	p.stats.Evictions++
}

// DropResident releases e's resident slot after the caller — holding the
// entry pinned and its session locked — has spilled the session itself
// (explicit evictions and shutdown spill-all, where the caller picks the
// victim instead of the LRU scan). No-op if the entry is not resident.
func (p *Pool) DropResident(e *Entry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.gone || !e.resident {
		return
	}
	e.resident = false
	p.resident--
	p.stats.Evictions++
}

// Remove deletes the session from the table. Concurrent operations that
// already pinned the entry finish against their wrapper; new Acquires
// fail with ErrNotFound.
func (p *Pool) Remove(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.byID[id]
	if !ok || e.gone {
		return ErrNotFound
	}
	e.gone = true
	if e.resident {
		e.resident = false
		p.resident--
	}
	delete(p.byID, id)
	for i, o := range p.order {
		if o == e {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.stats.Deletes++
	return nil
}

// Entries returns the live entries in insertion order (a copy; the
// deterministic iteration surface for list and spill-all operations).
func (p *Pool) Entries() []*Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Entry, len(p.order))
	copy(out, p.order)
	return out
}

// Resident reports whether the entry currently holds a resident slot.
func (p *Pool) Resident(e *Entry) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return e.resident
}

// ClientAcquire charges one in-flight request to the client, refusing
// with ErrClientLimit over the cap. Pair with ClientRelease.
func (p *Pool) ClientAcquire(client string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.clients[client] >= p.cfg.MaxInFlightPerClient {
		p.stats.RejectedClient++
		return ErrClientLimit
	}
	p.clients[client]++
	p.inFlight++
	return nil
}

// ClientRelease returns one in-flight slot to the client.
func (p *Pool) ClientRelease(client string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := p.clients[client]; n > 1 {
		p.clients[client] = n - 1
	} else if n == 1 {
		delete(p.clients, client) // bound the table: idle clients cost nothing
	}
	if p.inFlight > 0 {
		p.inFlight--
	}
}

// NoteFlow records payload bytes sent to a client — the flow accounting
// the serving layer's min-recv-rate stream timeouts and the service
// benchmark read back through Stats.
func (p *Pool) NoteFlow(nbytes int) {
	if nbytes <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.BytesOut += uint64(nbytes)
}

// Stats returns a point-in-time accounting snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Sessions = len(p.byID)
	s.Resident = p.resident
	s.Spilled = s.Sessions - s.Resident
	s.Clients = len(p.clients)
	s.InFlight = p.inFlight
	return s
}

// bumpLocked marks e most recently used.
func (p *Pool) bumpLocked(e *Entry) {
	p.clock++
	e.touch = p.clock
}

// noteResidentLocked maintains the high-water mark.
func (p *Pool) noteResidentLocked() {
	if p.resident > p.stats.MaxResidentObserved {
		p.stats.MaxResidentObserved = p.resident
	}
}

// makeRoomLocked selects least-recently-touched unpinned resident entries
// until one more resident slot fits under MaxResident, counting them out
// of the resident set immediately (the caller spills them before
// materializing anything new, so true memory occupancy never exceeds the
// cap). Victims come back pinned and flagged evicting.
func (p *Pool) makeRoomLocked() ([]*Entry, error) {
	var victims []*Entry
	for p.resident >= p.cfg.MaxResident {
		v := p.victimLocked()
		if v == nil {
			// Roll back the selections: nothing was spilled yet.
			for _, w := range victims {
				w.evicting = false
				w.resident = true
				w.pins--
				p.resident++
			}
			p.stats.RejectedBusy++
			return nil, ErrAllBusy
		}
		v.evicting = true
		v.resident = false // re-counted now; spilled before the new slot is used
		v.pins++
		p.resident--
		victims = append(victims, v)
	}
	return victims, nil
}

// victimLocked returns the LRU evictable entry, or nil. The scan walks
// the insertion-ordered list, so ties (equal touch cannot happen — the
// clock is strictly increasing) and the scan order itself are
// deterministic.
func (p *Pool) victimLocked() *Entry {
	var best *Entry
	for _, e := range p.order {
		if !e.resident || e.evicting || e.pins > 0 || e.gone {
			continue
		}
		if best == nil || e.touch < best.touch {
			best = e
		}
	}
	return best
}
