package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gridgather"
	"gridgather/internal/serve/pool"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SpillDir == "" {
		cfg.SpillDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

// doJSON performs a request with a JSON body and decodes a JSON response,
// returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, base string, req CreateRequest) SessionInfo {
	t.Helper()
	var info SessionInfo
	if code := doJSON(t, "POST", base+"/v1/sessions", req, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if info.ID == "" || !info.Resident {
		t.Fatalf("create: info %+v", info)
	}
	return info
}

func stepSession(t *testing.T, base, id string, req StepRequest) StepResponse {
	t.Helper()
	var resp StepResponse
	if code := doJSON(t, "POST", base+"/v1/sessions/"+id+"/step", req, &resp); code != http.StatusOK {
		t.Fatalf("step %s: status %d", id, code)
	}
	return resp
}

func fetchSnapshot(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot %s: status %d", id, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSessionLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	base := hs.URL

	info := createSession(t, base, CreateRequest{Workload: "hollow", N: 60, Label: "life"})
	if info.Round != 0 || info.Robots == 0 {
		t.Fatalf("fresh session info %+v", info)
	}

	step := stepSession(t, base, info.ID, StepRequest{Rounds: 5})
	if step.Executed != 5 || step.Status.Round != 5 {
		t.Fatalf("step = %+v", step)
	}

	var got SessionInfo
	if code := doJSON(t, "GET", base+"/v1/sessions/"+info.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if got.Round != 5 || got.ID != info.ID {
		t.Fatalf("status = %+v", got)
	}

	var m MetricsResponse
	if code := doJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.Rounds != 5 || m.InitialRobots == 0 {
		t.Fatalf("metrics = %+v", m)
	}

	done := stepSession(t, base, info.ID, StepRequest{ToCompletion: true})
	if !done.Status.Done || !done.Status.Gathered {
		t.Fatalf("run to completion = %+v", done)
	}
	if done.Status.Reason != "gathered" {
		t.Fatalf("reason = %q, want gathered", done.Status.Reason)
	}

	var res ResultResponse
	if code := doJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if !res.Gathered || res.FinalRobots > 4 {
		// Gathering ends with all robots inside one 2×2 square.
		t.Fatalf("result = %+v", res)
	}

	if snap := fetchSnapshot(t, base, info.ID); len(snap) == 0 {
		t.Fatal("empty snapshot")
	}

	var list ListResponse
	doJSON(t, "GET", base+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != info.ID {
		t.Fatalf("list = %+v", list)
	}

	if code := doJSON(t, "DELETE", base+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, "GET", base+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", code)
	}
}

func TestCreateValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	base := hs.URL
	var errResp ErrorResponse
	if code := doJSON(t, "POST", base+"/v1/sessions", CreateRequest{Workload: "no-such", N: 10}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown workload: %d", code)
	}
	if code := doJSON(t, "POST", base+"/v1/sessions", CreateRequest{}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("empty create: %d", code)
	}
	if code := doJSON(t, "POST", base+"/v1/sessions",
		CreateRequest{Workload: "hollow", N: 10, Cells: [][2]int{{0, 0}}}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("workload+cells: %d", code)
	}
	// Bad option surfaces as 400 and the failed session leaves no residue.
	if code := doJSON(t, "POST", base+"/v1/sessions",
		CreateRequest{Workload: "hollow", N: 10, Scheduler: "no-such-model"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad scheduler: %d", code)
	}
	var list ListResponse
	doJSON(t, "GET", base+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 0 {
		t.Fatalf("failed creates left sessions: %+v", list)
	}
}

// faultyCreate is the adversarial differential configuration: a
// non-default scheduler, the greedy algorithm, a mid-run mass crash, and
// the connectivity check on — everything the snapshot must carry.
func faultyCreate(label string) CreateRequest {
	return CreateRequest{
		Workload:          "blob",
		N:                 80,
		Label:             label,
		Scheduler:         "ssync-rr:3",
		Algorithm:         "greedy",
		Faults:            "crash-at:r=10,k=3@1",
		ConnectivityCheck: true,
	}
}

// clearQuiesce zeroes the execution-strategy counters that legitimately
// differ after a restore (the quiescence cache restarts cold — documented
// in Metrics).
func clearQuiesce(m *MetricsResponse) {
	m.QuiesceComputed, m.QuiesceSkipped, m.QuiescentRatio = 0, 0, 0
}

// TestEvictionDifferential steps a spilled-and-restored session next to a
// never-evicted twin and requires identical trajectories: same status,
// same result, same metrics (modulo the documented cache counters), and
// bit-identical snapshots.
func TestEvictionDifferential(t *testing.T) {
	s, hs := newTestServer(t, Config{Pool: pool.Config{MaxResident: 4}})
	base := hs.URL

	a := createSession(t, base, faultyCreate("evicted"))
	b := createSession(t, base, faultyCreate("twin"))

	stepSession(t, base, a.ID, StepRequest{Rounds: 15})
	stepSession(t, base, b.ID, StepRequest{Rounds: 15})

	// Explicitly evict A mid-run — after the crash round, with the
	// scheduler mid-rotation.
	var evicted SessionInfo
	if code := doJSON(t, "POST", base+"/v1/sessions/"+a.ID+"/evict", nil, &evicted); code != http.StatusOK {
		t.Fatalf("evict: %d", code)
	}
	if evicted.Resident {
		t.Fatalf("evict left session resident: %+v", evicted)
	}
	if st := s.Pool().Stats(); st.Resident != 1 || st.Spilled != 1 {
		t.Fatalf("pool after evict = %+v", st)
	}

	// Touching A restores it transparently.
	ra := stepSession(t, base, a.ID, StepRequest{Rounds: 10})
	rb := stepSession(t, base, b.ID, StepRequest{Rounds: 10})
	ra.Status.ID, ra.Status.Label = "", ""
	rb.Status.ID, rb.Status.Label = "", ""
	if fmt.Sprint(ra) != fmt.Sprint(rb) {
		t.Fatalf("status diverged after restore:\n  evicted: %+v\n  twin:    %+v", ra, rb)
	}
	if st := s.Pool().Stats(); st.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", st.Restores)
	}

	// Run both to completion and compare everything.
	fa := stepSession(t, base, a.ID, StepRequest{ToCompletion: true, BudgetRounds: 100000})
	fb := stepSession(t, base, b.ID, StepRequest{ToCompletion: true, BudgetRounds: 100000})
	fa.Status.ID, fa.Status.Label = "", ""
	fb.Status.ID, fb.Status.Label = "", ""
	if fmt.Sprint(fa) != fmt.Sprint(fb) {
		t.Fatalf("final status diverged:\n  evicted: %+v\n  twin:    %+v", fa, fb)
	}

	var ma, mb MetricsResponse
	doJSON(t, "GET", base+"/v1/sessions/"+a.ID+"/metrics", nil, &ma)
	doJSON(t, "GET", base+"/v1/sessions/"+b.ID+"/metrics", nil, &mb)
	ma.ID, mb.ID = "", ""
	clearQuiesce(&ma)
	clearQuiesce(&mb)
	if fmt.Sprint(ma) != fmt.Sprint(mb) {
		t.Fatalf("metrics diverged:\n  evicted: %+v\n  twin:    %+v", ma, mb)
	}

	var resA, resB ResultResponse
	doJSON(t, "GET", base+"/v1/sessions/"+a.ID+"/result", nil, &resA)
	doJSON(t, "GET", base+"/v1/sessions/"+b.ID+"/result", nil, &resB)
	resA.ID, resB.ID = "", ""
	if fmt.Sprint(resA) != fmt.Sprint(resB) {
		t.Fatalf("results diverged:\n  evicted: %+v\n  twin:    %+v", resA, resB)
	}

	snapA := fetchSnapshot(t, base, a.ID)
	snapB := fetchSnapshot(t, base, b.ID)
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("snapshots of evicted and never-evicted twins differ")
	}
}

// TestRestoreUpload round-trips a snapshot through the client: download,
// upload as a new session, and check both sessions march in lockstep.
func TestRestoreUpload(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	base := hs.URL

	orig := createSession(t, base, faultyCreate("original"))
	stepSession(t, base, orig.ID, StepRequest{Rounds: 12})
	snap := fetchSnapshot(t, base, orig.ID)

	resp, err := http.Post(base+"/v1/sessions/restore?label=clone", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var clone SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&clone); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore upload: %d", resp.StatusCode)
	}
	if clone.Round != 12 || clone.ID == orig.ID {
		t.Fatalf("clone = %+v", clone)
	}

	so := stepSession(t, base, orig.ID, StepRequest{Rounds: 20})
	sc := stepSession(t, base, clone.ID, StepRequest{Rounds: 20})
	so.Status.ID, so.Status.Label = "", ""
	sc.Status.ID, sc.Status.Label = "", ""
	if fmt.Sprint(so) != fmt.Sprint(sc) {
		t.Fatalf("uploaded clone diverged:\n  orig:  %+v\n  clone: %+v", so, sc)
	}
}

// TestEventStreamAcrossEviction opens an NDJSON stream, then evicts and
// restores the session under it: the stream must keep delivering events
// from wherever stepping resumes.
func TestEventStreamAcrossEviction(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	base := hs.URL
	info := createSession(t, base, CreateRequest{Workload: "hollow", N: 80})

	resp, err := http.Get(base + "/v1/sessions/" + info.ID + "/events?mask=round")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	next := func() EventRecord {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var rec EventRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		return rec
	}

	if rec := next(); rec.Kind != "status" {
		t.Fatalf("opening record = %+v, want status", rec)
	}
	stepSession(t, base, info.ID, StepRequest{Rounds: 3})
	for want := 1; want <= 3; want++ {
		if rec := next(); rec.Kind != "round" || rec.Round != want {
			t.Fatalf("record = %+v, want round %d", rec, want)
		}
	}

	if code := doJSON(t, "POST", base+"/v1/sessions/"+info.ID+"/evict", nil, nil); code != http.StatusOK {
		t.Fatalf("evict: %d", code)
	}
	stepSession(t, base, info.ID, StepRequest{Rounds: 2})
	for want := 4; want <= 5; want++ {
		if rec := next(); rec.Kind != "round" || rec.Round != want {
			t.Fatalf("post-eviction record = %+v, want round %d", rec, want)
		}
	}

	// Deleting the session evicts the subscriber with a reason.
	if code := doJSON(t, "DELETE", base+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if rec := next(); rec.Kind != "evicted" || !strings.Contains(rec.Error, "deleted") {
		t.Fatalf("closing record = %+v, want evicted/deleted", rec)
	}
	if sc.Scan() {
		t.Fatalf("stream continued after eviction record: %q", sc.Text())
	}
}

// TestSlowConsumerEvicted fills a tiny subscriber buffer without draining
// it and checks the fan-out evicts the consumer instead of blocking the
// step.
func TestSlowConsumerEvicted(t *testing.T) {
	s, hs := newTestServer(t, Config{StreamBuffer: 2})
	base := hs.URL
	info := createSession(t, base, CreateRequest{Workload: "hollow", N: 80})

	// Attach a subscriber directly (no HTTP reader draining it).
	e, err := s.Pool().Acquire(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	sess := e.Payload().(*session)
	sess.mu.Lock()
	sub := sess.subscribe(gridgather.AllEvents, s.cfg.StreamBuffer)
	sess.mu.Unlock()
	s.Pool().Release(e)

	stepSession(t, base, info.ID, StepRequest{Rounds: 8})
	select {
	case <-sub.done:
	default:
		t.Fatal("slow consumer not evicted")
	}
	if !strings.Contains(sub.reason, "overflow") {
		t.Fatalf("eviction reason %q", sub.reason)
	}
	if s.slowEvicted.Load() == 0 {
		t.Fatal("slow-consumer counter not bumped")
	}
	// The fan-out pruned the dead subscriber and cancelled its relay from
	// inside the emit callback.
	sess.subMu.Lock()
	left := len(sess.subs)
	sess.subMu.Unlock()
	if left != 0 {
		t.Fatalf("%d subscribers left after eviction, want 0", left)
	}
}

// TestLRUEvictionUnderPressure creates more sessions than MaxResident and
// checks idle ones spill automatically yet stay steppable.
func TestLRUEvictionUnderPressure(t *testing.T) {
	s, hs := newTestServer(t, Config{Pool: pool.Config{MaxResident: 2}})
	base := hs.URL

	var infos []SessionInfo
	for i := 0; i < 5; i++ {
		infos = append(infos, createSession(t, base, CreateRequest{Workload: "hollow", N: 40, Label: fmt.Sprintf("p%d", i)}))
	}
	st := s.Pool().Stats()
	if st.Resident != 2 || st.Spilled != 3 {
		t.Fatalf("pool = %+v, want 2 resident / 3 spilled", st)
	}
	if st.MaxResidentObserved > 2 {
		t.Fatalf("MaxResidentObserved = %d broke the cap", st.MaxResidentObserved)
	}
	// Every session — resident or spilled — steps fine.
	for _, info := range infos {
		if step := stepSession(t, base, info.ID, StepRequest{Rounds: 1}); step.Status.Round != 1 {
			t.Fatalf("session %s: %+v", info.ID, step)
		}
	}
	if st := s.Pool().Stats(); st.MaxResidentObserved > 2 {
		t.Fatalf("MaxResidentObserved = %d after touches", st.MaxResidentObserved)
	}
}

// TestShutdownRestartResumes spills everything on shutdown, boots a fresh
// server over the same spill directory, and continues the sessions.
func TestShutdownRestartResumes(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := newTestServer(t, Config{SpillDir: dir})
	base := hs1.URL

	a := createSession(t, base, faultyCreate("restart-a"))
	b := createSession(t, base, CreateRequest{Workload: "hollow", N: 50, Label: "restart-b"})
	stepSession(t, base, a.ID, StepRequest{Rounds: 7})
	stepSession(t, base, b.ID, StepRequest{Rounds: 4})

	s1.CloseStreams()
	if err := s1.SpillAll(); err != nil {
		t.Fatalf("SpillAll: %v", err)
	}
	hs1.Close()

	_, hs2 := newTestServer(t, Config{SpillDir: dir})
	base2 := hs2.URL
	var list ListResponse
	doJSON(t, "GET", base2+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 2 {
		t.Fatalf("recovered %d sessions, want 2: %+v", len(list.Sessions), list)
	}
	rounds := map[string]int{}
	for _, info := range list.Sessions {
		if info.Resident {
			t.Fatalf("recovered session %s resident before first touch", info.ID)
		}
		rounds[info.Label] = info.Round
	}
	if rounds["restart-a"] != 7 || rounds["restart-b"] != 4 {
		t.Fatalf("recovered rounds %+v", rounds)
	}
	// New sessions must not collide with recovered IDs.
	c := createSession(t, base2, CreateRequest{Workload: "hollow", N: 30})
	if c.ID == a.ID || c.ID == b.ID {
		t.Fatalf("ID collision after restart: %s", c.ID)
	}
	// And the recovered sessions keep stepping from where they stopped.
	if step := stepSession(t, base2, a.ID, StepRequest{Rounds: 3}); step.Status.Round != 10 {
		t.Fatalf("restart-a stepped to %+v, want round 10", step.Status)
	}
}

func TestClientInFlightLimit(t *testing.T) {
	_, hs := newTestServer(t, Config{Pool: pool.Config{MaxInFlightPerClient: 1}})
	base := hs.URL
	// The session API is gated per client; a stream holds its slot for its
	// whole lifetime.
	info := func() SessionInfo {
		req, _ := http.NewRequest("POST", base+"/v1/sessions", strings.NewReader(`{"workload":"hollow","n":30}`))
		req.Header.Set("X-Client", "alice")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info SessionInfo
		json.NewDecoder(resp.Body).Decode(&info)
		return info
	}()

	req, _ := http.NewRequest("GET", base+"/v1/sessions/"+info.ID+"/events", nil)
	req.Header.Set("X-Client", "alice")
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", stream.StatusCode)
	}

	blocked, _ := http.NewRequest("GET", base+"/v1/sessions/"+info.ID, nil)
	blocked.Header.Set("X-Client", "alice")
	resp2, err := http.DefaultClient.Do(blocked)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request: %d, want 429", resp2.StatusCode)
	}

	other, _ := http.NewRequest("GET", base+"/v1/sessions/"+info.ID, nil)
	other.Header.Set("X-Client", "bob")
	resp3, err := http.DefaultClient.Do(other)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("other client: %d, want 200", resp3.StatusCode)
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	base := hs.URL
	var health map[string]string
	if code := doJSON(t, "GET", base+"/v1/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" || health["version"] != Version {
		t.Fatalf("healthz = %+v", health)
	}
	createSession(t, base, CreateRequest{Workload: "hollow", N: 30})
	var stats StatsResponse
	if code := doJSON(t, "GET", base+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Sessions != 1 || stats.Resident != 1 || stats.Created != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Version != Version || stats.MaxResident == 0 {
		t.Fatalf("stats metadata = %+v", stats)
	}
}

func TestParseEventMask(t *testing.T) {
	if _, err := ParseEventMask("round,merge,gathered"); err != nil {
		t.Fatal(err)
	}
	if mask, err := ParseEventMask(""); err != nil || mask != gridgather.AllEvents {
		t.Fatalf("empty spec = (%v, %v)", mask, err)
	}
	if _, err := ParseEventMask("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
