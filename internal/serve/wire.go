package serve

import (
	"fmt"
	"strings"

	"gridgather"
)

// Version is the gatherd service version, reported by -version and the
// stats endpoint. Bump on wire-format changes.
const Version = "0.1.0"

// The JSON wire format of the gatherd HTTP API. Response fields mirror
// the public Simulation surface (Status, Metrics, Result); the Reason
// strings are the documented gridgather.Reason* enum verbatim.

// CreateRequest is the body of POST /v1/sessions. Exactly one of
// Workload (+N) or Cells describes the swarm; the remaining fields map
// one-to-one onto the Simulation options of the same names (zero values
// select the same defaults New does).
type CreateRequest struct {
	Workload string   `json:"workload,omitempty"`
	N        int      `json:"n,omitempty"`
	Cells    [][2]int `json:"cells,omitempty"`
	Label    string   `json:"label,omitempty"`

	Radius        int    `json:"radius,omitempty"`
	L             int    `json:"l,omitempty"`
	Scheduler     string `json:"scheduler,omitempty"`
	SchedulerSeed int64  `json:"scheduler_seed,omitempty"`
	Algorithm     string `json:"algorithm,omitempty"`
	Faults        string `json:"faults,omitempty"`

	MaxRounds         int  `json:"max_rounds,omitempty"`
	NoMergeLimit      int  `json:"no_merge_limit,omitempty"`
	Workers           int  `json:"workers,omitempty"`
	ConnectivityCheck bool `json:"connectivity_check,omitempty"`
	StrictLocality    bool `json:"strict_locality,omitempty"`
	FullBFS           bool `json:"full_bfs,omitempty"`
	FullRecompute     bool `json:"full_recompute,omitempty"`
}

// SessionInfo is the status payload: gridgather.Status plus the session's
// identity and pool placement.
type SessionInfo struct {
	ID       string `json:"id"`
	Label    string `json:"label,omitempty"`
	Resident bool   `json:"resident"`

	Round          int     `json:"round"`
	Robots         int     `json:"robots"`
	Alive          int     `json:"alive"`
	Crashed        int     `json:"crashed"`
	Gathered       bool    `json:"gathered"`
	Degraded       bool    `json:"degraded"`
	DegradedRound  int     `json:"degraded_round,omitempty"`
	QuiescentRatio float64 `json:"quiescent_ratio"`
	Done           bool    `json:"done"`
	Reason         string  `json:"reason"` // a gridgather.Reason* constant
	Error          string  `json:"error,omitempty"`
}

// sessionInfo flattens a Status into the wire shape.
func sessionInfo(id, label string, resident bool, st gridgather.Status) SessionInfo {
	info := SessionInfo{
		ID:             id,
		Label:          label,
		Resident:       resident,
		Round:          st.Round,
		Robots:         st.Robots,
		Alive:          st.Alive,
		Crashed:        st.Crashed,
		Gathered:       st.Gathered,
		Degraded:       st.Degraded,
		DegradedRound:  st.DegradedRound,
		QuiescentRatio: st.QuiescentRatio,
		Done:           st.Done,
		Reason:         st.Reason,
	}
	if st.Err != nil {
		info.Error = st.Err.Error()
	}
	return info
}

// ListResponse is the body of GET /v1/sessions. Spilled sessions report
// their last cached status (listing never forces a restore).
type ListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// StepRequest is the body of POST /v1/sessions/{id}/step. Zero values
// execute one round. Rounds executes up to that many rounds (StepN);
// ToCompletion runs until the session finishes, bounded by BudgetRounds
// when non-zero (the in-flight round budget, independent of the session's
// own WithMaxRounds abort budget).
type StepRequest struct {
	Rounds       int  `json:"rounds,omitempty"`
	ToCompletion bool `json:"to_completion,omitempty"`
	BudgetRounds int  `json:"budget_rounds,omitempty"`
}

// StepResponse reports the rounds executed and the resulting status. A
// session abort (round limit, disconnection, watchdog) is a simulation
// outcome, not a transport error: the HTTP status stays 200 and the
// abort shows in Status.Reason/Error.
type StepResponse struct {
	Executed int         `json:"executed"`
	Status   SessionInfo `json:"status"`
}

// MetricsResponse is the body of GET /v1/sessions/{id}/metrics.
type MetricsResponse struct {
	ID string `json:"id"`

	Rounds          int     `json:"rounds"`
	InitialRobots   int     `json:"initial_robots"`
	Robots          int     `json:"robots"`
	Merges          int     `json:"merges"`
	RunsStarted     int     `json:"runs_started"`
	Moves           int     `json:"moves"`
	Crashes         int     `json:"crashes"`
	QuiesceComputed int     `json:"quiesce_computed"`
	QuiesceSkipped  int     `json:"quiesce_skipped"`
	QuiescentRatio  float64 `json:"quiescent_ratio"`
}

// ResultResponse is the body of GET /v1/sessions/{id}/result.
type ResultResponse struct {
	ID string `json:"id"`

	Gathered      bool   `json:"gathered"`
	Rounds        int    `json:"rounds"`
	Merges        int    `json:"merges"`
	RunsStarted   int    `json:"runs_started"`
	Moves         int    `json:"moves"`
	InitialRobots int    `json:"initial_robots"`
	FinalRobots   int    `json:"final_robots"`
	Crashes       int    `json:"crashes"`
	Degraded      bool   `json:"degraded"`
	Error         string `json:"error,omitempty"`
}

// EventRecord is one NDJSON line of the event stream. Kind is the
// EventKind name ("round", "merge", "run-start", "gathered", "abort",
// "crash", "degraded"), plus the stream-control kinds "status" (the
// opening record), "evicted" (the server dropped this consumer; Error
// says why) and "closed" (server shutdown).
type EventRecord struct {
	Kind             string `json:"kind"`
	Round            int    `json:"round"`
	Robots           int    `json:"robots,omitempty"`
	Runners          int    `json:"runners,omitempty"`
	Merges           int    `json:"merges,omitempty"`
	RoundMerges      int    `json:"round_merges,omitempty"`
	RunsStarted      int    `json:"runs_started,omitempty"`
	RoundRunsStarted int    `json:"round_runs_started,omitempty"`
	Crashes          int    `json:"crashes,omitempty"`
	RoundCrashes     int    `json:"round_crashes,omitempty"`
	Error            string `json:"error,omitempty"`
}

// eventRecord converts a borrowed session event into its wire shape
// (scalars only — nothing aliases the event's scratch slices).
func eventRecord(ev gridgather.Event) EventRecord {
	rec := EventRecord{
		Kind:             ev.Kind.String(),
		Round:            ev.Round,
		Robots:           len(ev.Robots),
		Runners:          len(ev.Runners),
		Merges:           ev.Merges,
		RoundMerges:      ev.RoundMerges,
		RunsStarted:      ev.RunsStarted,
		RoundRunsStarted: ev.RoundRunsStarted,
		Crashes:          ev.Crashes,
		RoundCrashes:     ev.RoundCrashes,
	}
	if ev.Err != nil {
		rec.Error = ev.Err.Error()
	}
	return rec
}

// StatsResponse is the body of GET /v1/stats: the pool accounting plus
// the streaming-layer counters.
type StatsResponse struct {
	Version string `json:"version"`

	Sessions            int    `json:"sessions"`
	Resident            int    `json:"resident"`
	Spilled             int    `json:"spilled"`
	MaxResident         int    `json:"max_resident"`          // the configured cap
	MaxResidentObserved int    `json:"max_resident_observed"` // the high-water mark
	Created             uint64 `json:"created"`
	Evictions           uint64 `json:"evictions"`
	Restores            uint64 `json:"restores"`
	Deletes             uint64 `json:"deletes"`
	RejectedFull        uint64 `json:"rejected_full"`
	RejectedBusy        uint64 `json:"rejected_busy"`
	RejectedClient      uint64 `json:"rejected_client"`
	Clients             int    `json:"clients"`
	InFlight            int    `json:"in_flight"`
	BytesOut            uint64 `json:"bytes_out"`

	StreamsOpen          int     `json:"streams_open"`
	StreamsOpened        uint64  `json:"streams_opened"`
	SlowConsumersEvicted uint64  `json:"slow_consumers_evicted"`
	EventsStreamed       uint64  `json:"events_streamed"`
	UptimeSeconds        float64 `json:"uptime_seconds"`
}

// ErrorResponse is the JSON error envelope of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ParseEventMask parses the events endpoint's mask parameter: a
// comma-separated list of EventKind names, or "" / "all" for every kind.
func ParseEventMask(spec string) (gridgather.EventMask, error) {
	if spec == "" || spec == "all" {
		return gridgather.AllEvents, nil
	}
	var mask gridgather.EventMask
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "round":
			mask |= gridgather.RoundEvents
		case "merge":
			mask |= gridgather.MergeEvents
		case "run-start":
			mask |= gridgather.RunStartEvents
		case "gathered":
			mask |= gridgather.GatheredEvents
		case "abort":
			mask |= gridgather.AbortEvents
		case "crash":
			mask |= gridgather.CrashEvents
		case "degraded":
			mask |= gridgather.DegradedEvents
		case "":
			// tolerate a trailing comma
		default:
			return 0, fmt.Errorf("serve: unknown event kind %q (want round, merge, run-start, gathered, abort, crash, degraded or all)", name)
		}
	}
	if mask == 0 {
		return 0, fmt.Errorf("serve: empty event mask %q", spec)
	}
	return mask, nil
}

// options translates a CreateRequest into the Simulation option list.
func (req CreateRequest) options() []gridgather.Option {
	return []gridgather.Option{
		gridgather.WithRadius(req.Radius),
		gridgather.WithL(req.L),
		gridgather.WithScheduler(req.Scheduler),
		gridgather.WithSchedulerSeed(req.SchedulerSeed),
		gridgather.WithAlgorithm(req.Algorithm),
		gridgather.WithFaults(req.Faults),
		gridgather.WithMaxRounds(req.MaxRounds),
		gridgather.WithNoMergeLimit(req.NoMergeLimit),
		gridgather.WithWorkers(req.Workers),
		gridgather.WithConnectivityCheck(req.ConnectivityCheck),
		gridgather.WithStrictLocality(req.StrictLocality),
		gridgather.WithFullBFSConnectivity(req.FullBFS),
		gridgather.WithFullRecompute(req.FullRecompute),
	}
}

// cells materializes the requested swarm.
func (req CreateRequest) cells() ([]gridgather.Point, error) {
	switch {
	case len(req.Cells) > 0 && req.Workload != "":
		return nil, fmt.Errorf("serve: create with both workload and cells")
	case len(req.Cells) > 0:
		pts := make([]gridgather.Point, len(req.Cells))
		for i, c := range req.Cells {
			pts[i] = gridgather.Point{X: c[0], Y: c[1]}
		}
		return pts, nil
	case req.Workload != "":
		return gridgather.Workload(req.Workload, req.N)
	default:
		return nil, fmt.Errorf("serve: create needs a workload name or explicit cells")
	}
}
