package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gridgather/internal/serve/pool"
)

// TestPoolTorture races creates, steps, evictions, restores, snapshot
// downloads and deletes from many goroutines against a tiny resident cap,
// then checks the pool's books balance, the cap was never exceeded, and —
// the eviction differential under fire — a session that lived through the
// torture spilling and restoring matches its untouched twin bit for bit.
func TestPoolTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short")
	}
	const (
		workers     = 8
		opsPer      = 30
		maxResident = 3
	)
	s, hs := newTestServer(t, Config{Pool: pool.Config{
		MaxResident:          maxResident,
		MaxInFlightPerClient: 4,
	}})
	base := hs.URL

	// The control pair: stepped identically by the main goroutine while
	// the torture churns the pool around them. victim is evicted and
	// restored as a side effect of the pressure; twin gets stepped through
	// the very same handler path.
	victim := createSession(t, base, faultyCreate("victim"))
	twin := createSession(t, base, faultyCreate("twin"))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			do := func(method, path string, body string) int {
				var rd *strings.Reader
				if body != "" {
					rd = strings.NewReader(body)
				} else {
					rd = strings.NewReader("")
				}
				req, err := http.NewRequest(method, base+path, rd)
				if err != nil {
					t.Error(err)
					return 0
				}
				req.Header.Set("X-Client", fmt.Sprintf("torture-%d", w))
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return 0
				}
				defer resp.Body.Close()
				var sink bytes.Buffer
				sink.ReadFrom(resp.Body)
				return resp.StatusCode
			}
			var mine []string
			for i := 0; i < opsPer; i++ {
				switch i % 6 {
				case 0: // create
					req, _ := http.NewRequest("POST", base+"/v1/sessions",
						strings.NewReader(fmt.Sprintf(`{"workload":"hollow","n":40,"label":"w%d-%d"}`, w, i)))
					req.Header.Set("X-Client", fmt.Sprintf("torture-%d", w))
					resp, err := client.Do(req)
					if err != nil {
						t.Error(err)
						continue
					}
					var info SessionInfo
					code := resp.StatusCode
					if code == http.StatusCreated {
						if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
							t.Error(err)
						} else {
							mine = append(mine, info.ID)
						}
					}
					resp.Body.Close()
					// 503 (all busy / full) is legitimate backpressure;
					// anything else is a bug.
					if code != http.StatusCreated && code != http.StatusServiceUnavailable {
						t.Errorf("create: unexpected status %d", code)
					}
				case 1, 2: // step something of mine (restores if spilled)
					if len(mine) > 0 {
						id := mine[i%len(mine)]
						if code := do("POST", "/v1/sessions/"+id+"/step", `{"rounds":2}`); code != http.StatusOK &&
							code != http.StatusNotFound && code != http.StatusServiceUnavailable {
							t.Errorf("step: unexpected status %d", code)
						}
					}
				case 3: // explicit evict
					if len(mine) > 0 {
						id := mine[(i/2)%len(mine)]
						if code := do("POST", "/v1/sessions/"+id+"/evict", ""); code != http.StatusOK &&
							code != http.StatusNotFound {
							t.Errorf("evict: unexpected status %d", code)
						}
					}
				case 4: // snapshot download
					if len(mine) > 0 {
						id := mine[(i/3)%len(mine)]
						if code := do("GET", "/v1/sessions/"+id+"/snapshot", ""); code != http.StatusOK &&
							code != http.StatusNotFound {
							t.Errorf("snapshot: unexpected status %d", code)
						}
					}
				case 5: // delete the oldest, keep the table churning
					if len(mine) > 2 {
						id := mine[0]
						mine = mine[1:]
						if code := do("DELETE", "/v1/sessions/"+id, ""); code != http.StatusNoContent &&
							code != http.StatusNotFound {
							t.Errorf("delete: unexpected status %d", code)
						}
					}
				}
			}
		}(w)
	}

	// Meanwhile, march the control pair in lockstep through the same
	// contended pool. 503 is legitimate all-busy backpressure — retry.
	stepControl := func(id string) StepResponse {
		t.Helper()
		for {
			var resp StepResponse
			code := doJSON(t, "POST", base+"/v1/sessions/"+id+"/step", StepRequest{Rounds: 3}, &resp)
			switch code {
			case http.StatusOK:
				return resp
			case http.StatusServiceUnavailable:
				continue
			default:
				t.Fatalf("control step %s: status %d", id, code)
			}
		}
	}
	for i := 0; i < 12; i++ {
		sv := stepControl(victim.ID)
		st := stepControl(twin.ID)
		if sv.Status.Round != st.Status.Round {
			t.Fatalf("control pair diverged at iteration %d: %d vs %d rounds",
				i, sv.Status.Round, st.Status.Round)
		}
	}
	wg.Wait()

	// The control pair must be bit-identical regardless of how often the
	// churn evicted and restored them.
	snapV := fetchSnapshot(t, base, victim.ID)
	snapT := fetchSnapshot(t, base, twin.ID)
	if !bytes.Equal(snapV, snapT) {
		t.Fatal("victim and twin snapshots differ after torture")
	}

	st := s.Pool().Stats()
	if st.MaxResidentObserved > maxResident {
		t.Fatalf("MaxResidentObserved = %d exceeded the cap %d", st.MaxResidentObserved, maxResident)
	}
	if st.Resident > maxResident {
		t.Fatalf("Resident = %d exceeded the cap %d", st.Resident, maxResident)
	}
	if st.InFlight != 0 || st.Clients != 0 {
		t.Fatalf("in-flight accounting leaked: %+v", st)
	}
	// Books balance: sessions = created - deleted.
	if got, want := st.Sessions, int(st.Created)-int(st.Deletes); got != want {
		t.Fatalf("session table %d, want created-deleted = %d (%+v)", got, want, st)
	}
	// Every surviving session must still respond (restorable from disk).
	for _, e := range s.Pool().Entries() {
		if code := doJSON(t, "GET", base+"/v1/sessions/"+e.ID(), nil, nil); code != http.StatusOK {
			t.Fatalf("survivor %s: status %d", e.ID(), code)
		}
	}
	if st := s.Pool().Stats(); st.MaxResidentObserved > maxResident {
		t.Fatalf("post-sweep MaxResidentObserved = %d", st.MaxResidentObserved)
	}
}
