// Package serve is gatherd's HTTP layer: gathering-as-a-service. It hosts
// many concurrent Simulation sessions behind a JSON + NDJSON API (stdlib
// net/http only), with a bounded resident set — least-recently-touched
// idle sessions spill to disk as Snapshot() bytes and are transparently
// restored on their next touch, so the snapshot format is at once the
// eviction currency, the migration format, and the client checkpoint.
//
// Backpressure follows the tendermint blocksync BlockPool discipline:
// a hard cap on resident sessions, per-client in-flight request caps, and
// flow accounting with min-recv-rate style write deadlines that evict
// slow stream consumers instead of letting them stall the simulation.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridgather"
	"gridgather/internal/serve/pool"
)

// Config assembles a Server.
type Config struct {
	// Pool bounds the session pool (zero values take the pool defaults).
	Pool pool.Config
	// SpillDir is the snapshot spill directory; sessions found there at
	// startup are re-admitted as spilled (restart recovery). Required.
	SpillDir string
	// StreamBuffer is the per-subscriber event channel depth; a consumer
	// that falls this many events behind is evicted. Default 256.
	StreamBuffer int
	// StreamWriteTimeout is the per-record write deadline on event
	// streams — the wall-clock half of the slow-consumer discipline
	// (min-recv-rate). Default 10s.
	StreamWriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 256
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 10 * time.Second
	}
	return c
}

// Server is the gatherd session host. Create one with New, mount it as an
// http.Handler, and shut it down with Shutdown (drains in-flight steps,
// spills every live session).
type Server struct {
	cfg   Config
	pool  *pool.Pool
	store *Store
	mux   *http.ServeMux

	nextID    atomic.Uint64
	startTime time.Time

	done      chan struct{} // closed by CloseStreams: streams end, steps drain
	closeOnce sync.Once

	streamsOpen    atomic.Int64
	streamsOpened  atomic.Uint64
	slowEvicted    atomic.Uint64
	eventsStreamed atomic.Uint64
}

// New opens the spill store, recovers any sessions spilled by a previous
// run, and returns the ready-to-mount server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := OpenStore(cfg.SpillDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		pool:      pool.New(cfg.Pool),
		store:     store,
		mux:       http.NewServeMux(),
		startTime: time.Now(),
		done:      make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

// recover re-admits every session the spill store holds, as spilled —
// a restarted daemon resumes exactly where SpillAll left it.
func (s *Server) recover() error {
	metas, err := s.store.List()
	if err != nil {
		return err
	}
	var maxID uint64
	for _, meta := range metas {
		sess := &session{
			id:    meta.ID,
			label: meta.Label,
			exec: execOptions{
				workers:       meta.Workers,
				fullBFS:       meta.FullBFS,
				fullRecompute: meta.FullRecompute,
			},
			srv: s,
		}
		sess.setInfo(SessionInfo{
			ID:     meta.ID,
			Label:  meta.Label,
			Round:  meta.Round,
			Robots: meta.Robots,
			Done:   meta.Done,
			Reason: meta.Reason,
		})
		if _, err := s.pool.AdmitSpilled(meta.ID, sess); err != nil {
			return err
		}
		if n, err := strconv.ParseUint(strings.TrimPrefix(meta.ID, "s"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	s.nextID.Store(maxID)
	return nil
}

func (s *Server) newID() string {
	return fmt.Sprintf("s%06d", s.nextID.Add(1))
}

// Pool exposes the session pool (stats, tests).
func (s *Server) Pool() *pool.Pool { return s.pool }

// Store exposes the spill store (tests).
func (s *Server) Store() *Store { return s.store }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("POST /v1/sessions/restore", s.handleRestoreUpload)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	s.mux.HandleFunc("GET /v1/sessions/{id}/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/sessions/{id}/evict", s.handleEvict)
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
}

// ServeHTTP charges session-API requests against the caller's in-flight
// budget (a stream holds its slot for its whole lifetime — that is the
// per-peer cap doing its job) and dispatches.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/sessions") {
		client := clientKey(r)
		if err := s.pool.ClientAcquire(client); err != nil {
			s.httpError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		defer s.pool.ClientRelease(client)
	}
	s.mux.ServeHTTP(w, r)
}

// clientKey identifies a caller: the X-Client header when set (load
// drivers, tests), else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// ---- session touch machinery ----

// withSession pins the session, locks it, makes it resident (restoring
// from the spill store if its Simulation was evicted) and runs fn under
// the lock. Known errors are mapped to HTTP responses; fn writes its own
// success response.
func (s *Server) withSession(w http.ResponseWriter, id string, fn func(e *pool.Entry, sess *session) error) {
	e, err := s.pool.Acquire(id)
	if err != nil {
		s.httpError(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.pool.Release(e)
	sess := e.Payload().(*session)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.deleted {
		s.httpError(w, http.StatusNotFound, "serve: session deleted")
		return
	}
	if err := s.materializeLocked(e, sess); err != nil {
		s.poolError(w, err)
		return
	}
	if err := fn(e, sess); err != nil {
		s.poolError(w, err)
	}
}

// materializeLocked ensures the session's Simulation is in memory and
// counted resident. Callers hold the entry pinned and sess.mu.
func (s *Server) materializeLocked(e *pool.Entry, sess *session) error {
	if !s.pool.Resident(e) {
		victims, err := s.pool.ReserveResident(e)
		if err != nil {
			return err
		}
		for _, v := range victims {
			s.spillVictim(v)
		}
	}
	if sess.sim != nil {
		// Still in memory (fresh, or a spill that lost the race to this
		// touch) — the slot reservation above is all that was needed.
		return nil
	}
	_, snap, err := s.store.Get(sess.id)
	if err != nil {
		s.pool.DropResident(e)
		return err
	}
	sim, err := gridgather.Restore(snap, sess.exec.restoreOptions()...)
	if err != nil {
		s.pool.DropResident(e)
		return fmt.Errorf("serve: restore %s: %w", sess.id, err)
	}
	sess.sim = sim
	sess.attachRelay()
	return nil
}

// spillVictim writes an eviction victim selected by the pool out to the
// spill store. It never blocks on the victim's session lock: a held lock
// means a pinned toucher beat us to it, and — having pinned after our
// selection — that toucher sees the entry non-resident and re-reserves
// the slot itself, so there is nothing for us to spill. (This TryLock is
// also what keeps victim-spill chains free of lock-wait cycles.)
func (s *Server) spillVictim(e *pool.Entry) {
	sess := e.Payload().(*session)
	if !sess.mu.TryLock() {
		s.pool.MarkSpilled(e)
		return
	}
	defer sess.mu.Unlock()
	defer s.pool.MarkSpilled(e)
	if sess.deleted || sess.sim == nil || s.pool.Resident(e) {
		return
	}
	// A failed spill (disk trouble) keeps the Simulation in memory; the
	// pool has it counted out, so the next touch simply re-reserves the
	// slot — the state is never lost.
	_ = s.spillLocked(sess)
}

// spillLocked snapshots the session to the spill store and discards the
// in-memory Simulation. Callers hold sess.mu with sess.sim non-nil.
func (s *Server) spillLocked(sess *session) error {
	snap, err := sess.sim.Snapshot()
	if err != nil {
		return err
	}
	st := sess.sim.Status()
	meta := SpillMeta{
		ID:            sess.id,
		Label:         sess.label,
		Workers:       sess.exec.workers,
		FullBFS:       sess.exec.fullBFS,
		FullRecompute: sess.exec.fullRecompute,
		Round:         st.Round,
		Robots:        st.Robots,
		Done:          st.Done,
		Reason:        st.Reason,
	}
	if err := s.store.Put(meta, snap); err != nil {
		return err
	}
	sess.detachRelay()
	sess.sim = nil
	sess.setInfo(sessionInfo(sess.id, sess.label, false, st))
	return nil
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": Version})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Version:              Version,
		Sessions:             ps.Sessions,
		Resident:             ps.Resident,
		Spilled:              ps.Spilled,
		MaxResident:          s.pool.Config().MaxResident,
		MaxResidentObserved:  ps.MaxResidentObserved,
		Created:              ps.Created,
		Evictions:            ps.Evictions,
		Restores:             ps.Restores,
		Deletes:              ps.Deletes,
		RejectedFull:         ps.RejectedFull,
		RejectedBusy:         ps.RejectedBusy,
		RejectedClient:       ps.RejectedClient,
		Clients:              ps.Clients,
		InFlight:             ps.InFlight,
		BytesOut:             ps.BytesOut,
		StreamsOpen:          int(s.streamsOpen.Load()),
		StreamsOpened:        s.streamsOpened.Load(),
		SlowConsumersEvicted: s.slowEvicted.Load(),
		EventsStreamed:       s.eventsStreamed.Load(),
		UptimeSeconds:        time.Since(s.startTime).Seconds(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "serve: bad create body: "+err.Error())
		return
	}
	cells, err := req.cells()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess := &session{
		id:    s.newID(),
		label: req.Label,
		exec: execOptions{
			workers:       req.Workers,
			fullBFS:       req.FullBFS,
			fullRecompute: req.FullRecompute,
		},
		srv: s,
	}
	s.admit(w, sess, func() (*gridgather.Simulation, error) {
		return gridgather.New(cells, req.options()...)
	})
}

// handleRestoreUpload creates a session from client-supplied snapshot
// bytes — the upload half of the snapshot round-trip (download, carry to
// another box or another day, restore). Execution options ride in query
// parameters because the snapshot intentionally does not contain them.
func (s *Server) handleRestoreUpload(w http.ResponseWriter, r *http.Request) {
	snap, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "serve: bad snapshot body: "+err.Error())
		return
	}
	q := r.URL.Query()
	workers, _ := strconv.Atoi(q.Get("workers"))
	sess := &session{
		id:    s.newID(),
		label: q.Get("label"),
		exec: execOptions{
			workers:       workers,
			fullBFS:       q.Get("full_bfs") == "true",
			fullRecompute: q.Get("full_recompute") == "true",
		},
		srv: s,
	}
	s.admit(w, sess, func() (*gridgather.Simulation, error) {
		return gridgather.Restore(snap, sess.exec.restoreOptions()...)
	})
}

// admit runs the shared create path: pool admission, spill-victims-first,
// then materialize the new Simulation — in that order, so the number of
// in-memory simulations never overshoots MaxResident.
func (s *Server) admit(w http.ResponseWriter, sess *session, build func() (*gridgather.Simulation, error)) {
	sess.mu.Lock()
	e, victims, err := s.pool.Admit(sess.id, sess)
	if err != nil {
		sess.mu.Unlock()
		s.poolError(w, err)
		return
	}
	for _, v := range victims {
		s.spillVictim(v)
	}
	sim, err := build()
	if err != nil {
		sess.deleted = true
		sess.mu.Unlock()
		s.pool.Release(e)
		_ = s.pool.Remove(sess.id)
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.sim = sim
	info := sess.refreshInfo(true)
	sess.mu.Unlock()
	s.pool.Release(e)
	writeJSON(w, http.StatusCreated, info)
}

// handleList reports every session from its cached status — listing never
// forces a restore.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.pool.Entries()
	resp := ListResponse{Sessions: make([]SessionInfo, 0, len(entries))}
	for _, e := range entries {
		sess := e.Payload().(*session)
		info := sess.cachedInfo()
		info.Resident = s.pool.Resident(e)
		resp.Sessions = append(resp.Sessions, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r.PathValue("id"), func(e *pool.Entry, sess *session) error {
		writeJSON(w, http.StatusOK, sess.refreshInfo(true))
		return nil
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r.PathValue("id"), func(e *pool.Entry, sess *session) error {
		m := sess.sim.Metrics()
		writeJSON(w, http.StatusOK, MetricsResponse{
			ID:              sess.id,
			Rounds:          m.Rounds,
			InitialRobots:   m.InitialRobots,
			Robots:          m.Robots,
			Merges:          m.Merges,
			RunsStarted:     m.RunsStarted,
			Moves:           m.Moves,
			Crashes:         m.Crashes,
			QuiesceComputed: m.QuiesceComputed,
			QuiesceSkipped:  m.QuiesceSkipped,
			QuiescentRatio:  m.QuiescentRatio,
		})
		return nil
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r.PathValue("id"), func(e *pool.Entry, sess *session) error {
		res := sess.sim.Result()
		resp := ResultResponse{
			ID:            sess.id,
			Gathered:      res.Gathered,
			Rounds:        res.Rounds,
			Merges:        res.Merges,
			RunsStarted:   res.RunsStarted,
			Moves:         res.Moves,
			InitialRobots: res.InitialRobots,
			FinalRobots:   res.FinalRobots,
			Crashes:       res.Crashes,
			Degraded:      res.Degraded,
		}
		if res.Err != nil {
			resp.Error = res.Err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
		return nil
	})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req StepRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			s.httpError(w, http.StatusBadRequest, "serve: bad step body: "+err.Error())
			return
		}
	}
	s.withSession(w, r.PathValue("id"), func(e *pool.Entry, sess *session) error {
		executed := 0
		if req.ToCompletion {
			drained := false
			for !drained && (req.BudgetRounds <= 0 || executed < req.BudgetRounds) {
				select {
				case <-s.done:
					// Shutdown drain: finish cleanly with the rounds done
					// so far; the session spills and resumes next boot.
					drained = true
					continue
				default:
				}
				if err := sess.sim.Step(); err != nil {
					break // ErrDone or a sticky abort — both live in Status
				}
				executed++
				if sess.sim.Status().Done {
					break
				}
			}
		} else {
			n := req.Rounds
			if n <= 0 {
				n = 1
			}
			// An abort or ErrDone is a simulation outcome, not a transport
			// error: HTTP 200, Reason/Error carry the cause.
			executed, _ = sess.sim.StepN(n)
		}
		writeJSON(w, http.StatusOK, StepResponse{
			Executed: executed,
			Status:   sess.refreshInfo(true),
		})
		return nil
	})
}

// handleSnapshot serves the session's snapshot bytes. A spilled session is
// served straight from the store — downloading a cold session does not
// force a restore.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	e, err := s.pool.Acquire(r.PathValue("id"))
	if err != nil {
		s.httpError(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.pool.Release(e)
	sess := e.Payload().(*session)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.deleted {
		s.httpError(w, http.StatusNotFound, "serve: session deleted")
		return
	}
	var snap []byte
	if sess.sim != nil {
		snap, err = sess.sim.Snapshot()
	} else {
		_, snap, err = s.store.Get(sess.id)
	}
	if err != nil {
		s.poolError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(snap)))
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(snap)
	s.pool.NoteFlow(n)
}

// handleEvict spills the session on demand (tests, operators pre-draining
// a box). Evicting a spilled session is a no-op success.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	e, err := s.pool.Acquire(r.PathValue("id"))
	if err != nil {
		s.httpError(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.pool.Release(e)
	sess := e.Payload().(*session)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.deleted {
		s.httpError(w, http.StatusNotFound, "serve: session deleted")
		return
	}
	if sess.sim != nil {
		if err := s.spillLocked(sess); err != nil {
			s.httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.pool.DropResident(e)
	}
	writeJSON(w, http.StatusOK, sess.cachedInfo())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := s.pool.Acquire(id)
	if err != nil {
		s.httpError(w, http.StatusNotFound, err.Error())
		return
	}
	sess := e.Payload().(*session)
	sess.mu.Lock()
	if sess.deleted {
		sess.mu.Unlock()
		s.pool.Release(e)
		s.httpError(w, http.StatusNotFound, "serve: session deleted")
		return
	}
	sess.deleted = true
	sess.detachRelay()
	sess.sim = nil
	sess.mu.Unlock()
	sess.evictSubscribers("session deleted")
	s.pool.Release(e)
	_ = s.pool.Remove(id)
	if err := s.store.Delete(id); err != nil {
		s.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- shutdown ----

// CloseStreams ends every open event stream and tells in-flight
// run-to-completion steps to drain. Idempotent.
func (s *Server) CloseStreams() {
	s.closeOnce.Do(func() { close(s.done) })
}

// SpillAll writes every resident session to the spill store — the last
// act of a graceful shutdown, making restart recovery lossless.
func (s *Server) SpillAll() error {
	var firstErr error
	for _, e := range s.pool.Entries() {
		pinned, err := s.pool.Acquire(e.ID())
		if err != nil {
			continue // deleted meanwhile
		}
		sess := pinned.Payload().(*session)
		sess.mu.Lock()
		if !sess.deleted && sess.sim != nil {
			if err := s.spillLocked(sess); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				s.pool.DropResident(pinned)
			}
		}
		sess.mu.Unlock()
		s.pool.Release(pinned)
	}
	return firstErr
}

// Shutdown is the graceful-stop sequence: stop streams, drain the HTTP
// server (in-flight steps finish their rounds), then spill every live
// session so a restart resumes where this process stopped.
func (s *Server) Shutdown(ctx context.Context, hs *http.Server) error {
	s.CloseStreams()
	err := hs.Shutdown(ctx)
	if spillErr := s.SpillAll(); err == nil {
		err = spillErr
	}
	return err
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// poolError maps pool and store refusals onto HTTP backpressure codes.
func (s *Server) poolError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pool.ErrNotFound), errors.Is(err, ErrNoSnapshot):
		s.httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, pool.ErrClientLimit):
		s.httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, pool.ErrPoolFull), errors.Is(err, pool.ErrAllBusy):
		s.httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		s.httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) noteEventStreamed() { s.eventsStreamed.Add(1) }
func (s *Server) noteSlowEviction()  { s.slowEvicted.Add(1) }
