package gridgather

import (
	"errors"
	"testing"

	"gridgather/internal/fsync"
)

// declaredReasons is the documented Status.Reason enum. Keep in sync with
// the Reason* constants block in session.go — the tests below fail if
// statusReason can produce a label outside this set or if a declared label
// became unreachable.
var declaredReasons = map[string]bool{
	ReasonRunning:      true,
	ReasonGathered:     true,
	ReasonDegraded:     true,
	ReasonRoundLimit:   true,
	ReasonDisconnected: true,
	ReasonStuck:        true,
	ReasonError:        true,
}

// TestStatusReasonExhaustive drives statusReason through every input class
// it distinguishes (each abort error type × gathered × degraded) and
// checks (a) every output is a declared constant and (b) every declared
// constant is produced by some input — the enum and the derivation cannot
// drift apart silently.
func TestStatusReasonExhaustive(t *testing.T) {
	errs := []error{
		nil,
		fsync.ErrRoundLimit{Rounds: 7},
		fsync.ErrDisconnected{Round: 7},
		fsync.ErrStuck{Round: 7, SinceMerge: 3},
		errors.New("algorithm exploded"),          // the catch-all class
		restoredAbortError{msg: "carried across"}, // snapshot-carried abort
		fsync.ErrRoundLimit{},                     // zero values classify the same
	}
	produced := map[string]bool{}
	for _, err := range errs {
		for _, gathered := range []bool{false, true} {
			for _, degraded := range []bool{false, true} {
				got := statusReason(err, gathered, degraded)
				if !declaredReasons[got] {
					t.Errorf("statusReason(%v, gathered=%v, degraded=%v) = %q: not a declared Reason constant",
						err, gathered, degraded, got)
				}
				produced[got] = true
			}
		}
	}
	for reason := range declaredReasons {
		if !produced[reason] {
			t.Errorf("declared reason %q is unreachable from statusReason", reason)
		}
	}
}

// TestStatusReasonPrecedence pins the documented ordering: aborts win over
// gathered, gathered wins over degraded.
func TestStatusReasonPrecedence(t *testing.T) {
	if got := statusReason(fsync.ErrStuck{}, true, true); got != ReasonStuck {
		t.Errorf("abort should win over gathered: got %q", got)
	}
	if got := statusReason(nil, true, true); got != ReasonGathered {
		t.Errorf("gathered should win over degraded: got %q", got)
	}
	if got := statusReason(nil, false, true); got != ReasonDegraded {
		t.Errorf("degraded session should read %q, got %q", ReasonDegraded, got)
	}
	if got := statusReason(nil, false, false); got != ReasonRunning {
		t.Errorf("running session should read %q, got %q", ReasonRunning, got)
	}
}

// TestStatusReasonStability pins the literal wire strings: these are
// serialized by gatherd and matched by network clients, so a change here
// is a wire-format break, not a refactor.
func TestStatusReasonStability(t *testing.T) {
	want := map[string]string{
		"ReasonRunning":      "",
		"ReasonGathered":     "gathered",
		"ReasonDegraded":     "degraded",
		"ReasonRoundLimit":   "round-limit",
		"ReasonDisconnected": "disconnected",
		"ReasonStuck":        "stuck",
		"ReasonError":        "error",
	}
	got := map[string]string{
		"ReasonRunning":      ReasonRunning,
		"ReasonGathered":     ReasonGathered,
		"ReasonDegraded":     ReasonDegraded,
		"ReasonRoundLimit":   ReasonRoundLimit,
		"ReasonDisconnected": ReasonDisconnected,
		"ReasonStuck":        ReasonStuck,
		"ReasonError":        ReasonError,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %q, want %q (stable wire format)", name, got[name], w)
		}
	}
}
