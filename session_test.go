package gridgather

import (
	"context"
	"errors"
	"testing"

	"gridgather/internal/fsync"
)

func mustWorkload(t testing.TB, name string, n int) []Point {
	t.Helper()
	cells, err := Workload(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func mustNew(t testing.TB, cells []Point, opts ...Option) *Simulation {
	t.Helper()
	sim, err := New(cells, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// A session stepped round by round reproduces Gather exactly.
func TestSessionStepMatchesGather(t *testing.T) {
	cells := mustWorkload(t, "hollow", 60)
	ref := Gather(cells, Options{CheckConnectivity: true})
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	sim := mustNew(t, cells, WithConnectivityCheck(true))
	steps := 0
	for {
		err := sim.Step()
		if err == ErrDone {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if st := sim.Status(); st.Gathered {
			break
		}
	}
	if res := sim.Result(); res != ref {
		t.Errorf("stepped result %+v != Gather result %+v", res, ref)
	}
	if steps != ref.Rounds {
		t.Errorf("stepped %d rounds, Gather took %d", steps, ref.Rounds)
	}
	// Step on the finished session reports ErrDone and does not advance.
	if err := sim.Step(); err != ErrDone {
		t.Errorf("Step after gathering = %v, want ErrDone", err)
	}
	if sim.Status().Round != ref.Rounds {
		t.Error("Step after gathering advanced the round counter")
	}
}

func TestSessionStepN(t *testing.T) {
	cells := mustWorkload(t, "line", 40)
	ref := Gather(cells, Options{})
	sim := mustNew(t, cells)
	n, err := sim.StepN(5)
	if err != nil || n != 5 {
		t.Fatalf("StepN(5) = %d, %v", n, err)
	}
	if st := sim.Status(); st.Round != 5 || st.Done {
		t.Fatalf("status after StepN(5): %+v", st)
	}
	// Stepping far past the end stops exactly at the gathering round.
	n, err = sim.StepN(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := 5 + n; got != ref.Rounds {
		t.Errorf("total rounds %d, want %d", got, ref.Rounds)
	}
	if n, err = sim.StepN(3); n != 0 || err != ErrDone {
		t.Errorf("StepN on finished session = %d, %v", n, err)
	}
}

func TestSessionStatusAndMetrics(t *testing.T) {
	cells := mustWorkload(t, "hollow", 60)
	sim := mustNew(t, cells)
	if st := sim.Status(); st.Round != 0 || st.Done || st.Robots != len(cells) {
		t.Fatalf("fresh status: %+v", st)
	}
	res := sim.Run(context.Background())
	if res.Err != nil || !res.Gathered {
		t.Fatalf("run: %+v", res)
	}
	st, m := sim.Status(), sim.Metrics()
	if !st.Done || !st.Gathered || st.Err != nil {
		t.Errorf("final status: %+v", st)
	}
	if m.Rounds != res.Rounds || m.Merges != res.Merges || m.Moves != res.Moves ||
		m.RunsStarted != res.RunsStarted || m.InitialRobots != res.InitialRobots ||
		m.Robots != res.FinalRobots {
		t.Errorf("metrics %+v inconsistent with result %+v", m, res)
	}
}

// Run honors cancellation mid-round-loop without corrupting the session: a
// cancelled session steps onward and finishes exactly like an
// uninterrupted run.
func TestRunHonorsCancellation(t *testing.T) {
	cells := mustWorkload(t, "hollow", 80)
	ref := Gather(cells, Options{})
	if ref.Err != nil || ref.Rounds < 6 {
		t.Fatalf("reference: %+v", ref)
	}

	sim := mustNew(t, cells)
	ctx, cancel := context.WithCancel(context.Background())
	const cutAt = 5
	sim.Subscribe(RoundEvents, func(ev Event) {
		if ev.Round == cutAt {
			cancel() // cancel from inside the round loop
		}
	})
	res := sim.Run(ctx)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled run err = %v", res.Err)
	}
	if res.Rounds != cutAt {
		t.Fatalf("cancelled at round %d, want %d", res.Rounds, cutAt)
	}
	if st := sim.Status(); st.Done || st.Err != nil {
		t.Fatalf("cancellation marked the session done: %+v", st)
	}

	// The session steps onward after cancellation…
	if err := sim.Step(); err != nil {
		t.Fatalf("Step after cancel: %v", err)
	}
	// …and a fresh Run completes with the uninterrupted result.
	res = sim.Run(context.Background())
	if res != ref {
		t.Errorf("resumed run %+v != uninterrupted %+v", res, ref)
	}
}

// Abort errors are sticky and delivered to abort subscribers.
func TestSessionAbortSticky(t *testing.T) {
	cells := mustWorkload(t, "hollow", 120)
	var aborts []error
	sim := mustNew(t, cells, WithMaxRounds(3),
		WithObserver(AbortEvents, func(ev Event) { aborts = append(aborts, ev.Err) }))
	res := sim.Run(context.Background())
	var limit fsync.ErrRoundLimit
	if !errors.As(res.Err, &limit) {
		t.Fatalf("err = %v, want round limit", res.Err)
	}
	if len(aborts) != 1 || aborts[0] == nil {
		t.Fatalf("abort events: %v", aborts)
	}
	if err := sim.Step(); !errors.As(err, &limit) {
		t.Errorf("Step after abort = %v, want the sticky round-limit error", err)
	}
	if st := sim.Status(); !st.Done || st.Err == nil {
		t.Errorf("aborted status: %+v", st)
	}
}

// The typed event stream carries the round, merge, run-start and gathered
// kinds with consistent payloads.
func TestSessionEvents(t *testing.T) {
	cells := mustWorkload(t, "hollow", 60)
	var rounds, merges, runStarts, gathered int
	var lastRobots int
	mergeSum := 0
	sim := mustNew(t, cells,
		WithObserver(RoundEvents, func(ev Event) {
			rounds++
			lastRobots = len(ev.Robots)
			if ev.Kind != EventRound {
				t.Errorf("round event kind = %v", ev.Kind)
			}
		}),
		WithObserver(MergeEvents|RunStartEvents|GatheredEvents, func(ev Event) {
			switch ev.Kind {
			case EventMerge:
				merges++
				mergeSum += ev.RoundMerges
			case EventRunStart:
				runStarts++
			case EventGathered:
				gathered++
				if !Connected(ev.Robots) {
					t.Error("gathered event with disconnected payload")
				}
			}
		}))
	res := sim.Run(context.Background())
	if res.Err != nil || !res.Gathered {
		t.Fatalf("run: %+v", res)
	}
	if rounds != res.Rounds {
		t.Errorf("round events %d, rounds %d", rounds, res.Rounds)
	}
	if gathered != 1 {
		t.Errorf("gathered events = %d", gathered)
	}
	if mergeSum != res.Merges {
		t.Errorf("merge events summed to %d, result has %d", mergeSum, res.Merges)
	}
	if runStarts == 0 && res.RunsStarted > 0 {
		t.Error("no run-start events despite started runs")
	}
	if lastRobots != res.FinalRobots {
		t.Errorf("last round payload had %d robots, final %d", lastRobots, res.FinalRobots)
	}
	if merges == 0 {
		t.Error("no merge events on a gathering run")
	}
}

func TestStepNNonPositive(t *testing.T) {
	sim := mustNew(t, mustWorkload(t, "line", 10))
	for _, k := range []int{0, -3} {
		if n, err := sim.StepN(k); n != 0 || err != nil {
			t.Errorf("StepN(%d) = %d, %v; want 0, nil", k, n, err)
		}
	}
	if sim.Status().Round != 0 {
		t.Error("non-positive StepN advanced the session")
	}
}

// Cancelling a subscription from inside an event callback must not corrupt
// the in-flight delivery: every other subscriber still sees the event
// exactly once.
func TestSubscribeCancelDuringEmit(t *testing.T) {
	sim := mustNew(t, mustWorkload(t, "line", 20))
	var cancelB func()
	var b, c int
	sim.Subscribe(RoundEvents, func(Event) { cancelB() }) // A cancels B mid-emit
	cancelB = sim.Subscribe(RoundEvents, func(Event) { b++ })
	sim.Subscribe(RoundEvents, func(Event) { c++ })
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Errorf("cancelled subscriber still ran %d times", b)
	}
	if c != 1 {
		t.Errorf("later subscriber saw the event %d times, want exactly 1", c)
	}
}

// Subscribe's cancel function removes the subscription.
func TestSubscribeCancel(t *testing.T) {
	cells := mustWorkload(t, "line", 20)
	sim := mustNew(t, cells)
	var a, b int
	cancelA := sim.Subscribe(RoundEvents, func(Event) { a++ })
	sim.Subscribe(RoundEvents, func(Event) { b++ })
	if _, err := sim.StepN(2); err != nil {
		t.Fatal(err)
	}
	cancelA()
	cancelA() // idempotent
	if _, err := sim.StepN(2); err != nil {
		t.Fatal(err)
	}
	if a != 2 || b != 4 {
		t.Errorf("a = %d (want 2), b = %d (want 4)", a, b)
	}
}

// The observer path adds zero allocations on top of a bare Step: the event
// payload reuses session-owned scratch refilled from engine-owned state.
func TestObserverPathAllocationFree(t *testing.T) {
	measure := func(opts ...Option) float64 {
		cells := mustWorkload(t, "hollow", 400)
		sim := mustNew(t, cells, append(opts, WithWorkers(1))...)
		// Warm the scratch buffers, then measure steady-state rounds.
		if _, err := sim.StepN(3); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		})
	}
	bare := measure()
	seen := 0
	observed := measure(WithObserver(AllEvents, func(ev Event) { seen += len(ev.Robots) + len(ev.Runners) }))
	if observed > bare {
		t.Errorf("observer path allocates: %.1f allocs/round with observer, %.1f without", observed, bare)
	}
	if seen == 0 {
		t.Fatal("observer never saw a payload")
	}
}

// TestWithFullBFSConnectivity pins the escape hatch's contract: a session
// checking connectivity through the full BFS produces exactly the same
// result as the default incremental layer — directly and across a
// mid-flight snapshot/restore that flips the mode.
func TestWithFullBFSConnectivity(t *testing.T) {
	cells := mustWorkload(t, "hollow", 60)
	ref := Gather(cells, Options{CheckConnectivity: true})
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	sim := mustNew(t, cells, WithConnectivityCheck(true), WithFullBFSConnectivity(true))
	if res := sim.Run(context.Background()); res != ref {
		t.Errorf("full-BFS result %+v != incremental result %+v", res, ref)
	}

	donor := mustNew(t, cells, WithConnectivityCheck(true))
	if _, err := donor.StepN(ref.Rounds / 2); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap, WithFullBFSConnectivity(true))
	if err != nil {
		t.Fatal(err)
	}
	if res := restored.Run(context.Background()); res != ref {
		t.Errorf("restored full-BFS result %+v != incremental result %+v", res, ref)
	}
}
