package gridgather

import (
	"errors"
	"fmt"
)

// An Option configures a Simulation at construction. The zero
// configuration (no options) is the paper's setting: radius 20, L = 22,
// FSYNC, the paper's algorithm, the canonical simulation budget, and all
// available CPUs.
//
// Options divide into two classes. Structural options (WithRadius, WithL,
// WithScheduler, WithSchedulerSeed, WithAlgorithm, WithFaults) define what
// is being simulated; they are baked into snapshots and rejected by Restore.
// Execution options (WithMaxRounds, WithNoMergeLimit, WithWorkers,
// WithConnectivityCheck, WithStrictLocality, WithFullBFSConnectivity,
// WithFullRecompute, WithObserver) only control how the simulation is
// driven and may be changed freely on Restore.
type Option func(*settings) error

// settings is the resolved session configuration New and Restore build
// from options (and, for Restore, from the snapshot header).
type settings struct {
	radius, l     int
	maxRounds     int
	noMergeLimit  int
	scheduler     string
	schedulerSeed int64
	algorithm     string
	faults        string
	checkConn     bool
	checkConnSet  bool // WithConnectivityCheck was passed (Restore override)
	strict        bool
	strictSet     bool // WithStrictLocality was passed (Restore override)
	workers       int
	fullBFS       bool
	fullRecompute bool
	subs          []subscription

	// structural lists the structural options that were applied, so
	// Restore can reject attempts to reshape a checkpointed simulation.
	structural []string
}

func (s *settings) apply(opts []Option) error {
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return err
		}
	}
	return nil
}

func structural(name string, f func(*settings)) Option {
	return func(s *settings) error {
		f(s)
		s.structural = append(s.structural, name)
		return nil
	}
}

// WithRadius sets the viewing radius (L1). 0 selects the paper's value 20.
// Structural: rejected by Restore.
func WithRadius(r int) Option {
	return structural("WithRadius", func(s *settings) { s.radius = r })
}

// WithL sets the run-start period of §3.2. 0 selects the paper's value 22.
// Structural: rejected by Restore.
func WithL(l int) Option {
	return structural("WithL", func(s *settings) { s.l = l })
}

// WithScheduler selects the time model by spec: "" or "fsync" (the paper's
// fully synchronous model, default), "ssync"/"ssync-rr:k" (round-robin
// subsets), "ssync-rand:k" (random subsets), "ssync-lazy:k" (lazy
// adversarial subsets), "async:w" (a sequential wavefront of width w). The
// paper's algorithm is proved for FSYNC only — pair relaxed schedulers
// with WithAlgorithm("greedy") for runs that are safe under every
// scheduler. Structural: rejected by Restore.
func WithScheduler(spec string) Option {
	return structural("WithScheduler", func(s *settings) { s.scheduler = spec })
}

// WithSchedulerSeed seeds the randomized schedulers (ssync-rand,
// ssync-lazy); 0 means 1. Deterministic schedulers ignore it. Structural:
// rejected by Restore.
func WithSchedulerSeed(seed int64) Option {
	return structural("WithSchedulerSeed", func(s *settings) { s.schedulerSeed = seed })
}

// WithAlgorithm selects the robot program: "" or "paper" (the paper's
// algorithm, default) or "greedy" (the scheduler-robust local strategy; it
// ignores radius and L). Structural: rejected by Restore.
func WithAlgorithm(name string) Option {
	return structural("WithAlgorithm", func(s *settings) { s.algorithm = name })
}

// WithFaults injects deterministic faults by spec: "+"-joined clauses of
// "crash:p=<prob>" (each robot crash-stops with probability p per round),
// "crash-at:r=<round>,k=<count>" (a one-shot mass crash), and
// "noise:p=<prob>" (each activation's view gets one flipped cell with
// probability p); each clause takes an optional "@seed" pinning its RNG
// stream independently of the scheduler seed. "" (default), "off" and
// "none" run fault-free. A crashed robot freezes forever as an occupied,
// mergeable-onto cell, and faults switch the run to graceful degradation:
// a disconnection no longer aborts — gathering is then asked of the
// survivors in the component holding the most live robots, observable via
// EventDegraded and Status. Degradation piggybacks on the connectivity
// check, so enable WithConnectivityCheck to observe disconnections; with
// the check off, a run split by faults ends at the no-merge watchdog
// instead. Structural: baked into snapshots, rejected by Restore.
func WithFaults(spec string) Option {
	return structural("WithFaults", func(s *settings) { s.faults = spec })
}

// WithMaxRounds sets the hard round limit after which the simulation
// aborts with ErrRoundLimit. 0 selects the canonical budget 80·n + 1000
// scaled by the scheduler's fairness bound; negative values are rejected
// with ErrNegativeMaxRounds.
func WithMaxRounds(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return ErrNegativeMaxRounds
		}
		s.maxRounds = n
		return nil
	}
}

// WithNoMergeLimit sets the stuck watchdog: the simulation aborts when
// this many consecutive rounds pass without a merge. 0 selects the
// canonical window 40·n + 500 (scaled like WithMaxRounds); negative
// disables the watchdog.
func WithNoMergeLimit(n int) Option {
	return func(s *settings) error {
		s.noMergeLimit = n
		return nil
	}
}

// WithConnectivityCheck toggles validating swarm connectivity after every
// round (the paper's central safety property; a violation aborts the
// simulation).
func WithConnectivityCheck(on bool) Option {
	return func(s *settings) error {
		s.checkConn = on
		s.checkConnSet = true
		return nil
	}
}

// WithStrictLocality makes the simulation panic if the algorithm reads any
// cell outside the viewing radius (a proof of locality; small overhead).
func WithStrictLocality(on bool) Option {
	return func(s *settings) error {
		s.strict = on
		s.strictSet = true
		return nil
	}
}

// WithWorkers sets the number of goroutines the engine shards each round
// across — the Look+Compute phase and the move/merge/commit write phase
// alike. 0 uses all available CPUs; 1 forces the serial path. Results are
// bit-identical for every worker count.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		s.workers = n
		return nil
	}
}

// WithFullBFSConnectivity pins the per-round connectivity check to the
// full breadth-first scan instead of the default incremental layer (which
// relabels only the 64×64 chunks a round actually changed). The two paths
// return identical answers on every round — the differential suites prove
// it — so this is an escape hatch and a verification oracle, not a
// correctness knob: use it to cross-check the incremental layer or to
// trade the incremental bookkeeping for a simpler cost profile on tiny
// swarms. Like WithWorkers, it never changes simulation outcomes.
func WithFullBFSConnectivity(on bool) Option {
	return func(s *settings) error {
		s.fullBFS = on
		return nil
	}
}

// WithFullRecompute pins every activation to a fresh Compute call instead
// of the default quiescence fast path (which replays a robot's cached
// quiescent decision while the dirty-region tracking proves its view
// unchanged). The two paths are bit-identical on every round — the
// quiescence differential suite proves it — so this is an escape hatch and
// a verification oracle, not a correctness knob. Like WithWorkers, it
// never changes simulation outcomes. The fast path also disables itself
// when it cannot be sound: under WithStrictLocality, or for algorithms
// that do not declare a round period.
func WithFullRecompute(on bool) Option {
	return func(s *settings) error {
		s.fullRecompute = on
		return nil
	}
}

// WithObserver subscribes fn to the selected event kinds at construction —
// equivalent to calling Simulation.Subscribe immediately after New or
// Restore. See Subscribe for the delivery and borrow semantics.
func WithObserver(mask EventMask, fn func(Event)) Option {
	return func(s *settings) error {
		if fn == nil {
			return errors.New("gridgather: WithObserver with nil function")
		}
		if mask == 0 {
			return errors.New("gridgather: WithObserver with empty event mask")
		}
		s.subs = append(s.subs, subscription{mask: mask, fn: fn})
		return nil
	}
}

// rejectStructural reports an error if any structural option was applied —
// Restore resumes exactly the simulation that was checkpointed and refuses
// to reshape it.
func (s *settings) rejectStructural() error {
	if len(s.structural) == 0 {
		return nil
	}
	return fmt.Errorf("gridgather: option %s is structural and cannot be changed on Restore (the snapshot defines it)", s.structural[0])
}
