package gridgather

import (
	"context"
	"strings"
	"testing"
)

func TestGatherPublicAPI(t *testing.T) {
	cells, err := Workload("hollow", 60)
	if err != nil {
		t.Fatal(err)
	}
	res := Gather(cells, Options{CheckConnectivity: true, StrictLocality: true})
	if res.Err != nil || !res.Gathered {
		t.Fatalf("result = %+v", res)
	}
	if res.InitialRobots != len(cells) || res.FinalRobots > 4 {
		t.Errorf("population accounting: %+v", res)
	}
}

func TestGatherRejectsDisconnected(t *testing.T) {
	res := Gather([]Point{{0, 0}, {5, 5}}, Options{})
	if res.Err != ErrNotConnected {
		t.Errorf("err = %v", res.Err)
	}
}

func TestGatherRejectsEmpty(t *testing.T) {
	if res := Gather(nil, Options{}); res.Err != ErrEmpty {
		t.Errorf("err = %v", res.Err)
	}
}

func TestGatherDoesNotMutateInput(t *testing.T) {
	cells := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	Gather(cells, Options{})
	want := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	for i := range cells {
		if cells[i] != want[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestOnRoundHook(t *testing.T) {
	cells, _ := Workload("line", 20)
	var rounds []int
	var lastRobots int
	res := Gather(cells, Options{OnRound: func(ri RoundInfo) {
		rounds = append(rounds, ri.Round)
		lastRobots = len(ri.Robots)
	}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(rounds) != res.Rounds {
		t.Errorf("hook called %d times for %d rounds", len(rounds), res.Rounds)
	}
	if lastRobots != res.FinalRobots {
		t.Errorf("hook robots = %d, final = %d", lastRobots, res.FinalRobots)
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	names := Workloads()
	if len(names) < 5 {
		t.Fatalf("workloads = %v", names)
	}
	for _, name := range names {
		cells, err := Workload(name, 40)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !Connected(cells) {
			t.Errorf("%s: disconnected workload", name)
		}
	}
	if _, err := Workload("nope", 10); err == nil {
		t.Error("expected error for unknown workload")
	}
	if _, err := Workload("line", 0); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestGatherSchedulerOption(t *testing.T) {
	cells, _ := Workload("hollow", 40)
	// The scheduler-robust greedy algorithm gathers under a relaxed
	// schedule with connectivity checked every round.
	res := Gather(cells, Options{
		Scheduler:         "ssync",
		Algorithm:         "greedy",
		CheckConnectivity: true,
	})
	if res.Err != nil || !res.Gathered {
		t.Fatalf("greedy under ssync failed: %+v", res)
	}
	// An FSYNC run with an explicit scheduler string matches the default.
	ref := Gather(cells, Options{})
	expl := Gather(cells, Options{Scheduler: "fsync"})
	ref.Err, expl.Err = nil, nil
	if ref != expl {
		t.Errorf("explicit fsync diverged from default: %+v vs %+v", ref, expl)
	}
}

func TestGatherOptionValidation(t *testing.T) {
	cells, _ := Workload("line", 10)
	if res := Gather(cells, Options{MaxRounds: -1}); res.Err != ErrNegativeMaxRounds {
		t.Errorf("MaxRounds=-1: err = %v", res.Err)
	}
	if res := Gather(cells, Options{Scheduler: "warp"}); res.Err == nil {
		t.Error("expected error for unknown scheduler")
	}
	if res := Gather(cells, Options{Algorithm: "magic"}); res.Err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

// Every malformed input must fail identically through both entry points:
// the legacy Gather call and the session constructor.
func TestNewAndGatherErrorPaths(t *testing.T) {
	cells, _ := Workload("line", 10)
	cases := []struct {
		name string
		opts Options
		want error // nil = any non-nil error accepted
	}{
		{"unknown scheduler", Options{Scheduler: "warp"}, nil},
		{"malformed ssync param", Options{Scheduler: "ssync:0"}, nil},
		{"parameterized fsync", Options{Scheduler: "fsync:2"}, nil},
		{"non-numeric param", Options{Scheduler: "async:x"}, nil},
		{"unknown algorithm", Options{Algorithm: "magic"}, nil},
		{"negative MaxRounds", Options{MaxRounds: -1}, ErrNegativeMaxRounds},
		{"invalid radius", Options{Radius: 2}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Gather(cells, tc.opts)
			if res.Err == nil {
				t.Fatal("Gather accepted the options")
			}
			if tc.want != nil && res.Err != tc.want {
				t.Fatalf("Gather err = %v, want %v", res.Err, tc.want)
			}
			if res.InitialRobots != len(cells) {
				t.Errorf("error result InitialRobots = %d", res.InitialRobots)
			}
			sim, err := New(cells, tc.opts.options()...)
			if err == nil {
				t.Fatal("New accepted the options")
			}
			if tc.want != nil && err != tc.want {
				t.Fatalf("New err = %v, want %v", err, tc.want)
			}
			if sim != nil {
				t.Error("New returned a session alongside an error")
			}
		})
	}

	// Disconnected and empty inputs, through both entry points.
	disconnected := []Point{{0, 0}, {5, 5}}
	if res := Gather(disconnected, Options{}); res.Err != ErrNotConnected {
		t.Errorf("Gather disconnected err = %v", res.Err)
	}
	if _, err := New(disconnected); err != ErrNotConnected {
		t.Errorf("New disconnected err = %v", err)
	}
	if res := Gather(nil, Options{}); res.Err != ErrEmpty {
		t.Errorf("Gather empty err = %v", res.Err)
	}
	if _, err := New(nil); err != ErrEmpty {
		t.Errorf("New empty err = %v", err)
	}
}

// SchedulerSeed 0 means 1: the two configurations are one simulation, for
// every randomized scheduler and through both entry points.
func TestSchedulerSeedZeroMeansOne(t *testing.T) {
	cells, _ := Workload("hollow", 40)
	for _, spec := range []string{"ssync-rand:3", "ssync-lazy:5"} {
		zero := Gather(cells, Options{Scheduler: spec, SchedulerSeed: 0, Algorithm: "greedy"})
		one := Gather(cells, Options{Scheduler: spec, SchedulerSeed: 1, Algorithm: "greedy"})
		if zero.Err != nil || one.Err != nil {
			t.Fatalf("%s: %v / %v", spec, zero.Err, one.Err)
		}
		if zero != one {
			t.Errorf("%s: seed 0 diverged from seed 1: %+v vs %+v", spec, zero, one)
		}
		two := Gather(cells, Options{Scheduler: spec, SchedulerSeed: 2, Algorithm: "greedy"})
		if two == one {
			t.Logf("%s: seed 2 happened to match seed 1 (possible, but suspicious)", spec)
		}

		simZero := mustNew(t, cells, WithScheduler(spec), WithAlgorithm("greedy"))
		simOne := mustNew(t, cells, WithScheduler(spec), WithSchedulerSeed(1), WithAlgorithm("greedy"))
		rz, ro := simZero.Run(context.Background()), simOne.Run(context.Background())
		if rz != ro {
			t.Errorf("%s: session seed 0 diverged from seed 1: %+v vs %+v", spec, rz, ro)
		}
	}
}

func TestSchedulersAndAlgorithmsListed(t *testing.T) {
	if specs := Schedulers(); len(specs) < 4 {
		t.Errorf("schedulers = %v", specs)
	}
	if algs := Algorithms(); len(algs) != 2 {
		t.Errorf("algorithms = %v", algs)
	}
}

func TestCustomRadiusAndL(t *testing.T) {
	cells, _ := Workload("hollow", 80)
	res := Gather(cells, Options{Radius: 11, L: 13, CheckConnectivity: true})
	if res.Err != nil || !res.Gathered {
		t.Fatalf("radius-11/L-13 run failed: %+v", res)
	}
}

func TestRenderHelper(t *testing.T) {
	art := Render([]Point{{0, 0}, {1, 0}, {1, 1}})
	if !strings.Contains(art, "#") {
		t.Errorf("render = %q", art)
	}
	lines := strings.Split(strings.TrimSpace(art), "\n")
	if len(lines) != 2 {
		t.Errorf("render lines = %d", len(lines))
	}
}

func TestConnectedHelper(t *testing.T) {
	if !Connected([]Point{{0, 0}, {0, 1}}) {
		t.Error("adjacent pair should be connected")
	}
	if Connected([]Point{{0, 0}, {1, 1}}) {
		t.Error("diagonal pair must not be connected")
	}
	if Connected(nil) {
		t.Error("empty must not be connected")
	}
}
