package gridgather

import (
	"strings"
	"testing"
)

func TestGatherPublicAPI(t *testing.T) {
	cells, err := Workload("hollow", 60)
	if err != nil {
		t.Fatal(err)
	}
	res := Gather(cells, Options{CheckConnectivity: true, StrictLocality: true})
	if res.Err != nil || !res.Gathered {
		t.Fatalf("result = %+v", res)
	}
	if res.InitialRobots != len(cells) || res.FinalRobots > 4 {
		t.Errorf("population accounting: %+v", res)
	}
}

func TestGatherRejectsDisconnected(t *testing.T) {
	res := Gather([]Point{{0, 0}, {5, 5}}, Options{})
	if res.Err != ErrNotConnected {
		t.Errorf("err = %v", res.Err)
	}
}

func TestGatherRejectsEmpty(t *testing.T) {
	if res := Gather(nil, Options{}); res.Err != ErrEmpty {
		t.Errorf("err = %v", res.Err)
	}
}

func TestGatherDoesNotMutateInput(t *testing.T) {
	cells := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	Gather(cells, Options{})
	want := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	for i := range cells {
		if cells[i] != want[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestOnRoundHook(t *testing.T) {
	cells, _ := Workload("line", 20)
	var rounds []int
	var lastRobots int
	res := Gather(cells, Options{OnRound: func(ri RoundInfo) {
		rounds = append(rounds, ri.Round)
		lastRobots = len(ri.Robots)
	}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(rounds) != res.Rounds {
		t.Errorf("hook called %d times for %d rounds", len(rounds), res.Rounds)
	}
	if lastRobots != res.FinalRobots {
		t.Errorf("hook robots = %d, final = %d", lastRobots, res.FinalRobots)
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	names := Workloads()
	if len(names) < 5 {
		t.Fatalf("workloads = %v", names)
	}
	for _, name := range names {
		cells, err := Workload(name, 40)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !Connected(cells) {
			t.Errorf("%s: disconnected workload", name)
		}
	}
	if _, err := Workload("nope", 10); err == nil {
		t.Error("expected error for unknown workload")
	}
	if _, err := Workload("line", 0); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestGatherSchedulerOption(t *testing.T) {
	cells, _ := Workload("hollow", 40)
	// The scheduler-robust greedy algorithm gathers under a relaxed
	// schedule with connectivity checked every round.
	res := Gather(cells, Options{
		Scheduler:         "ssync",
		Algorithm:         "greedy",
		CheckConnectivity: true,
	})
	if res.Err != nil || !res.Gathered {
		t.Fatalf("greedy under ssync failed: %+v", res)
	}
	// An FSYNC run with an explicit scheduler string matches the default.
	ref := Gather(cells, Options{})
	expl := Gather(cells, Options{Scheduler: "fsync"})
	ref.Err, expl.Err = nil, nil
	if ref != expl {
		t.Errorf("explicit fsync diverged from default: %+v vs %+v", ref, expl)
	}
}

func TestGatherOptionValidation(t *testing.T) {
	cells, _ := Workload("line", 10)
	if res := Gather(cells, Options{MaxRounds: -1}); res.Err != ErrNegativeMaxRounds {
		t.Errorf("MaxRounds=-1: err = %v", res.Err)
	}
	if res := Gather(cells, Options{Scheduler: "warp"}); res.Err == nil {
		t.Error("expected error for unknown scheduler")
	}
	if res := Gather(cells, Options{Algorithm: "magic"}); res.Err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestSchedulersAndAlgorithmsListed(t *testing.T) {
	if specs := Schedulers(); len(specs) < 4 {
		t.Errorf("schedulers = %v", specs)
	}
	if algs := Algorithms(); len(algs) != 2 {
		t.Errorf("algorithms = %v", algs)
	}
}

func TestCustomRadiusAndL(t *testing.T) {
	cells, _ := Workload("hollow", 80)
	res := Gather(cells, Options{Radius: 11, L: 13, CheckConnectivity: true})
	if res.Err != nil || !res.Gathered {
		t.Fatalf("radius-11/L-13 run failed: %+v", res)
	}
}

func TestRenderHelper(t *testing.T) {
	art := Render([]Point{{0, 0}, {1, 0}, {1, 1}})
	if !strings.Contains(art, "#") {
		t.Errorf("render = %q", art)
	}
	lines := strings.Split(strings.TrimSpace(art), "\n")
	if len(lines) != 2 {
		t.Errorf("render lines = %d", len(lines))
	}
}

func TestConnectedHelper(t *testing.T) {
	if !Connected([]Point{{0, 0}, {0, 1}}) {
		t.Error("adjacent pair should be connected")
	}
	if Connected([]Point{{0, 0}, {1, 1}}) {
		t.Error("diagonal pair must not be connected")
	}
	if Connected(nil) {
		t.Error("empty must not be connected")
	}
}
