package gridgather

// EventKind identifies what a Simulation event reports.
type EventKind uint8

const (
	// EventRound fires after every completed round.
	EventRound EventKind = iota
	// EventMerge fires after rounds in which at least one robot was
	// removed by a merge (Event.RoundMerges robots this round).
	EventMerge
	// EventRunStart fires after rounds in which new §3.2 run states were
	// started (Event.RoundRunsStarted runs this round).
	EventRunStart
	// EventGathered fires once, after the round that brought the swarm
	// into a 2×2 square.
	EventGathered
	// EventAbort fires once if the simulation aborts (round limit,
	// disconnection, or the stuck watchdog), with Event.Err set.
	EventAbort
	// EventCrash fires after rounds in which at least one robot
	// crash-stopped (Event.RoundCrashes robots this round; WithFaults).
	EventCrash
	// EventDegraded fires once, after the round in which a fault
	// disconnected the swarm and the run latched graceful degradation
	// (WithFaults; a fault-free run aborts with EventAbort instead).
	EventDegraded
)

func (k EventKind) String() string {
	switch k {
	case EventRound:
		return "round"
	case EventMerge:
		return "merge"
	case EventRunStart:
		return "run-start"
	case EventGathered:
		return "gathered"
	case EventAbort:
		return "abort"
	case EventCrash:
		return "crash"
	case EventDegraded:
		return "degraded"
	default:
		return "event(?)"
	}
}

// EventMask selects event kinds for Subscribe and WithObserver.
type EventMask uint8

const (
	RoundEvents    EventMask = 1 << EventRound
	MergeEvents    EventMask = 1 << EventMerge
	RunStartEvents EventMask = 1 << EventRunStart
	GatheredEvents EventMask = 1 << EventGathered
	AbortEvents    EventMask = 1 << EventAbort
	CrashEvents    EventMask = 1 << EventCrash
	DegradedEvents EventMask = 1 << EventDegraded

	// AllEvents subscribes to every event kind.
	AllEvents = RoundEvents | MergeEvents | RunStartEvents | GatheredEvents |
		AbortEvents | CrashEvents | DegradedEvents
)

// Has reports whether the mask includes kind.
func (m EventMask) Has(k EventKind) bool { return m&(1<<k) != 0 }

// Event is one typed notification from a running Simulation.
//
// # Borrow semantics
//
// Robots and Runners alias session-owned scratch that is refilled every
// round: they are valid only for the duration of the callback and must not
// be retained or mutated — copy them if you need them afterwards. This is
// what keeps the observer path allocation-free (the legacy Options.OnRound
// hook rebuilt both slices every round); the allocation benchmark
// BenchmarkSessionObserver pins it.
type Event struct {
	// Kind is the event type; the fields below are populated for every
	// kind (they describe the post-round state of the simulation).
	Kind EventKind
	// Round is the number of completed rounds.
	Round int
	// Robots are the current robot positions (borrowed, see above).
	Robots []Point
	// Runners are the positions of robots holding run states (borrowed).
	Runners []Point
	// Merges is the cumulative number of robots removed by merges;
	// RoundMerges counts this round's removals.
	Merges, RoundMerges int
	// RunsStarted is the cumulative number of run states created;
	// RoundRunsStarted counts this round's starts.
	RunsStarted, RoundRunsStarted int
	// Crashes is the cumulative number of crash-stopped robots;
	// RoundCrashes counts this round's crashes. Zero without WithFaults.
	Crashes, RoundCrashes int
	// Err is the abort reason; non-nil only for EventAbort.
	Err error
}

// subscription is one registered observer.
type subscription struct {
	mask EventMask
	fn   func(Event)
}

// Subscribe registers fn for the event kinds in mask and returns a cancel
// function that removes the subscription (idempotent, and safe to call
// from inside an event callback — in-flight deliveries of the current
// event to other subscribers are unaffected). Callbacks run synchronously
// on the goroutine driving the simulation (Step, StepN, Run), in
// subscription order; a callback must not call back into the Simulation's
// mutating methods, but Snapshot and cancel functions are safe. Event
// payload slices are borrowed — see Event.
func (s *Simulation) Subscribe(mask EventMask, fn func(Event)) (cancel func()) {
	if fn == nil || mask == 0 {
		return func() {}
	}
	s.compactSubs()
	s.subSeq++
	id := s.subSeq
	s.subs = append(s.subs, subscription{mask: mask, fn: fn})
	s.subIDs = append(s.subIDs, id)
	return func() {
		for i, sid := range s.subIDs {
			if sid == id {
				// Clear in place rather than shifting the slice: emit may
				// be mid-iteration over s.subs when a callback cancels, and
				// removal would shift a later subscriber onto an index the
				// loop has already passed (double delivery).
				s.subs[i] = subscription{}
				break
			}
		}
		s.compactSubs()
	}
}

// compactSubs drops cancelled (zeroed) subscriptions. It is a no-op while
// an emit is iterating — the pending dead entries are swept on the next
// Subscribe, cancel or emit that runs outside a delivery — so
// subscribe/cancel churn cannot grow the slices without bound.
func (s *Simulation) compactSubs() {
	if s.emitting {
		return
	}
	i := 0
	for j := range s.subs {
		if s.subs[j].fn != nil {
			s.subs[i], s.subIDs[i] = s.subs[j], s.subIDs[j]
			i++
		}
	}
	clear(s.subs[i:])
	s.subs = s.subs[:i]
	s.subIDs = s.subIDs[:i]
}

// wants reports whether any live subscriber listens for kind.
func (s *Simulation) wants(k EventKind) bool {
	for _, sub := range s.subs {
		if sub.fn != nil && sub.mask.Has(k) {
			return true
		}
	}
	return false
}

// endEmit closes a delivery window and sweeps subscriptions cancelled from
// inside callbacks. Named (rather than a deferred closure in emit) to keep
// the delivery path closure-free.
func (s *Simulation) endEmit() {
	s.emitting = false
	s.compactSubs()
}

// emit delivers an event of the given kind to all matching subscribers,
// filling the shared payload fields from the current engine state. The
// Robots/Runners scratch must already be current (fillEventBuffers).
//
//gather:hotpath
func (s *Simulation) emit(k EventKind, err error) {
	ev := Event{
		Kind:             k,
		Round:            s.eng.Round(),
		Robots:           s.robotsBuf,
		Runners:          s.runnersBuf,
		Merges:           s.eng.Merges(),
		RoundMerges:      s.eng.RoundMerges(),
		RunsStarted:      s.eng.RunsStarted(),
		RoundRunsStarted: s.roundRuns,
		Crashes:          s.eng.Crashes(),
		RoundCrashes:     s.eng.RoundCrashes(),
		Err:              err,
	}
	s.emitting = true
	defer s.endEmit()
	for i := range s.subs {
		// Index (not range-copy) so a cancellation from inside a callback
		// is respected for the remainder of this event's delivery.
		if sub := &s.subs[i]; sub.fn != nil && sub.mask.Has(k) {
			sub.fn(ev)
		}
	}
}

// fillEventBuffers refreshes the borrowed Robots/Runners scratch from
// engine-owned state, allocation-free in steady state: the world's cell
// slice and the engine's runner scratch are copied element-wise into
// session-owned buffers that are reused across rounds.
//
//gather:hotpath
func (s *Simulation) fillEventBuffers() {
	s.robotsBuf = s.robotsBuf[:0]
	for _, p := range s.eng.World().Cells() {
		s.robotsBuf = append(s.robotsBuf, Point{X: p.X, Y: p.Y})
	}
	s.runnersBuf = s.runnersBuf[:0]
	for _, p := range s.eng.Runners() {
		s.runnersBuf = append(s.runnersBuf, Point{X: p.X, Y: p.Y})
	}
}
