package gridgather

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gridgather/internal/fsync"
	"gridgather/internal/gen"
)

// sessionOptions builds the option set for one differential case: the
// paper's algorithm under FSYNC, the scheduler-robust greedy strategy
// under every relaxed scheduler (the paper's algorithm is FSYNC-only).
func sessionOptions(spec string, workers int) []Option {
	alg := "paper"
	if spec != "fsync" {
		alg = "greedy"
	}
	return []Option{
		WithScheduler(spec),
		WithSchedulerSeed(42),
		WithAlgorithm(alg),
		WithWorkers(workers),
	}
}

// compareSessions fails on the first state divergence between two sessions:
// cells, slots, run states (including IDs), logical clocks, counters and
// the gathered predicate — the full bit-identicality bar.
func compareSessions(t *testing.T, a, b *Simulation) {
	t.Helper()
	ea, eb := a.eng, b.eng
	ac, bc := ea.World().Cells(), eb.World().Cells()
	if len(ac) != len(bc) {
		t.Fatalf("round %d: population %d vs %d", ea.Round(), len(ac), len(bc))
	}
	as, bs := ea.World().Slots(), eb.World().Slots()
	for i := range ac {
		if ac[i] != bc[i] || as[i] != bs[i] {
			t.Fatalf("round %d: cell/slot %d: %v/%d vs %v/%d",
				ea.Round(), i, ac[i], as[i], bc[i], bs[i])
		}
		sa, sb := ea.StateAt(ac[i]), eb.StateAt(bc[i])
		if len(sa.Runs) != len(sb.Runs) {
			t.Fatalf("round %d: run count at %v: %d vs %d",
				ea.Round(), ac[i], len(sa.Runs), len(sb.Runs))
		}
		for j := range sa.Runs {
			if sa.Runs[j] != sb.Runs[j] {
				t.Fatalf("round %d: run at %v: %+v vs %+v",
					ea.Round(), ac[i], sa.Runs[j], sb.Runs[j])
			}
		}
		if la, lb := ea.LocalRound(ac[i]), eb.LocalRound(bc[i]); la != lb {
			t.Fatalf("round %d: clock at %v: %d vs %d", ea.Round(), ac[i], la, lb)
		}
	}
	ma, mb := a.Metrics(), b.Metrics()
	// The quiescence counters describe the execution strategy, not the
	// simulation: a restored engine starts with a cold verdict cache, so
	// they legitimately differ across a checkpoint (see the Metrics doc).
	// The quiescence differential suite separately proves the strategy
	// never changes simulation state.
	ma.QuiesceComputed, ma.QuiesceSkipped, ma.QuiescentRatio = 0, 0, 0
	mb.QuiesceComputed, mb.QuiesceSkipped, mb.QuiescentRatio = 0, 0, 0
	if ma != mb {
		t.Fatalf("round %d: metrics diverged: %+v vs %+v", ea.Round(), ma, mb)
	}
	if ea.Gathered() != eb.Gathered() {
		t.Fatalf("round %d: gathered %v vs %v", ea.Round(), ea.Gathered(), eb.Gathered())
	}
}

// TestSnapshotRestoreDifferential is the acceptance proof for the
// checkpoint codec: for every seeded-catalog workload × scheduler family ×
// worker count, a session checkpointed at a random mid-run round and
// restored — into a different worker count, even — continues bit-
// identically to the uninterrupted session, round by round to the final
// Result.
func TestSnapshotRestoreDifferential(t *testing.T) {
	const n = 48
	specs := []string{"fsync", "ssync-rr:3", "ssync-rand:3", "ssync-lazy:5", "async:8"}
	workerCounts := []int{1, 4, 8}
	rng := rand.New(rand.NewSource(2026))
	for _, w := range gen.SeededCatalog() {
		for _, spec := range specs {
			for wi, workers := range workerCounts {
				// Restore into a rotated worker count: worker count must
				// not influence the resumed rounds either.
				restoreWorkers := workerCounts[(wi+1)%len(workerCounts)]
				t.Run(fmt.Sprintf("%s/%s/workers=%d->%d", w.Name, spec, workers, restoreWorkers), func(t *testing.T) {
					cells := fromSwarm(w.Build(n, 42))

					// Probe: the uninterrupted run, for the final Result
					// and the round count the cut is drawn from.
					probe := mustNew(t, cells, sessionOptions(spec, workers)...)
					want := probe.Run(context.Background())
					if want.Err != nil || !want.Gathered {
						t.Fatalf("uninterrupted run failed: %+v", want)
					}
					cut := 1
					if want.Rounds > 1 {
						cut += rng.Intn(want.Rounds - 1)
					}

					// Checkpoint a second session at the cut round and
					// restore it; the donor session keeps stepping as the
					// uninterrupted lockstep partner.
					donor := mustNew(t, cells, sessionOptions(spec, workers)...)
					if got, err := donor.StepN(cut); err != nil || got != cut {
						t.Fatalf("StepN(%d) = %d, %v", cut, got, err)
					}
					snap, err := donor.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if again, _ := donor.Snapshot(); !bytes.Equal(snap, again) {
						t.Fatal("snapshot bytes not deterministic")
					}
					restored, err := Restore(snap, WithWorkers(restoreWorkers))
					if err != nil {
						t.Fatal(err)
					}
					compareSessions(t, donor, restored)
					for !donor.Status().Done {
						if err := donor.Step(); err != nil {
							t.Fatalf("donor step: %v", err)
						}
						if err := restored.Step(); err != nil {
							t.Fatalf("restored step: %v", err)
						}
						compareSessions(t, donor, restored)
					}
					if got := restored.Result(); got != want {
						t.Errorf("restored result %+v != uninterrupted %+v", got, want)
					}
					if got := donor.Result(); got != want {
						t.Errorf("donor result %+v != uninterrupted %+v (snapshot perturbed the session)", got, want)
					}
				})
			}
		}
	}
}

// A restored session can itself be checkpointed and restored again; chains
// of checkpoints stay bit-identical.
func TestSnapshotChain(t *testing.T) {
	cells := mustWorkload(t, "hollow", 80)
	want := Gather(cells, Options{})
	sim := mustNew(t, cells)
	for i := 0; i < 4; i++ {
		if _, err := sim.StepN(3); err != nil {
			t.Fatal(err)
		}
		snap, err := sim.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if sim, err = Restore(snap); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
	}
	if res := sim.Run(context.Background()); res != want {
		t.Errorf("chained result %+v != %+v", res, want)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	sim := mustNew(t, mustWorkload(t, "hollow", 60), sessionOptions("async:8", 1)...)
	if _, err := sim.StepN(5); err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Restore(nil); !errors.Is(err, ErrSnapshotTruncated) {
		t.Errorf("nil snapshot: %v", err)
	}
	if _, err := Restore([]byte("not a snapshot")); !errors.Is(err, ErrSnapshotInvalid) {
		t.Errorf("bad magic: %v", err)
	}
	for _, cut := range []int{4, 5, len(snap) / 2, len(snap) - 1} {
		if _, err := Restore(snap[:cut]); err == nil {
			t.Errorf("cut at %d: restore accepted a truncated snapshot", cut)
		} else if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotInvalid) {
			t.Errorf("cut at %d: untyped error %v", cut, err)
		}
	}

	// Version mismatch: bump the version varint after the 4-byte magic.
	bad := append([]byte(nil), snap...)
	bad[4] = snapshotVersion + 1
	if _, err := Restore(bad); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("version bump: %v", err)
	}

	// Trailing garbage is corruption, not slack.
	if _, err := Restore(append(append([]byte(nil), snap...), 0xAB)); !errors.Is(err, ErrSnapshotInvalid) {
		t.Errorf("trailing bytes: %v", err)
	}

	// Structural options cannot reshape a checkpointed simulation.
	for _, opt := range []Option{
		WithScheduler("fsync"), WithAlgorithm("paper"),
		WithRadius(11), WithL(13), WithSchedulerSeed(7),
	} {
		if _, err := Restore(snap, opt); err == nil {
			t.Error("Restore accepted a structural option")
		}
	}
	// Execution options are fine.
	if _, err := Restore(snap, WithWorkers(4), WithConnectivityCheck(true),
		WithObserver(RoundEvents, func(Event) {})); err != nil {
		t.Errorf("execution options rejected: %v", err)
	}
}

// An invariant-violation abort survives the snapshot: the restored session
// is Done with the same sticky error and refuses to re-execute rounds the
// original refused to run.
func TestRestoreCarriesInvariantAbort(t *testing.T) {
	// The paper's algorithm under a relaxed scheduler disconnects the
	// hollow ring (its merges are FSYNC-only) — the canonical invariant
	// violation.
	cells := mustWorkload(t, "hollow", 60)
	sim := mustNew(t, cells,
		WithScheduler("ssync-rr:3"), WithAlgorithm("paper"), WithConnectivityCheck(true))
	want := sim.Run(context.Background())
	var disc fsync.ErrDisconnected
	if !errors.As(want.Err, &disc) {
		t.Fatalf("expected a disconnection abort, got %+v", want)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if st := restored.Status(); !st.Done || st.Err == nil {
		t.Fatalf("restored aborted session reports %+v", st)
	}
	if err := restored.Step(); !errors.As(err, &disc) {
		t.Errorf("Step on restored aborted session = %v, want the sticky disconnection", err)
	}
	if got := restored.Result(); got != want {
		t.Errorf("restored result %+v != original %+v", got, want)
	}
}

// Budget overrides on Restore replace the checkpointed limits: an
// exhausted run can be granted more budget and complete.
func TestRestoreBudgetOverride(t *testing.T) {
	cells := mustWorkload(t, "hollow", 120)
	want := Gather(cells, Options{})
	sim := mustNew(t, cells, WithMaxRounds(3))
	res := sim.Run(context.Background())
	if res.Err == nil {
		t.Fatal("expected a round-limit abort")
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Restored without overrides the tiny budget persists…
	again, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if res := again.Run(context.Background()); res.Err == nil {
		t.Fatal("restored session inherited no budget limit")
	}
	// …and with an override the run completes like the uninterrupted one.
	granted, err := Restore(snap, WithMaxRounds(want.Rounds+10))
	if err != nil {
		t.Fatal(err)
	}
	res = granted.Run(context.Background())
	if res.Err != nil || !res.Gathered || res.Rounds != want.Rounds {
		t.Errorf("granted run %+v, want rounds=%d", res, want.Rounds)
	}
}
