// Command gatherd serves gathering simulations over HTTP: create
// sessions, step them round by round or to completion, stream NDJSON
// events, download and upload snapshots. A bounded pool keeps at most
// -max-resident simulations in memory; idle sessions spill to -spill as
// snapshot files and restore transparently on their next touch, and the
// same directory is how a restarted daemon resumes every session a
// graceful shutdown spilled.
//
//	gatherd -addr 127.0.0.1:8645 -spill /var/lib/gatherd
//
// SIGINT/SIGTERM drain in-flight steps, close event streams, and spill
// all live sessions before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridgather/internal/serve"
	"gridgather/internal/serve/pool"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8645", "listen address")
		spill        = flag.String("spill", "gatherd-spill", "snapshot spill directory (also the restart-recovery source)")
		maxResident  = flag.Int("max-resident", 64, "maximum simulations held in memory at once")
		maxSessions  = flag.Int("max-sessions", 4096, "maximum sessions, resident + spilled")
		maxInFlight  = flag.Int("max-inflight", 32, "maximum concurrent requests per client")
		streamBuffer = flag.Int("stream-buffer", 256, "events buffered per stream before the consumer counts as slow")
		streamWrite  = flag.Duration("stream-write-timeout", 10*time.Second, "per-record write deadline on event streams")
		drain        = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("gatherd", serve.Version)
		return
	}

	srv, err := serve.New(serve.Config{
		Pool: pool.Config{
			MaxResident:          *maxResident,
			MaxSessions:          *maxSessions,
			MaxInFlightPerClient: *maxInFlight,
		},
		SpillDir:           *spill,
		StreamBuffer:       *streamBuffer,
		StreamWriteTimeout: *streamWrite,
	})
	if err != nil {
		log.Fatalf("gatherd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("gatherd: %v", err)
	}
	hs := &http.Server{Handler: srv}
	log.Printf("gatherd %s listening on http://%s (spill dir %s, max resident %d)",
		serve.Version, ln.Addr(), *spill, *maxResident)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("gatherd: %v", err)
	case got := <-sig:
		log.Printf("gatherd: %v — draining in-flight steps and spilling sessions", got)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx, hs); err != nil {
			log.Fatalf("gatherd: shutdown: %v", err)
		}
		log.Printf("gatherd: all sessions spilled to %s", *spill)
	}
}
