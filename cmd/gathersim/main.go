// Command gathersim runs one gathering simulation on one workload and
// prints the simulation metrics. It drives the public Simulation session,
// so runs can be checkpointed to a file mid-flight and resumed later —
// the resumed run is bit-identical to an uninterrupted one.
//
// Usage:
//
//	gathersim -workload hollow -n 200 [-radius 20] [-l 22] [-verify]
//	gathersim -workload hollow -n 200 -scheduler ssync -algorithm greedy
//	gathersim -workload hollow -n 200 -faults crash:p=0.001 -algorithm greedy
//	gathersim -workload hollow -n 400 -checkpoint run.ggss -checkpoint-round 150
//	gathersim -resume run.ggss
//	gathersim -resume run.ggss -checkpoint run2.ggss -checkpoint-round 300
//
// The -verify flag enables per-round connectivity checking and strict view
// locality (slower, but proves the run obeyed the model). The -scheduler
// flag relaxes the time model (FSYNC by default) — note that the paper's
// algorithm is only safe under FSYNC; pair relaxed schedulers with
// -algorithm greedy for runs that cannot disconnect the swarm.
//
// The -faults flag injects deterministic faults (crash-stop robots, sensor
// noise; see the WithFaults grammar). A faulty run gathers its surviving
// robots; if a fault disconnects the swarm the run degrades gracefully to
// the largest surviving component instead of aborting, and the result line
// reports crashes and the degraded state.
//
// -checkpoint stops at -checkpoint-round (or at gathering, whichever comes
// first), writes the session snapshot to the file, and exits. -resume
// loads a snapshot instead of building a workload; the structural
// configuration (workload shape, scheduler, algorithm, radius, L) comes
// from the snapshot, while -verify still applies to the resumed rounds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"gridgather"
)

func main() {
	var (
		workload   = flag.String("workload", "hollow", "workload family: "+strings.Join(gridgather.Workloads(), ", "))
		n          = flag.Int("n", 100, "approximate robot count")
		radius     = flag.Int("radius", 0, "viewing radius (0 = paper default 20)")
		l          = flag.Int("l", 0, "run start period (0 = paper default 22)")
		scheduler  = flag.String("scheduler", "fsync", "time model: "+strings.Join(gridgather.Schedulers(), ", "))
		algorithm  = flag.String("algorithm", "paper", "robot program: "+strings.Join(gridgather.Algorithms(), ", "))
		seed       = flag.Int64("seed", 1, "seed for randomized schedulers and unpinned fault clauses")
		faults     = flag.String("faults", "", "fault-injection spec, \"+\"-joined clauses of: "+strings.Join(gridgather.FaultSpecs(), ", ")+" (empty = fault-free)")
		verify     = flag.Bool("verify", false, "check connectivity every round and enforce view locality")
		quiet      = flag.Bool("q", false, "print only the result line")
		checkpoint = flag.String("checkpoint", "", "write a session snapshot to this file and exit")
		ckptRound  = flag.Int("checkpoint-round", 0, "round to checkpoint at (with -checkpoint; 0 = at gathering)")
		resume     = flag.String("resume", "", "resume from a snapshot file instead of building a workload")
	)
	flag.Parse()

	sim, err := openSession(*resume, *workload, *n, *radius, *l, *scheduler, *algorithm, *faults, *seed, *verify, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *checkpoint != "" {
		target := *ckptRound
		for target == 0 || sim.Status().Round < target {
			if err := sim.Step(); err != nil {
				break // gathered or aborted: checkpoint whatever state we have
			}
			if sim.Status().Gathered {
				break
			}
		}
		snap, err := sim.Snapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapshot failed: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*checkpoint, snap, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := sim.Status()
		fmt.Printf("checkpointed at round %d (%d robots, gathered=%v) to %s (%d bytes)\n",
			st.Round, st.Robots, st.Gathered, *checkpoint, len(snap))
		if st.Err != nil {
			// The checkpoint holds the aborted state (restorable for
			// inspection, or with a bigger budget for round-limit aborts),
			// but the abort itself must not read as success.
			fmt.Fprintf(os.Stderr, "simulation aborted before the checkpoint round: %v\n", st.Err)
			os.Exit(1)
		}
		return
	}

	res := sim.Run(context.Background())
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", res.Err)
		os.Exit(1)
	}
	faultTag := ""
	if res.Crashes > 0 || res.Degraded {
		faultTag = fmt.Sprintf(" crashes=%d degraded=%v", res.Crashes, res.Degraded)
	}
	fmt.Printf("gathered=%v rounds=%d merges=%d runs=%d moves=%d robots=%d->%d rounds/n=%.2f%s\n",
		res.Gathered, res.Rounds, res.Merges, res.RunsStarted, res.Moves,
		res.InitialRobots, res.FinalRobots,
		float64(res.Rounds)/float64(res.InitialRobots), faultTag)
}

// openSession builds the session: from a snapshot file when resuming,
// from a generated workload otherwise.
func openSession(resume, workload string, n, radius, l int, scheduler, algorithm, faults string, seed int64, verify, quiet bool) (*gridgather.Simulation, error) {
	if resume != "" {
		snap, err := os.ReadFile(resume)
		if err != nil {
			return nil, err
		}
		sim, err := gridgather.Restore(snap,
			gridgather.WithConnectivityCheck(verify),
			gridgather.WithStrictLocality(verify))
		if err != nil {
			return nil, err
		}
		if !quiet {
			st := sim.Status()
			fmt.Printf("resumed %s at round %d (%d robots)\n", resume, st.Round, st.Robots)
		}
		return sim, nil
	}
	cells, err := gridgather.Workload(workload, n)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Printf("workload %q with %d robots (%s under %s)\n",
			workload, len(cells), algorithm, scheduler)
	}
	return gridgather.New(cells,
		gridgather.WithRadius(radius),
		gridgather.WithL(l),
		gridgather.WithScheduler(scheduler),
		gridgather.WithSchedulerSeed(seed),
		gridgather.WithAlgorithm(algorithm),
		gridgather.WithFaults(faults),
		gridgather.WithConnectivityCheck(verify),
		gridgather.WithStrictLocality(verify))
}
