// Command gathersim runs one gathering simulation on one workload and
// prints the simulation metrics.
//
// Usage:
//
//	gathersim -workload hollow -n 200 [-radius 20] [-l 22] [-verify]
//	gathersim -workload hollow -n 200 -scheduler ssync -algorithm greedy
//
// The -verify flag enables per-round connectivity checking and strict view
// locality (slower, but proves the run obeyed the model). The -scheduler
// flag relaxes the time model (FSYNC by default) — note that the paper's
// algorithm is only safe under FSYNC; pair relaxed schedulers with
// -algorithm greedy for runs that cannot disconnect the swarm.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gridgather"
)

func main() {
	var (
		workload  = flag.String("workload", "hollow", "workload family: "+strings.Join(gridgather.Workloads(), ", "))
		n         = flag.Int("n", 100, "approximate robot count")
		radius    = flag.Int("radius", 0, "viewing radius (0 = paper default 20)")
		l         = flag.Int("l", 0, "run start period (0 = paper default 22)")
		scheduler = flag.String("scheduler", "fsync", "time model: "+strings.Join(gridgather.Schedulers(), ", "))
		algorithm = flag.String("algorithm", "paper", "robot program: "+strings.Join(gridgather.Algorithms(), ", "))
		seed      = flag.Int64("seed", 1, "seed for randomized schedulers")
		verify    = flag.Bool("verify", false, "check connectivity every round and enforce view locality")
		quiet     = flag.Bool("q", false, "print only the result line")
	)
	flag.Parse()

	cells, err := gridgather.Workload(*workload, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Printf("workload %q with %d robots (%s under %s)\n",
			*workload, len(cells), *algorithm, *scheduler)
	}
	res := gridgather.Gather(cells, gridgather.Options{
		Radius:            *radius,
		L:                 *l,
		Scheduler:         *scheduler,
		SchedulerSeed:     *seed,
		Algorithm:         *algorithm,
		CheckConnectivity: *verify,
		StrictLocality:    *verify,
	})
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", res.Err)
		os.Exit(1)
	}
	fmt.Printf("gathered=%v rounds=%d merges=%d runs=%d moves=%d robots=%d->%d rounds/n=%.2f\n",
		res.Gathered, res.Rounds, res.Merges, res.RunsStarted, res.Moves,
		res.InitialRobots, res.FinalRobots,
		float64(res.Rounds)/float64(res.InitialRobots))
}
