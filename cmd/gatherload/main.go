// Command gatherload drives a running gatherd with an open-model workload
// — sessions arrive at a fixed rate regardless of how fast the daemon
// drains them — mixing creates, steps, event streams, snapshot downloads,
// explicit evictions (to measure the spill/restore round trip) and
// restore-from-upload sessions, and reports latency percentiles as the
// service benchmark JSON (BENCH_service.json).
//
//	gatherload -addr http://127.0.0.1:8645 -duration 10s -rate 20 -out BENCH_service.json
//
// -smoke runs a short deterministic end-to-end pass instead (including
// one faulty session and one restored-from-upload session) and exits
// non-zero on any protocol failure — the CI acceptance mode. -guard
// additionally enforces perf.ServiceGuard on the fresh report.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"gridgather/internal/metrics"
	"gridgather/internal/perf"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8645", "gatherd base URL")
		duration = flag.Duration("duration", 10*time.Second, "load window")
		rate     = flag.Float64("rate", 20, "session arrivals per second (open model)")
		n        = flag.Int("n", 60, "robots per session")
		clients  = flag.Int("clients", 8, "distinct client identities")
		seed     = flag.Int64("seed", 1, "workload mix seed")
		out      = flag.String("out", "", "write the service benchmark JSON here")
		smoke    = flag.Bool("smoke", false, "run the deterministic acceptance pass instead of open load")
		guard    = flag.Bool("guard", false, "fail unless perf.ServiceGuard passes on the fresh report")
	)
	flag.Parse()

	r := &runner{
		base:   *addr,
		n:      *n,
		client: &http.Client{Timeout: 60 * time.Second},
		lat:    map[string][]float64{},
	}
	start := time.Now()
	if *smoke {
		r.smoke()
	} else {
		r.load(*duration, *rate, *clients, *seed)
	}
	rep := r.report(time.Since(start), *smoke)
	r.printSummary(rep)
	if *out != "" {
		if err := perf.WriteServiceJSON(rep, *out); err != nil {
			log.Fatalf("gatherload: write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if r.errs > 0 {
		log.Fatalf("gatherload: %d errors", r.errs)
	}
	if *guard {
		if err := perf.ServiceGuard(rep); err != nil {
			log.Fatalf("gatherload: %v", err)
		}
		fmt.Println("service guard: ok")
	}
}

type runner struct {
	base   string
	n      int
	client *http.Client

	mu           sync.Mutex
	lat          map[string][]float64 // milliseconds per operation class
	sessions     int
	backpressure int
	errs         int
}

func (r *runner) record(class string, d time.Duration) {
	r.mu.Lock()
	r.lat[class] = append(r.lat[class], float64(d)/float64(time.Millisecond))
	r.mu.Unlock()
}

func (r *runner) errf(format string, args ...any) {
	r.mu.Lock()
	r.errs++
	r.mu.Unlock()
	log.Printf("ERROR "+format, args...)
}

// do issues one request and decodes a JSON response; 429/503 are counted
// as backpressure (an expected load-shedding outcome), everything else
// unexpected as an error.
func (r *runner) do(clientID, method, path string, body []byte, out any) int {
	req, err := http.NewRequest(method, r.base+path, bytes.NewReader(body))
	if err != nil {
		r.errf("%s %s: %v", method, path, err)
		return 0
	}
	req.Header.Set("X-Client", clientID)
	resp, err := r.client.Do(req)
	if err != nil {
		r.errf("%s %s: %v", method, path, err)
		return 0
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		r.mu.Lock()
		r.backpressure++
		r.mu.Unlock()
	}
	if out != nil && len(data) > 0 && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			r.errf("%s %s: bad JSON: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (r *runner) timed(class, clientID, method, path string, body []byte, out any) int {
	t0 := time.Now()
	code := r.do(clientID, method, path, body, out)
	if code >= 200 && code < 300 {
		r.record(class, time.Since(t0))
	}
	return code
}

type sessionInfo struct {
	ID     string `json:"id"`
	Round  int    `json:"round"`
	Robots int    `json:"robots"`
	Done   bool   `json:"done"`
}

type stepResponse struct {
	Executed int         `json:"executed"`
	Status   sessionInfo `json:"status"`
}

// mix is one arrival's precomputed behavior (decided by the main
// goroutine's seeded RNG so worker goroutines stay deterministic-ish and
// race-free).
type mix struct {
	i       int
	faulty  bool
	stream  bool
	upload  bool
	delete_ bool
}

func (r *runner) load(duration time.Duration, rate float64, clients int, seed int64) {
	if rate <= 0 {
		log.Fatal("gatherload: -rate must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / rate)
	deadline := time.Now().Add(duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	for i := 0; time.Now().Before(deadline); i++ {
		<-tick.C
		m := mix{
			i:       i,
			faulty:  rng.Float64() < 0.25,
			stream:  rng.Float64() < 0.25,
			upload:  rng.Float64() < 0.15,
			delete_: rng.Float64() < 0.5,
		}
		wg.Add(1)
		go func(m mix) {
			defer wg.Done()
			r.scenario(fmt.Sprintf("load-%d", m.i%clients), m)
		}(m)
	}
	wg.Wait()
}

// scenario is one session's life: create, step, maybe stream, snapshot,
// evict + restore (the measured spill round trip), maybe clone via
// restore-from-upload, maybe delete.
func (r *runner) scenario(clientID string, m mix) {
	create := fmt.Sprintf(`{"workload":"hollow","n":%d,"label":"%s"}`, r.n, clientID)
	if m.faulty {
		create = fmt.Sprintf(
			`{"workload":"blob","n":%d,"label":"%s-faulty","scheduler":"ssync-rr:3","faults":"crash-at:r=4,k=2@1","connectivity_check":true}`,
			r.n, clientID)
	}
	var info sessionInfo
	code := r.timed("create", clientID, "POST", "/v1/sessions", []byte(create), &info)
	if code != http.StatusCreated {
		if code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
			r.errf("create: status %d", code)
		}
		return
	}
	r.mu.Lock()
	r.sessions++
	r.mu.Unlock()
	sid := "/v1/sessions/" + info.ID

	var streamDone chan struct{}
	if m.stream {
		streamDone = make(chan struct{})
		go r.streamSome(clientID+"-stream", info.ID, streamDone)
	}

	var step stepResponse
	for k := 0; k < 3; k++ {
		if code := r.timed("step", clientID, "POST", sid+"/step", []byte(`{"rounds":5}`), &step); code != http.StatusOK {
			if code != http.StatusServiceUnavailable {
				r.errf("step: status %d", code)
			}
			return
		}
		if step.Status.Done {
			break
		}
	}

	snap := r.snapshot(clientID, info.ID)

	// The measured spill/restore round trip: evict, then the next step
	// pays the restore.
	if code := r.timed("evict", clientID, "POST", sid+"/evict", nil, nil); code == http.StatusOK {
		if code := r.timed("restore", clientID, "POST", sid+"/step", []byte(`{"rounds":1}`), &step); code != http.StatusOK &&
			code != http.StatusServiceUnavailable {
			r.errf("restore step: status %d", code)
		}
	}

	if m.upload && snap != nil {
		var clone sessionInfo
		code := r.timed("create", clientID, "POST", "/v1/sessions/restore?label="+clientID+"-clone", snap, &clone)
		switch code {
		case http.StatusCreated:
			r.mu.Lock()
			r.sessions++
			r.mu.Unlock()
			r.timed("step", clientID, "POST", "/v1/sessions/"+clone.ID+"/step", []byte(`{"rounds":2}`), nil)
			r.do(clientID, "DELETE", "/v1/sessions/"+clone.ID, nil, nil)
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		default:
			r.errf("restore upload: status %d", code)
		}
	}

	if streamDone != nil {
		<-streamDone
	}
	if m.delete_ {
		if code := r.do(clientID, "DELETE", sid, nil, nil); code != http.StatusNoContent && code != http.StatusNotFound {
			r.errf("delete: status %d", code)
		}
	}
}

func (r *runner) snapshot(clientID, id string) []byte {
	t0 := time.Now()
	req, _ := http.NewRequest("GET", r.base+"/v1/sessions/"+id+"/snapshot", nil)
	req.Header.Set("X-Client", clientID)
	resp, err := r.client.Do(req)
	if err != nil {
		r.errf("snapshot: %v", err)
		return nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusServiceUnavailable {
			r.errf("snapshot: status %d", resp.StatusCode)
		}
		return nil
	}
	r.record("snapshot", time.Since(t0))
	return data
}

// streamSome holds an NDJSON event stream open and drains a handful of
// records, then hangs up — enough to exercise the fan-out, slow-consumer
// bookkeeping, and the stream's in-flight slot.
func (r *runner) streamSome(clientID, id string, done chan<- struct{}) {
	defer close(done)
	// The stream gets its own short deadline: an idle session emits
	// nothing, and a load driver must not dangle on it.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", r.base+"/v1/sessions/"+id+"/events?mask=round,gathered,abort", nil)
	if err != nil {
		return
	}
	req.Header.Set("X-Client", clientID)
	resp, err := r.client.Do(req)
	if err != nil {
		return // the session may be gone already; streams are best-effort here
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	buf := make([]byte, 4096)
	for read := 0; read < 4; read++ {
		resp.Body.Read(buf)
	}
}

// smoke is the deterministic acceptance pass: every endpoint once, one
// faulty session, one eviction round trip, one restored-from-upload
// session — any unexpected status is fatal via the error counter.
func (r *runner) smoke() {
	const c = "smoke"
	if code := r.do(c, "GET", "/v1/healthz", nil, nil); code != http.StatusOK {
		r.errf("healthz: status %d", code)
		return
	}

	// A plain session: create, step, status, metrics, snapshot.
	var plain sessionInfo
	if code := r.timed("create", c, "POST", "/v1/sessions",
		[]byte(fmt.Sprintf(`{"workload":"hollow","n":%d,"label":"smoke-plain"}`, r.n)), &plain); code != http.StatusCreated {
		r.errf("create plain: status %d", code)
		return
	}
	r.sessions++
	var step stepResponse
	if r.timed("step", c, "POST", "/v1/sessions/"+plain.ID+"/step", []byte(`{"rounds":5}`), &step); step.Status.Round != 5 {
		r.errf("plain stepped to %d, want 5", step.Status.Round)
	}
	if code := r.do(c, "GET", "/v1/sessions/"+plain.ID+"/metrics", nil, nil); code != http.StatusOK {
		r.errf("metrics: status %d", code)
	}

	// A faulty session runs to completion under crashes and a non-default
	// scheduler.
	var faulty sessionInfo
	if code := r.timed("create", c, "POST", "/v1/sessions",
		[]byte(fmt.Sprintf(`{"workload":"blob","n":%d,"label":"smoke-faulty","scheduler":"ssync-rr:3","faults":"crash-at:r=4,k=2@1","connectivity_check":true}`, r.n)),
		&faulty); code != http.StatusCreated {
		r.errf("create faulty: status %d", code)
		return
	}
	r.sessions++
	var fdone stepResponse
	r.timed("step", c, "POST", "/v1/sessions/"+faulty.ID+"/step", []byte(`{"to_completion":true,"budget_rounds":100000}`), &fdone)
	if !fdone.Status.Done {
		r.errf("faulty session not done: %+v", fdone.Status)
	}

	// The eviction round trip: spill, then the next step restores.
	if code := r.timed("evict", c, "POST", "/v1/sessions/"+plain.ID+"/evict", nil, nil); code != http.StatusOK {
		r.errf("evict: status %d", code)
	}
	if r.timed("restore", c, "POST", "/v1/sessions/"+plain.ID+"/step", []byte(`{"rounds":1}`), &step); step.Status.Round != 6 {
		r.errf("restored session at round %d, want 6", step.Status.Round)
	}

	// The snapshot round trip: download, upload as a new session, and the
	// clone continues from the same round.
	snap := r.snapshot(c, plain.ID)
	if snap == nil {
		r.errf("no snapshot for upload test")
		return
	}
	var clone sessionInfo
	if code := r.timed("create", c, "POST", "/v1/sessions/restore?label=smoke-clone", snap, &clone); code != http.StatusCreated {
		r.errf("restore upload: status %d", code)
		return
	}
	r.sessions++
	if clone.Round != step.Status.Round {
		r.errf("clone starts at round %d, want %d", clone.Round, step.Status.Round)
	}
	var cs, ps stepResponse
	r.timed("step", c, "POST", "/v1/sessions/"+clone.ID+"/step", []byte(`{"rounds":3}`), &cs)
	r.timed("step", c, "POST", "/v1/sessions/"+plain.ID+"/step", []byte(`{"rounds":3}`), &ps)
	if cs.Status.Round != ps.Status.Round || cs.Status.Robots != ps.Status.Robots {
		r.errf("clone diverged: %+v vs %+v", cs.Status, ps.Status)
	}

	if code := r.do(c, "DELETE", "/v1/sessions/"+clone.ID, nil, nil); code != http.StatusNoContent {
		r.errf("delete clone: status %d", code)
	}
}

func (r *runner) report(elapsed time.Duration, smoke bool) perf.ServiceReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := func(class string, pct float64) float64 {
		xs := r.lat[class]
		if len(xs) == 0 {
			return 0
		}
		return metrics.Percentile(xs, pct)
	}
	note := fmt.Sprintf("open-model load, n=%d robots/session", r.n)
	if smoke {
		note = fmt.Sprintf("smoke acceptance pass, n=%d robots/session", r.n)
	}
	rep := perf.ServiceReport{
		Note:            note,
		DurationSeconds: elapsed.Seconds(),
		Sessions:        r.sessions,
		SessionsPerSec:  float64(r.sessions) / elapsed.Seconds(),
		CreateP50Ms:     p("create", 50),
		CreateP99Ms:     p("create", 99),
		StepP50Ms:       p("step", 50),
		StepP99Ms:       p("step", 99),
		SnapshotP50Ms:   p("snapshot", 50),
		SnapshotP99Ms:   p("snapshot", 99),
		EvictP50Ms:      p("evict", 50),
		EvictP99Ms:      p("evict", 99),
		RestoreP50Ms:    p("restore", 50),
		RestoreP99Ms:    p("restore", 99),
		Errors:          r.errs,
	}
	// Fold in the daemon's own accounting.
	var stats struct {
		MaxResident         int    `json:"max_resident"`
		MaxResidentObserved int    `json:"max_resident_observed"`
		Evictions           uint64 `json:"evictions"`
		Restores            uint64 `json:"restores"`
		EventsStreamed      uint64 `json:"events_streamed"`
		BytesOut            uint64 `json:"bytes_out"`
	}
	r.mu.Unlock()
	code := r.do("gatherload-report", "GET", "/v1/stats", nil, &stats)
	r.mu.Lock()
	if code == http.StatusOK {
		rep.MaxResidentCap = stats.MaxResident
		rep.MaxResidentObserved = stats.MaxResidentObserved
		rep.Evictions = stats.Evictions
		rep.Restores = stats.Restores
		rep.EventsStreamed = stats.EventsStreamed
		rep.BytesOut = stats.BytesOut
	}
	rep.Errors = r.errs
	return rep
}

func (r *runner) printSummary(rep perf.ServiceReport) {
	fmt.Printf("sessions: %d in %.1fs (%.1f/s), backpressure replies: %d, errors: %d\n",
		rep.Sessions, rep.DurationSeconds, rep.SessionsPerSec, r.backpressure, rep.Errors)
	fmt.Printf("create  p50 %6.2fms  p99 %6.2fms\n", rep.CreateP50Ms, rep.CreateP99Ms)
	fmt.Printf("step    p50 %6.2fms  p99 %6.2fms\n", rep.StepP50Ms, rep.StepP99Ms)
	fmt.Printf("snap    p50 %6.2fms  p99 %6.2fms\n", rep.SnapshotP50Ms, rep.SnapshotP99Ms)
	fmt.Printf("evict   p50 %6.2fms  p99 %6.2fms\n", rep.EvictP50Ms, rep.EvictP99Ms)
	fmt.Printf("restore p50 %6.2fms  p99 %6.2fms\n", rep.RestoreP50Ms, rep.RestoreP99Ms)
	fmt.Printf("resident peak %d/%d, evictions %d, restores %d, events streamed %d\n",
		rep.MaxResidentObserved, rep.MaxResidentCap, rep.Evictions, rep.Restores, rep.EventsStreamed)
}
